// Package adpm is the public API of the ADPM/TeamSim library — a Go
// reimplementation of "Application of Constraint-Based Heuristics in
// Collaborative Design" (Carballo & Director, DAC 2001).
//
// The library models a collaborative design process as a state-based
// system: design properties with value ranges, a network of constraints
// over them, a hierarchy of design problems owned by team members, and
// design operations (synthesis, verification, decomposition) that move
// the process between states. Two process-management modes are
// provided:
//
//   - Conventional: constraint checking happens only when a designer
//     explicitly requests a verification operation, so cross-subsystem
//     conflicts surface at system integration.
//
//   - ADPM (Active Design Process Management): a design constraint
//     manager runs interval constraint propagation after every
//     operation, mining the results into heuristic support data —
//     feasible subspaces v_F(a), constraint counts β, violation counts
//     α, monotone fix directions, and movement windows for assigned
//     values — that designers use to search the design space.
//
// TeamSim simulates complete design processes with model-based
// designers in either mode and captures the statistics the paper
// reports: operations to completion, constraint evaluations (a proxy
// for CAD tool runs), and design spins (late cross-subsystem rework).
//
// Quick start:
//
//	scn := adpm.Receiver() // built-in MEMS receiver scenario
//	res, err := adpm.Run(adpm.Config{Scenario: scn, Mode: adpm.ModeADPM, Seed: 1})
//	if err != nil { ... }
//	fmt.Println(res.Operations, res.Evaluations, res.Spins)
//
// Scenarios are described in the DDDL language (ParseScenario) or taken
// from the built-in set (Sensor, Receiver, Simplified). For direct
// process control — applying individual operations, reading designer
// views — use NewProcess and the dpm/dcm packages via the returned
// handle.
package adpm

import (
	"io"

	"repro/internal/browser"
	"repro/internal/constraint"
	"repro/internal/dcm"
	"repro/internal/dddl"
	"repro/internal/designer"
	"repro/internal/domain"
	"repro/internal/dpm"
	"repro/internal/scenario"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/teamsim"
)

// Scenario is a parsed DDDL design-area description: objects,
// properties (plain and derived), constraints, problems, decomposition,
// and initial requirements.
type Scenario = dddl.Scenario

// ParseScenario parses a DDDL document.
func ParseScenario(r io.Reader) (*Scenario, error) { return dddl.Parse(r) }

// ParseScenarioString parses a DDDL document from a string.
func ParseScenarioString(src string) (*Scenario, error) { return dddl.ParseString(src) }

// Built-in scenarios (paper §3.2).
var (
	// Sensor returns the MEMS pressure sensing system case
	// (26 properties, 21 constraints, mostly linear).
	Sensor = scenario.Sensor
	// Receiver returns the MEMS wireless receiver front-end case
	// (35 properties, 30 constraints, mostly nonlinear).
	Receiver = scenario.Receiver
	// ReceiverWithGain parameterizes the receiver's gain requirement
	// (the Fig. 10 tightness sweep).
	ReceiverWithGain = scenario.ReceiverWithGain
	// Simplified returns the small case used for per-operation profiles.
	Simplified = scenario.Simplified
	// ScenarioByName looks up a built-in scenario by name.
	ScenarioByName = scenario.ByName
)

// Mode selects the process-management approach.
type Mode = dpm.Mode

// Process modes.
const (
	// ModeConventional is the λ=F baseline: verification on request.
	ModeConventional = dpm.Conventional
	// ModeADPM is the λ=T active approach: propagation after every
	// operation.
	ModeADPM = dpm.ADPM
)

// Config parameterizes a simulation run (see teamsim.Config).
type Config = teamsim.Config

// Result captures one run's statistics (see teamsim.Result).
type Result = teamsim.Result

// MultiResult aggregates seeded runs (see teamsim.MultiResult).
type MultiResult = teamsim.MultiResult

// Comparison holds conventional-vs-ADPM aggregates for one case.
type Comparison = teamsim.Comparison

// Heuristics toggles the designers' constraint-based search heuristics.
type Heuristics = designer.Heuristics

// DefaultHeuristics enables every heuristic (the paper's ADPM setting).
var DefaultHeuristics = designer.DefaultHeuristics

// DisabledHeuristics disables every heuristic (random-search ablation).
var DisabledHeuristics = teamsim.DisabledHeuristics

// Run executes one deterministic seeded simulation.
func Run(cfg Config) (*Result, error) { return teamsim.Run(cfg) }

// RunConcurrent executes one simulation with a goroutine per designer
// exchanging messages with a DPM server goroutine (Fig. 5's distributed
// architecture). Scheduling is nondeterministic.
func RunConcurrent(cfg Config) (*Result, error) { return teamsim.RunConcurrent(cfg) }

// RunMany executes seeded runs in parallel and aggregates them.
func RunMany(cfg Config, runs, parallelism int) (*MultiResult, error) {
	return teamsim.RunMany(cfg, runs, parallelism)
}

// Compare runs both modes over the same seed block (a Fig. 9 row).
func Compare(name string, cfg Config, runs, parallelism int) (*Comparison, error) {
	return teamsim.Compare(name, cfg, runs, parallelism)
}

// Process is a live design process: the DPM holding the constraint
// network, problem hierarchy, and history. Use it to drive operations
// directly instead of simulating designers.
type Process = dpm.DPM

// Operation is one design operation θ (synthesis, verification, or
// decomposition).
type Operation = dpm.Operation

// Operation kinds.
const (
	OpSynthesis     = dpm.OpSynthesis
	OpVerification  = dpm.OpVerification
	OpDecomposition = dpm.OpDecomposition
)

// Assignment is one property-value binding of a synthesis operation.
type Assignment = dpm.Assignment

// Transition records one executed design transition with its captured
// statistics (violations found, evaluations, spin flag).
type Transition = dpm.Transition

// Value is a single property value (a real number or a string).
type Value = domain.Value

// Real constructs a numeric property value.
var Real = domain.Real

// Str constructs a string property value.
var Str = domain.Str

// NewProcess instantiates a design process from a scenario.
func NewProcess(scn *Scenario, mode Mode) (*Process, error) {
	return dpm.FromScenario(scn, mode)
}

// View is the constraint-based heuristic support data available to one
// designer: feasible subspaces, α/β counts, monotonicity lists, known
// violations with fix directions (paper §2.3, §3.1.1).
type View = dcm.View

// BuildView assembles the view of the named designer from the process
// state (the DCM's mining step).
func BuildView(p *Process, designerID string) *View { return dcm.BuildView(p, designerID) }

// RenderBrowser renders the Minerva-style browser window (the paper's
// Figs. 2-4: object browser, constraint pane, property pane with α/β,
// conflict pane) for one designer, as text.
func RenderBrowser(p *Process, designerID string) string { return browser.Full(p, designerID) }

// Network is the design constraint network (properties, constraints,
// statuses, feasible subspaces).
type Network = constraint.Network

// Summary holds descriptive statistics of a sample.
type Summary = stats.Summary

// SolverOptions tune the branch-and-prune constraint solver.
type SolverOptions = solver.Options

// SolverResult reports a constraint-satisfaction search outcome.
type SolverResult = solver.Result

// SolveScenario searches for a satisfying assignment of a scenario's
// design variables by interval branch-and-prune — a satisfiability
// oracle and witness generator for design-problem scenarios.
func SolveScenario(scn *Scenario, opts SolverOptions) (*SolverResult, error) {
	return solver.SolveScenario(scn, opts)
}

// OptimizeResult reports a constrained minimization outcome.
type OptimizeResult = solver.OptResult

// MinimizeScenario searches for the assignment of a scenario's design
// variables that satisfies every constraint and minimizes the objective
// expression (e.g. "System_power"), by interval branch-and-bound.
func MinimizeScenario(scn *Scenario, objective string, opts SolverOptions) (*OptimizeResult, error) {
	return solver.MinimizeScenario(scn, objective, opts)
}
