package adpm

// Integration tests of the public API: end-to-end reproduction checks
// of the paper's headline claims at reduced run counts, and the
// quickstart path a downstream user would follow.

import (
	"strings"
	"testing"
)

func TestPublicQuickstartPath(t *testing.T) {
	scn, err := ParseScenarioString(`
scenario api_test

object Specs {
    property Budget real [0, 100]
}
object Block owner dev {
    property P real [0, 100]

    derived Q real [0, 300] = 3 * P
}
constraint Cap: Q <= Budget
problem Top owner lead {
    inputs { Budget }
    constraints { Cap }
}
problem Work owner dev {
    outputs { P }
    constraints { }
}
decompose Top -> Work
require Budget = 60
`)
	if err != nil {
		t.Fatal(err)
	}

	// Manual process control.
	proc, err := NewProcess(scn, ModeADPM)
	if err != nil {
		t.Fatal(err)
	}
	view := BuildView(proc, "dev")
	pi := view.Props["P"]
	if pi == nil {
		t.Fatal("view missing P")
	}
	// Propagation: Q = 3P <= 60 → P <= 20.
	iv, _ := pi.Feasible.Interval()
	if iv.Hi > 20.01 {
		t.Errorf("feasible P = %v, want narrowed to <= 20", iv)
	}
	tr, err := proc.Apply(Operation{
		Kind: OpSynthesis, Problem: "Work", Designer: "dev",
		Assignments: []Assignment{{Prop: "P", Value: Real(30)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.NewViolations) != 1 || tr.NewViolations[0] != "Cap" {
		t.Errorf("violations = %v, want [Cap]", tr.NewViolations)
	}

	// Automated simulation.
	res, err := Run(Config{Scenario: scn, Mode: ModeADPM, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Error("simulation did not complete")
	}
	if q := res.FinalValues["Q"]; q > 60.0001 {
		t.Errorf("final Q = %v violates the cap", q)
	}
}

func TestPublicSolver(t *testing.T) {
	res, err := SolveScenario(Receiver(), SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("receiver scenario should be satisfiable")
	}
	if len(res.Witness) != 9 {
		t.Errorf("witness covers %d design variables, want 9", len(res.Witness))
	}
}

// TestHeadlineClaimsSmall reruns the paper's §3.2 comparison at a
// reduced scale and asserts every directional claim.
func TestHeadlineClaimsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var sensorCmp, receiverCmp *Comparison
	for _, tc := range []struct {
		name string
		dst  **Comparison
	}{{"sensor", &sensorCmp}, {"receiver", &receiverCmp}} {
		scn, err := ScenarioByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := Compare(tc.name, Config{Scenario: scn, Seed: 1, MaxOps: 3000}, 12, 0)
		if err != nil {
			t.Fatal(err)
		}
		*tc.dst = cmp
		if r := cmp.OpsRatio(); r < 2 {
			t.Errorf("%s: conventional/ADPM ops %.2f < 2 (paper: at least twice)", tc.name, r)
		}
		if r := cmp.StdRatio(); r < 3 {
			t.Errorf("%s: std ratio %.2f < 3 (paper: at least 3x less variable)", tc.name, r)
		}
		if r := cmp.SpinRatio(); r > 0.5 {
			t.Errorf("%s: ADPM spins %.0f%% of conventional (paper: strong reduction)", tc.name, 100*r)
		}
		if cmp.EvalPenaltyTotal() <= 1 {
			t.Errorf("%s: ADPM must consume more evaluations in total", tc.name)
		}
	}
	// Harder case: larger ops reduction, smaller eval penalty.
	if receiverCmp.OpsRatio() <= sensorCmp.OpsRatio() {
		t.Errorf("ops reduction should be larger on the receiver: %.1f vs %.1f",
			receiverCmp.OpsRatio(), sensorCmp.OpsRatio())
	}
	if receiverCmp.EvalPenaltyTotal() >= sensorCmp.EvalPenaltyTotal() {
		t.Errorf("eval penalty should be smaller on the receiver: %.1f vs %.1f",
			receiverCmp.EvalPenaltyTotal(), sensorCmp.EvalPenaltyTotal())
	}
}

func TestScenarioFormatAccessible(t *testing.T) {
	text := Simplified().Format()
	if !strings.Contains(text, "scenario simplified") {
		t.Error("Format output missing scenario name")
	}
	again, err := ParseScenarioString(text)
	if err != nil {
		t.Fatal(err)
	}
	if again.Name != "simplified" {
		t.Error("round trip lost name")
	}
}

func TestHeuristicsToggles(t *testing.T) {
	h := DefaultHeuristics()
	if !h.SmallestSubspace || !h.TabuHistory {
		t.Error("defaults should enable the paper's heuristics")
	}
	if off := DisabledHeuristics(); off.SmallestSubspace || off.AlphaGuided {
		t.Error("DisabledHeuristics should disable everything")
	}
}

func TestRunManyFacade(t *testing.T) {
	m, err := RunMany(Config{Scenario: Simplified(), Mode: ModeADPM, Seed: 1}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 4 {
		t.Errorf("completed = %d/4", m.Completed)
	}
	if m.Ops.Mean <= 0 {
		t.Error("summary missing")
	}
}

func TestValueConstructors(t *testing.T) {
	if v := Real(2.5); v.IsString() || v.Num() != 2.5 {
		t.Error("Real broken")
	}
	if v := Str("geometry"); !v.IsString() || v.Text() != "geometry" {
		t.Error("Str broken")
	}
}

func TestMinimizeScenarioFacade(t *testing.T) {
	res, err := MinimizeScenario(Simplified(), "Amp_power", SolverOptions{MaxNodes: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("no feasible point")
	}
	// Min power subject to System_gain >= 30 and Filter_loss <= 18:
	// gain = 30·W·I·√B >= 30 + loss(>=200/30=6.67) → cheap corner well
	// below the 100 budget.
	if res.Objective > 40 {
		t.Errorf("minimized Amp_power = %v, want well under the budget", res.Objective)
	}
}

func TestRenderBrowserFacade(t *testing.T) {
	proc, err := NewProcess(Receiver(), ModeADPM)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderBrowser(proc, "circuit")
	for _, want := range []string{"PROPERTIES", "CONSTRAINTS", "CONFLICTS"} {
		if !strings.Contains(out, want) {
			t.Errorf("browser missing %q", want)
		}
	}
}
