package adpm

// Size-sweep benchmarks for the propagation engine over the parametric
// network families in internal/scenario (grid, layers, hub, sparse),
// N from 10² to 10⁵ properties. Three axes:
//
//   - BenchmarkPropagateScale: from-scratch fixpoint cost per family
//     per size — the raw scaling curve.
//   - BenchmarkPropagateParallel: the round engine on the one-region
//     grid at Parallelism 1 vs 2 vs GOMAXPROCS. On a multi-core box the
//     GOMAXPROCS entry is the speedup claim; on a single core it
//     honestly reports the round engine's coordination overhead.
//   - BenchmarkPropagateIncremental: per-edit re-propagation on the
//     many-region sparse family — full ResetFeasible+Propagate after a
//     single rebinding vs the dirty-region incremental path.
//
// Latency distributions are recorded in one stats.LogHist per sweep
// point, Reset between points so the steady state allocates nothing.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/constraint"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// scaleBenchOpts sizes the revise budget so no generated family is
// capped (the 2000-revision default is tuned for paper-scale nets).
func scaleBenchOpts(net *constraint.Network) constraint.PropagateOptions {
	return constraint.PropagateOptions{MaxRevisions: 40*net.NumConstraints() + 1000}
}

// scaleBenchNets caches built networks across sub-benchmarks so the
// generator and parser run once per (family, size). Benchmarks that
// mutate the network (parallel options are fine; bindings are not) must
// build their own copy instead.
var scaleBenchNets = map[string]*constraint.Network{}

func scaleBenchNet(b *testing.B, fam string, n int) *constraint.Network {
	b.Helper()
	key := fmt.Sprintf("%s:%d", fam, n)
	if net, ok := scaleBenchNets[key]; ok {
		return net
	}
	net, err := scenario.MustScale(fam, n, 1).Scenario.BuildNetwork()
	if err != nil {
		b.Fatalf("build %s: %v", key, err)
	}
	scaleBenchNets[key] = net
	return net
}

// BenchmarkPropagateScale sweeps from-scratch propagation over every
// family and size. ns/op is the full ResetFeasible+Propagate cycle;
// p50/p99 come from a per-iteration histogram.
func BenchmarkPropagateScale(b *testing.B) {
	var h stats.LogHist
	for _, fam := range scenario.ScaleFamilies() {
		for _, n := range []int{100, 1000, 10000, 100000} {
			b.Run(fmt.Sprintf("%s/n=%d", fam, n), func(b *testing.B) {
				net := scaleBenchNet(b, fam, n)
				opts := scaleBenchOpts(net)
				// One untimed pass warms the scratch workspace and shadow
				// trees so allocs/op is the steady state even when b.N is 1
				// (the 10⁵ points run seconds per iteration).
				net.ResetFeasible()
				net.Propagate(opts)
				h.Reset()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t0 := time.Now()
					net.ResetFeasible()
					res := net.Propagate(opts)
					h.Observe(time.Since(t0).Nanoseconds())
					if res.Capped {
						b.Fatalf("capped at %d revisions", res.Revisions)
					}
				}
				b.ReportMetric(float64(h.Quantile(0.5)), "p50-ns")
				b.ReportMetric(float64(h.Quantile(0.99)), "p99-ns")
			})
		}
	}
}

// BenchmarkPropagateParallel compares worklist engines on the 10⁴
// one-region grid: sequential FIFO (p=1) against the deterministic
// round engine at p=2 and p=GOMAXPROCS.
func BenchmarkPropagateParallel(b *testing.B) {
	net := scaleBenchNet(b, "grid", 10000)
	ps := []int{1, 2}
	if gmp := runtime.GOMAXPROCS(0); gmp > 2 {
		ps = append(ps, gmp)
	}
	for _, p := range ps {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			opts := scaleBenchOpts(net)
			opts.Parallelism = p
			net.ResetFeasible()
			net.Propagate(opts) // warm scratch (see BenchmarkPropagateScale)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.ResetFeasible()
				if res := net.Propagate(opts); res.Capped {
					b.Fatalf("capped at %d revisions", res.Revisions)
				}
			}
		})
	}
}

// BenchmarkPropagateIncremental measures re-propagation after one
// property edit on the 10⁴ sparse family (157 independent regions).
// The "full" variant is what a caller without dirty tracking must do;
// "incremental" re-propagates only the edited property's region.
func BenchmarkPropagateIncremental(b *testing.B) {
	sn := scenario.MustScale("sparse", 10000, 1)
	build := func() *constraint.Network {
		net, err := sn.Scenario.BuildNetwork()
		if err != nil {
			b.Fatal(err)
		}
		return net
	}
	prop := sn.Ops[0].Assignments[0].Prop
	val := sn.Witness[prop]

	b.Run("full-after-edit", func(b *testing.B) {
		net := build()
		opts := scaleBenchOpts(net)
		net.ResetFeasible()
		net.Propagate(opts) // warm scratch (see BenchmarkPropagateScale)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := net.BindReal(prop, val); err != nil {
				b.Fatal(err)
			}
			net.ResetFeasible()
			if res := net.Propagate(opts); res.Capped {
				b.Fatalf("capped at %d revisions", res.Revisions)
			}
		}
	})

	b.Run("incremental-after-edit", func(b *testing.B) {
		net := build()
		opts := scaleBenchOpts(net)
		opts.Incremental = true
		// Establish the fixpoint marker the incremental path resumes from.
		net.ResetFeasible()
		if res := net.Propagate(opts); res.Capped {
			b.Fatalf("capped at %d revisions", res.Revisions)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := net.BindReal(prop, val); err != nil {
				b.Fatal(err)
			}
			if res := net.Propagate(opts); res.Capped {
				b.Fatalf("capped at %d revisions", res.Revisions)
			}
		}
	})
}
