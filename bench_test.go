package adpm

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Figs. 7-10), ablation benchmarks for the design choices DESIGN.md
// calls out, and micro-benchmarks of the engine substrates. The figure
// benchmarks report the paper's metrics (operations, evaluations, spins,
// their ratios) via b.ReportMetric, so `go test -bench` regenerates the
// evaluation numbers alongside timing.

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/dcm"
	"repro/internal/dddl"
	"repro/internal/dpm"
	"repro/internal/figures"
	"repro/internal/scenario"
)

// benchRuns keeps figure benchmarks affordable; cmd/repro uses the
// paper's full 60 runs.
const benchRuns = 10

// BenchmarkFig7Profile regenerates the Fig. 7 per-operation profile
// (violations found and constraint evaluations per executed operation,
// conventional vs ADPM) on the simplified case.
func BenchmarkFig7Profile(b *testing.B) {
	b.ReportAllocs()
	var f *figures.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		f, err = figures.Fig7("simplified", 3, 3000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(f.Conventional.Operations), "conv-ops")
	b.ReportMetric(float64(f.ADPM.Operations), "adpm-ops")
	b.ReportMetric(float64(f.Conventional.TotalViolations), "conv-violations")
	b.ReportMetric(float64(f.ADPM.TotalViolations), "adpm-violations")
}

// BenchmarkFig8Snapshot regenerates the Fig. 8 statistics window
// (violations, evaluations, spins over the run) for a receiver run.
func BenchmarkFig8Snapshot(b *testing.B) {
	b.ReportAllocs()
	var f *figures.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		f, err = figures.Fig8(ModeADPM, 1, 3000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(f.Final.Operations), "ops")
	b.ReportMetric(float64(f.Final.Evaluations), "evals")
	b.ReportMetric(float64(f.Final.Spins), "spins")
}

// BenchmarkFig9aOperations regenerates Fig. 9(a): mean design operations
// (and their variability) per case and mode, plus the in-text spin
// ratio.
func BenchmarkFig9aOperations(b *testing.B) {
	b.ReportAllocs()
	for _, name := range []string{"sensor", "receiver"} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			scn, err := scenario.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var cmp *Comparison
			for i := 0; i < b.N; i++ {
				cmp, err = Compare(name, Config{Scenario: scn, Seed: 1, MaxOps: 3000}, benchRuns, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cmp.Conventional.Ops.Mean, "conv-ops")
			b.ReportMetric(cmp.ADPM.Ops.Mean, "adpm-ops")
			b.ReportMetric(cmp.OpsRatio(), "ops-ratio")
			b.ReportMetric(cmp.StdRatio(), "std-ratio")
			b.ReportMetric(100*cmp.SpinRatio(), "spin-pct")
		})
	}
}

// BenchmarkFig9bEvaluations regenerates Fig. 9(b): constraint
// evaluations — total and per operation — per case and mode.
func BenchmarkFig9bEvaluations(b *testing.B) {
	b.ReportAllocs()
	for _, name := range []string{"sensor", "receiver"} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			scn, err := scenario.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var cmp *Comparison
			for i := 0; i < b.N; i++ {
				cmp, err = Compare(name, Config{Scenario: scn, Seed: 1, MaxOps: 3000}, benchRuns, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cmp.Conventional.Evals.Mean, "conv-evals")
			b.ReportMetric(cmp.ADPM.Evals.Mean, "adpm-evals")
			b.ReportMetric(cmp.EvalPenaltyTotal(), "penalty-total")
			b.ReportMetric(cmp.EvalPenaltyPerOp(), "penalty-perop")
		})
	}
}

// BenchmarkFig10TightnessSweep regenerates Fig. 10: design operations vs
// the receiver's gain-requirement tightness.
func BenchmarkFig10TightnessSweep(b *testing.B) {
	b.ReportAllocs()
	var f *figures.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		f, err = figures.Fig10(figures.Options{Runs: 5, Seed: 1, MaxOps: 3000})
		if err != nil {
			b.Fatal(err)
		}
	}
	conv, adpm := f.VariationRange()
	b.ReportMetric(conv, "conv-variation")
	b.ReportMetric(adpm, "adpm-variation")
}

// ---------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §4)
// ---------------------------------------------------------------------

// BenchmarkAblationHeuristics disables one designer heuristic at a time
// and reports ADPM operations on the receiver — quantifying each
// heuristic's contribution.
func BenchmarkAblationHeuristics(b *testing.B) {
	b.ReportAllocs()
	variants := []struct {
		name   string
		mutate func(*Heuristics)
	}{
		{"full", func(h *Heuristics) {}},
		{"no-smallest-subspace", func(h *Heuristics) { h.SmallestSubspace = false }},
		{"no-alpha", func(h *Heuristics) { h.AlphaGuided = false }},
		{"no-beta", func(h *Heuristics) { h.BetaGuided = false }},
		{"no-monotone-voting", func(h *Heuristics) { h.MonotoneVoting = false }},
		{"no-feasible-choice", func(h *Heuristics) { h.FeasibleChoice = false }},
		{"no-tabu", func(h *Heuristics) { h.TabuHistory = false }},
		{"margin-steps", func(h *Heuristics) { h.MarginSteps = true }},
		{"no-coordinated-fix", func(h *Heuristics) { h.CoordinatedFix = false }},
		{"all-off", func(h *Heuristics) { *h = Heuristics{} }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			h := DefaultHeuristics()
			v.mutate(&h)
			var m *MultiResult
			for i := 0; i < b.N; i++ {
				var err error
				m, err = RunMany(Config{
					Scenario: Receiver(), Mode: ModeADPM, Seed: 1,
					MaxOps: 3000, Heuristics: &h,
				}, benchRuns, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.Ops.Mean, "ops")
			b.ReportMetric(m.CompletionRate(), "completion")
		})
	}
}

// BenchmarkAblationPropagationDepth compares status-only constraint
// checking (MaxVisits=1, no fixpoint) against the full AC-3/HC4
// fixpoint, on ADPM receiver runs.
func BenchmarkAblationPropagationDepth(b *testing.B) {
	b.ReportAllocs()
	for _, v := range []struct {
		name string
		opts constraint.PropagateOptions
	}{
		{"single-pass", constraint.PropagateOptions{MaxVisits: 1, MaxRevisions: 100}},
		{"full-fixpoint", constraint.PropagateOptions{}},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var m *MultiResult
			for i := 0; i < b.N; i++ {
				var err error
				m, err = RunMany(Config{
					Scenario: Receiver(), Mode: ModeADPM, Seed: 1,
					MaxOps: 3000, PropOpts: v.opts,
				}, benchRuns, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.Ops.Mean, "ops")
			b.ReportMetric(m.Evals.Mean, "evals")
			b.ReportMetric(m.CompletionRate(), "completion")
		})
	}
}

// BenchmarkAblationEngines compares the deterministic event loop with
// the concurrent goroutine-per-designer engine on identical workloads.
func BenchmarkAblationEngines(b *testing.B) {
	b.ReportAllocs()
	cfg := Config{Scenario: Sensor(), Mode: ModeADPM, MaxOps: 3000}
	b.Run("deterministic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg.Seed = int64(i)
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("concurrent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg.Seed = int64(i)
			if _, err := RunConcurrent(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Engine micro-benchmarks
// ---------------------------------------------------------------------

// BenchmarkPropagate measures one full propagation over the receiver
// network with requirements bound.
func BenchmarkPropagate(b *testing.B) {
	b.ReportAllocs()
	net, err := Receiver().BuildNetwork()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ResetFeasible()
		net.Propagate(constraint.PropagateOptions{})
	}
}

// BenchmarkMovementWindow measures the per-variable exploration that
// dominates ADPM's evaluation cost.
func BenchmarkMovementWindow(b *testing.B) {
	b.ReportAllocs()
	proc, err := NewProcess(Receiver(), ModeADPM)
	if err != nil {
		b.Fatal(err)
	}
	for prop, val := range map[string]float64{
		"Diff_pair_W": 4, "Freq_ind": 0.25, "Bias_I": 9,
	} {
		if err := proc.Net.BindReal(prop, val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.MovementWindow("Diff_pair_W")
	}
}

// BenchmarkBuildView measures the DCM's heuristic-data mining step.
func BenchmarkBuildView(b *testing.B) {
	b.ReportAllocs()
	proc, err := NewProcess(Receiver(), ModeADPM)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dcm.BuildView(proc, "circuit")
	}
}

// BenchmarkRunSimplified measures a whole simulated design process.
func BenchmarkRunSimplified(b *testing.B) {
	b.ReportAllocs()
	for _, mode := range []struct {
		name string
		m    dpm.Mode
	}{{"conventional", ModeConventional}, {"adpm", ModeADPM}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			scn := Simplified()
			for i := 0; i < b.N; i++ {
				if _, err := Run(Config{Scenario: scn, Mode: mode.m, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDDDLParse measures scenario parsing and validation.
func BenchmarkDDDLParse(b *testing.B) {
	b.ReportAllocs()
	src := scenario.ReceiverSource(48)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := dddl.Parse(strings.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstraintParse measures constraint-expression parsing.
func BenchmarkConstraintParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := constraint.ParseConstraint("bench",
			"30 * Diff_pair_W * Freq_ind * sqrt(Bias_I) + 1.5 * Mixer_gm * sqrt(Bias_I) - 60 * Gap / (Beam_width * sqrt(Drive_V)) >= MinGain"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolver measures the branch-and-prune satisfiability search
// over each built-in scenario.
func BenchmarkSolver(b *testing.B) {
	b.ReportAllocs()
	for _, name := range scenario.Names() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			scn, _ := scenario.ByName(name)
			var nodes int
			for i := 0; i < b.N; i++ {
				res, err := SolveScenario(scn, SolverOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Satisfiable {
					b.Fatal("scenario became unsatisfiable")
				}
				nodes = res.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkVerifyScenariosComplete is a guard benchmark: a single seed
// of every scenario in every mode must still complete.
func BenchmarkVerifyScenariosComplete(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, name := range scenario.Names() {
			scn, _ := scenario.ByName(name)
			for _, mode := range []dpm.Mode{ModeConventional, ModeADPM} {
				r, err := Run(Config{Scenario: scn, Mode: mode, Seed: 11, MaxOps: 3000})
				if err != nil {
					b.Fatal(err)
				}
				if !r.Completed {
					b.Fatalf("%s/%s seed 11 did not complete", name, mode)
				}
			}
		}
	}
}

// BenchmarkOptimizer measures branch-and-bound minimization of the
// receiver's power under all specs.
func BenchmarkOptimizer(b *testing.B) {
	b.ReportAllocs()
	var obj float64
	for i := 0; i < b.N; i++ {
		res, err := MinimizeScenario(Receiver(), "System_power", SolverOptions{MaxNodes: 2000})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("infeasible")
		}
		obj = res.Objective
	}
	b.ReportMetric(obj, "best-power-mW")
}
