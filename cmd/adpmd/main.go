// Command adpmd serves design sessions over HTTP: a sharded
// multi-session ADPM host (internal/server) exposing the DPM next-state
// function as a JSON API.
//
// Usage:
//
//	adpmd [-addr :8080] [-shards 4] [-mailbox 64] [-maxops 5000]
//	      [-idle-timeout 0] [-trace prefix] [-pprof :6060]
//	      [-data-dir dir] [-fsync always|interval|never]
//	      [-sync-every 25ms] [-segment-bytes 4194304]
//
// API:
//
//	POST   /sessions             {"scenario":"receiver","mode":"ADPM"}  → 201 {id,...}
//	POST   /sessions/{id}/ops    {"ops":[...]} atomic batch             → 200 deltas
//	GET    /sessions/{id}/state                                         → 200 snapshot (cached per generation)
//	GET    /sessions/{id}/events                                        → 200 SSE notification stream
//	DELETE /sessions/{id}                                               → 200 summary
//	GET    /stats, /healthz, /readyz
//
// Backpressure: a full shard mailbox answers 429 with a Retry-After
// derived from how congested it was; a draining server answers 503. On
// SIGINT/SIGTERM the process stops intake, finishes every accepted
// request, retires all sessions, and prints per-shard summaries before
// exiting.
//
// -data-dir makes sessions durable: every accepted batch is
// write-ahead-logged under <dir>/shard-<i>/ before it is acknowledged,
// idle eviction parks sessions instead of destroying them, and a
// restarted adpmd recovers every session by deterministic replay —
// byte-identical GET /state. -fsync picks the durability discipline
// (always: fsync before each ack; interval: group commit every
// -sync-every; never: leave it to the OS).
//
// -trace writes one JSONL event stream per shard (<prefix>-shard<i>.jsonl),
// each ending in an aggregated run-end that reconciles against its
// operation events (verify with the tracecheck command). -pprof serves
// pprof and expvar — including the live "adpmd" shard gauges — on the
// given address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/teamsim"
	"repro/internal/trace"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	shards := flag.Int("shards", server.DefaultShards, "session shards (event loops)")
	mailbox := flag.Int("mailbox", server.DefaultMailboxSize, "per-shard mailbox bound (backpressure past this)")
	maxOps := flag.Int("maxops", teamsim.DefaultMaxOps, "per-session operation budget ceiling")
	idleTimeout := flag.Duration("idle-timeout", 0, "evict sessions idle this long (0 disables)")
	tracePrefix := flag.String("trace", "", "write per-shard JSONL traces to <prefix>-shard<i>.jsonl")
	pprofAddr := flag.String("pprof", "", "serve pprof/expvar debug endpoints on this address (e.g. :6060)")
	dataDir := flag.String("data-dir", "", "write-ahead-log sessions under this directory (durability + crash recovery)")
	fsyncMode := flag.String("fsync", "always", "WAL durability: always, interval, or never")
	syncEvery := flag.Duration("sync-every", server.DefaultSyncEvery, "group-commit period under -fsync interval")
	segmentBytes := flag.Int64("segment-bytes", wal.DefaultSegmentBytes, "rotate (snapshot-compact) WAL segments past this size")
	heartbeat := flag.Duration("heartbeat", server.DefaultHeartbeat, "SSE keep-alive comment period on /sessions/{id}/events")
	idemCap := flag.Int("idem-cap", server.DefaultIdemCap, "per-session cached idempotency acks (LRU; negative = unlimited)")
	flag.Parse()

	policy, err := wal.ParsePolicy(*fsyncMode)
	fail(err)
	opts := server.Options{
		Shards:       *shards,
		MailboxSize:  *mailbox,
		MaxOps:       *maxOps,
		IdleTimeout:  *idleTimeout,
		DataDir:      *dataDir,
		Fsync:        policy,
		SyncEvery:    *syncEvery,
		SegmentBytes: *segmentBytes,
		Heartbeat:    *heartbeat,
		IdemCap:      *idemCap,
	}

	var recs []*trace.Recorder
	var traceFiles []*os.File
	if *tracePrefix != "" {
		base := strings.TrimSuffix(*tracePrefix, ".jsonl")
		recs = make([]*trace.Recorder, *shards)
		for i := 0; i < *shards; i++ {
			f, err := os.Create(fmt.Sprintf("%s-shard%d.jsonl", base, i))
			fail(err)
			traceFiles = append(traceFiles, f)
			recs[i] = trace.New(trace.Options{W: f})
		}
		opts.ShardRecorder = func(shard int) *trace.Recorder { return recs[shard] }
	}

	srv, err := server.Open(opts)
	fail(err)
	srv.PublishDebug()
	if *dataDir != "" {
		recovered := 0
		for _, st := range srv.Stats().Shards {
			recovered += int(st.Parked)
		}
		fmt.Fprintf(os.Stderr, "adpmd: durable under %s (fsync=%s); recovered %d sessions\n",
			*dataDir, policy, recovered)
	}

	if *pprofAddr != "" {
		errc := trace.ServeDebug(*pprofAddr)
		select {
		case err := <-errc:
			fail(err)
		default:
		}
		fmt.Fprintf(os.Stderr, "adpmd: debug endpoints on http://%s/debug/\n", *pprofAddr)
	}

	// Hardened listener: header/read deadlines (slowloris → 408) and a
	// global body cap on top of the per-handler MaxBytesReader.
	hs := server.NewHTTPServer(*addr, srv.Handler())
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "adpmd: %d shards serving on %s\n", *shards, *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "adpmd: %v — draining\n", sig)
	case err := <-httpErr:
		fail(err)
	}

	// End the long-lived event streams first — an SSE handler outlives
	// any single request and would otherwise hold Shutdown open until
	// its client went away. Then stop intake so every in-flight handler
	// finishes (its shard task was accepted and will run), then drain
	// the shards.
	srv.StopSubscribers()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "adpmd: shutdown: %v\n", err)
	}
	sums := srv.Drain()
	for _, sum := range sums {
		fmt.Fprintf(os.Stderr, "adpmd: shard %d: %d sessions, %d ops, %d evals, %d spins, %d notifications, %d evicted\n",
			sum.Shard, len(sum.Sessions), sum.Totals.Operations, sum.Totals.Evaluations,
			sum.Totals.Spins, sum.Totals.Notifications, sum.Evictions)
	}
	for i, rec := range recs {
		if err := rec.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "adpmd: trace shard %d: %v\n", i, err)
		}
	}
	for _, f := range traceFiles {
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "adpmd: %v\n", err)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "adpmd:", err)
		os.Exit(1)
	}
}
