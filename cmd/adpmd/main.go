// Command adpmd serves design sessions over HTTP: a sharded
// multi-session ADPM host (internal/server) exposing the DPM next-state
// function as a JSON API.
//
// Usage:
//
//	adpmd [-addr :8080] [-shards 4] [-mailbox 64] [-maxops 5000]
//	      [-idle-timeout 0] [-trace prefix] [-pprof :6060]
//	      [-data-dir dir] [-fsync always|interval|never]
//	      [-sync-every 25ms] [-segment-bytes 4194304]
//
// API:
//
//	POST   /sessions             {"scenario":"receiver","mode":"ADPM"}  → 201 {id,...}
//	POST   /sessions/{id}/ops    {"ops":[...]} atomic batch             → 200 deltas
//	GET    /sessions/{id}/state                                         → 200 snapshot (cached per generation)
//	GET    /sessions/{id}/events                                        → 200 SSE notification stream
//	DELETE /sessions/{id}                                               → 200 summary
//	GET    /stats, /healthz, /readyz
//
// Backpressure: a full shard mailbox answers 429 with a Retry-After
// derived from how congested it was; a draining server answers 503. On
// SIGINT/SIGTERM the process stops intake, finishes every accepted
// request, retires all sessions, and prints per-shard summaries before
// exiting.
//
// -data-dir makes sessions durable: every accepted batch is
// write-ahead-logged under <dir>/shard-<i>/ before it is acknowledged,
// idle eviction parks sessions instead of destroying them, and a
// restarted adpmd recovers every session by deterministic replay —
// byte-identical GET /state. -fsync picks the durability discipline
// (always: fsync before each ack; interval: group commit every
// -sync-every; never: leave it to the OS).
//
// -trace writes one JSONL event stream per shard (<prefix>-shard<i>.jsonl),
// each ending in an aggregated run-end that reconciles against its
// operation events (verify with the tracecheck command). -pprof serves
// pprof and expvar — including the live "adpmd" shard gauges — on the
// given address.
//
// # Replication
//
// Two adpmd processes form a warm-standby pair:
//
//	adpmd -addr :8081 -data-dir /data/b -follow :9090            # follower
//	adpmd -addr :8080 -data-dir /data/a -repl 127.0.0.1:9090 \
//	      -repl-ack quorum -fsync always [-rolling]              # leader
//
// The leader ships every shard-WAL mutation to the follower over
// -repl, which continuously folds the stream into recoverable session
// images. -repl-ack quorum makes the ship part of the ack path — a
// batch is acknowledged only after it is durable on both nodes (zero
// acked-op loss across failover; requires -fsync always). async acks
// locally and lets the follower lag while the link is down; a failover
// may lose only the acked-but-unshipped suffix, prefix-closed. GET
// /readyz on either node reports per-shard role, sync state, and lag.
//
// The follower serves 503 on every session route until it is promoted:
// by the leader's handoff, or explicitly via POST /promote (the
// kill-and-promote path when the leader is gone). Promotion swaps the
// admin handler for a full serving stack opened over the mirrored
// data, recovering every session by the same replay a restart uses.
//
// -rolling turns the leader's SIGTERM drain into a zero-loss handoff:
// park every session (their WAL images ship to the follower), drain,
// final catch-up, hand off. The follower promotes itself and owns the
// pair; restart the old leader as the new follower to complete the
// rolling restart.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/teamsim"
	"repro/internal/trace"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	shards := flag.Int("shards", server.DefaultShards, "session shards (event loops)")
	mailbox := flag.Int("mailbox", server.DefaultMailboxSize, "per-shard mailbox bound (backpressure past this)")
	maxOps := flag.Int("maxops", teamsim.DefaultMaxOps, "per-session operation budget ceiling")
	idleTimeout := flag.Duration("idle-timeout", 0, "evict sessions idle this long (0 disables)")
	tracePrefix := flag.String("trace", "", "write per-shard JSONL traces to <prefix>-shard<i>.jsonl")
	pprofAddr := flag.String("pprof", "", "serve pprof/expvar debug endpoints on this address (e.g. :6060)")
	dataDir := flag.String("data-dir", "", "write-ahead-log sessions under this directory (durability + crash recovery)")
	fsyncMode := flag.String("fsync", "always", "WAL durability: always, interval, or never")
	syncEvery := flag.Duration("sync-every", server.DefaultSyncEvery, "group-commit period under -fsync interval")
	segmentBytes := flag.Int64("segment-bytes", wal.DefaultSegmentBytes, "rotate (snapshot-compact) WAL segments past this size")
	heartbeat := flag.Duration("heartbeat", server.DefaultHeartbeat, "SSE keep-alive comment period on /sessions/{id}/events")
	idemCap := flag.Int("idem-cap", server.DefaultIdemCap, "per-session cached idempotency acks (LRU; negative = unlimited)")
	repl := flag.String("repl", "", "leader: replicate shard WALs to the follower at this host:port (requires -data-dir)")
	replAck := flag.String("repl-ack", "async", "replication ack mode: quorum (ship before ack; requires -fsync always) or async")
	rolling := flag.Bool("rolling", false, "with -repl: SIGTERM parks all sessions, drains, and hands the pair off to the follower")
	follow := flag.String("follow", "", "follower: accept replication on this address, serve admin HTTP on -addr, promote on handoff or POST /promote")
	adoptAddr := flag.String("adopt", "", "accept cross-pair session migrations on this address (replica transport; requires -data-dir)")
	flag.Parse()

	policy, err := wal.ParsePolicy(*fsyncMode)
	fail(err)
	var quorum bool
	switch *replAck {
	case "async":
	case "quorum":
		quorum = true
		if *repl != "" && policy != wal.SyncAlways {
			fail(fmt.Errorf("-repl-ack quorum promises dual durability per ack and needs -fsync always"))
		}
	default:
		fail(fmt.Errorf("-repl-ack must be quorum or async, got %q", *replAck))
	}
	if *follow != "" && *repl != "" {
		fail(fmt.Errorf("-follow and -repl are mutually exclusive (one node, one role)"))
	}
	if (*follow != "" || *repl != "") && *dataDir == "" {
		fail(fmt.Errorf("replication works on WAL bytes: -follow/-repl require -data-dir"))
	}
	if *rolling && *repl == "" {
		fail(fmt.Errorf("-rolling hands off to a follower: it requires -repl"))
	}
	if *adoptAddr != "" && *dataDir == "" {
		fail(fmt.Errorf("adoption installs sessions durably: -adopt requires -data-dir"))
	}
	opts := server.Options{
		Shards:       *shards,
		MailboxSize:  *mailbox,
		MaxOps:       *maxOps,
		IdleTimeout:  *idleTimeout,
		DataDir:      *dataDir,
		Fsync:        policy,
		SyncEvery:    *syncEvery,
		SegmentBytes: *segmentBytes,
		Heartbeat:    *heartbeat,
		IdemCap:      *idemCap,
	}

	var recs []*trace.Recorder
	var traceFiles []*os.File
	if *tracePrefix != "" {
		base := strings.TrimSuffix(*tracePrefix, ".jsonl")
		recs = make([]*trace.Recorder, *shards)
		for i := 0; i < *shards; i++ {
			f, err := os.Create(fmt.Sprintf("%s-shard%d.jsonl", base, i))
			fail(err)
			traceFiles = append(traceFiles, f)
			recs[i] = trace.New(trace.Options{W: f})
		}
		opts.ShardRecorder = func(shard int) *trace.Recorder { return recs[shard] }
	}

	if *follow != "" {
		runFollower(*addr, *follow, opts)
		return
	}

	var rep *replica.Replicator
	if *repl != "" {
		rep, err = replica.NewReplicator(replica.ReplicatorOptions{
			Peer:    replica.Dial(*repl),
			DataDir: *dataDir,
			Shards:  *shards,
			Quorum:  quorum,
		})
		fail(err)
		opts.Repl = rep
		opts.ReplStatus = func(shard int) server.ReplStatus {
			st := rep.ShardStatus(shard)
			return server.ReplStatus{
				Role: "leader", Quorum: st.Quorum, InSync: st.InSync,
				LagRecords: st.LagRecords, LagBytes: st.LagBytes,
			}
		}
	}

	srv, err := server.Open(opts)
	fail(err)
	srv.PublishDebug()
	if *dataDir != "" {
		recovered := 0
		for _, st := range srv.Stats().Shards {
			recovered += int(st.Parked)
		}
		fmt.Fprintf(os.Stderr, "adpmd: durable under %s (fsync=%s); recovered %d sessions\n",
			*dataDir, policy, recovered)
	}
	if rep != nil {
		if err := rep.CatchUpAll(); err != nil {
			fmt.Fprintf(os.Stderr, "adpmd: initial catch-up: %v (retried on every ship)\n", err)
		}
		fmt.Fprintf(os.Stderr, "adpmd: replicating to %s (%s acks)\n", *repl, *replAck)
	}

	if *adoptAddr != "" {
		// Cross-pair migration intake: internal/cluster ships parked
		// session images here over the replica transport; each lands as
		// one durable adopt record before the frame is acknowledged.
		aln, err := net.Listen("tcp", *adoptAddr)
		fail(err)
		defer aln.Close()
		go func() {
			if err := replica.Serve(aln, adoptPeer{srv}); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "adpmd: adopt listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "adpmd: accepting session adoption on %s\n", *adoptAddr)
	}

	if *pprofAddr != "" {
		errc := trace.ServeDebug(*pprofAddr)
		select {
		case err := <-errc:
			fail(err)
		default:
		}
		fmt.Fprintf(os.Stderr, "adpmd: debug endpoints on http://%s/debug/\n", *pprofAddr)
	}

	// Hardened listener: header/read deadlines (slowloris → 408) and a
	// global body cap on top of the per-handler MaxBytesReader.
	hs := server.NewHTTPServer(*addr, srv.Handler())
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "adpmd: %d shards serving on %s\n", *shards, *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "adpmd: %v — draining\n", sig)
	case err := <-httpErr:
		fail(err)
	}

	// End the long-lived event streams first — an SSE handler outlives
	// any single request and would otherwise hold Shutdown open until
	// its client went away. Then stop intake so every in-flight handler
	// finishes (its shard task was accepted and will run), then drain
	// the shards.
	srv.StopSubscribers()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "adpmd: shutdown: %v\n", err)
	}
	if *rolling && rep != nil {
		// Park-then-transfer: every session's image lands in its WAL
		// (and ships) before the drain, so the handoff moves the whole
		// working set, not just what happened to be parked already.
		parked := srv.ParkAll()
		fmt.Fprintf(os.Stderr, "adpmd: rolling: parked %d sessions for transfer\n", parked)
	}
	sums := srv.Drain()
	for _, sum := range sums {
		fmt.Fprintf(os.Stderr, "adpmd: shard %d: %d sessions, %d ops, %d evals, %d spins, %d notifications, %d evicted\n",
			sum.Shard, len(sum.Sessions), sum.Totals.Operations, sum.Totals.Evaluations,
			sum.Totals.Spins, sum.Totals.Notifications, sum.Evictions)
	}
	for i, rec := range recs {
		if err := rec.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "adpmd: trace shard %d: %v\n", i, err)
		}
	}
	for _, f := range traceFiles {
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "adpmd: %v\n", err)
		}
	}
	if *rolling && rep != nil {
		// Handoff runs a final catch-up over the closed WALs, then grants
		// the follower permission to promote. A failure leaves the data
		// owned here — restarting this node in place loses nothing.
		if err := rep.Handoff(); err != nil {
			fmt.Fprintf(os.Stderr, "adpmd: rolling handoff FAILED: %v — follower not promoted, data remains local\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "adpmd: rolling: handoff complete — the follower owns the pair\n")
	}
}

// runFollower is the standby role: mirror the leader's shard WALs from
// the replication listener into recoverable session images, answer 503
// on every session route, and — on the leader's handoff or an explicit
// POST /promote — swap in a full serving stack opened over the
// mirrored data. The swap is atomic: requests racing the promotion see
// either the 503 standby handler or the recovered server, never a
// half-open state.
func runFollower(addr, followAddr string, opts server.Options) {
	fol, err := replica.NewFollower(replica.FollowerOptions{Dir: opts.DataDir, Shards: opts.Shards})
	fail(err)
	ln, err := net.Listen("tcp", followAddr)
	fail(err)
	go func() {
		if err := replica.Serve(ln, fol); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintf(os.Stderr, "adpmd: replication listener: %v\n", err)
		}
	}()

	var handler atomic.Pointer[http.Handler] // what currently serves -addr
	promoted := make(chan *server.Server, 1)
	var promoteOnce sync.Once
	promote := func(reason string) {
		promoteOnce.Do(func() {
			fmt.Fprintf(os.Stderr, "adpmd: promoting (%s)\n", reason)
			// Promote first: from here every replication write from a
			// still-live leader is refused with ErrPromoted, so the fork
			// point is sharp. Then stop accepting new leader connections.
			if err := fol.Promote(); err != nil {
				fail(err)
			}
			ln.Close()
			srv, err := server.Open(opts)
			fail(err)
			srv.PublishDebug()
			recovered := 0
			for _, st := range srv.Stats().Shards {
				recovered += int(st.Parked)
			}
			h := srv.Handler()
			handler.Store(&h)
			fmt.Fprintf(os.Stderr, "adpmd: promoted — serving %d recovered sessions on %s\n", recovered, addr)
			promoted <- srv
		})
	}

	// Handoff watcher: the leader's rolling restart ends in a handoff
	// frame; seeing it means the mirror is complete and this node owns
	// the data.
	go func() {
		for !fol.Promoted() {
			if fol.HandoffReceived() {
				promote("handoff received")
				return
			}
			time.Sleep(100 * time.Millisecond)
		}
	}()

	standby := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"ok":true,"role":"follower"}`)
		case r.URL.Path == "/promote" && r.Method == http.MethodPost:
			promote("admin request")
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"promoted":true}`)
		case r.URL.Path == "/readyz":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{
				"ready": false, "role": "follower", "shards": fol.Status(),
			})
		default:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "follower: not serving until promoted", http.StatusServiceUnavailable)
		}
	})
	sh := http.Handler(standby)
	handler.Store(&sh)
	hs := server.NewHTTPServer(addr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	}))
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "adpmd: follower mirroring on %s, admin on %s\n", followAddr, addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "adpmd: %v — draining\n", sig)
	case err := <-httpErr:
		fail(err)
	}

	var srv *server.Server
	select {
	case srv = <-promoted:
	default:
	}
	if srv != nil {
		srv.StopSubscribers()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "adpmd: shutdown: %v\n", err)
	}
	ln.Close()
	if srv != nil {
		for _, sum := range srv.Drain() {
			fmt.Fprintf(os.Stderr, "adpmd: shard %d: %d sessions, %d ops, %d evals, %d spins, %d notifications, %d evicted\n",
				sum.Shard, len(sum.Sessions), sum.Totals.Operations, sum.Totals.Evaluations,
				sum.Totals.Spins, sum.Totals.Notifications, sum.Evictions)
		}
	}
}

// adoptPeer exposes the serving stack on the replica transport for the
// single "adopt" verb. Every WAL-replication verb is refused: this
// listener moves sessions between pairs, it is not a follower.
type adoptPeer struct {
	srv *server.Server
}

var errAdoptOnly = errors.New("adpmd: adoption listener accepts only session adoption")

func (adoptPeer) Pos(int) (replica.Pos, error) { return replica.Pos{}, errAdoptOnly }
func (adoptPeer) Append(int, int, int64, []byte) (replica.Pos, error) {
	return replica.Pos{}, errAdoptOnly
}
func (adoptPeer) Rotate(int, int, []byte) (replica.Pos, error) { return replica.Pos{}, errAdoptOnly }
func (adoptPeer) CopySegment(int, int, []byte) (replica.Pos, error) {
	return replica.Pos{}, errAdoptOnly
}
func (adoptPeer) Reset(int) (replica.Pos, error) { return replica.Pos{}, errAdoptOnly }
func (adoptPeer) Handoff() error                 { return errAdoptOnly }

// Adopt implements replica.Adopter by installing the shipped image
// durably (server.AdoptSession).
func (p adoptPeer) Adopt(img *wal.SessionImage) error { return p.srv.Adopt(img) }

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "adpmd:", err)
		os.Exit(1)
	}
}
