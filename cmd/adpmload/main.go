// Command adpmload is the deterministic load generator and capacity
// tester for adpmd (internal/loadgen). It derives seeded designer
// workloads from TeamSim runs, replays them against a live server (or
// an in-process one with -hermetic), reports per-endpoint latency
// histograms (p50/p90/p99/p99.9/max), throughput, and a status-code
// taxonomy, cross-checks every acknowledged batch against a sequential
// engine oracle, and — in -check mode — gates on an SLO spec.
//
// Usage:
//
//	adpmload -addr http://127.0.0.1:8080 \
//	         [-scenario simplified] [-mode ADPM] [-seed 1] \
//	         [-clients 8] [-sessions 2] [-batch 8] [-state-every 4] \
//	         [-retry-frac 0.1] [-delete-frac 0.25] [-pool 4] [-ops 48] \
//	         [-subscribers 0] [-rate 0] [-duration 10s] [-ramp 2:2s,8:8s] \
//	         [-out BENCH_load.json] [-trace load.jsonl] [-oracle] \
//	         [-ready-timeout 10s] [-retries 0] \
//	         [-check -slo p99=200ms,errs=1%,deliver_p99=100ms]
//
// Modes. The default is closed-loop: -clients workers each drive
// scripted sessions back to back; with -duration 0 that is exactly one
// pass over the derived program set (fixed work — two runs with the
// same -seed issue identical request sequences). -rate R switches to
// open-loop: session arrivals are scheduled at R per second for
// -duration regardless of completions, the model that exposes
// coordinated omission. -ramp runs a sequence of closed-loop phases
// "clients:duration" (e.g. 2:2s,8:8s) before reporting.
//
// -subscribers N attaches N live SSE readers (GET /sessions/{id}/events)
// to every created session. Each live frame carries the server's
// publish timestamp, so the report gains a "deliver" row with true
// publish→deliver latency quantiles (and a "subscribe" row for stream
// opens); deliver_-prefixed SLO terms (deliver_p99=100ms) gate on it.
// Subscribers only read — request sequences stay deterministic.
//
// -addr accepts a comma-separated list of base URLs — a leader and its
// warm standbys. Requests follow the current base and rotate to the
// next one on transport error, so a kill-and-promote failover mid-run
// costs one errored (or retried) request instead of the run. -retries N
// re-attempts transiently failed requests (transport error, 408, 429,
// 503) with server-directed Retry-After or jittered capped exponential
// backoff; only the final attempt enters the latency/status taxonomy,
// with retry counts and total backoff time reported separately. Driving
// a two-node pair through a rolling restart is the combination of both:
//
//	adpmload -addr http://127.0.0.1:8080,http://127.0.0.1:8081 \
//	         -retries 8 -duration 10s -check -slo errs=0%
//
// The oracle (on by default) replays each session's acked batches into
// a fresh single-threaded engine session and compares the final served
// state byte for byte; it assumes the target runs default propagation
// options, so disable it with -oracle=false against tuned servers.
//
// Exit status: 0 on success, 1 on operational error, 2 when -check
// finds an SLO violation or an oracle mismatch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "", "target base URL(s), comma-separated for a failover pair (e.g. http://127.0.0.1:8080,http://127.0.0.1:8081)")
	hermetic := flag.Bool("hermetic", false, "run against an in-process server instead of -addr")
	scenarioName := flag.String("scenario", "simplified", "built-in scenario driving the workload")
	mode := flag.String("mode", "ADPM", "transition mode: ADPM or conventional")
	seed := flag.Int64("seed", 1, "workload seed (same seed, same request sequences)")
	clients := flag.Int("clients", 8, "client programs / closed-loop workers")
	sessions := flag.Int("sessions", 2, "sessions per client program")
	batch := flag.Int("batch", loadgen.DefaultBatchSize, "operations per POST /ops batch")
	stateEvery := flag.Int("state-every", loadgen.DefaultStateEvery, "GET /state every N batches (<0 disables)")
	retryFrac := flag.Float64("retry-frac", 0.1, "probability a keyed batch is re-sent (idempotent replay)")
	deleteFrac := flag.Float64("delete-frac", 0.25, "probability a session ends with DELETE")
	pool := flag.Int("pool", loadgen.DefaultHistoryPool, "distinct TeamSim histories the programs draw from")
	opsPer := flag.Int("ops", loadgen.DefaultOpsPerSession, "operations per session")
	subscribers := flag.Int("subscribers", 0, "live SSE notification readers per session (publish→deliver latency)")
	rate := flag.Float64("rate", 0, "open-loop session arrivals per second (0 = closed loop)")
	duration := flag.Duration("duration", 0, "phase duration (closed loop: 0 = one fixed pass)")
	ramp := flag.String("ramp", "", "closed-loop ramp phases as clients:duration[,clients:duration...]")
	out := flag.String("out", "BENCH_load.json", "write the JSON report here (empty disables)")
	traceFile := flag.String("trace", "", "write load-phase JSONL trace events here")
	oracle := flag.Bool("oracle", true, "cross-check acked batches against the sequential oracle")
	readyTimeout := flag.Duration("ready-timeout", 10*time.Second, "wait this long for the target's /readyz")
	retries := flag.Int("retries", 0, "reactive re-attempts per request on transport error/408/429/503 (Retry-After honored; 0 disables)")
	check := flag.Bool("check", false, "gate mode: exit 2 on SLO violation or oracle mismatch")
	sloSpec := flag.String("slo", "", "SLO spec for -check, e.g. p99=200ms,errs=1%,throughput=50")
	routeTable := flag.String("route-table", "", "client-side cluster routing: table JSON (cluster.Table), instead of -addr")
	routePairs := flag.String("route-pairs", "", "client-side cluster routing: inline 'name=base[,base2];...' spec, instead of -addr")
	routeSeed := flag.Int64("route-seed", 1, "ring seed for -route-pairs")
	flag.Parse()

	w := loadgen.Workload{
		Scenario:          *scenarioName,
		Mode:              *mode,
		Seed:              *seed,
		Clients:           *clients,
		SessionsPerClient: *sessions,
		BatchSize:         *batch,
		StateEvery:        *stateEvery,
		RetryFrac:         *retryFrac,
		DeleteFrac:        *deleteFrac,
		HistoryPool:       *pool,
		OpsPerSession:     *opsPer,
		Subscribers:       *subscribers,
	}
	programs, err := loadgen.BuildPrograms(w)
	fail(err)

	var slo *loadgen.SLO
	if *sloSpec != "" {
		slo, err = loadgen.ParseSLO(*sloSpec)
		fail(err)
	}
	if *check && slo == nil && !*oracle {
		fail(fmt.Errorf("-check needs -slo and/or -oracle"))
	}

	phases, err := buildPhases(*ramp, *clients, *rate, *duration)
	fail(err)

	var target loadgen.Target
	var failover *loadgen.FailoverTarget
	switch {
	case *routeTable != "" || *routePairs != "":
		var table *cluster.Table
		if *routeTable != "" {
			data, err := os.ReadFile(*routeTable)
			fail(err)
			table, err = cluster.ParseTable(data)
			fail(err)
		} else {
			table, err = cluster.ParsePairsSpec(*routePairs, *routeSeed, cluster.DefaultVNodes)
			fail(err)
		}
		rt, err := loadgen.NewRouterTarget(table, nil, "lg")
		fail(err)
		fail(rt.WaitReady(*readyTimeout))
		target = rt
	case *hermetic:
		srv, err := server.Open(server.Options{})
		fail(err)
		defer srv.Drain()
		target = &loadgen.HandlerTarget{Handler: srv.Handler()}
	case strings.Contains(*addr, ","):
		var bases []string
		for _, b := range strings.Split(*addr, ",") {
			if b = strings.TrimSpace(b); b != "" {
				bases = append(bases, b)
			}
		}
		failover = &loadgen.FailoverTarget{Bases: bases}
		fail(failover.WaitReady(*readyTimeout))
		target = failover
	case *addr != "":
		ht := &loadgen.HTTPTarget{Base: *addr}
		fail(ht.WaitReady(*readyTimeout))
		target = ht
	default:
		fail(fmt.Errorf("need -addr or -hermetic"))
	}

	var rec *trace.Recorder
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		fail(err)
		defer f.Close()
		rec = trace.New(trace.Options{W: f})
		defer rec.Close()
	}

	runner := &loadgen.Runner{
		Target: target, Programs: programs, Seed: *seed, Tracer: rec,
		Subscribers: *subscribers, Retry: loadgen.RetryPolicy{Max: *retries},
	}
	res, err := runner.Run(phases)
	fail(err)
	if failover != nil && failover.Rotations() > 0 {
		fmt.Printf("adpmload: rotated target %d time(s) on transport failure\n", failover.Rotations())
	}

	var orc *loadgen.OracleResult
	if *oracle {
		orc, err = loadgen.CheckOracle(res)
		fail(err)
	}
	rep := loadgen.BuildReport(w, res, orc)

	gateOK := true
	if slo != nil {
		var sloOK bool
		rep.SLO, sloOK = slo.Eval(rep)
		gateOK = gateOK && sloOK
	}
	if *check && orc != nil && !orc.OK() {
		gateOK = false
	}

	if *out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		fail(err)
		fail(os.WriteFile(*out, append(b, '\n'), 0o644))
	}
	fmt.Print(rep.Human())

	if *check && !gateOK {
		if orc != nil && !orc.OK() {
			fmt.Fprintf(os.Stderr, "adpmload: oracle mismatches:\n")
			for _, m := range orc.Mismatches {
				fmt.Fprintf(os.Stderr, "  %s\n", m)
			}
		}
		fmt.Fprintln(os.Stderr, "adpmload: SLO gate FAILED")
		os.Exit(2)
	}
}

// buildPhases assembles the phase list from the mode flags: a -ramp
// spec wins, then open-loop (-rate), then a single closed-loop phase.
func buildPhases(ramp string, clients int, rate float64, duration time.Duration) ([]loadgen.Phase, error) {
	if ramp != "" {
		if rate > 0 {
			return nil, fmt.Errorf("-ramp and -rate are mutually exclusive")
		}
		var phases []loadgen.Phase
		for i, part := range strings.Split(ramp, ",") {
			cs, ds, ok := strings.Cut(strings.TrimSpace(part), ":")
			if !ok {
				return nil, fmt.Errorf("ramp phase %q is not clients:duration", part)
			}
			c, err := strconv.Atoi(cs)
			if err != nil || c <= 0 {
				return nil, fmt.Errorf("ramp phase %q: bad client count", part)
			}
			d, err := time.ParseDuration(ds)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("ramp phase %q: bad duration", part)
			}
			phases = append(phases, loadgen.Phase{
				Name: fmt.Sprintf("ramp-%d", i), Clients: c, Duration: d,
			})
		}
		return phases, nil
	}
	if rate > 0 {
		if duration <= 0 {
			return nil, fmt.Errorf("open loop (-rate) needs a positive -duration")
		}
		return []loadgen.Phase{{Name: "open", Rate: rate, Duration: duration}}, nil
	}
	return []loadgen.Phase{{Name: "closed", Clients: clients, Duration: duration}}, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "adpmload:", err)
		os.Exit(1)
	}
}
