// Command adpmproxy is the cluster front end: it routes session-scoped
// adpmd requests — including SSE event streams — to the replicated
// pair that owns each session, follows promotions via /readyz role
// probes, and orchestrates cross-pair session migration.
//
// Usage:
//
//	adpmproxy -addr :8070 -table cluster.json [-mint p0]
//	adpmproxy -addr :8070 -pairs 'a=http://127.0.0.1:8080,http://127.0.0.1:8081;b=http://127.0.0.1:8090,http://127.0.0.1:8091' [-seed 1]
//
// The table file is the JSON form of cluster.Table: a seeded
// consistent-hash ring over named pairs, each pair listing the client
// base URLs of its two adpmd processes (and optionally an "adopt"
// address for the replica-transport migration path). -pairs builds the
// same table from the command line for quick two-pair experiments.
//
// API, in front of every adpmd route:
//
//	POST   /sessions                  mint a cluster-wide id, route by ring placement
//	*      /sessions/{id}/...         route to the owning pair's leader
//	GET    /cluster/table             current routing table (clients may self-route)
//	GET    /cluster/stats             epoch + routed/redirect/migration counters
//	POST   /cluster/migrate           {"id":..., "to":...} move a session across pairs
//	GET    /healthz, /readyz
//
// Routing faults heal without restarts: a dead leader invalidates the
// pair's cached resolution and the next request re-probes (following a
// promotion); a backend 307 teaches the proxy the session's new owner
// under a bumped epoch and the request retries internally.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8070", "HTTP listen address")
	tablePath := flag.String("table", "", "routing table JSON (cluster.Table)")
	pairsFlag := flag.String("pairs", "", "inline table: 'name=base[,base2][@adoptAddr];...' (alternative to -table)")
	seed := flag.Int64("seed", 1, "ring seed for -pairs tables")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per pair for -pairs tables")
	mintTag := flag.String("mint", "p0", "id-mint tag distinguishing this proxy's session ids")
	flag.Parse()

	var table *cluster.Table
	switch {
	case *tablePath != "" && *pairsFlag != "":
		fail(fmt.Errorf("-table and -pairs are mutually exclusive"))
	case *tablePath != "":
		data, err := os.ReadFile(*tablePath)
		fail(err)
		t, err := cluster.ParseTable(data)
		fail(err)
		table = t
	case *pairsFlag != "":
		t, err := cluster.ParsePairsSpec(*pairsFlag, *seed, *vnodes)
		fail(err)
		table = t
	default:
		fail(fmt.Errorf("one of -table or -pairs is required"))
	}

	proxy, err := cluster.NewProxy(table, cluster.ProxyOptions{MintTag: *mintTag})
	fail(err)

	hs := server.NewHTTPServer(*addr, proxy.Handler())
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "adpmproxy: routing %d pairs on %s (epoch %d, seed %d)\n",
		len(table.Pairs), *addr, table.Epoch, table.Seed)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "adpmproxy: %v — closing\n", sig)
	case err := <-httpErr:
		fail(err)
	}
	hs.Close()
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "adpmproxy:", err)
		os.Exit(1)
	}
}
