// Command adpmsim runs the deterministic whole-server simulation
// (internal/sim) and the explicit-state model checker
// (internal/sim/check) for the session/durability protocol.
//
// Every simulation run is a pure function of (seed, fault script): the
// real internal/server stack executes under a virtual clock, a seeded
// PRNG, and an in-memory durability-modeling filesystem, so a failing
// seed replays byte for byte — the seed IS the bug report.
//
// Usage:
//
//	adpmsim -seed 42 [-steps 300] [-fsync always|interval|never]
//	        [-shards 2] [-script '{"sync_fails":[{"op":"rotate","nth":3,"at":1}]}']
//	        [-replica] [-quorum] [-trace out.jsonl] [-v]
//	adpmsim -seeds 0..500 [-steps 300] [-fsync interval] [-replica]   # sweep
//	adpmsim -check [-check-epochs 4] [-check-len 3] [-fsync always]
//	        [-replica] [-quorum]
//
// Modes:
//
//   - -seed N: one simulation; prints the result summary (and the
//     trace with -trace/-v). Exit 2 on invariant violations.
//   - -seeds N..M: sweep the inclusive seed range; on the first
//     violating seed, print the seed, its fault script, and the
//     violations, then exit 2. This is the CI gate: the printed seed
//     reproduces the failure exactly.
//   - -check: exhaustive explicit-state model checking of the small
//     configuration (2 shards, 3 sessions, 4 keyed ops, crash at every
//     WAL record boundary). Exit 2 on violations with the action trace.
//
// With -replica every mode runs against a two-node pair — a warm
// standby tails the leader's WALs over a fault-injectable link, and the
// schedule gains follower crashes, message drops, partitions,
// failovers, and rolling restarts (the checker: follower crashes, link
// cuts, and promote/cutpromote terminators). -quorum selects
// ship-before-ack replication (zero acked-op loss across failover;
// requires -fsync always); without it acks are async and a failover may
// lose only the acked-but-unshipped suffix, prefix-closed.
//
// Exit status: 0 clean, 1 operational error, 2 violation found.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/sim/check"
	"repro/internal/wal"
)

func main() {
	seed := flag.Int64("seed", -1, "run one simulation with this seed")
	seeds := flag.String("seeds", "", "sweep an inclusive seed range N..M")
	steps := flag.Int("steps", sim.DefaultSteps, "workload actions per run")
	shards := flag.Int("shards", 2, "server shard count")
	fsync := flag.String("fsync", "always", "WAL durability policy: always, interval, never")
	script := flag.String("script", "", "JSON fault script (overrides the seed-derived one)")
	traceOut := flag.String("trace", "", "write the run's JSONL trace to this file")
	verbose := flag.Bool("v", false, "print the JSONL trace to stdout")
	doCheck := flag.Bool("check", false, "run the explicit-state model checker instead of a simulation")
	checkEpochs := flag.Int("check-epochs", 4, "model checker: DFS depth in crash epochs")
	checkLen := flag.Int("check-len", 3, "model checker: max client actions between crash points")
	checkSessions := flag.Int("check-sessions", 3, "model checker: max concurrent sessions (≤3)")
	checkOps := flag.Int("check-ops", 4, "model checker: max keyed batches (≤4)")
	clusterCheck := flag.Bool("cluster-check", false, "run the multi-pair (cluster migration) model checker")
	clusterBug := flag.String("cluster-bug", "", "cluster checker: seed a defect for a soundness self-test (stale-router)")
	replicaF := flag.Bool("replica", false, "run against a two-node pair: warm standby, failovers, rolling restarts")
	quorum := flag.Bool("quorum", false, "quorum replication acks (implies -replica; requires -fsync always)")
	flag.Parse()

	replica := *replicaF || *quorum

	policy, err := wal.ParsePolicy(*fsync)
	if err != nil {
		fail(err)
	}

	switch {
	case *clusterCheck:
		runClusterCheck(*checkSessions, *checkOps, *checkEpochs, *checkLen, *clusterBug)
	case *doCheck:
		runCheck(policy, *shards, *checkSessions, *checkOps, *checkEpochs, *checkLen, replica, *quorum)
	case *seeds != "":
		lo, hi, err := parseRange(*seeds)
		if err != nil {
			fail(err)
		}
		runSweep(lo, hi, *steps, *shards, policy, replica, *quorum)
	case *seed >= 0:
		runOne(*seed, *steps, *shards, policy, *script, *traceOut, *verbose, replica, *quorum)
	default:
		fmt.Fprintln(os.Stderr, "adpmsim: one of -seed, -seeds, or -check is required")
		flag.Usage()
		os.Exit(1)
	}
}

func runOne(seed int64, steps, shards int, policy wal.SyncPolicy, scriptJSON, traceOut string, verbose, replica, quorum bool) {
	cfg := sim.Config{Seed: seed, Steps: steps, Shards: shards, Policy: policy, Replica: replica, Quorum: quorum}
	if scriptJSON != "" {
		sc, err := sim.ParseScript([]byte(scriptJSON))
		if err != nil {
			fail(err)
		}
		cfg.Script = sc
	}
	res, err := sim.Run(cfg)
	if err != nil {
		fail(err)
	}
	if verbose {
		os.Stdout.Write(res.Trace)
	}
	if traceOut != "" {
		if err := os.WriteFile(traceOut, res.Trace, 0o644); err != nil {
			fail(err)
		}
	}
	printResult(res)
	if len(res.Violations) > 0 {
		os.Exit(2)
	}
}

func runSweep(lo, hi int64, steps, shards int, policy wal.SyncPolicy, replica, quorum bool) {
	var acks, kills, cuts, faults, fails, rolls int
	for s := lo; s <= hi; s++ {
		res, err := sim.Run(sim.Config{Seed: s, Steps: steps, Shards: shards, Policy: policy, Replica: replica, Quorum: quorum})
		if err != nil {
			fail(err)
		}
		acks += res.Acks
		kills += res.Kills
		cuts += res.Powercuts
		faults += res.Faults
		fails += res.Failovers
		rolls += res.Rollings
		if len(res.Violations) > 0 {
			fmt.Printf("FAIL seed=%d fsync=%s script=%s digest=%s\n", s, policy, res.Script, res.Digest)
			for _, v := range res.Violations {
				fmt.Printf("  violation: %s\n", v)
			}
			repro := fmt.Sprintf("adpmsim -seed %d -steps %d -shards %d -fsync %s", s, steps, shards, policy)
			if quorum {
				repro += " -quorum"
			} else if replica {
				repro += " -replica"
			}
			fmt.Printf("reproduce: %s\n", repro)
			os.Exit(2)
		}
	}
	extra := ""
	if replica {
		extra = fmt.Sprintf(", %d failovers, %d rolling restarts", fails, rolls)
	}
	fmt.Printf("ok: seeds %d..%d fsync=%s (%d acks, %d kills, %d powercuts, %d injected faults%s)\n",
		lo, hi, policy, acks, kills, cuts, faults, extra)
}

func runCheck(policy wal.SyncPolicy, shards, sessions, ops, epochs, length int, replica, quorum bool) {
	rep, err := check.Run(check.Config{
		Shards:      shards,
		MaxSessions: sessions,
		MaxOps:      ops,
		MaxEpochs:   epochs,
		EpochLen:    length,
		Policy:      policy,
		Replica:     replica,
		Quorum:      quorum,
	})
	if err != nil {
		fail(err)
	}
	if len(rep.Violations) > 0 {
		fmt.Printf("FAIL: model checker found a violation (fsync=%s)\n", policy)
		for _, v := range rep.Violations {
			fmt.Printf("  violation: %s\n", v)
		}
		fmt.Println("  trace (one epoch per line, ending in its crash kind):")
		for _, step := range rep.Trace {
			fmt.Printf("    %s\n", step)
		}
		os.Exit(2)
	}
	mode := ""
	if quorum {
		mode = " repl=quorum"
	} else if replica {
		mode = " repl=async"
	}
	fmt.Printf("ok: model checker explored %d states (%d transitions) under fsync=%s%s — no violations\n",
		rep.States, rep.Transitions, policy, mode)
}

// runClusterCheck is the multi-pair mode: two quorum pairs, the real
// consistent-hash ring, and the cross-pair migration protocol explored
// against crash, kill, and promote terminators. With -cluster-bug it
// seeds a known routing defect and inverts the verdict — the checker
// proving it still catches the bug is what makes its clean runs
// trustworthy.
func runClusterCheck(sessions, ops, epochs, length int, bugName string) {
	var bug check.ClusterBug
	switch bugName {
	case "":
		bug = check.ClusterBugNone
	case "stale-router":
		bug = check.ClusterBugStaleRouter
	default:
		fail(fmt.Errorf("unknown -cluster-bug %q (want stale-router)", bugName))
	}
	rep, err := check.RunCluster(check.ClusterConfig{
		MaxSessions: sessions,
		MaxOps:      ops,
		MaxEpochs:   epochs,
		EpochLen:    length,
		Bug:         bug,
	})
	if err != nil {
		fail(err)
	}
	if bug != check.ClusterBugNone {
		if len(rep.Violations) == 0 {
			fmt.Printf("FAIL: cluster checker missed the seeded %s bug (%d states explored) — it cannot be trusted\n", bugName, rep.States)
			os.Exit(2)
		}
		fmt.Printf("ok: cluster checker caught the seeded %s bug after %d states:\n", bugName, rep.States)
		fmt.Printf("  violation: %s\n", rep.Violations[0])
		for _, step := range rep.Trace {
			fmt.Printf("    %s\n", step)
		}
		return
	}
	if len(rep.Violations) > 0 {
		fmt.Println("FAIL: cluster checker found a violation")
		for _, v := range rep.Violations {
			fmt.Printf("  violation: %s\n", v)
		}
		fmt.Println("  trace (one epoch per line, ending in its crash kind):")
		for _, step := range rep.Trace {
			fmt.Printf("    %s\n", step)
		}
		os.Exit(2)
	}
	fmt.Printf("ok: cluster checker explored %d states (%d transitions) across 2 quorum pairs — no violations\n",
		rep.States, rep.Transitions)
}

func printResult(res *sim.Result) {
	fmt.Printf("seed=%d fsync=%s steps=%d digest=%s script=%s\n",
		res.Seed, res.Policy, res.Steps, res.Digest, res.Script)
	fmt.Printf("  acks=%d replays=%d creates=%d deletes=%d parks=%d restores=%d\n",
		res.Acks, res.Replays, res.Creates, res.Deletes, res.Parks, res.Restores)
	fmt.Printf("  restarts=%d kills=%d powercuts=%d rotations=%d faults=%d rejects=%d\n",
		res.Restarts, res.Kills, res.Powercuts, res.Rotations, res.Faults, res.Rejects)
	if res.Failovers+res.Rollings+res.FollowerCrashes+res.NetDrops+res.Partitions+res.ReplChecks > 0 {
		fmt.Printf("  failovers=%d rollings=%d folcrashes=%d netdrops=%d partitions=%d replchecks=%d\n",
			res.Failovers, res.Rollings, res.FollowerCrashes, res.NetDrops, res.Partitions, res.ReplChecks)
	}
	for _, v := range res.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
}

func parseRange(s string) (int64, int64, error) {
	lo, hi, ok := strings.Cut(s, "..")
	if !ok {
		return 0, 0, fmt.Errorf("adpmsim: -seeds wants N..M, got %q", s)
	}
	l, err := strconv.ParseInt(lo, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("adpmsim: bad range start %q", lo)
	}
	h, err := strconv.ParseInt(hi, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("adpmsim: bad range end %q", hi)
	}
	if l < 0 || h < l {
		return 0, 0, fmt.Errorf("adpmsim: bad range %d..%d", l, h)
	}
	return l, h, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "adpmsim: %v\n", err)
	os.Exit(1)
}
