// Command dddl parses and validates a DDDL scenario description
// (paper §3.1.2) and prints a summary of the design area it declares:
// objects, properties (with derived formulas), the constraint network,
// the problem hierarchy, and initial requirements.
//
// Usage:
//
//	dddl [-builtin receiver|sensor|simplified] [-format] [-solve]
//	     [-minimize objective] [file.dddl]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/dddl"
	"repro/internal/scenario"
	"repro/internal/solver"
)

func main() {
	builtin := flag.String("builtin", "", "dump a built-in scenario (or scale spec family:n[:sSEED]) instead of a file")
	solve := flag.Bool("solve", false, "search for a satisfying assignment (branch-and-prune)")
	minimize := flag.String("minimize", "", "minimize this objective expression subject to all constraints")
	format := flag.Bool("format", false, "emit canonical DDDL instead of a summary")
	flag.Parse()

	var (
		scn *dddl.Scenario
		err error
	)
	switch {
	case *builtin != "":
		scn, err = scenario.ByName(*builtin)
	case flag.NArg() == 1:
		var f *os.File
		f, err = os.Open(flag.Arg(0))
		if err == nil {
			defer f.Close()
			scn, err = dddl.Parse(f)
		}
	default:
		fmt.Fprintln(os.Stderr, "dddl: need a scenario file or -builtin name")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dddl:", err)
		os.Exit(1)
	}

	if *format {
		fmt.Print(scn.Format())
		return
	}

	fmt.Printf("scenario %s: valid\n\n", scn.Name)

	fmt.Printf("objects (%d):\n", len(scn.Objects))
	for _, o := range scn.Objects {
		owner := o.Owner
		if owner == "" {
			owner = "(none)"
		}
		fmt.Printf("  %-16s owner %s\n", o.Name, owner)
	}

	derived := 0
	for _, p := range scn.Properties {
		if p.IsDerived() {
			derived++
		}
	}
	fmt.Printf("\nproperties (%d, %d derived):\n", len(scn.Properties), derived)
	for _, p := range scn.Properties {
		kind := p.Domain.String()
		if p.IsDerived() {
			fmt.Printf("  %-16s %-24s = %s\n", p.Name, kind, p.Formula)
		} else {
			fmt.Printf("  %-16s %s\n", p.Name, kind)
		}
	}

	fmt.Printf("\nconstraints (%d declared; derived definitions add %d more):\n",
		len(scn.Constraints), derived)
	for _, c := range scn.Constraints {
		fmt.Printf("  %-16s %s", c.Name, c.Src)
		if len(c.Mono) > 0 {
			fmt.Printf("   [monotonic: ")
			first := true
			for prop, dir := range c.Mono {
				if !first {
					fmt.Print(", ")
				}
				first = false
				word := "increasing"
				if dir < 0 {
					word = "decreasing"
				}
				fmt.Printf("%s %s", word, prop)
			}
			fmt.Print("]")
		}
		fmt.Println()
	}

	fmt.Printf("\nproblems (%d):\n", len(scn.Problems))
	for _, p := range scn.Problems {
		fmt.Printf("  %-16s owner %-10s outputs %v constraints %v\n",
			p.Name, p.Owner, p.Outputs, p.Constraints)
	}
	for _, d := range scn.Decompositions {
		fmt.Printf("  decompose %s -> %v\n", d.Parent, d.Children)
	}

	fmt.Printf("\nrequirements (%d):\n", len(scn.Requirements))
	for _, r := range scn.Requirements {
		fmt.Printf("  %s = %s\n", r.Property, r.Value)
	}

	net, err := scn.BuildNetwork()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dddl: network:", err)
		os.Exit(1)
	}
	fmt.Printf("\nconstraint network: %d properties, %d constraints\n",
		net.NumProperties(), net.NumConstraints())

	if *minimize != "" {
		res, err := solver.MinimizeScenario(scn, *minimize, solver.Options{MaxNodes: 5000})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dddl: minimize:", err)
			os.Exit(1)
		}
		if !res.Feasible {
			fmt.Printf("\nminimize: no feasible point found (nodes=%d)\n", res.Nodes)
			os.Exit(1)
		}
		fmt.Printf("\nminimize %s: best %.6g (%d nodes, %d evaluations)\n",
			*minimize, res.Objective, res.Nodes, res.Evaluations)
		names := make([]string, 0, len(res.Witness))
		for n := range res.Witness {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-16s %.6g\n", n, res.Witness[n])
		}
	}

	if *solve {
		res, err := solver.SolveScenario(scn, solver.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dddl: solve:", err)
			os.Exit(1)
		}
		if !res.Satisfiable {
			fmt.Printf("\nsolver: no witness found (nodes=%d, exhausted=%v)\n", res.Nodes, res.Exhausted)
			os.Exit(1)
		}
		fmt.Printf("\nsolver: satisfiable (%d nodes, %d evaluations); witness:\n", res.Nodes, res.Evaluations)
		names := make([]string, 0, len(res.Witness))
		for n := range res.Witness {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-16s %.6g\n", n, res.Witness[n])
		}
	}
}
