// Command repro regenerates the paper's evaluation figures (Figs. 7-10
// of "Application of Constraint-Based Heuristics in Collaborative
// Design", DAC 2001) from the TeamSim reimplementation.
//
// Usage:
//
//	repro [-fig all|7|8|9|10] [-runs 60] [-seed 1] [-maxops 3000]
//	      [-scenario simplified] [-mode adpm|conventional]
//	      [-trace run.jsonl] [-pprof :6060]
//
// -scenario selects the Fig. 7 profile case; -mode selects the Fig. 8
// snapshot mode. -trace skips the figures and instead executes one
// traced run of -scenario/-mode/-seed, writing structured JSONL events
// and printing the counter summary; -pprof serves pprof/expvar debug
// endpoints on the given address.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dpm"
	"repro/internal/figures"
	"repro/internal/scenario"
	"repro/internal/teamsim"
	"repro/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 7, 8, 9, 10")
	runs := flag.Int("runs", 60, "seeded runs per configuration (Figs. 9, 10)")
	seed := flag.Int64("seed", 1, "base random seed")
	maxOps := flag.Int("maxops", 3000, "operation cap per run")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
	scenarioName := flag.String("scenario", "simplified",
		"Fig. 7 profile scenario; also accepts a generated scale spec family:n[:sSEED] with family grid, layers, hub, or sparse (e.g. grid:10000)")
	modeName := flag.String("mode", "adpm", "Fig. 8 snapshot mode: adpm or conventional")
	csvDir := flag.String("csv", "", "also write figure data as CSV files into this directory")
	tracePath := flag.String("trace", "", "trace one run of -scenario/-mode/-seed as JSONL instead of figures")
	pprofAddr := flag.String("pprof", "", "serve pprof/expvar debug endpoints on this address (e.g. :6060)")
	flag.Parse()

	if *pprofAddr != "" {
		errc := trace.ServeDebug(*pprofAddr)
		select {
		case err := <-errc:
			fail(err)
		default:
		}
		fmt.Fprintf(os.Stderr, "repro: debug endpoints on http://%s/debug/\n", *pprofAddr)
	}

	opts := figures.Options{
		Runs:        *runs,
		Seed:        *seed,
		MaxOps:      *maxOps,
		Parallelism: *parallel,
	}
	mode := dpm.ADPM
	if strings.EqualFold(*modeName, "conventional") {
		mode = dpm.Conventional
	}

	if *tracePath != "" {
		fail(tracedRun(*tracePath, *scenarioName, mode, *seed, *maxOps))
		return
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	ran := false

	if want("7") {
		ran = true
		f, err := figures.Fig7(*scenarioName, *seed, *maxOps)
		fail(err)
		fmt.Println(f.Render())
		writeCSV(*csvDir, "fig7_"+*scenarioName+".csv", f.WriteCSV)
		// The receiver profile shows ADPM's residual early violations.
		if *scenarioName != "receiver" {
			f, err = figures.Fig7("receiver", *seed, *maxOps)
			fail(err)
			fmt.Println(f.Render())
		}
	}
	if want("8") {
		ran = true
		f, err := figures.Fig8(mode, *seed, *maxOps)
		fail(err)
		fmt.Println(f.Render())
	}
	if want("9") || want("9a") || want("9b") {
		ran = true
		f, err := figures.Fig9(opts)
		fail(err)
		fmt.Println(f.Render())
		writeCSV(*csvDir, "fig9.csv", f.WriteCSV)
	}
	if want("10") {
		ran = true
		f, err := figures.Fig10(opts)
		fail(err)
		fmt.Println(f.Render())
		conv, adpm := f.VariationRange()
		fmt.Printf("variation range over sweep: conventional %.1f ops, ADPM %.1f ops\n", conv, adpm)
		writeCSV(*csvDir, "fig10.csv", f.WriteCSV)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "repro: unknown figure %q (want all, 7, 8, 9, 10)\n", *fig)
		os.Exit(2)
	}
}

// tracedRun executes one fully instrumented run and writes its JSONL
// event stream to path, printing the end-of-run counter summary.
func tracedRun(path, scenarioName string, mode dpm.Mode, seed int64, maxOps int) error {
	scn, err := scenario.ByName(scenarioName)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rec := trace.New(trace.Options{W: f})
	trace.Publish(rec)
	res, runErr := teamsim.Run(teamsim.Config{
		Scenario: scn, Mode: mode, Seed: seed, MaxOps: maxOps, Tracer: rec,
	})
	closeErr := rec.Close()
	if ferr := f.Close(); closeErr == nil {
		closeErr = ferr
	}
	if runErr != nil {
		return runErr
	}
	if closeErr != nil {
		return closeErr
	}
	fmt.Printf("scenario %s, %s mode, seed %d: completed=%v operations=%d evaluations=%d spins=%d\n",
		scn.Name, res.Mode, res.Seed, res.Completed, res.Operations, res.Evaluations, res.Spins)
	fmt.Println()
	fmt.Print(rec.Counters().Summary())
	return nil
}

func writeCSV(dir, name string, write func(io.Writer) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	fail(err)
	fail(write(f))
	fail(f.Close())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}
