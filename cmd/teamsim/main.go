// Command teamsim runs one design process simulation (or a seeded
// batch) on a built-in or user-supplied DDDL scenario.
//
// Usage:
//
//	teamsim [-scenario receiver|sensor|simplified|family:n[:sSEED]]
//	        [-file scenario.dddl]
//	        [-mode adpm|conventional] [-seed 1] [-runs 1] [-maxops 3000]
//	        [-concurrent] [-verbose] [-trace run.jsonl] [-pprof :6060]
//	        [-inspect] [-csv out.csv] [-json out.json]
//
// With -runs > 1 a summary over seeds seed..seed+runs-1 is printed;
// -csv writes per-run rows, -json writes a single run's full report
// (statistics series and operation history), -inspect prints each
// designer's Minerva-style browser after a single run.
//
// -trace writes a structured JSONL event stream for a single run and
// prints an end-of-run counter summary; -pprof serves pprof and expvar
// (including the live trace counters) on the given address.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/browser"
	"repro/internal/dddl"
	"repro/internal/dpm"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/teamsim"
	"repro/internal/trace"
)

func main() {
	scenarioName := flag.String("scenario", "receiver",
		"built-in scenario (receiver, sensor, simplified) or generated scale spec family:n[:sSEED] with family grid, layers, hub, or sparse (e.g. grid:10000, sparse:100000:s7)")
	file := flag.String("file", "", "DDDL scenario file (overrides -scenario)")
	modeName := flag.String("mode", "adpm", "process mode: adpm or conventional")
	seed := flag.Int64("seed", 1, "random seed (base seed when -runs > 1)")
	runs := flag.Int("runs", 1, "number of seeded runs")
	maxOps := flag.Int("maxops", 3000, "operation cap per run")
	concurrent := flag.Bool("concurrent", false, "use the goroutine-per-designer engine")
	verbose := flag.Bool("verbose", false, "print every executed operation (single run only)")
	tracePath := flag.String("trace", "", "write structured trace events as JSONL to this file (single run only)")
	pprofAddr := flag.String("pprof", "", "serve pprof/expvar debug endpoints on this address (e.g. :6060)")
	inspect := flag.Bool("inspect", false, "print each designer's Minerva-style browser after a single run")
	csvPath := flag.String("csv", "", "write per-run statistics as CSV")
	jsonPath := flag.String("json", "", "write the run report (with full history) as JSON (single run only)")
	flag.Parse()

	scn, err := loadScenario(*file, *scenarioName)
	fail(err)

	mode := dpm.ADPM
	if strings.EqualFold(*modeName, "conventional") {
		mode = dpm.Conventional
	}
	cfg := teamsim.Config{Scenario: scn, Mode: mode, Seed: *seed, MaxOps: *maxOps}

	if *pprofAddr != "" {
		errc := trace.ServeDebug(*pprofAddr)
		select {
		case err := <-errc:
			fail(err)
		default:
		}
		fmt.Fprintf(os.Stderr, "teamsim: debug endpoints on http://%s/debug/\n", *pprofAddr)
	}

	if *runs <= 1 {
		if *verbose {
			cfg.Trace = os.Stdout
		}
		var traceFile *os.File
		var rec *trace.Recorder
		if *tracePath != "" {
			traceFile, err = os.Create(*tracePath)
			fail(err)
			rec = trace.New(trace.Options{W: traceFile})
			cfg.Tracer = rec
			trace.Publish(rec)
		}
		var r *teamsim.Result
		if *concurrent {
			r, err = teamsim.RunConcurrent(cfg)
		} else {
			r, err = teamsim.Run(cfg)
		}
		if rec != nil {
			closeErr := rec.Close()
			if ferr := traceFile.Close(); closeErr == nil {
				closeErr = ferr
			}
			if err == nil {
				err = closeErr
			}
		}
		fail(err)
		printRun(scn.Name, r)
		if rec != nil {
			fmt.Println()
			fmt.Print(rec.Counters().Summary())
		}
		if *inspect {
			for _, owner := range scn.Owners() {
				fmt.Println()
				fmt.Print(browser.Full(r.Process, owner))
			}
		}
		if *csvPath != "" {
			fail(writeCSV(*csvPath, []*teamsim.Result{r}))
		}
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			fail(err)
			fail(r.WriteJSON(f))
			fail(f.Close())
		}
		return
	}

	m, err := teamsim.RunMany(cfg, *runs, 0)
	fail(err)
	fmt.Printf("scenario %s, %s mode, %d runs (seeds %d..%d):\n",
		scn.Name, mode, *runs, *seed, *seed+int64(*runs)-1)
	fmt.Printf("  completed    %d/%d\n", m.Completed, *runs)
	fmt.Printf("  operations   %s\n", m.Ops)
	fmt.Printf("  evaluations  %s\n", m.Evals)
	fmt.Printf("  evals/op     %s\n", m.EvalsPerOp)
	fmt.Printf("  spins        %s\n", m.Spins)
	if *csvPath != "" {
		fail(writeCSV(*csvPath, m.Results))
	}
}

func loadScenario(file, name string) (*dddl.Scenario, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dddl.Parse(f)
	}
	return scenario.ByName(name)
}

func printRun(name string, r *teamsim.Result) {
	fmt.Printf("scenario %s, %s mode, seed %d:\n", name, r.Mode, r.Seed)
	fmt.Printf("  completed    %v (deadlocked %v)\n", r.Completed, r.Deadlocked)
	fmt.Printf("  operations   %d\n", r.Operations)
	fmt.Printf("  evaluations  %d (%.1f per operation)\n", r.Evaluations, r.EvalsPerOpMean())
	fmt.Printf("  spins        %d\n", r.Spins)
	fmt.Printf("  final values:\n")
	for _, p := range sortedKeys(r.FinalValues) {
		fmt.Printf("    %-16s %g\n", p, r.FinalValues[p])
	}
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func writeCSV(path string, results []*teamsim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	header := []string{"seed", "mode", "completed", "operations", "evaluations", "evals_per_op", "spins"}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			strconv.FormatInt(r.Seed, 10),
			r.Mode.String(),
			strconv.FormatBool(r.Completed),
			strconv.Itoa(r.Operations),
			strconv.FormatInt(r.Evaluations, 10),
			strconv.FormatFloat(r.EvalsPerOpMean(), 'f', 2, 64),
			strconv.Itoa(r.Spins),
		})
	}
	return stats.WriteCSV(f, header, rows)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "teamsim:", err)
		os.Exit(1)
	}
}
