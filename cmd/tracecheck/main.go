// Command tracecheck validates a structured trace stream produced by
// teamsim -trace or repro -trace.
//
// Usage:
//
//	tracecheck run.jsonl
//	teamsim -trace /dev/stdout ... | tracecheck
//
// It verifies the JSONL stream's invariants — strictly increasing
// sequence numbers, nondecreasing timestamps, per-kind required fields,
// and the run-end reconciliation (summed operation, evaluation, spin,
// and delivery counters must equal the run-end totals exactly) — then
// prints a per-kind line count summary. Exits 1 on any violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/trace"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the summary; only report failures")
	flag.Parse()

	var in *os.File
	switch flag.NArg() {
	case 0:
		in = os.Stdin
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	default:
		fmt.Fprintln(os.Stderr, "usage: tracecheck [run.jsonl]")
		os.Exit(2)
	}

	stats, err := trace.ValidateJSONL(in)
	if err != nil {
		fail(err)
	}
	if *quiet {
		return
	}
	fmt.Printf("trace ok: %d events\n", stats.Lines)
	kinds := make([]string, 0, len(stats.ByKind))
	for k := range stats.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-16s %d\n", k, stats.ByKind[k])
	}
	if stats.RunEnd != nil {
		fmt.Printf("reconciled: operations=%d evaluations=%d spins=%d deliveries=%d\n",
			stats.Operations, stats.Evaluations, stats.Spins, stats.Deliveries)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
