package adpm

// Server-replay differential: every golden corpus run, replayed
// operation-by-operation through adpmd's full handler stack (JSON
// decode → shard mailbox → batch validate → Session.Apply), must
// produce bit-for-bit the same metrics as the in-process engine. This
// pins the serving path to the simulation semantics: wire encoding
// round-trips values exactly, the server's NM subscriptions match the
// engine's, and the shard loop adds no bookkeeping of its own.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/server"
)

// replayBatchSize keeps request bodies small without paying one HTTP
// round-trip per operation.
const replayBatchSize = 50

func TestDifferentialServerReplay(t *testing.T) {
	data, err := os.ReadFile("testdata/differential_seed.json")
	if err != nil {
		t.Fatal(err)
	}
	var golden []differentialRecord
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	for _, rec := range golden {
		rec := rec
		name := fmt.Sprintf("%s/%s/seed%d", rec.Scenario, rec.Mode, rec.Seed)
		t.Run(name, func(t *testing.T) {
			if rec.Scenario == "receiver" && testing.Short() {
				t.Skip("receiver differential runs skipped in -short mode")
			}
			scn, err := ScenarioByName(rec.Scenario)
			if err != nil {
				t.Fatal(err)
			}
			mode := ModeConventional
			if rec.Mode == ModeADPM.String() {
				mode = ModeADPM
			}
			res, err := Run(Config{Scenario: scn, Mode: mode, Seed: rec.Seed, MaxOps: 3000})
			if err != nil {
				t.Fatal(err)
			}
			if res.Operations != rec.Operations {
				t.Fatalf("engine diverged from golden before replay: %d ops, want %d", res.Operations, rec.Operations)
			}

			srv := server.New(server.Options{Shards: 1, MaxOps: 3000})
			defer srv.Drain()
			h := srv.Handler()
			createBody := fmt.Sprintf(`{"scenario":%q,"mode":%q,"max_ops":3000}`, rec.Scenario, rec.Mode)
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("POST", "/sessions", strings.NewReader(createBody)))
			if rr.Code != http.StatusCreated {
				t.Fatalf("create: status %d: %s", rr.Code, rr.Body)
			}
			var c server.CreateResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &c); err != nil {
				t.Fatal(err)
			}

			history := res.Process.History()
			for start := 0; start < len(history); start += replayBatchSize {
				end := start + replayBatchSize
				if end > len(history) {
					end = len(history)
				}
				var req server.OpsRequest
				for _, tr := range history[start:end] {
					req.Ops = append(req.Ops, server.WireFromOperation(tr.Op))
				}
				body, err := json.Marshal(req)
				if err != nil {
					t.Fatal(err)
				}
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest("POST", "/sessions/"+c.ID+"/ops", strings.NewReader(string(body))))
				if rr.Code != http.StatusOK {
					t.Fatalf("ops [%d:%d]: status %d: %s", start, end, rr.Code, rr.Body)
				}
			}

			rr = httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET", "/sessions/"+c.ID+"/state", nil))
			if rr.Code != http.StatusOK {
				t.Fatalf("state: status %d", rr.Code)
			}
			var st server.StateResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
				t.Fatal(err)
			}
			if st.Operations != res.Operations || st.Evaluations != res.Evaluations ||
				st.Spins != res.Spins || st.Notifications != res.Notifications {
				t.Errorf("server replay metrics diverged from engine:\n server: ops=%d evals=%d spins=%d notifs=%d\n engine: ops=%d evals=%d spins=%d notifs=%d",
					st.Operations, st.Evaluations, st.Spins, st.Notifications,
					res.Operations, res.Evaluations, res.Spins, res.Notifications)
			}
			if st.Done != res.Completed {
				t.Errorf("server done=%v, engine completed=%v", st.Done, res.Completed)
			}
		})
	}
}
