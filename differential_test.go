package adpm

// Differential guard for engine optimizations: the paper's reported
// metrics (operations, evaluations, spins, completion) are the
// reproduced artifact, so any change to the propagation engine's
// mechanics — interning, scratch reuse, parallel window refresh — must
// leave them byte-identical. The golden file was generated from the
// seed implementation (after pinning the one map-iteration-order
// nondeterminism in Propagate's re-enqueue loop) and is compared
// exactly, per seed, on both scenarios and both modes.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/trace"
)

// -update-golden regenerates testdata/differential_seed.json from the
// current implementation. Only valid when the current implementation is
// already known-good (the existing records must reproduce unchanged);
// used to grow the corpus, never to paper over a divergence.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/differential_seed.json from the current engine")

// Corpus shape: 2 scenarios x 2 modes x differentialSeeds seeded runs.
const differentialSeeds = 16

// differentialConfigs enumerates the corpus run configurations in
// golden-file order: grouped by (scenario, mode), seeds ascending.
func differentialConfigs() []differentialRecord {
	var out []differentialRecord
	for _, scn := range []string{"simplified", "receiver"} {
		for _, mode := range []string{"conventional", "ADPM"} {
			for seed := int64(1); seed <= differentialSeeds; seed++ {
				out = append(out, differentialRecord{Scenario: scn, Mode: mode, Seed: seed})
			}
		}
	}
	return out
}

type differentialRecord struct {
	Scenario    string `json:"scenario"`
	Mode        string `json:"mode"`
	Seed        int64  `json:"seed"`
	Operations  int    `json:"operations"`
	Evaluations int64  `json:"evaluations"`
	Spins       int    `json:"spins"`
	Completed   bool   `json:"completed"`
}

// differentialRun reproduces one golden record's run configuration.
func differentialRun(t *testing.T, rec differentialRecord) differentialRecord {
	t.Helper()
	scn, err := ScenarioByName(rec.Scenario)
	if err != nil {
		t.Fatalf("scenario %q: %v", rec.Scenario, err)
	}
	mode := ModeConventional
	if rec.Mode == ModeADPM.String() {
		mode = ModeADPM
	}
	// Every golden replay runs fully traced: beyond guarding the paper
	// metrics themselves, the corpus doubles as the trace-correctness
	// suite — the recorder's summed per-event counters must reconcile
	// with the Result bit-for-bit, so any instrumentation drift (missed
	// operation, double-counted evaluation) diverges here.
	tr := trace.New(trace.Options{})
	r, err := Run(Config{Scenario: scn, Mode: mode, Seed: rec.Seed, MaxOps: 3000, Tracer: tr})
	if err != nil {
		t.Fatalf("%s/%s seed %d: %v", rec.Scenario, rec.Mode, rec.Seed, err)
	}
	c := tr.Counters()
	if c.Operations != int64(r.Operations) {
		t.Errorf("trace operation count %d != Result.Operations %d", c.Operations, r.Operations)
	}
	if c.OperationEvals != r.Evaluations {
		t.Errorf("trace evaluation sum %d != Result.Evaluations %d", c.OperationEvals, r.Evaluations)
	}
	if c.Spins != int64(r.Spins) {
		t.Errorf("trace spin count %d != Result.Spins %d", c.Spins, r.Spins)
	}
	if c.Deliveries != int64(r.Notifications) {
		t.Errorf("trace delivery sum %d != Result.Notifications %d", c.Deliveries, r.Notifications)
	}
	return differentialRecord{
		Scenario:    rec.Scenario,
		Mode:        rec.Mode,
		Seed:        rec.Seed,
		Operations:  r.Operations,
		Evaluations: r.Evaluations,
		Spins:       r.Spins,
		Completed:   r.Completed,
	}
}

// TestDifferentialSeedMetrics replays every golden run and requires
// exact equality of the paper metrics. With -update-golden it instead
// rewrites the golden file from the current engine (full corpus; do not
// combine with -short).
func TestDifferentialSeedMetrics(t *testing.T) {
	if *updateGolden {
		if testing.Short() {
			t.Fatal("-update-golden needs the full corpus; drop -short")
		}
		var out []differentialRecord
		for _, rec := range differentialConfigs() {
			out = append(out, differentialRun(t, rec))
		}
		data, err := json.MarshalIndent(out, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("testdata/differential_seed.json", append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d records", len(out))
		return
	}
	data, err := os.ReadFile("testdata/differential_seed.json")
	if err != nil {
		t.Fatal(err)
	}
	var golden []differentialRecord
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden) != 2*2*differentialSeeds {
		t.Fatalf("golden file has %d records, want 64 (2 scenarios x 2 modes x 16 seeds)", len(golden))
	}
	for _, rec := range golden {
		rec := rec
		name := fmt.Sprintf("%s/%s/seed%d", rec.Scenario, rec.Mode, rec.Seed)
		t.Run(name, func(t *testing.T) {
			if rec.Scenario == "receiver" && testing.Short() {
				t.Skip("receiver differential runs skipped in -short mode")
			}
			got := differentialRun(t, rec)
			if got != rec {
				t.Errorf("metrics diverged from seed implementation:\n got  %+v\n want %+v", got, rec)
			}
		})
	}
}
