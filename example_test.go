package adpm_test

import (
	"fmt"

	adpm "repro"
)

// ExampleRun simulates one collaborative design process in each mode on
// the paper's simplified case and compares the operation counts.
func ExampleRun() {
	scn := adpm.Simplified()
	conv, _ := adpm.Run(adpm.Config{Scenario: scn, Mode: adpm.ModeConventional, Seed: 1})
	act, _ := adpm.Run(adpm.Config{Scenario: scn, Mode: adpm.ModeADPM, Seed: 1})
	fmt.Println("conventional completed:", conv.Completed)
	fmt.Println("ADPM completed:", act.Completed)
	fmt.Println("ADPM needs fewer operations:", act.Operations < conv.Operations)
	fmt.Println("ADPM pays more evaluations per operation:",
		act.EvalsPerOpMean() > conv.EvalsPerOpMean())
	// Output:
	// conventional completed: true
	// ADPM completed: true
	// ADPM needs fewer operations: true
	// ADPM pays more evaluations per operation: true
}

// ExampleNewProcess drives a design process by hand and reads the
// constraint-based heuristic data a designer would see.
func ExampleNewProcess() {
	scn, err := adpm.ParseScenarioString(`
scenario demo
object Specs {
    property Budget real [0, 100]
}
object Blk owner dev {
    property P real [0, 100]
}
constraint Cap: P <= Budget
problem Top owner lead {
    inputs { Budget }
    constraints { Cap }
}
problem Work owner dev {
    outputs { P }
    constraints { }
}
decompose Top -> Work
require Budget = 40
`)
	if err != nil {
		panic(err)
	}
	proc, err := adpm.NewProcess(scn, adpm.ModeADPM)
	if err != nil {
		panic(err)
	}
	view := adpm.BuildView(proc, "dev")
	// Propagation has narrowed P's feasible subspace to ≈[0, 40]
	// (conservative interval arithmetic may widen bounds by ~1e-10).
	iv, _ := view.Props["P"].Feasible.Interval()
	fmt.Printf("feasible subspace of P: [%.0f, %.0f]\n", iv.Lo, iv.Hi)
	fmt.Println("constraints on P (beta):", view.Props["P"].Beta)
	// Output:
	// feasible subspace of P: [0, 40]
	// constraints on P (beta): 1
}

// ExampleSolveScenario checks a scenario's specifications are
// achievable before any human effort is spent.
func ExampleSolveScenario() {
	res, err := adpm.SolveScenario(adpm.Sensor(), adpm.SolverOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("sensor scenario satisfiable:", res.Satisfiable)
	fmt.Println("design variables in witness:", len(res.Witness))
	// Output:
	// sensor scenario satisfiable: true
	// design variables in witness: 8
}

// ExampleCompare reproduces a row of the paper's Fig. 9 at reduced
// scale.
func ExampleCompare() {
	cmp, err := adpm.Compare("simplified",
		adpm.Config{Scenario: adpm.Simplified(), Seed: 1, MaxOps: 3000}, 8, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("conventional needs at least 2x the operations:", cmp.OpsRatio() >= 2)
	fmt.Println("ADPM consumes more evaluations in total:", cmp.EvalPenaltyTotal() > 1)
	// Output:
	// conventional needs at least 2x the operations: true
	// ADPM consumes more evaluations in total: true
}
