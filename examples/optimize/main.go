// Design-space exploration: the paper frames design as "a search
// process in a design space restricted by constraints" (§1). This
// example uses the constraint substrate directly — no simulated
// designers — to answer two engineering questions about the MEMS
// receiver scenario before any human effort is spent:
//
//  1. are the specifications achievable at all? (satisfiability)
//  2. what is the lowest-power design that meets every spec, and what
//     is the highest gain the power budget allows? (optimization)
package main

import (
	"fmt"
	"log"
	"sort"

	adpm "repro"
)

func main() {
	scn := adpm.Receiver()

	fmt.Println("== 1. satisfiability: can the specs be met at all? ==")
	sat, err := adpm.SolveScenario(scn, adpm.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("satisfiable: %v (%d search nodes, %d constraint evaluations)\n\n",
		sat.Satisfiable, sat.Nodes, sat.Evaluations)

	fmt.Println("== 2a. minimum-power design meeting every spec ==")
	minPower, err := adpm.MinimizeScenario(scn, "System_power", adpm.SolverOptions{MaxNodes: 2000})
	if err != nil {
		log.Fatal(err)
	}
	if !minPower.Feasible {
		log.Fatal("no feasible point found")
	}
	fmt.Printf("best power: %.1f mW (budget: 200 mW)\n", minPower.Objective)
	printWitness(minPower.Witness)

	fmt.Println("\n== 2b. maximum system gain within the power budget ==")
	// Maximize by minimizing the negation.
	maxGain, err := adpm.MinimizeScenario(scn, "0 - System_gain", adpm.SolverOptions{MaxNodes: 4000})
	if err != nil {
		log.Fatal(err)
	}
	if !maxGain.Feasible {
		log.Fatal("no feasible point found")
	}
	fmt.Printf("best gain: %.1f (requirement: >= 48)\n", -maxGain.Objective)
	printWitness(maxGain.Witness)

	fmt.Println("\nthe two corners bracket the trade-off space the design team")
	fmt.Println("navigates; ADPM's constraint propagation shows each designer the")
	fmt.Println("feasible slice of it after every operation.")
}

func printWitness(w map[string]float64) {
	names := make([]string, 0, len(w))
	for n := range w {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-14s %8.3f\n", n, w[n])
	}
}
