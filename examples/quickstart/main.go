// Quickstart: build a small constraint network from DDDL, run one
// ADPM-managed design process, and inspect the constraint-based
// heuristic data a designer would see.
package main

import (
	"fmt"
	"log"

	adpm "repro"
)

const doc = `
scenario quickstart

object Specs {
    property Budget real [0, 100]
}
object Stage1 owner alice {
    property P1 real [0, 100]

    derived Q1 real [0, 1000] = 2 * P1
}
object Stage2 owner bob {
    property P2 real [0, 100]
}

constraint Split:  P1 + P2 <= Budget
constraint Stage1Min: Q1 >= 30

problem Top owner leader {
    inputs { Budget }
    constraints { Split }
}
problem S1 owner alice {
    outputs { P1 }
    constraints { Stage1Min }
}
problem S2 owner bob {
    outputs { P2 }
    constraints { }
}
decompose Top -> S1, S2
require Budget = 60
`

func main() {
	scn, err := adpm.ParseScenarioString(doc)
	if err != nil {
		log.Fatal(err)
	}

	// Drive the process by hand: bind P1, look at the heuristic data.
	proc, err := adpm.NewProcess(scn, adpm.ModeADPM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== after initial propagation (Budget = 60) ==")
	showView(proc, "alice")

	if _, err := proc.Apply(adpm.Operation{
		Kind: adpm.OpSynthesis, Problem: "S1", Designer: "alice",
		Assignments: []adpm.Assignment{{Prop: "P1", Value: adpm.Real(40)}},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== after alice binds P1 = 40 ==")
	showView(proc, "bob")

	// Then let TeamSim finish the whole process automatically.
	res, err := adpm.Run(adpm.Config{Scenario: scn, Mode: adpm.ModeADPM, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== full simulated run (ADPM) ==")
	fmt.Printf("completed=%v operations=%d evaluations=%d spins=%d\n",
		res.Completed, res.Operations, res.Evaluations, res.Spins)
	fmt.Printf("final: P1=%.2f P2=%.2f Q1=%.2f\n",
		res.FinalValues["P1"], res.FinalValues["P2"], res.FinalValues["Q1"])
}

// showView prints the per-property heuristic support data of §2.3:
// feasible subspaces v_F, constraint count β, violation count α.
func showView(proc *adpm.Process, designer string) {
	v := adpm.BuildView(proc, designer)
	fmt.Printf("view of %s (violations known: %d)\n", designer, len(v.Violations))
	for _, name := range []string{"P1", "P2", "Q1", "Budget"} {
		pi := v.Props[name]
		if pi == nil {
			continue
		}
		bound := "unbound"
		if pi.Bound != nil {
			bound = "= " + pi.Bound.String()
		}
		fmt.Printf("  %-7s %-10s feasible %-22s alpha=%d beta=%d\n",
			name, bound, pi.Feasible.String(), pi.Alpha, pi.Beta)
	}
}
