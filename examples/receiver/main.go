// The §2.4 walkthrough: team-based design of a MEMS wireless receiver
// front-end under ADPM, reproducing the paper's narrative —
//
//  1. the device engineer sets the filter beam length to 13 µm and
//     completes an initial filter;
//  2. the circuit designer consults the object browser (Fig. 2): the
//     frequency inductor's feasible window is small, so the inductor is
//     designed first (0.2 µH), then the differential pair is sized to
//     the smallest potentially feasible width (2.5 µm) to save power;
//  3. the chosen values violate the global gain requirement, and the
//     team leader worsens things by tightening the input impedance
//     requirement to 40 Ω — two violations;
//  4. the constraint/property browser (Fig. 4) shows the differential
//     pair width connected to both violations (α = 2); since larger
//     transistors improve gain and impedance matching, the designer
//     raises the width to 3.5 µm — and both violations are fixed with a
//     single operation.
package main

import (
	"fmt"
	"log"

	adpm "repro"
)

func main() {
	proc, err := adpm.NewProcess(adpm.Receiver(), adpm.ModeADPM)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. device engineer: beam length 13 µm, then the rest of the
	// filter ------------------------------------------------------------
	fmt.Println("== step 1: device engineer completes an initial filter ==")
	deviceBind(proc, "Beam_len", 13)
	deviceBind(proc, "Beam_width", 3.7)
	deviceBind(proc, "Gap", 0.5)
	deviceBind(proc, "Drive_V", 16)
	fmt.Printf("filter: center frequency %.1f MHz, bandwidth %.2f MHz, loss %.2f\n\n",
		value(proc, "Filter_freq"), value(proc, "Filter_BW"), value(proc, "Filter_loss"))

	// --- 2. circuit designer: object browser (Fig. 2) -------------------
	fmt.Println("== step 2: circuit designer consults the object browser (Fig. 2) ==")
	view := adpm.BuildView(proc, "circuit")
	fmt.Println("Object name: LNA+Mixer — subspaces not found infeasible:")
	for _, p := range []string{"Freq_ind", "Diff_pair_W", "Bias_I", "Mixer_gm"} {
		pi := view.Props[p]
		fmt.Printf("  %-12s consistent values %-24s (relative size %.2f)\n",
			p, pi.Feasible.String(), pi.RelFeasible)
	}
	fmt.Println("the inductor's window is smallest — design it first (0.2 µH),")
	fmt.Println("then size the differential pair to its smallest feasible width")
	fmt.Println("(2.5 µm), which will reduce power consumption.")
	circuitBind(proc, "Freq_ind", 0.2)
	circuitBind(proc, "Bias_I", 4.7)
	circuitBind(proc, "Mixer_gm", 3.7)
	circuitBind(proc, "Deser_rate", 6)
	tr := circuitBind(proc, "Diff_pair_W", 2.5)
	fmt.Printf("\nafter W = 2.5 µm: violations %v\n", tr.ViolationsAfter)
	if !contains(tr.ViolationsAfter, "GainSpec") {
		log.Fatal("narrative broken: the gain requirement should now be violated")
	}
	fmt.Printf("system gain %.1f < required 48 — the global gain requirement is violated\n\n",
		value(proc, "System_gain"))

	// --- 3. the leader tightens the input impedance spec ----------------
	fmt.Println("== step 3: the team leader tightens the impedance requirement to 40 Ω ==")
	tr = apply(proc, adpm.Operation{
		Kind: adpm.OpSynthesis, Problem: "Top", Designer: "leader",
		Assignments: []adpm.Assignment{{Prop: "MinZin", Value: adpm.Real(40)}},
	})
	fmt.Printf("violations now: %v\n", tr.ViolationsAfter)
	if !contains(tr.ViolationsAfter, "ZinLo") {
		log.Fatal("narrative broken: tightening should violate the impedance requirement")
	}
	fmt.Printf("LNA input impedance %.1f Ω < 40 Ω\n\n", value(proc, "LNA_Zin"))

	// --- 4. constraint/property browser (Fig. 4) and the one-move fix ---
	fmt.Println("== step 4: circuit designer resolves the conflicts (Fig. 4) ==")
	view = adpm.BuildView(proc, "circuit")
	fmt.Println("PROPERTIES pane — connected violations per property:")
	for _, p := range []string{"Diff_pair_W", "Freq_ind", "Bias_I", "Mixer_gm"} {
		pi := view.Props[p]
		fmt.Printf("  %-12s value %-8s #c's=%d connected-violations=%d movement-window=%s\n",
			p, pi.Bound.String(), pi.Beta, pi.Alpha, pi.Feasible.String())
	}
	w := view.Props["Diff_pair_W"]
	if w.Alpha != 2 {
		log.Fatalf("narrative broken: α(Diff_pair_W) = %d, want 2", w.Alpha)
	}
	fmt.Println("\nthe differential pair width is connected to two violations (α = 2);")
	fmt.Println("larger transistors improve gain and input impedance matching, so the")
	fmt.Println("designer increases the width to 3.5 µm:")
	tr = apply(proc, adpm.Operation{
		Kind: adpm.OpSynthesis, Problem: "AnalogFE", Designer: "circuit",
		Assignments: []adpm.Assignment{{Prop: "Diff_pair_W", Value: adpm.Real(3.5)}},
		MotivatedBy: []string{"GainSpec", "ZinLo"},
	})
	fmt.Printf("\nviolations after the move: %v\n", tr.ViolationsAfter)
	if len(tr.ViolationsAfter) != 0 {
		log.Fatalf("narrative broken: violations remain: %v", tr.ViolationsAfter)
	}
	fmt.Printf("system gain %.1f >= 48 and input impedance %.1f Ω >= 40 Ω\n",
		value(proc, "System_gain"), value(proc, "LNA_Zin"))
	fmt.Println("both violations have been fixed with a single iteration.")
}

func deviceBind(p *adpm.Process, prop string, v float64) {
	apply(p, adpm.Operation{
		Kind: adpm.OpSynthesis, Problem: "FilterDesign", Designer: "device",
		Assignments: []adpm.Assignment{{Prop: prop, Value: adpm.Real(v)}},
	})
}

func circuitBind(p *adpm.Process, prop string, v float64) *adpm.Transition {
	return apply(p, adpm.Operation{
		Kind: adpm.OpSynthesis, Problem: "AnalogFE", Designer: "circuit",
		Assignments: []adpm.Assignment{{Prop: prop, Value: adpm.Real(v)}},
	})
}

func apply(p *adpm.Process, op adpm.Operation) *adpm.Transition {
	tr, err := p.Apply(op)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func value(p *adpm.Process, prop string) float64 {
	v, _ := p.Net.Property(prop).Value()
	return v.Num()
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
