// Concurrent co-design of the MEMS pressure sensing system: one
// goroutine per team member (device engineer, circuit designer, team
// leader), each exchanging messages with the design process manager
// server — the distributed TeamSim architecture of Fig. 5 — and a
// comparison of both process-management modes on the same case.
package main

import (
	"fmt"
	"log"

	adpm "repro"
)

func main() {
	scn := adpm.Sensor()

	fmt.Println("== concurrent engine: one goroutine per designer (ADPM) ==")
	res, err := adpm.RunConcurrent(adpm.Config{
		Scenario: scn, Mode: adpm.ModeADPM, Seed: 7, MaxOps: 3000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed=%v operations=%d evaluations=%d spins=%d\n",
		res.Completed, res.Operations, res.Evaluations, res.Spins)
	fmt.Printf("sensor: diaphragm R=%.0f µm t=%.1f µm gap=%.2f µm seal %.0f K\n",
		res.FinalValues["Diaphragm_R"], res.FinalValues["Diaphragm_t"],
		res.FinalValues["Cavity_gap"], res.FinalValues["Seal_T"])
	fmt.Printf("interface: gain=%.1f bits=%.1f clock=%.1f MHz bias=%.1f mA\n",
		res.FinalValues["Amp_gain"], res.FinalValues["ADC_bits"],
		res.FinalValues["Clock_f"], res.FinalValues["Ibias"])
	fmt.Printf("achieved: resolution=%.1f (>=120) yield=%.1f%% (>=80) range=%.0f kPa (>=150) power=%.1f mW (<=60)\n\n",
		res.FinalValues["Resolution"], res.FinalValues["Yield"],
		res.FinalValues["PressureRange"], res.FinalValues["System_power"])

	fmt.Println("== conventional vs ADPM on the same case (10 seeds each) ==")
	cmp, err := adpm.Compare("sensor", adpm.Config{Scenario: scn, Seed: 1, MaxOps: 3000}, 10, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional: ops %0.1f±%0.1f  evals %0.0f  spins %0.2f\n",
		cmp.Conventional.Ops.Mean, cmp.Conventional.Ops.Std,
		cmp.Conventional.Evals.Mean, cmp.Conventional.Spins.Mean)
	fmt.Printf("ADPM:         ops %0.1f±%0.1f  evals %0.0f  spins %0.2f\n",
		cmp.ADPM.Ops.Mean, cmp.ADPM.Ops.Std,
		cmp.ADPM.Evals.Mean, cmp.ADPM.Spins.Mean)
	fmt.Printf("ADPM does the design in %.1fx fewer operations, %.0fx less variably,\n",
		cmp.OpsRatio(), cmp.StdRatio())
	fmt.Printf("with %.0f%% of the conventional approach's late iterations, paying a\n",
		100*cmp.SpinRatio())
	fmt.Printf("%.1fx constraint-evaluation penalty for the timely feedback.\n",
		cmp.EvalPenaltyTotal())
}
