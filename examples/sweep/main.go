// Specification-tightness sweep (the Fig. 10 experiment): how the
// number of design operations grows as the receiver's gain requirement
// tightens, under both process-management modes. ADPM's guidance keeps
// the process far more robust to tight specifications.
package main

import (
	"fmt"
	"log"

	adpm "repro"
	"repro/internal/scenario"
)

func main() {
	const runs = 20
	fmt.Printf("%8s | %-28s | %-28s\n", "MinGain", "conventional ops (mean±std)", "ADPM ops (mean±std)")
	fmt.Println("---------+------------------------------+-----------------------------")
	for _, gain := range scenario.GainSweep() {
		scn := adpm.ReceiverWithGain(gain)
		conv, err := adpm.RunMany(adpm.Config{
			Scenario: scn, Mode: adpm.ModeConventional, Seed: 1, MaxOps: 3000,
		}, runs, 0)
		if err != nil {
			log.Fatal(err)
		}
		act, err := adpm.RunMany(adpm.Config{
			Scenario: scn, Mode: adpm.ModeADPM, Seed: 1, MaxOps: 3000,
		}, runs, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f | %10.1f ± %-8.1f (%2d/%d) | %10.1f ± %-8.1f (%2d/%d)\n",
			gain,
			conv.Ops.Mean, conv.Ops.Std, conv.Completed, runs,
			act.Ops.Mean, act.Ops.Std, act.Completed, runs)
	}
	fmt.Println("\n(ops at the cap of 3000 indicate runs that did not converge; the")
	fmt.Println("conventional approach degrades much faster as the spec tightens.)")
}
