package adpm

// Guards the runnable examples: each must build and exit cleanly, and
// the §2.4 walkthrough must reproduce its narrative (it asserts each
// step internally and exits non-zero on drift).

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, dir string, wantOutput ...string) {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode")
	}
	cmd := exec.Command("go", "run", "./"+dir)
	cmd.Dir = "."
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		_ = cmd.Process.Kill()
		t.Fatalf("%s: timed out", dir)
	}
	if err != nil {
		t.Fatalf("%s failed: %v\n%s", dir, err, out)
	}
	text := string(out)
	for _, want := range wantOutput {
		if !strings.Contains(text, want) {
			t.Errorf("%s output missing %q", dir, want)
		}
	}
}

func TestExampleQuickstart(t *testing.T) {
	runExample(t, "examples/quickstart",
		"after initial propagation",
		"full simulated run (ADPM)",
		"completed=true")
}

func TestExampleReceiverWalkthrough(t *testing.T) {
	runExample(t, "examples/receiver",
		"both violations have been fixed with a single iteration")
}

func TestExampleSensor(t *testing.T) {
	runExample(t, "examples/sensor",
		"concurrent engine",
		"conventional vs ADPM")
}

func TestExampleOptimize(t *testing.T) {
	runExample(t, "examples/optimize",
		"satisfiable: true",
		"best power:")
}

// The sweep example runs 240 simulations; it is exercised by the
// figures package tests instead (Fig10 with reduced runs), so here it
// only needs to compile — covered by `go build ./...` / `go vet`.
