// Package browser renders the Minerva III user-interface views the
// paper's ADPM section is built around, as text:
//
//   - the object browser of Fig. 2 ("subspaces not found to be
//     infeasible"): per-property consistent value sets;
//   - the constraint and property browser of Fig. 3 / Fig. 4: per
//     property, the number of constraints it appears in (β), its
//     current value, and the number of connected violations (α), plus
//     the CONSTRAINTS pane with per-constraint status and required
//     windows.
//
// The renderings operate on a designer's dcm.View, so they display
// exactly the information that designer is entitled to in the current
// process mode.
package browser

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/constraint"
	"repro/internal/dcm"
	"repro/internal/dpm"
)

// ObjectBrowser renders the Fig. 2 view for one design object: every
// property of the object that appears in the designer's view, with its
// consistent (feasible) value set.
func ObjectBrowser(v *dcm.View, object string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Object name: %s\n", object)
	names := sortedProps(v)
	found := false
	for _, name := range names {
		pi := v.Props[name]
		if pi.Object != object {
			continue
		}
		found = true
		bound := ""
		if pi.Bound != nil {
			bound = fmt.Sprintf(" (assigned %s)", pi.Bound)
		}
		fmt.Fprintf(&b, "  %-16s Consistent values: %s%s\n", pi.Name, pi.Feasible, bound)
	}
	if !found {
		b.WriteString("  (no visible properties)\n")
	}
	return b.String()
}

// PropertyPane renders the PROPERTIES pane of Fig. 3/Fig. 4: property,
// number of constraints it appears in, current value, owning object,
// and connected violations.
func PropertyPane(v *dcm.View) string {
	var b strings.Builder
	b.WriteString("PROPERTIES\n")
	fmt.Fprintf(&b, "  %-20s %5s  %-22s %-12s %s\n",
		"Property", "# c's", "Value", "Object", "Connected violations")
	for _, name := range sortedProps(v) {
		pi := v.Props[name]
		val := "<No value assigned>"
		if pi.Bound != nil {
			val = pi.Bound.String()
		}
		viol := ""
		if pi.Alpha > 0 {
			viol = fmt.Sprintf("%d", pi.Alpha)
		}
		fmt.Fprintf(&b, "  %-20s %5d  %-22s %-12s %s\n",
			"P."+name, pi.Beta, val, pi.Object, viol)
	}
	return b.String()
}

// ConstraintPane renders the CONSTRAINTS pane: each constraint relevant
// to the designer with its current status, flagging the violated ones
// as the paper's browser does.
func ConstraintPane(d *dpm.DPM, v *dcm.View) string {
	var b strings.Builder
	b.WriteString("CONSTRAINTS\n")
	relevant := map[string]bool{}
	for name := range v.Props {
		for _, c := range d.Net.ConstraintsOn(name) {
			relevant[c.Name] = true
		}
	}
	names := make([]string, 0, len(relevant))
	for n := range relevant {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, cn := range names {
		status := d.Net.Status(cn)
		marker := " "
		if status == constraint.Violated {
			marker = "!"
		}
		fmt.Fprintf(&b, "%s %-20s %s\n", marker, cn, status)
	}
	return b.String()
}

// ConflictPane renders the conflict-resolution view of Fig. 4: the
// known violations with their margins and the value-change directions
// likely to fix them.
func ConflictPane(v *dcm.View) string {
	var b strings.Builder
	b.WriteString("CONFLICTS\n")
	if len(v.Violations) == 0 {
		b.WriteString("  (no known violations)\n")
		return b.String()
	}
	for _, vi := range v.Violations {
		scope := "local"
		if vi.CrossSubsystem {
			scope = "cross-subsystem"
		}
		fmt.Fprintf(&b, "  %-20s Violated (margin %.4g, %s)\n", vi.Constraint, vi.Margin, scope)
		props := make([]string, 0, len(vi.FixDirections))
		for p := range vi.FixDirections {
			props = append(props, p)
		}
		sort.Strings(props)
		for _, p := range props {
			dir := vi.FixDirections[p]
			word := "direction unknown"
			switch {
			case dir > 0:
				word = "increase"
			case dir < 0:
				word = "decrease"
			}
			step := ""
			if s := vi.FixSteps[p]; s > 0 {
				step = fmt.Sprintf(" by ≈%.4g", s)
			}
			fmt.Fprintf(&b, "      fix via %-16s %s%s\n", p, word, step)
		}
	}
	return b.String()
}

// Full renders all panes for one designer — the complete browser window.
func Full(d *dpm.DPM, designer string) string {
	v := dcm.BuildView(d, designer)
	var b strings.Builder
	fmt.Fprintf(&b, "=== Minerva browser — designer %s (%s mode) ===\n\n", designer, d.Mode)
	objects := map[string]bool{}
	for _, pi := range v.Props {
		if pi.Object != "" {
			objects[pi.Object] = true
		}
	}
	names := make([]string, 0, len(objects))
	for o := range objects {
		names = append(names, o)
	}
	sort.Strings(names)
	for _, o := range names {
		b.WriteString(ObjectBrowser(v, o))
		b.WriteString("\n")
	}
	b.WriteString(ConstraintPane(d, v))
	b.WriteString("\n")
	b.WriteString(PropertyPane(v))
	b.WriteString("\n")
	b.WriteString(ConflictPane(v))
	return b.String()
}

func sortedProps(v *dcm.View) []string {
	names := make([]string, 0, len(v.Props))
	for n := range v.Props {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
