package browser

import (
	"strings"
	"testing"

	"repro/internal/dcm"
	"repro/internal/domain"
	"repro/internal/dpm"
	"repro/internal/scenario"
)

func receiverState(t *testing.T) *dpm.DPM {
	t.Helper()
	d, err := dpm.FromScenario(scenario.Receiver(), dpm.ADPM)
	if err != nil {
		t.Fatal(err)
	}
	bind := func(problem, prop string, v float64) {
		t.Helper()
		if _, err := d.Apply(dpm.Operation{
			Kind: dpm.OpSynthesis, Problem: problem, Designer: "t",
			Assignments: []dpm.Assignment{{Prop: prop, Value: domain.Real(v)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	bind("FilterDesign", "Beam_len", 13)
	bind("FilterDesign", "Beam_width", 3.7)
	bind("FilterDesign", "Gap", 0.5)
	bind("FilterDesign", "Drive_V", 16)
	bind("AnalogFE", "Freq_ind", 0.2)
	bind("AnalogFE", "Bias_I", 4.7)
	bind("AnalogFE", "Mixer_gm", 3.7)
	bind("AnalogFE", "Deser_rate", 6)
	bind("AnalogFE", "Diff_pair_W", 2.5) // violates GainSpec
	return d
}

func TestObjectBrowserShowsConsistentValues(t *testing.T) {
	d := receiverState(t)
	v := dcm.BuildView(d, "circuit")
	out := ObjectBrowser(v, "LNA_Mixer")
	for _, want := range []string{"Object name: LNA_Mixer", "Freq_ind", "Consistent values:", "Diff_pair_W"} {
		if !strings.Contains(out, want) {
			t.Errorf("object browser missing %q:\n%s", want, out)
		}
	}
	if out2 := ObjectBrowser(v, "NoSuchObject"); !strings.Contains(out2, "no visible properties") {
		t.Errorf("empty object should say so:\n%s", out2)
	}
}

func TestPropertyPaneShowsAlphaBeta(t *testing.T) {
	d := receiverState(t)
	v := dcm.BuildView(d, "circuit")
	out := PropertyPane(v)
	if !strings.Contains(out, "P.Diff_pair_W") {
		t.Fatalf("pane missing property:\n%s", out)
	}
	// Diff_pair_W is connected to the gain violation.
	line := lineContaining(out, "P.Diff_pair_W")
	if !strings.Contains(line, "1") {
		t.Errorf("Diff_pair_W line should show a connected violation: %q", line)
	}
	// In a fresh process the design variables are unassigned.
	d0, err := dpm.FromScenario(scenario.Receiver(), dpm.ADPM)
	if err != nil {
		t.Fatal(err)
	}
	out0 := PropertyPane(dcm.BuildView(d0, "circuit"))
	if !strings.Contains(out0, "<No value assigned>") {
		t.Errorf("unassigned properties should be marked:\n%s", out0)
	}
}

func TestConstraintPaneFlagsViolations(t *testing.T) {
	d := receiverState(t)
	v := dcm.BuildView(d, "circuit")
	out := ConstraintPane(d, v)
	line := lineContaining(out, "GainSpec")
	if !strings.HasPrefix(line, "!") || !strings.Contains(line, "Violated") {
		t.Errorf("GainSpec should be flagged violated: %q", line)
	}
	if !strings.Contains(out, "Satisfied") {
		t.Errorf("satisfied constraints missing:\n%s", out)
	}
}

func TestConflictPane(t *testing.T) {
	d := receiverState(t)
	v := dcm.BuildView(d, "circuit")
	out := ConflictPane(v)
	for _, want := range []string{"GainSpec", "margin", "increase", "fix via"} {
		if !strings.Contains(out, want) {
			t.Errorf("conflict pane missing %q:\n%s", want, out)
		}
	}
	// Gain violations are cross-subsystem (circuit + device).
	if !strings.Contains(out, "cross-subsystem") {
		t.Errorf("gain conflict should be cross-subsystem:\n%s", out)
	}
}

func TestConflictPaneEmpty(t *testing.T) {
	d, err := dpm.FromScenario(scenario.Receiver(), dpm.ADPM)
	if err != nil {
		t.Fatal(err)
	}
	v := dcm.BuildView(d, "circuit")
	if out := ConflictPane(v); !strings.Contains(out, "no known violations") {
		t.Errorf("empty conflict pane wrong:\n%s", out)
	}
}

func TestFullBrowser(t *testing.T) {
	d := receiverState(t)
	out := Full(d, "circuit")
	for _, want := range []string{
		"Minerva browser", "designer circuit", "ADPM mode",
		"Object name:", "CONSTRAINTS", "PROPERTIES", "CONFLICTS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("full browser missing %q", want)
		}
	}
}

func TestConventionalBrowserHidesUnknownViolations(t *testing.T) {
	d, err := dpm.FromScenario(scenario.Receiver(), dpm.Conventional)
	if err != nil {
		t.Fatal(err)
	}
	// Same violating state, but without propagation nothing is known.
	for prop, v := range map[string]float64{
		"Beam_len": 13, "Beam_width": 3.7, "Gap": 0.5, "Drive_V": 16,
	} {
		if _, err := d.Apply(dpm.Operation{
			Kind: dpm.OpSynthesis, Problem: "FilterDesign", Designer: "t",
			Assignments: []dpm.Assignment{{Prop: prop, Value: domain.Real(v)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for prop, v := range map[string]float64{
		"Freq_ind": 0.2, "Bias_I": 4.7, "Mixer_gm": 3.7, "Deser_rate": 6, "Diff_pair_W": 2.5,
	} {
		if _, err := d.Apply(dpm.Operation{
			Kind: dpm.OpSynthesis, Problem: "AnalogFE", Designer: "t",
			Assignments: []dpm.Assignment{{Prop: prop, Value: domain.Real(v)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	v := dcm.BuildView(d, "circuit")
	if out := ConflictPane(v); !strings.Contains(out, "no known violations") {
		t.Errorf("conventional mode should not know the violation yet:\n%s", out)
	}
}

func lineContaining(s, sub string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			return line
		}
	}
	return ""
}
