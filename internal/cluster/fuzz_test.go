package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"
)

// FuzzProxyRoute mirrors FuzzServerOps' invariants through the cluster
// proxy, with a forced cross-pair migration between the first send and
// the keyed retry. Routing must be invisible to the batch contract:
//
//  1. no 5xx from the proxy in a healthy cluster — a 502/503 here means
//     the routing loop lost a request two live backends could serve;
//  2. any non-200 answer leaves the session state byte-identical (read
//     back through the proxy);
//  3. the forced migration preserves state byte-for-byte, and the
//     post-migration retry of an accepted keyed batch is a replayed
//     cached ack — exactly-once survives the ownership flip.
func FuzzProxyRoute(f *testing.F) {
	seeds := []string{
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":3}]}]}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":3},{"prop":"Bias","value":19}]}]}`,
		`{"ops":[{"kind":"verification","problem":"AmpDesign"}]}`,
		`{"ops":[{"kind":"decomposition","problem":"Top"}]}`,
		`{"ops":[]}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":"oops"}]}]}`,
		`{"ops":[{"kind":"synthesis","problem":"Ghost","assignments":[{"prop":"Width","value":1}]},{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Ind","value":2}]}]}`,
		`{"ops":[{"kind":"melt","problem":"Top"}]}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":1e308}]}]}`,
		`not json at all`,
		`{"ops": 3}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		a, b := startPair(t, "a"), startPair(t, "b")
		p, ph := startProxy(t, twoPairTable(a, b), ProxyOptions{})

		const id = "cfzz1"
		if resp, data := doJSON(t, http.MethodPost, ph.URL+"/sessions",
			[]byte(fmt.Sprintf(`{"scenario":"simplified","id":%q}`, id))); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: %s: %s", resp.Status, data)
		}
		stateURL := ph.URL + "/sessions/" + id + "/state"
		fetchState := func() []byte {
			t.Helper()
			resp, data := doJSON(t, http.MethodGet, stateURL, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("state via proxy: %s: %s", resp.Status, data)
			}
			return data
		}
		send := func() (*http.Response, []byte) {
			t.Helper()
			req, err := http.NewRequest(http.MethodPost, ph.URL+"/sessions/"+id+"/ops", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("Idempotency-Key", "fuzz-1")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data := make([]byte, 0, 1024)
			buf := make([]byte, 4096)
			for {
				n, rerr := resp.Body.Read(buf)
				data = append(data, buf[:n]...)
				if rerr != nil {
					break
				}
			}
			return resp, data
		}

		before := fetchState()
		resp1, ack1 := send()
		if resp1.StatusCode >= 500 {
			t.Fatalf("proxy answered %d in a healthy cluster: %s\nbody: %q", resp1.StatusCode, ack1, body)
		}
		after := fetchState()
		if resp1.StatusCode != http.StatusOK && !bytes.Equal(before, after) {
			t.Fatalf("rejected batch (status %d) mutated state through the proxy\nbody: %q", resp1.StatusCode, body)
		}

		// Forced mid-fuzz migration to whichever pair does not own the id.
		dst := "b"
		if p.View().Owner(id).Name == "b" {
			dst = "a"
		}
		if resp, data := doJSON(t, http.MethodPost, ph.URL+"/cluster/migrate",
			[]byte(fmt.Sprintf(`{"id":%q,"to":%q}`, id, dst))); resp.StatusCode != http.StatusOK {
			t.Fatalf("forced migration: %s: %s\nbody: %q", resp.Status, data, body)
		}
		if got := fetchState(); !bytes.Equal(got, after) {
			t.Fatalf("migration changed state\nbody: %q\nbefore: %s\nafter:  %s", body, after, got)
		}

		resp2, ack2 := send()
		if resp2.StatusCode >= 500 {
			t.Fatalf("post-migration retry answered %d: %s\nbody: %q", resp2.StatusCode, ack2, body)
		}
		if resp1.StatusCode == http.StatusOK {
			if resp2.StatusCode != http.StatusOK || resp2.Header.Get("Idempotent-Replay") != "true" {
				t.Fatalf("keyed retry after migration not replayed (status %d, replay %q)\nbody: %q",
					resp2.StatusCode, resp2.Header.Get("Idempotent-Replay"), body)
			}
			if !bytes.Equal(ack1, ack2) {
				t.Fatalf("replayed ack differs across migration\nbody: %q\nfirst: %s\nretry: %s", body, ack1, ack2)
			}
		}
		if got := fetchState(); !bytes.Equal(got, after) {
			t.Fatalf("post-migration retry mutated state\nbody: %q", body)
		}
	})
}
