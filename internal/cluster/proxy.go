package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/replica"
	"repro/internal/wal"
)

// Proxy is the thin HTTP front end (cmd/adpmproxy): it routes
// session-scoped requests — including SSE streams — to the owning
// pair's current leader, mints cluster-unique session ids for creates,
// follows promotions via the Router's /readyz probes, learns migration
// overrides from backend 307s, and orchestrates cross-pair migrations
// on POST /cluster/migrate.
type Proxy struct {
	router *Router
	minter *Minter
	client *http.Client

	mu   sync.Mutex
	view *View

	// dialAdopt ships an image to a pair's Adopt address over the
	// replica transport; injectable so tests migrate hermetically.
	dialAdopt func(addr string, img *wal.SessionImage) error

	// Counters (GET /cluster/stats).
	routed     atomic.Uint64
	redirects  atomic.Uint64
	migrations atomic.Uint64
}

// ProxyOptions parameterize NewProxy.
type ProxyOptions struct {
	// Client performs routed requests and probes; nil means a default
	// client (no overall timeout — SSE streams are long-lived; the
	// backend's own read deadlines bound misbehaving requests).
	Client *http.Client
	// MintTag distinguishes this proxy's minted ids from other minters'
	// ("p0" when empty).
	MintTag string
	// DialAdopt overrides the migration transport (tests); nil uses the
	// real replica transport (replica.Dial(addr).Adopt(img)).
	DialAdopt func(addr string, img *wal.SessionImage) error
}

// NewProxy builds a proxy over a validated table.
func NewProxy(t *Table, opts ProxyOptions) (*Proxy, error) {
	view, err := NewView(t)
	if err != nil {
		return nil, err
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	// Routed requests must surface backend redirects to the proxy's own
	// logic, never auto-follow them.
	noFollow := *client
	noFollow.CheckRedirect = func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	}
	tag := opts.MintTag
	if tag == "" {
		tag = "p0"
	}
	dial := opts.DialAdopt
	if dial == nil {
		dial = func(addr string, img *wal.SessionImage) error {
			c := replica.Dial(addr)
			defer c.Close()
			return c.Adopt(img)
		}
	}
	return &Proxy{
		router:    NewRouter(&noFollow),
		minter:    NewMinter(tag),
		client:    &noFollow,
		view:      view,
		dialAdopt: dial,
	}, nil
}

// View returns the current table view (routers refresh from it).
func (p *Proxy) View() *View {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.view
}

// learnOverride records that id now lives on pair (from a migration
// this proxy ran, or a 307 it observed) and bumps the epoch.
func (p *Proxy) learnOverride(id, pair string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.view.Table.Clone()
	if t.Overrides == nil {
		t.Overrides = map[string]string{}
	}
	if t.Overrides[id] == pair {
		return
	}
	t.Overrides[id] = pair
	t.Epoch++
	if v, err := NewView(t); err == nil {
		p.view = v
	}
}

// Handler returns the proxy's HTTP API: the adpmd session routes
// (transparently forwarded) plus the cluster control plane.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", p.handleCreate)
	mux.HandleFunc("/sessions/{id}", p.handleSession)
	mux.HandleFunc("/sessions/{id}/{rest...}", p.handleSession)
	mux.HandleFunc("GET /cluster/table", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.View().Table)
	})
	mux.HandleFunc("GET /cluster/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch":      p.View().Table.Epoch,
			"routed":     p.routed.Load(),
			"redirects":  p.redirects.Load(),
			"migrations": p.migrations.Load(),
		})
	})
	mux.HandleFunc("POST /cluster/migrate", p.handleMigrate)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", p.handleReady)
	return mux
}

// handleReady reports the proxy ready when every pair resolves a
// leader — the gate the live drill waits on before opening traffic.
func (p *Proxy) handleReady(w http.ResponseWriter, r *http.Request) {
	view := p.View()
	rows := make([]map[string]string, 0, len(view.Table.Pairs))
	ok := true
	for i := range view.Table.Pairs {
		pair := &view.Table.Pairs[i]
		base, err := p.router.Leader(pair)
		row := map[string]string{"pair": pair.Name, "leader": base}
		if err != nil {
			p.router.Invalidate(pair.Name)
			row["error"] = err.Error()
			ok = false
		}
		rows = append(rows, row)
	}
	status, code := "ready", http.StatusOK
	if !ok {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": status, "pairs": rows})
}

// handleCreate mints the session id (unless the client supplied one),
// injects it into the body, and routes by ring placement — the id
// determines the owner before the session exists.
func (p *Proxy) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading body: " + err.Error()})
		return
	}
	var req map[string]json.RawMessage
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid JSON body: " + err.Error()})
			return
		}
	}
	if req == nil {
		req = map[string]json.RawMessage{}
	}
	var id string
	if raw, ok := req["id"]; ok {
		if json.Unmarshal(raw, &id) != nil || id == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "id must be a non-empty string"})
			return
		}
	} else {
		id = p.minter.Mint()
		idRaw, _ := json.Marshal(id)
		req["id"] = idRaw
	}
	routed, _ := json.Marshal(req)
	p.forward(w, r, id, "/sessions", routed)
}

// handleSession routes every session-scoped request by the id in the
// path.
func (p *Proxy) handleSession(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading body: " + err.Error()})
		return
	}
	p.forward(w, r, r.PathValue("id"), r.URL.Path, body)
}

// maxRouteHops bounds forward's resolve→send→307 loop: one stale
// override plus one concurrent migration is the deepest legitimate
// chain, anything longer is a routing loop.
const maxRouteHops = 3

// forward resolves the owner, sends the request to its leader, and
// handles routing faults: a transport error invalidates the leader
// cache and retries (promotion following); a 307 learns the session's
// new owner and retries (stale-table healing). Everything else —
// including SSE streams — is copied through verbatim.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, id, path string, body []byte) {
	p.routed.Add(1)
	var lastErr error
	for hop := 0; hop < maxRouteHops; hop++ {
		view := p.View()
		pair := view.Owner(id)
		if pair == nil {
			writeJSON(w, http.StatusBadGateway, map[string]string{"error": fmt.Sprintf("no pair owns session %q", id)})
			return
		}
		base, err := p.router.Leader(pair)
		if err != nil {
			lastErr = err
			p.router.Invalidate(pair.Name)
			continue
		}
		u := base + path
		if r.URL.RawQuery != "" {
			u += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, u, bytes.NewReader(body))
		if err != nil {
			writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
			return
		}
		copyHeaders(req.Header, r.Header)
		resp, err := p.client.Do(req)
		if err != nil {
			// Transport-level failure: the leader may have just died.
			// Re-probe the pair and retry the idempotent routing step.
			lastErr = err
			p.router.Invalidate(pair.Name)
			continue
		}
		if resp.StatusCode == http.StatusTemporaryRedirect {
			loc := resp.Header.Get("Location")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			p.redirects.Add(1)
			if newPair := p.pairForLocation(loc); newPair != "" && newPair != pair.Name {
				p.learnOverride(id, newPair)
				lastErr = fmt.Errorf("session %q moved to %q", id, newPair)
				continue
			}
			// Unresolvable forwarding address: surface the redirect; the
			// client's next attempt through this proxy re-resolves.
			w.Header().Set("Location", loc)
			writeJSON(w, http.StatusTemporaryRedirect, map[string]string{"error": "session moved", "location": loc})
			return
		}
		streamResponse(w, resp)
		return
	}
	msg := "routing did not converge"
	if lastErr != nil {
		msg = lastErr.Error()
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "cluster: " + msg})
}

// pairForLocation maps a 307 Location to a pair name via the table's
// base URLs ("" when unknown).
func (p *Proxy) pairForLocation(loc string) string {
	u, err := url.Parse(loc)
	if err != nil {
		return ""
	}
	base := u.Scheme + "://" + u.Host
	if pair := p.View().Table.PairForBase(base); pair != nil {
		return pair.Name
	}
	return ""
}

// migrateRequest is the POST /cluster/migrate body.
type migrateRequest struct {
	ID string `json:"id"`
	To string `json:"to"`
}

// handleMigrate orchestrates one cross-pair migration: park-and-freeze
// on the source (begin), ship the image to the destination (adopt —
// over the replica transport when the pair publishes an Adopt address,
// over HTTP otherwise), tombstone the source (complete), and flip the
// table under a new epoch. Failure after adopt leaves the protocol
// re-runnable (adopt is idempotent); failure before it aborts cleanly.
func (p *Proxy) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req migrateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid body: " + err.Error()})
		return
	}
	view := p.View()
	dst := view.Table.Pair(req.To)
	if dst == nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("unknown destination pair %q", req.To)})
		return
	}
	src := view.Owner(req.ID)
	if src == nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("no pair owns session %q", req.ID)})
		return
	}
	if src.Name == dst.Name {
		writeJSON(w, http.StatusOK, map[string]string{"status": "noop", "pair": src.Name})
		return
	}
	srcBase, err := p.router.Leader(src)
	if err != nil {
		p.router.Invalidate(src.Name)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	dstBase, err := p.router.Leader(dst)
	if err != nil {
		p.router.Invalidate(dst.Name)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}

	// 1. Begin: park and freeze on the source, export the image.
	var img wal.SessionImage
	if err := p.postJSON(srcBase+"/sessions/"+req.ID+"/migrate", nil, &img); err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": "begin: " + err.Error()})
		return
	}

	// 2. Adopt on the destination (durable before the source forgets).
	if dst.Adopt != "" {
		err = p.dialAdopt(dst.Adopt, &img)
	} else {
		err = p.postJSON(dstBase+"/adopt", &img, nil)
	}
	if err != nil {
		// Nothing durable changed ownership; unfreeze the source.
		aerr := p.postJSON(srcBase+"/sessions/"+req.ID+"/migrate/abort", nil, nil)
		if aerr != nil {
			err = fmt.Errorf("%v (abort also failed: %v)", err, aerr)
		}
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": "adopt: " + err.Error()})
		return
	}

	// 3. Complete: durable tombstone on the source, then the new epoch.
	if err := p.postJSON(srcBase+"/sessions/"+req.ID+"/migrate/complete",
		&migrateCompleteBody{Location: dstBase}, nil); err != nil {
		// The destination already owns the bytes; the table flip below
		// still routes correctly, and a re-run of the migration heals the
		// missing tombstone (begin will answer ErrUnknownSession/307).
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": "complete: " + err.Error()})
		return
	}
	p.learnOverride(req.ID, dst.Name)
	p.migrations.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "moved",
		"id":     req.ID,
		"from":   src.Name,
		"to":     dst.Name,
		"epoch":  p.View().Table.Epoch,
	})
}

// migrateCompleteBody mirrors the server's migrate/complete request.
type migrateCompleteBody struct {
	Location string `json:"location"`
}

// postJSON posts a JSON body and decodes a JSON response (both
// optional), mapping non-2xx answers to errors.
func (p *Proxy) postJSON(u string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	} else {
		body = strings.NewReader("{}")
	}
	req, err := http.NewRequest(http.MethodPost, u, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("%s: %s: %s", u, resp.Status, strings.TrimSpace(string(data)))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// copyHeaders copies client headers onto the routed request, skipping
// hop-by-hop ones.
func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		switch k {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade", "Content-Length":
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// streamResponse copies a backend response through, flushing after
// every chunk so SSE frames reach the client as they arrive.
func streamResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	fl, canFlush := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if canFlush {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// writeJSON mirrors the server's helper (kept package-local so the
// proxy has no dependency on internal/server).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
