package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/server"
	"repro/internal/wal"
)

// testPair is one hermetic durable backend standing in for a replicated
// pair: a real internal/server stack on an in-memory filesystem behind
// an httptest listener.
type testPair struct {
	name string
	srv  *server.Server
	hs   *httptest.Server
}

func startPair(t *testing.T, name string) *testPair {
	t.Helper()
	srv, err := server.Open(server.Options{
		Shards:  1,
		MaxOps:  64,
		DataDir: "data",
		FS:      faultfs.NewMemFS(),
		Fsync:   wal.SyncAlways,
		IdemCap: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Drain()
	})
	return &testPair{name: name, srv: srv, hs: hs}
}

// startProxy builds a proxy over the given pairs and serves it.
func startProxy(t *testing.T, tbl *Table, opts ProxyOptions) (*Proxy, *httptest.Server) {
	t.Helper()
	p, err := NewProxy(tbl, opts)
	if err != nil {
		t.Fatal(err)
	}
	ph := httptest.NewServer(p.Handler())
	t.Cleanup(ph.Close)
	return p, ph
}

func twoPairTable(a, b *testPair) *Table {
	return &Table{
		Epoch: 1,
		Seed:  1,
		Pairs: []Pair{
			{Name: a.name, Bases: []string{a.hs.URL}},
			{Name: b.name, Bases: []string{b.hs.URL}},
		},
	}
}

// idOwnedBy mints ids until the view places one on the wanted pair —
// placement is deterministic, so the probe is too.
func idOwnedBy(t *testing.T, v *View, pair string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("cown%d", i)
		if v.Owner(id).Name == pair {
			return id
		}
	}
	t.Fatalf("no id of 1000 lands on pair %q", pair)
	return ""
}

func opsBody(key string, val float64) []byte {
	return []byte(fmt.Sprintf(
		`{"key":%q,"ops":[{"kind":"synthesis","problem":"AmpDesign","designer":"t","assignments":[{"prop":"Width","value":%g}]}]}`,
		key, val))
}

func doJSON(t *testing.T, method, u string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, u, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Never auto-follow: tests assert on raw 307s from the backends.
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

type proxyStats struct {
	Epoch      uint64 `json:"epoch"`
	Routed     uint64 `json:"routed"`
	Redirects  uint64 `json:"redirects"`
	Migrations uint64 `json:"migrations"`
}

func getStats(t *testing.T, proxyURL string) proxyStats {
	t.Helper()
	resp, data := doJSON(t, http.MethodGet, proxyURL+"/cluster/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cluster/stats: %s: %s", resp.Status, data)
	}
	var st proxyStats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestProxyCreateRoutesByRing pins the create path: the proxy mints a
// "c<tag>x<n>" id, injects it into the body, and the session lands on
// the pair the ring assigns that id — verified by asking each backend
// directly.
func TestProxyCreateRoutesByRing(t *testing.T) {
	a, b := startPair(t, "a"), startPair(t, "b")
	p, ph := startProxy(t, twoPairTable(a, b), ProxyOptions{})

	resp, data := doJSON(t, http.MethodPost, ph.URL+"/sessions", []byte(`{"scenario":"simplified"}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create via proxy: %s: %s", resp.Status, data)
	}
	var created server.CreateResponse
	if err := json.Unmarshal(data, &created); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(created.ID, "cp0x") {
		t.Fatalf("proxy minted id %q, want cp0x<n>", created.ID)
	}

	owner := p.View().Owner(created.ID).Name
	for _, pair := range []*testPair{a, b} {
		resp, _ := doJSON(t, http.MethodGet, pair.hs.URL+"/sessions/"+created.ID+"/state", nil)
		wantOK := pair.name == owner
		if gotOK := resp.StatusCode == http.StatusOK; gotOK != wantOK {
			t.Errorf("pair %s direct state: %s, want 200=%v (ring owner %s)", pair.name, resp.Status, wantOK, owner)
		}
	}
}

// TestProxyOpsAndIdempotentReplay pins that keyed batches route through
// the proxy with exactly-once semantics intact: a retry of the same key
// returns the original acknowledgement byte-identically and is flagged
// as a replay.
func TestProxyOpsAndIdempotentReplay(t *testing.T) {
	a, b := startPair(t, "a"), startPair(t, "b")
	_, ph := startProxy(t, twoPairTable(a, b), ProxyOptions{})

	resp, data := doJSON(t, http.MethodPost, ph.URL+"/sessions", []byte(`{"scenario":"simplified","id":"cidem1"}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s: %s", resp.Status, data)
	}
	resp, ack1 := doJSON(t, http.MethodPost, ph.URL+"/sessions/cidem1/ops", opsBody("k1", 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ops: %s: %s", resp.Status, ack1)
	}
	if resp.Header.Get("Idempotent-Replay") != "" {
		t.Fatal("first send of key k1 flagged as a replay")
	}
	resp, ack2 := doJSON(t, http.MethodPost, ph.URL+"/sessions/cidem1/ops", opsBody("k1", 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ops retry: %s: %s", resp.Status, ack2)
	}
	if resp.Header.Get("Idempotent-Replay") != "true" {
		t.Error("retry of key k1 not flagged Idempotent-Replay through the proxy")
	}
	if !bytes.Equal(ack1, ack2) {
		t.Errorf("retry ack differs from original:\n  first: %s\n  retry: %s", ack1, ack2)
	}

	st := getStats(t, ph.URL)
	if st.Routed < 3 {
		t.Errorf("routed counter %d, want >=3", st.Routed)
	}
}

// TestProxyMigrate pins the orchestrated cross-pair migration: state
// survives byte-identically on the new owner, the table flips under a
// new epoch, the old pair answers 307 with the new pair's base, and
// new writes land on the destination.
func TestProxyMigrate(t *testing.T) {
	a, b := startPair(t, "a"), startPair(t, "b")
	p, ph := startProxy(t, twoPairTable(a, b), ProxyOptions{})

	id := idOwnedBy(t, p.View(), "a")
	resp, data := doJSON(t, http.MethodPost, ph.URL+"/sessions",
		[]byte(fmt.Sprintf(`{"scenario":"simplified","id":%q}`, id)))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s: %s", resp.Status, data)
	}
	if resp, data = doJSON(t, http.MethodPost, ph.URL+"/sessions/"+id+"/ops", opsBody("k1", 2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ops: %s: %s", resp.Status, data)
	}
	_, before := doJSON(t, http.MethodGet, ph.URL+"/sessions/"+id+"/state", nil)

	resp, data = doJSON(t, http.MethodPost, ph.URL+"/cluster/migrate",
		[]byte(fmt.Sprintf(`{"id":%q,"to":"b"}`, id)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate: %s: %s", resp.Status, data)
	}
	var moved struct {
		Status string `json:"status"`
		From   string `json:"from"`
		To     string `json:"to"`
		Epoch  uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(data, &moved); err != nil {
		t.Fatal(err)
	}
	if moved.Status != "moved" || moved.From != "a" || moved.To != "b" || moved.Epoch != 2 {
		t.Fatalf("migrate response %+v, want moved a->b at epoch 2", moved)
	}
	if got := p.View().Owner(id).Name; got != "b" {
		t.Fatalf("post-migration owner %q, want b", got)
	}

	// State through the proxy must be byte-identical to pre-migration.
	resp, after := doJSON(t, http.MethodGet, ph.URL+"/sessions/"+id+"/state", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("state after migrate: %s: %s", resp.Status, after)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("state changed across migration:\n  before: %s\n  after:  %s", before, after)
	}

	// The abandoned copy answers 307 with the destination base.
	resp, _ = doJSON(t, http.MethodGet, a.hs.URL+"/sessions/"+id+"/state", nil)
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("old pair after migrate: %s, want 307", resp.Status)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, b.hs.URL) {
		t.Errorf("old pair forwards to %q, want prefix %q", loc, b.hs.URL)
	}

	// New writes land on the destination.
	if resp, data = doJSON(t, http.MethodPost, ph.URL+"/sessions/"+id+"/ops", opsBody("k2", 1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ops after migrate: %s: %s", resp.Status, data)
	}
	var st server.StateResponse
	_, data = doJSON(t, http.MethodGet, b.hs.URL+"/sessions/"+id+"/state", nil)
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Operations != 2 {
		t.Errorf("destination sees %d operations, want 2", st.Operations)
	}

	stats := getStats(t, ph.URL)
	if stats.Migrations != 1 || stats.Epoch != 2 {
		t.Errorf("stats %+v, want migrations=1 epoch=2", stats)
	}
}

// TestProxyStaleTableHealsVia307 pins the self-healing path: a second
// proxy still holding the pre-migration table routes to the old pair,
// gets the 307, learns the override under a bumped epoch, and serves
// the request — the client never sees the redirect.
func TestProxyStaleTableHealsVia307(t *testing.T) {
	a, b := startPair(t, "a"), startPair(t, "b")
	tbl := twoPairTable(a, b)
	p1, ph1 := startProxy(t, tbl.Clone(), ProxyOptions{})

	id := idOwnedBy(t, p1.View(), "a")
	if resp, data := doJSON(t, http.MethodPost, ph1.URL+"/sessions",
		[]byte(fmt.Sprintf(`{"scenario":"simplified","id":%q}`, id))); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s: %s", resp.Status, data)
	}
	if resp, data := doJSON(t, http.MethodPost, ph1.URL+"/cluster/migrate",
		[]byte(fmt.Sprintf(`{"id":%q,"to":"b"}`, id))); resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate: %s: %s", resp.Status, data)
	}

	// The stale proxy was built before the migration.
	p2, ph2 := startProxy(t, tbl.Clone(), ProxyOptions{MintTag: "p1"})
	resp, data := doJSON(t, http.MethodGet, ph2.URL+"/sessions/"+id+"/state", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale proxy state: %s: %s", resp.Status, data)
	}
	if got := p2.View().Owner(id).Name; got != "b" {
		t.Errorf("stale proxy learned owner %q, want b", got)
	}
	st := getStats(t, ph2.URL)
	if st.Redirects < 1 {
		t.Errorf("stale proxy redirects %d, want >=1", st.Redirects)
	}
	if st.Epoch != 2 {
		t.Errorf("stale proxy epoch %d, want 2 after learning the override", st.Epoch)
	}
}

// TestProxyMigrateAdoptTransport pins that a pair publishing an Adopt
// address receives the image over the replica transport hook instead of
// HTTP POST /adopt.
func TestProxyMigrateAdoptTransport(t *testing.T) {
	a, b := startPair(t, "a"), startPair(t, "b")
	tbl := twoPairTable(a, b)
	tbl.Pairs[1].Adopt = "inproc:b"

	dialed := 0
	p, ph := startProxy(t, tbl, ProxyOptions{
		DialAdopt: func(addr string, img *wal.SessionImage) error {
			dialed++
			if addr != "inproc:b" {
				t.Errorf("dialAdopt addr %q, want inproc:b", addr)
			}
			return b.srv.AdoptSession(img)
		},
	})

	id := idOwnedBy(t, p.View(), "a")
	if resp, data := doJSON(t, http.MethodPost, ph.URL+"/sessions",
		[]byte(fmt.Sprintf(`{"scenario":"simplified","id":%q}`, id))); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s: %s", resp.Status, data)
	}
	if resp, data := doJSON(t, http.MethodPost, ph.URL+"/cluster/migrate",
		[]byte(fmt.Sprintf(`{"id":%q,"to":"b"}`, id))); resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate: %s: %s", resp.Status, data)
	}
	if dialed != 1 {
		t.Fatalf("dialAdopt called %d times, want 1", dialed)
	}
	if resp, data := doJSON(t, http.MethodGet, ph.URL+"/sessions/"+id+"/state", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("state after transport adopt: %s: %s", resp.Status, data)
	}
}

// TestProxyMigrateAbortOnAdoptFailure pins the failure path before
// anything durable changes hands: adoption fails, the source is
// unfrozen, and the session keeps serving on its original pair.
func TestProxyMigrateAbortOnAdoptFailure(t *testing.T) {
	a, b := startPair(t, "a"), startPair(t, "b")
	tbl := twoPairTable(a, b)
	tbl.Pairs[1].Adopt = "inproc:b"

	p, ph := startProxy(t, tbl, ProxyOptions{
		DialAdopt: func(addr string, img *wal.SessionImage) error {
			return fmt.Errorf("transport down")
		},
	})

	id := idOwnedBy(t, p.View(), "a")
	if resp, data := doJSON(t, http.MethodPost, ph.URL+"/sessions",
		[]byte(fmt.Sprintf(`{"scenario":"simplified","id":%q}`, id))); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s: %s", resp.Status, data)
	}
	resp, data := doJSON(t, http.MethodPost, ph.URL+"/cluster/migrate",
		[]byte(fmt.Sprintf(`{"id":%q,"to":"b"}`, id)))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("migrate with dead transport: %s, want 502: %s", resp.Status, data)
	}
	if got := p.View().Owner(id).Name; got != "a" {
		t.Errorf("failed migration flipped owner to %q", got)
	}
	// The abort unfroze the session: it must serve again on pair a.
	if resp, data := doJSON(t, http.MethodPost, ph.URL+"/sessions/"+id+"/ops", opsBody("k1", 2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ops after aborted migration: %s: %s", resp.Status, data)
	}
	if stats := getStats(t, ph.URL); stats.Migrations != 0 {
		t.Errorf("failed migration counted: %d", stats.Migrations)
	}
}

// TestProxyReadyz pins the readiness gate: ready while every pair
// resolves a leader, degraded (503) once a pair goes dark and its
// cached leader is invalidated (the first failed routed request does
// that in production; the test does it directly).
func TestProxyReadyz(t *testing.T) {
	a, b := startPair(t, "a"), startPair(t, "b")
	p, ph := startProxy(t, twoPairTable(a, b), ProxyOptions{})

	resp, data := doJSON(t, http.MethodGet, ph.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with both pairs up: %s: %s", resp.Status, data)
	}
	b.hs.Close()
	p.router.Invalidate("b")
	resp, data = doJSON(t, http.MethodGet, ph.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with pair b down: %s: %s, want 503", resp.Status, data)
	}
}

// TestProxySSEStreamsThroughProxy pins that the events stream — the one
// session route that is not request/response — flows through the proxy:
// the backlog of an already-applied batch must arrive as SSE frames.
func TestProxySSEStreamsThroughProxy(t *testing.T) {
	a, b := startPair(t, "a"), startPair(t, "b")
	_, ph := startProxy(t, twoPairTable(a, b), ProxyOptions{})

	if resp, data := doJSON(t, http.MethodPost, ph.URL+"/sessions", []byte(`{"scenario":"simplified","id":"csse1"}`)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s: %s", resp.Status, data)
	}
	if resp, data := doJSON(t, http.MethodPost, ph.URL+"/sessions/csse1/ops", opsBody("k1", 3)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ops: %s: %s", resp.Status, data)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ph.URL+"/sessions/csse1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events via proxy: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("events content type %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended without an SSE frame: %v", err)
		}
		if strings.HasPrefix(line, "event:") {
			return // a frame made it through the proxy
		}
	}
}
