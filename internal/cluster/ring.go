// Package cluster turns "a replicated pair" into "a cluster": a seeded
// consistent-hash ring places session ids onto pairs deterministically,
// a membership table with an epoch number carries the placement (plus
// per-session overrides for migrated sessions) to every router, and a
// thin HTTP proxy (cmd/adpmproxy) — or a client-side routing table
// (internal/loadgen.RouterTarget) — routes session-scoped requests,
// including SSE streams, to the owning pair's current leader.
//
// Placement is a pure function of (seed, vnodes, pair names, session
// id): every router that holds the same table routes identically, with
// no coordination. Membership changes move only the sessions owned by
// the affected ranges (consistent hashing's minimal-movement property,
// pinned by TestRingMinimalMovement), and cross-pair migration moves
// individual sessions under a new epoch with a durable forwarding
// tombstone on the old owner, so a router holding a stale table is
// answered with 307 rather than a wrong apply.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per pair when a table does
// not choose one. 128 points per pair keeps the balance bound across
// 2–16 pairs well under ±35% of the mean (TestRingBalance pins it).
const DefaultVNodes = 128

// hash64 hashes a key with the ring's seed: FNV-1a over the bytes,
// then a 64-bit avalanche finalizer (murmur3's fmix64) so consecutive
// ids ("c1", "c2", ...) spread over the whole ring. Deterministic
// across processes and platforms — placement is part of the protocol.
func hash64(seed uint64, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ seed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// point is one virtual node on the ring.
type point struct {
	h    uint64
	pair int // index into Ring.pairs
}

// Ring is a seeded consistent-hash ring over pair names. Immutable
// after construction; rebuild on membership change (NewRing is cheap —
// pairs×vnodes points sorted once).
type Ring struct {
	seed   uint64
	vnodes int
	pairs  []string
	points []point
}

// NewRing builds the ring for the given pair names. Names must be
// non-empty and unique; vnodes <= 0 means DefaultVNodes.
func NewRing(seed int64, vnodes int, pairs []string) (*Ring, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one pair")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(pairs))
	r := &Ring{
		seed:   uint64(seed),
		vnodes: vnodes,
		pairs:  append([]string(nil), pairs...),
		points: make([]point, 0, len(pairs)*vnodes),
	}
	for pi, name := range r.pairs {
		if name == "" {
			return nil, fmt.Errorf("cluster: empty pair name")
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate pair name %q", name)
		}
		seen[name] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				h:    hash64(r.seed, fmt.Sprintf("%s#%d", name, v)),
				pair: pi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Hash ties (vanishingly rare) break by pair name so placement
		// stays deterministic regardless of input order.
		return r.pairs[r.points[i].pair] < r.pairs[r.points[j].pair]
	})
	return r, nil
}

// Owner returns the pair owning key: the first virtual node clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	h := hash64(r.seed, key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.pairs[r.points[i].pair]
}

// Pairs returns the member pair names (construction order).
func (r *Ring) Pairs() []string { return append([]string(nil), r.pairs...) }
