package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterminism pins placement as a pure function of (seed,
// vnodes, pair names, id): two independently built rings route every id
// identically, and a different seed routes differently somewhere —
// placement is part of the protocol, so any drift here is a wire break.
func TestRingDeterminism(t *testing.T) {
	pairs := []string{"a", "b", "c"}
	r1, err := NewRing(42, 64, pairs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(42, 64, pairs)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := NewRing(43, 64, pairs)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("c%d", i)
		if r1.Owner(id) != r2.Owner(id) {
			t.Fatalf("same ring config, different owner for %s: %s vs %s", id, r1.Owner(id), r2.Owner(id))
		}
		if r1.Owner(id) != r3.Owner(id) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed 42 and seed 43 rings agree on all 2000 ids — the seed is not feeding the hash")
	}
}

// TestRingDeterminismInputOrder pins that pair declaration order does
// not change placement: routers loading the same membership in a
// different order must still agree.
func TestRingDeterminismInputOrder(t *testing.T) {
	r1, err := NewRing(7, 64, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(7, 64, []string{"d", "c", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("cx%d", i)
		if got, want := r2.Owner(id), r1.Owner(id); got != want {
			t.Fatalf("pair order changed placement of %s: %s vs %s", id, got, want)
		}
	}
}

// TestRingBalance pins the balance bound DefaultVNodes promises: across
// 2–16 pairs, every pair's share of a large id population stays within
// ±35% of the perfect mean.
func TestRingBalance(t *testing.T) {
	const ids = 20000
	for npairs := 2; npairs <= 16; npairs++ {
		pairs := make([]string, npairs)
		for i := range pairs {
			pairs[i] = fmt.Sprintf("pair-%d", i)
		}
		r, err := NewRing(1, DefaultVNodes, pairs)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for i := 0; i < ids; i++ {
			counts[r.Owner(fmt.Sprintf("clg-%d", i))]++
		}
		mean := float64(ids) / float64(npairs)
		for _, name := range pairs {
			share := float64(counts[name])
			if share < 0.65*mean || share > 1.35*mean {
				t.Errorf("%d pairs: %s owns %.0f ids, outside ±35%% of mean %.0f", npairs, name, share, mean)
			}
		}
	}
}

// TestRingMinimalMovement pins consistent hashing's point: adding or
// removing one pair moves only the sessions the changed ranges own.
// Adding a pair to n existing ones must move roughly 1/(n+1) of the
// ids — never more than twice that — and every moved id must land on
// the new pair (a join must never shuffle ids between old pairs).
// Removing it must restore the old placement exactly.
func TestRingMinimalMovement(t *testing.T) {
	const ids = 10000
	for npairs := 2; npairs <= 8; npairs++ {
		pairs := make([]string, npairs)
		for i := range pairs {
			pairs[i] = fmt.Sprintf("p%d", i)
		}
		before, err := NewRing(9, DefaultVNodes, pairs)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(9, DefaultVNodes, append(append([]string(nil), pairs...), "joiner"))
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i := 0; i < ids; i++ {
			id := fmt.Sprintf("cmv-%d", i)
			ob, oa := before.Owner(id), after.Owner(id)
			if ob == oa {
				continue
			}
			if oa != "joiner" {
				t.Fatalf("%d pairs: join moved %s from %s to %s — between surviving pairs", npairs, id, ob, oa)
			}
			moved++
		}
		ideal := float64(ids) / float64(npairs+1)
		if f := float64(moved); f > 2*ideal {
			t.Errorf("%d pairs: join moved %d ids, more than twice the ideal %.0f", npairs, moved, ideal)
		}
		if moved == 0 {
			t.Errorf("%d pairs: join moved nothing — the new pair owns no range", npairs)
		}
		// Leave = the inverse membership change: placement must return to
		// exactly the pre-join function.
		restored, err := NewRing(9, DefaultVNodes, pairs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ids; i++ {
			id := fmt.Sprintf("cmv-%d", i)
			if restored.Owner(id) != before.Owner(id) {
				t.Fatalf("%d pairs: leave did not restore placement of %s", npairs, id)
			}
		}
	}
}

// TestRingValidation pins constructor errors: empty membership, empty
// names, duplicates.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(1, 8, nil); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing(1, 8, []string{"a", ""}); err == nil {
		t.Error("empty pair name accepted")
	}
	if _, err := NewRing(1, 8, []string{"a", "a"}); err == nil {
		t.Error("duplicate pair name accepted")
	}
	r, err := NewRing(1, 0, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owner("canything"); got != "a" {
		t.Errorf("single-pair ring routed %q off-cluster", got)
	}
}
