package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Router resolves which base of a pair currently leads, by probing
// GET /readyz: the leader answers 200 "ready", a standby answers
// "following" (503), a dead process answers nothing. Resolutions are
// cached per pair and invalidated by the caller on any routing failure,
// so a promotion is followed on the next request without configuration
// changes. The HTTP client is injectable so tests route to in-process
// handlers hermetically.
type Router struct {
	// Client performs the probes (and nothing else); nil means a
	// default client with ProbeTimeout.
	client *http.Client

	mu     sync.Mutex
	leader map[string]string // pair name → base URL
}

// ProbeTimeout bounds one /readyz probe.
const ProbeTimeout = 2 * time.Second

// NewRouter builds a router probing through client (nil for a default
// 2s-timeout client).
func NewRouter(client *http.Client) *Router {
	if client == nil {
		client = &http.Client{Timeout: ProbeTimeout}
	}
	return &Router{client: client, leader: map[string]string{}}
}

// readyBody is the /readyz response shape the router cares about.
type readyBody struct {
	Status string `json:"status"`
}

// Leader returns the pair's current leader base, probing if the cache
// has no answer.
func (r *Router) Leader(p *Pair) (string, error) {
	r.mu.Lock()
	if base, ok := r.leader[p.Name]; ok {
		r.mu.Unlock()
		return base, nil
	}
	r.mu.Unlock()
	base, err := r.probe(p)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	r.leader[p.Name] = base
	r.mu.Unlock()
	return base, nil
}

// Invalidate forgets a pair's cached leader — call it after a
// transport error or a 5xx that suggests the leadership moved.
func (r *Router) Invalidate(pairName string) {
	r.mu.Lock()
	delete(r.leader, pairName)
	r.mu.Unlock()
}

// probe asks every base of the pair for /readyz and returns the one
// that reports ready. A pair mid-promotion may briefly have no ready
// base; callers retry on their own schedule.
func (r *Router) probe(p *Pair) (string, error) {
	var lastStatus string
	for _, base := range p.Bases {
		resp, err := r.client.Get(base + "/readyz")
		if err != nil {
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return base, nil
		}
		var rb readyBody
		if json.Unmarshal(body, &rb) == nil && rb.Status != "" {
			lastStatus = rb.Status
		}
	}
	if lastStatus != "" {
		return "", fmt.Errorf("cluster: pair %q has no ready leader (last status %q)", p.Name, lastStatus)
	}
	return "", fmt.Errorf("cluster: pair %q has no reachable base", p.Name)
}
