package cluster

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeBase serves /readyz like an adpmd node: 200 "ready" while
// leading, 503 "following" otherwise. The role flips atomically so a
// test can promote without restarting listeners.
func fakeBase(t *testing.T, leading bool) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	var lead atomic.Bool
	lead.Store(leading)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if lead.Load() {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"status":"ready"}`))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"status":"following"}`))
	}))
	t.Cleanup(hs.Close)
	return hs, &lead
}

// TestRouterFindsLeader pins the probe: of a pair's two bases the
// router resolves the one whose /readyz reports ready, regardless of
// declaration order.
func TestRouterFindsLeader(t *testing.T) {
	standby, _ := fakeBase(t, false)
	leader, _ := fakeBase(t, true)
	r := NewRouter(nil)
	pair := &Pair{Name: "a", Bases: []string{standby.URL, leader.URL}}
	base, err := r.Leader(pair)
	if err != nil {
		t.Fatal(err)
	}
	if base != leader.URL {
		t.Fatalf("router picked %q, want leader %q", base, leader.URL)
	}
}

// TestRouterFollowsPromotionAfterInvalidate pins the failover
// discipline: the resolution is cached until the caller invalidates it
// (which every routing failure does), and the next probe finds the
// newly promoted leader.
func TestRouterFollowsPromotionAfterInvalidate(t *testing.T) {
	b1, lead1 := fakeBase(t, true)
	b2, lead2 := fakeBase(t, false)
	r := NewRouter(nil)
	pair := &Pair{Name: "a", Bases: []string{b1.URL, b2.URL}}

	base, err := r.Leader(pair)
	if err != nil {
		t.Fatal(err)
	}
	if base != b1.URL {
		t.Fatalf("initial leader %q, want %q", base, b1.URL)
	}

	// Promote: b2 leads, b1 demotes. The cache still answers b1.
	lead1.Store(false)
	lead2.Store(true)
	if base, err = r.Leader(pair); err != nil || base != b1.URL {
		t.Fatalf("cached leader = %q, %v; want %q (cache must not re-probe)", base, err, b1.URL)
	}

	r.Invalidate("a")
	if base, err = r.Leader(pair); err != nil {
		t.Fatal(err)
	}
	if base != b2.URL {
		t.Fatalf("post-promotion leader %q, want %q", base, b2.URL)
	}
}

// TestRouterNoLeader pins the two failure shapes: a pair of standbys
// reports the last seen status, an unreachable pair reports that no
// base answered.
func TestRouterNoLeader(t *testing.T) {
	s1, _ := fakeBase(t, false)
	s2, _ := fakeBase(t, false)
	r := NewRouter(nil)
	_, err := r.Leader(&Pair{Name: "a", Bases: []string{s1.URL, s2.URL}})
	if err == nil || !strings.Contains(err.Error(), "following") {
		t.Fatalf("two standbys: err = %v, want mention of last status %q", err, "following")
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	_, err = r.Leader(&Pair{Name: "b", Bases: []string{dead.URL}})
	if err == nil || !strings.Contains(err.Error(), "no reachable base") {
		t.Fatalf("dead pair: err = %v, want no-reachable-base", err)
	}
}
