package cluster

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
)

// Pair is one replicated adpmd pair in the membership table.
type Pair struct {
	// Name identifies the pair on the ring; it must be stable across
	// epochs (placement hashes it).
	Name string `json:"name"`
	// Bases are the pair's client base URLs (leader and standby, in any
	// order); the router probes /readyz to find which one currently
	// leads, so promotions are followed without a table change.
	Bases []string `json:"bases"`
	// Adopt is the pair's replica-transport address accepting session
	// adoption ("adopt" frames) for migration; empty disables migrating
	// *into* this pair over the wire (in-process transfers still work).
	Adopt string `json:"adopt,omitempty"`
}

// Table is the cluster membership + placement table: what every router
// (proxy or client-side) must agree on. Its JSON encoding doubles as
// the adpmproxy config file format.
//
// Epoch orders tables: any change — membership, seed, or a migration
// override — bumps it, and a router holding epoch N must discard its
// copy when it sees N+1. The fencing rule for pairs rides the same
// number: a pair fenced at epoch N (its standby was promoted and the
// table re-published) rejoins as follower without operator
// intervention, because rejoining cannot contradict a table it has
// already seen supersede it.
type Table struct {
	Epoch  uint64 `json:"epoch"`
	Seed   int64  `json:"seed"`
	VNodes int    `json:"vnodes,omitempty"`
	Pairs  []Pair `json:"pairs"`
	// Overrides pins individual migrated sessions to a pair, taking
	// precedence over ring placement. A migration adds one entry (and
	// bumps Epoch); rebalancing that finishes moving every session of a
	// range may compact entries away.
	Overrides map[string]string `json:"overrides,omitempty"`
}

// Validate checks the table invariants and that the ring builds.
func (t *Table) Validate() error {
	names := make(map[string]bool, len(t.Pairs))
	for i := range t.Pairs {
		p := &t.Pairs[i]
		if p.Name == "" {
			return fmt.Errorf("cluster: pair %d has no name", i)
		}
		if names[p.Name] {
			return fmt.Errorf("cluster: duplicate pair name %q", p.Name)
		}
		names[p.Name] = true
		if len(p.Bases) == 0 {
			return fmt.Errorf("cluster: pair %q has no bases", p.Name)
		}
	}
	for id, pair := range t.Overrides {
		if !names[pair] {
			return fmt.Errorf("cluster: override %q names unknown pair %q", id, pair)
		}
	}
	_, err := t.Ring()
	return err
}

// Ring builds the table's placement ring.
func (t *Table) Ring() (*Ring, error) {
	names := make([]string, len(t.Pairs))
	for i := range t.Pairs {
		names[i] = t.Pairs[i].Name
	}
	return NewRing(t.Seed, t.VNodes, names)
}

// Pair returns the named pair, or nil.
func (t *Table) Pair(name string) *Pair {
	for i := range t.Pairs {
		if t.Pairs[i].Name == name {
			return &t.Pairs[i]
		}
	}
	return nil
}

// PairForBase maps a base URL back to its pair (routers use it to
// interpret 307 Locations); nil when no pair lists it.
func (t *Table) PairForBase(base string) *Pair {
	for i := range t.Pairs {
		for _, b := range t.Pairs[i].Bases {
			if b == base {
				return &t.Pairs[i]
			}
		}
	}
	return nil
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	cp := *t
	cp.Pairs = append([]Pair(nil), t.Pairs...)
	for i := range cp.Pairs {
		cp.Pairs[i].Bases = append([]string(nil), t.Pairs[i].Bases...)
	}
	if t.Overrides != nil {
		cp.Overrides = make(map[string]string, len(t.Overrides))
		for k, v := range t.Overrides {
			cp.Overrides[k] = v
		}
	}
	return &cp
}

// ParseTable decodes and validates a table from its JSON form (the
// adpmproxy config file).
func ParseTable(data []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("cluster: parsing table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// ParsePairsSpec builds a table from the command-line shorthand shared
// by adpmproxy and adpmload: 'name=base[,base2][@adoptAddr]' entries
// joined by ';'.
func ParsePairsSpec(s string, seed int64, vnodes int) (*Table, error) {
	t := &Table{Epoch: 1, Seed: seed, VNodes: vnodes}
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: pair entry %q: want name=base[,base2][@adopt]", entry)
		}
		var adopt string
		if i := strings.LastIndex(rest, "@"); i >= 0 {
			rest, adopt = rest[:i], rest[i+1:]
		}
		var bases []string
		for _, b := range strings.Split(rest, ",") {
			if b = strings.TrimSpace(b); b != "" {
				bases = append(bases, strings.TrimSuffix(b, "/"))
			}
		}
		t.Pairs = append(t.Pairs, Pair{Name: strings.TrimSpace(name), Bases: bases, Adopt: adopt})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// View is a Table plus its compiled ring: the unit a router swaps
// atomically when the epoch advances.
type View struct {
	Table *Table
	ring  *Ring
}

// NewView compiles a validated table.
func NewView(t *Table) (*View, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	ring, err := t.Ring()
	if err != nil {
		return nil, err
	}
	return &View{Table: t, ring: ring}, nil
}

// Owner resolves a session id to its owning pair: migration overrides
// first, ring placement otherwise.
func (v *View) Owner(id string) *Pair {
	if pair, ok := v.Table.Overrides[id]; ok {
		if p := v.Table.Pair(pair); p != nil {
			return p
		}
	}
	return v.Table.Pair(v.ring.Owner(id))
}

// Minter mints externally-unique session ids for one router: "c" +
// the router's tag + "x" + a counter. Two routers with distinct tags
// can mint concurrently without collision; a single seeded run mints
// deterministically.
type Minter struct {
	tag string
	n   atomic.Uint64
}

// NewMinter creates a minter with the given tag (letters/digits/"-").
func NewMinter(tag string) *Minter { return &Minter{tag: tag} }

// Mint returns the next session id.
func (m *Minter) Mint() string {
	return fmt.Sprintf("c%sx%d", m.tag, m.n.Add(1))
}
