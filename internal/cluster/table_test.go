package cluster

import (
	"encoding/json"
	"testing"
)

// TestParsePairsSpec pins the command-line shorthand shared by
// adpmproxy and adpmload: names, multiple bases, optional adopt
// addresses, trailing-slash trimming.
func TestParsePairsSpec(t *testing.T) {
	tbl, err := ParsePairsSpec("a=http://h1:8080/,http://h2:8080@h1:9090; b=http://h3:8080", 7, 32)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Epoch != 1 || tbl.Seed != 7 || tbl.VNodes != 32 {
		t.Fatalf("table header %+v, want epoch=1 seed=7 vnodes=32", tbl)
	}
	if len(tbl.Pairs) != 2 {
		t.Fatalf("got %d pairs, want 2", len(tbl.Pairs))
	}
	a := tbl.Pair("a")
	if a == nil || len(a.Bases) != 2 || a.Bases[0] != "http://h1:8080" || a.Bases[1] != "http://h2:8080" {
		t.Fatalf("pair a = %+v (trailing slash must be trimmed)", a)
	}
	if a.Adopt != "h1:9090" {
		t.Fatalf("pair a adopt = %q, want h1:9090", a.Adopt)
	}
	b := tbl.Pair("b")
	if b == nil || b.Adopt != "" || len(b.Bases) != 1 {
		t.Fatalf("pair b = %+v", b)
	}

	for _, bad := range []string{
		"noequals",                      // missing name=...
		"a=http://h1;a=http://h2",       // duplicate name
		"a=",                            // no bases
		"a=http://h1;b=http://h1,,,;c=", // c has no bases
	} {
		if _, err := ParsePairsSpec(bad, 1, 0); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestTableValidate pins the structural invariants and the override
// referential check.
func TestTableValidate(t *testing.T) {
	ok := &Table{Epoch: 1, Seed: 1, Pairs: []Pair{{Name: "a", Bases: []string{"http://x"}}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ok.Clone()
	bad.Overrides = map[string]string{"c1": "ghost"}
	if err := bad.Validate(); err == nil {
		t.Error("override naming an unknown pair accepted")
	}
	bad = ok.Clone()
	bad.Pairs = append(bad.Pairs, Pair{Name: "a", Bases: []string{"http://y"}})
	if err := bad.Validate(); err == nil {
		t.Error("duplicate pair name accepted")
	}
	bad = ok.Clone()
	bad.Pairs[0].Bases = nil
	if err := bad.Validate(); err == nil {
		t.Error("pair without bases accepted")
	}
}

// TestParseTableRoundTrip pins that the JSON config format round-trips
// through ParseTable (the adpmproxy config file).
func TestParseTableRoundTrip(t *testing.T) {
	in := &Table{
		Epoch:     3,
		Seed:      11,
		VNodes:    64,
		Pairs:     []Pair{{Name: "a", Bases: []string{"http://x"}, Adopt: "x:9"}, {Name: "b", Bases: []string{"http://y"}}},
		Overrides: map[string]string{"cmoved1": "b"},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseTable(data)
	if err != nil {
		t.Fatal(err)
	}
	back, _ := json.Marshal(out)
	if string(back) != string(data) {
		t.Fatalf("round trip changed the table:\n in: %s\nout: %s", data, back)
	}
}

// TestViewOwnerOverride pins precedence: a migration override beats
// ring placement, and removing it restores the ring's answer.
func TestViewOwnerOverride(t *testing.T) {
	tbl := &Table{Epoch: 1, Seed: 1, Pairs: []Pair{
		{Name: "a", Bases: []string{"http://x"}},
		{Name: "b", Bases: []string{"http://y"}},
	}}
	v, err := NewView(tbl)
	if err != nil {
		t.Fatal(err)
	}
	id := ""
	for i := 0; i < 1000 && id == ""; i++ {
		probe := "cov" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if v.Owner(probe).Name == "a" {
			id = probe
		}
	}
	if id == "" {
		t.Fatal("no probe id lands on pair a")
	}
	moved := tbl.Clone()
	moved.Overrides = map[string]string{id: "b"}
	moved.Epoch++
	v2, err := NewView(moved)
	if err != nil {
		t.Fatal(err)
	}
	if got := v2.Owner(id).Name; got != "b" {
		t.Fatalf("override ignored: owner %q, want b", got)
	}
	if got := v.Owner(id).Name; got != "a" {
		t.Fatalf("original view mutated: owner %q, want a", got)
	}
}

// TestMinter pins the id shape ("c<tag>x<n>") and that distinct tags
// cannot collide.
func TestMinter(t *testing.T) {
	m1, m2 := NewMinter("p0"), NewMinter("p1")
	if got := m1.Mint(); got != "cp0x1" {
		t.Fatalf("first mint %q, want cp0x1", got)
	}
	if got := m1.Mint(); got != "cp0x2" {
		t.Fatalf("second mint %q, want cp0x2", got)
	}
	if a, b := m1.Mint(), m2.Mint(); a == b {
		t.Fatalf("distinct tags collided on %q", a)
	}
}

// TestPairForBase pins 307-Location interpretation: any of a pair's
// bases maps back to it, unknown bases map to nil.
func TestPairForBase(t *testing.T) {
	tbl := &Table{Epoch: 1, Seed: 1, Pairs: []Pair{
		{Name: "a", Bases: []string{"http://x:1", "http://x:2"}},
		{Name: "b", Bases: []string{"http://y:1"}},
	}}
	if p := tbl.PairForBase("http://x:2"); p == nil || p.Name != "a" {
		t.Fatalf("PairForBase(x:2) = %v, want a", p)
	}
	if p := tbl.PairForBase("http://z:1"); p != nil {
		t.Fatalf("unknown base mapped to %q", p.Name)
	}
}
