package constraint

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/interval"
)

func buildCloneFixture(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	for _, p := range []string{"a", "b", "c"} {
		if err := n.AddProperty(NewProperty(p, domain.NewInterval(0, 100))); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []*Constraint{
		MustParseConstraint("ab", "a + b <= 60"),
		MustParseConstraint("bc", "b <= c"),
	} {
		if err := n.AddConstraint(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.BindReal("a", 50); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCloneIndependence: mutating a clone's bindings, feasible sets,
// and statuses must not leak into the original, and vice versa.
func TestCloneIndependence(t *testing.T) {
	n := buildCloneFixture(t)
	n.Propagate(PropagateOptions{})
	c := n.Clone()

	if err := c.BindReal("b", 5); err != nil {
		t.Fatal(err)
	}
	c.Property("c").SetFeasible(domain.NewInterval(1, 2))
	c.SetStatus("ab", Violated)
	c.AddEvals(100)

	if n.Property("b").IsBound() {
		t.Error("binding leaked from clone to original")
	}
	if iv, _ := n.Property("c").Feasible().Interval(); iv.ApproxEqual(interval.New(1, 2), 0) {
		t.Error("feasible leaked from clone to original")
	}
	if n.Status("ab") == Violated {
		t.Error("status leaked from clone to original")
	}
	if n.EvalCount() == c.EvalCount() {
		t.Error("eval counter shared between clone and original")
	}
}

// TestCloneIntoFastPathReuse: repeated CloneInto onto the same scratch
// must track the source's current state each time.
func TestCloneIntoFastPathReuse(t *testing.T) {
	n := buildCloneFixture(t)
	scratch := &Network{}
	n.CloneInto(scratch)

	// Mutate the source, re-clone, and verify the scratch follows.
	if err := n.BindReal("b", 7); err != nil {
		t.Fatal(err)
	}
	n.Property("c").SetFeasible(domain.NewInterval(3, 4))
	n.SetStatus("bc", Satisfied)
	n.AddEvals(5)
	n.CloneInto(scratch)

	if v, ok := scratch.Property("b").Value(); !ok || v.Num() != 7 {
		t.Errorf("scratch binding = %v (ok=%v), want 7", v, ok)
	}
	if iv, _ := scratch.Property("c").Feasible().Interval(); !iv.ApproxEqual(interval.New(3, 4), 0) {
		t.Errorf("scratch feasible = %v, want [3,4]", iv)
	}
	if scratch.Status("bc") != Satisfied {
		t.Error("scratch status not refreshed")
	}
	if scratch.EvalCount() != n.EvalCount() {
		t.Error("scratch eval counter not refreshed")
	}

	// Unbinding in the source must clear the scratch's binding too.
	n.Unbind("b")
	n.CloneInto(scratch)
	if scratch.Property("b").IsBound() {
		t.Error("stale binding survived CloneInto")
	}
}

// TestCloneIntoAfterStructureChange: adding properties or constraints
// to the source after a clone must force the rebuild path and carry the
// new structure into the scratch.
func TestCloneIntoAfterStructureChange(t *testing.T) {
	n := buildCloneFixture(t)
	scratch := &Network{}
	n.CloneInto(scratch)

	if err := n.AddProperty(NewProperty("d", domain.NewInterval(0, 1))); err != nil {
		t.Fatal(err)
	}
	if err := n.AddConstraint(MustParseConstraint("cd", "c + d <= 50")); err != nil {
		t.Fatal(err)
	}
	n.CloneInto(scratch)
	if scratch.Property("d") == nil {
		t.Fatal("scratch missing property added after first clone")
	}
	if scratch.Constraint("cd") == nil {
		t.Fatal("scratch missing constraint added after first clone")
	}
	if got := scratch.Beta("c"); got != 2 {
		t.Errorf("scratch Beta(c) = %d, want 2", got)
	}
	// The rebuilt scratch must propagate correctly.
	scratch.Propagate(PropagateOptions{})
}

// TestCloneCopyOnWriteStructure: a structural add on the clone must not
// alter the original's structure (and vice versa) even though the two
// share structure tables copy-on-write.
func TestCloneCopyOnWriteStructure(t *testing.T) {
	n := buildCloneFixture(t)
	c := n.Clone()

	if err := c.AddProperty(NewProperty("x", domain.NewInterval(0, 1))); err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(MustParseConstraint("xa", "x <= a")); err != nil {
		t.Fatal(err)
	}
	if n.Property("x") != nil || n.Constraint("xa") != nil {
		t.Fatal("structural add on clone leaked into original")
	}
	if n.Beta("a") != 1 {
		t.Errorf("original Beta(a) = %d, want 1", n.Beta("a"))
	}
	if c.Beta("a") != 2 {
		t.Errorf("clone Beta(a) = %d, want 2", c.Beta("a"))
	}

	// And the original can still add structure without disturbing the
	// (now independent) clone.
	if err := n.AddConstraint(MustParseConstraint("ac", "a <= c")); err != nil {
		t.Fatal(err)
	}
	if c.Constraint("ac") != nil {
		t.Error("structural add on original leaked into clone")
	}
	n.Propagate(PropagateOptions{})
	c.Propagate(PropagateOptions{})
}
