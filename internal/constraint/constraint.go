package constraint

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/expr"
	"repro/internal/interval"
)

// Relation is the comparison operator of a constraint.
type Relation int

// Supported relations.
const (
	LE Relation = iota // <=
	LT                 // <
	GE                 // >=
	GT                 // >
	EQ                 // ==
	NE                 // !=
)

// String returns the relation's source form.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case LT:
		return "<"
	case GE:
		return ">="
	case GT:
		return ">"
	case EQ:
		return "=="
	case NE:
		return "!="
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// ParseRelation converts a source token to a Relation.
func ParseRelation(s string) (Relation, error) {
	switch s {
	case "<=":
		return LE, nil
	case "<":
		return LT, nil
	case ">=":
		return GE, nil
	case ">":
		return GT, nil
	case "==", "=":
		return EQ, nil
	case "!=":
		return NE, nil
	}
	return 0, fmt.Errorf("constraint: unknown relation %q", s)
}

// Status is the tri-state constraint status s(c_i) of paper §2.1:
// satisfied when the relation holds for every combination of current
// argument values, violated when it holds for none, and consistent
// (status "Unknown" in the paper) otherwise.
type Status int

// Status values.
const (
	Consistent Status = iota // some combinations satisfy, some may not
	Satisfied                // holds for all current combinations
	Violated                 // holds for no current combination
)

// String names the status as the paper's UI does (Fig. 4).
func (s Status) String() string {
	switch s {
	case Satisfied:
		return "Satisfied"
	case Violated:
		return "Violated"
	case Consistent:
		return "Consistent"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Constraint is a design constraint c_i: a relation over a set of
// argument properties (paper eq. 1), stated as lhs REL rhs where both
// sides are arithmetic expressions over property names.
type Constraint struct {
	// Name uniquely identifies the constraint within a network.
	Name string
	// Lhs and Rhs are the two sides of the relation.
	Lhs, Rhs expr.Node
	// Rel is the comparison relating Lhs to Rhs.
	Rel Relation
	// MonoOverride optionally declares, per property, the direction of
	// value change that helps satisfy this constraint (+1 increase, -1
	// decrease), as DDDL's monotonicity declarations do (§3.1.2). When a
	// property has no override the direction is derived from the sign of
	// the symbolic derivative.
	MonoOverride map[string]int

	// diff is the canonical expression Lhs - Rhs, cached at build time.
	diff expr.Node
	// args is the sorted list of distinct argument property names.
	args []string
	// derivs caches ∂(Lhs-Rhs)/∂arg per argument, computed once at build
	// time. A nil entry means the derivative is not expressible
	// (monotonicity unknown). The map is immutable after construction, so
	// constraints stay safe to share across cloned networks and
	// goroutines. MonotoneSign interval-evaluates these cached trees
	// instead of re-deriving them per call — view building queries the
	// monotone sign of every constraint on every property per operation.
	derivs map[string]expr.Node
}

// New builds a constraint lhs rel rhs.
func New(name string, lhs expr.Node, rel Relation, rhs expr.Node) *Constraint {
	c := &Constraint{Name: name, Lhs: lhs, Rhs: rhs, Rel: rel}
	c.diff = &expr.Binary{Op: '-', X: lhs, Y: rhs}
	c.args = expr.Vars(c.diff)
	c.derivs = make(map[string]expr.Node, len(c.args))
	for _, a := range c.args {
		c.derivs[a] = expr.Diff(c.diff, a)
	}
	return c
}

// ParseConstraint parses "lhs REL rhs" source text, e.g.
// "Pf + Ps <= PM".
func ParseConstraint(name, src string) (*Constraint, error) {
	relPos, relTok := -1, ""
	for _, tok := range []string{"<=", ">=", "==", "!=", "<", ">", "="} {
		if i := strings.Index(src, tok); i >= 0 {
			relPos, relTok = i, tok
			break
		}
	}
	if relPos < 0 {
		return nil, fmt.Errorf("constraint %s: no relation operator in %q", name, src)
	}
	lhs, err := expr.Parse(src[:relPos])
	if err != nil {
		return nil, fmt.Errorf("constraint %s: lhs: %w", name, err)
	}
	rhs, err := expr.Parse(src[relPos+len(relTok):])
	if err != nil {
		return nil, fmt.Errorf("constraint %s: rhs: %w", name, err)
	}
	rel, err := ParseRelation(relTok)
	if err != nil {
		return nil, err
	}
	return New(name, lhs, rel, rhs), nil
}

// MustParseConstraint is ParseConstraint panicking on error, for
// statically known scenario definitions.
func MustParseConstraint(name, src string) *Constraint {
	c, err := ParseConstraint(name, src)
	if err != nil {
		panic(err)
	}
	return c
}

// Args returns the sorted distinct argument property names (the paper's
// a_i vector).
func (c *Constraint) Args() []string { return c.args }

// Arity returns the number of distinct argument properties.
func (c *Constraint) Arity() int { return len(c.args) }

// HasArg reports whether the named property is an argument of c.
func (c *Constraint) HasArg(name string) bool {
	for _, a := range c.args {
		if a == name {
			return true
		}
	}
	return false
}

// String renders the constraint as source text.
func (c *Constraint) String() string {
	return fmt.Sprintf("%s: %s %s %s", c.Name, c.Lhs, c.Rel, c.Rhs)
}

// StatusOver computes the constraint's tri-state status from an interval
// enclosure of its arguments' current value sets. The decision is
// conservative: Satisfied and Violated are only reported when certain.
func (c *Constraint) StatusOver(env expr.IntervalEnv) Status {
	e := expr.EvalInterval(c.diff, env)
	return statusFromDiff(e, c.Rel)
}

func statusFromDiff(e interval.Interval, rel Relation) Status {
	if e.IsEmpty() {
		// Some argument has an empty value set: no combination exists,
		// so the relation holds for none of them.
		return Violated
	}
	switch rel {
	case LE:
		if e.Hi <= 0 {
			return Satisfied
		}
		if e.Lo > 0 {
			return Violated
		}
	case LT:
		if e.Hi < 0 {
			return Satisfied
		}
		if e.Lo >= 0 {
			return Violated
		}
	case GE:
		if e.Lo >= 0 {
			return Satisfied
		}
		if e.Hi < 0 {
			return Violated
		}
	case GT:
		if e.Lo > 0 {
			return Satisfied
		}
		if e.Hi <= 0 {
			return Violated
		}
	case EQ:
		if e.Lo >= -eqTol && e.Hi <= eqTol {
			return Satisfied
		}
		if e.Lo > eqTol || e.Hi < -eqTol {
			return Violated
		}
	case NE:
		if e.Lo > eqTol || e.Hi < -eqTol {
			return Satisfied
		}
		if e.Lo >= -eqTol && e.Hi <= eqTol {
			return Violated
		}
	}
	return Consistent
}

// eqTol is the absolute tolerance for equality relations. Derived
// performance properties are bound to tool-computed values and then
// checked against their defining equalities; without a tolerance, a
// single ulp of floating-point disagreement would read as a violation.
const eqTol = 1e-9

// HoldsAt evaluates the relation at a full point assignment. The second
// result is false when some argument is unbound in env.
func (c *Constraint) HoldsAt(env expr.FloatEnv) (bool, bool) {
	l, err := expr.Eval(c.Lhs, env)
	if err != nil {
		return false, false
	}
	r, err := expr.Eval(c.Rhs, env)
	if err != nil {
		return false, false
	}
	switch c.Rel {
	case LE:
		return l <= r, true
	case LT:
		return l < r, true
	case GE:
		return l >= r, true
	case GT:
		return l > r, true
	case EQ:
		return math.Abs(l-r) <= eqTol, true
	case NE:
		return math.Abs(l-r) > eqTol, true
	}
	return false, true
}

// requiredDiff returns the interval the expression Lhs-Rhs must lie in
// for the constraint to be satisfiable, used by propagation. NE yields
// no restriction.
func (c *Constraint) requiredDiff() (interval.Interval, bool) {
	switch c.Rel {
	case LE, LT:
		return interval.New(math.Inf(-1), 0), true
	case GE, GT:
		return interval.New(0, math.Inf(1)), true
	case EQ:
		// The equality tolerance keeps tool-computed derived values from
		// reading as inconsistent due to floating-point disagreement.
		return interval.New(-eqTol, eqTol), true
	default:
		return interval.Interval{}, false
	}
}

// Narrow performs one HC4 revise of this constraint against box,
// shrinking argument domains to values that can still satisfy it.
func (c *Constraint) Narrow(box expr.Box) expr.NarrowResult {
	want, ok := c.requiredDiff()
	if !ok {
		return expr.NarrowResult{}
	}
	return expr.Narrow(c.diff, want, box)
}

// MonotoneSign reports the sign of ∂(Lhs-Rhs)/∂prop over env: +1 when
// increasing prop increases the difference, -1 when it decreases it, 0
// when unknown. Explicit MonoOverride entries are interpreted as "the
// direction that helps satisfy" and converted to a difference sign.
func (c *Constraint) MonotoneSign(prop string, env expr.IntervalEnv) int {
	if dir, ok := c.MonoOverride[prop]; ok {
		// dir is the helpful direction for satisfaction. For <=-like
		// relations satisfaction means pushing the difference down, so a
		// helpful increase (+1) implies the difference decreases (-1).
		switch c.Rel {
		case LE, LT:
			return -dir
		case GE, GT:
			return dir
		default:
			return 0
		}
	}
	d, isArg := c.derivs[prop]
	if !isArg {
		// Not an argument (or a constraint built without New): fall back
		// to the generic path, which handles both cases.
		return expr.MonotoneSign(c.diff, prop, env)
	}
	if d == nil {
		return 0
	}
	iv := expr.EvalInterval(d, env)
	if iv.IsEmpty() {
		return 0
	}
	if iv.Lo >= 0 {
		return +1
	}
	if iv.Hi <= 0 {
		return -1
	}
	return 0
}

// FixDirection returns the direction (+1 or -1) in which moving prop's
// value is expected to help satisfy the constraint, or 0 when unknown.
// For inequality relations the direction follows from monotonicity; for
// equalities it additionally depends on the current sign of Lhs-Rhs,
// supplied through env's midpoint.
func (c *Constraint) FixDirection(prop string, env expr.IntervalEnv) int {
	sign := c.MonotoneSign(prop, env)
	if sign == 0 {
		return 0
	}
	switch c.Rel {
	case LE, LT:
		// Need the difference to go down.
		return -sign
	case GE, GT:
		return sign
	case EQ:
		e := expr.EvalInterval(c.diff, env)
		if e.IsEmpty() {
			return 0
		}
		m := e.Mid()
		switch {
		case m > 0:
			return -sign
		case m < 0:
			return sign
		default:
			return 0
		}
	}
	return 0
}

// Margin returns how far the constraint currently is from its boundary:
// negative values mean satisfied with that much slack, positive values
// mean violated by that much (for EQ it is |Lhs-Rhs|). It evaluates the
// midpoint of the interval enclosure, giving designers the trade-off
// margins mentioned in §1 ("use of trade-offs produced by constraint
// margins").
func (c *Constraint) Margin(env expr.IntervalEnv) float64 {
	e := expr.EvalInterval(c.diff, env)
	if e.IsEmpty() {
		return math.Inf(1)
	}
	m := e.Mid()
	switch c.Rel {
	case LE, LT:
		return m
	case GE, GT:
		return -m
	case EQ:
		return math.Abs(m)
	case NE:
		return -math.Abs(m)
	}
	return 0
}
