package constraint

import (
	"math"
	"strings"
	"testing"

	"repro/internal/domain"
	"repro/internal/expr"
	"repro/internal/interval"
)

func TestParseRelation(t *testing.T) {
	good := map[string]Relation{
		"<=": LE, "<": LT, ">=": GE, ">": GT, "==": EQ, "=": EQ, "!=": NE,
	}
	for s, want := range good {
		got, err := ParseRelation(s)
		if err != nil || got != want {
			t.Errorf("ParseRelation(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseRelation("<>"); err == nil {
		t.Error("ParseRelation(<>) should fail")
	}
}

func TestParseConstraint(t *testing.T) {
	c, err := ParseConstraint("power", "Pf + Ps <= PM")
	if err != nil {
		t.Fatal(err)
	}
	if c.Rel != LE {
		t.Errorf("Rel = %v", c.Rel)
	}
	args := c.Args()
	if len(args) != 3 || args[0] != "PM" || args[1] != "Pf" || args[2] != "Ps" {
		t.Errorf("Args = %v", args)
	}
	if got := c.String(); got != "power: Pf + Ps <= PM" {
		t.Errorf("String = %q", got)
	}
	if c.Arity() != 3 {
		t.Errorf("Arity = %d", c.Arity())
	}

	if _, err := ParseConstraint("bad", "x + y"); err == nil {
		t.Error("constraint without relation should fail")
	}
	if _, err := ParseConstraint("bad", "x + <= y"); err == nil {
		t.Error("malformed lhs should fail")
	}
	if _, err := ParseConstraint("bad", "x <= y +"); err == nil {
		t.Error("malformed rhs should fail")
	}
}

func TestMustParseConstraintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseConstraint on bad input did not panic")
		}
	}()
	MustParseConstraint("bad", "no relation here")
}

func TestStatusOver(t *testing.T) {
	env := expr.MapIntervalEnv{}
	cases := []struct {
		src  string
		x    interval.Interval
		want Status
	}{
		{"x <= 10", interval.New(0, 5), Satisfied},
		{"x <= 10", interval.New(11, 20), Violated},
		{"x <= 10", interval.New(5, 15), Consistent},
		{"x <= 10", interval.New(0, 10), Satisfied}, // boundary counts
		{"x < 10", interval.New(0, 10), Consistent},
		{"x < 10", interval.New(10, 12), Violated},
		{"x >= 3", interval.New(3, 9), Satisfied},
		{"x >= 3", interval.New(0, 1), Violated},
		{"x > 3", interval.New(0, 3), Violated},
		{"x == 5", interval.Point(5), Satisfied},
		{"x == 5", interval.New(6, 8), Violated},
		{"x == 5", interval.New(4, 6), Consistent},
		{"x != 5", interval.New(6, 8), Satisfied},
		{"x != 5", interval.Point(5), Violated},
		{"x != 5", interval.New(4, 6), Consistent},
	}
	for _, c := range cases {
		con := MustParseConstraint("t", c.src)
		env["x"] = c.x
		if got := con.StatusOver(env); got != c.want {
			t.Errorf("%q with x=%v: status %v, want %v", c.src, c.x, got, c.want)
		}
	}
}

func TestStatusEmptyDomainIsViolated(t *testing.T) {
	con := MustParseConstraint("t", "x <= 10")
	env := expr.MapIntervalEnv{"x": interval.Empty()}
	if got := con.StatusOver(env); got != Violated {
		t.Errorf("status over empty domain = %v, want Violated", got)
	}
}

func TestHoldsAt(t *testing.T) {
	con := MustParseConstraint("t", "x + y <= 10")
	ok, known := con.HoldsAt(expr.MapEnv{"x": 3, "y": 4})
	if !known || !ok {
		t.Errorf("3+4<=10: ok=%v known=%v", ok, known)
	}
	ok, known = con.HoldsAt(expr.MapEnv{"x": 9, "y": 4})
	if !known || ok {
		t.Errorf("9+4<=10: ok=%v known=%v", ok, known)
	}
	_, known = con.HoldsAt(expr.MapEnv{"x": 9})
	if known {
		t.Error("missing y should be unknown")
	}
}

func TestFixDirection(t *testing.T) {
	env := expr.MapIntervalEnv{
		"x": interval.New(1, 5),
		"y": interval.New(1, 5),
	}
	// x <= 10: increasing x raises diff, so fixing means decreasing.
	c := MustParseConstraint("t1", "x <= 10")
	if d := c.FixDirection("x", env); d != -1 {
		t.Errorf("x<=10 dir = %d, want -1", d)
	}
	// x >= 3: fix by increasing x.
	c = MustParseConstraint("t2", "x >= 3")
	if d := c.FixDirection("x", env); d != +1 {
		t.Errorf("x>=3 dir = %d, want +1", d)
	}
	// -x <= 10: fix by increasing x.
	c = MustParseConstraint("t3", "-x <= 10")
	if d := c.FixDirection("x", env); d != +1 {
		t.Errorf("-x<=10 dir = %d, want +1", d)
	}
	// x * y <= 10 with y in [1,5]: decreasing x helps.
	c = MustParseConstraint("t4", "x * y <= 10")
	if d := c.FixDirection("x", env); d != -1 {
		t.Errorf("x*y<=10 dir = %d, want -1", d)
	}
	// Equality: x == 3 with x in [4,6] (diff positive) → decrease.
	c = MustParseConstraint("t5", "x == 3")
	env2 := expr.MapIntervalEnv{"x": interval.New(4, 6)}
	if d := c.FixDirection("x", env2); d != -1 {
		t.Errorf("x==3 above dir = %d, want -1", d)
	}
	env2["x"] = interval.New(0, 2)
	if d := c.FixDirection("x", env2); d != +1 {
		t.Errorf("x==3 below dir = %d, want +1", d)
	}
	// min(x,y) <= 5: monotonicity unknown → 0.
	c = MustParseConstraint("t6", "min(x, y) <= 5")
	if d := c.FixDirection("x", env); d != 0 {
		t.Errorf("min dir = %d, want 0", d)
	}
}

func TestMonoOverride(t *testing.T) {
	// Paper §3.1.2: "filter loss constraints are monotonic decreasing in
	// the resonator length": declaring the helpful direction explicitly.
	c := MustParseConstraint("loss", "min(L, W) <= Budget")
	c.MonoOverride = map[string]int{"L": -1} // decreasing L helps satisfy
	env := expr.MapIntervalEnv{}
	if d := c.FixDirection("L", env); d != -1 {
		t.Errorf("override dir = %d, want -1", d)
	}
	// Without override min() gives no direction.
	if d := c.FixDirection("W", env); d != 0 {
		t.Errorf("W dir = %d, want 0", d)
	}
	// GE relation: helpful direction passes through directly.
	c2 := MustParseConstraint("g", "min(L, W) >= Floor")
	c2.MonoOverride = map[string]int{"L": +1}
	if d := c2.FixDirection("L", env); d != +1 {
		t.Errorf("GE override dir = %d, want +1", d)
	}
}

func TestMargin(t *testing.T) {
	env := expr.MapIntervalEnv{"x": interval.Point(7)}
	c := MustParseConstraint("m", "x <= 10")
	if got := c.Margin(env); got != -3 {
		t.Errorf("margin = %v, want -3 (3 of slack)", got)
	}
	env["x"] = interval.Point(12)
	if got := c.Margin(env); got != 2 {
		t.Errorf("margin = %v, want 2 (violated by 2)", got)
	}
	c = MustParseConstraint("m2", "x >= 10")
	if got := c.Margin(env); got != -2 {
		t.Errorf(">= margin = %v, want -2", got)
	}
	c = MustParseConstraint("m3", "x == 10")
	if got := c.Margin(env); got != 2 {
		t.Errorf("== margin = %v, want 2", got)
	}
}

func TestRequiredDiffNE(t *testing.T) {
	c := MustParseConstraint("ne", "x != 5")
	b := expr.MapBox{"x": interval.New(0, 10)}
	res := c.Narrow(b)
	if res.Inconsistent || len(res.Changed) != 0 {
		t.Errorf("NE narrowing should be a no-op, got %+v", res)
	}
	if !b["x"].Equal(interval.New(0, 10)) {
		t.Error("NE narrowing changed domain")
	}
}

func TestConstraintNarrow(t *testing.T) {
	// The paper's §2.4 receiver example in miniature: gain >= 48 with
	// gain = k * W and k in [16, 20]: W must be >= 48/20 = 2.4.
	c := MustParseConstraint("gain", "k * W >= 48")
	b := expr.MapBox{
		"k": interval.New(16, 20),
		"W": interval.New(0.5, 10),
	}
	res := c.Narrow(b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b["W"]; math.Abs(got.Lo-2.4) > 1e-9 {
		t.Errorf("W = %v, want lower bound 2.4", got)
	}
}

func TestStatusStringNames(t *testing.T) {
	if Satisfied.String() != "Satisfied" || Violated.String() != "Violated" ||
		Consistent.String() != "Consistent" {
		t.Error("Status names wrong")
	}
	if !strings.Contains(Status(9).String(), "9") {
		t.Error("unknown status should include number")
	}
}

func propDom(lo, hi float64) domain.Domain { return domain.NewInterval(lo, hi) }
