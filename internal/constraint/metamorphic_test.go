package constraint_test

// Metamorphic suite: declaration order must not change what the DCM
// computes. Two relations are checked over the differential corpus
// (scenario × mode × seed), with realistic bindings taken from seeded
// TeamSim runs:
//
//  1. Property-insertion-order permutation with constraint order held
//     fixed yields bit-identical fixpoint windows AND identical
//     evaluation counts — the worklist is seeded in constraint
//     insertion order, so renumbering properties must be invisible.
//  2. Constraint-declaration-order permutation changes the revise
//     schedule (eval counts may differ), but after CanonicalClone —
//     which re-interns both properties and constraints in sorted-name
//     order — the permuted and original networks propagate bit-
//     identically: same windows, same eval counts, same revise counts.
//     Fixpoint windows themselves must also agree without
//     canonicalization (HC4 fixpoints are confluent).

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/constraint"
	"repro/internal/dddl"
	"repro/internal/domain"
	"repro/internal/dpm"
	"repro/internal/scenario"
	"repro/internal/teamsim"
)

// conSpec is one constraint declaration in BuildNetwork's order:
// derived-property defining equalities first (property declaration
// order), then the scenario's explicit constraints.
type conSpec struct {
	name string
	src  string
	mono map[string]int
}

func conSpecs(scn *dddl.Scenario) []conSpec {
	var out []conSpec
	for _, pd := range scn.Properties {
		if pd.IsDerived() {
			out = append(out, conSpec{name: pd.Name + ".def", src: pd.Name + " == " + pd.Formula})
		}
	}
	for _, cd := range scn.Constraints {
		out = append(out, conSpec{name: cd.Name, src: cd.Src, mono: cd.Mono})
	}
	return out
}

// buildPermuted rebuilds the scenario's network with properties added
// in propOrder and constraints in conOrder (indices into
// scn.Properties / conSpecs). Requirements bind in scenario order, as
// BuildNetwork does.
func buildPermuted(t *testing.T, scn *dddl.Scenario, propOrder, conOrder []int) *constraint.Network {
	t.Helper()
	net := constraint.NewNetwork()
	for _, pi := range propOrder {
		pd := scn.Properties[pi]
		p := constraint.NewProperty(pd.Name, pd.Domain)
		p.Object = pd.Object
		p.Owner = pd.Owner
		if err := net.AddProperty(p); err != nil {
			t.Fatal(err)
		}
	}
	specs := conSpecs(scn)
	for _, ci := range conOrder {
		sp := specs[ci]
		c, err := constraint.ParseConstraint(sp.name, sp.src)
		if err != nil {
			t.Fatal(err)
		}
		if len(sp.mono) > 0 {
			c.MonoOverride = map[string]int{}
			for k, v := range sp.mono {
				c.MonoOverride[k] = v
			}
		}
		if err := net.AddConstraint(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range scn.Requirements {
		if err := net.Bind(r.Property, r.Value); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// bindFinalValues applies a TeamSim run's final bindings (sorted by
// name, so both sides bind identically) and runs propagation to a
// fixpoint, returning the result.
func bindFinalValues(t *testing.T, net *constraint.Network, values map[string]float64) constraint.PropagateResult {
	t.Helper()
	names := make([]string, 0, len(values))
	for name := range values {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := net.Property(name)
		if p == nil {
			t.Fatalf("final value for unknown property %q", name)
		}
		v := domain.Real(values[name])
		if p.CanBind(v) != nil {
			continue
		}
		if err := net.Bind(name, v); err != nil {
			t.Fatal(err)
		}
	}
	net.ResetFeasible()
	return net.Propagate(constraint.PropagateOptions{})
}

// windowsEqual asserts every property's fixpoint feasible subspace is
// identical across the two networks.
func windowsEqual(t *testing.T, label string, a, b *constraint.Network) {
	t.Helper()
	for _, name := range a.SortedPropertyNames() {
		pa, pb := a.Property(name), b.Property(name)
		if pb == nil {
			t.Fatalf("%s: property %q missing from permuted network", label, name)
		}
		if !pa.Feasible().Equal(pb.Feasible()) {
			t.Fatalf("%s: window divergence on %q:\n  base:     %v\n  permuted: %v",
				label, name, pa.Feasible(), pb.Feasible())
		}
	}
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func metamorphicConfigs(t *testing.T) []teamsim.Config {
	var cfgs []teamsim.Config
	for _, name := range []string{"simplified", "receiver"} {
		if name == "receiver" && testing.Short() {
			continue
		}
		scn, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []dpm.Mode{dpm.ADPM, dpm.Conventional} {
			for seed := int64(1); seed <= 16; seed++ {
				cfgs = append(cfgs, teamsim.Config{
					Scenario: scn, Mode: mode, Seed: seed, MaxOps: 300,
				})
			}
		}
	}
	return cfgs
}

// TestMetamorphicDeclarationOrder sweeps the differential-corpus
// configurations and checks both order-invariance relations under
// bindings taken from the corresponding seeded run.
func TestMetamorphicDeclarationOrder(t *testing.T) {
	for _, cfg := range metamorphicConfigs(t) {
		res, err := teamsim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		scn := cfg.Scenario
		rng := rand.New(rand.NewSource(cfg.Seed * 7919))
		nProps := len(scn.Properties)
		nCons := len(conSpecs(scn))

		// Leg 1: permute property insertion order, constraint order fixed.
		base := buildPermuted(t, scn, identity(nProps), identity(nCons))
		permProps := buildPermuted(t, scn, rng.Perm(nProps), identity(nCons))
		resBase := bindFinalValues(t, base, res.FinalValues)
		resPerm := bindFinalValues(t, permProps, res.FinalValues)
		label := cfg.Scenario.Name + "/" + cfg.Mode.String()
		windowsEqual(t, label+" prop-order", base, permProps)
		if base.EvalCount() != permProps.EvalCount() {
			t.Fatalf("%s seed %d: prop-order permutation changed eval count: %d vs %d",
				label, cfg.Seed, base.EvalCount(), permProps.EvalCount())
		}
		if resBase.Evaluations != resPerm.Evaluations || resBase.Revisions != resPerm.Revisions ||
			resBase.Capped != resPerm.Capped {
			t.Fatalf("%s seed %d: prop-order permutation changed propagation accounting: %+v vs %+v",
				label, cfg.Seed, resBase, resPerm)
		}
		if !stringsEqual(sortedCopy(resBase.Narrowed), sortedCopy(resPerm.Narrowed)) ||
			!stringsEqual(sortedCopy(resBase.Emptied), sortedCopy(resPerm.Emptied)) ||
			!stringsEqual(sortedCopy(resBase.Violated), sortedCopy(resPerm.Violated)) {
			t.Fatalf("%s seed %d: prop-order permutation changed narrow/empty/violation sets",
				label, cfg.Seed)
		}

		// Leg 2: permute constraint declaration order. Fixpoint windows
		// must agree directly (confluence) ...
		permCons := buildPermuted(t, scn, identity(nProps), rng.Perm(nCons))
		bindFinalValues(t, permCons, res.FinalValues)
		windowsEqual(t, label+" con-order", base, permCons)

		// ... and after canonicalization the permuted and original
		// networks must propagate bit-identically, eval counts included.
		canonA := buildPermuted(t, scn, identity(nProps), identity(nCons)).CanonicalClone()
		canonB := buildPermuted(t, scn, rng.Perm(nProps), rng.Perm(nCons)).CanonicalClone()
		resA := bindFinalValues(t, canonA, res.FinalValues)
		resB := bindFinalValues(t, canonB, res.FinalValues)
		windowsEqual(t, label+" canonical", canonA, canonB)
		if canonA.EvalCount() != canonB.EvalCount() {
			t.Fatalf("%s seed %d: canonical clones diverged in eval count: %d vs %d",
				label, cfg.Seed, canonA.EvalCount(), canonB.EvalCount())
		}
		if resA.Evaluations != resB.Evaluations || resA.Revisions != resB.Revisions ||
			resA.Capped != resB.Capped ||
			!stringsEqual(resA.Narrowed, resB.Narrowed) ||
			!stringsEqual(resA.Emptied, resB.Emptied) ||
			!stringsEqual(resA.Violated, resB.Violated) {
			t.Fatalf("%s seed %d: canonical clones diverged in propagation accounting:\n%+v\nvs\n%+v",
				label, cfg.Seed, resA, resB)
		}
	}
}

// TestCanonicalClonePreservesState checks CanonicalClone carries over
// bindings, feasible subspaces, statuses, and the eval counter.
func TestCanonicalClonePreservesState(t *testing.T) {
	scn, err := scenario.ByName("simplified")
	if err != nil {
		t.Fatal(err)
	}
	net, err := scn.BuildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	net.Propagate(constraint.PropagateOptions{})
	net.EvaluateAll()
	clone := net.CanonicalClone()
	if clone.NumProperties() != net.NumProperties() || clone.NumConstraints() != net.NumConstraints() {
		t.Fatalf("clone shape %d/%d, want %d/%d",
			clone.NumProperties(), clone.NumConstraints(), net.NumProperties(), net.NumConstraints())
	}
	if clone.EvalCount() != net.EvalCount() {
		t.Fatalf("clone evals %d, want %d", clone.EvalCount(), net.EvalCount())
	}
	for _, name := range net.SortedPropertyNames() {
		p, q := net.Property(name), clone.Property(name)
		if !p.Feasible().Equal(q.Feasible()) {
			t.Fatalf("feasible subspace of %q not preserved", name)
		}
		if pv, ok := p.Value(); ok {
			qv, qok := q.Value()
			if !qok || pv != qv {
				t.Fatalf("binding of %q not preserved", name)
			}
		} else if q.IsBound() {
			t.Fatalf("clone invented a binding for %q", name)
		}
	}
	for _, c := range net.Constraints() {
		if net.Status(c.Name) != clone.Status(c.Name) {
			t.Fatalf("status of %q not preserved", c.Name)
		}
	}
	if !stringsEqual(net.Violations(), sortedCopy(clone.Violations())) &&
		!stringsEqual(sortedCopy(net.Violations()), sortedCopy(clone.Violations())) {
		t.Fatalf("violations not preserved: %v vs %v", net.Violations(), clone.Violations())
	}
}
