package constraint

import (
	"math"
	"strings"
	"testing"

	"repro/internal/domain"
	"repro/internal/expr"
	"repro/internal/interval"
)

func TestRelationStrings(t *testing.T) {
	want := map[Relation]string{LE: "<=", LT: "<", GE: ">=", GT: ">", EQ: "==", NE: "!="}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), s)
		}
	}
	if !strings.Contains(Relation(42).String(), "42") {
		t.Error("unknown relation should embed number")
	}
}

func TestHasArg(t *testing.T) {
	c := MustParseConstraint("c", "a + b <= 10")
	if !c.HasArg("a") || !c.HasArg("b") || c.HasArg("q") {
		t.Error("HasArg misclassifies")
	}
}

func TestHoldsAtAllRelations(t *testing.T) {
	env := expr.MapEnv{"x": 5}
	cases := []struct {
		src  string
		want bool
	}{
		{"x <= 5", true}, {"x < 5", false},
		{"x >= 5", true}, {"x > 5", false},
		{"x == 5", true}, {"x != 5", false},
		{"x == 5.000000002", false}, {"x != 5.000000002", true},
	}
	for _, c := range cases {
		holds, known := MustParseConstraint("t", c.src).HoldsAt(env)
		if !known || holds != c.want {
			t.Errorf("%q at x=5: holds=%v known=%v", c.src, holds, known)
		}
	}
	// Unknown when the lhs has an unbound variable.
	if _, known := MustParseConstraint("t", "y <= x").HoldsAt(env); known {
		t.Error("unbound lhs should be unknown")
	}
}

func TestNetworkAccessors(t *testing.T) {
	n := buildPowerNet(t)
	if n.Constraint("power") == nil || n.Constraint("nope") != nil {
		t.Error("Constraint lookup wrong")
	}
	if len(n.Properties()) != 3 || len(n.Constraints()) != 1 {
		t.Error("listing accessors wrong")
	}
	if n.Violations() != nil {
		t.Error("fresh network has violations")
	}
	n.SetStatus("power", Violated)
	if v := n.Violations(); len(v) != 1 || v[0] != "power" {
		t.Errorf("Violations = %v", v)
	}
	before := n.EvalCount()
	n.AddEvals(5)
	if n.EvalCount() != before+5 {
		t.Error("AddEvals wrong")
	}
}

func TestPropertyStringAndFeasible(t *testing.T) {
	p := NewProperty("x", domain.NewInterval(0, 10))
	if !strings.Contains(p.String(), "x ∈") {
		t.Errorf("unbound String = %q", p.String())
	}
	p.SetFeasible(domain.NewInterval(2, 3))
	iv, _ := p.Feasible().Interval()
	if !iv.Equal(interval.New(2, 3)) {
		t.Error("SetFeasible lost")
	}
	if err := p.Bind(domain.Real(2.5)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "= 2.5") {
		t.Errorf("bound String = %q", p.String())
	}
}

func TestCurrentIntervalFallbacks(t *testing.T) {
	p := NewProperty("x", domain.NewInterval(0, 10))
	// Emptied feasible set falls back to E_i.
	p.SetFeasible(domain.Empty(domain.Continuous))
	if got := p.CurrentInterval(); !got.Equal(interval.New(0, 10)) {
		t.Errorf("fallback = %v", got)
	}
	// Bound string property: no numeric interval; falls to Init path.
	s := NewProperty("s", domain.NewStringSet("a"))
	if err := s.Bind(domain.Str("a")); err != nil {
		t.Fatal(err)
	}
	if got := s.CurrentInterval(); !got.IsEntire() {
		t.Errorf("string CurrentInterval = %v", got)
	}
}

func TestStatusFromDiffNaNSafety(t *testing.T) {
	// A constraint over an empty-enclosure expression (log of a negative
	// domain) reads as Violated: no combination can satisfy it.
	c := MustParseConstraint("t", "log(x) <= 1")
	env := expr.MapIntervalEnv{"x": interval.New(-5, -1)}
	if got := c.StatusOver(env); got != Violated {
		t.Errorf("status = %v, want Violated (empty enclosure)", got)
	}
	_ = math.Pi
}
