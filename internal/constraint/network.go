package constraint

import (
	"fmt"
	"sort"

	"repro/internal/domain"
	"repro/internal/expr"
	"repro/internal/interval"
)

// Network is the network of constraints C_n of a design state (paper
// §2.1): the set of design properties together with the constraints
// relating them. It tracks each constraint's last computed status, each
// property's feasible subspace, and the cumulative number of constraint
// evaluations — the paper's proxy for verification-tool runs.
type Network struct {
	props     map[string]*Property
	propOrder []string
	cons      map[string]*Constraint
	conOrder  []string
	// byProp indexes constraint names by argument property.
	byProp map[string][]string
	// status holds the last computed status per constraint.
	status map[string]Status
	// evals counts constraint evaluations (status computations and
	// propagation revises).
	evals int64
}

// NewNetwork returns an empty constraint network.
func NewNetwork() *Network {
	return &Network{
		props:  map[string]*Property{},
		cons:   map[string]*Constraint{},
		byProp: map[string][]string{},
		status: map[string]Status{},
	}
}

// AddProperty registers a property. Names must be unique.
func (n *Network) AddProperty(p *Property) error {
	if p.Name == "" {
		return fmt.Errorf("constraint: property with empty name")
	}
	if _, dup := n.props[p.Name]; dup {
		return fmt.Errorf("constraint: duplicate property %q", p.Name)
	}
	n.props[p.Name] = p
	n.propOrder = append(n.propOrder, p.Name)
	return nil
}

// AddConstraint registers a constraint. All argument properties must
// already exist and be numeric. New constraints start Consistent; the
// paper generates constraints dynamically as the design progresses, so
// adding to a live network is the normal case.
func (n *Network) AddConstraint(c *Constraint) error {
	if c.Name == "" {
		return fmt.Errorf("constraint: constraint with empty name")
	}
	if _, dup := n.cons[c.Name]; dup {
		return fmt.Errorf("constraint: duplicate constraint %q", c.Name)
	}
	for _, a := range c.Args() {
		p, ok := n.props[a]
		if !ok {
			return fmt.Errorf("constraint %s: unknown property %q", c.Name, a)
		}
		if !p.IsNumeric() {
			return fmt.Errorf("constraint %s: property %q is non-numeric", c.Name, a)
		}
	}
	n.cons[c.Name] = c
	n.conOrder = append(n.conOrder, c.Name)
	for _, a := range c.Args() {
		n.byProp[a] = append(n.byProp[a], c.Name)
	}
	n.status[c.Name] = Consistent
	return nil
}

// Property returns the named property, or nil.
func (n *Network) Property(name string) *Property { return n.props[name] }

// Constraint returns the named constraint, or nil.
func (n *Network) Constraint(name string) *Constraint { return n.cons[name] }

// Properties returns all properties in insertion order.
func (n *Network) Properties() []*Property {
	out := make([]*Property, len(n.propOrder))
	for i, name := range n.propOrder {
		out[i] = n.props[name]
	}
	return out
}

// Constraints returns all constraints in insertion order.
func (n *Network) Constraints() []*Constraint {
	out := make([]*Constraint, len(n.conOrder))
	for i, name := range n.conOrder {
		out[i] = n.cons[name]
	}
	return out
}

// NumProperties returns the number of properties.
func (n *Network) NumProperties() int { return len(n.props) }

// NumConstraints returns the number of constraints.
func (n *Network) NumConstraints() int { return len(n.cons) }

// ConstraintsOn returns the constraints in which the property appears,
// in insertion order. Its length is the paper's β_i (§2.3.2).
func (n *Network) ConstraintsOn(prop string) []*Constraint {
	names := n.byProp[prop]
	out := make([]*Constraint, len(names))
	for i, cn := range names {
		out[i] = n.cons[cn]
	}
	return out
}

// Beta returns β_i — the number of constraints where prop appears.
func (n *Network) Beta(prop string) int { return len(n.byProp[prop]) }

// BetaIndirect returns β_i extended with constraints indirectly related
// to prop through one intermediate constraint (the §2.3.2 extension):
// constraints sharing an argument with any constraint on prop.
func (n *Network) BetaIndirect(prop string) int {
	direct := n.byProp[prop]
	seen := map[string]bool{}
	for _, cn := range direct {
		seen[cn] = true
	}
	count := len(direct)
	for _, cn := range direct {
		for _, a := range n.cons[cn].Args() {
			for _, cn2 := range n.byProp[a] {
				if !seen[cn2] {
					seen[cn2] = true
					count++
				}
			}
		}
	}
	return count
}

// Alpha returns α_i — the number of constraints involving prop whose
// last computed status is Violated (paper eq. 3).
func (n *Network) Alpha(prop string) int {
	count := 0
	for _, cn := range n.byProp[prop] {
		if n.status[cn] == Violated {
			count++
		}
	}
	return count
}

// Status returns the last computed status of the named constraint.
func (n *Network) Status(name string) Status { return n.status[name] }

// SetStatus records a status computed externally (e.g. by a
// verification operator in conventional mode).
func (n *Network) SetStatus(name string, s Status) { n.status[name] = s }

// Violations returns the names of constraints currently marked Violated,
// in insertion order.
func (n *Network) Violations() []string {
	var out []string
	for _, cn := range n.conOrder {
		if n.status[cn] == Violated {
			out = append(out, cn)
		}
	}
	return out
}

// NumViolations returns the number of constraints currently Violated.
func (n *Network) NumViolations() int {
	c := 0
	for _, s := range n.status {
		if s == Violated {
			c++
		}
	}
	return c
}

// EvalCount returns the cumulative number of constraint evaluations.
func (n *Network) EvalCount() int64 { return n.evals }

// AddEvals adds externally performed evaluations to the counter.
func (n *Network) AddEvals(k int64) { n.evals += k }

// Bind assigns a value to a property.
func (n *Network) Bind(prop string, v domain.Value) error {
	p, ok := n.props[prop]
	if !ok {
		return fmt.Errorf("constraint: bind of unknown property %q", prop)
	}
	return p.Bind(v)
}

// BindReal assigns a numeric value to a property.
func (n *Network) BindReal(prop string, v float64) error {
	return n.Bind(prop, domain.Real(v))
}

// Unbind removes a property's assignment.
func (n *Network) Unbind(prop string) {
	if p, ok := n.props[prop]; ok {
		p.Unbind()
	}
}

// ResetFeasible restores every property's feasible subspace to its
// initial range E_i. Propagation re-derives the reductions from scratch;
// this keeps feasible sets exact after a designer widens a choice.
func (n *Network) ResetFeasible() {
	for _, p := range n.props {
		p.ResetFeasible()
	}
}

// Domain implements expr.IntervalEnv over the network's current state:
// bound properties contribute their point value, unbound ones the hull
// of their feasible subspace (falling back to E_i when emptied).
func (n *Network) Domain(name string) interval.Interval {
	p, ok := n.props[name]
	if !ok {
		return interval.Entire()
	}
	return p.CurrentInterval()
}

// Value implements expr.FloatEnv over bound property values.
func (n *Network) Value(name string) (float64, bool) {
	p, ok := n.props[name]
	if !ok || p.bound == nil || p.bound.IsString() {
		return 0, false
	}
	return p.bound.Num(), true
}

// EvaluateStatus computes and records the status of a single constraint
// from the current property state, incrementing the evaluation counter.
func (n *Network) EvaluateStatus(c *Constraint) Status {
	n.evals++
	s := c.StatusOver(n)
	n.status[c.Name] = s
	return s
}

// EvaluateAll computes and records the status of every constraint (one
// evaluation each) and returns the names of violated constraints.
func (n *Network) EvaluateAll() []string {
	var violated []string
	for _, cn := range n.conOrder {
		if n.EvaluateStatus(n.cons[cn]) == Violated {
			violated = append(violated, cn)
		}
	}
	return violated
}

// Snapshot captures the mutable state of the network: feasible
// subspaces, bindings, statuses, and the evaluation counter.
type Snapshot struct {
	feasible map[string]domain.Domain
	bound    map[string]domain.Value
	status   map[string]Status
	evals    int64
}

// Snapshot returns a copy of the network's mutable state.
func (n *Network) Snapshot() *Snapshot {
	s := &Snapshot{
		feasible: make(map[string]domain.Domain, len(n.props)),
		bound:    map[string]domain.Value{},
		status:   make(map[string]Status, len(n.status)),
		evals:    n.evals,
	}
	for name, p := range n.props {
		s.feasible[name] = p.feasible
		if p.bound != nil {
			s.bound[name] = *p.bound
		}
	}
	for cn, st := range n.status {
		s.status[cn] = st
	}
	return s
}

// Restore rewinds the network's mutable state to the snapshot.
// Properties or constraints added after the snapshot keep their current
// definition but properties revert to unbound/initial only if they
// existed at snapshot time.
func (n *Network) Restore(s *Snapshot) {
	for name, p := range n.props {
		if f, ok := s.feasible[name]; ok {
			p.feasible = f
			if b, bok := s.bound[name]; bok {
				v := b
				p.bound = &v
			} else {
				p.bound = nil
			}
		}
	}
	for cn := range n.status {
		if st, ok := s.status[cn]; ok {
			n.status[cn] = st
		} else {
			n.status[cn] = Consistent
		}
	}
	n.evals = s.evals
}

// Clone returns an independent deep copy of the network.
func (n *Network) Clone() *Network {
	c := NewNetwork()
	for _, name := range n.propOrder {
		cp := n.props[name].clone()
		c.props[name] = cp
		c.propOrder = append(c.propOrder, name)
	}
	for _, cn := range n.conOrder {
		c.cons[cn] = n.cons[cn] // constraints are immutable
		c.conOrder = append(c.conOrder, cn)
		c.status[cn] = n.status[cn]
	}
	for p, cs := range n.byProp {
		c.byProp[p] = append([]string(nil), cs...)
	}
	c.evals = n.evals
	return c
}

// SortedPropertyNames returns property names sorted lexicographically.
func (n *Network) SortedPropertyNames() []string {
	out := append([]string(nil), n.propOrder...)
	sort.Strings(out)
	return out
}

var _ expr.IntervalEnv = (*Network)(nil)
var _ expr.FloatEnv = (*Network)(nil)
