package constraint

import (
	"fmt"
	"sort"

	"repro/internal/domain"
	"repro/internal/expr"
	"repro/internal/interval"
	"repro/internal/trace"
)

// Network is the network of constraints C_n of a design state (paper
// §2.1): the set of design properties together with the constraints
// relating them. It tracks each constraint's last computed status, each
// property's feasible subspace, and the cumulative number of constraint
// evaluations — the paper's proxy for verification-tool runs.
//
// Property and constraint names are interned to dense integer ids at
// registration time (insertion order), so the propagation hot path
// works on int-indexed slices instead of string-keyed maps. The
// structure tables (id maps, adjacency, compiled expressions) are
// immutable per structural generation and shared between clones
// copy-on-write; only the mutable per-state data (feasible subspaces,
// bindings, statuses, the evaluation counter) is copied per clone.
type Network struct {
	// propIDs/conIDs intern names to dense ids in insertion order.
	propIDs map[string]int
	conIDs  map[string]int
	// propList holds the properties by id; the per-network mutable
	// state (feasible, bound) lives in these objects.
	propList []*Property
	// conList holds the (immutable) constraints by id.
	conList []*Constraint
	// byProp indexes constraint ids by argument property id.
	byProp [][]int
	// conArgs holds each constraint's argument property ids, in the
	// constraint's sorted-name Args() order.
	conArgs [][]int
	// compiled holds each constraint's canonical Lhs-Rhs expression
	// with property ids baked in (expr.Compile), used by the id-based
	// evaluation and narrowing fast paths.
	compiled []expr.Node
	// status holds the last computed status per constraint id.
	status []Status
	// evals counts constraint evaluations (status computations and
	// propagation revises).
	evals int64

	// gen is the structure generation: it increments whenever a
	// property or constraint is added. Clones copy it; CloneInto uses
	// it to detect that a destination's structure is still reusable.
	gen int64
	// sharedStructure marks the structure tables as shared with a
	// clone; the next structural mutation copies them first.
	sharedStructure bool
	// cloneSrc/cloneSrcGen identify the network this one was cloned
	// from and its generation at that time (CloneInto fast path).
	cloneSrc    *Network
	cloneSrcGen int64

	// scratch holds the reusable propagation workspace; never shared
	// between networks.
	scratch *propScratch
	// tracer, when non-nil, receives propagate/revise events. It is
	// never copied by CloneInto: scratch networks (movement-window and
	// resynthesis exploration) stay untraced, and their work surfaces as
	// the DPM's aggregated window-refresh events instead.
	tracer *trace.Recorder
	// views holds lazily built structure-derived lookups used by the
	// guidance layer (per-property constraint slices, indirect-β counts).
	// Validated against gen; never shared between networks.
	views *viewCache
	// regions caches the connected-region partition of the constraint
	// graph (regions.go). Validated against gen; never shared between
	// networks.
	regions *regionCache

	// Dirty-set tracking for incremental re-propagation. dirty/dirtyList
	// record properties whose binding changed through the Network API
	// since the last fixpoint marker; allDirty subsumes the list after a
	// bulk change (ResetFeasible, Restore, CloneInto). fixValid marks
	// that the current feasible subspaces are the fixpoint of a full
	// reset-and-propagate at generation fixGen under options fixOpts —
	// the precondition for an incremental run to skip clean regions.
	// Only Propagate with Incremental set establishes the marker, because
	// only that entry point owns the initial ResetFeasible; direct
	// Property mutations (Property.Bind, Property.SetFeasible) bypass
	// this tracking, so code paths that use them must not opt in.
	dirty     []bool
	dirtyList []int
	allDirty  bool
	fixValid  bool
	fixGen    int64
	fixOpts   PropagateOptions
}

// viewCache memoizes pure-structure queries that view building issues
// for every property on every operation. It is rebuilt whenever the
// structure generation moves.
type viewCache struct {
	gen     int64
	conOn   [][]*Constraint
	betaInd []int
}

// NewNetwork returns an empty constraint network.
func NewNetwork() *Network {
	return &Network{
		propIDs: map[string]int{},
		conIDs:  map[string]int{},
	}
}

// ensureOwnedStructure copies the shared structure tables before a
// structural mutation so sibling clones keep their own view.
func (n *Network) ensureOwnedStructure() {
	if !n.sharedStructure {
		return
	}
	propIDs := make(map[string]int, len(n.propIDs))
	for k, v := range n.propIDs {
		propIDs[k] = v
	}
	conIDs := make(map[string]int, len(n.conIDs))
	for k, v := range n.conIDs {
		conIDs[k] = v
	}
	n.propIDs = propIDs
	n.conIDs = conIDs
	n.conList = append([]*Constraint(nil), n.conList...)
	byProp := make([][]int, len(n.byProp))
	for i, cs := range n.byProp {
		byProp[i] = append([]int(nil), cs...)
	}
	n.byProp = byProp
	conArgs := make([][]int, len(n.conArgs))
	for i, as := range n.conArgs {
		conArgs[i] = append([]int(nil), as...)
	}
	n.conArgs = conArgs
	n.compiled = append([]expr.Node(nil), n.compiled...)
	n.sharedStructure = false
}

// AddProperty registers a property. Names must be unique.
func (n *Network) AddProperty(p *Property) error {
	if p.Name == "" {
		return fmt.Errorf("constraint: property with empty name")
	}
	if _, dup := n.propIDs[p.Name]; dup {
		return fmt.Errorf("constraint: duplicate property %q", p.Name)
	}
	n.ensureOwnedStructure()
	n.propIDs[p.Name] = len(n.propList)
	n.propList = append(n.propList, p)
	n.byProp = append(n.byProp, nil)
	n.gen++
	return nil
}

// AddConstraint registers a constraint. All argument properties must
// already exist and be numeric. New constraints start Consistent; the
// paper generates constraints dynamically as the design progresses, so
// adding to a live network is the normal case.
func (n *Network) AddConstraint(c *Constraint) error {
	if c.Name == "" {
		return fmt.Errorf("constraint: constraint with empty name")
	}
	if _, dup := n.conIDs[c.Name]; dup {
		return fmt.Errorf("constraint: duplicate constraint %q", c.Name)
	}
	argIDs := make([]int, len(c.Args()))
	for i, a := range c.Args() {
		pid, ok := n.propIDs[a]
		if !ok {
			return fmt.Errorf("constraint %s: unknown property %q", c.Name, a)
		}
		if !n.propList[pid].IsNumeric() {
			return fmt.Errorf("constraint %s: property %q is non-numeric", c.Name, a)
		}
		argIDs[i] = pid
	}
	n.ensureOwnedStructure()
	ci := len(n.conList)
	n.conIDs[c.Name] = ci
	n.conList = append(n.conList, c)
	n.conArgs = append(n.conArgs, argIDs)
	n.compiled = append(n.compiled, expr.Compile(c.diff, func(name string) (int, bool) {
		id, ok := n.propIDs[name]
		return id, ok
	}))
	for _, pid := range argIDs {
		n.byProp[pid] = append(n.byProp[pid], ci)
	}
	n.status = append(n.status, Consistent)
	n.gen++
	return nil
}

// propID returns the dense id of the named property, or -1.
func (n *Network) propID(name string) int {
	if id, ok := n.propIDs[name]; ok {
		return id
	}
	return -1
}

// Property returns the named property, or nil.
func (n *Network) Property(name string) *Property {
	if id, ok := n.propIDs[name]; ok {
		return n.propList[id]
	}
	return nil
}

// Constraint returns the named constraint, or nil.
func (n *Network) Constraint(name string) *Constraint {
	if id, ok := n.conIDs[name]; ok {
		return n.conList[id]
	}
	return nil
}

// Properties returns all properties in insertion order.
func (n *Network) Properties() []*Property {
	return append([]*Property(nil), n.propList...)
}

// Constraints returns all constraints in insertion order.
func (n *Network) Constraints() []*Constraint {
	return append([]*Constraint(nil), n.conList...)
}

// NumProperties returns the number of properties.
func (n *Network) NumProperties() int { return len(n.propList) }

// NumConstraints returns the number of constraints.
func (n *Network) NumConstraints() int { return len(n.conList) }

// getViewCache returns the structure-query cache, resetting it when the
// structure generation has moved since it was built.
func (n *Network) getViewCache() *viewCache {
	vc := n.views
	if vc == nil || vc.gen != n.gen || len(vc.conOn) != len(n.propList) {
		vc = &viewCache{
			gen:     n.gen,
			conOn:   make([][]*Constraint, len(n.propList)),
			betaInd: make([]int, len(n.propList)),
		}
		for i := range vc.betaInd {
			vc.betaInd[i] = -1
		}
		n.views = vc
	}
	return vc
}

// ConstraintsOn returns the constraints in which the property appears,
// in insertion order. Its length is the paper's β_i (§2.3.2). The
// returned slice is cached until the next structural change and must
// not be modified by the caller.
func (n *Network) ConstraintsOn(prop string) []*Constraint {
	pid := n.propID(prop)
	if pid < 0 {
		return nil
	}
	ids := n.byProp[pid]
	if len(ids) == 0 {
		return nil
	}
	vc := n.getViewCache()
	if vc.conOn[pid] == nil {
		out := make([]*Constraint, len(ids))
		for i, ci := range ids {
			out[i] = n.conList[ci]
		}
		vc.conOn[pid] = out
	}
	return vc.conOn[pid]
}

// Beta returns β_i — the number of constraints where prop appears.
func (n *Network) Beta(prop string) int {
	pid := n.propID(prop)
	if pid < 0 {
		return 0
	}
	return len(n.byProp[pid])
}

// BetaIndirect returns β_i extended with constraints indirectly related
// to prop through one intermediate constraint (the §2.3.2 extension):
// constraints sharing an argument with any constraint on prop.
func (n *Network) BetaIndirect(prop string) int {
	pid := n.propID(prop)
	if pid < 0 {
		return 0
	}
	vc := n.getViewCache()
	if b := vc.betaInd[pid]; b >= 0 {
		return b
	}
	direct := n.byProp[pid]
	seen := make([]bool, len(n.conList))
	for _, ci := range direct {
		seen[ci] = true
	}
	count := len(direct)
	for _, ci := range direct {
		for _, aid := range n.conArgs[ci] {
			for _, ci2 := range n.byProp[aid] {
				if !seen[ci2] {
					seen[ci2] = true
					count++
				}
			}
		}
	}
	vc.betaInd[pid] = count
	return count
}

// Alpha returns α_i — the number of constraints involving prop whose
// last computed status is Violated (paper eq. 3).
func (n *Network) Alpha(prop string) int {
	pid := n.propID(prop)
	if pid < 0 {
		return 0
	}
	count := 0
	for _, ci := range n.byProp[pid] {
		if n.status[ci] == Violated {
			count++
		}
	}
	return count
}

// Status returns the last computed status of the named constraint.
func (n *Network) Status(name string) Status {
	if ci, ok := n.conIDs[name]; ok {
		return n.status[ci]
	}
	return Consistent
}

// SetStatus records a status computed externally (e.g. by a
// verification operator in conventional mode).
func (n *Network) SetStatus(name string, s Status) {
	if ci, ok := n.conIDs[name]; ok {
		n.status[ci] = s
	}
}

// Violations returns the names of constraints currently marked Violated,
// in insertion order.
func (n *Network) Violations() []string {
	var out []string
	for ci, s := range n.status {
		if s == Violated {
			out = append(out, n.conList[ci].Name)
		}
	}
	return out
}

// NumViolations returns the number of constraints currently Violated.
func (n *Network) NumViolations() int {
	c := 0
	for _, s := range n.status {
		if s == Violated {
			c++
		}
	}
	return c
}

// SetTracer attaches a trace recorder to this network; nil detaches.
// Clones never inherit it (see CloneInto).
func (n *Network) SetTracer(tr *trace.Recorder) { n.tracer = tr }

// EvalCount returns the cumulative number of constraint evaluations.
func (n *Network) EvalCount() int64 { return n.evals }

// AddEvals adds externally performed evaluations to the counter.
func (n *Network) AddEvals(k int64) { n.evals += k }

// markDirty records a binding change of property id pid for incremental
// re-propagation.
func (n *Network) markDirty(pid int) {
	if n.allDirty {
		return
	}
	if len(n.dirty) < len(n.propList) {
		d := make([]bool, len(n.propList))
		copy(d, n.dirty)
		n.dirty = d
	}
	if !n.dirty[pid] {
		n.dirty[pid] = true
		n.dirtyList = append(n.dirtyList, pid)
	}
}

// markAllDirty records a bulk state change: the next incremental
// propagation falls back to a full reset-and-propagate.
func (n *Network) markAllDirty() {
	n.allDirty = true
}

// clearDirty resets the dirty set after a marker-establishing run.
func (n *Network) clearDirty() {
	for _, pid := range n.dirtyList {
		if pid < len(n.dirty) {
			n.dirty[pid] = false
		}
	}
	n.dirtyList = n.dirtyList[:0]
	n.allDirty = false
}

// Bind assigns a value to a property.
func (n *Network) Bind(prop string, v domain.Value) error {
	id, ok := n.propIDs[prop]
	if !ok {
		return fmt.Errorf("constraint: bind of unknown property %q", prop)
	}
	if err := n.propList[id].Bind(v); err != nil {
		return err
	}
	n.markDirty(id)
	return nil
}

// BindReal assigns a numeric value to a property.
func (n *Network) BindReal(prop string, v float64) error {
	return n.Bind(prop, domain.Real(v))
}

// Unbind removes a property's assignment.
func (n *Network) Unbind(prop string) {
	if id, ok := n.propIDs[prop]; ok {
		n.propList[id].Unbind()
		n.markDirty(id)
	}
}

// ResetFeasible restores every property's feasible subspace to its
// initial range E_i. Propagation re-derives the reductions from scratch;
// this keeps feasible sets exact after a designer widens a choice.
func (n *Network) ResetFeasible() {
	for _, p := range n.propList {
		p.ResetFeasible()
	}
	n.markAllDirty()
}

// Domain implements expr.IntervalEnv over the network's current state:
// bound properties contribute their point value, unbound ones the hull
// of their feasible subspace (falling back to E_i when emptied).
func (n *Network) Domain(name string) interval.Interval {
	p := n.Property(name)
	if p == nil {
		return interval.Entire()
	}
	return p.CurrentInterval()
}

// DomainID implements expr.IndexedIntervalEnv: domain lookup by
// interned property id, bypassing the name map.
func (n *Network) DomainID(id int) interval.Interval {
	return n.propList[id].CurrentInterval()
}

// Value implements expr.FloatEnv over bound property values.
func (n *Network) Value(name string) (float64, bool) {
	p := n.Property(name)
	if p == nil || p.bound == nil || p.bound.IsString() {
		return 0, false
	}
	return p.bound.Num(), true
}

// EvaluateStatus computes and records the status of a single constraint
// from the current property state, incrementing the evaluation counter.
func (n *Network) EvaluateStatus(c *Constraint) Status {
	n.evals++
	var s Status
	if ci, ok := n.conIDs[c.Name]; ok {
		if n.conList[ci] == c {
			s = statusFromDiff(expr.EvalInterval(n.compiled[ci], n), c.Rel)
		} else {
			s = c.StatusOver(n)
		}
		n.status[ci] = s
	} else {
		s = c.StatusOver(n)
	}
	return s
}

// EvaluateAll computes and records the status of every constraint (one
// evaluation each) and returns the names of violated constraints.
func (n *Network) EvaluateAll() []string {
	var violated []string
	for ci, c := range n.conList {
		n.evals++
		s := statusFromDiff(expr.EvalInterval(n.compiled[ci], n), c.Rel)
		n.status[ci] = s
		if s == Violated {
			violated = append(violated, c.Name)
		}
	}
	return violated
}

// Snapshot captures the mutable state of the network: feasible
// subspaces, bindings, statuses, and the evaluation counter. The
// per-id slices are interpreted against insertion order, so a snapshot
// remains valid after properties or constraints are added (the added
// tail is simply absent from it).
type Snapshot struct {
	feasible []domain.Domain
	bound    []domain.Value
	isBound  []bool
	status   []Status
	evals    int64
}

// Snapshot returns a copy of the network's mutable state.
func (n *Network) Snapshot() *Snapshot {
	s := &Snapshot{
		feasible: make([]domain.Domain, len(n.propList)),
		bound:    make([]domain.Value, len(n.propList)),
		isBound:  make([]bool, len(n.propList)),
		status:   append([]Status(nil), n.status...),
		evals:    n.evals,
	}
	for i, p := range n.propList {
		s.feasible[i] = p.feasible
		if p.bound != nil {
			s.bound[i] = *p.bound
			s.isBound[i] = true
		}
	}
	return s
}

// Restore rewinds the network's mutable state to the snapshot.
// Properties or constraints added after the snapshot keep their current
// definition but properties revert to unbound/initial only if they
// existed at snapshot time.
func (n *Network) Restore(s *Snapshot) {
	for i, p := range n.propList {
		if i >= len(s.feasible) {
			break
		}
		p.feasible = s.feasible[i]
		if s.isBound[i] {
			v := s.bound[i]
			p.bound = &v
		} else {
			p.bound = nil
		}
	}
	for ci := range n.status {
		if ci < len(s.status) {
			n.status[ci] = s.status[ci]
		} else {
			n.status[ci] = Consistent
		}
	}
	n.evals = s.evals
	// The restored feasible subspaces are an arbitrary earlier state, so
	// the fixpoint marker no longer describes the network.
	n.markAllDirty()
	n.fixValid = false
}

// CanonicalClone returns an order-normalized deep copy: properties and
// constraints re-interned in sorted-name order, with feasible
// subspaces, bindings, constraint statuses, and the eval counter
// preserved. Declaration order is the one thing a canonical clone
// forgets — two networks that differ only in the order their
// properties and constraints were added have structurally identical
// canonical clones, so propagation on the clones seeds its worklist
// identically. The metamorphic suite uses this to separate the
// observables that may depend on declaration order (worklist seeding,
// hence revise schedules) from those that must not (fixpoint windows).
func (n *Network) CanonicalClone() *Network {
	out := NewNetwork()
	for _, name := range n.SortedPropertyNames() {
		if err := out.AddProperty(n.propList[n.propIDs[name]].clone()); err != nil {
			panic("constraint: CanonicalClone: " + err.Error())
		}
	}
	conNames := make([]string, 0, len(n.conList))
	for _, c := range n.conList {
		conNames = append(conNames, c.Name)
	}
	sort.Strings(conNames)
	for _, name := range conNames {
		ci := n.conIDs[name]
		if err := out.AddConstraint(n.conList[ci]); err != nil {
			panic("constraint: CanonicalClone: " + err.Error())
		}
		out.status[out.conIDs[name]] = n.status[ci]
	}
	out.evals = n.evals
	return out
}

// Clone returns an independent deep copy of the network. The immutable
// structure tables are shared copy-on-write; only properties' mutable
// state and constraint statuses are duplicated.
func (n *Network) Clone() *Network {
	c := &Network{}
	n.CloneInto(c)
	return c
}

// CloneInto makes dst an independent deep copy of n, reusing dst's
// existing allocations when dst was previously cloned from n and
// neither side has changed structure since (the scratch-network reuse
// fast path: per-operation movement-window exploration clones the same
// network once per bound variable). The fast path copies only mutable
// state — feasible subspaces, bindings, statuses, the eval counter —
// with no allocation beyond first-time bound-value boxes.
func (n *Network) CloneInto(dst *Network) {
	if dst == n {
		return
	}
	if dst.cloneSrc == n && dst.cloneSrcGen == n.gen && dst.gen == n.gen {
		// Structure unchanged on both sides: overwrite mutable state.
		for i, p := range n.propList {
			dp := dst.propList[i]
			dp.feasible = p.feasible
			if p.bound != nil {
				if dp.bound == nil {
					b := *p.bound
					dp.bound = &b
				} else {
					*dp.bound = *p.bound
				}
			} else {
				dp.bound = nil
			}
		}
		copy(dst.status, n.status)
		dst.evals = n.evals
		dst.markAllDirty()
		dst.fixValid = false
		return
	}

	// Slow path: rebuild dst's structure from n. Structure tables are
	// immutable per generation and shared copy-on-write.
	n.sharedStructure = true
	dst.propIDs = n.propIDs
	dst.conIDs = n.conIDs
	dst.conList = n.conList
	dst.byProp = n.byProp
	dst.conArgs = n.conArgs
	dst.compiled = n.compiled
	dst.sharedStructure = true
	dst.propList = make([]*Property, len(n.propList))
	for i, p := range n.propList {
		dst.propList[i] = p.clone()
	}
	dst.status = append(dst.status[:0], n.status...)
	dst.evals = n.evals
	dst.gen = n.gen
	dst.cloneSrc = n
	dst.cloneSrcGen = n.gen
	dst.scratch = nil
	dst.tracer = nil
	// A stale cache could validate against the new gen by coincidence;
	// the fast path keeps them because the structure tables are identical.
	dst.views = nil
	dst.regions = nil
	dst.markAllDirty()
	dst.fixValid = false
}

// SortedPropertyNames returns property names sorted lexicographically.
func (n *Network) SortedPropertyNames() []string {
	out := make([]string, len(n.propList))
	for i, p := range n.propList {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

var _ expr.IntervalEnv = (*Network)(nil)
var _ expr.IndexedIntervalEnv = (*Network)(nil)
var _ expr.FloatEnv = (*Network)(nil)
