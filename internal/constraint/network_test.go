package constraint

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/interval"
)

// buildPowerNet builds the paper's running example: Pf + Ps <= PM with
// PM bound to 200 (the receiver's power budget).
func buildPowerNet(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	for _, p := range []struct {
		name   string
		lo, hi float64
		owner  string
	}{
		{"Pf", 0, 500, "circuit"},
		{"Ps", 0, 500, "circuit"},
		{"PM", 0, 500, "leader"},
	} {
		pr := NewProperty(p.name, propDom(p.lo, p.hi))
		pr.Owner = p.owner
		if err := n.AddProperty(pr); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddConstraint(MustParseConstraint("power", "Pf + Ps <= PM")); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAddValidation(t *testing.T) {
	n := NewNetwork()
	if err := n.AddProperty(NewProperty("", propDom(0, 1))); err == nil {
		t.Error("empty property name accepted")
	}
	if err := n.AddProperty(NewProperty("x", propDom(0, 1))); err != nil {
		t.Fatal(err)
	}
	if err := n.AddProperty(NewProperty("x", propDom(0, 1))); err == nil {
		t.Error("duplicate property accepted")
	}
	if err := n.AddConstraint(MustParseConstraint("c", "x <= y")); err == nil {
		t.Error("constraint over unknown property accepted")
	}
	if err := n.AddProperty(NewProperty("s", domain.NewStringSet("a", "b"))); err != nil {
		t.Fatal(err)
	}
	if err := n.AddConstraint(MustParseConstraint("c", "x <= s")); err == nil {
		t.Error("constraint over string property accepted")
	}
	if err := n.AddConstraint(MustParseConstraint("c", "x <= 1")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddConstraint(MustParseConstraint("c", "x <= 2")); err == nil {
		t.Error("duplicate constraint accepted")
	}
	if err := n.AddConstraint(New("", nil, LE, nil)); err == nil {
		t.Error("empty constraint name accepted")
	}
}

func TestBindAndEvaluate(t *testing.T) {
	n := buildPowerNet(t)
	if err := n.BindReal("PM", 200); err != nil {
		t.Fatal(err)
	}
	if err := n.BindReal("Pf", 150); err != nil {
		t.Fatal(err)
	}
	if err := n.BindReal("Ps", 80); err != nil {
		t.Fatal(err)
	}
	// 150 + 80 > 200: violated.
	if v := n.EvaluateAll(); len(v) != 1 || v[0] != "power" {
		t.Errorf("violations = %v", v)
	}
	if n.Status("power") != Violated {
		t.Error("status not recorded")
	}
	if n.NumViolations() != 1 {
		t.Error("NumViolations wrong")
	}
	if n.Alpha("Pf") != 1 || n.Alpha("PM") != 1 {
		t.Errorf("alpha = %d/%d, want 1/1", n.Alpha("Pf"), n.Alpha("PM"))
	}
	// Fix: lower Ps.
	if err := n.BindReal("Ps", 40); err != nil {
		t.Fatal(err)
	}
	if v := n.EvaluateAll(); v != nil {
		t.Errorf("violations after fix = %v", v)
	}
	if n.Alpha("Pf") != 0 {
		t.Error("alpha should drop to 0 after fix")
	}
	if n.EvalCount() != 2 {
		t.Errorf("EvalCount = %d, want 2", n.EvalCount())
	}
	// Bind of unknown property errors.
	if err := n.BindReal("nope", 1); err == nil {
		t.Error("bind unknown property accepted")
	}
	// Kind mismatch errors.
	if err := n.Bind("Pf", domain.Str("x")); err == nil {
		t.Error("kind-mismatched bind accepted")
	}
}

func TestBetaCounts(t *testing.T) {
	n := NewNetwork()
	for _, name := range []string{"a", "b", "c", "d"} {
		if err := n.AddProperty(NewProperty(name, propDom(0, 10))); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd := func(c *Constraint) {
		t.Helper()
		if err := n.AddConstraint(c); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(MustParseConstraint("c1", "a + b <= 10"))
	mustAdd(MustParseConstraint("c2", "a * c <= 10"))
	mustAdd(MustParseConstraint("c3", "a >= 1"))
	mustAdd(MustParseConstraint("c4", "d <= 5"))
	if n.Beta("a") != 3 || n.Beta("b") != 1 || n.Beta("d") != 1 {
		t.Errorf("beta: a=%d b=%d d=%d", n.Beta("a"), n.Beta("b"), n.Beta("d"))
	}
	// Indirect: b relates through c1 to a, and via a to c2 and c3.
	if got := n.BetaIndirect("b"); got != 3 {
		t.Errorf("BetaIndirect(b) = %d, want 3 (c1 + c2 + c3)", got)
	}
	// d only has c4, no neighbours.
	if got := n.BetaIndirect("d"); got != 1 {
		t.Errorf("BetaIndirect(d) = %d, want 1", got)
	}
	if cs := n.ConstraintsOn("a"); len(cs) != 3 || cs[0].Name != "c1" {
		t.Errorf("ConstraintsOn(a) = %v", cs)
	}
}

func TestPropagateNarrowsFeasible(t *testing.T) {
	n := buildPowerNet(t)
	if err := n.BindReal("PM", 200); err != nil {
		t.Fatal(err)
	}
	if err := n.BindReal("Ps", 150); err != nil {
		t.Fatal(err)
	}
	res := n.Propagate(PropagateOptions{})
	if len(res.Violated) != 0 {
		t.Fatalf("unexpected violations %v", res.Violated)
	}
	// Pf must be narrowed to [0, 50] (within the propagation engine's
	// conservative inflation, which scales with operand magnitudes).
	f := n.Property("Pf").Feasible()
	iv, _ := f.Interval()
	if !iv.ApproxEqual(interval.New(0, 50), 1e-6) {
		t.Errorf("feasible Pf = %v, want [0,50]", iv)
	}
	if res.Evaluations <= 0 {
		t.Error("no evaluations counted")
	}
	found := false
	for _, p := range res.Narrowed {
		if p == "Pf" {
			found = true
		}
	}
	if !found {
		t.Errorf("Narrowed = %v, want to include Pf", res.Narrowed)
	}
}

func TestPropagateDetectsViolation(t *testing.T) {
	n := buildPowerNet(t)
	for prop, v := range map[string]float64{"PM": 200, "Pf": 150, "Ps": 100} {
		if err := n.BindReal(prop, v); err != nil {
			t.Fatal(err)
		}
	}
	res := n.Propagate(PropagateOptions{})
	if len(res.Violated) != 1 || res.Violated[0] != "power" {
		t.Errorf("Violated = %v", res.Violated)
	}
	if n.Alpha("Pf") != 1 {
		t.Error("alpha not updated by propagation")
	}
}

func TestPropagateChains(t *testing.T) {
	// a <= b, b <= c, c bound to 10: both a and b should narrow to <= 10.
	n := NewNetwork()
	for _, name := range []string{"a", "b", "c"} {
		if err := n.AddProperty(NewProperty(name, propDom(0, 100))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddConstraint(MustParseConstraint("ab", "a <= b")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddConstraint(MustParseConstraint("bc", "b <= c")); err != nil {
		t.Fatal(err)
	}
	if err := n.BindReal("c", 10); err != nil {
		t.Fatal(err)
	}
	res := n.Propagate(PropagateOptions{})
	if len(res.Violated) != 0 {
		t.Fatalf("violations: %v", res.Violated)
	}
	for _, p := range []string{"a", "b"} {
		iv, _ := n.Property(p).Feasible().Interval()
		if !iv.ApproxEqual(interval.New(0, 10), 1e-9) {
			t.Errorf("feasible %s = %v, want [0,10]", p, iv)
		}
	}
}

func TestPropagateEmptiesDomain(t *testing.T) {
	// Conflicting requirements leave no feasible values for x.
	n := NewNetwork()
	if err := n.AddProperty(NewProperty("x", propDom(0, 100))); err != nil {
		t.Fatal(err)
	}
	if err := n.AddConstraint(MustParseConstraint("lo", "x >= 60")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddConstraint(MustParseConstraint("hi", "x <= 40")); err != nil {
		t.Fatal(err)
	}
	res := n.Propagate(PropagateOptions{})
	// One of the two constraints must surface as violated once the
	// domain empties, and x's feasible set must be empty.
	if !n.Property("x").Feasible().IsEmpty() {
		t.Errorf("feasible x = %v, want empty", n.Property("x").Feasible())
	}
	if len(res.Violated) == 0 {
		t.Error("conflicting requirements produced no violation")
	}
	if len(res.Emptied) != 1 || res.Emptied[0] != "x" {
		t.Errorf("Emptied = %v, want [x]", res.Emptied)
	}
}

func TestPropagateTerminatesOnCycle(t *testing.T) {
	// x == y/2, y == x/2 contracts asymptotically toward 0;
	// the revision cap and min-shrink threshold must stop it.
	n := NewNetwork()
	for _, name := range []string{"x", "y"} {
		if err := n.AddProperty(NewProperty(name, propDom(-1000, 1000))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddConstraint(MustParseConstraint("c1", "x == y / 2")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddConstraint(MustParseConstraint("c2", "y == x / 2")); err != nil {
		t.Fatal(err)
	}
	res := n.Propagate(PropagateOptions{MaxRevisions: 500})
	if res.Revisions > 500 {
		t.Errorf("revisions = %d exceeds cap", res.Revisions)
	}
	// Domains must have contracted and still contain the solution 0.
	iv, _ := n.Property("x").Feasible().Interval()
	if !iv.Contains(0) {
		t.Errorf("feasible x = %v lost the solution 0", iv)
	}
	if iv.Width() >= 2000 {
		t.Errorf("no contraction happened: %v", iv)
	}
}

func TestPropagateDiscreteDomain(t *testing.T) {
	// Discrete choice set filtered by a constraint: standard inductor
	// values with Freq_ind <= 0.5.
	n := NewNetwork()
	p := NewProperty("L", domain.NewRealSet(0.1, 0.2, 0.5, 1.0, 2.2))
	if err := n.AddProperty(p); err != nil {
		t.Fatal(err)
	}
	if err := n.AddConstraint(MustParseConstraint("c", "L <= 0.5")); err != nil {
		t.Fatal(err)
	}
	n.Propagate(PropagateOptions{})
	want := domain.NewRealSet(0.1, 0.2, 0.5)
	if !p.Feasible().Equal(want) {
		t.Errorf("feasible L = %v, want %v", p.Feasible(), want)
	}
}

func TestSnapshotRestore(t *testing.T) {
	n := buildPowerNet(t)
	if err := n.BindReal("PM", 200); err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	if err := n.BindReal("Pf", 300); err != nil {
		t.Fatal(err)
	}
	if err := n.BindReal("Ps", 300); err != nil {
		t.Fatal(err)
	}
	n.EvaluateAll()
	n.Propagate(PropagateOptions{})
	if n.Status("power") != Violated {
		t.Fatal("setup: expected violation")
	}
	n.Restore(snap)
	if n.Status("power") != Consistent {
		t.Error("status not restored")
	}
	if n.Property("Pf").IsBound() {
		t.Error("binding not removed by restore")
	}
	if v, ok := n.Property("PM").Value(); !ok || v.Num() != 200 {
		t.Error("pre-snapshot binding lost")
	}
	if n.EvalCount() != snap.evals {
		t.Error("eval counter not restored")
	}
	f := n.Property("Pf").Feasible()
	iv, _ := f.Interval()
	if !iv.Equal(interval.New(0, 500)) {
		t.Errorf("feasible not restored: %v", iv)
	}
}

func TestClone(t *testing.T) {
	n := buildPowerNet(t)
	if err := n.BindReal("PM", 200); err != nil {
		t.Fatal(err)
	}
	c := n.Clone()
	if err := c.BindReal("Pf", 100); err != nil {
		t.Fatal(err)
	}
	if n.Property("Pf").IsBound() {
		t.Error("clone shares property state with original")
	}
	c.EvaluateAll()
	if n.EvalCount() == c.EvalCount() {
		t.Error("clone shares eval counter")
	}
	if c.NumProperties() != 3 || c.NumConstraints() != 1 {
		t.Error("clone lost structure")
	}
}

func TestUnbindAndFeasibleValue(t *testing.T) {
	n := buildPowerNet(t)
	if err := n.BindReal("Pf", 100); err != nil {
		t.Fatal(err)
	}
	n.Unbind("Pf")
	if n.Property("Pf").IsBound() {
		t.Error("Unbind failed")
	}
	n.Unbind("missing") // no panic
	if !n.FeasibleValue("Pf", domain.Real(100)) {
		t.Error("100 should be feasible for Pf")
	}
	if n.FeasibleValue("Pf", domain.Real(1000)) {
		t.Error("1000 outside E_i should not be feasible")
	}
	if n.FeasibleValue("missing", domain.Real(1)) {
		t.Error("unknown property should not report feasible values")
	}
}

func TestResetFeasible(t *testing.T) {
	n := buildPowerNet(t)
	if err := n.BindReal("PM", 100); err != nil {
		t.Fatal(err)
	}
	n.Propagate(PropagateOptions{})
	iv, _ := n.Property("Pf").Feasible().Interval()
	if iv.Hi > 100.001 {
		t.Fatalf("setup: expected narrowing, got %v", iv)
	}
	n.ResetFeasible()
	iv, _ = n.Property("Pf").Feasible().Interval()
	if !iv.Equal(interval.New(0, 500)) {
		t.Errorf("reset feasible = %v", iv)
	}
}

func TestNetworkEnvInterfaces(t *testing.T) {
	n := buildPowerNet(t)
	if err := n.BindReal("PM", 200); err != nil {
		t.Fatal(err)
	}
	// IntervalEnv: bound -> point, unbound -> feasible hull.
	if got := n.Domain("PM"); !got.Equal(interval.Point(200)) {
		t.Errorf("Domain(PM) = %v", got)
	}
	if got := n.Domain("Pf"); !got.Equal(interval.New(0, 500)) {
		t.Errorf("Domain(Pf) = %v", got)
	}
	if got := n.Domain("unknown"); !got.IsEntire() {
		t.Errorf("Domain(unknown) = %v", got)
	}
	// FloatEnv
	if v, ok := n.Value("PM"); !ok || v != 200 {
		t.Errorf("Value(PM) = %v, %v", v, ok)
	}
	if _, ok := n.Value("Pf"); ok {
		t.Error("unbound property should not report a value")
	}
}

func TestSortedPropertyNames(t *testing.T) {
	n := buildPowerNet(t)
	names := n.SortedPropertyNames()
	if len(names) != 3 || names[0] != "PM" || names[1] != "Pf" || names[2] != "Ps" {
		t.Errorf("sorted names = %v", names)
	}
}
