package constraint

import (
	"sort"

	"repro/internal/domain"
	"repro/internal/expr"
	"repro/internal/interval"
	"repro/internal/trace"
)

// Defaults for PropagateOptions fields left at zero.
const (
	// DefaultMaxRevisions bounds the total number of constraint revises
	// in one propagation run.
	DefaultMaxRevisions = 2000
	// DefaultMinShrink is the minimum relative width reduction for a
	// narrowing to count as a change worth re-enqueueing neighbours:
	// 1% of the current width. Design guidance needs windows, not tight
	// enclosures, and the asymptotic tail of interval fixpoints is
	// where the evaluation budget disappears.
	DefaultMinShrink = 0.01
	// DefaultMaxVisits caps how often a single constraint is revised in
	// one propagation run.
	DefaultMaxVisits = 12
)

// PropagateOptions tunes the fixpoint propagation.
type PropagateOptions struct {
	// MaxRevisions bounds the total number of constraint revises; 0
	// means the default (DefaultMaxRevisions, 2000). The bound exists
	// because continuous domains can contract asymptotically (interval
	// propagation is only guaranteed to converge in the limit).
	MaxRevisions int
	// MinShrink is the minimum relative width reduction for a narrowing
	// to count as a change worth re-enqueueing neighbours for; 0 means
	// the default (DefaultMinShrink, 1%).
	MinShrink float64
	// MaxVisits caps how often a single constraint is revised in one
	// propagation run; 0 means the default (DefaultMaxVisits, 12).
	// Equality chains can contract geometrically — each revise
	// shrinking a fixed fraction — so a relative-shrink threshold alone
	// never converges.
	MaxVisits int
}

// withDefaults resolves zero fields to the package defaults.
func (o PropagateOptions) withDefaults() PropagateOptions {
	if o.MaxRevisions <= 0 {
		o.MaxRevisions = DefaultMaxRevisions
	}
	if o.MinShrink <= 0 {
		o.MinShrink = DefaultMinShrink
	}
	if o.MaxVisits <= 0 {
		o.MaxVisits = DefaultMaxVisits
	}
	return o
}

// PropagateResult summarizes one propagation run (one execution of the
// DCM's constraint propagation algorithm, paper §2.2).
type PropagateResult struct {
	// Evaluations is the number of constraint evaluations this run
	// performed (the paper's CAD-resource metric).
	Evaluations int64
	// Revisions is the number of HC4 revises executed.
	Revisions int
	// Violated lists constraints found Violated, in insertion order.
	Violated []string
	// Narrowed lists properties whose feasible subspace shrank.
	Narrowed []string
	// Emptied lists properties whose feasible subspace became empty
	// (every remaining value found infeasible).
	Emptied []string
	// Capped is true when MaxRevisions stopped the run early.
	Capped bool
}

// propScratch is the reusable propagation workspace of one network:
// the int-indexed worklist state and per-property marks that one run
// of Propagate needs, plus the per-constraint shadow trees for
// allocation-free HC4 revises. It is lazily allocated, grown when the
// network grows, and never shared between networks.
type propScratch struct {
	// queue is the constraint-id worklist; head indexes the next pop.
	queue []int
	// inQueue/visits are per constraint id.
	inQueue []bool
	visits  []int
	// narrowed/emptied/revMark/pre are per property id. narrowed and
	// emptied accumulate over a run; revMark marks the arguments
	// changed by the current revise (revList holds them for clearing).
	narrowed []bool
	emptied  []bool
	revMark  []bool
	revList  []int
	pre      []interval.Interval
	// shadows holds the reusable HC4 forward trees per constraint id;
	// they persist across runs.
	shadows []*expr.Shadow
}

// getScratch returns the network's propagation workspace, grown to the
// current structure size with per-run state cleared.
func (n *Network) getScratch() *propScratch {
	sc := n.scratch
	if sc == nil {
		sc = &propScratch{}
		n.scratch = sc
	}
	nc, np := len(n.conList), len(n.propList)
	if cap(sc.queue) < nc {
		sc.queue = make([]int, 0, nc*2)
	}
	sc.queue = sc.queue[:0]
	if len(sc.inQueue) < nc {
		sc.inQueue = make([]bool, nc)
		sc.visits = make([]int, nc)
	} else {
		for i := 0; i < nc; i++ {
			sc.inQueue[i] = false
			sc.visits[i] = 0
		}
	}
	if len(sc.shadows) < nc {
		shadows := make([]*expr.Shadow, nc)
		copy(shadows, sc.shadows)
		sc.shadows = shadows
	}
	if len(sc.narrowed) < np {
		sc.narrowed = make([]bool, np)
		sc.emptied = make([]bool, np)
		sc.revMark = make([]bool, np)
		sc.pre = make([]interval.Interval, np)
	} else {
		for i := 0; i < np; i++ {
			sc.narrowed[i] = false
			sc.emptied[i] = false
			sc.revMark[i] = false
		}
	}
	sc.revList = sc.revList[:0]
	return sc
}

// shadowFor returns the reusable HC4 shadow of constraint ci, building
// it from the compiled expression on first use.
func (n *Network) shadowFor(sc *propScratch, ci int) *expr.Shadow {
	if s := sc.shadows[ci]; s != nil {
		return s
	}
	s := expr.NewShadow(n.compiled[ci])
	sc.shadows[ci] = s
	return s
}

// propagationBox adapts the network to expr.Box for HC4 narrowing.
// Narrowing applies to feasible subspaces of unbound numeric
// properties; bound properties present their point value and reject
// narrowing below it (an impossible requirement surfaces as constraint
// violation, not domain change). Every SetDomain call — effective or
// not — marks the property as changed-this-revise, mirroring the
// changed-variable reporting of expr.Narrow.
type propagationBox struct {
	n  *Network
	sc *propScratch
}

func (b *propagationBox) Domain(name string) interval.Interval {
	return b.n.Domain(name)
}

func (b *propagationBox) DomainID(id int) interval.Interval {
	return b.n.propList[id].CurrentInterval()
}

func (b *propagationBox) SetDomain(name string, iv interval.Interval) {
	if id, ok := b.n.propIDs[name]; ok {
		b.SetDomainID(id, iv)
	}
}

func (b *propagationBox) SetDomainID(id int, iv interval.Interval) {
	sc := b.sc
	if !sc.revMark[id] {
		sc.revMark[id] = true
		sc.revList = append(sc.revList, id)
	}
	p := b.n.propList[id]
	if p.IsBound() || !p.IsNumeric() {
		return
	}
	if p.feasible.IsEmpty() {
		// Already emptied: CurrentInterval fell back to E_i, so the
		// narrowing applies to the initial range; keep it empty rather
		// than resurrecting values.
		return
	}
	nf := p.feasible.NarrowTo(iv)
	if !nf.Equal(p.feasible) {
		p.feasible = nf
		sc.narrowed[id] = true
	}
}

var _ expr.IndexedBox = (*propagationBox)(nil)

// Propagate runs constraint propagation to a fixpoint: it repeatedly
// evaluates constraint statuses and narrows feasible subspaces until no
// domain changes enough to matter (AC-3 over HC4 revises). Violated
// constraints do not narrow domains — their information content is the
// violation itself, which the designers resolve by changing bound
// values (§2.3.3).
//
// The worklist, visit counts, and per-property marks live in a
// reusable int-indexed workspace owned by the network, so repeated
// runs perform no steady-state allocation.
func (n *Network) Propagate(opts PropagateOptions) PropagateResult {
	opts = opts.withDefaults()

	res := PropagateResult{}
	startEvals := n.evals
	tr := n.tracer
	var traceStart int64
	if tr.Enabled() {
		traceStart = tr.Now()
	}
	sc := n.getScratch()
	box := &propagationBox{n: n, sc: sc}

	// Worklist of constraint ids in insertion order; inQueue avoids
	// duplicates. head indexes the next pop (the queue slice only
	// grows; popped entries are left behind).
	for ci := range n.conList {
		sc.queue = append(sc.queue, ci)
		sc.inQueue[ci] = true
	}
	head := 0

	for head < len(sc.queue) {
		if res.Revisions >= opts.MaxRevisions {
			res.Capped = true
			break
		}
		ci := sc.queue[head]
		head++
		sc.inQueue[ci] = false
		c := n.conList[ci]
		sc.visits[ci]++

		res.Revisions++
		n.evals++ // each revise evaluates the constraint once

		status := statusFromDiff(expr.EvalInterval(n.compiled[ci], n), c.Rel)
		n.status[ci] = status
		if tr.FullDetail() {
			tr.Emit(trace.Event{Kind: trace.KindRevise, Name: c.Name, Evals: 1})
		}
		if DebugHook != nil && status == Violated {
			DebugHook("status-violated", c, n)
		}
		if status == Violated {
			// Every combination of the arguments' current values falls
			// outside the relation, so each unbound argument's remaining
			// feasible values are all infeasible (§2.3.1: v_F keeps only
			// values not found infeasible). Bound arguments are the
			// designers' responsibility — the violation itself is their
			// signal (§2.3.3).
			for _, aid := range n.conArgs[ci] {
				p := n.propList[aid]
				if p.IsBound() || !p.IsNumeric() || p.feasible.IsEmpty() {
					continue
				}
				p.feasible = domain.Empty(p.feasible.Kind())
				sc.narrowed[aid] = true
				sc.emptied[aid] = true
			}
			continue
		}
		if status == Satisfied {
			// A constraint satisfied for every combination of current
			// values cannot exclude any of them; narrowing is a no-op.
			continue
		}

		// Record pre-widths to apply the minimum-shrink re-enqueue test.
		for _, aid := range n.conArgs[ci] {
			sc.pre[aid] = n.propList[aid].CurrentInterval()
		}

		// One HC4 revise; NE constraints impose no narrowing.
		want, hasWant := c.requiredDiff()
		if !hasWant {
			continue
		}
		// Reset the per-revise changed marks, then narrow.
		for _, id := range sc.revList {
			sc.revMark[id] = false
		}
		sc.revList = sc.revList[:0]
		if !n.shadowFor(sc, ci).Narrow(want, box) {
			if DebugHook != nil {
				DebugHook("narrow-inconsistent", c, n)
			}
			// No combination of remaining values can satisfy c even
			// though the status test was inconclusive; treat as violated
			// for designers (they must move some bound value).
			n.status[ci] = Violated
			continue
		}

		// Process changed arguments in the constraint's (sorted)
		// argument order: the enqueue order below decides the revise
		// order of the whole run, and metrics must be reproducible
		// run-to-run.
		for _, aid := range n.conArgs[ci] {
			if !sc.revMark[aid] {
				continue
			}
			p := n.propList[aid]
			if p.feasible.IsEmpty() && !sc.emptied[aid] {
				sc.emptied[aid] = true
			}
			if !significantShrink(sc.pre[aid], p.CurrentInterval(), opts.MinShrink) && !p.feasible.IsEmpty() {
				continue
			}
			for _, nb := range n.byProp[aid] {
				if nb != ci && !sc.inQueue[nb] && sc.visits[nb] < opts.MaxVisits {
					sc.inQueue[nb] = true
					sc.queue = append(sc.queue, nb)
				}
			}
		}
	}

	res.Evaluations = n.evals - startEvals
	for id, ok := range sc.narrowed {
		if ok {
			res.Narrowed = append(res.Narrowed, n.propList[id].Name)
		}
	}
	sort.Strings(res.Narrowed)
	for id, ok := range sc.emptied {
		if ok {
			res.Emptied = append(res.Emptied, n.propList[id].Name)
		}
	}
	sort.Strings(res.Emptied)
	for ci, s := range n.status {
		if s == Violated {
			res.Violated = append(res.Violated, n.conList[ci].Name)
		}
	}
	if tr.Enabled() {
		tr.Emit(trace.Event{
			Kind:      trace.KindPropagate,
			Revisions: res.Revisions,
			Evals:     res.Evaluations,
			Narrowed:  len(res.Narrowed),
			Emptied:   len(res.Emptied),
			Capped:    res.Capped,
			DurNanos:  tr.Now() - traceStart,
		})
	}
	return res
}

// DebugHook is a test-only observation point for violation decisions.
var DebugHook func(reason string, c *Constraint, n *Network)

// significantShrink reports whether the domain contraction from pre to
// post is large enough (relative to pre's width) to justify waking the
// neighbouring constraints again.
func significantShrink(pre, post interval.Interval, minShrink float64) bool {
	if post.IsEmpty() && !pre.IsEmpty() {
		return true
	}
	pw := pre.Width()
	if pw == 0 {
		return false
	}
	return (pw - post.Width()) > minShrink*pw
}

// FeasibleValue reports whether v lies in prop's feasible subspace.
func (n *Network) FeasibleValue(prop string, v domain.Value) bool {
	p := n.Property(prop)
	if p == nil {
		return false
	}
	return p.feasible.Contains(v)
}
