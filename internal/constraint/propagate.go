package constraint

import (
	"math"
	"sort"

	"repro/internal/domain"
	"repro/internal/expr"
	"repro/internal/interval"
	"repro/internal/trace"
)

// Defaults for PropagateOptions fields left at zero.
const (
	// DefaultMaxRevisions bounds the total number of constraint revises
	// in one propagation run.
	DefaultMaxRevisions = 2000
	// DefaultMinShrink is the minimum relative width reduction for a
	// narrowing to count as a change worth re-enqueueing neighbours:
	// 1% of the current width. Design guidance needs windows, not tight
	// enclosures, and the asymptotic tail of interval fixpoints is
	// where the evaluation budget disappears.
	DefaultMinShrink = 0.01
	// DefaultMaxVisits caps how often a single constraint is revised in
	// one propagation run.
	DefaultMaxVisits = 12
)

// PropagateOptions tunes the fixpoint propagation.
type PropagateOptions struct {
	// MaxRevisions bounds the total number of constraint revises; 0
	// means the default (DefaultMaxRevisions, 2000). The bound exists
	// because continuous domains can contract asymptotically (interval
	// propagation is only guaranteed to converge in the limit). Large
	// networks need a proportionally larger budget: the default suits
	// the paper-scale scenarios, not a 10⁴-property grid.
	MaxRevisions int
	// MinShrink is the minimum relative width reduction for a narrowing
	// to count as a change worth re-enqueueing neighbours for; 0 means
	// the default (DefaultMinShrink, 1%).
	MinShrink float64
	// MaxVisits caps how often a single constraint is revised in one
	// propagation run; 0 means the default (DefaultMaxVisits, 12).
	// Equality chains can contract geometrically — each revise
	// shrinking a fixed fraction — so a relative-shrink threshold alone
	// never converges.
	MaxVisits int
	// Parallelism selects the propagation engine. 0 or 1 keeps the
	// sequential FIFO engine, whose revise schedule — and therefore
	// every metric — is bit-for-bit what it has always been. Values > 1
	// select the deterministic round engine (propagate_parallel.go),
	// which revises independent constraints of one round concurrently
	// on up to Parallelism goroutines. The round engine's result is a
	// function of the network alone, not of Parallelism: any two values
	// > 1 (and > 1 on any GOMAXPROCS) produce identical windows,
	// statuses, and counters. Its fixpoint can differ from the
	// sequential engine's within MinShrink tolerance, so the two
	// engines' runs are not interchangeable mid-session.
	Parallelism int
	// Incremental seeds the worklist from the dirty property set instead
	// of revisiting the whole network. An incremental run owns the
	// initial reset: Propagate{Incremental: true} is equivalent to
	// ResetFeasible followed by a full Propagate with the same options —
	// bit-identical windows and statuses — but only resets and revisits
	// the regions (regions.go) containing a property whose binding
	// changed since the last incremental fixpoint. Structural edits,
	// Restore, CloneInto, ResetFeasible, a capped run, or changed
	// options all invalidate the fixpoint marker and force the next
	// incremental run to fall back to the full reset-and-propagate.
	// Evaluations/Revisions/Narrowed/Emptied then describe only the
	// re-propagated regions; Violated and the network state are global.
	//
	// Only binding changes made through the Network API (Bind, BindReal,
	// Unbind) are tracked; callers that mutate Property state directly
	// must not opt in.
	Incremental bool
	// Priority orders the worklist by largest expected narrowing first —
	// a constraint woken by a bigger relative shrink of one of its
	// arguments is revised earlier — with ties broken by ascending
	// constraint id for determinism. The default (false) keeps the
	// insertion-order FIFO schedule that the differential corpus pins.
	// Priority applies to the sequential engine; the round engine has
	// its own (round) order.
	Priority bool
}

// withDefaults resolves zero fields to the package defaults.
func (o PropagateOptions) withDefaults() PropagateOptions {
	if o.MaxRevisions <= 0 {
		o.MaxRevisions = DefaultMaxRevisions
	}
	if o.MinShrink <= 0 {
		o.MinShrink = DefaultMinShrink
	}
	if o.MaxVisits <= 0 {
		o.MaxVisits = DefaultMaxVisits
	}
	return o
}

// samePropagationParams reports whether two resolved option sets produce
// the same fixpoint semantics, which is what lets an incremental run
// reuse the previous run's marker. Parallelism collapses to the engine
// choice: all Parallelism>1 values share one fixpoint.
func samePropagationParams(a, b PropagateOptions) bool {
	return a.MaxRevisions == b.MaxRevisions &&
		a.MinShrink == b.MinShrink &&
		a.MaxVisits == b.MaxVisits &&
		a.Priority == b.Priority &&
		(a.Parallelism > 1) == (b.Parallelism > 1)
}

// PropagateResult summarizes one propagation run (one execution of the
// DCM's constraint propagation algorithm, paper §2.2).
type PropagateResult struct {
	// Evaluations is the number of constraint evaluations this run
	// performed (the paper's CAD-resource metric).
	Evaluations int64
	// Revisions is the number of HC4 revises executed.
	Revisions int
	// Violated lists constraints found Violated, in insertion order.
	Violated []string
	// Narrowed lists properties whose feasible subspace shrank.
	Narrowed []string
	// Emptied lists properties whose feasible subspace became empty
	// (every remaining value found infeasible).
	Emptied []string
	// Capped is true when MaxRevisions stopped the run early.
	Capped bool
}

// prioEntry is one max-heap element of the priority worklist.
type prioEntry struct {
	pri float64
	ci  int
}

// prioLess orders the priority worklist: larger expected narrowing
// first, ties broken by ascending constraint id.
func prioLess(a, b prioEntry) bool {
	if a.pri != b.pri {
		return a.pri > b.pri
	}
	return a.ci < b.ci
}

// propScratch is the reusable propagation workspace of one network:
// the int-indexed worklist state and per-property marks that one run
// of Propagate needs, plus the per-constraint shadow trees for
// allocation-free HC4 revises. It is lazily allocated, grown when the
// network grows, and never shared between networks.
type propScratch struct {
	// queue is the constraint-id worklist; head indexes the next pop.
	queue []int
	// prio is the max-heap worklist used when PropagateOptions.Priority
	// is set (same membership discipline as queue, ordered by prioLess).
	prio []prioEntry
	// inQueue/visits are per constraint id.
	inQueue []bool
	visits  []int
	// narrowed/emptied/revMark/pre are per property id. narrowed and
	// emptied accumulate over a run; revMark marks the arguments
	// changed by the current revise (revList holds them for clearing).
	narrowed []bool
	emptied  []bool
	revMark  []bool
	revList  []int
	pre      []interval.Interval
	// regionMark/regionList collect the dirty regions of an incremental
	// run (cleared after seeding).
	regionMark []bool
	regionList []int
	// shadows holds the reusable HC4 forward trees per constraint id;
	// they persist across runs.
	shadows []*expr.Shadow
	// par holds the round engine's extra workspace (propagate_parallel.go),
	// allocated on first parallel run.
	par *parScratch
}

// getScratch returns the network's propagation workspace, grown to the
// current structure size with per-run state cleared.
func (n *Network) getScratch() *propScratch {
	sc := n.scratch
	if sc == nil {
		sc = &propScratch{}
		n.scratch = sc
	}
	nc, np := len(n.conList), len(n.propList)
	if cap(sc.queue) < nc {
		sc.queue = make([]int, 0, nc*2)
	}
	sc.queue = sc.queue[:0]
	sc.prio = sc.prio[:0]
	if len(sc.inQueue) < nc {
		sc.inQueue = make([]bool, nc)
		sc.visits = make([]int, nc)
	} else {
		for i := 0; i < nc; i++ {
			sc.inQueue[i] = false
			sc.visits[i] = 0
		}
	}
	if len(sc.shadows) < nc {
		shadows := make([]*expr.Shadow, nc)
		copy(shadows, sc.shadows)
		sc.shadows = shadows
	}
	if len(sc.narrowed) < np {
		sc.narrowed = make([]bool, np)
		sc.emptied = make([]bool, np)
		sc.revMark = make([]bool, np)
		sc.pre = make([]interval.Interval, np)
	} else {
		for i := 0; i < np; i++ {
			sc.narrowed[i] = false
			sc.emptied[i] = false
			sc.revMark[i] = false
		}
	}
	sc.revList = sc.revList[:0]
	return sc
}

// shadowFor returns the reusable HC4 shadow of constraint ci, building
// it from the compiled expression on first use.
func (n *Network) shadowFor(sc *propScratch, ci int) *expr.Shadow {
	if s := sc.shadows[ci]; s != nil {
		return s
	}
	s := expr.NewShadow(n.compiled[ci])
	sc.shadows[ci] = s
	return s
}

// propagationBox adapts the network to expr.Box for HC4 narrowing.
// Narrowing applies to feasible subspaces of unbound numeric
// properties; bound properties present their point value and reject
// narrowing below it (an impossible requirement surfaces as constraint
// violation, not domain change). Every SetDomain call — effective or
// not — marks the property as changed-this-revise, mirroring the
// changed-variable reporting of expr.Narrow.
type propagationBox struct {
	n  *Network
	sc *propScratch
}

func (b *propagationBox) Domain(name string) interval.Interval {
	return b.n.Domain(name)
}

func (b *propagationBox) DomainID(id int) interval.Interval {
	return b.n.propList[id].CurrentInterval()
}

func (b *propagationBox) SetDomain(name string, iv interval.Interval) {
	if id, ok := b.n.propIDs[name]; ok {
		b.SetDomainID(id, iv)
	}
}

func (b *propagationBox) SetDomainID(id int, iv interval.Interval) {
	sc := b.sc
	if !sc.revMark[id] {
		sc.revMark[id] = true
		sc.revList = append(sc.revList, id)
	}
	p := b.n.propList[id]
	if p.IsBound() || !p.IsNumeric() {
		return
	}
	if p.feasible.IsEmpty() {
		// Already emptied: CurrentInterval fell back to E_i, so the
		// narrowing applies to the initial range; keep it empty rather
		// than resurrecting values.
		return
	}
	nf := p.feasible.NarrowTo(iv)
	if !nf.Equal(p.feasible) {
		p.feasible = nf
		sc.narrowed[id] = true
	}
}

var _ expr.IndexedBox = (*propagationBox)(nil)

// canIncremental reports whether the fixpoint marker lets an
// incremental run skip regions without dirty properties.
func (n *Network) canIncremental(opts PropagateOptions) bool {
	return n.fixValid && n.fixGen == n.gen && !n.allDirty &&
		samePropagationParams(opts, n.fixOpts)
}

// seedWorklist fills the scratch worklist for one run: every constraint
// for a full run, or — when the incremental fixpoint marker holds —
// only the constraints of regions containing a dirty property, after
// resetting exactly those regions' feasible subspaces to E_i. Because a
// revise reads and writes only its own region, the skipped regions
// already hold the windows a full reset-and-propagate would recompute
// for them, and the seeded regions rerun the exact sub-schedule the
// full run would give them (the full schedule restricted to a region is
// determined by that region's seeds and state alone). Seeds are pushed
// in ascending constraint id order either way — the same order a full
// run seeds them in.
func (n *Network) seedWorklist(sc *propScratch, opts PropagateOptions) {
	if opts.Incremental {
		if n.canIncremental(opts) {
			rc := n.getRegionCache()
			if len(sc.regionMark) < len(rc.regionProps) {
				sc.regionMark = make([]bool, len(rc.regionProps))
			}
			sc.regionList = sc.regionList[:0]
			for _, pid := range n.dirtyList {
				r := rc.propRegion[pid]
				if !sc.regionMark[r] {
					sc.regionMark[r] = true
					sc.regionList = append(sc.regionList, r)
				}
			}
			sort.Ints(sc.regionList)
			for _, r := range sc.regionList {
				for _, pid := range rc.regionProps[r] {
					n.propList[pid].ResetFeasible()
				}
				for _, ci := range rc.regionCons[r] {
					sc.queue = append(sc.queue, ci)
					sc.inQueue[ci] = true
				}
			}
			for _, r := range sc.regionList {
				sc.regionMark[r] = false
			}
			return
		}
		// Marker invalid: this entry point owns the reset, so fall back
		// to the full reset-and-propagate it is defined against.
		n.ResetFeasible()
	}
	for ci := range n.conList {
		sc.queue = append(sc.queue, ci)
		sc.inQueue[ci] = true
	}
}

// noteFixpoint maintains the incremental marker after a run. Only
// incremental runs establish it: they own the initial reset, so their
// result is a reset-based fixpoint by construction. A plain run narrows
// from whatever state the caller prepared, which the marker cannot
// describe.
func (n *Network) noteFixpoint(opts PropagateOptions, res *PropagateResult) {
	if !opts.Incremental {
		n.fixValid = false
		return
	}
	n.clearDirty()
	n.fixValid = !res.Capped
	n.fixGen = n.gen
	n.fixOpts = opts
}

// prioSeed moves the FIFO seeds into the priority heap with infinite
// priority. Equal priorities with ascending ids already satisfy the
// heap order, so the copy is the heap.
func (sc *propScratch) prioSeed() {
	for _, ci := range sc.queue {
		sc.prio = append(sc.prio, prioEntry{pri: math.Inf(1), ci: ci})
	}
	sc.queue = sc.queue[:0]
}

// prioPush inserts one entry into the priority heap.
func (sc *propScratch) prioPush(e prioEntry) {
	sc.prio = append(sc.prio, e)
	i := len(sc.prio) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !prioLess(sc.prio[i], sc.prio[p]) {
			break
		}
		sc.prio[i], sc.prio[p] = sc.prio[p], sc.prio[i]
		i = p
	}
}

// prioPop removes and returns the highest-priority constraint id.
func (sc *propScratch) prioPop() int {
	top := sc.prio[0].ci
	last := len(sc.prio) - 1
	sc.prio[0] = sc.prio[last]
	sc.prio = sc.prio[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(sc.prio) && prioLess(sc.prio[l], sc.prio[best]) {
			best = l
		}
		if r < len(sc.prio) && prioLess(sc.prio[r], sc.prio[best]) {
			best = r
		}
		if best == i {
			return top
		}
		sc.prio[i], sc.prio[best] = sc.prio[best], sc.prio[i]
		i = best
	}
}

// Propagate runs constraint propagation to a fixpoint: it repeatedly
// evaluates constraint statuses and narrows feasible subspaces until no
// domain changes enough to matter (AC-3 over HC4 revises). Violated
// constraints do not narrow domains — their information content is the
// violation itself, which the designers resolve by changing bound
// values (§2.3.3).
//
// The worklist, visit counts, and per-property marks live in a
// reusable int-indexed workspace owned by the network, so repeated
// runs perform no steady-state allocation. Options select the engine:
// the default sequential FIFO, the priority-ordered sequential variant
// (Priority), the deterministic parallel round engine (Parallelism>1),
// and dirty-set incremental seeding (Incremental) — see the
// PropagateOptions fields for the semantics of each.
func (n *Network) Propagate(opts PropagateOptions) PropagateResult {
	opts = opts.withDefaults()
	if opts.Parallelism > 1 {
		return n.propagateParallel(opts)
	}
	return n.propagateSeq(opts)
}

// propagateSeq is the sequential engine (FIFO or priority worklist).
func (n *Network) propagateSeq(opts PropagateOptions) PropagateResult {
	res := PropagateResult{}
	startEvals := n.evals
	tr := n.tracer
	var traceStart int64
	if tr.Enabled() {
		traceStart = tr.Now()
	}
	sc := n.getScratch()
	box := &propagationBox{n: n, sc: sc}

	// Worklist of constraint ids in insertion order; inQueue avoids
	// duplicates. head indexes the next pop (the queue slice only
	// grows; popped entries are left behind).
	n.seedWorklist(sc, opts)
	usePrio := opts.Priority
	if usePrio {
		sc.prioSeed()
	}
	head := 0

	for {
		if usePrio {
			if len(sc.prio) == 0 {
				break
			}
		} else if head >= len(sc.queue) {
			break
		}
		if res.Revisions >= opts.MaxRevisions {
			res.Capped = true
			break
		}
		var ci int
		if usePrio {
			ci = sc.prioPop()
		} else {
			ci = sc.queue[head]
			head++
		}
		sc.inQueue[ci] = false
		c := n.conList[ci]
		sc.visits[ci]++

		res.Revisions++
		n.evals++ // each revise evaluates the constraint once

		status := statusFromDiff(expr.EvalInterval(n.compiled[ci], n), c.Rel)
		n.status[ci] = status
		if tr.FullDetail() {
			tr.Emit(trace.Event{Kind: trace.KindRevise, Name: c.Name, Evals: 1})
		}
		if DebugHook != nil && status == Violated {
			DebugHook("status-violated", c, n)
		}
		if status == Violated {
			// Every combination of the arguments' current values falls
			// outside the relation, so each unbound argument's remaining
			// feasible values are all infeasible (§2.3.1: v_F keeps only
			// values not found infeasible). Bound arguments are the
			// designers' responsibility — the violation itself is their
			// signal (§2.3.3).
			for _, aid := range n.conArgs[ci] {
				p := n.propList[aid]
				if p.IsBound() || !p.IsNumeric() || p.feasible.IsEmpty() {
					continue
				}
				p.feasible = domain.Empty(p.feasible.Kind())
				sc.narrowed[aid] = true
				sc.emptied[aid] = true
			}
			continue
		}
		if status == Satisfied {
			// A constraint satisfied for every combination of current
			// values cannot exclude any of them; narrowing is a no-op.
			continue
		}

		// Record pre-widths to apply the minimum-shrink re-enqueue test.
		for _, aid := range n.conArgs[ci] {
			sc.pre[aid] = n.propList[aid].CurrentInterval()
		}

		// One HC4 revise; NE constraints impose no narrowing.
		want, hasWant := c.requiredDiff()
		if !hasWant {
			continue
		}
		// Reset the per-revise changed marks, then narrow.
		for _, id := range sc.revList {
			sc.revMark[id] = false
		}
		sc.revList = sc.revList[:0]
		if !n.shadowFor(sc, ci).Narrow(want, box) {
			if DebugHook != nil {
				DebugHook("narrow-inconsistent", c, n)
			}
			// No combination of remaining values can satisfy c even
			// though the status test was inconclusive; treat as violated
			// for designers (they must move some bound value).
			n.status[ci] = Violated
			continue
		}

		// Process changed arguments in the constraint's (sorted)
		// argument order: the enqueue order below decides the revise
		// order of the whole run, and metrics must be reproducible
		// run-to-run.
		for _, aid := range n.conArgs[ci] {
			if !sc.revMark[aid] {
				continue
			}
			p := n.propList[aid]
			if p.feasible.IsEmpty() && !sc.emptied[aid] {
				sc.emptied[aid] = true
			}
			if !significantShrink(sc.pre[aid], p.CurrentInterval(), opts.MinShrink) && !p.feasible.IsEmpty() {
				continue
			}
			var pri float64
			if usePrio {
				// The wake strength — the relative shrink of the changed
				// argument — is the expected-narrowing estimate for the
				// constraints it wakes.
				pri = math.Inf(1)
				if !p.feasible.IsEmpty() {
					if pw := sc.pre[aid].Width(); pw > 0 {
						pri = (pw - p.CurrentInterval().Width()) / pw
					}
				}
			}
			for _, nb := range n.byProp[aid] {
				if nb != ci && !sc.inQueue[nb] && sc.visits[nb] < opts.MaxVisits {
					sc.inQueue[nb] = true
					if usePrio {
						sc.prioPush(prioEntry{pri: pri, ci: nb})
					} else {
						sc.queue = append(sc.queue, nb)
					}
				}
			}
		}
	}

	res.Evaluations = n.evals - startEvals
	for id, ok := range sc.narrowed {
		if ok {
			res.Narrowed = append(res.Narrowed, n.propList[id].Name)
		}
	}
	sort.Strings(res.Narrowed)
	for id, ok := range sc.emptied {
		if ok {
			res.Emptied = append(res.Emptied, n.propList[id].Name)
		}
	}
	sort.Strings(res.Emptied)
	for ci, s := range n.status {
		if s == Violated {
			res.Violated = append(res.Violated, n.conList[ci].Name)
		}
	}
	n.noteFixpoint(opts, &res)
	if tr.Enabled() {
		tr.Emit(trace.Event{
			Kind:      trace.KindPropagate,
			Revisions: res.Revisions,
			Evals:     res.Evaluations,
			Narrowed:  len(res.Narrowed),
			Emptied:   len(res.Emptied),
			Capped:    res.Capped,
			DurNanos:  tr.Now() - traceStart,
		})
	}
	return res
}

// DebugHook is a test-only observation point for violation decisions.
var DebugHook func(reason string, c *Constraint, n *Network)

// significantShrink reports whether the domain contraction from pre to
// post is large enough (relative to pre's width) to justify waking the
// neighbouring constraints again.
func significantShrink(pre, post interval.Interval, minShrink float64) bool {
	if post.IsEmpty() && !pre.IsEmpty() {
		return true
	}
	pw := pre.Width()
	if pw == 0 {
		return false
	}
	return (pw - post.Width()) > minShrink*pw
}

// FeasibleValue reports whether v lies in prop's feasible subspace.
func (n *Network) FeasibleValue(prop string, v domain.Value) bool {
	p := n.Property(prop)
	if p == nil {
		return false
	}
	return p.feasible.Contains(v)
}
