package constraint

import (
	"sort"

	"repro/internal/domain"
	"repro/internal/interval"
)

// PropagateOptions tunes the fixpoint propagation.
type PropagateOptions struct {
	// MaxRevisions bounds the total number of constraint revises; 0
	// means the default (10000). The bound exists because continuous
	// domains can contract asymptotically (interval propagation is only
	// guaranteed to converge in the limit).
	MaxRevisions int
	// MinShrink is the minimum relative width reduction for a narrowing
	// to count as a change worth re-enqueueing neighbours for; 0 means
	// the default (1e-6).
	MinShrink float64
	// MaxVisits caps how often a single constraint is revised in one
	// propagation run; 0 means the default (12). Equality chains can
	// contract geometrically — each revise shrinking a fixed fraction —
	// so a relative-shrink threshold alone never converges.
	MaxVisits int
}

// PropagateResult summarizes one propagation run (one execution of the
// DCM's constraint propagation algorithm, paper §2.2).
type PropagateResult struct {
	// Evaluations is the number of constraint evaluations this run
	// performed (the paper's CAD-resource metric).
	Evaluations int64
	// Revisions is the number of HC4 revises executed.
	Revisions int
	// Violated lists constraints found Violated, in insertion order.
	Violated []string
	// Narrowed lists properties whose feasible subspace shrank.
	Narrowed []string
	// Emptied lists properties whose feasible subspace became empty
	// (every remaining value found infeasible).
	Emptied []string
	// Capped is true when MaxRevisions stopped the run early.
	Capped bool
}

// propagationBox adapts the network to expr.Box for HC4 narrowing.
// Narrowing applies to feasible subspaces of unbound numeric
// properties; bound properties present their point value and reject
// narrowing below it (an impossible requirement surfaces as constraint
// violation, not domain change).
type propagationBox struct {
	n        *Network
	narrowed map[string]bool
}

func (b *propagationBox) Domain(name string) interval.Interval {
	return b.n.Domain(name)
}

func (b *propagationBox) SetDomain(name string, iv interval.Interval) {
	p := b.n.props[name]
	if p == nil || p.IsBound() || !p.IsNumeric() {
		return
	}
	if p.feasible.IsEmpty() {
		// Already emptied: CurrentInterval fell back to E_i, so the
		// narrowing applies to the initial range; keep it empty rather
		// than resurrecting values.
		return
	}
	nf := p.feasible.NarrowTo(iv)
	if !nf.Equal(p.feasible) {
		p.feasible = nf
		b.narrowed[name] = true
	}
}

// Propagate runs constraint propagation to a fixpoint: it repeatedly
// evaluates constraint statuses and narrows feasible subspaces until no
// domain changes enough to matter (AC-3 over HC4 revises). Violated
// constraints do not narrow domains — their information content is the
// violation itself, which the designers resolve by changing bound
// values (§2.3.3).
func (n *Network) Propagate(opts PropagateOptions) PropagateResult {
	maxRev := opts.MaxRevisions
	if maxRev <= 0 {
		maxRev = 2000
	}
	minShrink := opts.MinShrink
	if minShrink <= 0 {
		// 1% of the current width: design guidance needs windows, not
		// tight enclosures, and the asymptotic tail of interval
		// fixpoints is where the evaluation budget disappears.
		minShrink = 0.01
	}

	maxVisits := opts.MaxVisits
	if maxVisits <= 0 {
		maxVisits = 12
	}

	res := PropagateResult{}
	startEvals := n.evals
	box := &propagationBox{n: n, narrowed: map[string]bool{}}
	emptied := map[string]bool{}
	visits := make(map[string]int, len(n.cons))

	// Worklist of constraint names; inQueue avoids duplicates.
	queue := append([]string(nil), n.conOrder...)
	inQueue := make(map[string]bool, len(queue))
	for _, cn := range queue {
		inQueue[cn] = true
	}

	for len(queue) > 0 {
		if res.Revisions >= maxRev {
			res.Capped = true
			break
		}
		cn := queue[0]
		queue = queue[1:]
		inQueue[cn] = false
		c := n.cons[cn]
		visits[cn]++

		res.Revisions++
		n.evals++ // each revise evaluates the constraint once

		status := c.StatusOver(n)
		n.status[cn] = status
		if DebugHook != nil && status == Violated {
			DebugHook("status-violated", c, n)
		}
		if status == Violated {
			// Every combination of the arguments' current values falls
			// outside the relation, so each unbound argument's remaining
			// feasible values are all infeasible (§2.3.1: v_F keeps only
			// values not found infeasible). Bound arguments are the
			// designers' responsibility — the violation itself is their
			// signal (§2.3.3).
			for _, a := range c.Args() {
				p := n.props[a]
				if p == nil || p.IsBound() || !p.IsNumeric() || p.feasible.IsEmpty() {
					continue
				}
				p.feasible = domain.Empty(p.feasible.Kind())
				box.narrowed[a] = true
				emptied[a] = true
			}
			continue
		}
		if status == Satisfied {
			// A constraint satisfied for every combination of current
			// values cannot exclude any of them; narrowing is a no-op.
			continue
		}

		// Record pre-widths to apply the minimum-shrink re-enqueue test.
		pre := map[string]interval.Interval{}
		for _, a := range c.Args() {
			pre[a] = n.Domain(a)
		}

		nres := c.Narrow(box)
		if nres.Inconsistent && DebugHook != nil {
			DebugHook("narrow-inconsistent", c, n)
		}
		if nres.Inconsistent {
			// No combination of remaining values can satisfy c even
			// though the status test was inconclusive; treat as violated
			// for designers (they must move some bound value).
			n.status[cn] = Violated
			continue
		}

		for _, a := range nres.Changed {
			p := n.props[a]
			if p == nil {
				continue
			}
			if p.feasible.IsEmpty() && !emptied[a] {
				emptied[a] = true
			}
			if !significantShrink(pre[a], n.Domain(a), minShrink) && !p.feasible.IsEmpty() {
				continue
			}
			for _, nb := range n.byProp[a] {
				if nb != cn && !inQueue[nb] && visits[nb] < maxVisits {
					inQueue[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}

	res.Evaluations = n.evals - startEvals
	for name := range box.narrowed {
		res.Narrowed = append(res.Narrowed, name)
	}
	sort.Strings(res.Narrowed)
	for name := range emptied {
		res.Emptied = append(res.Emptied, name)
	}
	sort.Strings(res.Emptied)
	for _, cn := range n.conOrder {
		if n.status[cn] == Violated {
			res.Violated = append(res.Violated, cn)
		}
	}
	return res
}

// DebugHook is a test-only observation point for violation decisions.
var DebugHook func(reason string, c *Constraint, n *Network)

// significantShrink reports whether the domain contraction from pre to
// post is large enough (relative to pre's width) to justify waking the
// neighbouring constraints again.
func significantShrink(pre, post interval.Interval, minShrink float64) bool {
	if post.IsEmpty() && !pre.IsEmpty() {
		return true
	}
	pw := pre.Width()
	if pw == 0 {
		return false
	}
	return (pw - post.Width()) > minShrink*pw
}

// FeasibleValue reports whether v lies in prop's feasible subspace.
func (n *Network) FeasibleValue(prop string, v domain.Value) bool {
	p, ok := n.props[prop]
	if !ok {
		return false
	}
	return p.feasible.Contains(v)
}
