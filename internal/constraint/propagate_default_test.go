package constraint

import (
	"testing"

	"repro/internal/domain"
)

// TestPropagateOptionDefaults pins the documented defaults: zero
// fields resolve to the package constants, and the revision cap's
// documented value (2000) matches the code.
func TestPropagateOptionDefaults(t *testing.T) {
	if DefaultMaxRevisions != 2000 {
		t.Errorf("DefaultMaxRevisions = %d, want 2000", DefaultMaxRevisions)
	}
	if DefaultMinShrink != 0.01 {
		t.Errorf("DefaultMinShrink = %g, want 0.01", DefaultMinShrink)
	}
	if DefaultMaxVisits != 12 {
		t.Errorf("DefaultMaxVisits = %d, want 12", DefaultMaxVisits)
	}

	got := PropagateOptions{}.withDefaults()
	if got.MaxRevisions != DefaultMaxRevisions {
		t.Errorf("zero MaxRevisions resolves to %d, want %d", got.MaxRevisions, DefaultMaxRevisions)
	}
	if got.MinShrink != DefaultMinShrink {
		t.Errorf("zero MinShrink resolves to %g, want %g", got.MinShrink, DefaultMinShrink)
	}
	if got.MaxVisits != DefaultMaxVisits {
		t.Errorf("zero MaxVisits resolves to %d, want %d", got.MaxVisits, DefaultMaxVisits)
	}

	// Explicit values survive.
	custom := PropagateOptions{MaxRevisions: 7, MinShrink: 0.5, MaxVisits: 3}.withDefaults()
	if custom != (PropagateOptions{MaxRevisions: 7, MinShrink: 0.5, MaxVisits: 3}) {
		t.Errorf("explicit options altered: %+v", custom)
	}
}

// TestPropagateRevisionCapDefault exercises the default cap end to end:
// a propagation with an explicit tiny cap must report Capped, while the
// same network under defaults must not (it is far below 2000 revises).
func TestPropagateRevisionCapDefault(t *testing.T) {
	build := func() *Network {
		n := NewNetwork()
		for _, name := range []string{"a", "b", "c"} {
			if err := n.AddProperty(NewProperty(name, domain.NewInterval(0, 100))); err != nil {
				t.Fatal(err)
			}
		}
		for _, c := range []*Constraint{
			MustParseConstraint("ab", "a <= b"),
			MustParseConstraint("bc", "b <= c"),
			MustParseConstraint("cap", "c <= 50"),
		} {
			if err := n.AddConstraint(c); err != nil {
				t.Fatal(err)
			}
		}
		return n
	}
	if res := build().Propagate(PropagateOptions{MaxRevisions: 1}); !res.Capped {
		t.Error("MaxRevisions=1 should cap the run")
	}
	if res := build().Propagate(PropagateOptions{}); res.Capped {
		t.Errorf("default cap (%d) unexpectedly reached after %d revisions",
			DefaultMaxRevisions, res.Revisions)
	}
}
