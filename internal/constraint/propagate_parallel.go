package constraint

import (
	"sort"
	"sync"

	"repro/internal/domain"
	"repro/internal/expr"
	"repro/internal/interval"
	"repro/internal/trace"
)

// The round engine (PropagateOptions.Parallelism > 1).
//
// The sequential engine's FIFO schedule is inherently serial: each
// revise reads the narrowings of every revise before it. To use more
// than one core without giving up reproducibility, the round engine
// switches to Jacobi-style iteration: it revises the whole worklist of
// one round against an immutable snapshot of the round-start domains,
// buffers the narrowings each revise proposes, and only then applies
// them. Because every proposal is an intersection against the same
// property, application order cannot matter — the merged domain is the
// snapshot intersected with all proposals — so the round's outcome is a
// function of the round's worklist and snapshot alone. Splitting the
// worklist across W workers changes nothing observable: workers own
// disjoint contiguous chunks, their proposal logs concatenate back into
// worklist order, and statuses/visit counts are per-constraint. The
// result is identical for every Parallelism > 1 and every GOMAXPROCS,
// which is what lets the size-sweep artifact compare worker counts
// honestly.
//
// The fixpoint can differ from the sequential engine's within MinShrink
// tolerance (Jacobi revises see older domains than Gauss-Seidel would),
// so the engines are not interchangeable mid-session; the differential
// corpus pins the sequential engine only.

// parallelInlineThreshold: rounds smaller than this are revised on the
// calling goroutine — goroutine handoff costs more than the revises.
// The threshold only moves work between goroutines, never changes the
// outcome.
const parallelInlineThreshold = 32

// proposal is one buffered domain change: intersect pid's feasible
// subspace with iv, or — for viol — empty it (violation semantics:
// emptying by violation does not by itself wake neighbours, matching
// the sequential engine).
type proposal struct {
	pid  int
	iv   interval.Interval
	viol bool
}

// pendEntry is one in-revise narrowing: later reads of the same
// property within the revise must see it (HC4 narrows a variable with
// multiple occurrences several times in one backward pass).
type pendEntry struct {
	pid int
	iv  interval.Interval
}

// parScratch is the round engine's reusable workspace.
type parScratch struct {
	// snap/snapEpoch/narrowable are the per-property round snapshot:
	// the hull every revise of the round reads, stamped lazily with the
	// round epoch. narrowable records whether the property can accept
	// narrowing (unbound, numeric, non-empty) as of round start.
	snap       []interval.Interval
	snapEpoch  []int64
	narrowable []bool
	epoch      int64
	// touched/narrowTouched/touchList collect the properties the round's
	// merge wrote (narrowTouched: by a narrowing proposal, the wake-
	// eligible kind).
	touched       []bool
	narrowTouched []bool
	touchList     []int
	// next/inNext build the next round's worklist.
	next   []int
	inNext []bool
	// workers are the reusable per-worker revise contexts.
	workers []*parWorker
	wg      sync.WaitGroup
}

// getPar returns the round-engine workspace, grown to the current
// structure size.
func (sc *propScratch) getPar(n *Network, parallelism int) *parScratch {
	ps := sc.par
	if ps == nil {
		ps = &parScratch{}
		sc.par = ps
	}
	np, nc := len(n.propList), len(n.conList)
	if len(ps.snap) < np {
		ps.snap = make([]interval.Interval, np)
		ps.snapEpoch = make([]int64, np)
		ps.narrowable = make([]bool, np)
		ps.touched = make([]bool, np)
		ps.narrowTouched = make([]bool, np)
	}
	if len(ps.inNext) < nc {
		ps.inNext = make([]bool, nc)
	}
	for len(ps.workers) < parallelism {
		ps.workers = append(ps.workers, &parWorker{n: n, sc: sc, ps: ps})
	}
	for _, w := range ps.workers {
		w.n, w.sc, w.ps = n, sc, ps
	}
	ps.touchList = ps.touchList[:0]
	ps.next = ps.next[:0]
	return ps
}

// parWorker revises one contiguous chunk of a round's worklist. It
// implements expr.IndexedBox against the round snapshot plus its own
// in-revise pending narrowings; effective narrowings are buffered as
// proposals instead of applied.
type parWorker struct {
	n     *Network
	sc    *propScratch
	ps    *parScratch
	props []proposal
	pend  []pendEntry
}

func (w *parWorker) Domain(name string) interval.Interval {
	if id, ok := w.n.propIDs[name]; ok {
		return w.DomainID(id)
	}
	return interval.Entire()
}

func (w *parWorker) DomainID(id int) interval.Interval {
	for i := len(w.pend) - 1; i >= 0; i-- {
		if w.pend[i].pid == id {
			return w.pend[i].iv
		}
	}
	if w.ps.snapEpoch[id] == w.ps.epoch {
		return w.ps.snap[id]
	}
	// Not an argument of any constraint in this round; nothing writes
	// property state mid-round, so the live read is safe.
	return w.n.propList[id].CurrentInterval()
}

func (w *parWorker) SetDomain(name string, iv interval.Interval) {
	if id, ok := w.n.propIDs[name]; ok {
		w.SetDomainID(id, iv)
	}
}

func (w *parWorker) SetDomainID(id int, iv interval.Interval) {
	if !w.ps.narrowable[id] {
		return
	}
	w.props = append(w.props, proposal{pid: id, iv: iv})
	w.pend = append(w.pend, pendEntry{pid: id, iv: iv})
}

var _ expr.IndexedBox = (*parWorker)(nil)

// run revises the chunk q. Statuses and visit bookkeeping touch only
// indices owned by this chunk; everything else is buffered.
func (w *parWorker) run(q []int) {
	n := w.n
	w.props = w.props[:0]
	for _, ci := range q {
		w.pend = w.pend[:0]
		c := n.conList[ci]
		status := statusFromDiff(expr.EvalInterval(n.compiled[ci], w), c.Rel)
		n.status[ci] = status
		if status == Violated {
			for _, aid := range n.conArgs[ci] {
				if w.ps.narrowable[aid] {
					w.props = append(w.props, proposal{pid: aid, viol: true})
				}
			}
			continue
		}
		if status == Satisfied {
			continue
		}
		want, hasWant := c.requiredDiff()
		if !hasWant {
			continue
		}
		if !n.shadowFor(w.sc, ci).Narrow(want, w) {
			n.status[ci] = Violated
		}
	}
}

// propagateParallel runs the round engine to a fixpoint. Seeding
// (including incremental dirty-region seeding) is shared with the
// sequential engine.
func (n *Network) propagateParallel(opts PropagateOptions) PropagateResult {
	res := PropagateResult{}
	startEvals := n.evals
	tr := n.tracer
	var traceStart int64
	if tr.Enabled() {
		traceStart = tr.Now()
	}
	sc := n.getScratch()
	n.seedWorklist(sc, opts)
	ps := sc.getPar(n, opts.Parallelism)
	queue := sc.queue

	for len(queue) > 0 {
		rem := opts.MaxRevisions - res.Revisions
		if rem <= 0 {
			res.Capped = true
			break
		}
		if len(queue) > rem {
			// Deterministic truncation: the worklist is id-sorted, so the
			// budget cuts the same tail at every worker count.
			queue = queue[:rem]
			res.Capped = true
		}

		// Round snapshot: stamp the hull and narrowability of every
		// argument of the round's constraints, and charge the visits.
		ps.epoch++
		for _, ci := range queue {
			sc.visits[ci]++
			for _, aid := range n.conArgs[ci] {
				if ps.snapEpoch[aid] != ps.epoch {
					ps.snapEpoch[aid] = ps.epoch
					p := n.propList[aid]
					ps.snap[aid] = p.CurrentInterval()
					ps.narrowable[aid] = !p.IsBound() && p.IsNumeric() && !p.feasible.IsEmpty()
				}
			}
		}
		res.Revisions += len(queue)
		n.evals += int64(len(queue))

		// Revise the round: contiguous chunks across workers. Chunk
		// boundaries move with the worker count, but the concatenation
		// of the workers' proposal logs is always worklist order.
		nw := 1
		if len(queue) >= parallelInlineThreshold && opts.Parallelism >= 2 {
			nw = min(opts.Parallelism, len(queue))
		}
		if nw == 1 {
			ps.workers[0].run(queue)
		} else {
			chunk := (len(queue) + nw - 1) / nw
			used := 0
			for i := 0; i < nw; i++ {
				lo := i * chunk
				hi := min(lo+chunk, len(queue))
				if lo >= hi {
					break
				}
				used++
				ps.wg.Add(1)
				go func(wk *parWorker, q []int) {
					defer ps.wg.Done()
					wk.run(q)
				}(ps.workers[i], queue[lo:hi])
			}
			ps.wg.Wait()
			nw = used
		}
		if tr.FullDetail() {
			for _, ci := range queue {
				tr.Emit(trace.Event{Kind: trace.KindRevise, Name: n.conList[ci].Name, Evals: 1})
			}
		}

		// Merge: apply proposals in worklist order. Intersections
		// commute, so this order is presentation, not semantics.
		for i := 0; i < nw; i++ {
			for _, pr := range ps.workers[i].props {
				p := n.propList[pr.pid]
				if !ps.touched[pr.pid] {
					ps.touched[pr.pid] = true
					ps.touchList = append(ps.touchList, pr.pid)
				}
				if pr.viol {
					if !p.feasible.IsEmpty() {
						p.feasible = domain.Empty(p.feasible.Kind())
						sc.narrowed[pr.pid] = true
						sc.emptied[pr.pid] = true
					}
					continue
				}
				ps.narrowTouched[pr.pid] = true
				if p.feasible.IsEmpty() {
					continue
				}
				nf := p.feasible.NarrowTo(pr.iv)
				if !nf.Equal(p.feasible) {
					p.feasible = nf
					sc.narrowed[pr.pid] = true
					if nf.IsEmpty() {
						sc.emptied[pr.pid] = true
					}
				}
			}
		}

		// Next round: neighbours of properties that shrank enough (or
		// were emptied by a narrowing), visit-capped, id-sorted.
		ps.next = ps.next[:0]
		for _, pid := range ps.touchList {
			wake := false
			if ps.narrowTouched[pid] {
				p := n.propList[pid]
				if p.feasible.IsEmpty() {
					wake = true
				} else {
					wake = significantShrink(ps.snap[pid], p.CurrentInterval(), opts.MinShrink)
				}
			}
			ps.touched[pid] = false
			ps.narrowTouched[pid] = false
			if !wake {
				continue
			}
			for _, nb := range n.byProp[pid] {
				if !ps.inNext[nb] && sc.visits[nb] < opts.MaxVisits {
					ps.inNext[nb] = true
					ps.next = append(ps.next, nb)
				}
			}
		}
		ps.touchList = ps.touchList[:0]
		if res.Capped {
			break
		}
		sort.Ints(ps.next)
		queue, ps.next = ps.next, queue
		for _, ci := range queue {
			ps.inNext[ci] = false
		}
	}

	res.Evaluations = n.evals - startEvals
	for id, ok := range sc.narrowed {
		if ok {
			res.Narrowed = append(res.Narrowed, n.propList[id].Name)
		}
	}
	sort.Strings(res.Narrowed)
	for id, ok := range sc.emptied {
		if ok {
			res.Emptied = append(res.Emptied, n.propList[id].Name)
		}
	}
	sort.Strings(res.Emptied)
	for ci, s := range n.status {
		if s == Violated {
			res.Violated = append(res.Violated, n.conList[ci].Name)
		}
	}
	n.noteFixpoint(opts, &res)
	if tr.Enabled() {
		tr.Emit(trace.Event{
			Kind:      trace.KindPropagate,
			Revisions: res.Revisions,
			Evals:     res.Evaluations,
			Narrowed:  len(res.Narrowed),
			Emptied:   len(res.Emptied),
			Capped:    res.Capped,
			DurNanos:  tr.Now() - traceStart,
		})
	}
	return res
}
