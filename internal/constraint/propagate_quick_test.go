package constraint

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/domain"
	"repro/internal/expr"
)

// buildRandomSatNet generates a random constraint network together with
// a witness point it is guaranteed to satisfy: constraints are built by
// evaluating random expressions at the witness and placing the
// thresholds with slack on the satisfied side.
func buildRandomSatNet(rng *rand.Rand, nProps, nCons int) (*Network, map[string]float64) {
	net := NewNetwork()
	witness := map[string]float64{}
	var names []string
	for i := 0; i < nProps; i++ {
		name := fmt.Sprintf("p%d", i)
		lo := rng.Float64() * 10
		hi := lo + 1 + rng.Float64()*50
		w := lo + (0.15+0.7*rng.Float64())*(hi-lo)
		if err := net.AddProperty(NewProperty(name, domain.NewInterval(lo, hi))); err != nil {
			panic(err)
		}
		witness[name] = w
		names = append(names, name)
	}
	env := expr.MapEnv(witness)
	made := 0
	for attempt := 0; made < nCons && attempt < nCons*20; attempt++ {
		node := randomPosExpr(rng, names, 2)
		val, err := expr.Eval(node, env)
		if err != nil || math.IsNaN(val) || math.IsInf(val, 0) || math.Abs(val) > 1e9 {
			continue
		}
		slack := 0.1 + rng.Float64()*math.Max(1, math.Abs(val))
		var src string
		if rng.Intn(2) == 0 {
			src = fmt.Sprintf("%s <= %g", node, val+slack)
		} else {
			src = fmt.Sprintf("%s >= %g", node, val-slack)
		}
		c, err := ParseConstraint(fmt.Sprintf("c%d", made), src)
		if err != nil {
			continue
		}
		if err := net.AddConstraint(c); err != nil {
			continue
		}
		made++
	}
	return net, witness
}

// randomPosExpr builds a random expression whose subtrees stay within
// the positive domains of sqrt/log.
func randomPosExpr(rng *rand.Rand, names []string, depth int) expr.Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(4) == 0 {
			return &expr.Num{Val: math.Round(rng.Float64()*200) / 10}
		}
		return &expr.Var{Name: names[rng.Intn(len(names))]}
	}
	switch rng.Intn(6) {
	case 0:
		return &expr.Binary{Op: '+', X: randomPosExpr(rng, names, depth-1), Y: randomPosExpr(rng, names, depth-1)}
	case 1:
		return &expr.Binary{Op: '-', X: randomPosExpr(rng, names, depth-1), Y: randomPosExpr(rng, names, depth-1)}
	case 2:
		return &expr.Binary{Op: '*', X: randomPosExpr(rng, names, depth-1), Y: randomPosExpr(rng, names, depth-1)}
	case 3:
		return &expr.Call{Fn: "sqrt", Args: []expr.Node{&expr.Var{Name: names[rng.Intn(len(names))]}}}
	case 4:
		return &expr.Call{Fn: "sqr", Args: []expr.Node{randomPosExpr(rng, names, depth-1)}}
	default:
		return &expr.Binary{Op: '/', X: randomPosExpr(rng, names, depth-1),
			Y: &expr.Num{Val: 1 + rng.Float64()*9}}
	}
}

// TestQuickPropagationPreservesWitness: for random satisfiable
// networks, propagation must neither flag violations nor narrow any
// feasible subspace past the witness — with all properties unbound,
// and with a random subset bound at the witness.
func TestQuickPropagationPreservesWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(1618))
	for trial := 0; trial < 60; trial++ {
		net, witness := buildRandomSatNet(rng, 3+rng.Intn(3), 2+rng.Intn(4))

		res := net.Propagate(PropagateOptions{})
		if len(res.Violated) > 0 {
			t.Fatalf("trial %d: satisfiable net flagged %v", trial, res.Violated)
		}
		for name, w := range witness {
			if !net.Property(name).Feasible().Contains(domain.Real(w)) {
				t.Fatalf("trial %d: propagation excluded witness %s=%v (feasible %v)",
					trial, name, w, net.Property(name).Feasible())
			}
		}

		// Bind a random subset at the witness and re-propagate.
		net.ResetFeasible()
		for name, w := range witness {
			if rng.Intn(2) == 0 {
				if err := net.BindReal(name, w); err != nil {
					t.Fatal(err)
				}
			}
		}
		res = net.Propagate(PropagateOptions{})
		if len(res.Violated) > 0 {
			t.Fatalf("trial %d (partial binding): flagged %v", trial, res.Violated)
		}
		for name, w := range witness {
			p := net.Property(name)
			if p.IsBound() {
				continue
			}
			if !p.Feasible().Contains(domain.Real(w)) {
				t.Fatalf("trial %d (partial binding): excluded witness %s=%v (feasible %v)",
					trial, name, w, p.Feasible())
			}
		}
	}
}

// TestQuickBoundWindowContainsWitness: the movement window of a bound
// property must contain the witness value when every other property
// sits at the witness.
func TestQuickBoundWindowContainsWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	for trial := 0; trial < 40; trial++ {
		net, witness := buildRandomSatNet(rng, 3+rng.Intn(2), 2+rng.Intn(3))
		for name, w := range witness {
			if err := net.BindReal(name, w); err != nil {
				t.Fatal(err)
			}
		}
		for name, w := range witness {
			win, _ := net.BoundWindow(name)
			if !win.Contains(w) {
				t.Fatalf("trial %d: window of %s = %v excludes its own witness %v",
					trial, name, win, w)
			}
		}
	}
}
