// Incremental and parallel propagation tests over generated scale
// networks. These live in an external test package so they can import
// internal/scenario (which itself depends on internal/constraint).
package constraint_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/interval"
	"repro/internal/scenario"
)

// bigBudget returns options with a revise budget no generated fixpoint
// hits, so incremental equivalence holds unconditionally.
func bigBudget(net *constraint.Network) constraint.PropagateOptions {
	return constraint.PropagateOptions{MaxRevisions: 40*net.NumConstraints() + 1000}
}

// netState captures the observables two runs must agree on bit-for-bit.
func netState(net *constraint.Network) map[string]interval.Interval {
	out := make(map[string]interval.Interval, net.NumProperties())
	for _, p := range net.Properties() {
		out[p.Name] = net.Domain(p.Name)
	}
	return out
}

func assertStateEqual(t *testing.T, label string, ref, got *constraint.Network) {
	t.Helper()
	rs, gs := netState(ref), netState(got)
	bad := 0
	for name, riv := range rs {
		if giv := gs[name]; giv != riv {
			bad++
			if bad <= 3 {
				t.Errorf("%s: window %s: ref [%v, %v] vs got [%v, %v]", label, name, riv.Lo, riv.Hi, giv.Lo, giv.Hi)
			}
		}
	}
	if bad > 3 {
		t.Errorf("%s: %d windows differ in total", label, bad)
	}
	for _, c := range ref.Constraints() {
		if ref.Status(c.Name) != got.Status(c.Name) {
			t.Fatalf("%s: status %s: ref %v vs got %v", label, c.Name, ref.Status(c.Name), got.Status(c.Name))
		}
	}
	if bad > 0 {
		t.FailNow()
	}
}

// TestIncrementalMatchesFull is the incremental soundness property
// test: after every step of a seeded random op sequence (bind to a
// random in-range value, sometimes unbind), Propagate{Incremental}
// must leave windows and statuses bit-identical to ResetFeasible plus
// a from-scratch full Propagate on an identically mutated network —
// while only re-propagating dirty regions.
func TestIncrementalMatchesFull(t *testing.T) {
	for _, fam := range scenario.ScaleFamilies() {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/s%d", fam, seed), func(t *testing.T) {
				sn := scenario.MustScale(fam, 800, seed)
				ref, err := sn.Scenario.BuildNetwork()
				if err != nil {
					t.Fatal(err)
				}
				inc, err := sn.Scenario.BuildNetwork()
				if err != nil {
					t.Fatal(err)
				}
				opts := bigBudget(ref)
				incOpts := opts
				incOpts.Incremental = true

				if res := inc.Propagate(incOpts); res.Capped {
					t.Fatal("initial incremental run capped")
				}
				ref.ResetFeasible()
				if res := ref.Propagate(opts); res.Capped {
					t.Fatal("initial full run capped")
				}
				assertStateEqual(t, "initial", ref, inc)

				rng := rand.New(rand.NewSource(seed * 13))
				props := ref.Properties()
				var bound []string
				sawSavings := false
				for step := 0; step < 25; step++ {
					if len(bound) > 0 && rng.Intn(4) == 0 {
						i := rng.Intn(len(bound))
						name := bound[i]
						bound = append(bound[:i], bound[i+1:]...)
						ref.Unbind(name)
						inc.Unbind(name)
					} else {
						p := props[rng.Intn(len(props))]
						iv, _ := p.Init.Interval()
						v := iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
						if err := ref.BindReal(p.Name, v); err != nil {
							t.Fatal(err)
						}
						if err := inc.BindReal(p.Name, v); err != nil {
							t.Fatal(err)
						}
						bound = append(bound, p.Name)
					}
					incRes := inc.Propagate(incOpts)
					ref.ResetFeasible()
					refRes := ref.Propagate(opts)
					if incRes.Capped || refRes.Capped {
						t.Fatalf("step %d: capped run (inc=%v full=%v); raise the budget", step, incRes.Capped, refRes.Capped)
					}
					if incRes.Revisions < refRes.Revisions {
						sawSavings = true
					}
					if incRes.Revisions > refRes.Revisions {
						t.Errorf("step %d: incremental did MORE revisions (%d) than full (%d)", step, incRes.Revisions, refRes.Revisions)
					}
					assertStateEqual(t, fmt.Sprintf("step %d", step), ref, inc)
				}
				if (fam == "sparse" || fam == "hub") && !sawSavings {
					t.Errorf("%s: incremental never did fewer revisions than full", fam)
				}

				// A structural edit invalidates the marker; the next
				// incremental run must fall back to a full run and still
				// match.
				pa, pb := props[0].Name, props[1].Name
				c, err := constraint.ParseConstraint("late_edge", pa+" + "+pb+" <= 1000000")
				if err != nil {
					t.Fatal(err)
				}
				for _, n := range []*constraint.Network{ref, inc} {
					if err := n.AddConstraint(c); err != nil {
						t.Fatal(err)
					}
				}
				opts2 := bigBudget(ref)
				incOpts2 := opts2
				incOpts2.Incremental = true
				inc.Propagate(incOpts2)
				ref.ResetFeasible()
				ref.Propagate(opts2)
				assertStateEqual(t, "post-structural-edit", ref, inc)
			})
		}
	}
}

// TestIncrementalNoDirtyIsFree: with a valid marker and no dirty
// properties, an incremental run does zero revisions and changes
// nothing.
func TestIncrementalNoDirtyIsFree(t *testing.T) {
	sn := scenario.MustScale("sparse", 500, 1)
	net, err := sn.Scenario.BuildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	opts := bigBudget(net)
	opts.Incremental = true
	first := net.Propagate(opts)
	if first.Revisions == 0 {
		t.Fatal("initial run did no work")
	}
	before := netState(net)
	again := net.Propagate(opts)
	if again.Revisions != 0 || again.Evaluations != 0 {
		t.Errorf("no-dirty incremental run did work: %d revisions, %d evals", again.Revisions, again.Evaluations)
	}
	for name, iv := range netState(net) {
		if before[name] != iv {
			t.Fatalf("no-dirty incremental run changed window %s", name)
		}
	}
}

// TestIncrementalPriority: the incremental marker composes with the
// priority worklist — region re-runs under Priority reproduce the full
// priority run bit-for-bit.
func TestIncrementalPriority(t *testing.T) {
	sn := scenario.MustScale("hub", 600, 3)
	ref, _ := sn.Scenario.BuildNetwork()
	inc, _ := sn.Scenario.BuildNetwork()
	opts := bigBudget(ref)
	opts.Priority = true
	incOpts := opts
	incOpts.Incremental = true

	inc.Propagate(incOpts)
	ref.ResetFeasible()
	ref.Propagate(opts)
	assertStateEqual(t, "priority/initial", ref, inc)

	rng := rand.New(rand.NewSource(7))
	props := ref.Properties()
	for step := 0; step < 10; step++ {
		p := props[rng.Intn(len(props))]
		iv, _ := p.Init.Interval()
		v := iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
		ref.BindReal(p.Name, v)
		inc.BindReal(p.Name, v)
		inc.Propagate(incOpts)
		ref.ResetFeasible()
		ref.Propagate(opts)
		assertStateEqual(t, fmt.Sprintf("priority/step %d", step), ref, inc)
	}
}

// TestPriorityDeterminism: the priority engine is deterministic
// run-to-run and keeps the witness point feasible.
func TestPriorityDeterminism(t *testing.T) {
	sn := scenario.MustScale("grid", 900, 2)
	a, _ := sn.Scenario.BuildNetwork()
	b, _ := sn.Scenario.BuildNetwork()
	opts := bigBudget(a)
	opts.Priority = true
	a.ResetFeasible()
	ra := a.Propagate(opts)
	b.ResetFeasible()
	rb := b.Propagate(opts)
	if ra.Revisions != rb.Revisions || ra.Evaluations != rb.Evaluations {
		t.Errorf("priority runs diverge: revisions %d vs %d", ra.Revisions, rb.Revisions)
	}
	assertStateEqual(t, "priority-rerun", a, b)
	if len(ra.Violated) > 0 || len(ra.Emptied) > 0 {
		t.Errorf("priority run on witness-built net: violated=%d emptied=%d", len(ra.Violated), len(ra.Emptied))
	}
	const eps = 1e-6
	for _, p := range a.Properties() {
		w := sn.Witness[p.Name]
		iv := a.Domain(p.Name)
		if w < iv.Lo-eps || w > iv.Hi+eps {
			t.Fatalf("priority: witness %s=%g outside [%v, %v]", p.Name, w, iv.Lo, iv.Hi)
		}
	}
}

// TestParallelDeterminism: the round engine's result is a function of
// the network alone — identical across Parallelism values > 1 and
// across repeated runs under live goroutine scheduling.
func TestParallelDeterminism(t *testing.T) {
	for _, fam := range []string{"grid", "sparse", "layers"} {
		t.Run(fam, func(t *testing.T) {
			sn := scenario.MustScale(fam, 900, 2)
			type run struct {
				net *constraint.Network
				res constraint.PropagateResult
			}
			var runs []run
			for _, par := range []int{2, 3, 8, 2} {
				net, err := sn.Scenario.BuildNetwork()
				if err != nil {
					t.Fatal(err)
				}
				opts := bigBudget(net)
				opts.Parallelism = par
				net.ResetFeasible()
				res := net.Propagate(opts)
				if res.Capped {
					t.Fatalf("P=%d: capped", par)
				}
				runs = append(runs, run{net, res})
			}
			for i := 1; i < len(runs); i++ {
				if runs[i].res.Revisions != runs[0].res.Revisions ||
					runs[i].res.Evaluations != runs[0].res.Evaluations ||
					len(runs[i].res.Narrowed) != len(runs[0].res.Narrowed) ||
					len(runs[i].res.Emptied) != len(runs[0].res.Emptied) ||
					len(runs[i].res.Violated) != len(runs[0].res.Violated) {
					t.Errorf("run %d metrics diverge from run 0: revisions %d vs %d, evals %d vs %d",
						i, runs[i].res.Revisions, runs[0].res.Revisions,
						runs[i].res.Evaluations, runs[0].res.Evaluations)
				}
				assertStateEqual(t, fmt.Sprintf("P-run %d", i), runs[0].net, runs[i].net)
			}
			// Witness survives the round engine too.
			const eps = 1e-6
			for _, p := range runs[0].net.Properties() {
				w := sn.Witness[p.Name]
				iv := runs[0].net.Domain(p.Name)
				if w < iv.Lo-eps || w > iv.Hi+eps {
					t.Fatalf("parallel: witness %s=%g outside [%v, %v]", p.Name, w, iv.Lo, iv.Hi)
				}
			}
		})
	}
}

// TestParallelIncremental: dirty-region seeding composes with the round
// engine: an incremental parallel run after an edit matches a fresh
// full parallel run on an identically mutated network, bit for bit.
func TestParallelIncremental(t *testing.T) {
	sn := scenario.MustScale("sparse", 800, 4)
	inc, _ := sn.Scenario.BuildNetwork()
	opts := bigBudget(inc)
	opts.Parallelism = 4
	opts.Incremental = true

	first := inc.Propagate(opts)
	if first.Capped {
		t.Fatal("initial parallel incremental run capped")
	}
	props := inc.Properties()
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 8; step++ {
		p := props[rng.Intn(len(props))]
		iv, _ := p.Init.Interval()
		v := iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
		inc.BindReal(p.Name, v)
		stepRes := inc.Propagate(opts)
		if stepRes.Revisions >= first.Revisions {
			t.Errorf("step %d: incremental parallel revisions %d not below full %d", step, stepRes.Revisions, first.Revisions)
		}

		ref, err := sn.Scenario.BuildNetwork()
		if err != nil {
			t.Fatal(err)
		}
		// Replay all bindings performed so far onto the fresh network.
		for _, q := range props {
			if v, ok := inc.Property(q.Name).Value(); ok {
				if err := ref.Bind(q.Name, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		refRes := ref.Propagate(opts) // marker invalid: full parallel run
		if refRes.Capped {
			t.Fatal("reference parallel run capped")
		}
		assertStateEqual(t, fmt.Sprintf("parallel-inc step %d", step), ref, inc)
	}
}
