// Package constraint implements the design constraint network of paper
// §2.1: properties a_i with value ranges E_i, constraints c_i over
// property subsets, tri-state constraint status (satisfied / violated /
// consistent), and the DCM's constraint propagation algorithm that
// computes infeasible property values (§2.2). It also mines the
// heuristic support data of §2.3: feasible subspaces v_F(a_i), the
// constraint count β_i, and the violation count α_i.
package constraint

import (
	"fmt"

	"repro/internal/domain"
	"repro/internal/interval"
)

// Property is a design variable (paper §2.1). A property is *bound*
// when a single value has been assigned; otherwise it is unbound with
// implicit value equal to its whole feasible subspace.
type Property struct {
	// Name uniquely identifies the property within a network.
	Name string
	// Object names the design object the property belongs to (e.g.
	// "LNA+Mixer"); informational.
	Object string
	// Owner identifies the subsystem/designer responsible for the
	// property. Constraints whose arguments span multiple owners are
	// cross-subsystem constraints; operations fixing their violations
	// count as design spins (§3.1.2).
	Owner string
	// Init is the property's initial range E_i.
	Init domain.Domain

	feasible domain.Domain
	bound    *domain.Value
}

// NewProperty returns a property with feasible subspace equal to init.
func NewProperty(name string, init domain.Domain) *Property {
	return &Property{Name: name, Init: init, feasible: init}
}

// Feasible returns the current feasible subspace v_F — the values not
// yet found infeasible by constraint evaluation (§2.3.1).
func (p *Property) Feasible() domain.Domain { return p.feasible }

// SetFeasible replaces the feasible subspace.
func (p *Property) SetFeasible(d domain.Domain) { p.feasible = d }

// ResetFeasible restores the feasible subspace to the initial range E_i.
func (p *Property) ResetFeasible() { p.feasible = p.Init }

// IsBound reports whether a single value has been assigned.
func (p *Property) IsBound() bool { return p.bound != nil }

// Value returns the bound value, if any.
func (p *Property) Value() (domain.Value, bool) {
	if p.bound == nil {
		return domain.Value{}, false
	}
	return *p.bound, true
}

// CanBind reports whether Bind would accept v, returning exactly the
// error Bind would. Hosts that validate operation batches before
// applying them (dpm.DPM.Validate, internal/server) rely on this being
// the complete precondition of Bind.
func (p *Property) CanBind(v domain.Value) error {
	if v.IsString() != (p.Init.Kind() == domain.DiscreteString) {
		return fmt.Errorf("constraint: binding %s to %s: value kind does not match domain kind %s",
			p.Name, v, p.Init.Kind())
	}
	return nil
}

// Bind assigns a single value to the property. The value need not lie
// inside the current feasible subspace (designers may deliberately probe
// outside it), but it must be type-compatible with the initial domain.
func (p *Property) Bind(v domain.Value) error {
	if err := p.CanBind(v); err != nil {
		return err
	}
	p.bound = &v
	return nil
}

// Unbind removes the assignment.
func (p *Property) Unbind() { p.bound = nil }

// IsNumeric reports whether the property holds numbers.
func (p *Property) IsNumeric() bool { return p.Init.IsNumeric() }

// CurrentInterval returns the interval abstraction of the property's
// current value set: the bound point when bound, the feasible subspace
// hull when it is non-empty, and the initial range as a fallback when
// constraint propagation has emptied the feasible set (the paper's
// designers fall back to E_i in the same situation, §3.1.1).
func (p *Property) CurrentInterval() interval.Interval {
	if p.bound != nil && !p.bound.IsString() {
		return interval.Point(p.bound.Num())
	}
	if !p.feasible.IsEmpty() {
		if iv, ok := p.feasible.Interval(); ok {
			return iv
		}
	}
	if iv, ok := p.Init.Interval(); ok {
		return iv
	}
	return interval.Entire()
}

// clone returns a deep copy (domains are immutable, so a shallow field
// copy plus bound duplication suffices).
func (p *Property) clone() *Property {
	cp := *p
	if p.bound != nil {
		b := *p.bound
		cp.bound = &b
	}
	return &cp
}

// String formats the property with its binding state.
func (p *Property) String() string {
	if p.bound != nil {
		return fmt.Sprintf("%s = %s (feasible %s)", p.Name, p.bound, p.feasible)
	}
	return fmt.Sprintf("%s ∈ %s", p.Name, p.feasible)
}
