package constraint

// Region partition of the constraint graph. Two properties are in the
// same region when a chain of constraints connects them; a constraint
// belongs to the region of its arguments. Regions are the independence
// boundary of propagation: a revise reads and writes only properties of
// its own region, so disjoint regions can be propagated in any order —
// or concurrently — without changing any fixpoint window. Incremental
// re-propagation uses the same fact in the other direction: a region
// with no dirty property reaches exactly the fixpoint it already holds,
// so it can be skipped outright (see propagate.go).
//
// The partition is pure structure, so it is cached and validated
// against the structure generation exactly like viewCache: any
// AddProperty/AddConstraint invalidates it and the next query rebuilds.
type regionCache struct {
	gen int64
	// propRegion/conRegion map property/constraint ids to region ids.
	// Region ids are dense and deterministic: regions are numbered in
	// order of their smallest property id. Constraints with no
	// arguments get region -1 (they relate nothing).
	propRegion []int
	conRegion  []int
	// regionProps/regionCons list each region's property/constraint ids
	// in ascending id order.
	regionProps [][]int
	regionCons  [][]int
}

// getRegionCache returns the region partition, rebuilding it when the
// structure generation has moved since it was built.
func (n *Network) getRegionCache() *regionCache {
	rc := n.regions
	if rc != nil && rc.gen == n.gen && len(rc.propRegion) == len(n.propList) {
		return rc
	}
	np := len(n.propList)
	// Union-find over property ids; each constraint unions its args.
	parent := make([]int, np)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for _, args := range n.conArgs {
		if len(args) == 0 {
			continue
		}
		r0 := find(args[0])
		for _, a := range args[1:] {
			r := find(a)
			if r != r0 {
				// Union by smaller root id keeps numbering deterministic
				// without a separate rank array.
				if r < r0 {
					r0, r = r, r0
				}
				parent[r] = r0
			}
		}
	}
	rc = &regionCache{
		gen:        n.gen,
		propRegion: make([]int, np),
		conRegion:  make([]int, len(n.conList)),
	}
	// Number regions by first appearance over ascending property ids.
	rootRegion := make([]int, np)
	for i := range rootRegion {
		rootRegion[i] = -1
	}
	for pid := 0; pid < np; pid++ {
		root := find(pid)
		r := rootRegion[root]
		if r < 0 {
			r = len(rc.regionProps)
			rootRegion[root] = r
			rc.regionProps = append(rc.regionProps, nil)
			rc.regionCons = append(rc.regionCons, nil)
		}
		rc.propRegion[pid] = r
		rc.regionProps[r] = append(rc.regionProps[r], pid)
	}
	for ci, args := range n.conArgs {
		if len(args) == 0 {
			rc.conRegion[ci] = -1
			continue
		}
		r := rc.propRegion[args[0]]
		rc.conRegion[ci] = r
		rc.regionCons[r] = append(rc.regionCons[r], ci)
	}
	n.regions = rc
	return rc
}

// RegionCount returns the number of connected regions of the constraint
// graph (isolated properties count as singleton regions).
func (n *Network) RegionCount() int {
	return len(n.getRegionCache().regionProps)
}

// RegionOf returns the region id of the named property, or -1 when the
// property is unknown. Region ids are dense, deterministic (numbered by
// smallest member property id), and stable until the next structural
// change.
func (n *Network) RegionOf(prop string) int {
	pid := n.propID(prop)
	if pid < 0 {
		return -1
	}
	return n.getRegionCache().propRegion[pid]
}

// RegionStats returns the region count and the property count of the
// largest region — the quick diagnostic for whether a network can
// benefit from region-level concurrency and incremental skipping.
func (n *Network) RegionStats() (regions, largest int) {
	rc := n.getRegionCache()
	for _, ps := range rc.regionProps {
		if len(ps) > largest {
			largest = len(ps)
		}
	}
	return len(rc.regionProps), largest
}
