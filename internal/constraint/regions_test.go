package constraint

import (
	"testing"

	"repro/internal/domain"
)

// buildRegionsNet builds two disjoint two-property chains plus one
// isolated property: three regions.
func buildRegionsNet(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	for _, name := range []string{"a", "b", "c", "d", "iso"} {
		if err := n.AddProperty(NewProperty(name, domain.NewInterval(0, 10))); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []struct{ name, src string }{
		{"c0", "a + b <= 12"},
		{"c1", "c - d <= 3"},
	} {
		pc, err := ParseConstraint(c.name, c.src)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.AddConstraint(pc); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestRegionPartition(t *testing.T) {
	n := buildRegionsNet(t)
	if got := n.RegionCount(); got != 3 {
		t.Fatalf("RegionCount = %d, want 3", got)
	}
	// Regions are numbered by smallest member property id: {a,b}=0,
	// {c,d}=1, {iso}=2.
	for name, want := range map[string]int{"a": 0, "b": 0, "c": 1, "d": 1, "iso": 2} {
		if got := n.RegionOf(name); got != want {
			t.Errorf("RegionOf(%s) = %d, want %d", name, got, want)
		}
	}
	if got := n.RegionOf("nosuch"); got != -1 {
		t.Errorf("RegionOf(nosuch) = %d, want -1", got)
	}
	regions, largest := n.RegionStats()
	if regions != 3 || largest != 2 {
		t.Errorf("RegionStats = (%d, %d), want (3, 2)", regions, largest)
	}
}

func TestRegionCacheInvalidation(t *testing.T) {
	n := buildRegionsNet(t)
	if got := n.RegionCount(); got != 3 {
		t.Fatalf("RegionCount = %d, want 3", got)
	}
	// A bridging constraint merges the two chains.
	pc, err := ParseConstraint("bridge", "b + c <= 15")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddConstraint(pc); err != nil {
		t.Fatal(err)
	}
	if got := n.RegionCount(); got != 2 {
		t.Fatalf("after bridge: RegionCount = %d, want 2", got)
	}
	if a, c := n.RegionOf("a"), n.RegionOf("c"); a != c {
		t.Errorf("after bridge: RegionOf(a)=%d != RegionOf(c)=%d", a, c)
	}
	// New isolated property becomes its own region.
	if err := n.AddProperty(NewProperty("iso2", domain.NewInterval(0, 1))); err != nil {
		t.Fatal(err)
	}
	if got := n.RegionCount(); got != 3 {
		t.Fatalf("after iso2: RegionCount = %d, want 3", got)
	}
}
