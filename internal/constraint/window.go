package constraint

import (
	"repro/internal/expr"
	"repro/internal/interval"
)

// windowBox narrows only the target property; every other property
// presents its current network interval (bound value or feasible hull).
type windowBox struct {
	n      *Network
	target int // property id
	window interval.Interval
}

func (b *windowBox) Domain(name string) interval.Interval {
	if id, ok := b.n.propIDs[name]; ok {
		return b.DomainID(id)
	}
	return interval.Entire()
}

func (b *windowBox) DomainID(id int) interval.Interval {
	if id == b.target {
		return b.window
	}
	return b.n.propList[id].CurrentInterval()
}

func (b *windowBox) SetDomain(name string, iv interval.Interval) {
	if id, ok := b.n.propIDs[name]; ok {
		b.SetDomainID(id, iv)
	}
}

func (b *windowBox) SetDomainID(id int, iv interval.Interval) {
	if id == b.target {
		b.window = b.window.Intersect(iv)
	}
}

var _ expr.IndexedBox = (*windowBox)(nil)

// BoundWindow computes the feasible window of a bound property: the
// values it could be re-bound to without violating any constraint,
// given every other property's current value set. This is what the
// paper's object browser displays for already-assigned properties
// (Fig. 2 shows the bound Diff-pair-W with consistent values
// {2.5 … 3.698}) and what the conflict-resolution heuristic moves
// within (§2.4.3). It also returns the number of constraint
// evaluations spent.
func (n *Network) BoundWindow(prop string) (interval.Interval, int64) {
	pid := n.propID(prop)
	if pid < 0 || !n.propList[pid].IsNumeric() {
		return interval.Empty(), 0
	}
	p := n.propList[pid]
	init, _ := p.Init.Interval()

	// Temporarily unbind so the property's own point value does not
	// enter its constraints' evaluations.
	saved := p.bound
	p.bound = nil
	savedFeasible := p.feasible
	p.feasible = p.Init
	defer func() {
		p.bound = saved
		p.feasible = savedFeasible
	}()

	box := &windowBox{n: n, target: pid, window: init}
	sc := n.getWindowScratch()
	var evals int64
	for _, ci := range n.byProp[pid] {
		evals++
		// One HC4 revise per constraint projects the requirement onto
		// the target property; inconsistency empties the window.
		want, ok := n.conList[ci].requiredDiff()
		if !ok {
			continue
		}
		if !n.shadowFor(sc, ci).Narrow(want, box) {
			box.window = interval.Empty()
			break
		}
	}
	return box.window, evals
}

// getWindowScratch returns the network's scratch grown to the current
// structure size without clearing per-run propagation state — window
// computation only needs the shadow cache.
func (n *Network) getWindowScratch() *propScratch {
	sc := n.scratch
	if sc == nil {
		sc = &propScratch{}
		n.scratch = sc
	}
	if nc := len(n.conList); len(sc.shadows) < nc {
		shadows := make([]*expr.Shadow, nc)
		copy(shadows, sc.shadows)
		sc.shadows = shadows
	}
	return sc
}

// RefreshBoundWindows updates the feasible subspace of every bound
// numeric property to its current bound window. It is called by the
// ADPM transition after propagation so designer views carry movement
// windows for assigned properties. Returns evaluations spent (added to
// the network's counter).
func (n *Network) RefreshBoundWindows() int64 {
	var total int64
	for _, p := range n.propList {
		if p.bound == nil || !p.IsNumeric() {
			continue
		}
		win, evals := n.BoundWindow(p.Name)
		total += evals
		p.feasible = p.Init.NarrowTo(win)
	}
	n.evals += total
	return total
}
