package constraint

import (
	"repro/internal/interval"
)

// windowBox narrows only the target property; every other property
// presents its current network interval (bound value or feasible hull).
type windowBox struct {
	n      *Network
	target string
	window interval.Interval
}

func (b *windowBox) Domain(name string) interval.Interval {
	if name == b.target {
		return b.window
	}
	return b.n.Domain(name)
}

func (b *windowBox) SetDomain(name string, iv interval.Interval) {
	if name == b.target {
		b.window = b.window.Intersect(iv)
	}
}

// BoundWindow computes the feasible window of a bound property: the
// values it could be re-bound to without violating any constraint,
// given every other property's current value set. This is what the
// paper's object browser displays for already-assigned properties
// (Fig. 2 shows the bound Diff-pair-W with consistent values
// {2.5 … 3.698}) and what the conflict-resolution heuristic moves
// within (§2.4.3). It also returns the number of constraint
// evaluations spent.
func (n *Network) BoundWindow(prop string) (interval.Interval, int64) {
	p := n.props[prop]
	if p == nil || !p.IsNumeric() {
		return interval.Empty(), 0
	}
	init, _ := p.Init.Interval()

	// Temporarily unbind so the property's own point value does not
	// enter its constraints' evaluations.
	saved := p.bound
	p.bound = nil
	savedFeasible := p.feasible
	p.feasible = p.Init
	defer func() {
		p.bound = saved
		p.feasible = savedFeasible
	}()

	box := &windowBox{n: n, target: prop, window: init}
	var evals int64
	for _, c := range n.ConstraintsOn(prop) {
		evals++
		// One HC4 revise per constraint projects the requirement onto
		// the target property; inconsistency empties the window.
		if res := c.Narrow(box); res.Inconsistent {
			box.window = interval.Empty()
			break
		}
	}
	return box.window, evals
}

// RefreshBoundWindows updates the feasible subspace of every bound
// numeric property to its current bound window. It is called by the
// ADPM transition after propagation so designer views carry movement
// windows for assigned properties. Returns evaluations spent (added to
// the network's counter).
func (n *Network) RefreshBoundWindows() int64 {
	var total int64
	for _, name := range n.propOrder {
		p := n.props[name]
		if p.bound == nil || !p.IsNumeric() {
			continue
		}
		win, evals := n.BoundWindow(name)
		total += evals
		p.feasible = p.Init.NarrowTo(win)
	}
	n.evals += total
	return total
}
