package constraint

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/interval"
)

// TestBoundWindowReceiverExample reconstructs the §2.4 situation: the
// differential pair width W is bound to 2.5 µm; gain and power
// constraints leave a movement window roughly [2.5, 3.7] — Fig. 2's
// "Consistent values {2.500000 3.698225}".
func TestBoundWindowReceiverExample(t *testing.T) {
	n := NewNetwork()
	add := func(p *Property) {
		t.Helper()
		if err := n.AddProperty(p); err != nil {
			t.Fatal(err)
		}
	}
	add(NewProperty("W", domain.NewInterval(0.5, 10)))   // diff pair width, µm
	add(NewProperty("Gmin", domain.NewInterval(0, 100))) // gain spec
	add(NewProperty("Pmax", domain.NewInterval(0, 500))) // power spec
	for _, c := range []*Constraint{
		MustParseConstraint("gain", "19.2 * W >= Gmin"),
		MustParseConstraint("power", "54.08 * W <= Pmax"),
	} {
		if err := n.AddConstraint(c); err != nil {
			t.Fatal(err)
		}
	}
	for p, v := range map[string]float64{"W": 2.5, "Gmin": 48, "Pmax": 200} {
		if err := n.BindReal(p, v); err != nil {
			t.Fatal(err)
		}
	}
	win, evals := n.BoundWindow("W")
	if evals != 2 {
		t.Errorf("evals = %d, want 2", evals)
	}
	// gain: W >= 48/19.2 = 2.5; power: W <= 200/54.08 ≈ 3.698
	if !win.ApproxEqual(interval.New(2.5, 200.0/54.08), 1e-6) {
		t.Errorf("window = %v, want [2.5, 3.698]", win)
	}
	// The binding itself must be untouched.
	if v, ok := n.Property("W").Value(); !ok || v.Num() != 2.5 {
		t.Error("BoundWindow disturbed the binding")
	}
}

func TestBoundWindowEmptyOnConflict(t *testing.T) {
	n := NewNetwork()
	if err := n.AddProperty(NewProperty("x", domain.NewInterval(0, 10))); err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Constraint{
		MustParseConstraint("lo", "x >= 8"),
		MustParseConstraint("hi", "x <= 2"),
	} {
		if err := n.AddConstraint(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.BindReal("x", 5); err != nil {
		t.Fatal(err)
	}
	win, _ := n.BoundWindow("x")
	if !win.IsEmpty() {
		t.Errorf("window = %v, want empty (no value satisfies both)", win)
	}
}

func TestBoundWindowUnknownAndString(t *testing.T) {
	n := NewNetwork()
	if err := n.AddProperty(NewProperty("s", domain.NewStringSet("a"))); err != nil {
		t.Fatal(err)
	}
	if win, evals := n.BoundWindow("nope"); !win.IsEmpty() || evals != 0 {
		t.Error("unknown property should yield empty window, 0 evals")
	}
	if win, _ := n.BoundWindow("s"); !win.IsEmpty() {
		t.Error("string property should yield empty window")
	}
}

func TestRefreshBoundWindows(t *testing.T) {
	n := NewNetwork()
	for _, p := range []struct {
		name   string
		lo, hi float64
	}{{"a", 0, 100}, {"b", 0, 100}} {
		if err := n.AddProperty(NewProperty(p.name, domain.NewInterval(p.lo, p.hi))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddConstraint(MustParseConstraint("sum", "a + b <= 60")); err != nil {
		t.Fatal(err)
	}
	if err := n.BindReal("a", 50); err != nil {
		t.Fatal(err)
	}
	if err := n.BindReal("b", 30); err != nil { // violating: 80 > 60
		t.Fatal(err)
	}
	evals0 := n.EvalCount()
	spent := n.RefreshBoundWindows()
	if spent != 2 || n.EvalCount() != evals0+2 {
		t.Errorf("spent = %d, counter moved %d", spent, n.EvalCount()-evals0)
	}
	// a could move to [0, 30] (given b=30); b to [0, 10] (given a=50).
	ivA, _ := n.Property("a").Feasible().Interval()
	if !ivA.ApproxEqual(interval.New(0, 30), 1e-9) {
		t.Errorf("window a = %v, want [0,30]", ivA)
	}
	ivB, _ := n.Property("b").Feasible().Interval()
	if !ivB.ApproxEqual(interval.New(0, 10), 1e-9) {
		t.Errorf("window b = %v, want [0,10]", ivB)
	}
}

func TestBoundWindowDiscreteSnapsToSet(t *testing.T) {
	n := NewNetwork()
	if err := n.AddProperty(NewProperty("L", domain.NewRealSet(0.1, 0.2, 0.5, 1.0))); err != nil {
		t.Fatal(err)
	}
	if err := n.AddConstraint(MustParseConstraint("cap", "L <= 0.5")); err != nil {
		t.Fatal(err)
	}
	if err := n.BindReal("L", 1.0); err != nil {
		t.Fatal(err)
	}
	n.RefreshBoundWindows()
	want := domain.NewRealSet(0.1, 0.2, 0.5)
	if !n.Property("L").Feasible().Equal(want) {
		t.Errorf("discrete window = %v, want %v", n.Property("L").Feasible(), want)
	}
}

// TestBoundWindowNonNumericNoEvals: a discrete-string property has no
// movement window and must not charge any constraint evaluations.
func TestBoundWindowNonNumericNoEvals(t *testing.T) {
	n := NewNetwork()
	if err := n.AddProperty(NewProperty("level", domain.NewStringSet("gate", "rtl"))); err != nil {
		t.Fatal(err)
	}
	if err := n.Bind("level", domain.Str("rtl")); err != nil {
		t.Fatal(err)
	}
	win, evals := n.BoundWindow("level")
	if !win.IsEmpty() {
		t.Errorf("window = %v, want empty for non-numeric property", win)
	}
	if evals != 0 {
		t.Errorf("evals = %d, want 0 for non-numeric property", evals)
	}
	if v, ok := n.Property("level").Value(); !ok || v.Text() != "rtl" {
		t.Error("binding disturbed")
	}
}

// TestBoundWindowEmptiesMidLoop: when an early constraint's revise is
// inconsistent, the loop stops — later constraints on the property are
// not evaluated — and the window comes back empty.
func TestBoundWindowEmptiesMidLoop(t *testing.T) {
	n := NewNetwork()
	if err := n.AddProperty(NewProperty("x", domain.NewInterval(0, 10))); err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Constraint{
		MustParseConstraint("shrink", "x <= 8"),
		MustParseConstraint("impossible", "x >= 20"), // empties the window
		MustParseConstraint("late", "x <= 9"),        // must not be reached
	} {
		if err := n.AddConstraint(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.BindReal("x", 5); err != nil {
		t.Fatal(err)
	}
	win, evals := n.BoundWindow("x")
	if !win.IsEmpty() {
		t.Errorf("window = %v, want empty", win)
	}
	if evals != 2 {
		t.Errorf("evals = %d, want 2 (loop must stop at the inconsistent revise)", evals)
	}
}

// TestBoundWindowRestoreSurvivesInconsistent: the temporary
// unbind/feasible-reset must be rolled back even when a narrow proves
// inconsistent and the loop exits early.
func TestBoundWindowRestoreSurvivesInconsistent(t *testing.T) {
	n := NewNetwork()
	if err := n.AddProperty(NewProperty("x", domain.NewInterval(0, 10))); err != nil {
		t.Fatal(err)
	}
	if err := n.AddConstraint(MustParseConstraint("impossible", "x >= 20")); err != nil {
		t.Fatal(err)
	}
	if err := n.BindReal("x", 5); err != nil {
		t.Fatal(err)
	}
	custom := domain.NewInterval(1, 9)
	n.Property("x").SetFeasible(custom)

	win, _ := n.BoundWindow("x")
	if !win.IsEmpty() {
		t.Errorf("window = %v, want empty", win)
	}
	p := n.Property("x")
	if v, ok := p.Value(); !ok || v.Num() != 5 {
		t.Errorf("bound value not restored: %v (ok=%v)", v, ok)
	}
	if !p.Feasible().Equal(custom) {
		t.Errorf("feasible not restored: %v, want %v", p.Feasible(), custom)
	}
}
