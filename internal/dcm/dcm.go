// Package dcm implements the Design Constraint Manager's "mining" step
// (paper §1, §2.2–2.3): it consolidates raw constraint-network state
// into data that explicitly supports constraint-based search heuristics
// and packages, per designer, exactly the information the paper's
// simulated designer model keeps in its internal state (§3.1.1):
//
//   - feasible subspaces v_F(a_i) and their unit-free relative sizes,
//   - the number of connected constraints β_i,
//   - the number of connected violations α_i,
//   - lists of constraints monotonically increasing/decreasing in a_i
//     and the value-change direction likely to fix most violations.
//
// In conventional mode (λ=F) the same view structure is produced, but
// feasible subspaces degrade to the initial ranges E_i and violation
// knowledge is limited to statuses established by explicitly requested
// verification operations.
package dcm

import (
	"sort"
	"strings"

	"repro/internal/constraint"
	"repro/internal/domain"
	"repro/internal/dpm"
	"repro/internal/expr"
	"repro/internal/solver"
)

// PropInfo is the per-property heuristic support data of §2.3.
type PropInfo struct {
	Name   string
	Object string
	Owner  string
	// Init is the property's initial range E_i.
	Init domain.Domain
	// Feasible is v_F(a_i) — in conventional mode simply E_i.
	Feasible domain.Domain
	// Bound holds the assigned value when the property is bound.
	Bound *domain.Value
	// Alpha is α_i, the number of known violated constraints connected
	// to the property — counted through derived-property chains, so a
	// violated spec on a derived performance value counts against the
	// design variables that determine it (§2.3.2's indirect extension).
	Alpha int
	// Beta is β_i, the number of connected constraints.
	Beta int
	// BetaIndirect extends β_i with constraints indirectly related to
	// the property through one intermediate constraint — the extension
	// §2.3.2 describes ("β_i may also include constraints indirectly
	// related to a_i by an intermediate constraint").
	BetaIndirect int
	// RelFeasible is |v_F| / |E_i| in [0,1] — the unit-free feasible
	// subspace size used by the smallest-subspace heuristic (§2.3.1).
	RelFeasible float64
	// IncreasingIn / DecreasingIn list constraints monotonically
	// increasing/decreasing in this property (difference sign), the
	// §3.1.1 internal-state lists.
	IncreasingIn []string
	DecreasingIn []string
	// FixVotes sums, over violated constraints on this property, the
	// direction of value change likely to fix them: positive means
	// "increase the value", negative "decrease".
	FixVotes int
	// SatVotes sums the helpful direction over all constraints on the
	// property, violated or not. The value selection function uses it to
	// pick the top or bottom of a value set "based on what may satisfy
	// most constraints" (§3.1.1).
	SatVotes int
	// Writable is true when the designer owns a problem that has this
	// property among its outputs.
	Writable bool
}

// ViolationInfo describes one known violated constraint.
type ViolationInfo struct {
	Constraint string
	Args       []string
	// CrossSubsystem is true when the constraint's arguments span
	// properties of multiple owners (fixing it is a design spin).
	CrossSubsystem bool
	// FixDirections maps each argument to the value-change direction
	// (+1/-1) expected to help satisfy the constraint, 0 when unknown.
	FixDirections map[string]int
	// FixSteps maps each leaf property to the estimated movement needed
	// to close the violation by changing that property alone:
	// margin / |∂(lhs−rhs)/∂property| via the chain rule through
	// derived-property formulas. 0 when the sensitivity is unknown.
	// Verification tools report margins and designers know their own
	// models' sensitivities, so both modes may use this estimate.
	FixSteps map[string]float64
	// Margin is the violation magnitude (positive when violated).
	Margin float64
}

// ProblemInfo summarizes one problem assigned to the designer.
type ProblemInfo struct {
	Name           string
	Status         dpm.ProblemStatus
	Outputs        []string
	UnboundOutputs []string
	Constraints    []string
	// VerifiableConstraints lists constraints of the problem whose
	// status is still unknown (Consistent) and whose arguments are all
	// bound — the ones a verification-tool run would settle.
	VerifiableConstraints []string
}

// View is the information available to one designer when choosing the
// next operation: their addressable problems, heuristic data for every
// property they are concerned with, and the violations they know of.
type View struct {
	Designer string
	// ADPM is true when the view carries propagation-derived data.
	ADPM bool
	// Problems lists the designer's problems (all of them, including
	// Waiting ones; the problem-selection function filters).
	Problems []ProblemInfo
	// Props holds heuristic data for the designer's properties of
	// concern, keyed by name.
	Props map[string]*PropInfo
	// Violations lists known violated constraints relevant to this
	// designer, in network insertion order.
	Violations []ViolationInfo
	// Resynthesize, when non-nil (ADPM mode), asks the DCM for a
	// coordinated assignment of all of a problem's outputs that
	// satisfies the network given everything else current — §2.3's
	// "design operations that will fix many violations at a time". The
	// search consumes constraint evaluations (charged to the process);
	// nil result means no such assignment was found within budget.
	Resynthesize func(problem string) map[string]float64
}

// BuildView assembles the view for one designer from the DPM's current
// state. The NM's relevance filtering (§2.2) is applied here: a
// property is of concern when it belongs to one of the designer's
// problems or appears in a constraint together with such a property;
// a violation is relevant when it touches a property of concern.
func BuildView(d *dpm.DPM, designer string) *View {
	v := &View{
		Designer: designer,
		ADPM:     d.Mode == dpm.ADPM,
		Props:    map[string]*PropInfo{},
	}
	net := d.Net

	// Collect the designer's problems and their own properties.
	own := map[string]bool{}      // properties of own problems
	writable := map[string]bool{} // outputs of own problems
	for _, p := range d.ProblemsOwnedBy(designer) {
		pi := ProblemInfo{
			Name:        p.Name,
			Status:      p.Status(),
			Outputs:     append([]string(nil), p.Outputs...),
			Constraints: append([]string(nil), p.Constraints...),
		}
		for _, o := range p.Outputs {
			own[o] = true
			writable[o] = true
			if prop := net.Property(o); prop != nil && !prop.IsBound() {
				pi.UnboundOutputs = append(pi.UnboundOutputs, o)
			}
		}
		for _, in := range p.Inputs {
			own[in] = true
		}
		for _, cn := range p.Constraints {
			c := net.Constraint(cn)
			if c == nil || net.Status(cn) != constraint.Consistent {
				continue
			}
			ready := true
			for _, a := range c.Args() {
				if ap := net.Property(a); ap == nil || !ap.IsBound() {
					ready = false
					break
				}
			}
			if ready {
				pi.VerifiableConstraints = append(pi.VerifiableConstraints, cn)
			}
		}
		v.Problems = append(v.Problems, pi)
	}

	// Concern closure: derived-property chains are followed
	// transitively (a designer whose transistor width feeds LNA_gain
	// feeds System_gain is concerned with the system gain), then one
	// hop over ordinary constraints adds co-arguments.
	concern := map[string]bool{}
	for name := range own {
		concern[name] = true
	}
	cons := net.Constraints()
	for changed := true; changed; {
		changed = false
		for _, c := range cons {
			if d.DefConstraint(strings.TrimSuffix(c.Name, ".def")) != c {
				continue
			}
			touches := false
			for _, a := range c.Args() {
				if concern[a] {
					touches = true
					break
				}
			}
			if !touches {
				continue
			}
			for _, a := range c.Args() {
				if !concern[a] {
					concern[a] = true
					changed = true
				}
			}
		}
	}
	relevantCons := map[string]bool{}
	for name := range concern {
		for _, c := range net.ConstraintsOn(name) {
			relevantCons[c.Name] = true
		}
	}
	for cn := range relevantCons {
		for _, a := range net.Constraint(cn).Args() {
			concern[a] = true
		}
	}

	// Per-property heuristic data.
	names := make([]string, 0, len(concern))
	for name := range concern {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		prop := net.Property(name)
		if prop == nil {
			continue
		}
		pi := &PropInfo{
			Name:         name,
			Object:       prop.Object,
			Owner:        prop.Owner,
			Init:         prop.Init,
			Beta:         net.Beta(name),
			BetaIndirect: net.BetaIndirect(name),
			Writable:     writable[name],
		}
		if v.ADPM {
			pi.Feasible = prop.Feasible()
		} else {
			pi.Feasible = prop.Init
		}
		pi.RelFeasible = pi.Feasible.RelativeSize(prop.Init)
		if bv, ok := prop.Value(); ok {
			b := bv
			pi.Bound = &b
		}
		for _, c := range net.ConstraintsOn(name) {
			switch c.MonotoneSign(name, net) {
			case +1:
				pi.IncreasingIn = append(pi.IncreasingIn, c.Name)
			case -1:
				pi.DecreasingIn = append(pi.DecreasingIn, c.Name)
			}
		}
		v.Props[name] = pi
	}

	// SatVotes: the helpful direction summed over every relevant
	// requirement constraint, expanded to leaf properties. Defining
	// equalities are skipped — the DPM keeps them satisfied by
	// construction, so they carry no preference.
	for cn := range relevantCons {
		c := net.Constraint(cn)
		if d.DefConstraint(strings.TrimSuffix(cn, ".def")) == c {
			continue
		}
		for prop, dir := range ExpandFixDirections(d, c) {
			if pi := v.Props[prop]; pi != nil {
				pi.SatVotes += dir
			}
		}
	}

	// Relevant violations, with derived arguments expanded through
	// their defining formulas to the leaf properties a designer can
	// actually move (chain rule over monotone signs).
	for _, cn := range net.Violations() {
		if !relevantCons[cn] {
			continue
		}
		c := net.Constraint(cn)
		vi := ViolationInfo{
			Constraint:     cn,
			Args:           append([]string(nil), c.Args()...),
			CrossSubsystem: d.IsCrossSubsystem(c),
			FixDirections:  ExpandFixDirections(d, c),
			Margin:         c.Margin(net),
		}
		vi.FixSteps = ExpandFixSteps(d, c, vi.Margin)
		v.Violations = append(v.Violations, vi)
	}

	// α and fix votes are accumulated over the expanded violations, so
	// a violated gain spec counts against the transistor width that
	// determines the gain (the §2.3.2 indirect-connection extension).
	for _, vi := range v.Violations {
		for prop, dir := range vi.FixDirections {
			if pi := v.Props[prop]; pi != nil {
				pi.Alpha++
				pi.FixVotes += dir
			}
		}
	}

	if v.ADPM {
		v.Resynthesize = func(problem string) map[string]float64 {
			return resynthesize(d, problem)
		}
	}
	return v
}

// resynthesize runs a bounded branch-and-prune search for a joint
// assignment of the problem's outputs over a scratch network.
func resynthesize(d *dpm.DPM, problem string) map[string]float64 {
	scratch, targets := d.ResynthesisScratch(problem)
	if scratch == nil {
		return nil
	}
	before := scratch.EvalCount()
	res, err := solver.Solve(scratch, solver.Options{
		Targets:  targets,
		MaxNodes: 800,
		Complete: d.DerivedCompletion(),
	})
	d.ChargeEvals(scratch.EvalCount() - before)
	if err != nil || !res.Satisfiable {
		return nil
	}
	return res.Witness
}

// midEnv evaluates properties at their bound value, or the midpoint of
// their current interval when unbound — the linearization point for
// sensitivity estimates.
type midEnv struct {
	net *constraint.Network
}

func (e midEnv) Value(name string) (float64, bool) {
	if v, ok := e.net.Value(name); ok {
		return v, true
	}
	iv := e.net.Domain(name)
	if iv.IsEmpty() {
		return 0, false
	}
	m := iv.Mid()
	if m != m { // NaN
		return 0, false
	}
	return m, true
}

// ExpandFixSteps estimates, per leaf property, the movement needed to
// close a violation of c with margin m by moving that property alone:
// |m| / |∂(lhs−rhs)/∂property|, with the chain rule composing through
// derived-property formulas. Unknown sensitivities yield 0.
func ExpandFixSteps(d *dpm.DPM, c *constraint.Constraint, margin float64) map[string]float64 {
	net := d.Net
	env := midEnv{net: net}
	out := map[string]float64{}
	if margin <= 0 {
		return out
	}
	diffNode := &expr.Binary{Op: '-', X: c.Lhs, Y: c.Rhs}

	// gradAt returns |∂node/∂prop| at the linearization point, or 0.
	gradAt := func(node expr.Node, prop string) float64 {
		dnode := expr.Diff(node, prop)
		if dnode == nil {
			return 0
		}
		g, err := expr.Eval(dnode, env)
		if err != nil || g != g || g == 0 {
			return 0
		}
		if g < 0 {
			return -g
		}
		return g
	}

	var visit func(prop string, grad float64, depth int)
	visit = func(prop string, grad float64, depth int) {
		if grad == 0 || depth > 8 {
			return
		}
		def := d.DefConstraint(prop)
		if def == nil {
			step := margin / grad
			if cur, ok := out[prop]; !ok || step > cur {
				out[prop] = step
			}
			return
		}
		// prop is derived with prop == formula; chain through.
		formula := def.Rhs
		for _, a := range expr.Vars(formula) {
			visit(a, grad*gradAt(formula, a), depth+1)
		}
	}
	for _, a := range c.Args() {
		if d.DefConstraint(a) == c {
			continue
		}
		visit(a, gradAt(diffNode, a), 0)
	}
	return out
}

// ExpandFixDirections maps each leaf property that can influence the
// violated constraint c to the direction of value change expected to
// help satisfy it. Derived arguments are expanded through their
// defining formulas: to raise a derived value, move each formula input
// in the direction of its monotone sign. Unknown signs propagate as
// direction 0 (the property remains a candidate, direction random).
func ExpandFixDirections(d *dpm.DPM, c *constraint.Constraint) map[string]int {
	net := d.Net
	out := map[string]int{}
	var visit func(prop string, dir, depth int)
	visit = func(prop string, dir, depth int) {
		def := d.DefConstraint(prop)
		if def == nil || depth > 8 {
			if cur, ok := out[prop]; !ok || cur == 0 {
				out[prop] = dir
			} else if dir != 0 && dir != cur {
				out[prop] = 0 // conflicting advice: direction unknown
			}
			return
		}
		for _, a := range def.Args() {
			if a == prop {
				continue
			}
			// def.diff = prop - formula, so the formula's monotone sign
			// in a is the negated constraint sign.
			s := -def.MonotoneSign(a, net)
			visit(a, dir*s, depth+1)
		}
	}
	for _, a := range c.Args() {
		// When c is the defining constraint of a itself, the derived
		// property is not a handle: its value follows from the formula.
		// Expanding it would advise moving the formula inputs so the
		// formula chases the (spec-pinned) derived window — the exact
		// opposite of resolving the conflict. The other arguments of the
		// definition already carry the correct directions.
		if d.DefConstraint(a) == c {
			continue
		}
		visit(a, c.FixDirection(a, net), 0)
	}
	return out
}

// KnowsViolations reports whether the designer currently knows of any
// violation (the condition steering f_a between the subspace-ordering
// and conflict-resolution heuristics, §3.1.1).
func (v *View) KnowsViolations() bool { return len(v.Violations) > 0 }

// AddressableProblems returns the designer's problems without a Waiting
// status (the paper's problem selection function f_p).
func (v *View) AddressableProblems() []ProblemInfo {
	var out []ProblemInfo
	for _, p := range v.Problems {
		if p.Status != dpm.Waiting {
			out = append(out, p)
		}
	}
	return out
}

// AllSolved reports whether every problem assigned to the designer is
// Solved.
func (v *View) AllSolved() bool {
	for _, p := range v.Problems {
		if p.Status != dpm.Solved {
			return false
		}
	}
	return len(v.Problems) > 0
}
