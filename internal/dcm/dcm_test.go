package dcm

import (
	"testing"

	"repro/internal/dddl"
	"repro/internal/domain"
	"repro/internal/dpm"
)

const viewDoc = `
scenario view_test

object Sys owner leader {
    property Budget real [0, 100]
}
object A owner alice {
    property Pa real [0, 100]
    property Qa real [0, 10]
}
object B owner bob {
    property Pb real [0, 100]
}

constraint Split: Pa + Pb <= Budget
constraint AMin: Pa >= 10
constraint QaCap: Qa <= 5

problem Top owner leader {
    outputs { Budget }
    constraints { Split }
}
problem SubA owner alice {
    inputs { Budget }
    outputs { Pa, Qa }
    constraints { AMin, QaCap }
}
problem SubB owner bob {
    inputs { Budget }
    outputs { Pb }
    constraints { }
}

decompose Top -> SubA, SubB
require Budget = 60
`

func build(t *testing.T, mode dpm.Mode) *dpm.DPM {
	t.Helper()
	scn, err := dddl.ParseString(viewDoc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dpm.FromScenario(scn, mode)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestViewConcernClosure(t *testing.T) {
	d := build(t, dpm.ADPM)
	v := BuildView(d, "alice")
	// Alice's own props: Pa, Qa (outputs), Budget (input). Concern
	// closure adds Pb (co-argument of Split).
	for _, name := range []string{"Pa", "Qa", "Budget", "Pb"} {
		if v.Props[name] == nil {
			t.Errorf("missing %s from alice's view", name)
		}
	}
	if !v.Props["Pa"].Writable || v.Props["Pb"].Writable || v.Props["Budget"].Writable {
		t.Error("writable flags wrong")
	}
	if v.Props["Pa"].Beta != 2 { // Split + AMin
		t.Errorf("beta(Pa) = %d, want 2", v.Props["Pa"].Beta)
	}
	if len(v.Problems) != 1 || v.Problems[0].Name != "SubA" {
		t.Errorf("Problems = %+v", v.Problems)
	}
	if len(v.Problems[0].UnboundOutputs) != 2 {
		t.Errorf("UnboundOutputs = %v", v.Problems[0].UnboundOutputs)
	}
}

func TestViewFeasibleADPMvsConventional(t *testing.T) {
	da := build(t, dpm.ADPM)
	va := BuildView(da, "alice")
	// ADPM: propagation has narrowed Pa to [0,60] (Budget=60, Pb>=0).
	ivA, _ := va.Props["Pa"].Feasible.Interval()
	if ivA.Hi > 60+1e-9 {
		t.Errorf("ADPM feasible Pa = %v, want narrowed to <= 60", ivA)
	}
	if va.Props["Pa"].RelFeasible > 0.61 {
		t.Errorf("RelFeasible = %v", va.Props["Pa"].RelFeasible)
	}

	dc := build(t, dpm.Conventional)
	vc := BuildView(dc, "alice")
	ivC, _ := vc.Props["Pa"].Feasible.Interval()
	if ivC.Hi != 100 {
		t.Errorf("conventional feasible Pa = %v, want E_i", ivC)
	}
	if vc.ADPM {
		t.Error("mode flag wrong")
	}
}

func TestViewViolationsAndAlpha(t *testing.T) {
	d := build(t, dpm.ADPM)
	mustApply(t, d, dpm.Operation{
		Kind: dpm.OpSynthesis, Problem: "SubA", Designer: "alice",
		Assignments: []dpm.Assignment{{Prop: "Pa", Value: domain.Real(50)}},
	})
	mustApply(t, d, dpm.Operation{
		Kind: dpm.OpSynthesis, Problem: "SubB", Designer: "bob",
		Assignments: []dpm.Assignment{{Prop: "Pb", Value: domain.Real(50)}},
	})
	// 50+50 > 60: Split violated. Both alice and bob see it.
	for _, who := range []string{"alice", "bob"} {
		v := BuildView(d, who)
		if !v.KnowsViolations() {
			t.Fatalf("%s does not know of the violation", who)
		}
		if len(v.Violations) != 1 || v.Violations[0].Constraint != "Split" {
			t.Errorf("%s violations = %+v", who, v.Violations)
		}
		if !v.Violations[0].CrossSubsystem {
			t.Error("Split should be cross-subsystem")
		}
		// Fix direction: decreasing Pa/Pb helps.
		if v.Violations[0].FixDirections["Pa"] != -1 {
			t.Errorf("fix dir Pa = %d", v.Violations[0].FixDirections["Pa"])
		}
		if v.Violations[0].Margin <= 0 {
			t.Errorf("margin = %v, want positive (violated)", v.Violations[0].Margin)
		}
	}
	va := BuildView(d, "alice")
	if va.Props["Pa"].Alpha != 1 {
		t.Errorf("alpha(Pa) = %d", va.Props["Pa"].Alpha)
	}
	// FixVotes for Pa should point down (negative).
	if va.Props["Pa"].FixVotes >= 0 {
		t.Errorf("FixVotes(Pa) = %d, want negative", va.Props["Pa"].FixVotes)
	}
	// The leader's view: owns Top (its Budget is bound), sees Split.
	vl := BuildView(d, "leader")
	if len(vl.Violations) != 1 {
		t.Errorf("leader violations = %+v", vl.Violations)
	}
}

func TestViewMonotoneLists(t *testing.T) {
	d := build(t, dpm.ADPM)
	v := BuildView(d, "alice")
	pa := v.Props["Pa"]
	// Both Split (Pa+Pb-Budget) and AMin (Pa-10) increase in Pa.
	if len(pa.IncreasingIn) != 2 || pa.IncreasingIn[0] != "Split" || pa.IncreasingIn[1] != "AMin" {
		t.Errorf("IncreasingIn(Pa) = %v", pa.IncreasingIn)
	}
	if len(pa.DecreasingIn) != 0 {
		t.Errorf("DecreasingIn(Pa) = %v", pa.DecreasingIn)
	}
	// Split's difference decreases in Budget.
	budget := v.Props["Budget"]
	if len(budget.DecreasingIn) != 1 || budget.DecreasingIn[0] != "Split" {
		t.Errorf("DecreasingIn(Budget) = %v", budget.DecreasingIn)
	}
}

func TestViewConventionalKnowledgeGating(t *testing.T) {
	d := build(t, dpm.Conventional)
	// Bind a violating pair but never verify: no one knows.
	mustApply(t, d, dpm.Operation{
		Kind: dpm.OpSynthesis, Problem: "SubA", Designer: "alice",
		Assignments: []dpm.Assignment{{Prop: "Pa", Value: domain.Real(50)}},
	})
	mustApply(t, d, dpm.Operation{
		Kind: dpm.OpSynthesis, Problem: "SubB", Designer: "bob",
		Assignments: []dpm.Assignment{{Prop: "Pb", Value: domain.Real(50)}},
	})
	if v := BuildView(d, "alice"); v.KnowsViolations() {
		t.Error("conventional designer knows violation without verification")
	}
	// After the integration verification the violation is known.
	mustApply(t, d, dpm.Operation{Kind: dpm.OpVerification, Problem: "Top", Designer: "leader"})
	if v := BuildView(d, "alice"); !v.KnowsViolations() {
		t.Error("violation unknown after verification")
	}
}

func TestAddressableProblemsAndAllSolved(t *testing.T) {
	d := build(t, dpm.ADPM)
	vl := BuildView(d, "leader")
	// Top is Waiting (children unsolved): not addressable.
	if got := vl.AddressableProblems(); len(got) != 0 {
		t.Errorf("leader addressable = %v", got)
	}
	if vl.AllSolved() {
		t.Error("AllSolved premature")
	}
	va := BuildView(d, "alice")
	if got := va.AddressableProblems(); len(got) != 1 {
		t.Errorf("alice addressable = %v", got)
	}
	// Designer with no problems: AllSolved must be false (vacuous truth
	// would terminate them instantly before assignment).
	vz := BuildView(d, "nobody")
	if vz.AllSolved() {
		t.Error("designer with no problems reported AllSolved")
	}
}

func TestBoundReflectedInView(t *testing.T) {
	d := build(t, dpm.ADPM)
	mustApply(t, d, dpm.Operation{
		Kind: dpm.OpSynthesis, Problem: "SubA", Designer: "alice",
		Assignments: []dpm.Assignment{{Prop: "Qa", Value: domain.Real(3)}},
	})
	v := BuildView(d, "alice")
	if v.Props["Qa"].Bound == nil || v.Props["Qa"].Bound.Num() != 3 {
		t.Errorf("Bound(Qa) = %v", v.Props["Qa"].Bound)
	}
	found := false
	for _, u := range v.Problems[0].UnboundOutputs {
		if u == "Qa" {
			found = true
		}
	}
	if found {
		t.Error("Qa still listed unbound")
	}
}

func mustApply(t *testing.T, d *dpm.DPM, op dpm.Operation) {
	t.Helper()
	if _, err := d.Apply(op); err != nil {
		t.Fatal(err)
	}
}

func TestViewBetaIndirect(t *testing.T) {
	d := build(t, dpm.ADPM)
	v := BuildView(d, "alice")
	// Pa: direct β = 2 (Split, AMin); indirect adds QaCap via... no
	// shared constraint, so indirect equals the closure through Split's
	// co-arguments (Pb, Budget have no further constraints beyond Split).
	pa := v.Props["Pa"]
	if pa.BetaIndirect < pa.Beta {
		t.Errorf("indirect β %d below direct %d", pa.BetaIndirect, pa.Beta)
	}
	// Budget appears in Split only, but Split's co-arguments Pa carries
	// AMin: indirect β must see it.
	budget := v.Props["Budget"]
	if budget.Beta != 1 || budget.BetaIndirect != 2 {
		t.Errorf("Budget β=%d indirect=%d, want 1/2", budget.Beta, budget.BetaIndirect)
	}
}
