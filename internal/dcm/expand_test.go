package dcm

import (
	"math"
	"testing"

	"repro/internal/dddl"
	"repro/internal/domain"
	"repro/internal/dpm"
)

const chainDoc = `
scenario chain_test

object Specs {
    property MaxPower real [0, 1000]
    property MinGain  real [0, 1000]
}
object Blk owner eng {
    property W real [1, 10]
    property I real [1, 20]
    property R real [1, 100]

    derived Gain  real [0, 4000]  = 5 * W * sqrt(I)
    derived Loss  real [0, 100]   = 200 / R
    derived Power real [0, 1000]  = 10 * I + sqr(W)
}
object Sys {
    derived NetGain real [-200, 4000] = Gain - Loss
}

constraint GainSpec:  NetGain >= MinGain
constraint PowerSpec: Power <= MaxPower

problem Top owner lead {
    inputs { MinGain, MaxPower }
    constraints { GainSpec, PowerSpec }
}
problem Work owner eng {
    outputs { W, I, R }
    constraints { }
}
decompose Top -> Work

require MaxPower = 200
require MinGain = 60
`

func chainDPM(t *testing.T) *dpm.DPM {
	t.Helper()
	scn, err := dddl.ParseString(chainDoc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dpm.FromScenario(scn, dpm.ADPM)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func bindChain(t *testing.T, d *dpm.DPM, vals map[string]float64) {
	t.Helper()
	for prop, v := range vals {
		if _, err := d.Apply(dpm.Operation{
			Kind: dpm.OpSynthesis, Problem: "Work", Designer: "eng",
			Assignments: []dpm.Assignment{{Prop: prop, Value: domain.Real(v)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExpandFixDirectionsThroughChain(t *testing.T) {
	d := chainDPM(t)
	// W=2, I=4, R=10: Gain = 20, Loss = 20, NetGain = 0 < 60: violated.
	bindChain(t, d, map[string]float64{"W": 2, "I": 4, "R": 10})
	c := d.Net.Constraint("GainSpec")
	if d.Net.Status("GainSpec").String() != "Violated" {
		t.Fatalf("setup: GainSpec = %v", d.Net.Status("GainSpec"))
	}
	dirs := ExpandFixDirections(d, c)
	// Raising NetGain: Gain up → W up (+1), I up (+1); Loss down →
	// R up (+1, Loss = 200/R decreasing in R). MinGain down (-1).
	want := map[string]int{"W": +1, "I": +1, "R": +1, "MinGain": -1}
	for prop, dir := range want {
		if got := dirs[prop]; got != dir {
			t.Errorf("dir[%s] = %d, want %d (dirs=%v)", prop, got, dir, dirs)
		}
	}
	// Derived properties themselves are not handles.
	for _, derived := range []string{"Gain", "Loss", "NetGain"} {
		if _, ok := dirs[derived]; ok {
			t.Errorf("expansion leaked derived property %s", derived)
		}
	}
}

func TestExpandFixStepsChainRule(t *testing.T) {
	d := chainDPM(t)
	bindChain(t, d, map[string]float64{"W": 2, "I": 4, "R": 10})
	c := d.Net.Constraint("GainSpec")
	margin := c.Margin(d.Net) // 60 - 0 = 60
	if math.Abs(margin-60) > 1e-6 {
		t.Fatalf("margin = %v, want 60", margin)
	}
	steps := ExpandFixSteps(d, c, margin)
	// ∂NetGain/∂W = 5·√I = 10 → step 6.
	if got := steps["W"]; math.Abs(got-6) > 1e-6 {
		t.Errorf("step[W] = %v, want 6", got)
	}
	// ∂NetGain/∂I = 5·W/(2√I) = 2.5 → step 24.
	if got := steps["I"]; math.Abs(got-24) > 1e-6 {
		t.Errorf("step[I] = %v, want 24", got)
	}
	// ∂NetGain/∂R = +200/R² = 2 → step 30.
	if got := steps["R"]; math.Abs(got-30) > 1e-6 {
		t.Errorf("step[R] = %v, want 30", got)
	}
	// Satisfied constraints yield no steps.
	if s := ExpandFixSteps(d, c, -5); len(s) != 0 {
		t.Errorf("negative margin produced steps %v", s)
	}
}

func TestExpandFixDirectionsConflictingAdvice(t *testing.T) {
	d := chainDPM(t)
	// Make both GainSpec and PowerSpec violated: W=2, I=4 (NetGain 0),
	// and push MaxPower below current power (10·4+4=44): set via leader.
	bindChain(t, d, map[string]float64{"W": 2, "I": 4, "R": 10})
	if _, err := d.Apply(dpm.Operation{
		Kind: dpm.OpSynthesis, Problem: "Top", Designer: "lead",
		Assignments: []dpm.Assignment{{Prop: "MaxPower", Value: domain.Real(30)}},
	}); err != nil {
		t.Fatal(err)
	}
	v := BuildView(d, "eng")
	if len(v.Violations) != 2 {
		t.Fatalf("violations = %v", v.Violations)
	}
	// I appears in both with opposite advice: GainSpec +1, PowerSpec -1
	// → FixVotes 0, Alpha 2.
	pi := v.Props["I"]
	if pi.Alpha != 2 {
		t.Errorf("alpha(I) = %d, want 2", pi.Alpha)
	}
	if pi.FixVotes != 0 {
		t.Errorf("FixVotes(I) = %d, want 0 (conflicting advice)", pi.FixVotes)
	}
	// R only helps the gain violation: votes +1.
	if v.Props["R"].FixVotes != +1 {
		t.Errorf("FixVotes(R) = %d, want +1", v.Props["R"].FixVotes)
	}
}

func TestVerifiableConstraintsListing(t *testing.T) {
	scn, err := dddl.ParseString(chainDoc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dpm.FromScenario(scn, dpm.Conventional)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing bound: no verifiable constraints for the leader.
	v := BuildView(d, "lead")
	if len(v.Problems[0].VerifiableConstraints) != 0 {
		t.Errorf("verifiable before binding: %v", v.Problems[0].VerifiableConstraints)
	}
	bindChain(t, d, map[string]float64{"W": 4, "I": 9, "R": 10})
	v = BuildView(d, "lead")
	got := v.Problems[0].VerifiableConstraints
	if len(got) != 2 {
		t.Fatalf("verifiable = %v, want both specs", got)
	}
	// After verification they are decided and disappear from the list.
	if _, err := d.Apply(dpm.Operation{
		Kind: dpm.OpVerification, Problem: "Top", Designer: "lead",
	}); err != nil {
		t.Fatal(err)
	}
	v = BuildView(d, "lead")
	if len(v.Problems[0].VerifiableConstraints) != 0 {
		t.Errorf("verifiable after verification: %v", v.Problems[0].VerifiableConstraints)
	}
}

func TestMovementWindowInViewAfterConflict(t *testing.T) {
	d := chainDPM(t)
	bindChain(t, d, map[string]float64{"W": 2, "I": 4, "R": 10})
	v := BuildView(d, "eng")
	// W's movement window: NetGain >= 60 needs 5·W·2 - 20 >= 60 → W >= 8;
	// Power <= 200 needs W² <= 160 → W <= 12.65 (capped by E_i at 10).
	pi := v.Props["W"]
	iv, ok := pi.Feasible.Interval()
	if !ok || iv.IsEmpty() {
		t.Fatalf("window(W) = %v", pi.Feasible)
	}
	if math.Abs(iv.Lo-8) > 0.05 || iv.Hi < 9.9 {
		t.Errorf("window(W) = %v, want ≈[8, 10]", iv)
	}
}
