// Package dddl implements the design-description language used to
// configure TeamSim for a scenario's design area (paper §3.1.2). A DDDL
// document declares design objects and their properties, the constraint
// network, constraint monotonicity, the problem hierarchy with its
// decompositions and ownership, and initial top-level requirement
// values.
//
// The syntax is line-oriented:
//
//	# comment
//	scenario receiver
//
//	object LNA_Mixer owner circuit {
//	    property Diff_pair_W real [0.5, 10]
//	    property Freq_ind    real [0.05, 0.5]
//	    property Esr         enum {0.1, 0.2, 0.5}
//	    property Levels      string {"Transistor", "Geometry"}
//	}
//
//	constraint PowerBudget: Pf + Ps <= PM
//	monotonic FilterLoss decreasing Resonator_len
//	monotonic FilterLoss increasing Beam_width
//
//	problem AnalogFE owner circuit {
//	    outputs { Diff_pair_W, Freq_ind }
//	    constraints { PowerBudget }
//	}
//
//	decompose Top -> AnalogFE, Filter
//	require PM = 200
package dddl

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/domain"
	"repro/internal/expr"
)

// PropertyDecl declares one design property.
type PropertyDecl struct {
	Name   string
	Object string // declaring object ("" for top-level declarations)
	Owner  string // owning subsystem/designer
	Domain domain.Domain
	// Formula, when non-empty, makes this a derived performance
	// property: its value is computed from other properties by a tool
	// run (paper Fig. 2's performance parameters) rather than assigned
	// by a designer. BuildNetwork adds a defining equality constraint
	// "<Name>.def: Name == Formula" so ADPM propagation can push
	// requirement bounds through to design variables.
	Formula string
	Line    int
}

// IsDerived reports whether the property carries a defining formula.
func (p *PropertyDecl) IsDerived() bool { return p.Formula != "" }

// ConstraintDecl declares one design constraint.
type ConstraintDecl struct {
	Name string
	// Src is the raw "lhs REL rhs" text.
	Src string
	// Mono maps property name to the declared direction of value change
	// that helps satisfy the constraint: +1 increasing, -1 decreasing.
	Mono map[string]int
	Line int
}

// ProblemDecl declares one design problem p_i = (I_i, O_i, T_i).
type ProblemDecl struct {
	Name        string
	Owner       string
	Inputs      []string
	Outputs     []string
	Constraints []string
	Line        int
}

// Decomposition declares a parent problem split into ordered children.
type Decomposition struct {
	Parent   string
	Children []string
	Line     int
}

// Requirement assigns an initial value to a top-level property.
type Requirement struct {
	Property string
	Value    domain.Value
	Line     int
}

// ObjectDecl names a design object and its owner.
type ObjectDecl struct {
	Name  string
	Owner string
	Line  int
}

// Scenario is a parsed DDDL document.
type Scenario struct {
	Name           string
	Objects        []*ObjectDecl
	Properties     []*PropertyDecl
	Constraints    []*ConstraintDecl
	Problems       []*ProblemDecl
	Decompositions []*Decomposition
	Requirements   []*Requirement
}

// Property returns the named property declaration, or nil.
func (s *Scenario) Property(name string) *PropertyDecl {
	for _, p := range s.Properties {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Problem returns the named problem declaration, or nil.
func (s *Scenario) Problem(name string) *ProblemDecl {
	for _, p := range s.Problems {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// ConstraintDecl returns the named constraint declaration, or nil.
func (s *Scenario) ConstraintDecl(name string) *ConstraintDecl {
	for _, c := range s.Constraints {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Owners returns the distinct problem owners in declaration order.
func (s *Scenario) Owners() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range s.Problems {
		if p.Owner != "" && !seen[p.Owner] {
			seen[p.Owner] = true
			out = append(out, p.Owner)
		}
	}
	return out
}

// Validate cross-checks all references in the scenario.
func (s *Scenario) Validate() error {
	props := map[string]*PropertyDecl{}
	for _, p := range s.Properties {
		if _, dup := props[p.Name]; dup {
			return fmt.Errorf("dddl: line %d: duplicate property %q", p.Line, p.Name)
		}
		props[p.Name] = p
	}
	// Derived property formulas: must parse, reference known numeric
	// properties, and be acyclic.
	for _, p := range s.Properties {
		if !p.IsDerived() {
			continue
		}
		if !p.Domain.IsNumeric() {
			return fmt.Errorf("dddl: line %d: derived property %q must be numeric", p.Line, p.Name)
		}
		node, err := expr.Parse(p.Formula)
		if err != nil {
			return fmt.Errorf("dddl: line %d: derived %q: %w", p.Line, p.Name, err)
		}
		for _, a := range expr.Vars(node) {
			ap, ok := props[a]
			if !ok {
				return fmt.Errorf("dddl: line %d: derived %q references unknown property %q", p.Line, p.Name, a)
			}
			if !ap.Domain.IsNumeric() {
				return fmt.Errorf("dddl: line %d: derived %q references non-numeric property %q", p.Line, p.Name, a)
			}
			if a == p.Name {
				return fmt.Errorf("dddl: line %d: derived %q references itself", p.Line, p.Name)
			}
		}
	}
	if err := s.checkDerivedAcyclic(props); err != nil {
		return err
	}
	cons := map[string]*ConstraintDecl{}
	for _, c := range s.Constraints {
		if _, dup := cons[c.Name]; dup {
			return fmt.Errorf("dddl: line %d: duplicate constraint %q", c.Line, c.Name)
		}
		cons[c.Name] = c
		parsed, err := constraint.ParseConstraint(c.Name, c.Src)
		if err != nil {
			return fmt.Errorf("dddl: line %d: %w", c.Line, err)
		}
		for _, a := range parsed.Args() {
			pd, ok := props[a]
			if !ok {
				return fmt.Errorf("dddl: line %d: constraint %q references unknown property %q", c.Line, c.Name, a)
			}
			if !pd.Domain.IsNumeric() {
				return fmt.Errorf("dddl: line %d: constraint %q references non-numeric property %q", c.Line, c.Name, a)
			}
		}
		for mp := range c.Mono {
			if !parsed.HasArg(mp) {
				return fmt.Errorf("dddl: constraint %q: monotonic declaration for %q which is not an argument", c.Name, mp)
			}
		}
	}
	probs := map[string]*ProblemDecl{}
	for _, p := range s.Problems {
		if _, dup := probs[p.Name]; dup {
			return fmt.Errorf("dddl: line %d: duplicate problem %q", p.Line, p.Name)
		}
		probs[p.Name] = p
		for _, set := range [][]string{p.Inputs, p.Outputs} {
			for _, prop := range set {
				if _, ok := props[prop]; !ok {
					return fmt.Errorf("dddl: line %d: problem %q references unknown property %q", p.Line, p.Name, prop)
				}
			}
		}
		for _, cn := range p.Constraints {
			if _, ok := cons[cn]; !ok {
				return fmt.Errorf("dddl: line %d: problem %q references unknown constraint %q", p.Line, p.Name, cn)
			}
		}
	}
	for _, d := range s.Decompositions {
		if _, ok := probs[d.Parent]; !ok {
			return fmt.Errorf("dddl: line %d: decomposition of unknown problem %q", d.Line, d.Parent)
		}
		for _, c := range d.Children {
			if _, ok := probs[c]; !ok {
				return fmt.Errorf("dddl: line %d: decomposition into unknown problem %q", d.Line, c)
			}
		}
	}
	for _, r := range s.Requirements {
		pd, ok := props[r.Property]
		if !ok {
			return fmt.Errorf("dddl: line %d: requirement for unknown property %q", r.Line, r.Property)
		}
		if r.Value.IsString() != (pd.Domain.Kind() == domain.DiscreteString) {
			return fmt.Errorf("dddl: line %d: requirement value kind mismatch for %q", r.Line, r.Property)
		}
	}
	return nil
}

// checkDerivedAcyclic rejects cyclic derived-property definitions.
func (s *Scenario) checkDerivedAcyclic(props map[string]*PropertyDecl) error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("dddl: derived property cycle through %q", name)
		case black:
			return nil
		}
		p := props[name]
		if p == nil || !p.IsDerived() {
			color[name] = black
			return nil
		}
		color[name] = gray
		node, err := expr.Parse(p.Formula)
		if err != nil {
			return err
		}
		for _, a := range expr.Vars(node) {
			if err := visit(a); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for _, p := range s.Properties {
		if p.IsDerived() {
			if err := visit(p.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// DerivedOrder returns the derived property declarations in dependency
// order (a derived property appears after every derived property its
// formula references). Validate must have succeeded.
func (s *Scenario) DerivedOrder() []*PropertyDecl {
	byName := map[string]*PropertyDecl{}
	for _, p := range s.Properties {
		byName[p.Name] = p
	}
	var order []*PropertyDecl
	done := map[string]bool{}
	var visit func(p *PropertyDecl)
	visit = func(p *PropertyDecl) {
		if done[p.Name] {
			return
		}
		done[p.Name] = true
		node, err := expr.Parse(p.Formula)
		if err != nil {
			return
		}
		for _, a := range expr.Vars(node) {
			if dp := byName[a]; dp != nil && dp.IsDerived() {
				visit(dp)
			}
		}
		order = append(order, p)
	}
	for _, p := range s.Properties {
		if p.IsDerived() {
			visit(p)
		}
	}
	return order
}

// BuildNetwork instantiates the constraint network declared by the
// scenario: every property with its initial range E_i, every constraint
// with its monotonicity overrides, every derived property's defining
// equality, and every requirement bound.
func (s *Scenario) BuildNetwork() (*constraint.Network, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	net := constraint.NewNetwork()
	for _, pd := range s.Properties {
		p := constraint.NewProperty(pd.Name, pd.Domain)
		p.Object = pd.Object
		p.Owner = pd.Owner
		if err := net.AddProperty(p); err != nil {
			return nil, err
		}
	}
	for _, pd := range s.Properties {
		if !pd.IsDerived() {
			continue
		}
		c, err := constraint.ParseConstraint(pd.Name+".def", pd.Name+" == "+pd.Formula)
		if err != nil {
			return nil, err
		}
		if err := net.AddConstraint(c); err != nil {
			return nil, err
		}
	}
	for _, cd := range s.Constraints {
		c, err := constraint.ParseConstraint(cd.Name, cd.Src)
		if err != nil {
			return nil, err
		}
		if len(cd.Mono) > 0 {
			c.MonoOverride = map[string]int{}
			for k, v := range cd.Mono {
				c.MonoOverride[k] = v
			}
		}
		if err := net.AddConstraint(c); err != nil {
			return nil, err
		}
	}
	for _, r := range s.Requirements {
		if err := net.Bind(r.Property, r.Value); err != nil {
			return nil, err
		}
	}
	return net, nil
}
