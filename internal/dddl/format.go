package dddl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/domain"
)

// Format renders the scenario as canonical DDDL text. Parsing the
// result yields an equivalent scenario (round-trip property), so Format
// serves as a serializer for programmatically built or modified
// scenarios.
func (s *Scenario) Format() string {
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "scenario %s\n", s.Name)
	}

	// Group properties by declaring object, preserving declaration order.
	type objGroup struct {
		decl  *ObjectDecl
		props []*PropertyDecl
	}
	groups := map[string]*objGroup{}
	var order []string
	for _, o := range s.Objects {
		groups[o.Name] = &objGroup{decl: o}
		order = append(order, o.Name)
	}
	var topLevel []*PropertyDecl
	for _, p := range s.Properties {
		if p.Object == "" {
			topLevel = append(topLevel, p)
			continue
		}
		g, ok := groups[p.Object]
		if !ok {
			// Property references an undeclared object: synthesize one.
			g = &objGroup{decl: &ObjectDecl{Name: p.Object, Owner: p.Owner}}
			groups[p.Object] = g
			order = append(order, p.Object)
		}
		g.props = append(g.props, p)
	}

	for _, name := range order {
		g := groups[name]
		b.WriteString("\n")
		if g.decl.Owner != "" {
			fmt.Fprintf(&b, "object %s owner %s {\n", g.decl.Name, g.decl.Owner)
		} else {
			fmt.Fprintf(&b, "object %s {\n", g.decl.Name)
		}
		for _, p := range g.props {
			b.WriteString("    ")
			b.WriteString(formatProperty(p))
			b.WriteString("\n")
		}
		b.WriteString("}\n")
	}
	if len(topLevel) > 0 {
		b.WriteString("\n")
		for _, p := range topLevel {
			b.WriteString(formatProperty(p))
			b.WriteString("\n")
		}
	}

	if len(s.Constraints) > 0 {
		b.WriteString("\n")
		for _, c := range s.Constraints {
			fmt.Fprintf(&b, "constraint %s: %s\n", c.Name, c.Src)
		}
		for _, c := range s.Constraints {
			props := make([]string, 0, len(c.Mono))
			for p := range c.Mono {
				props = append(props, p)
			}
			sort.Strings(props)
			for _, p := range props {
				dir := "increasing"
				if c.Mono[p] < 0 {
					dir = "decreasing"
				}
				fmt.Fprintf(&b, "monotonic %s %s %s\n", c.Name, dir, p)
			}
		}
	}

	for _, p := range s.Problems {
		b.WriteString("\n")
		if p.Owner != "" {
			fmt.Fprintf(&b, "problem %s owner %s {\n", p.Name, p.Owner)
		} else {
			fmt.Fprintf(&b, "problem %s {\n", p.Name)
		}
		if len(p.Inputs) > 0 {
			fmt.Fprintf(&b, "    inputs { %s }\n", strings.Join(p.Inputs, ", "))
		}
		if len(p.Outputs) > 0 {
			fmt.Fprintf(&b, "    outputs { %s }\n", strings.Join(p.Outputs, ", "))
		}
		if len(p.Constraints) > 0 {
			fmt.Fprintf(&b, "    constraints { %s }\n", strings.Join(p.Constraints, ", "))
		}
		b.WriteString("}\n")
	}

	if len(s.Decompositions) > 0 {
		b.WriteString("\n")
		for _, d := range s.Decompositions {
			fmt.Fprintf(&b, "decompose %s -> %s\n", d.Parent, strings.Join(d.Children, ", "))
		}
	}

	if len(s.Requirements) > 0 {
		b.WriteString("\n")
		for _, r := range s.Requirements {
			if r.Value.IsString() {
				fmt.Fprintf(&b, "require %s = %q\n", r.Property, r.Value.Text())
			} else {
				fmt.Fprintf(&b, "require %s = %s\n", r.Property, fmtFloat(r.Value.Num()))
			}
		}
	}
	return b.String()
}

func formatProperty(p *PropertyDecl) string {
	keyword := "property"
	suffix := ""
	if p.IsDerived() {
		keyword = "derived"
		suffix = " = " + p.Formula
	}
	switch p.Domain.Kind() {
	case domain.Continuous:
		iv, _ := p.Domain.Interval()
		return fmt.Sprintf("%s %s real [%s, %s]%s",
			keyword, p.Name, fmtFloat(iv.Lo), fmtFloat(iv.Hi), suffix)
	case domain.DiscreteReal:
		vals := p.Domain.Reals()
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmtFloat(v)
		}
		return fmt.Sprintf("%s %s enum {%s}%s", keyword, p.Name, strings.Join(parts, ", "), suffix)
	default:
		vals := p.Domain.Strings()
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = strconv.Quote(v)
		}
		return fmt.Sprintf("%s %s string {%s}%s", keyword, p.Name, strings.Join(parts, ", "), suffix)
	}
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Equal reports whether two scenarios declare the same design area
// (names, domains, formulas, constraints, problems, decompositions, and
// requirements), ignoring source line numbers.
func (s *Scenario) Equal(o *Scenario) bool {
	if s.Name != o.Name ||
		len(s.Properties) != len(o.Properties) ||
		len(s.Constraints) != len(o.Constraints) ||
		len(s.Problems) != len(o.Problems) ||
		len(s.Decompositions) != len(o.Decompositions) ||
		len(s.Requirements) != len(o.Requirements) {
		return false
	}
	for i, p := range s.Properties {
		q := o.Properties[i]
		if p.Name != q.Name || p.Object != q.Object || p.Owner != q.Owner ||
			p.Formula != q.Formula || !p.Domain.Equal(q.Domain) {
			return false
		}
	}
	for i, c := range s.Constraints {
		d := o.Constraints[i]
		if c.Name != d.Name || c.Src != d.Src || len(c.Mono) != len(d.Mono) {
			return false
		}
		for k, v := range c.Mono {
			if d.Mono[k] != v {
				return false
			}
		}
	}
	for i, p := range s.Problems {
		q := o.Problems[i]
		if p.Name != q.Name || p.Owner != q.Owner ||
			!eqSlice(p.Inputs, q.Inputs) || !eqSlice(p.Outputs, q.Outputs) ||
			!eqSlice(p.Constraints, q.Constraints) {
			return false
		}
	}
	for i, d := range s.Decompositions {
		e := o.Decompositions[i]
		if d.Parent != e.Parent || !eqSlice(d.Children, e.Children) {
			return false
		}
	}
	for i, r := range s.Requirements {
		q := o.Requirements[i]
		if r.Property != q.Property || !r.Value.Equal(q.Value) {
			return false
		}
	}
	return true
}

func eqSlice(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
