package dddl

import (
	"strings"
	"testing"
)

func TestFormatRoundTripSample(t *testing.T) {
	s, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	text := s.Format()
	s2, err := ParseString(text)
	if err != nil {
		t.Fatalf("formatted text does not parse: %v\n%s", err, text)
	}
	if !s.Equal(s2) {
		t.Errorf("round trip changed the scenario:\n--- original ---\n%s\n--- reparsed ---\n%s",
			text, s2.Format())
	}
	// Formatting is idempotent.
	if text2 := s2.Format(); text2 != text {
		t.Errorf("Format not idempotent:\n%s\nvs\n%s", text, text2)
	}
}

func TestFormatCoversAllForms(t *testing.T) {
	const doc = `
scenario forms

object A owner alice {
    property X real [0, 10]
    property E enum {1, 2.5, 30}
    property S string {"low", "high"}
    derived D real [0, 100] = 2 * X
}

property Free real [-1, 1]

constraint C1: X + D <= 25
monotonic C1 decreasing X

problem P owner alice {
    inputs { Free }
    outputs { X, E }
    constraints { C1 }
}
problem Q {
}
decompose Q -> P
require Free = 0.5
require S = "low"
`
	s, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	text := s.Format()
	for _, want := range []string{
		"object A owner alice {",
		"property X real [0, 10]",
		"property E enum {1, 2.5, 30}",
		`property S string {"high", "low"}`,
		"derived D real [0, 100] = 2 * X",
		"property Free real [-1, 1]",
		"constraint C1: X + D <= 25",
		"monotonic C1 decreasing X",
		"problem P owner alice {",
		"inputs { Free }",
		"outputs { X, E }",
		"constraints { C1 }",
		"problem Q {",
		"decompose Q -> P",
		"require Free = 0.5",
		`require S = "low"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted text missing %q:\n%s", want, text)
		}
	}
	s2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if !s.Equal(s2) {
		t.Error("round trip changed the scenario")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	base := `
scenario x
property a real [0, 1]
constraint c: a <= 1
problem P {
    outputs { a }
    constraints { c }
}
require a = 0.5
`
	s1, err := ParseString(base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []string{
		strings.Replace(base, "scenario x", "scenario y", 1),
		strings.Replace(base, "[0, 1]", "[0, 2]", 1),
		strings.Replace(base, "a <= 1", "a <= 2", 1),
		strings.Replace(base, "problem P {", "problem R {", 1),
		strings.Replace(base, "require a = 0.5", "require a = 0.7", 1),
	}
	for i, v := range variants {
		s2, err := ParseString(v)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if s1.Equal(s2) {
			t.Errorf("variant %d should differ from base", i)
		}
	}
	if !s1.Equal(s1) {
		t.Error("scenario not equal to itself")
	}
}

// TestBuiltinScenarioRoundTrips is in the scenario package's domain but
// exercised here through a constructed doc to keep packages decoupled;
// the built-in scenarios round-trip in scenario tests instead.
func TestFormatEmptyScenario(t *testing.T) {
	s := &Scenario{Name: "empty"}
	text := s.Format()
	s2, err := ParseString(text)
	if err != nil {
		t.Fatalf("empty scenario text does not parse: %v", err)
	}
	if s2.Name != "empty" {
		t.Error("name lost")
	}
}
