package dddl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/domain"
)

// ParseError reports a DDDL syntax or semantic failure with its line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("dddl: line %d: %s", e.Line, e.Msg)
}

type parser struct {
	lines   []string
	lineNos []int
	pos     int
	scn     *Scenario
}

// Parse reads a DDDL document from r and validates it.
func Parse(r io.Reader) (*Scenario, error) {
	p := &parser{scn: &Scenario{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		p.lines = append(p.lines, line)
		p.lineNos = append(p.lineNos, n)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dddl: reading input: %w", err)
	}
	if err := p.parse(); err != nil {
		return nil, err
	}
	if err := p.scn.Validate(); err != nil {
		return nil, err
	}
	return p.scn, nil
}

// ParseString parses a DDDL document from a string.
func ParseString(src string) (*Scenario, error) {
	return Parse(strings.NewReader(src))
}

// MustParseString is ParseString panicking on error, for built-in
// scenario definitions.
func MustParseString(src string) *Scenario {
	s, err := ParseString(src)
	if err != nil {
		panic(err)
	}
	return s
}

func (p *parser) errf(format string, args ...any) error {
	ln := 0
	if p.pos < len(p.lineNos) {
		ln = p.lineNos[p.pos]
	} else if len(p.lineNos) > 0 {
		ln = p.lineNos[len(p.lineNos)-1]
	}
	return &ParseError{Line: ln, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) cur() (string, bool) {
	if p.pos >= len(p.lines) {
		return "", false
	}
	return p.lines[p.pos], true
}

func (p *parser) curLineNo() int {
	if p.pos < len(p.lineNos) {
		return p.lineNos[p.pos]
	}
	return 0
}

func (p *parser) parse() error {
	for {
		line, ok := p.cur()
		if !ok {
			return nil
		}
		fields := strings.Fields(line)
		var err error
		switch fields[0] {
		case "scenario":
			err = p.parseScenario(fields)
		case "object":
			err = p.parseObject(line)
		case "property":
			err = p.parseProperty(line, "", "")
		case "derived":
			err = p.parseDerived(line, "", "")
		case "constraint":
			err = p.parseConstraint(line)
		case "monotonic":
			err = p.parseMonotonic(fields)
		case "problem":
			err = p.parseProblem(line)
		case "decompose":
			err = p.parseDecompose(line)
		case "require":
			err = p.parseRequire(line)
		default:
			err = p.errf("unknown directive %q", fields[0])
		}
		if err != nil {
			return err
		}
	}
}

func (p *parser) parseScenario(fields []string) error {
	if len(fields) != 2 {
		return p.errf("scenario takes exactly one name")
	}
	if p.scn.Name != "" {
		return p.errf("duplicate scenario directive")
	}
	p.scn.Name = fields[1]
	p.pos++
	return nil
}

// parseObject handles: object NAME [owner OWNER] { ... property lines ... }
func (p *parser) parseObject(line string) error {
	head, hasBrace := strings.CutSuffix(strings.TrimSpace(line), "{")
	if !hasBrace {
		return p.errf("object declaration must end with '{'")
	}
	fields := strings.Fields(head)
	if len(fields) < 2 {
		return p.errf("object needs a name")
	}
	obj := &ObjectDecl{Name: fields[1], Line: p.curLineNo()}
	rest := fields[2:]
	if len(rest) == 2 && rest[0] == "owner" {
		obj.Owner = rest[1]
	} else if len(rest) != 0 {
		return p.errf("object: unexpected tokens %v", rest)
	}
	p.scn.Objects = append(p.scn.Objects, obj)
	p.pos++
	for {
		inner, ok := p.cur()
		if !ok {
			return p.errf("unterminated object block for %q", obj.Name)
		}
		if inner == "}" {
			p.pos++
			return nil
		}
		switch {
		case strings.HasPrefix(inner, "property "):
			if err := p.parseProperty(inner, obj.Name, obj.Owner); err != nil {
				return err
			}
		case strings.HasPrefix(inner, "derived "):
			if err := p.parseDerived(inner, obj.Name, obj.Owner); err != nil {
				return err
			}
		default:
			return p.errf("object block may only contain property/derived declarations, got %q", inner)
		}
	}
}

// parseProperty handles:
//
//	property NAME real [lo, hi]
//	property NAME enum {v1, v2, ...}
//	property NAME string {"a", "b", ...}
func (p *parser) parseProperty(line, object, owner string) error {
	if err := p.parsePropertyNoAdvance(line, object, owner, ""); err != nil {
		return err
	}
	p.pos++
	return nil
}

func (p *parser) parsePropertyNoAdvance(line, object, owner, formula string) error {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return p.errf("property needs a name and a type")
	}
	name, typ := fields[1], fields[2]
	rest := strings.TrimSpace(strings.Join(fields[3:], " "))
	var dom domain.Domain
	switch typ {
	case "real":
		if !strings.HasPrefix(rest, "[") || !strings.HasSuffix(rest, "]") {
			return p.errf("property %s: real type needs a [lo, hi] range", name)
		}
		parts := strings.Split(strings.Trim(rest, "[]"), ",")
		if len(parts) != 2 {
			return p.errf("property %s: range needs exactly two bounds", name)
		}
		lo, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		hi, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			return p.errf("property %s: malformed range bounds %q", name, rest)
		}
		if lo > hi {
			return p.errf("property %s: empty range [%g, %g]", name, lo, hi)
		}
		dom = domain.NewInterval(lo, hi)
	case "enum":
		vals, err := p.parseBracedList(rest, name)
		if err != nil {
			return err
		}
		var nums []float64
		for _, v := range vals {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return p.errf("property %s: malformed enum value %q", name, v)
			}
			nums = append(nums, f)
		}
		if len(nums) == 0 {
			return p.errf("property %s: empty enum", name)
		}
		dom = domain.NewRealSet(nums...)
	case "string":
		vals, err := p.parseBracedList(rest, name)
		if err != nil {
			return err
		}
		var strs []string
		for _, v := range vals {
			s, err := strconv.Unquote(v)
			if err != nil {
				return p.errf("property %s: string values must be quoted, got %q", name, v)
			}
			strs = append(strs, s)
		}
		if len(strs) == 0 {
			return p.errf("property %s: empty string set", name)
		}
		dom = domain.NewStringSet(strs...)
	default:
		return p.errf("property %s: unknown type %q (want real, enum, or string)", name, typ)
	}
	p.scn.Properties = append(p.scn.Properties, &PropertyDecl{
		Name:    name,
		Object:  object,
		Owner:   owner,
		Domain:  dom,
		Formula: formula,
		Line:    p.curLineNo(),
	})
	return nil
}

func (p *parser) parseBracedList(rest, name string) ([]string, error) {
	if !strings.HasPrefix(rest, "{") || !strings.HasSuffix(rest, "}") {
		return nil, p.errf("property %s: expected {v1, v2, ...}", name)
	}
	body := strings.TrimSpace(strings.Trim(rest, "{}"))
	if body == "" {
		return nil, nil
	}
	parts := strings.Split(body, ",")
	out := make([]string, len(parts))
	for i, s := range parts {
		out[i] = strings.TrimSpace(s)
	}
	return out, nil
}

// parseDerived handles: derived NAME real [lo, hi] = expr
// A derived property's value is computed from its formula by the DPM
// (a tool run) instead of being assigned by a designer.
func (p *parser) parseDerived(line, object, owner string) error {
	decl, formula, ok := strings.Cut(line, "=")
	if !ok {
		return p.errf("derived needs '= formula'")
	}
	formula = strings.TrimSpace(formula)
	if formula == "" {
		return p.errf("derived: empty formula")
	}
	// Reuse the property parser on the declaration part.
	declLine := "property" + strings.TrimPrefix(strings.TrimSpace(decl), "derived")
	if err := p.parsePropertyNoAdvance(declLine, object, owner, formula); err != nil {
		return err
	}
	p.pos++
	return nil
}

// parseConstraint handles: constraint NAME: lhs REL rhs
func (p *parser) parseConstraint(line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "constraint"))
	name, src, ok := strings.Cut(rest, ":")
	if !ok {
		return p.errf("constraint needs 'name: expression' form")
	}
	name = strings.TrimSpace(name)
	src = strings.TrimSpace(src)
	if name == "" || strings.ContainsAny(name, " \t") {
		return p.errf("malformed constraint name %q", name)
	}
	if src == "" {
		return p.errf("constraint %s: empty expression", name)
	}
	p.scn.Constraints = append(p.scn.Constraints, &ConstraintDecl{
		Name: name,
		Src:  src,
		Line: p.curLineNo(),
	})
	p.pos++
	return nil
}

// parseMonotonic handles: monotonic CNAME increasing|decreasing PROP
func (p *parser) parseMonotonic(fields []string) error {
	if len(fields) != 4 {
		return p.errf("monotonic takes: constraint-name increasing|decreasing property")
	}
	cname, dirWord, prop := fields[1], fields[2], fields[3]
	dir := 0
	switch dirWord {
	case "increasing":
		dir = +1
	case "decreasing":
		dir = -1
	default:
		return p.errf("monotonic direction must be increasing or decreasing, got %q", dirWord)
	}
	cd := p.scn.ConstraintDecl(cname)
	if cd == nil {
		return p.errf("monotonic references unknown constraint %q (declare the constraint first)", cname)
	}
	if cd.Mono == nil {
		cd.Mono = map[string]int{}
	}
	cd.Mono[prop] = dir
	p.pos++
	return nil
}

// parseProblem handles:
//
//	problem NAME [owner OWNER] {
//	    inputs { a, b }
//	    outputs { c, d }
//	    constraints { c1, c2 }
//	}
func (p *parser) parseProblem(line string) error {
	head, hasBrace := strings.CutSuffix(strings.TrimSpace(line), "{")
	if !hasBrace {
		return p.errf("problem declaration must end with '{'")
	}
	fields := strings.Fields(head)
	if len(fields) < 2 {
		return p.errf("problem needs a name")
	}
	prob := &ProblemDecl{Name: fields[1], Line: p.curLineNo()}
	rest := fields[2:]
	if len(rest) == 2 && rest[0] == "owner" {
		prob.Owner = rest[1]
	} else if len(rest) != 0 {
		return p.errf("problem: unexpected tokens %v", rest)
	}
	p.pos++
	for {
		inner, ok := p.cur()
		if !ok {
			return p.errf("unterminated problem block for %q", prob.Name)
		}
		if inner == "}" {
			p.pos++
			p.scn.Problems = append(p.scn.Problems, prob)
			return nil
		}
		kw, rest, found := strings.Cut(inner, "{")
		if !found || !strings.HasSuffix(rest, "}") {
			return p.errf("problem %s: expected 'inputs|outputs|constraints { ... }', got %q", prob.Name, inner)
		}
		names, err := p.parseNameList(strings.TrimSuffix(rest, "}"))
		if err != nil {
			return err
		}
		switch strings.TrimSpace(kw) {
		case "inputs":
			prob.Inputs = append(prob.Inputs, names...)
		case "outputs":
			prob.Outputs = append(prob.Outputs, names...)
		case "constraints":
			prob.Constraints = append(prob.Constraints, names...)
		default:
			return p.errf("problem %s: unknown section %q", prob.Name, strings.TrimSpace(kw))
		}
		p.pos++
	}
}

func (p *parser) parseNameList(body string) ([]string, error) {
	body = strings.TrimSpace(body)
	if body == "" {
		return nil, nil
	}
	parts := strings.Split(body, ",")
	out := make([]string, 0, len(parts))
	for _, s := range parts {
		s = strings.TrimSpace(s)
		if s == "" {
			return nil, p.errf("empty name in list %q", body)
		}
		out = append(out, s)
	}
	return out, nil
}

// parseDecompose handles: decompose PARENT -> CHILD1, CHILD2
func (p *parser) parseDecompose(line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "decompose"))
	parent, children, ok := strings.Cut(rest, "->")
	if !ok {
		return p.errf("decompose needs 'parent -> child1, child2' form")
	}
	parent = strings.TrimSpace(parent)
	kids, err := p.parseNameList(children)
	if err != nil {
		return err
	}
	if parent == "" || len(kids) == 0 {
		return p.errf("decompose needs a parent and at least one child")
	}
	p.scn.Decompositions = append(p.scn.Decompositions, &Decomposition{
		Parent:   parent,
		Children: kids,
		Line:     p.curLineNo(),
	})
	p.pos++
	return nil
}

// parseRequire handles: require PROP = 123.4  |  require PROP = "text"
func (p *parser) parseRequire(line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "require"))
	prop, valText, ok := strings.Cut(rest, "=")
	if !ok {
		return p.errf("require needs 'property = value' form")
	}
	prop = strings.TrimSpace(prop)
	valText = strings.TrimSpace(valText)
	var val domain.Value
	if strings.HasPrefix(valText, `"`) {
		s, err := strconv.Unquote(valText)
		if err != nil {
			return p.errf("require %s: malformed string %q", prop, valText)
		}
		val = domain.Str(s)
	} else {
		f, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			return p.errf("require %s: malformed number %q", prop, valText)
		}
		val = domain.Real(f)
	}
	p.scn.Requirements = append(p.scn.Requirements, &Requirement{
		Property: prop,
		Value:    val,
		Line:     p.curLineNo(),
	})
	p.pos++
	return nil
}
