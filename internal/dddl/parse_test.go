package dddl

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/domain"
)

const sampleDoc = `
# A miniature receiver scenario (paper §2.4 flavor).
scenario mini_receiver

object LNA_Mixer owner circuit {
    property Diff_pair_W real [0.5, 10]     # µm
    property Freq_ind    real [0.05, 2.0]   # µH
    property LNA_gain    real [0, 200]
    property Esr         enum {0.1, 0.2, 0.5}
    property Levels      string {"Transistor", "Geometry"}
}

object System owner leader {
    property PM real [0, 500]
    property Pf real [0, 500]
}

constraint Gain: 16 * Diff_pair_W >= LNA_gain
constraint Power: Pf <= PM
constraint Loss: min(Freq_ind, Esr) <= 1
monotonic Loss decreasing Freq_ind

problem Top owner leader {
    outputs { PM }
    constraints { Power }
}

problem Analog owner circuit {
    inputs { PM }
    outputs { Diff_pair_W, Freq_ind, LNA_gain, Esr }
    constraints { Gain, Loss }
}

decompose Top -> Analog
require PM = 200
`

func TestParseSample(t *testing.T) {
	s, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "mini_receiver" {
		t.Errorf("Name = %q", s.Name)
	}
	if len(s.Objects) != 2 || s.Objects[0].Name != "LNA_Mixer" || s.Objects[0].Owner != "circuit" {
		t.Errorf("Objects = %+v", s.Objects)
	}
	if len(s.Properties) != 7 {
		t.Fatalf("got %d properties", len(s.Properties))
	}
	w := s.Property("Diff_pair_W")
	if w == nil || w.Object != "LNA_Mixer" || w.Owner != "circuit" {
		t.Errorf("Diff_pair_W = %+v", w)
	}
	if !w.Domain.Equal(domain.NewInterval(0.5, 10)) {
		t.Errorf("Diff_pair_W domain = %v", w.Domain)
	}
	esr := s.Property("Esr")
	if !esr.Domain.Equal(domain.NewRealSet(0.1, 0.2, 0.5)) {
		t.Errorf("Esr domain = %v", esr.Domain)
	}
	lv := s.Property("Levels")
	if !lv.Domain.Equal(domain.NewStringSet("Transistor", "Geometry")) {
		t.Errorf("Levels domain = %v", lv.Domain)
	}
	if len(s.Constraints) != 3 {
		t.Fatalf("got %d constraints", len(s.Constraints))
	}
	loss := s.ConstraintDecl("Loss")
	if loss == nil || loss.Mono["Freq_ind"] != -1 {
		t.Errorf("Loss mono = %+v", loss)
	}
	if len(s.Problems) != 2 {
		t.Fatalf("got %d problems", len(s.Problems))
	}
	an := s.Problem("Analog")
	if an.Owner != "circuit" || len(an.Outputs) != 4 || len(an.Inputs) != 1 || len(an.Constraints) != 2 {
		t.Errorf("Analog = %+v", an)
	}
	if len(s.Decompositions) != 1 || s.Decompositions[0].Parent != "Top" {
		t.Errorf("Decompositions = %+v", s.Decompositions)
	}
	if len(s.Requirements) != 1 || s.Requirements[0].Property != "PM" || s.Requirements[0].Value.Num() != 200 {
		t.Errorf("Requirements = %+v", s.Requirements)
	}
	owners := s.Owners()
	if len(owners) != 2 || owners[0] != "leader" || owners[1] != "circuit" {
		t.Errorf("Owners = %v", owners)
	}
}

func TestBuildNetwork(t *testing.T) {
	s, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	net, err := s.BuildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if net.NumProperties() != 7 || net.NumConstraints() != 3 {
		t.Errorf("network: %d props, %d cons", net.NumProperties(), net.NumConstraints())
	}
	// Requirement bound.
	if v, ok := net.Property("PM").Value(); !ok || v.Num() != 200 {
		t.Error("requirement PM=200 not bound")
	}
	// Monotonicity override carried through.
	c := net.Constraint("Loss")
	if c.MonoOverride["Freq_ind"] != -1 {
		t.Errorf("MonoOverride = %v", c.MonoOverride)
	}
	// Owner metadata preserved.
	if net.Property("Diff_pair_W").Owner != "circuit" {
		t.Error("owner lost")
	}
	// Propagation runs over the built network.
	res := net.Propagate(constraint.PropagateOptions{})
	if res.Evaluations == 0 {
		t.Error("propagation did nothing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown directive", "frobnicate x", "unknown directive"},
		{"double scenario", "scenario a\nscenario b", "duplicate scenario"},
		{"bad scenario", "scenario", "exactly one name"},
		{"object no brace", "object X owner a", "must end with '{'"},
		{"object junk", "object X stuff {", "unexpected tokens"},
		{"object unterminated", "object X {", "unterminated object"},
		{"object non-property", "object X {\nconstraint c: x <= 1\n}", "may only contain property"},
		{"property no type", "property p", "needs a name and a type"},
		{"property bad type", "property p complex [0,1]", "unknown type"},
		{"property bad range", "property p real [0 1]", "exactly two bounds"},
		{"property empty range", "property p real [5, 1]", "empty range"},
		{"property bad bound", "property p real [a, 1]", "malformed range bounds"},
		{"property no braces", "property p enum [1, 2]", "expected {"},
		{"enum bad value", "property p enum {1, x}", "malformed enum value"},
		{"enum empty", "property p enum {}", "empty enum"},
		{"string unquoted", `property p string {abc}`, "must be quoted"},
		{"constraint no colon", "constraint c x <= 1", "'name: expression'"},
		{"constraint empty", "constraint c:", "empty expression"},
		{"constraint space name", "constraint a b: x <= 1", "malformed constraint name"},
		{"mono arity", "monotonic c increasing", "monotonic takes"},
		{"mono dir", "property x real [0,1]\nconstraint c: x <= 1\nmonotonic c sideways x", "increasing or decreasing"},
		{"mono unknown constraint", "monotonic nope increasing x", "unknown constraint"},
		{"problem no brace", "problem P owner a", "must end with '{'"},
		{"problem unterminated", "problem P {", "unterminated problem"},
		{"problem bad section", "problem P {\nwidgets { a }\n}", "unknown section"},
		{"problem bad inner", "problem P {\nnonsense\n}", "expected 'inputs|outputs|constraints"},
		{"decompose no arrow", "decompose A B", "'parent -> child1, child2'"},
		{"decompose empty child", "decompose A -> B,,C", "empty name"},
		{"require no eq", "require PM 200", "'property = value'"},
		{"require bad num", "property PM real [0,1]\nrequire PM = abc", "malformed number"},
		{"require bad str", `property S string {"a"}` + "\nrequire S = \"unterminated", "malformed string"},
	}
	for _, c := range cases {
		_, err := ParseString(c.src)
		if err == nil {
			t.Errorf("%s: no error, want %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q, want substring %q", c.name, err, c.want)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"dup property", "property x real [0,1]\nproperty x real [0,1]", "duplicate property"},
		{"dup constraint", "property x real [0,1]\nconstraint c: x <= 1\nconstraint c: x >= 0", "duplicate constraint"},
		{"unknown prop in constraint", "constraint c: q <= 1", "unknown property"},
		{"string prop in constraint", `property s string {"a"}` + "\nconstraint c: s <= 1", "non-numeric property"},
		{"bad constraint expr", "property x real [0,1]\nconstraint c: x <=", "rhs"},
		{"mono non-arg", "property x real [0,1]\nproperty y real [0,1]\nconstraint c: x <= 1\nmonotonic c increasing y", "not an argument"},
		{"dup problem", "problem P {\n}\nproblem P {\n}", "duplicate problem"},
		{"problem unknown output", "problem P {\noutputs { q }\n}", "unknown property"},
		{"problem unknown constraint", "problem P {\nconstraints { q }\n}", "unknown constraint"},
		{"decompose unknown parent", "problem P {\n}\ndecompose Q -> P", "unknown problem"},
		{"decompose unknown child", "problem P {\n}\ndecompose P -> Q", "unknown problem"},
		{"require unknown", "require q = 1", "unknown property"},
		{"require kind", "property x real [0,1]\nrequire x = \"s\"", "kind mismatch"},
	}
	for _, c := range cases {
		_, err := ParseString(c.src)
		if err == nil {
			t.Errorf("%s: no error, want %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q, want substring %q", c.name, err, c.want)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	s, err := ParseString("\n\n# only comments\nproperty x real [0, 1] # trailing\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Properties) != 1 {
		t.Errorf("got %d properties", len(s.Properties))
	}
}

func TestMustParseStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseString did not panic on bad input")
		}
	}()
	MustParseString("bogus")
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := ParseString("property x real [0,1]\n\n# comment\nbogus directive")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %q should cite line 4", err)
	}
}
