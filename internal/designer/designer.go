// Package designer implements the simulated designer model of paper
// §3.1.1 (Fig. 6): a state-based system that keeps an internal view of
// the design derived from DPM/NM information and chooses operations by
// composing three functions —
//
//	f_o = f_v ∘ f_a ∘ f_p
//
// problem selection (f_p), target property selection (f_a), and value
// selection (f_v) — each implementing the constraint-based heuristics
// the paper lists. The same designer runs in both modes; in conventional
// mode its view simply lacks propagation-derived data, and it must
// request verification operations to learn of violations.
package designer

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dcm"
	"repro/internal/domain"
	"repro/internal/dpm"
)

// Heuristics toggles the individual constraint-based heuristics so
// their contributions can be ablated (DESIGN.md §4).
type Heuristics struct {
	// SmallestSubspace: f_a focuses first on properties with the
	// smallest (normalized) feasible subspaces (§2.3.1).
	SmallestSubspace bool
	// AlphaGuided: f_a prefers properties connected to many violations
	// (§2.3.3, eq. 3).
	AlphaGuided bool
	// BetaGuided: f_a breaks ties toward properties appearing in many
	// constraints (§2.3.2).
	BetaGuided bool
	// MonotoneVoting: direction of value change chosen by counting the
	// violated monotonic constraints a move would help fix (§3.1.1).
	MonotoneVoting bool
	// FeasibleChoice: f_v picks values from the feasible subspace when
	// it is non-empty (§3.1.1).
	FeasibleChoice bool
	// TabuHistory: f_v consults the design history to avoid assignments
	// that previously led to violations (§3.1.1 footnote 2).
	TabuHistory bool
	// MarginSteps: f_v sizes fix steps from the violation margin and
	// model sensitivities (margin / |∂c/∂a|) instead of the paper's
	// fixed delta. Off by default — an extension kept for ablation.
	MarginSteps bool
	// CoordinatedFix: when single-variable moves are provably stuck
	// (the chosen candidate's movement window is empty and its fix
	// history shows repeated failures), the designer re-synthesizes the
	// whole subproblem — one operation assigning a coordinated set of
	// outputs, §2.3's "design operations that will fix many violations
	// at a time". ADPM mode only.
	CoordinatedFix bool
}

// DefaultHeuristics enables everything, matching the paper's ADPM runs.
func DefaultHeuristics() Heuristics {
	return Heuristics{
		SmallestSubspace: true,
		AlphaGuided:      true,
		BetaGuided:       true,
		MonotoneVoting:   true,
		FeasibleChoice:   true,
		TabuHistory:      true,
		CoordinatedFix:   true,
	}
}

// Config parameterizes one simulated designer.
type Config struct {
	// ID is the designer's name; it must match problem ownership in the
	// scenario.
	ID string
	// Heuristics toggles the search heuristics.
	Heuristics Heuristics
	// DeltaFrac sizes the conventional fix step as a fraction of |E_i|.
	// The paper reports deltas "around 100 times smaller than the size
	// of E_i worked well"; 0 means 0.01.
	DeltaFrac float64
	// Rand drives stochastic choices (initial guesses, tie-breaking).
	// It must be non-nil.
	Rand *rand.Rand
}

// Designer is one simulated team member.
type Designer struct {
	cfg Config
	// tabu records per-property values whose assignment immediately led
	// to new violations or failed to make progress.
	tabu map[string]map[float64]bool
	// visited records every value this designer has bound per property.
	// Conflict fixes avoid exact revisits: proposing a value already
	// tried means the fix cycle is not converging (§3.1.1 footnote 2 —
	// the design history is consulted).
	visited map[string]map[float64]bool
	// fixAttempts counts, per property|constraint pair, how many times a
	// fix of that constraint through that property has been proposed;
	// the step doubles with each repeat so walks cover large margins in
	// logarithmic time (liveness extension to the paper's fixed delta —
	// conventional status invalidation would otherwise hide failures
	// until the next verification).
	fixAttempts map[string]int
	// lastAssign remembers the property bound by this designer's most
	// recent synthesis operation, so ObserveTransition can attribute
	// resulting violations.
	lastAssign *dpm.Assignment
}

// New creates a designer. cfg.Rand must be non-nil: a designer without
// a seeded source cannot be reproduced.
func New(cfg Config) (*Designer, error) {
	if cfg.Rand == nil {
		return nil, fmt.Errorf("designer: Config.Rand must be set")
	}
	if cfg.DeltaFrac <= 0 {
		cfg.DeltaFrac = 0.01
	}
	return &Designer{
		cfg:         cfg,
		tabu:        map[string]map[float64]bool{},
		visited:     map[string]map[float64]bool{},
		fixAttempts: map[string]int{},
	}, nil
}

// MustNew is New for tests and examples; it panics on invalid config.
func MustNew(cfg Config) *Designer {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// ID returns the designer's name.
func (d *Designer) ID() string { return d.cfg.ID }

// SelectOperation implements the operation selection function f_o: it
// examines the designer's view and returns the next operation to
// request, or nil when the designer has nothing to do (all assigned
// problems solved and no known violations — or blocked on others).
func (d *Designer) SelectOperation(v *dcm.View) *dpm.Operation {
	// f_p: addressable problems (status != Waiting).
	addressable := v.AddressableProblems()

	// Conflict resolution takes precedence when violations are known
	// and involve a property this designer can modify.
	if v.KnowsViolations() {
		if op := d.selectConflictFix(v, addressable); op != nil {
			return op
		}
	}

	if len(addressable) == 0 {
		return nil
	}

	// Bind unbound outputs.
	if op := d.selectBinding(v, addressable); op != nil {
		return op
	}

	// Everything bound: request verification for constraints not yet
	// known satisfied (the conventional designer's only source of
	// violation knowledge; in ADPM mode this settles residual
	// Consistent statuses).
	if op := d.selectVerification(v, addressable); op != nil {
		return op
	}
	return nil
}

// selectConflictFix implements f_a's "focus on properties that enable
// efficient conflict resolution" branch and the corresponding f_v.
func (d *Designer) selectConflictFix(v *dcm.View, addressable []dcm.ProblemInfo) *dpm.Operation {
	// Candidates: writable properties appearing in known violations.
	type cand struct {
		prop      string
		problem   string
		motivated []string
		// fixable is the number of violations a single move of this
		// property in its best direction is likely to fix (§3.1.1: "a
		// property is selected for which a value modification is likely
		// to fix many violations").
		fixable int
		// dir is that best direction (+1/-1, 0 unknown).
		dir int
	}
	var cands []cand
	for _, pi := range addressable {
		for _, out := range pi.Outputs {
			info := v.Props[out]
			if info == nil {
				continue
			}
			var motivated []string
			plus, minus := 0, 0
			for _, vi := range v.Violations {
				dir, ok := vi.FixDirections[out]
				if !ok {
					continue
				}
				motivated = append(motivated, vi.Constraint)
				switch {
				case dir > 0:
					plus++
				case dir < 0:
					minus++
				}
			}
			if len(motivated) == 0 {
				continue
			}
			c := cand{prop: out, problem: pi.Name, motivated: motivated}
			if d.cfg.Heuristics.MonotoneVoting {
				if plus >= minus {
					c.fixable, c.dir = plus, +1
				} else {
					c.fixable, c.dir = minus, -1
				}
				if plus == 0 && minus == 0 {
					c.dir = 0
				}
			} else {
				c.fixable = len(motivated)
			}
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return nil
	}

	// Score: directional fixable count desc, movement window available
	// (an in-window move resolves the conflict in one operation) desc,
	// β desc; ties resolved randomly. A property connected to many
	// violations with conflicting directions cannot fix them by moving,
	// so raw α is only used when the α heuristic is on but monotone
	// voting is off.
	best := []cand{}
	bestKey := [4]int{-1 << 30, -1 << 30, -1 << 30, -1 << 30}
	for _, c := range cands {
		info := v.Props[c.prop]
		key := [4]int{0, 0, 0, 0}
		if d.cfg.Heuristics.AlphaGuided {
			key[0] = c.fixable
		}
		if !info.Feasible.IsEmpty() {
			key[1] = 1
		}
		// Properties whose fixes have repeatedly failed (tabu history)
		// are demoted so the search explores other handles on the
		// conflict (§3.1.1 footnote 2: the design history is consulted).
		if d.cfg.Heuristics.TabuHistory {
			key[2] = -min(len(d.tabu[c.prop]), 50)
		}
		if d.cfg.Heuristics.BetaGuided {
			key[3] = info.Beta
		}
		switch cmpKeys(key, bestKey) {
		case +1:
			bestKey = key
			best = best[:0]
			best = append(best, c)
		case 0:
			best = append(best, c)
		}
	}
	chosen := best[d.cfg.Rand.Intn(len(best))] // ties resolved randomly
	info := v.Props[chosen.prop]

	// Coordinated re-synthesis: when single-variable moves are stuck —
	// the best candidate's movement window is empty and its fixes have
	// repeatedly failed, or the conflict has dragged on across many
	// failed attempts on several properties — reassign the whole
	// subproblem in a single operation.
	if d.cfg.Heuristics.CoordinatedFix && v.ADPM && v.Resynthesize != nil {
		totalTabu := 0
		for _, c := range cands {
			totalTabu += len(d.tabu[c.prop])
		}
		stuck := (info.Feasible.IsEmpty() && len(d.tabu[chosen.prop]) >= 4) || totalTabu >= 8
		if stuck {
			if op := d.coordinatedFix(v, chosen.problem, chosen.motivated); op != nil {
				return op
			}
		}
	}

	// Movement estimate: enough to clear the worst motivating violation
	// (margin / sensitivity, computed by the DCM from the constraint and
	// tool models).
	stepHint := 0.0
	for _, vi := range v.Violations {
		if s, ok := vi.FixSteps[chosen.prop]; ok && s > stepHint {
			for _, m := range chosen.motivated {
				if m == vi.Constraint {
					stepHint = s
					break
				}
			}
		}
	}

	// Repeat-attempt counting drives the step doubling.
	attempts := 0
	for _, m := range chosen.motivated {
		key := chosen.prop + "|" + m
		if d.fixAttempts[key] > attempts {
			attempts = d.fixAttempts[key]
		}
		d.fixAttempts[key]++
	}

	val, ok := d.pickFixValue(v, info, chosen.dir, stepHint, attempts)
	if !ok {
		return nil
	}
	d.lastAssign = &dpm.Assignment{Prop: chosen.prop, Value: domain.Real(val)}
	return &dpm.Operation{
		Kind:        dpm.OpSynthesis,
		Problem:     chosen.problem,
		Designer:    d.cfg.ID,
		Assignments: []dpm.Assignment{*d.lastAssign},
		MotivatedBy: chosen.motivated,
	}
}

// coordinatedFix requests a joint assignment of the problem's outputs
// from the DCM and turns it into one multi-assignment synthesis
// operation.
func (d *Designer) coordinatedFix(v *dcm.View, problem string, motivated []string) *dpm.Operation {
	joint := v.Resynthesize(problem)
	if len(joint) == 0 {
		return nil
	}
	op := &dpm.Operation{
		Kind:        dpm.OpSynthesis,
		Problem:     problem,
		Designer:    d.cfg.ID,
		MotivatedBy: motivated,
	}
	names := make([]string, 0, len(joint))
	for prop := range joint {
		names = append(names, prop)
	}
	sort.Strings(names)
	for _, prop := range names {
		op.Assignments = append(op.Assignments, dpm.Assignment{Prop: prop, Value: domain.Real(joint[prop])})
	}
	d.lastAssign = &op.Assignments[0]
	return op
}

// pickFixValue implements f_v when resolving conflicts: prefer a value
// from the feasible subspace (choosing the endpoint that fixes most
// violations); otherwise step the current value by delta in the fixing
// direction within the initial range E_i.
func (d *Designer) pickFixValue(v *dcm.View, info *dcm.PropInfo, dir int, stepHint float64, attempts int) (float64, bool) {
	if dir == 0 {
		dir = 1 - 2*d.cfg.Rand.Intn(2) // random ±1
	}

	cur, bound := currentValue(info)
	if v.ADPM && d.cfg.Heuristics.FeasibleChoice && !info.Feasible.IsEmpty() {
		if val, ok := valueByDirection(info.Feasible, dir); ok && !(bound && val == cur) {
			// Exact revisits are avoided here too: re-proposing a window
			// endpoint already tried means two constraints are trading
			// the same value back and forth.
			if val = d.avoidRepeats(info, val, dir); !(bound && val == cur) {
				return val, true
			}
		}
	}

	if !bound {
		// Unbound property in a violation: choose from E_i.
		return d.applyTabu(info, d.initialGuess(info, dir), dir), true
	}
	// Step from the current value within E_i: the paper's fixed delta,
	// doubled for each consecutive non-improving fix of this property
	// (so large conflicts resolve in logarithmically many iterations),
	// or the margin-based estimate when that heuristic is enabled.
	delta := d.delta(info)
	if attempts > 0 {
		delta *= float64(uint64(1) << uint(min(attempts, 10)))
	}
	if d.cfg.Heuristics.MarginSteps {
		if hint := stepHint * 1.15; hint > delta {
			delta = hint
		}
	}
	if maxStep := info.Init.Measure() / 2; delta > maxStep && maxStep > 0 {
		delta = maxStep
	}
	val := cur + float64(dir)*delta
	val = clampToDomain(info.Init, val)
	if val == cur {
		// Stuck at a domain boundary: restart from a random point of E_i
		// (the constraint cannot be fixed by moving further this way).
		val = d.randomInDomain(info.Init)
	}
	val = d.avoidRepeats(info, val, dir)
	if val == cur {
		// Re-binding the current value is a wasted operation.
		val = d.randomInDomain(info.Init)
	}
	return val, true
}

// avoidRepeats steers a conflict fix off values this designer has
// already tried (tabu failures and exact revisits — an oscillating fix
// cycle re-proposes old values). A rejected value is recorded as tabu,
// which also demotes the property in future candidate selection; the
// walk continues deeper in the fix direction, falling back to a random
// restart.
func (d *Designer) avoidRepeats(info *dcm.PropInfo, val float64, dir int) float64 {
	if !d.cfg.Heuristics.TabuHistory {
		return val
	}
	bad := func(v float64) bool {
		return d.tabu[info.Name][v] || d.visited[info.Name][v]
	}
	if !bad(val) {
		return val
	}
	d.markTabu(info.Name, val)
	delta := d.delta(info)
	if dir == 0 {
		dir = 1 - 2*d.cfg.Rand.Intn(2)
	}
	cand := val
	for i := 0; i < 8; i++ {
		cand = clampToDomain(info.Init, cand+float64(dir)*delta)
		if !bad(cand) {
			return cand
		}
	}
	for i := 0; i < 8; i++ {
		r := d.randomInDomain(info.Init)
		if !bad(r) {
			return r
		}
	}
	return d.randomInDomain(info.Init)
}

func (d *Designer) markTabu(prop string, val float64) {
	if d.tabu[prop] == nil {
		d.tabu[prop] = map[float64]bool{}
	}
	d.tabu[prop][val] = true
}

// selectBinding implements f_a's "focus on most difficult subspaces"
// branch and its f_v.
func (d *Designer) selectBinding(v *dcm.View, addressable []dcm.ProblemInfo) *dpm.Operation {
	type cand struct {
		prop    string
		problem string
	}
	var cands []cand
	for _, pi := range addressable {
		for _, out := range pi.UnboundOutputs {
			cands = append(cands, cand{prop: out, problem: pi.Name})
		}
	}
	if len(cands) == 0 {
		return nil
	}

	var chosen cand
	if v.ADPM && d.cfg.Heuristics.SmallestSubspace {
		// Smallest normalized feasible subspace first; β breaks ties
		// (most-constrained property), then random.
		best := []cand{}
		bestSize := 2.0
		bestBeta := -1
		for _, c := range cands {
			info := v.Props[c.prop]
			size := 1.0
			beta := 0
			if info != nil {
				size = info.RelFeasible
				if d.cfg.Heuristics.BetaGuided {
					beta = info.Beta
				}
			}
			switch {
			case size < bestSize-1e-12 || (nearlyEqual(size, bestSize) && beta > bestBeta):
				bestSize, bestBeta = size, beta
				best = best[:0]
				best = append(best, c)
			case nearlyEqual(size, bestSize) && beta == bestBeta:
				best = append(best, c)
			}
		}
		chosen = best[d.cfg.Rand.Intn(len(best))]
	} else {
		chosen = cands[d.cfg.Rand.Intn(len(cands))]
	}

	info := v.Props[chosen.prop]
	if info == nil {
		return nil
	}
	var val float64
	if v.ADPM && d.cfg.Heuristics.FeasibleChoice && !info.Feasible.IsEmpty() {
		dir := 0
		if d.cfg.Heuristics.MonotoneVoting {
			dir = sign(info.SatVotes)
		}
		if dir == 0 {
			dir = 1 - 2*d.cfg.Rand.Intn(2)
		}
		if ev, ok := valueByDirection(info.Feasible, dir); ok {
			val = ev
		} else {
			val = d.randomInDomain(info.Feasible)
		}
		val = d.applyTabu(info, val, dir)
	} else {
		// Conventional initial guess: uniform over E_i.
		val = d.applyTabu(info, d.randomInDomain(info.Init), 0)
	}
	d.lastAssign = &dpm.Assignment{Prop: chosen.prop, Value: domain.Real(val)}
	return &dpm.Operation{
		Kind:        dpm.OpSynthesis,
		Problem:     chosen.problem,
		Designer:    d.cfg.ID,
		Assignments: []dpm.Assignment{*d.lastAssign},
	}
}

// selectVerification requests a verification operation for the first
// addressable problem with constraints a tool run would actually
// settle (unknown status, all arguments bound). Re-verifying
// already-decided constraints would waste an operation.
func (d *Designer) selectVerification(v *dcm.View, addressable []dcm.ProblemInfo) *dpm.Operation {
	for _, pi := range addressable {
		if pi.Status == dpm.Solved || len(pi.UnboundOutputs) > 0 || len(pi.VerifiableConstraints) == 0 {
			continue
		}
		return &dpm.Operation{
			Kind:     dpm.OpVerification,
			Problem:  pi.Name,
			Designer: d.cfg.ID,
			Verify:   pi.VerifiableConstraints,
		}
	}
	return nil
}

// ObserveTransition updates the designer's internal state (next-state
// function of Fig. 6) from the result of its own operation: assignments
// that immediately produced new violations become tabu.
func (d *Designer) ObserveTransition(tr *dpm.Transition) {
	if tr == nil || d.lastAssign == nil {
		return
	}
	if tr.Op.Designer != d.cfg.ID || tr.Op.Kind != dpm.OpSynthesis {
		return
	}
	if d.cfg.Heuristics.TabuHistory && !d.lastAssign.Value.IsString() {
		prop := d.lastAssign.Prop
		val := d.lastAssign.Value.Num()
		if d.visited[prop] == nil {
			d.visited[prop] = map[float64]bool{}
		}
		d.visited[prop][val] = true
		// An assignment becomes tabu when it produced new violations, or
		// when it was a conflict fix that failed to reduce the number of
		// open violations.
		failed := len(tr.NewViolations) > 0 ||
			(len(tr.Op.MotivatedBy) > 0 && len(tr.ViolationsAfter) >= len(tr.ViolationsBefore))
		if failed {
			d.markTabu(prop, val)
		}
	}
	d.lastAssign = nil
}

// TabuSize reports how many assignments are currently tabu (for tests
// and statistics).
func (d *Designer) TabuSize() int {
	n := 0
	for _, m := range d.tabu {
		n += len(m)
	}
	return n
}

// applyTabu nudges a candidate value off previously-failed assignments.
func (d *Designer) applyTabu(info *dcm.PropInfo, val float64, dir int) float64 {
	if !d.cfg.Heuristics.TabuHistory {
		return val
	}
	seen := d.tabu[info.Name]
	if seen == nil || !seen[val] {
		return val
	}
	delta := d.delta(info)
	if dir == 0 {
		dir = 1 - 2*d.cfg.Rand.Intn(2)
	}
	// Walk away from the tabu value; reverse at the domain edge.
	cand := val
	for i := 0; i < 8; i++ {
		cand = clampToDomain(info.Init, cand-float64(dir)*delta)
		if !seen[cand] {
			return cand
		}
	}
	return d.randomInDomain(info.Init)
}

// delta is the fix step size: DeltaFrac · |E_i| for continuous domains
// and one inter-element gap for discrete ones.
func (d *Designer) delta(info *dcm.PropInfo) float64 {
	if reals := info.Init.Reals(); reals != nil {
		if len(reals) > 1 {
			return (reals[len(reals)-1] - reals[0]) / float64(len(reals)-1)
		}
		return 1
	}
	m := info.Init.Measure()
	if m <= 0 {
		return 1
	}
	return m * d.cfg.DeltaFrac
}

// initialGuess picks a starting value for an unbound property involved
// in a violation: the endpoint of E_i in the helpful direction.
func (d *Designer) initialGuess(info *dcm.PropInfo, dir int) float64 {
	if val, ok := valueByDirection(info.Init, dir); ok {
		return val
	}
	return d.randomInDomain(info.Init)
}

// randomInDomain draws a uniform value from a numeric domain.
func (d *Designer) randomInDomain(dom domain.Domain) float64 {
	if reals := dom.Reals(); reals != nil {
		return reals[d.cfg.Rand.Intn(len(reals))]
	}
	iv, ok := dom.Interval()
	if !ok || iv.IsEmpty() {
		return 0
	}
	if !iv.IsBounded() {
		return iv.Mid()
	}
	return iv.Lo + d.cfg.Rand.Float64()*(iv.Hi-iv.Lo)
}

// valueByDirection returns the top (dir>0) or bottom (dir<0) value of a
// numeric domain, per the paper's f_v ("for ordered value sets, we
// choose the top or bottom value"). For continuous domains the value is
// backed off 2% of the width into the interior: a value sitting exactly
// on a constraint boundary flips between satisfied and violated with
// floating-point noise and leaves no margin for the next trade-off.
func valueByDirection(dom domain.Domain, dir int) (float64, bool) {
	lo, okLo := dom.Min()
	hi, okHi := dom.Max()
	if !okLo || !okHi {
		return 0, false
	}
	if dom.Kind() != domain.Continuous {
		if dir >= 0 {
			return hi, true
		}
		return lo, true
	}
	inset := 0.02 * (hi - lo)
	if dir >= 0 {
		return hi - inset, true
	}
	return lo + inset, true
}

func currentValue(info *dcm.PropInfo) (float64, bool) {
	if info.Bound == nil || info.Bound.IsString() {
		return 0, false
	}
	return info.Bound.Num(), true
}

func clampToDomain(dom domain.Domain, v float64) float64 {
	if reals := dom.Reals(); reals != nil {
		// Snap to the nearest discrete element.
		best, bd := reals[0], absF(reals[0]-v)
		for _, r := range reals[1:] {
			if d := absF(r - v); d < bd {
				best, bd = r, d
			}
		}
		return best
	}
	iv, ok := dom.Interval()
	if !ok || iv.IsEmpty() {
		return v
	}
	return iv.Clamp(v)
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func nearlyEqual(a, b float64) bool { return absF(a-b) <= 1e-12 }

// cmpKeys lexicographically compares two score vectors.
func cmpKeys(a, b [4]int) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] > b[i] {
				return 1
			}
			return -1
		}
	}
	return 0
}
