package designer

import (
	"math/rand"
	"testing"

	"repro/internal/dcm"
	"repro/internal/dddl"
	"repro/internal/domain"
	"repro/internal/dpm"
)

const designerDoc = `
scenario designer_test

object Sys owner leader {
    property Budget real [0, 100]
}
object A owner alice {
    property Pa real [0, 100]
    property Qa real [0, 10]
}
object B owner bob {
    property Pb real [0, 100]
}

constraint Split: Pa + Pb <= Budget
constraint AMin: Pa >= 10
constraint QaCap: Qa <= 2

problem Top owner leader {
    constraints { Split }
}
problem SubA owner alice {
    inputs { Budget }
    outputs { Pa, Qa }
    constraints { AMin, QaCap }
}
problem SubB owner bob {
    inputs { Budget }
    outputs { Pb }
    constraints { }
}

decompose Top -> SubA, SubB
require Budget = 60
`

func newDPM(t *testing.T, mode dpm.Mode) *dpm.DPM {
	t.Helper()
	scn, err := dddl.ParseString(designerDoc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dpm.FromScenario(scn, mode)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newDesigner(id string, seed int64) *Designer {
	return MustNew(Config{ID: id, Heuristics: DefaultHeuristics(), Rand: rand.New(rand.NewSource(seed))})
}

func TestNewPanicsWithoutRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New without Rand did not panic")
		}
	}()
	MustNew(Config{ID: "x"})
}

func TestBindingSmallestSubspaceFirst(t *testing.T) {
	d := newDPM(t, dpm.ADPM)
	// Qa's initial range is [0,10] with QaCap <= 2: relative feasible
	// 0.2. Pa is narrowed by Split and AMin to [10,60]: relative 0.5.
	// The smallest-subspace heuristic must pick Qa first.
	al := newDesigner("alice", 1)
	op := al.SelectOperation(dcm.BuildView(d, "alice"))
	if op == nil || op.Kind != dpm.OpSynthesis {
		t.Fatalf("op = %v", op)
	}
	if op.Assignments[0].Prop != "Qa" {
		t.Errorf("first binding = %s, want Qa (smallest feasible subspace)", op.Assignments[0].Prop)
	}
	if op.Designer != "alice" || op.Problem != "SubA" {
		t.Errorf("op attribution: %+v", op)
	}
	// The chosen value must come from the feasible subspace [0,2].
	v := op.Assignments[0].Value.Num()
	if v < 0 || v > 2 {
		t.Errorf("value %v outside feasible [0,2]", v)
	}
}

func TestBindingConventionalIsRandomWithinInit(t *testing.T) {
	d := newDPM(t, dpm.Conventional)
	al := newDesigner("alice", 2)
	op := al.SelectOperation(dcm.BuildView(d, "alice"))
	if op == nil || op.Kind != dpm.OpSynthesis {
		t.Fatalf("op = %v", op)
	}
	v := op.Assignments[0].Value.Num()
	prop := op.Assignments[0].Prop
	hi := 100.0
	if prop == "Qa" {
		hi = 10
	}
	if v < 0 || v > hi {
		t.Errorf("conventional guess %v outside E_i", v)
	}
	// Different seeds must eventually give different props/values.
	seen := map[string]bool{}
	for s := int64(0); s < 10; s++ {
		o := newDesigner("alice", s).SelectOperation(dcm.BuildView(d, "alice"))
		seen[o.Assignments[0].Prop] = true
	}
	if len(seen) < 2 {
		t.Error("conventional binding order shows no randomness across seeds")
	}
}

func TestVerificationAfterAllBound(t *testing.T) {
	d := newDPM(t, dpm.Conventional)
	mustApply(t, d, dpm.Operation{
		Kind: dpm.OpSynthesis, Problem: "SubA", Designer: "alice",
		Assignments: []dpm.Assignment{{Prop: "Pa", Value: domain.Real(40)}},
	})
	mustApply(t, d, dpm.Operation{
		Kind: dpm.OpSynthesis, Problem: "SubA", Designer: "alice",
		Assignments: []dpm.Assignment{{Prop: "Qa", Value: domain.Real(3)}},
	})
	al := newDesigner("alice", 3)
	op := al.SelectOperation(dcm.BuildView(d, "alice"))
	if op == nil || op.Kind != dpm.OpVerification || op.Problem != "SubA" {
		t.Fatalf("op = %v, want verification of SubA", op)
	}
}

func TestIdleWhenSolved(t *testing.T) {
	d := newDPM(t, dpm.Conventional)
	for _, step := range []dpm.Operation{
		{Kind: dpm.OpSynthesis, Problem: "SubA", Designer: "alice",
			Assignments: []dpm.Assignment{{Prop: "Pa", Value: domain.Real(40)}}},
		{Kind: dpm.OpSynthesis, Problem: "SubA", Designer: "alice",
			Assignments: []dpm.Assignment{{Prop: "Qa", Value: domain.Real(1)}}},
		{Kind: dpm.OpVerification, Problem: "SubA", Designer: "alice"},
	} {
		mustApply(t, d, step)
	}
	al := newDesigner("alice", 4)
	if op := al.SelectOperation(dcm.BuildView(d, "alice")); op != nil {
		t.Errorf("solved designer still requested %v", op)
	}
}

func TestConflictFixMovesTowardSatisfaction(t *testing.T) {
	d := newDPM(t, dpm.ADPM)
	mustApply(t, d, dpm.Operation{
		Kind: dpm.OpSynthesis, Problem: "SubA", Designer: "alice",
		Assignments: []dpm.Assignment{{Prop: "Pa", Value: domain.Real(50)}},
	})
	mustApply(t, d, dpm.Operation{
		Kind: dpm.OpSynthesis, Problem: "SubB", Designer: "bob",
		Assignments: []dpm.Assignment{{Prop: "Pb", Value: domain.Real(50)}},
	})
	// Split violated (100 > 60). Bob's fix must decrease Pb.
	bob := newDesigner("bob", 5)
	view := dcm.BuildView(d, "bob")
	if !view.KnowsViolations() {
		t.Fatal("bob should know the violation in ADPM mode")
	}
	op := bob.SelectOperation(view)
	if op == nil || op.Kind != dpm.OpSynthesis {
		t.Fatalf("op = %v", op)
	}
	if op.Assignments[0].Prop != "Pb" {
		t.Fatalf("target = %s", op.Assignments[0].Prop)
	}
	if got := op.Assignments[0].Value.Num(); got >= 50 {
		t.Errorf("fix moved Pb to %v, want decrease", got)
	}
	if len(op.MotivatedBy) != 1 || op.MotivatedBy[0] != "Split" {
		t.Errorf("MotivatedBy = %v", op.MotivatedBy)
	}
	// The ADPM fix should land inside the movement window [0,10]
	// (given Pa=50, Budget=60), fixing the violation in one operation.
	if got := op.Assignments[0].Value.Num(); got > 10+1e-9 {
		t.Errorf("fix %v outside movement window [0,10]", got)
	}
}

func TestConflictFixConventionalDeltaStep(t *testing.T) {
	d := newDPM(t, dpm.Conventional)
	for _, step := range []dpm.Operation{
		{Kind: dpm.OpSynthesis, Problem: "SubA", Designer: "alice",
			Assignments: []dpm.Assignment{{Prop: "Pa", Value: domain.Real(50)}}},
		{Kind: dpm.OpSynthesis, Problem: "SubA", Designer: "alice",
			Assignments: []dpm.Assignment{{Prop: "Qa", Value: domain.Real(3)}}},
		{Kind: dpm.OpSynthesis, Problem: "SubB", Designer: "bob",
			Assignments: []dpm.Assignment{{Prop: "Pb", Value: domain.Real(50)}}},
		{Kind: dpm.OpVerification, Problem: "SubA", Designer: "alice"},
		{Kind: dpm.OpVerification, Problem: "Top", Designer: "leader"},
	} {
		mustApply(t, d, step)
	}
	// Split now known violated. With default heuristics the first fix
	// is the paper's fixed delta of 1%% of |E_i| = 1, so Pb moves to 49.
	bob := MustNew(Config{ID: "bob", Heuristics: DefaultHeuristics(), DeltaFrac: 0.01,
		Rand: rand.New(rand.NewSource(6))})
	op := bob.SelectOperation(dcm.BuildView(d, "bob"))
	if op == nil || op.Assignments[0].Prop != "Pb" {
		t.Fatalf("op = %v", op)
	}
	got := op.Assignments[0].Value.Num()
	if got != 49 {
		t.Errorf("delta step moved Pb to %v, want 49", got)
	}
	// With MarginSteps enabled, the step is sized to the margin 40
	// (50+50-60) with 15%% overshoot: Pb moves to 50 - 46 = 4.
	h := DefaultHeuristics()
	h.MarginSteps = true
	bob2 := MustNew(Config{ID: "bob", Heuristics: h, DeltaFrac: 0.01,
		Rand: rand.New(rand.NewSource(6))})
	op = bob2.SelectOperation(dcm.BuildView(d, "bob"))
	got = op.Assignments[0].Value.Num()
	if got < 3.9 || got > 4.1 {
		t.Errorf("margin step moved Pb to %v, want ≈4", got)
	}
}

func TestTabuAvoidsRepeatedFailure(t *testing.T) {
	d := newDPM(t, dpm.ADPM)
	al := newDesigner("alice", 7)
	// Fake a failed assignment: alice bound Pa=70 and a violation appeared.
	view := dcm.BuildView(d, "alice")
	op := al.SelectOperation(view)
	if op == nil {
		t.Fatal("no op")
	}
	tr := &dpm.Transition{
		Op:            *op,
		NewViolations: []string{"Split"},
	}
	al.ObserveTransition(tr)
	if al.TabuSize() != 1 {
		t.Fatalf("tabu size = %d", al.TabuSize())
	}
	// A transition from another designer must not touch tabu.
	al.ObserveTransition(&dpm.Transition{
		Op:            dpm.Operation{Designer: "bob", Kind: dpm.OpSynthesis},
		NewViolations: []string{"Split"},
	})
	if al.TabuSize() != 1 {
		t.Error("foreign transition affected tabu")
	}
	al.ObserveTransition(nil) // no panic
}

func TestObserveTransitionNoViolationNoTabu(t *testing.T) {
	d := newDPM(t, dpm.ADPM)
	al := newDesigner("alice", 8)
	op := al.SelectOperation(dcm.BuildView(d, "alice"))
	al.ObserveTransition(&dpm.Transition{Op: *op})
	if al.TabuSize() != 0 {
		t.Error("clean transition created tabu entries")
	}
}

func TestHeuristicTogglesChangeBehavior(t *testing.T) {
	d := newDPM(t, dpm.ADPM)
	// With SmallestSubspace off, the first binding choice across seeds
	// should not always be Qa.
	h := DefaultHeuristics()
	h.SmallestSubspace = false
	seen := map[string]bool{}
	for s := int64(0); s < 20; s++ {
		al := MustNew(Config{ID: "alice", Heuristics: h, Rand: rand.New(rand.NewSource(s))})
		op := al.SelectOperation(dcm.BuildView(d, "alice"))
		seen[op.Assignments[0].Prop] = true
	}
	if !seen["Pa"] {
		t.Error("with SmallestSubspace off, Pa never chosen first across 20 seeds")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	for _, mode := range []dpm.Mode{dpm.Conventional, dpm.ADPM} {
		d1 := newDPM(t, mode)
		d2 := newDPM(t, mode)
		a1 := newDesigner("alice", 42)
		a2 := newDesigner("alice", 42)
		op1 := a1.SelectOperation(dcm.BuildView(d1, "alice"))
		op2 := a2.SelectOperation(dcm.BuildView(d2, "alice"))
		if op1.String() != op2.String() {
			t.Errorf("mode %v: same seed, different ops: %v vs %v", mode, op1, op2)
		}
	}
}

func TestLeaderIdlesWhileChildrenOpen(t *testing.T) {
	d := newDPM(t, dpm.Conventional)
	lead := newDesigner("leader", 9)
	if op := lead.SelectOperation(dcm.BuildView(d, "leader")); op != nil {
		t.Errorf("leader acted while Top is Waiting: %v", op)
	}
}

func mustApply(t *testing.T, d *dpm.DPM, op dpm.Operation) {
	t.Helper()
	if _, err := d.Apply(op); err != nil {
		t.Fatal(err)
	}
}
