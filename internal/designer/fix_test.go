package designer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dcm"
	"repro/internal/dddl"
	"repro/internal/domain"
	"repro/internal/dpm"
)

// fixDoc is a one-designer conflict scenario: a single variable with a
// floor requirement, so the fix direction and step sizes are exactly
// predictable.
const fixDoc = `
scenario fix_test

object Specs {
    property MinOut real [0, 1000]
}
object Blk owner eng {
    property X real [0, 100]

    derived Out real [0, 1000] = 2 * X
}
constraint OutSpec: Out >= MinOut

problem Top owner lead {
    inputs { MinOut }
    constraints { OutSpec }
}
problem Work owner eng {
    outputs { X }
    constraints { }
}
decompose Top -> Work
require MinOut = 100
`

func fixProcess(t *testing.T, mode dpm.Mode) *dpm.DPM {
	t.Helper()
	scn, err := dddl.ParseString(fixDoc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dpm.FromScenario(scn, mode)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// driveToConflict binds X low and (in conventional mode) verifies so the
// violation is known.
func driveToConflict(t *testing.T, d *dpm.DPM, x float64) {
	t.Helper()
	if _, err := d.Apply(dpm.Operation{
		Kind: dpm.OpSynthesis, Problem: "Work", Designer: "eng",
		Assignments: []dpm.Assignment{{Prop: "X", Value: domain.Real(x)}},
	}); err != nil {
		t.Fatal(err)
	}
	if d.Mode == dpm.Conventional {
		if _, err := d.Apply(dpm.Operation{
			Kind: dpm.OpVerification, Problem: "Top", Designer: "lead",
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFixStepDoublesOnRepeatedAttempts(t *testing.T) {
	d := fixProcess(t, dpm.Conventional)
	driveToConflict(t, d, 10) // Out = 20 < 100
	eng := MustNew(Config{ID: "eng", Heuristics: DefaultHeuristics(),
		Rand: rand.New(rand.NewSource(1))})

	var steps []float64
	cur := 10.0
	for i := 0; i < 4; i++ {
		view := dcm.BuildView(d, "eng")
		if !view.KnowsViolations() {
			// Re-verify to rediscover the (still present) violation.
			if _, err := d.Apply(dpm.Operation{
				Kind: dpm.OpVerification, Problem: "Top", Designer: "lead",
			}); err != nil {
				t.Fatal(err)
			}
			view = dcm.BuildView(d, "eng")
		}
		op := eng.SelectOperation(view)
		if op == nil || op.Kind != dpm.OpSynthesis {
			t.Fatalf("iteration %d: op = %v", i, op)
		}
		next := op.Assignments[0].Value.Num()
		steps = append(steps, next-cur)
		tr, err := d.Apply(*op)
		if err != nil {
			t.Fatal(err)
		}
		eng.ObserveTransition(tr)
		cur = next
	}
	// The paper's delta is 1% of |E_i| = 1; repeats double: 1, 2, 4, 8.
	want := []float64{1, 2, 4, 8}
	for i, w := range want {
		if math.Abs(steps[i]-w) > 1e-9 {
			t.Errorf("step %d = %v, want %v (steps %v)", i, steps[i], w, steps)
		}
	}
}

func TestMarginStepsJumpToEstimate(t *testing.T) {
	d := fixProcess(t, dpm.Conventional)
	driveToConflict(t, d, 10) // Out = 20, margin 80, dOut/dX = 2 → step 40·1.15
	h := DefaultHeuristics()
	h.MarginSteps = true
	eng := MustNew(Config{ID: "eng", Heuristics: h, Rand: rand.New(rand.NewSource(1))})
	op := eng.SelectOperation(dcm.BuildView(d, "eng"))
	if op == nil {
		t.Fatal("no op")
	}
	got := op.Assignments[0].Value.Num()
	want := 10 + 40*1.15
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("margin step moved X to %v, want %v", got, want)
	}
}

func TestADPMFixUsesWindowWithInset(t *testing.T) {
	d := fixProcess(t, dpm.ADPM)
	driveToConflict(t, d, 10)
	eng := MustNew(Config{ID: "eng", Heuristics: DefaultHeuristics(),
		Rand: rand.New(rand.NewSource(1))})
	op := eng.SelectOperation(dcm.BuildView(d, "eng"))
	if op == nil {
		t.Fatal("no op")
	}
	got := op.Assignments[0].Value.Num()
	// Movement window for X is [50, 100]; direction +1 picks the top
	// inset by 2% of the width: 100 - 0.02·50 = 99.
	if math.Abs(got-99) > 0.2 {
		t.Errorf("window fix moved X to %v, want ≈99", got)
	}
	// One operation resolves the conflict.
	tr, err := d.Apply(*op)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.ViolationsAfter) != 0 {
		t.Errorf("violations after window fix: %v", tr.ViolationsAfter)
	}
}

func TestAvoidRepeatsBreaksCycles(t *testing.T) {
	d := fixProcess(t, dpm.ADPM)
	driveToConflict(t, d, 10)
	eng := MustNew(Config{ID: "eng", Heuristics: DefaultHeuristics(),
		Rand: rand.New(rand.NewSource(1))})
	view := dcm.BuildView(d, "eng")
	op1 := eng.SelectOperation(view)
	v1 := op1.Assignments[0].Value.Num()
	// Pretend the fix was applied and failed (violations persist), then
	// the same conflict recurs: the designer must not repeat v1 exactly.
	eng.ObserveTransition(&dpm.Transition{
		Op:               *op1,
		ViolationsBefore: []string{"OutSpec"},
		ViolationsAfter:  []string{"OutSpec"},
	})
	op2 := eng.SelectOperation(view)
	if op2 == nil {
		t.Fatal("no second op")
	}
	if v2 := op2.Assignments[0].Value.Num(); v2 == v1 {
		t.Errorf("designer repeated the exact failed value %v", v1)
	}
}

func TestTabuDemotionShiftsCandidates(t *testing.T) {
	// Two-variable conflict: with heavy tabu on one variable the
	// designer must switch to the other.
	const doc = `
scenario demote

object Specs {
    property MinOut real [0, 1000]
}
object Blk owner eng {
    property A real [0, 100]
    property B real [0, 100]

    derived Out real [0, 1000] = A + B
}
constraint OutSpec: Out >= MinOut

problem Top owner lead {
    inputs { MinOut }
    constraints { OutSpec }
}
problem Work owner eng {
    outputs { A, B }
    constraints { }
}
decompose Top -> Work
require MinOut = 150
`
	scn, err := dddl.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dpm.FromScenario(scn, dpm.ADPM)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"A", "B"} {
		if _, err := d.Apply(dpm.Operation{
			Kind: dpm.OpSynthesis, Problem: "Work", Designer: "eng",
			Assignments: []dpm.Assignment{{Prop: p, Value: domain.Real(10)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng := MustNew(Config{ID: "eng", Heuristics: DefaultHeuristics(),
		Rand: rand.New(rand.NewSource(3))})
	// Pre-load failure history for A only.
	for i := 0; i < 5; i++ {
		eng.markTabu("A", float64(i))
	}
	view := dcm.BuildView(d, "eng")
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		e := MustNew(Config{ID: "eng", Heuristics: DefaultHeuristics(),
			Rand: rand.New(rand.NewSource(int64(i)))})
		for j := 0; j < 5; j++ {
			e.markTabu("A", float64(j))
		}
		op := e.SelectOperation(view)
		counts[op.Assignments[0].Prop]++
	}
	if counts["B"] != 10 {
		t.Errorf("tabu-demoted A still chosen: counts %v", counts)
	}
}

func TestCoordinatedFixEmitsMultiAssignment(t *testing.T) {
	// Two outputs locked in a joint conflict: Out = A + B must be >= 150
	// while each variable alone caps at 100, and both sit low. With the
	// candidate's movement window empty... here windows are non-empty, so
	// drive the prolonged-conflict trigger by pre-loading tabu history.
	const doc = `
scenario coord

object Specs {
    property MinOut real [0, 1000]
}
object Blk owner eng {
    property A real [0, 100]
    property B real [0, 100]

    derived Out real [0, 1000] = A + B
}
constraint OutSpec: Out >= MinOut

problem Top owner lead {
    inputs { MinOut }
    constraints { OutSpec }
}
problem Work owner eng {
    outputs { A, B }
    constraints { }
}
decompose Top -> Work
require MinOut = 150
`
	scn, err := dddl.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dpm.FromScenario(scn, dpm.ADPM)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"A", "B"} {
		if _, err := d.Apply(dpm.Operation{
			Kind: dpm.OpSynthesis, Problem: "Work", Designer: "eng",
			Assignments: []dpm.Assignment{{Prop: p, Value: domain.Real(10)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng := MustNew(Config{ID: "eng", Heuristics: DefaultHeuristics(),
		Rand: rand.New(rand.NewSource(1))})
	for i := 0; i < 5; i++ {
		eng.markTabu("A", float64(i))
		eng.markTabu("B", float64(i))
	}
	view := dcm.BuildView(d, "eng")
	if view.Resynthesize == nil {
		t.Fatal("ADPM view missing resynthesis hook")
	}
	op := eng.SelectOperation(view)
	if op == nil || op.Kind != dpm.OpSynthesis {
		t.Fatalf("op = %v", op)
	}
	if len(op.Assignments) != 2 {
		t.Fatalf("coordinated fix should reassign both outputs, got %v", op.Assignments)
	}
	// Applying it resolves the conflict in one operation.
	tr, err := d.Apply(*op)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.ViolationsAfter) != 0 {
		t.Errorf("violations after coordinated fix: %v", tr.ViolationsAfter)
	}
	sum := op.Assignments[0].Value.Num() + op.Assignments[1].Value.Num()
	if sum < 150 {
		t.Errorf("joint assignment sums to %v < 150", sum)
	}
}

func TestCoordinatedFixDisabledFallsBack(t *testing.T) {
	h := DefaultHeuristics()
	h.CoordinatedFix = false
	d := fixProcess(t, dpm.ADPM)
	driveToConflict(t, d, 10)
	eng := MustNew(Config{ID: "eng", Heuristics: h, Rand: rand.New(rand.NewSource(1))})
	for i := 0; i < 10; i++ {
		eng.markTabu("X", float64(200+i))
	}
	op := eng.SelectOperation(dcm.BuildView(d, "eng"))
	if op == nil {
		t.Fatal("no op")
	}
	if len(op.Assignments) != 1 {
		t.Errorf("with CoordinatedFix off the fix should be single-variable, got %v", op.Assignments)
	}
}
