package designer

import (
	"math/rand"
	"testing"

	"repro/internal/dcm"
	"repro/internal/domain"
	"repro/internal/interval"
)

func TestValueByDirection(t *testing.T) {
	c := domain.NewInterval(0, 100)
	top, ok := valueByDirection(c, +1)
	if !ok || top != 98 { // 2% inset from 100
		t.Errorf("top = %v, %v", top, ok)
	}
	bot, _ := valueByDirection(c, -1)
	if bot != 2 {
		t.Errorf("bottom = %v", bot)
	}
	// Discrete domains use true endpoints.
	d := domain.NewRealSet(1, 5, 9)
	if v, _ := valueByDirection(d, +1); v != 9 {
		t.Errorf("discrete top = %v", v)
	}
	if v, _ := valueByDirection(d, -1); v != 1 {
		t.Errorf("discrete bottom = %v", v)
	}
	// Unbounded and string domains report failure.
	if _, ok := valueByDirection(domain.FromInterval(interval.Entire()), 1); ok {
		t.Error("unbounded domain should fail")
	}
	if _, ok := valueByDirection(domain.NewStringSet("a"), 1); ok {
		t.Error("string domain should fail")
	}
}

func TestClampToDomain(t *testing.T) {
	c := domain.NewInterval(2, 8)
	if clampToDomain(c, 1) != 2 || clampToDomain(c, 9) != 8 || clampToDomain(c, 5) != 5 {
		t.Error("continuous clamp wrong")
	}
	// Discrete snaps to the nearest set element.
	d := domain.NewRealSet(1, 5, 9)
	if clampToDomain(d, 2) != 1 || clampToDomain(d, 4) != 5 || clampToDomain(d, 100) != 9 {
		t.Error("discrete snap wrong")
	}
	// String domain: value passes through.
	if clampToDomain(domain.NewStringSet("a"), 7) != 7 {
		t.Error("string clamp should pass through")
	}
}

func TestCurrentValue(t *testing.T) {
	b := domain.Real(4)
	info := &dcm.PropInfo{Bound: &b}
	if v, ok := currentValue(info); !ok || v != 4 {
		t.Error("bound numeric value lost")
	}
	if _, ok := currentValue(&dcm.PropInfo{}); ok {
		t.Error("unbound should report false")
	}
	s := domain.Str("x")
	if _, ok := currentValue(&dcm.PropInfo{Bound: &s}); ok {
		t.Error("string binding should report false")
	}
}

func TestDeltaSizing(t *testing.T) {
	d := MustNew(Config{ID: "x", Rand: rand.New(rand.NewSource(1)), DeltaFrac: 0.01})
	// Continuous: 1% of |E_i|.
	if got := d.delta(&dcm.PropInfo{Name: "a", Init: domain.NewInterval(0, 200)}); got != 2 {
		t.Errorf("continuous delta = %v", got)
	}
	// Discrete: one inter-element gap (range / (n-1)).
	if got := d.delta(&dcm.PropInfo{Name: "b", Init: domain.NewRealSet(1, 2, 5)}); got != 2 {
		t.Errorf("discrete delta = %v", got)
	}
	// Single-element set: unit step.
	if got := d.delta(&dcm.PropInfo{Name: "c", Init: domain.NewRealSet(7)}); got != 1 {
		t.Errorf("singleton delta = %v", got)
	}
	// Degenerate continuous: unit step.
	if got := d.delta(&dcm.PropInfo{Name: "d", Init: domain.NewInterval(3, 3)}); got != 1 {
		t.Errorf("degenerate delta = %v", got)
	}
}

func TestRandomInDomain(t *testing.T) {
	d := MustNew(Config{ID: "x", Rand: rand.New(rand.NewSource(2))})
	for i := 0; i < 20; i++ {
		v := d.randomInDomain(domain.NewInterval(5, 6))
		if v < 5 || v > 6 {
			t.Fatalf("random %v outside [5,6]", v)
		}
	}
	set := domain.NewRealSet(1, 2, 3)
	for i := 0; i < 20; i++ {
		v := d.randomInDomain(set)
		if v != 1 && v != 2 && v != 3 {
			t.Fatalf("random %v outside set", v)
		}
	}
	// Unbounded: midpoint fallback; empty: zero.
	if v := d.randomInDomain(domain.FromInterval(interval.Entire())); v != 0 {
		t.Errorf("unbounded random = %v", v)
	}
	if v := d.randomInDomain(domain.Empty(domain.Continuous)); v != 0 {
		t.Errorf("empty random = %v", v)
	}
}

func TestInitialGuess(t *testing.T) {
	d := MustNew(Config{ID: "x", Rand: rand.New(rand.NewSource(3))})
	info := &dcm.PropInfo{Name: "p", Init: domain.NewInterval(0, 100)}
	if v := d.initialGuess(info, +1); v != 98 {
		t.Errorf("guess up = %v", v)
	}
	if v := d.initialGuess(info, -1); v != 2 {
		t.Errorf("guess down = %v", v)
	}
	// Unbounded: falls back to random (mid of entire = 0).
	ub := &dcm.PropInfo{Name: "q", Init: domain.FromInterval(interval.Entire())}
	if v := d.initialGuess(ub, +1); v != 0 {
		t.Errorf("unbounded guess = %v", v)
	}
}

func TestApplyTabuWalksAway(t *testing.T) {
	d := MustNew(Config{ID: "x", Heuristics: DefaultHeuristics(), Rand: rand.New(rand.NewSource(4))})
	info := &dcm.PropInfo{Name: "p", Init: domain.NewInterval(0, 100)}
	// Nothing tabu: value passes through.
	if v := d.applyTabu(info, 50, +1); v != 50 {
		t.Errorf("clean applyTabu = %v", v)
	}
	// Tabu value: nudged off it.
	d.markTabu("p", 50)
	if v := d.applyTabu(info, 50, +1); v == 50 {
		t.Error("tabu value returned unchanged")
	}
	// Heuristic off: tabu ignored.
	d2 := MustNew(Config{ID: "y", Rand: rand.New(rand.NewSource(5))})
	d2.markTabu("p", 50)
	if v := d2.applyTabu(info, 50, +1); v != 50 {
		t.Error("tabu applied with heuristic off")
	}
}
