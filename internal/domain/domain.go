// Package domain models the value ranges E_i of design properties and
// their feasible subsets v_F(a_i) (paper §2.1, §2.3.1).
//
// The paper allows property values to be "numbers, strings, tuples, or
// complex descriptions". This package supports the forms the evaluation
// actually exercises: continuous real intervals (circuit and device
// parameters), finite sets of reals (enumerated choices such as standard
// component values), and finite sets of strings (categorical properties
// such as abstraction levels in Fig. 2).
package domain

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/interval"
)

// Kind discriminates the representation of a Domain.
type Kind int

const (
	// Continuous domains are real intervals.
	Continuous Kind = iota
	// DiscreteReal domains are finite sorted sets of reals.
	DiscreteReal
	// DiscreteString domains are finite sorted sets of strings.
	DiscreteString
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Continuous:
		return "continuous"
	case DiscreteReal:
		return "discrete-real"
	case DiscreteString:
		return "discrete-string"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a single property value: either a real number or a string.
type Value struct {
	num   float64
	str   string
	isStr bool
}

// Real returns a numeric Value.
func Real(v float64) Value { return Value{num: v} }

// Str returns a string Value.
func Str(s string) Value { return Value{str: s, isStr: true} }

// IsString reports whether the value is a string.
func (v Value) IsString() bool { return v.isStr }

// Num returns the numeric payload (0 for string values).
func (v Value) Num() float64 { return v.num }

// Text returns the string payload ("" for numeric values).
func (v Value) Text() string { return v.str }

// Equal reports whether two values are identical.
func (v Value) Equal(o Value) bool {
	if v.isStr != o.isStr {
		return false
	}
	if v.isStr {
		return v.str == o.str
	}
	return v.num == o.num
}

// String formats the value.
func (v Value) String() string {
	if v.isStr {
		return fmt.Sprintf("%q", v.str)
	}
	return fmt.Sprintf("%g", v.num)
}

// Domain is an immutable set of candidate values for a property.
// The zero Domain is an empty continuous domain.
type Domain struct {
	kind  Kind
	iv    interval.Interval
	reals []float64 // sorted, deduplicated
	strs  []string  // sorted, deduplicated
}

// FromInterval returns a continuous domain over iv.
func FromInterval(iv interval.Interval) Domain {
	return Domain{kind: Continuous, iv: iv}
}

// NewInterval returns the continuous domain [lo, hi].
func NewInterval(lo, hi float64) Domain {
	return FromInterval(interval.New(lo, hi))
}

// NewRealSet returns a discrete domain over the given reals.
func NewRealSet(vals ...float64) Domain {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	s = dedupFloats(s)
	return Domain{kind: DiscreteReal, reals: s}
}

// NewStringSet returns a discrete domain over the given strings.
func NewStringSet(vals ...string) Domain {
	s := append([]string(nil), vals...)
	sort.Strings(s)
	s = dedupStrings(s)
	return Domain{kind: DiscreteString, strs: s}
}

// Empty returns an empty domain of the given kind.
func Empty(k Kind) Domain {
	switch k {
	case Continuous:
		return FromInterval(interval.Empty())
	case DiscreteReal:
		return Domain{kind: DiscreteReal}
	default:
		return Domain{kind: DiscreteString}
	}
}

func dedupFloats(s []float64) []float64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupStrings(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Kind returns the domain's representation kind.
func (d Domain) Kind() Kind { return d.kind }

// IsNumeric reports whether the domain holds numbers.
func (d Domain) IsNumeric() bool { return d.kind != DiscreteString }

// IsEmpty reports whether no values remain.
func (d Domain) IsEmpty() bool {
	switch d.kind {
	case Continuous:
		return d.iv.IsEmpty()
	case DiscreteReal:
		return len(d.reals) == 0
	default:
		return len(d.strs) == 0
	}
}

// Interval returns the tightest interval enclosure of a numeric domain
// and false for string domains. This is how discrete-real domains enter
// interval constraint propagation.
func (d Domain) Interval() (interval.Interval, bool) {
	switch d.kind {
	case Continuous:
		return d.iv, true
	case DiscreteReal:
		if len(d.reals) == 0 {
			return interval.Empty(), true
		}
		return interval.New(d.reals[0], d.reals[len(d.reals)-1]), true
	default:
		return interval.Interval{}, false
	}
}

// Reals returns the value list of a discrete-real domain (nil otherwise).
// The returned slice must not be modified.
func (d Domain) Reals() []float64 {
	if d.kind != DiscreteReal {
		return nil
	}
	return d.reals
}

// Strings returns the value list of a discrete-string domain.
// The returned slice must not be modified.
func (d Domain) Strings() []string {
	if d.kind != DiscreteString {
		return nil
	}
	return d.strs
}

// Contains reports whether v belongs to the domain.
func (d Domain) Contains(v Value) bool {
	switch d.kind {
	case Continuous:
		return !v.IsString() && d.iv.Contains(v.Num())
	case DiscreteReal:
		if v.IsString() {
			return false
		}
		i := sort.SearchFloat64s(d.reals, v.Num())
		return i < len(d.reals) && d.reals[i] == v.Num()
	default:
		if !v.IsString() {
			return false
		}
		i := sort.SearchStrings(d.strs, v.Text())
		return i < len(d.strs) && d.strs[i] == v.Text()
	}
}

// Count returns the number of values in a discrete domain, or -1 for a
// non-degenerate continuous one (0 and 1 are reported exactly).
func (d Domain) Count() int {
	switch d.kind {
	case Continuous:
		if d.iv.IsEmpty() {
			return 0
		}
		if d.iv.IsPoint() {
			return 1
		}
		return -1
	case DiscreteReal:
		return len(d.reals)
	default:
		return len(d.strs)
	}
}

// Measure returns a non-negative size for the domain: interval width
// for continuous domains and element count for discrete ones.
func (d Domain) Measure() float64 {
	switch d.kind {
	case Continuous:
		return d.iv.Width()
	case DiscreteReal:
		return float64(len(d.reals))
	default:
		return float64(len(d.strs))
	}
}

// RelativeSize returns Measure(d)/Measure(initial) clamped to [0,1].
// The paper notes (§2.4.1 footnote) that raw value-set size is
// unit-dependent; normalizing by the property's initial range E_i makes
// the smallest-feasible-subspace heuristic unit-free.
func (d Domain) RelativeSize(initial Domain) float64 {
	m0 := initial.Measure()
	if m0 <= 0 || math.IsInf(m0, 1) {
		if d.IsEmpty() {
			return 0
		}
		return 1
	}
	r := d.Measure() / m0
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// Intersect returns the set intersection. Mixing a continuous and a
// discrete-real domain filters the discrete values by the interval.
// Intersecting numeric with string domains yields an empty domain.
func (d Domain) Intersect(o Domain) Domain {
	switch {
	case d.kind == Continuous && o.kind == Continuous:
		return FromInterval(d.iv.Intersect(o.iv))
	case d.kind == DiscreteString && o.kind == DiscreteString:
		var out []string
		for _, s := range d.strs {
			i := sort.SearchStrings(o.strs, s)
			if i < len(o.strs) && o.strs[i] == s {
				out = append(out, s)
			}
		}
		return Domain{kind: DiscreteString, strs: out}
	case d.kind == DiscreteReal && o.kind == DiscreteReal:
		var out []float64
		for _, v := range d.reals {
			i := sort.SearchFloat64s(o.reals, v)
			if i < len(o.reals) && o.reals[i] == v {
				out = append(out, v)
			}
		}
		return Domain{kind: DiscreteReal, reals: out}
	case d.kind == DiscreteReal && o.kind == Continuous:
		var out []float64
		for _, v := range d.reals {
			if o.iv.Contains(v) {
				out = append(out, v)
			}
		}
		return Domain{kind: DiscreteReal, reals: out}
	case d.kind == Continuous && o.kind == DiscreteReal:
		return o.Intersect(d)
	default:
		// numeric vs string: incompatible
		return Empty(d.kind)
	}
}

// NarrowTo returns the domain restricted to the interval iv, preserving
// the domain's own kind. String domains are returned unchanged (interval
// propagation does not constrain them).
func (d Domain) NarrowTo(iv interval.Interval) Domain {
	switch d.kind {
	case Continuous:
		return FromInterval(d.iv.Intersect(iv))
	case DiscreteReal:
		var out []float64
		for _, v := range d.reals {
			if iv.Contains(v) {
				out = append(out, v)
			}
		}
		return Domain{kind: DiscreteReal, reals: out}
	default:
		return d
	}
}

// Equal reports set equality of two domains of the same kind.
func (d Domain) Equal(o Domain) bool {
	if d.kind != o.kind {
		return false
	}
	switch d.kind {
	case Continuous:
		return d.iv.Equal(o.iv)
	case DiscreteReal:
		if len(d.reals) != len(o.reals) {
			return false
		}
		for i := range d.reals {
			if d.reals[i] != o.reals[i] {
				return false
			}
		}
		return true
	default:
		if len(d.strs) != len(o.strs) {
			return false
		}
		for i := range d.strs {
			if d.strs[i] != o.strs[i] {
				return false
			}
		}
		return true
	}
}

// Min returns the smallest value of a non-empty numeric domain.
func (d Domain) Min() (float64, bool) {
	switch d.kind {
	case Continuous:
		if d.iv.IsEmpty() || math.IsInf(d.iv.Lo, -1) {
			return 0, false
		}
		return d.iv.Lo, true
	case DiscreteReal:
		if len(d.reals) == 0 {
			return 0, false
		}
		return d.reals[0], true
	}
	return 0, false
}

// Max returns the largest value of a non-empty numeric domain.
func (d Domain) Max() (float64, bool) {
	switch d.kind {
	case Continuous:
		if d.iv.IsEmpty() || math.IsInf(d.iv.Hi, 1) {
			return 0, false
		}
		return d.iv.Hi, true
	case DiscreteReal:
		if len(d.reals) == 0 {
			return 0, false
		}
		return d.reals[len(d.reals)-1], true
	}
	return 0, false
}

// Mid returns a central value of a non-empty numeric domain.
func (d Domain) Mid() (float64, bool) {
	switch d.kind {
	case Continuous:
		if d.iv.IsEmpty() {
			return 0, false
		}
		return d.iv.Mid(), true
	case DiscreteReal:
		if len(d.reals) == 0 {
			return 0, false
		}
		return d.reals[len(d.reals)/2], true
	}
	return 0, false
}

// Sample returns up to n representative numeric values.
func (d Domain) Sample(n int) []float64 {
	switch d.kind {
	case Continuous:
		return d.iv.Sample(n, 1e9)
	case DiscreteReal:
		if n >= len(d.reals) {
			return append([]float64(nil), d.reals...)
		}
		out := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, d.reals[i*len(d.reals)/n])
		}
		return out
	}
	return nil
}

// String formats the domain compactly.
func (d Domain) String() string {
	switch d.kind {
	case Continuous:
		return d.iv.String()
	case DiscreteReal:
		parts := make([]string, len(d.reals))
		for i, v := range d.reals {
			parts[i] = fmt.Sprintf("%g", v)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		parts := make([]string, len(d.strs))
		for i, s := range d.strs {
			parts[i] = fmt.Sprintf("%q", s)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
}
