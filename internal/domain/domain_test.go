package domain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/interval"
)

func TestValue(t *testing.T) {
	r := Real(3.5)
	s := Str("geometry")
	if r.IsString() || !s.IsString() {
		t.Fatal("IsString misclassifies")
	}
	if r.Num() != 3.5 || s.Text() != "geometry" {
		t.Fatal("payload accessors broken")
	}
	if !r.Equal(Real(3.5)) || r.Equal(Real(4)) || r.Equal(s) {
		t.Fatal("Equal misbehaves")
	}
	if r.String() != "3.5" || s.String() != `"geometry"` {
		t.Fatalf("String: %q %q", r.String(), s.String())
	}
}

func TestContinuousDomain(t *testing.T) {
	d := NewInterval(1, 5)
	if d.Kind() != Continuous || !d.IsNumeric() {
		t.Fatal("kind wrong")
	}
	if d.IsEmpty() {
		t.Fatal("non-empty domain reported empty")
	}
	if !d.Contains(Real(3)) || d.Contains(Real(6)) || d.Contains(Str("x")) {
		t.Fatal("Contains wrong")
	}
	if d.Measure() != 4 {
		t.Fatalf("Measure = %v", d.Measure())
	}
	iv, ok := d.Interval()
	if !ok || !iv.Equal(interval.New(1, 5)) {
		t.Fatal("Interval accessor wrong")
	}
	if d.Count() != -1 || NewInterval(2, 2).Count() != 1 || Empty(Continuous).Count() != 0 {
		t.Fatal("Count wrong")
	}
	mn, ok := d.Min()
	if !ok || mn != 1 {
		t.Fatal("Min wrong")
	}
	mx, _ := d.Max()
	if mx != 5 {
		t.Fatal("Max wrong")
	}
	md, _ := d.Mid()
	if md != 3 {
		t.Fatal("Mid wrong")
	}
}

func TestDiscreteRealDomain(t *testing.T) {
	d := NewRealSet(3, 1, 2, 2, 1)
	if d.Count() != 3 {
		t.Fatalf("dedup failed: %v", d)
	}
	if got := d.String(); got != "{1, 2, 3}" {
		t.Fatalf("String = %q", got)
	}
	if !d.Contains(Real(2)) || d.Contains(Real(2.5)) {
		t.Fatal("Contains wrong")
	}
	iv, ok := d.Interval()
	if !ok || !iv.Equal(interval.New(1, 3)) {
		t.Fatalf("hull = %v", iv)
	}
	mn, _ := d.Min()
	mx, _ := d.Max()
	md, _ := d.Mid()
	if mn != 1 || mx != 3 || md != 2 {
		t.Fatalf("min/mid/max = %v/%v/%v", mn, md, mx)
	}
	if d.Measure() != 3 {
		t.Fatal("Measure should be count")
	}
}

func TestStringDomain(t *testing.T) {
	d := NewStringSet("Transistor", "Geometry", "Geometry")
	if d.Count() != 2 || d.IsNumeric() {
		t.Fatalf("string set wrong: %v", d)
	}
	if !d.Contains(Str("Geometry")) || d.Contains(Str("RTL")) || d.Contains(Real(1)) {
		t.Fatal("Contains wrong")
	}
	if _, ok := d.Interval(); ok {
		t.Fatal("string domain should not expose an interval")
	}
	got := d.Strings()
	if len(got) != 2 || got[0] != "Geometry" || got[1] != "Transistor" {
		t.Fatalf("Strings = %v", got)
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Domain
	}{
		{NewInterval(0, 5), NewInterval(3, 9), NewInterval(3, 5)},
		{NewRealSet(1, 2, 3, 4), NewRealSet(2, 4, 6), NewRealSet(2, 4)},
		{NewRealSet(1, 2, 3, 4), NewInterval(1.5, 3.5), NewRealSet(2, 3)},
		{NewInterval(1.5, 3.5), NewRealSet(1, 2, 3, 4), NewRealSet(2, 3)},
		{NewStringSet("a", "b"), NewStringSet("b", "c"), NewStringSet("b")},
		{NewInterval(0, 1), NewStringSet("x"), Empty(Continuous)},
	}
	for i, c := range cases {
		got := c.a.Intersect(c.b)
		if !got.Equal(c.want) {
			t.Errorf("case %d: %v ∩ %v = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestNarrowTo(t *testing.T) {
	if got := NewInterval(0, 10).NarrowTo(interval.New(3, 20)); !got.Equal(NewInterval(3, 10)) {
		t.Errorf("NarrowTo continuous = %v", got)
	}
	if got := NewRealSet(1, 5, 9).NarrowTo(interval.New(2, 9)); !got.Equal(NewRealSet(5, 9)) {
		t.Errorf("NarrowTo discrete = %v", got)
	}
	s := NewStringSet("a")
	if got := s.NarrowTo(interval.New(0, 1)); !got.Equal(s) {
		t.Errorf("NarrowTo string changed domain: %v", got)
	}
}

func TestRelativeSize(t *testing.T) {
	init := NewInterval(0, 100)
	if r := NewInterval(0, 25).RelativeSize(init); r != 0.25 {
		t.Errorf("RelativeSize = %v", r)
	}
	if r := Empty(Continuous).RelativeSize(init); r != 0 {
		t.Errorf("empty RelativeSize = %v", r)
	}
	// wider than initial clamps to 1
	if r := NewInterval(0, 500).RelativeSize(init); r != 1 {
		t.Errorf("clamped RelativeSize = %v", r)
	}
	// zero-measure initial: point feasible = 1, empty = 0
	p := NewInterval(5, 5)
	if r := p.RelativeSize(p); r != 1 {
		t.Errorf("point/point = %v", r)
	}
	if r := Empty(Continuous).RelativeSize(p); r != 0 {
		t.Errorf("empty/point = %v", r)
	}
	// discrete
	if r := NewRealSet(1, 2).RelativeSize(NewRealSet(1, 2, 3, 4)); r != 0.5 {
		t.Errorf("discrete RelativeSize = %v", r)
	}
}

func TestSample(t *testing.T) {
	s := NewInterval(0, 10).Sample(3)
	if len(s) != 3 || s[0] != 0 || s[2] != 10 {
		t.Errorf("continuous Sample = %v", s)
	}
	s = NewRealSet(1, 2, 3).Sample(10)
	if len(s) != 3 {
		t.Errorf("discrete Sample = %v", s)
	}
	s = NewRealSet(1, 2, 3, 4, 5, 6).Sample(2)
	if len(s) != 2 {
		t.Errorf("discrete Sample capped = %v", s)
	}
	if NewStringSet("a").Sample(2) != nil {
		t.Error("string Sample should be nil")
	}
}

func TestEqualAcrossKinds(t *testing.T) {
	if NewInterval(1, 2).Equal(NewRealSet(1, 2)) {
		t.Error("different kinds must not compare equal")
	}
	if !NewStringSet("a", "b").Equal(NewStringSet("b", "a")) {
		t.Error("string set equality should be order-independent")
	}
}

func TestQuickIntersectSubset(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		a, b, c, d = s(a), s(b), s(c), s(d)
		A := NewInterval(math.Min(a, b), math.Max(a, b))
		B := NewInterval(math.Min(c, d), math.Max(c, d))
		I := A.Intersect(B)
		if I.IsEmpty() {
			return true
		}
		iv, _ := I.Interval()
		av, _ := A.Interval()
		bv, _ := B.Interval()
		return av.ContainsInterval(iv) && bv.ContainsInterval(iv)
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func TestQuickDiscreteIntersectCommutes(t *testing.T) {
	f := func(xs, ys []float64) bool {
		for i := range xs {
			xs[i] = s(xs[i])
		}
		for i := range ys {
			ys[i] = s(ys[i])
		}
		A, B := NewRealSet(xs...), NewRealSet(ys...)
		return A.Intersect(B).Equal(B.Intersect(A))
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func s(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestKindString(t *testing.T) {
	if Continuous.String() != "continuous" ||
		DiscreteReal.String() != "discrete-real" ||
		DiscreteString.String() != "discrete-string" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestEmptyAllKinds(t *testing.T) {
	for _, k := range []Kind{Continuous, DiscreteReal, DiscreteString} {
		e := Empty(k)
		if !e.IsEmpty() {
			t.Errorf("Empty(%v) not empty", k)
		}
		if e.Kind() != k {
			t.Errorf("Empty(%v) kind = %v", k, e.Kind())
		}
		if e.Measure() != 0 {
			t.Errorf("Empty(%v) measure = %v", k, e.Measure())
		}
	}
}

func TestRealsAccessor(t *testing.T) {
	d := NewRealSet(3, 1, 2)
	got := d.Reals()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Reals = %v", got)
	}
	if NewInterval(0, 1).Reals() != nil {
		t.Error("continuous domain should have nil Reals")
	}
	if NewStringSet("a").Reals() != nil {
		t.Error("string domain should have nil Reals")
	}
	if NewInterval(0, 1).Strings() != nil {
		t.Error("continuous domain should have nil Strings")
	}
}

func TestMinMaxMidEdges(t *testing.T) {
	// Unbounded continuous domains expose no endpoints.
	ub := FromInterval(interval.Entire())
	if _, ok := ub.Min(); ok {
		t.Error("entire domain should have no Min")
	}
	if _, ok := ub.Max(); ok {
		t.Error("entire domain should have no Max")
	}
	if m, ok := ub.Mid(); !ok || m != 0 {
		t.Errorf("entire Mid = %v, %v", m, ok)
	}
	// Empty domains expose nothing.
	for _, d := range []Domain{Empty(Continuous), Empty(DiscreteReal)} {
		if _, ok := d.Min(); ok {
			t.Error("empty domain Min")
		}
		if _, ok := d.Max(); ok {
			t.Error("empty domain Max")
		}
		if _, ok := d.Mid(); ok {
			t.Error("empty domain Mid")
		}
	}
	// String domains are unordered numerically.
	s := NewStringSet("a", "b")
	if _, ok := s.Min(); ok {
		t.Error("string domain Min")
	}
	if _, ok := s.Max(); ok {
		t.Error("string domain Max")
	}
	if _, ok := s.Mid(); ok {
		t.Error("string domain Mid")
	}
	if s.Sample(3) != nil {
		t.Error("string domain Sample")
	}
}

func TestStringRenderings(t *testing.T) {
	if got := NewInterval(1, 2).String(); got != "[1, 2]" {
		t.Errorf("continuous String = %q", got)
	}
	if got := NewRealSet(1, 2).String(); got != "{1, 2}" {
		t.Errorf("discrete String = %q", got)
	}
	if got := NewStringSet("x").String(); got != `{"x"}` {
		t.Errorf("string-set String = %q", got)
	}
}

func TestMeasureStrings(t *testing.T) {
	if m := NewStringSet("a", "b", "c").Measure(); m != 3 {
		t.Errorf("string measure = %v", m)
	}
}

func TestEqualMismatchedLengths(t *testing.T) {
	if NewRealSet(1, 2).Equal(NewRealSet(1, 2, 3)) {
		t.Error("different-length real sets equal")
	}
	if NewStringSet("a").Equal(NewStringSet("a", "b")) {
		t.Error("different-length string sets equal")
	}
	if NewRealSet(1, 2).Equal(NewRealSet(1, 3)) {
		t.Error("different real sets equal")
	}
	if NewStringSet("a", "b").Equal(NewStringSet("a", "c")) {
		t.Error("different string sets equal")
	}
}

func TestIsEmptyAllKinds(t *testing.T) {
	if NewRealSet(1).IsEmpty() || NewStringSet("a").IsEmpty() || NewInterval(0, 0).IsEmpty() {
		t.Error("non-empty domains reported empty")
	}
}

// quickCfg pins the property-test source: seeded generation keeps runs
// reproducible and independent of test order under -shuffle. A zero
// maxCount keeps testing/quick's default.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(1))}
}
