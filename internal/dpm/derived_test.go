package dpm

import (
	"math"
	"testing"

	"repro/internal/dddl"
	"repro/internal/domain"
)

const derivedDoc = `
scenario derived_test

object Specs {
    property MaxPower real [0, 100]
    property MinGain  real [0, 100]
}
object Amp owner circuit {
    property W real [1, 10]
    property I real [1, 20]

    derived Gain  real [0, 1000] = 4 * W * sqrt(I)
    derived Power real [0, 400]  = 9 * I + 2 * W
}
object Sys {
    derived Margin real [-500, 500] = Gain - MinGain
}

constraint GainSpec:  Gain >= MinGain
constraint PowerSpec: Power <= MaxPower

problem Top owner leader {
    inputs { MinGain, MaxPower }
    constraints { GainSpec, PowerSpec }
}
problem AmpDesign owner circuit {
    outputs { W, I }
    constraints { }
}
decompose Top -> AmpDesign

require MaxPower = 80
require MinGain = 30
`

func derivedDPM(t *testing.T, mode Mode) *DPM {
	t.Helper()
	scn, err := dddl.ParseString(derivedDoc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromScenario(scn, mode)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDerivedRecomputedOnBinding(t *testing.T) {
	d := derivedDPM(t, Conventional)
	if d.Net.Property("Gain").IsBound() {
		t.Fatal("Gain bound before its inputs")
	}
	// Margin depends on the bound requirement and the (unbound) Gain:
	// it must not compute yet.
	if d.Net.Property("Margin").IsBound() {
		t.Fatal("Margin computed before Gain available")
	}
	bind := func(prop string, v float64) {
		t.Helper()
		if _, err := d.Apply(Operation{
			Kind: OpSynthesis, Problem: "AmpDesign", Designer: "circuit",
			Assignments: []Assignment{{Prop: prop, Value: domain.Real(v)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	bind("W", 5)
	if d.Net.Property("Gain").IsBound() {
		t.Fatal("Gain computed with I still unbound")
	}
	bind("I", 4)
	gain, ok := d.Net.Property("Gain").Value()
	if !ok || math.Abs(gain.Num()-40) > 1e-9 { // 4*5*2
		t.Fatalf("Gain = %v, want 40", gain)
	}
	power, _ := d.Net.Property("Power").Value()
	if math.Abs(power.Num()-46) > 1e-9 { // 36+10
		t.Fatalf("Power = %v, want 46", power)
	}
	// Multi-level chain: Margin = Gain - MinGain = 10.
	margin, ok := d.Net.Property("Margin").Value()
	if !ok || math.Abs(margin.Num()-10) > 1e-9 {
		t.Fatalf("Margin = %v, want 10", margin)
	}
	// Rebinding an input recomputes the affected chain.
	bind("W", 6)
	gain, _ = d.Net.Property("Gain").Value()
	if math.Abs(gain.Num()-48) > 1e-9 {
		t.Fatalf("Gain after rebind = %v, want 48", gain)
	}
	margin, _ = d.Net.Property("Margin").Value()
	if math.Abs(margin.Num()-18) > 1e-9 {
		t.Fatalf("Margin after rebind = %v, want 18", margin)
	}
}

func TestDerivedRecomputeCountsEvaluations(t *testing.T) {
	d := derivedDPM(t, Conventional)
	bind := func(prop string, v float64) *Transition {
		t.Helper()
		tr, err := d.Apply(Operation{
			Kind: OpSynthesis, Problem: "AmpDesign", Designer: "circuit",
			Assignments: []Assignment{{Prop: prop, Value: domain.Real(v)}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	if tr := bind("W", 5); tr.Evaluations != 0 {
		t.Errorf("binding W alone should run no tools, got %d", tr.Evaluations)
	}
	// Binding I enables Gain, Power, and Margin: three tool runs.
	if tr := bind("I", 4); tr.Evaluations != 3 {
		t.Errorf("completing the inputs should run 3 tools, got %d", tr.Evaluations)
	}
	// Rebinding W affects Gain, Power, Margin again.
	if tr := bind("W", 6); tr.Evaluations != 3 {
		t.Errorf("rebinding W should rerun 3 tools, got %d", tr.Evaluations)
	}
}

func TestDefConstraintsSatisfiedAtFullBinding(t *testing.T) {
	d := derivedDPM(t, ADPM)
	for prop, v := range map[string]float64{"W": 5, "I": 4} {
		if _, err := d.Apply(Operation{
			Kind: OpSynthesis, Problem: "AmpDesign", Designer: "circuit",
			Assignments: []Assignment{{Prop: prop, Value: domain.Real(v)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, cn := range []string{"Gain.def", "Power.def", "Margin.def"} {
		if s := d.Net.Status(cn); s.String() != "Satisfied" {
			t.Errorf("%s = %v, want Satisfied", cn, s)
		}
	}
	if !d.Done() {
		t.Errorf("process should be done; violations %v", d.Net.Violations())
	}
}

func TestIsDerivedPropAndDefConstraint(t *testing.T) {
	d := derivedDPM(t, Conventional)
	if !d.IsDerivedProp("Gain") || d.IsDerivedProp("W") {
		t.Error("IsDerivedProp misclassifies")
	}
	if c := d.DefConstraint("Gain"); c == nil || c.Name != "Gain.def" {
		t.Errorf("DefConstraint(Gain) = %v", c)
	}
	if d.DefConstraint("W") != nil {
		t.Error("DefConstraint on plain property should be nil")
	}
}

func TestIsCrossSubsystemExpandsDerived(t *testing.T) {
	d := derivedDPM(t, Conventional)
	// GainSpec's direct args are Gain (Sys object, no owner) and MinGain
	// (ownerless spec): only through Gain's formula does it reach the
	// circuit owner — a single owner, so not cross-subsystem.
	if d.IsCrossSubsystem(d.Net.Constraint("GainSpec")) {
		t.Error("GainSpec touches only circuit properties")
	}
}

func TestMovementWindow(t *testing.T) {
	d := derivedDPM(t, ADPM)
	for prop, v := range map[string]float64{"W": 5, "I": 4} {
		if _, err := d.Apply(Operation{
			Kind: OpSynthesis, Problem: "AmpDesign", Designer: "circuit",
			Assignments: []Assignment{{Prop: prop, Value: domain.Real(v)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Window for I given W=5: Gain = 20·√I >= 30 → I >= 2.25;
	// Power = 9I + 10 <= 80 → I <= 7.78.
	win := d.MovementWindow("I")
	iv, ok := win.Interval()
	if !ok || iv.IsEmpty() {
		t.Fatalf("window = %v", win)
	}
	if math.Abs(iv.Lo-2.25) > 0.01 || math.Abs(iv.Hi-70.0/9) > 0.01 {
		t.Errorf("window I = %v, want ≈[2.25, 7.78]", iv)
	}
	// The binding must be untouched.
	if v, _ := d.Net.Property("I").Value(); v.Num() != 4 {
		t.Error("MovementWindow disturbed the binding")
	}
	// Windows are refreshed into feasible subspaces by ADPM transitions.
	f := d.Net.Property("I").Feasible()
	fiv, _ := f.Interval()
	if math.Abs(fiv.Lo-2.25) > 0.01 {
		t.Errorf("feasible(I) = %v, want the movement window", fiv)
	}
	// Derived and unknown properties yield empty windows.
	if w := d.MovementWindow("Gain"); !w.IsEmpty() {
		t.Errorf("window for derived = %v, want empty", w)
	}
	if w := d.MovementWindow("nope"); !w.IsEmpty() {
		t.Errorf("window for unknown = %v, want empty", w)
	}
}

func TestMovementWindowChargesEvaluations(t *testing.T) {
	d := derivedDPM(t, ADPM)
	for prop, v := range map[string]float64{"W": 5, "I": 4} {
		if _, err := d.Apply(Operation{
			Kind: OpSynthesis, Problem: "AmpDesign", Designer: "circuit",
			Assignments: []Assignment{{Prop: prop, Value: domain.Real(v)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Net.EvalCount()
	d.MovementWindow("I")
	if d.Net.EvalCount() <= before {
		t.Error("movement-window exploration must cost evaluations")
	}
}

func TestSpinRequiresRework(t *testing.T) {
	scn, err := dddl.ParseString(derivedDoc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromScenario(scn, ADPM)
	if err != nil {
		t.Fatal(err)
	}
	// A conflict fix while AmpDesign was never solved is not a spin,
	// even when motivated by a cross-subsystem constraint.
	tr, err := d.Apply(Operation{
		Kind: OpSynthesis, Problem: "AmpDesign", Designer: "circuit",
		Assignments: []Assignment{{Prop: "W", Value: domain.Real(2)}},
		MotivatedBy: []string{"GainSpec"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.IsSpin {
		t.Error("early fix counted as spin (problem never solved)")
	}
}
