package dpm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/constraint"
	"repro/internal/dddl"
	"repro/internal/domain"
	"repro/internal/expr"
	"repro/internal/trace"
)

// Mode selects the transition model of Fig. 1.
type Mode int

// Modes.
const (
	// Conventional (λ=F): constraint propagation is not run; designers
	// learn of violations only by requesting verification operations.
	Conventional Mode = iota
	// ADPM (λ=T): the DCM runs constraint propagation after every
	// operation and heuristic support data is refreshed.
	ADPM
)

// String names the mode.
func (m Mode) String() string {
	if m == ADPM {
		return "ADPM"
	}
	return "conventional"
}

// DPM is the design process manager: it owns the design state (problem
// hierarchy + constraint network), implements the next-state function δ,
// and keeps the design process history H_n.
type DPM struct {
	// Mode selects conventional or ADPM transitions.
	Mode Mode
	// Net is the network of constraints C_n of the current state.
	Net *constraint.Network
	// PropOpts tunes ADPM constraint propagation.
	PropOpts constraint.PropagateOptions

	problems  map[string]*Problem
	probOrder []string
	history   []*Transition
	stage     int
	// derived holds derived-property definitions in dependency order;
	// the DPM recomputes affected ones after each operation (a
	// synthesis-tool run per recomputation, counted as an evaluation).
	derived    []derivedDef
	derivedSet map[string]bool
	// checkpointing enables per-transition snapshots for RollbackTo.
	checkpointing bool
	checkpoints   []*checkpoint
	// scratches holds per-worker scratch networks for movement-window
	// exploration, reused across operations via Network.CloneInto so
	// the per-variable deep clone disappears from the hot loop. Slot w
	// belongs to refresh worker w; slot 0 doubles as the scratch of
	// the sequential MovementWindow path. Like the rest of the DPM,
	// these are not safe for concurrent use of one DPM.
	scratches []*constraint.Network
	// tracer, when non-nil, receives operation and window-refresh
	// events. SetTracer also attaches it to Net for propagate events;
	// scratch networks never carry it (Network.CloneInto drops it).
	tracer *trace.Recorder
}

// derivedDef is one derived performance property: value = node(args).
type derivedDef struct {
	prop string
	node expr.Node
	args []string
}

// New creates a DPM over an existing network and problem set.
func New(net *constraint.Network, problems []*Problem, mode Mode) (*DPM, error) {
	d := &DPM{
		Mode:       mode,
		Net:        net,
		problems:   map[string]*Problem{},
		derivedSet: map[string]bool{},
	}
	for _, p := range problems {
		if _, dup := d.problems[p.Name]; dup {
			return nil, fmt.Errorf("dpm: duplicate problem %q", p.Name)
		}
		for _, prop := range append(append([]string(nil), p.Inputs...), p.Outputs...) {
			if net.Property(prop) == nil {
				return nil, fmt.Errorf("dpm: problem %q references unknown property %q", p.Name, prop)
			}
		}
		for _, cn := range p.Constraints {
			if net.Constraint(cn) == nil {
				return nil, fmt.Errorf("dpm: problem %q references unknown constraint %q", p.Name, cn)
			}
		}
		d.problems[p.Name] = p
		d.probOrder = append(d.probOrder, p.Name)
	}
	// Parents with children start Waiting, leaves start Open.
	for _, p := range d.problems {
		if p.IsLeaf() {
			p.status = Open
		} else {
			p.status = Waiting
		}
	}
	d.refreshStatuses()
	return d, nil
}

// FromScenario builds a DPM (network + problem hierarchy) from a parsed
// DDDL scenario.
func FromScenario(scn *dddl.Scenario, mode Mode) (*DPM, error) {
	net, err := scn.BuildNetwork()
	if err != nil {
		return nil, err
	}
	var problems []*Problem
	byName := map[string]*Problem{}
	for _, pd := range scn.Problems {
		p := &Problem{
			Name:        pd.Name,
			Owner:       pd.Owner,
			Inputs:      append([]string(nil), pd.Inputs...),
			Outputs:     append([]string(nil), pd.Outputs...),
			Constraints: append([]string(nil), pd.Constraints...),
		}
		problems = append(problems, p)
		byName[p.Name] = p
	}
	for _, dec := range scn.Decompositions {
		parent := byName[dec.Parent]
		for _, cn := range dec.Children {
			child := byName[cn]
			if child.Parent != "" {
				return nil, fmt.Errorf("dpm: problem %q decomposed from both %q and %q", cn, child.Parent, dec.Parent)
			}
			child.Parent = dec.Parent
			parent.Children = append(parent.Children, cn)
		}
	}
	d, err := New(net, problems, mode)
	if err != nil {
		return nil, err
	}
	for _, pd := range scn.DerivedOrder() {
		node, err := expr.Parse(pd.Formula)
		if err != nil {
			return nil, fmt.Errorf("dpm: derived %q: %w", pd.Name, err)
		}
		d.derived = append(d.derived, derivedDef{prop: pd.Name, node: node, args: expr.Vars(node)})
		d.derivedSet[pd.Name] = true
	}
	// Requirements may already determine some derived values.
	initiallyBound := map[string]bool{}
	for _, p := range net.Properties() {
		if p.IsBound() {
			initiallyBound[p.Name] = true
		}
	}
	d.recomputeDerived(initiallyBound)
	if mode == ADPM {
		// Initial propagation: requirements bound by the scenario are
		// immediately reflected in feasible subspaces.
		net.Propagate(d.PropOpts)
		d.refreshMovementWindows()
		d.refreshStatuses()
	}
	return d, nil
}

// SetTracer attaches a trace recorder to the DPM and its live network;
// nil detaches both.
func (d *DPM) SetTracer(tr *trace.Recorder) {
	d.tracer = tr
	d.Net.SetTracer(tr)
}

// Problem returns the named problem, or nil.
func (d *DPM) Problem(name string) *Problem { return d.problems[name] }

// Problems returns all problems in declaration order.
func (d *DPM) Problems() []*Problem {
	out := make([]*Problem, len(d.probOrder))
	for i, n := range d.probOrder {
		out[i] = d.problems[n]
	}
	return out
}

// ProblemsOwnedBy returns the problems assigned to a designer, in
// declaration order.
func (d *DPM) ProblemsOwnedBy(owner string) []*Problem {
	var out []*Problem
	for _, n := range d.probOrder {
		if d.problems[n].Owner == owner {
			out = append(out, d.problems[n])
		}
	}
	return out
}

// History returns the executed transitions (the pairs <s_i, θ_i> of the
// design process history H_n).
func (d *DPM) History() []*Transition { return d.history }

// Stage returns the current stage index n.
func (d *DPM) Stage() int { return d.stage }

// Done reports the paper's termination condition (§3.1.2): every
// problem solved, all problem outputs bound, and no constraint known
// violated.
func (d *DPM) Done() bool {
	for _, n := range d.probOrder {
		if d.problems[n].status != Solved {
			return false
		}
	}
	return d.Net.NumViolations() == 0
}

// Apply executes one design operation: the next-state function δ of
// eq. 2. It updates bindings or statuses, runs constraint propagation
// in ADPM mode, recomputes problem statuses, and appends a Transition
// to the history.
func (d *DPM) Apply(op Operation) (*Transition, error) {
	prob := d.problems[op.Problem]
	if prob == nil {
		return nil, fmt.Errorf("dpm: operation on unknown problem %q", op.Problem)
	}
	beforeList := d.Net.Violations()
	before := map[string]bool{}
	for _, v := range beforeList {
		before[v] = true
	}
	evals0 := d.Net.EvalCount()
	rec := d.tracer
	var opStart int64
	if rec.Enabled() {
		opStart = rec.Now()
	}

	tr := &Transition{Stage: d.stage, Op: op, ViolationsBefore: beforeList}
	var cp *checkpoint
	if d.checkpointing {
		cp = d.takeCheckpoint()
	}

	switch op.Kind {
	case OpSynthesis:
		changed := map[string]bool{}
		for _, a := range op.Assignments {
			if d.Net.Property(a.Prop) == nil {
				return nil, fmt.Errorf("dpm: assignment to unknown property %q", a.Prop)
			}
			if err := d.bindInvalidating(a.Prop, a.Value); err != nil {
				return nil, err
			}
			changed[a.Prop] = true
		}
		// Synthesis-tool runs recompute affected derived performance
		// properties (Fig. 2's performance parameters).
		d.recomputeDerived(changed)
	case OpVerification:
		names := op.Verify
		if len(names) == 0 {
			names = prob.Constraints
		}
		for _, cn := range names {
			c := d.Net.Constraint(cn)
			if c == nil {
				return nil, fmt.Errorf("dpm: verification of unknown constraint %q", cn)
			}
			d.verifyAtPoint(c)
		}
	case OpDecomposition:
		if prob.IsLeaf() {
			return nil, fmt.Errorf("dpm: decomposition of leaf problem %q", op.Problem)
		}
		prob.status = Waiting
		for _, cn := range prob.Children {
			if child := d.problems[cn]; child.status != Solved {
				child.status = Open
			}
		}
	default:
		return nil, fmt.Errorf("dpm: unknown operation kind %v", op.Kind)
	}

	if d.Mode == ADPM {
		// The DCM evaluates the updated network: feasible subspaces are
		// re-derived from scratch so widened bindings never leave stale
		// reductions behind, then propagation narrows and statuses are
		// recomputed (§2.2).
		d.Net.ResetFeasible()
		res := d.Net.Propagate(d.PropOpts)
		tr.Narrowed = res.Narrowed
		tr.Emptied = res.Emptied
		// Refresh the movement windows of every assigned design
		// variable (Fig. 2 shows "consistent values" for already-bound
		// properties after each operation). Each refresh explores the
		// network with the variable freed — a large share of ADPM's
		// extra tool runs (§2.2: "additional tool runs are typically
		// performed within ADPM's constraint propagation algorithm").
		d.refreshMovementWindows()
	}

	d.refreshStatuses()

	tr.Evaluations = d.Net.EvalCount() - evals0
	tr.ViolationsAfter = d.Net.Violations()
	for _, v := range tr.ViolationsAfter {
		if !before[v] {
			tr.NewViolations = append(tr.NewViolations, v)
		}
	}
	tr.IsSpin = d.isSpin(op)
	d.history = append(d.history, tr)
	if d.checkpointing {
		d.checkpoints = append(d.checkpoints, cp)
	}
	if rec.Enabled() {
		rec.Emit(trace.Event{
			Kind:           trace.KindOperation,
			Stage:          tr.Stage,
			Op:             op.Kind.String(),
			Problem:        op.Problem,
			Designer:       op.Designer,
			Evals:          tr.Evaluations,
			NewViolations:  len(tr.NewViolations),
			OpenViolations: len(tr.ViolationsAfter),
			Emptied:        len(tr.Emptied),
			Spin:           tr.IsSpin,
			DurNanos:       rec.Now() - opStart,
		})
	}
	d.stage++
	return tr, nil
}

// bindInvalidating binds a property and, in conventional mode, resets
// the status of every constraint on it. Verification results that
// depended on the old value are stale; the DPM tracks this dependency
// bookkeeping (state management, not constraint evaluation), which is
// what forces the conventional verify→fix→re-verify loop.
func (d *DPM) bindInvalidating(prop string, v domain.Value) error {
	if err := d.Net.Bind(prop, v); err != nil {
		return err
	}
	if d.Mode == Conventional {
		for _, c := range d.Net.ConstraintsOn(prop) {
			d.Net.SetStatus(c.Name, constraint.Consistent)
		}
	}
	return nil
}

// recomputeDerived re-runs the synthesis tools behind derived
// properties whose (transitive) inputs changed. Each recomputation
// binds the property to the tool-computed value and counts as one
// evaluation. changed is extended with the recomputed properties.
func (d *DPM) recomputeDerived(changed map[string]bool) {
	for _, def := range d.derived {
		affected := false
		ready := true
		for _, a := range def.args {
			if changed[a] {
				affected = true
			}
			if p := d.Net.Property(a); p == nil || !p.IsBound() {
				ready = false
			}
		}
		if !ready {
			continue
		}
		if prop := d.Net.Property(def.prop); prop.IsBound() && !affected {
			continue
		}
		val, err := expr.Eval(def.node, d.Net)
		if err != nil {
			continue
		}
		d.Net.AddEvals(1)
		if err := d.bindInvalidating(def.prop, domain.Real(val)); err != nil {
			continue
		}
		changed[def.prop] = true
	}
}

// dependentDerived returns the derived properties whose formulas
// transitively depend on prop, in definition order.
func (d *DPM) dependentDerived(prop string) []string {
	affected := map[string]bool{prop: true}
	var out []string
	for _, def := range d.derived {
		for _, a := range def.args {
			if affected[a] {
				affected[def.prop] = true
				out = append(out, def.prop)
				break
			}
		}
	}
	return out
}

// MovementWindow computes the feasible movement window of a bound
// design variable: the values it could be re-bound to such that, with
// every other design variable held at its current value and all derived
// performance properties recomputed, the constraint network can still
// be satisfied. This is the "consistent values" range Minerva III
// displays for assigned properties (Fig. 2: the bound Diff-pair-W shows
// {2.5 … 3.698}) and the range the conflict-resolution heuristic moves
// within (§2.4.3). The exploration runs the constraint propagation
// algorithm on a scratch copy of the network; its constraint
// evaluations are charged to this DPM's network — they are real tool
// runs and a large part of ADPM's computational penalty.
func (d *DPM) MovementWindow(prop string) domain.Domain {
	p := d.Net.Property(prop)
	if p == nil || !p.IsNumeric() || d.derivedSet[prop] {
		return domain.Empty(domain.Continuous)
	}
	win, evals := d.movementWindowOn(d.scratchFor(0), prop)
	d.Net.AddEvals(evals)
	return win
}

// scratchFor returns worker slot w's scratch network primed with the
// current design state. The first use of a slot allocates it; after
// that CloneInto reuses the allocation (fast path) until the network's
// structure changes.
func (d *DPM) scratchFor(w int) *constraint.Network {
	for len(d.scratches) <= w {
		d.scratches = append(d.scratches, nil)
	}
	if d.scratches[w] == nil {
		d.scratches[w] = &constraint.Network{}
	}
	d.Net.CloneInto(d.scratches[w])
	return d.scratches[w]
}

// movementWindowOn computes prop's movement window on the given
// (already primed or primable) scratch network and returns it with the
// constraint evaluations spent. It reads d.Net (CloneInto source) and
// mutates only scratch, so distinct scratches may run concurrently as
// long as each was primed via scratchFor first.
func (d *DPM) movementWindowOn(scratch *constraint.Network, prop string) (domain.Domain, int64) {
	d.Net.CloneInto(scratch)
	before := scratch.EvalCount()
	scratch.Unbind(prop)
	for _, dep := range d.dependentDerived(prop) {
		scratch.Unbind(dep)
	}
	scratch.ResetFeasible()
	scratch.Propagate(d.PropOpts)
	return scratch.Property(prop).Feasible(), scratch.EvalCount() - before
}

// refreshMovementWindows recomputes the movement window of every bound
// design variable that is some problem's output and stores it as the
// variable's feasible subspace.
//
// Windows of distinct variables are independent: each explores a
// scratch copy of the same post-propagation state with feasible
// subspaces re-derived from scratch, so neither the window values nor
// the evaluation counts depend on the order in which sibling windows
// are applied. That makes the refresh safe to fan out across
// GOMAXPROCS workers with per-worker scratch networks; the per-window
// evaluation counts are summed in window order afterwards (ordered
// reduction) so Net.EvalCount() — and every figure metric derived from
// it — is bit-identical to the sequential refresh.
func (d *DPM) refreshMovementWindows() {
	seen := map[string]bool{}
	var jobs []*constraint.Property
	for _, pn := range d.probOrder {
		for _, out := range d.problems[pn].Outputs {
			if seen[out] {
				continue
			}
			seen[out] = true
			p := d.Net.Property(out)
			if p == nil || !p.IsBound() || !p.IsNumeric() || d.derivedSet[out] {
				continue
			}
			jobs = append(jobs, p)
		}
	}
	if len(jobs) == 0 {
		return
	}
	rec := d.tracer
	var refreshStart, totalEvals int64
	if rec.Enabled() {
		refreshStart = rec.Now()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		scratch := d.scratchFor(0)
		for _, p := range jobs {
			win, evals := d.movementWindowOn(scratch, p.Name)
			d.Net.AddEvals(evals)
			p.SetFeasible(win)
			totalEvals += evals
			if rec.FullDetail() {
				rec.Emit(trace.Event{Kind: trace.KindWindow, Name: p.Name, Evals: evals})
			}
		}
	} else {
		wins := make([]domain.Domain, len(jobs))
		evals := make([]int64, len(jobs))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			// Prime sequentially: the first CloneInto of a fresh scratch
			// takes the structure-sharing slow path, which writes clone
			// bookkeeping on d.Net; inside the workers every CloneInto hits
			// the read-only fast path.
			scratch := d.scratchFor(w)
			wg.Add(1)
			go func(scratch *constraint.Network) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					wins[i], evals[i] = d.movementWindowOn(scratch, jobs[i].Name)
				}
			}(scratch)
		}
		wg.Wait()
		// Ordered reduction; per-window trace events are emitted here on
		// the caller's goroutine, in window order, never from the workers.
		for i, p := range jobs {
			d.Net.AddEvals(evals[i])
			p.SetFeasible(wins[i])
			totalEvals += evals[i]
			if rec.FullDetail() {
				rec.Emit(trace.Event{Kind: trace.KindWindow, Name: p.Name, Evals: evals[i]})
			}
		}
	}
	if rec.Enabled() {
		rec.Emit(trace.Event{
			Kind:     trace.KindWindowRefresh,
			Jobs:     len(jobs),
			Workers:  workers,
			Evals:    totalEvals,
			DurNanos: rec.Now() - refreshStart,
		})
	}
}

// ResynthesisTargets returns the problem's non-derived numeric output
// properties — the set a subsystem re-synthesis reassigns.
func (d *DPM) ResynthesisTargets(problem string) []string {
	p := d.problems[problem]
	if p == nil {
		return nil
	}
	var out []string
	for _, o := range p.Outputs {
		prop := d.Net.Property(o)
		if prop == nil || !prop.IsNumeric() || d.derivedSet[o] {
			continue
		}
		out = append(out, o)
	}
	return out
}

// ResynthesisScratch prepares a scratch network for re-synthesizing the
// problem's outputs: a clone with those outputs and their dependent
// derived properties freed, feasible subspaces reset. The caller runs a
// search over it and charges the consumed evaluations back via
// ChargeEvals. Used by the DCM to offer coordinated multi-output fix
// candidates (§2.3: "executing design operations that will fix many
// violations at a time").
func (d *DPM) ResynthesisScratch(problem string) (*constraint.Network, []string) {
	targets := d.ResynthesisTargets(problem)
	if len(targets) == 0 {
		return nil, nil
	}
	scratch := d.Net.Clone()
	freed := map[string]bool{}
	for _, t := range targets {
		scratch.Unbind(t)
		freed[t] = true
		for _, dep := range d.dependentDerived(t) {
			if !freed[dep] {
				scratch.Unbind(dep)
				freed[dep] = true
			}
		}
	}
	scratch.ResetFeasible()
	return scratch, targets
}

// DerivedCompletion returns a function that binds every derived
// property computable from the network's current bindings, in
// dependency order — the synthesis-tool pass a search needs before
// verifying a candidate point.
func (d *DPM) DerivedCompletion() func(net *constraint.Network) error {
	defs := d.derived
	return func(net *constraint.Network) error {
		for _, def := range defs {
			v, err := expr.Eval(def.node, net)
			if err != nil {
				return err
			}
			if err := net.Bind(def.prop, domain.Real(v)); err != nil {
				return err
			}
		}
		return nil
	}
}

// ChargeEvals adds externally consumed constraint evaluations (e.g.
// from a resynthesis search on a scratch network) to the process's
// resource accounting.
func (d *DPM) ChargeEvals(n int64) { d.Net.AddEvals(n) }

// verifyAtPoint point-evaluates one constraint, mimicking a CAD
// verification tool run: it requires all arguments bound (the paper's
// verification operators execute only when their inputs are bound) and
// records a binary satisfied/violated status.
func (d *DPM) verifyAtPoint(c *constraint.Constraint) {
	for _, a := range c.Args() {
		if p := d.Net.Property(a); p == nil || !p.IsBound() {
			return // tool cannot run yet; no evaluation counted
		}
	}
	holds, known := c.HoldsAt(d.Net)
	if !known {
		return
	}
	d.Net.AddEvals(1)
	if holds {
		d.Net.SetStatus(c.Name, constraint.Satisfied)
	} else {
		d.Net.SetStatus(c.Name, constraint.Violated)
	}
}

// isSpin reports whether the operation is a design spin: an executed
// operation due to at least one violation involving properties from
// multiple subsystems (§3.1.2), which the paper equates with "expensive
// design iterations performed upon system integration". Operationally:
// the operation reworks a problem that had already been solved, and is
// motivated by a cross-subsystem violation. Early fixes — made while
// the subsystem is still open, as ADPM's timely feedback enables — are
// ordinary design work, not late iterations.
func (d *DPM) isSpin(op Operation) bool {
	prob := d.problems[op.Problem]
	if prob == nil || !prob.everSolved {
		return false
	}
	for _, cn := range op.MotivatedBy {
		c := d.Net.Constraint(cn)
		if c == nil {
			continue
		}
		if d.IsCrossSubsystem(c) {
			return true
		}
	}
	return false
}

// IsDerivedProp reports whether the property is a derived performance
// property with a defining formula.
func (d *DPM) IsDerivedProp(name string) bool { return d.derivedSet[name] }

// DefConstraint returns the defining equality constraint of a derived
// property, or nil.
func (d *DPM) DefConstraint(prop string) *constraint.Constraint {
	if !d.derivedSet[prop] {
		return nil
	}
	return d.Net.Constraint(prop + ".def")
}

// IsCrossSubsystem reports whether a constraint's arguments span
// properties of more than one owner. Derived arguments are expanded
// through their defining formulas: a spec on System_gain effectively
// couples every subsystem contributing to the gain, and fixing its
// violation is an integration-level iteration (a spin).
func (d *DPM) IsCrossSubsystem(c *constraint.Constraint) bool {
	owners := map[string]bool{}
	var visit func(prop string, depth int)
	visit = func(prop string, depth int) {
		if depth > 8 {
			return
		}
		if d.derivedSet[prop] {
			if def := d.DefConstraint(prop); def != nil {
				for _, a := range def.Args() {
					if a != prop {
						visit(a, depth+1)
					}
				}
				return
			}
		}
		p := d.Net.Property(prop)
		if p != nil && p.Owner != "" {
			owners[p.Owner] = true
		}
	}
	for _, a := range c.Args() {
		visit(a, 0)
	}
	return len(owners) > 1
}

// refreshStatuses recomputes every problem's status from the network:
// a leaf is Solved when all outputs are bound and every constraint in
// T_i is known Satisfied; a decomposed problem additionally requires all
// children Solved (and is Waiting until then).
func (d *DPM) refreshStatuses() {
	// Leaves first, then parents (iterate until fixpoint to support
	// multi-level hierarchies without explicit topological order).
	for range d.probOrder {
		changed := false
		for _, n := range d.probOrder {
			p := d.problems[n]
			ns := d.computeStatus(p)
			if ns != p.status {
				p.SetStatus(ns)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func (d *DPM) computeStatus(p *Problem) ProblemStatus {
	if !p.IsLeaf() {
		for _, cn := range p.Children {
			if d.problems[cn].status != Solved {
				return Waiting
			}
		}
	}
	for _, o := range p.Outputs {
		if prop := d.Net.Property(o); prop == nil || !prop.IsBound() {
			return Open
		}
	}
	for _, cn := range p.Constraints {
		if d.Net.Status(cn) != constraint.Satisfied {
			return Open
		}
	}
	return Solved
}

// UnverifiedConstraints returns constraints of the problem whose status
// is not yet known Satisfied and whose arguments are all bound —
// i.e. those a verification operator could settle right now.
func (d *DPM) UnverifiedConstraints(problem string) []string {
	p := d.problems[problem]
	if p == nil {
		return nil
	}
	var out []string
	for _, cn := range p.Constraints {
		if d.Net.Status(cn) == constraint.Satisfied {
			continue
		}
		c := d.Net.Constraint(cn)
		ready := true
		for _, a := range c.Args() {
			if prop := d.Net.Property(a); prop == nil || !prop.IsBound() {
				ready = false
				break
			}
		}
		if ready {
			out = append(out, cn)
		}
	}
	return out
}

// Spins counts the design spins executed so far.
func (d *DPM) Spins() int {
	n := 0
	for _, tr := range d.history {
		if tr.IsSpin {
			n++
		}
	}
	return n
}
