package dpm

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/dddl"
	"repro/internal/domain"
)

const testDoc = `
scenario test

object Sys owner leader {
    property Budget real [0, 100]
}
object A owner alice {
    property Pa real [0, 100]
}
object B owner bob {
    property Pb real [0, 100]
}

constraint Split: Pa + Pb <= Budget
constraint AMin: Pa >= 10
constraint BMin: Pb >= 10

problem Top owner leader {
    outputs { Budget }
    constraints { Split }
}
problem SubA owner alice {
    inputs { Budget }
    outputs { Pa }
    constraints { AMin }
}
problem SubB owner bob {
    inputs { Budget }
    outputs { Pb }
    constraints { BMin }
}

decompose Top -> SubA, SubB
require Budget = 60
`

func mustDPM(t *testing.T, mode Mode) *DPM {
	t.Helper()
	scn, err := dddl.ParseString(testDoc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromScenario(scn, mode)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFromScenarioStructure(t *testing.T) {
	d := mustDPM(t, Conventional)
	if len(d.Problems()) != 3 {
		t.Fatalf("problems = %d", len(d.Problems()))
	}
	top := d.Problem("Top")
	if top.IsLeaf() || len(top.Children) != 2 {
		t.Errorf("Top children = %v", top.Children)
	}
	if top.Status() != Waiting {
		t.Errorf("Top status = %v, want Waiting", top.Status())
	}
	if d.Problem("SubA").Status() != Open {
		t.Errorf("SubA status = %v, want Open", d.Problem("SubA").Status())
	}
	if d.Problem("SubA").Parent != "Top" {
		t.Error("parent link missing")
	}
	if got := d.ProblemsOwnedBy("alice"); len(got) != 1 || got[0].Name != "SubA" {
		t.Errorf("ProblemsOwnedBy(alice) = %v", got)
	}
	if d.Done() {
		t.Error("fresh process cannot be done")
	}
}

func TestADPMInitialPropagation(t *testing.T) {
	d := mustDPM(t, ADPM)
	// Budget=60 should narrow Pa to [0,60] immediately (Pb >= 10 gives
	// Pa <= 50 after full propagation).
	iv, _ := d.Net.Property("Pa").Feasible().Interval()
	if iv.Hi > 50+1e-9 {
		t.Errorf("initial propagation missing: Pa feasible %v", iv)
	}
}

func TestConventionalNoPropagation(t *testing.T) {
	d := mustDPM(t, Conventional)
	iv, _ := d.Net.Property("Pa").Feasible().Interval()
	if iv.Hi != 100 {
		t.Errorf("conventional mode must not narrow: Pa feasible %v", iv)
	}
	if d.Net.EvalCount() != 0 {
		t.Errorf("conventional mode consumed %d evals at init", d.Net.EvalCount())
	}
}

func TestSynthesisAndVerificationFlow(t *testing.T) {
	d := mustDPM(t, Conventional)
	// Alice binds Pa = 40.
	tr, err := d.Apply(Operation{
		Kind: OpSynthesis, Problem: "SubA", Designer: "alice",
		Assignments: []Assignment{{Prop: "Pa", Value: domain.Real(40)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Evaluations != 0 {
		t.Errorf("conventional synthesis should cost 0 evals, got %d", tr.Evaluations)
	}
	if len(tr.ViolationsAfter) != 0 {
		t.Errorf("no verification yet, violations = %v", tr.ViolationsAfter)
	}
	// Alice verifies AMin: satisfied.
	tr, err = d.Apply(Operation{Kind: OpVerification, Problem: "SubA", Designer: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Evaluations != 1 {
		t.Errorf("verification evals = %d, want 1", tr.Evaluations)
	}
	if d.Net.Status("AMin") != constraint.Satisfied {
		t.Errorf("AMin = %v", d.Net.Status("AMin"))
	}
	if d.Problem("SubA").Status() != Solved {
		t.Errorf("SubA = %v, want Solved", d.Problem("SubA").Status())
	}
	// Bob binds Pb = 30 and verifies: BMin satisfied, SubB solved.
	if _, err := d.Apply(Operation{
		Kind: OpSynthesis, Problem: "SubB", Designer: "bob",
		Assignments: []Assignment{{Prop: "Pb", Value: domain.Real(30)}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(Operation{Kind: OpVerification, Problem: "SubB", Designer: "bob"}); err != nil {
		t.Fatal(err)
	}
	if d.Problem("SubB").Status() != Solved {
		t.Fatalf("SubB = %v", d.Problem("SubB").Status())
	}
	// Integration: Top's Split constraint (40+30 > 60) is violated.
	tr, err = d.Apply(Operation{Kind: OpVerification, Problem: "Top", Designer: "leader"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.NewViolations) != 1 || tr.NewViolations[0] != "Split" {
		t.Errorf("NewViolations = %v", tr.NewViolations)
	}
	if d.Problem("Top").Status() != Open {
		t.Errorf("Top should reopen on violation, got %v", d.Problem("Top").Status())
	}
	if d.Done() {
		t.Error("process with violation cannot be done")
	}
	// Bob fixes Pb (motivated by the cross-subsystem Split): a spin.
	tr, err = d.Apply(Operation{
		Kind: OpSynthesis, Problem: "SubB", Designer: "bob",
		Assignments: []Assignment{{Prop: "Pb", Value: domain.Real(15)}},
		MotivatedBy: []string{"Split"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.IsSpin {
		t.Error("cross-subsystem fix must count as spin")
	}
	if d.Spins() != 1 {
		t.Errorf("Spins = %d", d.Spins())
	}
	// Re-verify everything; process completes.
	for _, prob := range []string{"SubB", "Top"} {
		if _, err := d.Apply(Operation{Kind: OpVerification, Problem: prob, Designer: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Done() {
		t.Errorf("expected done; statuses: Top=%v SubA=%v SubB=%v violations=%v",
			d.Problem("Top").Status(), d.Problem("SubA").Status(),
			d.Problem("SubB").Status(), d.Net.Violations())
	}
	if d.Stage() != len(d.History()) {
		t.Error("stage/history mismatch")
	}
}

func TestADPMFlow(t *testing.T) {
	d := mustDPM(t, ADPM)
	// Alice binds Pa=40; propagation immediately narrows Pb.
	tr, err := d.Apply(Operation{
		Kind: OpSynthesis, Problem: "SubA", Designer: "alice",
		Assignments: []Assignment{{Prop: "Pa", Value: domain.Real(40)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Evaluations == 0 {
		t.Error("ADPM synthesis must run propagation (evals > 0)")
	}
	iv, _ := d.Net.Property("Pb").Feasible().Interval()
	if iv.Hi > 20+1e-9 {
		t.Errorf("Pb feasible = %v, want upper bound 20", iv)
	}
	// A violating choice is detected immediately without verification.
	tr, err = d.Apply(Operation{
		Kind: OpSynthesis, Problem: "SubB", Designer: "bob",
		Assignments: []Assignment{{Prop: "Pb", Value: domain.Real(30)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.NewViolations) != 1 || tr.NewViolations[0] != "Split" {
		t.Errorf("ADPM should detect Split violation, got %v", tr.NewViolations)
	}
	// Bob backtracks into the feasible window; all statuses propagate
	// to Satisfied and the process is done for leaves... Top requires
	// constraint Satisfied status from interval propagation: with all
	// three bound, statuses are point-like and exact.
	if _, err := d.Apply(Operation{
		Kind: OpSynthesis, Problem: "SubB", Designer: "bob",
		Assignments: []Assignment{{Prop: "Pb", Value: domain.Real(15)}},
		MotivatedBy: []string{"Split"},
	}); err != nil {
		t.Fatal(err)
	}
	if !d.Done() {
		t.Errorf("expected done; violations=%v Top=%v", d.Net.Violations(), d.Problem("Top").Status())
	}
}

func TestVerifySkipsUnboundArgs(t *testing.T) {
	d := mustDPM(t, Conventional)
	tr, err := d.Apply(Operation{Kind: OpVerification, Problem: "Top", Designer: "leader"})
	if err != nil {
		t.Fatal(err)
	}
	// Split has unbound args (Pa, Pb): the tool cannot run.
	if tr.Evaluations != 0 {
		t.Errorf("evals = %d, want 0 (args unbound)", tr.Evaluations)
	}
	if d.Net.Status("Split") != constraint.Consistent {
		t.Errorf("Split = %v, want Consistent", d.Net.Status("Split"))
	}
}

func TestUnverifiedConstraints(t *testing.T) {
	d := mustDPM(t, Conventional)
	if got := d.UnverifiedConstraints("SubA"); got != nil {
		t.Errorf("nothing bound: UnverifiedConstraints = %v", got)
	}
	if _, err := d.Apply(Operation{
		Kind: OpSynthesis, Problem: "SubA", Designer: "alice",
		Assignments: []Assignment{{Prop: "Pa", Value: domain.Real(40)}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := d.UnverifiedConstraints("SubA"); len(got) != 1 || got[0] != "AMin" {
		t.Errorf("UnverifiedConstraints = %v", got)
	}
	if _, err := d.Apply(Operation{Kind: OpVerification, Problem: "SubA", Designer: "alice"}); err != nil {
		t.Fatal(err)
	}
	if got := d.UnverifiedConstraints("SubA"); got != nil {
		t.Errorf("after verify: %v", got)
	}
	if got := d.UnverifiedConstraints("nope"); got != nil {
		t.Errorf("unknown problem: %v", got)
	}
}

func TestApplyErrors(t *testing.T) {
	d := mustDPM(t, Conventional)
	if _, err := d.Apply(Operation{Kind: OpSynthesis, Problem: "nope"}); err == nil {
		t.Error("unknown problem accepted")
	}
	if _, err := d.Apply(Operation{
		Kind: OpSynthesis, Problem: "SubA",
		Assignments: []Assignment{{Prop: "nope", Value: domain.Real(1)}},
	}); err == nil {
		t.Error("unknown property accepted")
	}
	if _, err := d.Apply(Operation{
		Kind: OpVerification, Problem: "SubA", Verify: []string{"nope"},
	}); err == nil {
		t.Error("unknown constraint accepted")
	}
	if _, err := d.Apply(Operation{Kind: OpDecomposition, Problem: "SubA"}); err == nil {
		t.Error("decomposition of leaf accepted")
	}
	if _, err := d.Apply(Operation{Kind: OpKind(99), Problem: "SubA"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestDecompositionOperation(t *testing.T) {
	d := mustDPM(t, Conventional)
	tr, err := d.Apply(Operation{Kind: OpDecomposition, Problem: "Top", Designer: "leader"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Op.Kind != OpDecomposition {
		t.Error("transition lost kind")
	}
	if d.Problem("SubA").Status() != Open || d.Problem("SubB").Status() != Open {
		t.Error("children not opened")
	}
}

func TestIsCrossSubsystem(t *testing.T) {
	d := mustDPM(t, Conventional)
	if !d.IsCrossSubsystem(d.Net.Constraint("Split")) {
		t.Error("Split spans alice/bob/leader properties")
	}
	if d.IsCrossSubsystem(d.Net.Constraint("AMin")) {
		t.Error("AMin is local to alice")
	}
}

func TestNewValidation(t *testing.T) {
	net := constraint.NewNetwork()
	if _, err := New(net, []*Problem{{Name: "P", Outputs: []string{"x"}}}, Conventional); err == nil {
		t.Error("unknown output property accepted")
	}
	if _, err := New(net, []*Problem{{Name: "P", Constraints: []string{"c"}}}, Conventional); err == nil {
		t.Error("unknown constraint accepted")
	}
	if _, err := New(net, []*Problem{{Name: "P"}, {Name: "P"}}, Conventional); err == nil {
		t.Error("duplicate problem accepted")
	}
}

func TestOperationString(t *testing.T) {
	op := Operation{
		Kind: OpSynthesis, Problem: "SubA", Designer: "alice",
		Assignments: []Assignment{{Prop: "Pa", Value: domain.Real(40)}},
		MotivatedBy: []string{"Split"},
	}
	s := op.String()
	for _, part := range []string{"synthesis", "SubA", "alice", "Pa=40", "Split"} {
		if !strings.Contains(s, part) {
			t.Errorf("op string %q missing %q", s, part)
		}
	}
	v := Operation{Kind: OpVerification, Problem: "Top", Designer: "l", Verify: []string{"Split"}}
	if !strings.Contains(v.String(), "verify=[Split]") {
		t.Errorf("verify op string = %q", v.String())
	}
}
