package dpm

import (
	"fmt"
	"strings"

	"repro/internal/domain"
)

// OpKind classifies design operators (paper §2.1): synthesis operators
// compute output values, verification operators check constraints, and
// decomposition operators split a problem into subproblems.
type OpKind int

// Operator kinds.
const (
	// OpSynthesis binds values to problem outputs.
	OpSynthesis OpKind = iota
	// OpVerification evaluates constraints at the current point values.
	OpVerification
	// OpDecomposition activates a problem's subproblems.
	OpDecomposition
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpSynthesis:
		return "synthesis"
	case OpVerification:
		return "verification"
	case OpDecomposition:
		return "decomposition"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Assignment is one property-value binding requested by a synthesis
// operation.
type Assignment struct {
	Prop  string
	Value domain.Value
}

// Operation is a design operation θ (paper §2.1): an operator applied
// to a problem with parameter values, requested by a designer.
type Operation struct {
	// Kind selects the operator class.
	Kind OpKind
	// Problem names the problem the operator is applied to.
	Problem string
	// Designer identifies the requesting team member.
	Designer string
	// Assignments lists the bindings performed by a synthesis operator.
	Assignments []Assignment
	// Verify lists constraint names a verification operator evaluates;
	// empty means every constraint of the target problem.
	Verify []string
	// MotivatedBy lists the violated constraints that prompted this
	// operation. When any of them spans properties of multiple owners
	// the operation is a design spin (§3.1.2: an executed operation due
	// to at least one violation involving properties from multiple
	// subsystems).
	MotivatedBy []string
}

// String renders a concise description for logs and histories.
func (o Operation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) by %s", o.Kind, o.Problem, o.Designer)
	if len(o.Assignments) > 0 {
		b.WriteString(" set")
		for _, a := range o.Assignments {
			fmt.Fprintf(&b, " %s=%s", a.Prop, a.Value)
		}
	}
	if len(o.Verify) > 0 {
		fmt.Fprintf(&b, " verify=%v", o.Verify)
	}
	if len(o.MotivatedBy) > 0 {
		fmt.Fprintf(&b, " fixing=%v", o.MotivatedBy)
	}
	return b.String()
}

// Transition records one executed design transition t_n = (s_n, s_n+1)
// along with the statistics TeamSim captures per operation (§3.1.2):
// violations found immediately after execution, constraint evaluations
// attributable to the operation, and whether it was a design spin.
type Transition struct {
	// Stage is the history index n of the operation.
	Stage int
	// Op is the executed operation θ_n.
	Op Operation
	// ViolationsBefore lists constraints known violated before the
	// transition.
	ViolationsBefore []string
	// ViolationsAfter lists constraints known violated after the
	// transition.
	ViolationsAfter []string
	// NewViolations lists violations present after but not before.
	NewViolations []string
	// Evaluations counts constraint evaluations due to this operation.
	Evaluations int64
	// Narrowed lists properties whose feasible subspace shrank due to
	// this operation (ADPM mode only).
	Narrowed []string
	// Emptied lists properties whose feasible subspace became empty due
	// to this operation (ADPM mode only).
	Emptied []string
	// IsSpin marks expensive cross-subsystem iterations.
	IsSpin bool
}
