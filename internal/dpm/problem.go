// Package dpm implements the design process manager of paper §2.1–2.2:
// the state-based model in which a design process moves through states
// s_n by applying design operations θ_n, with the next-state function δ
// updating the problem hierarchy and — in ADPM mode — generating and
// propagating constraints after every operation (Fig. 1).
package dpm

import (
	"fmt"
)

// ProblemStatus is a design problem's level of accomplishment.
type ProblemStatus int

// Problem statuses.
const (
	// Open problems are available for their owner to work on.
	Open ProblemStatus = iota
	// Waiting problems are blocked on subproblems (the paper's f_p
	// skips problems with a Waiting status, §3.1.1).
	Waiting
	// Solved problems have all outputs bound and all constraints in T_i
	// known satisfied.
	Solved
)

// String names the status.
func (s ProblemStatus) String() string {
	switch s {
	case Open:
		return "Open"
	case Waiting:
		return "Waiting"
	case Solved:
		return "Solved"
	}
	return fmt.Sprintf("ProblemStatus(%d)", int(s))
}

// Problem is a design problem p_i = (I_i, O_i, T_i) (paper §2.1): input
// properties, output properties, and the constraint set T_i relating a
// subset of the problem's properties.
type Problem struct {
	// Name uniquely identifies the problem.
	Name string
	// Owner is the designer responsible for solving it.
	Owner string
	// Inputs are property names the problem consumes.
	Inputs []string
	// Outputs are property names a solution must bind.
	Outputs []string
	// Constraints are the names of the constraints in T_i.
	Constraints []string
	// Parent is the problem this one was decomposed from ("" for root).
	Parent string
	// Children are the subproblems of a decomposed problem.
	Children []string

	status ProblemStatus
	// everSolved records that the problem reached Solved at some stage;
	// later modifications to it are rework (late design iterations).
	everSolved bool
}

// EverSolved reports whether the problem has ever reached Solved.
func (p *Problem) EverSolved() bool { return p.everSolved }

// Status returns the problem's current status.
func (p *Problem) Status() ProblemStatus { return p.status }

// SetStatus overrides the status (the DPM recomputes it each
// transition; tests and decomposition operators use this directly).
func (p *Problem) SetStatus(s ProblemStatus) {
	p.status = s
	if s == Solved {
		p.everSolved = true
	}
}

// IsLeaf reports whether the problem has no subproblems.
func (p *Problem) IsLeaf() bool { return len(p.Children) == 0 }

// HasOutput reports whether prop is one of the problem's outputs.
func (p *Problem) HasOutput(prop string) bool {
	for _, o := range p.Outputs {
		if o == prop {
			return true
		}
	}
	return false
}

// clone returns a deep copy of the problem.
func (p *Problem) clone() *Problem {
	cp := *p
	cp.Inputs = append([]string(nil), p.Inputs...)
	cp.Outputs = append([]string(nil), p.Outputs...)
	cp.Constraints = append([]string(nil), p.Constraints...)
	cp.Children = append([]string(nil), p.Children...)
	return &cp
}

// String formats the problem.
func (p *Problem) String() string {
	return fmt.Sprintf("%s[%s] owner=%s outputs=%v", p.Name, p.status, p.Owner, p.Outputs)
}
