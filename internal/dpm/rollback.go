package dpm

import (
	"fmt"

	"repro/internal/constraint"
)

// checkpoint captures everything needed to rewind the process to the
// state before one transition.
type checkpoint struct {
	net      *constraint.Snapshot
	statuses map[string]ProblemStatus
	solved   map[string]bool
}

// takeCheckpoint snapshots the current process state.
func (d *DPM) takeCheckpoint() *checkpoint {
	cp := &checkpoint{
		net:      d.Net.Snapshot(),
		statuses: make(map[string]ProblemStatus, len(d.problems)),
		solved:   make(map[string]bool, len(d.problems)),
	}
	for name, p := range d.problems {
		cp.statuses[name] = p.status
		cp.solved[name] = p.everSolved
	}
	return cp
}

func (d *DPM) restoreCheckpoint(cp *checkpoint) {
	// The evaluation counter stays monotone across rollback: tool runs
	// performed on the abandoned path were still consumed.
	spent := d.Net.EvalCount()
	d.Net.Restore(cp.net)
	d.Net.AddEvals(spent - d.Net.EvalCount())
	for name, p := range d.problems {
		if st, ok := cp.statuses[name]; ok {
			p.status = st
			p.everSolved = cp.solved[name]
		}
	}
}

// RollbackTo rewinds the design process to the state before the
// transition at the given history stage — the backtracking §2.3.3's
// early violation information enables. History entries at and after the
// stage are discarded (the paper's H_n keeps only the path actually
// taken). Rollback requires checkpointing, which Apply performs when
// EnableRollback has been called.
func (d *DPM) RollbackTo(stage int) error {
	if !d.checkpointing {
		return fmt.Errorf("dpm: rollback requires EnableRollback before the first operation")
	}
	if stage < 0 || stage >= len(d.history) {
		return fmt.Errorf("dpm: rollback to stage %d outside history [0, %d)", stage, len(d.history))
	}
	cp := d.checkpoints[stage]
	if cp == nil {
		return fmt.Errorf("dpm: no checkpoint for stage %d", stage)
	}
	d.restoreCheckpoint(cp)
	d.history = d.history[:stage]
	d.checkpoints = d.checkpoints[:stage]
	d.stage = stage
	return nil
}

// EnableRollback turns on per-transition checkpointing, allowing
// RollbackTo at the cost of one network snapshot per operation.
func (d *DPM) EnableRollback() { d.checkpointing = true }

// CanRollback reports whether checkpointing is active and history
// exists to rewind into.
func (d *DPM) CanRollback() bool { return d.checkpointing && len(d.checkpoints) > 0 }
