package dpm

import (
	"testing"

	"repro/internal/domain"
)

func TestRollback(t *testing.T) {
	d := derivedDPM(t, ADPM)
	d.EnableRollback()
	if d.CanRollback() {
		t.Error("nothing to roll back yet")
	}
	bind := func(prop string, v float64) {
		t.Helper()
		if _, err := d.Apply(Operation{
			Kind: OpSynthesis, Problem: "AmpDesign", Designer: "circuit",
			Assignments: []Assignment{{Prop: prop, Value: domain.Real(v)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	bind("W", 5)
	bind("I", 4) // stage 1: Gain computed (40), all satisfied
	if !d.CanRollback() {
		t.Error("rollback should be available")
	}
	// A bad move: Gain = 4*5*sqrt(0.01)... I=1 gives Gain=20 < 30.
	bind("I", 1)
	if d.Net.NumViolations() == 0 {
		t.Fatal("setup: expected a violation after the bad move")
	}
	// Backtrack to before the bad move (stage 2).
	if err := d.RollbackTo(2); err != nil {
		t.Fatal(err)
	}
	if d.Stage() != 2 || len(d.History()) != 2 {
		t.Errorf("stage/history after rollback: %d/%d", d.Stage(), len(d.History()))
	}
	if v, _ := d.Net.Property("I").Value(); v.Num() != 4 {
		t.Errorf("I after rollback = %v, want 4", v)
	}
	if g, _ := d.Net.Property("Gain").Value(); g.Num() != 40 {
		t.Errorf("Gain after rollback = %v, want 40", g)
	}
	if d.Net.NumViolations() != 0 {
		t.Errorf("violations after rollback: %v", d.Net.Violations())
	}
	// The process can continue normally from the restored state
	// (I=6: Gain = 20·√6 ≈ 49 ≥ 30, Power = 64 ≤ 80).
	bind("I", 6)
	if g, _ := d.Net.Property("Gain").Value(); g.Num() < 30 {
		t.Errorf("Gain after new move = %v, want ≥ 30", g)
	}
	if !d.Done() {
		t.Errorf("process should complete; violations %v", d.Net.Violations())
	}
}

func TestRollbackToStartRestoresInitialState(t *testing.T) {
	d := derivedDPM(t, ADPM)
	d.EnableRollback()
	for _, v := range []float64{5, 4} {
		prop := "W"
		if v == 4 {
			prop = "I"
		}
		if _, err := d.Apply(Operation{
			Kind: OpSynthesis, Problem: "AmpDesign", Designer: "circuit",
			Assignments: []Assignment{{Prop: prop, Value: domain.Real(v)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.RollbackTo(0); err != nil {
		t.Fatal(err)
	}
	if d.Net.Property("W").IsBound() || d.Net.Property("Gain").IsBound() {
		t.Error("bindings survive rollback to start")
	}
	if d.Problem("AmpDesign").Status() != Open {
		t.Errorf("problem status after rollback: %v", d.Problem("AmpDesign").Status())
	}
}

func TestRollbackValidation(t *testing.T) {
	d := derivedDPM(t, ADPM)
	if err := d.RollbackTo(0); err == nil {
		t.Error("rollback without EnableRollback accepted")
	}
	d.EnableRollback()
	if err := d.RollbackTo(0); err == nil {
		t.Error("rollback into empty history accepted")
	}
	if _, err := d.Apply(Operation{
		Kind: OpSynthesis, Problem: "AmpDesign", Designer: "circuit",
		Assignments: []Assignment{{Prop: "W", Value: domain.Real(5)}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.RollbackTo(5); err == nil {
		t.Error("rollback past history accepted")
	}
	if err := d.RollbackTo(-1); err == nil {
		t.Error("negative stage accepted")
	}
}

func TestRollbackRestoresEverSolved(t *testing.T) {
	d := derivedDPM(t, ADPM)
	d.EnableRollback()
	bind := func(prop string, v float64) {
		t.Helper()
		if _, err := d.Apply(Operation{
			Kind: OpSynthesis, Problem: "AmpDesign", Designer: "circuit",
			Assignments: []Assignment{{Prop: prop, Value: domain.Real(v)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	bind("W", 5)
	if d.Problem("AmpDesign").EverSolved() {
		t.Fatal("setup: not solved yet")
	}
	bind("I", 4) // solves everything
	if !d.Problem("AmpDesign").EverSolved() {
		t.Fatal("setup: should be solved")
	}
	if err := d.RollbackTo(1); err != nil {
		t.Fatal(err)
	}
	if d.Problem("AmpDesign").EverSolved() {
		t.Error("everSolved survives rollback — spin accounting would be wrong")
	}
}
