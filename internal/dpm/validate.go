package dpm

import "fmt"

// Validate checks an operation against the current process state and
// returns the error Apply would return, without mutating anything.
// After Validate succeeds, Apply's mutation path cannot fail: unknown
// problems, unknown properties/constraints, value-kind mismatches
// (Property.CanBind is the complete precondition of Bind), leaf
// decompositions, and unknown operator kinds are the only error cases
// in Apply. This is what lets a host apply a validated batch atomically
// without checkpoint/rollback machinery — a rejected batch has touched
// nothing.
func (d *DPM) Validate(op Operation) error {
	prob := d.problems[op.Problem]
	if prob == nil {
		return fmt.Errorf("dpm: operation on unknown problem %q", op.Problem)
	}
	switch op.Kind {
	case OpSynthesis:
		for _, a := range op.Assignments {
			p := d.Net.Property(a.Prop)
			if p == nil {
				return fmt.Errorf("dpm: assignment to unknown property %q", a.Prop)
			}
			if err := p.CanBind(a.Value); err != nil {
				return err
			}
		}
	case OpVerification:
		for _, cn := range op.Verify {
			if d.Net.Constraint(cn) == nil {
				return fmt.Errorf("dpm: verification of unknown constraint %q", cn)
			}
		}
	case OpDecomposition:
		if prob.IsLeaf() {
			return fmt.Errorf("dpm: decomposition of leaf problem %q", op.Problem)
		}
	default:
		return fmt.Errorf("dpm: unknown operation kind %v", op.Kind)
	}
	return nil
}
