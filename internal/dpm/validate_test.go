package dpm_test

import (
	"math/rand"
	"testing"

	"repro/internal/domain"
	"repro/internal/dpm"
	"repro/internal/scenario"
)

// TestValidateMirrorsApply property-checks the contract internal/server
// relies on for atomic batches: Validate(op) == nil implies Apply(op)
// succeeds, and Validate's error equals the error Apply returns. Ops
// are generated over a mix of valid and invalid problems, properties,
// constraints, kinds, and value types.
func TestValidateMirrorsApply(t *testing.T) {
	scn := scenario.Sensor()
	rng := rand.New(rand.NewSource(7))

	props := []string{"Diaphragm_R", "Amp_gain", "nope", "", "Sensitivity"}
	problems := []string{"Top", "SensorDesign", "InterfaceDesign", "Ghost", ""}
	cons := []string{"ResSpec", "GapMin", "missing", ""}
	kinds := []dpm.OpKind{dpm.OpSynthesis, dpm.OpVerification, dpm.OpDecomposition, dpm.OpKind(9)}

	for i := 0; i < 400; i++ {
		// Fresh process per op so a failed Apply never poisons the next
		// iteration's comparison.
		d, err := dpm.FromScenario(scn, dpm.ADPM)
		if err != nil {
			t.Fatal(err)
		}
		op := dpm.Operation{
			Kind:     kinds[rng.Intn(len(kinds))],
			Problem:  problems[rng.Intn(len(problems))],
			Designer: "prop",
		}
		switch op.Kind {
		case dpm.OpSynthesis:
			n := rng.Intn(3)
			for j := 0; j < n; j++ {
				v := domain.Real(rng.Float64() * 100)
				if rng.Intn(4) == 0 {
					v = domain.Str("oops") // kind mismatch on numeric domains
				}
				op.Assignments = append(op.Assignments, dpm.Assignment{
					Prop: props[rng.Intn(len(props))], Value: v,
				})
			}
		case dpm.OpVerification:
			for j := rng.Intn(3); j > 0; j-- {
				op.Verify = append(op.Verify, cons[rng.Intn(len(cons))])
			}
		}

		verr := d.Validate(op)
		_, aerr := d.Apply(op)
		switch {
		case verr == nil && aerr != nil:
			t.Fatalf("iter %d: Validate accepted %v but Apply failed: %v", i, op, aerr)
		case verr != nil && aerr == nil:
			t.Fatalf("iter %d: Validate rejected %v (%v) but Apply succeeded", i, op, verr)
		case verr != nil && aerr != nil && verr.Error() != aerr.Error():
			t.Fatalf("iter %d: error mismatch:\n validate: %v\n apply:    %v", i, verr, aerr)
		}
	}
}

// TestValidateDoesNotMutate pins that Validate leaves the process
// untouched even for valid operations.
func TestValidateDoesNotMutate(t *testing.T) {
	d, err := dpm.FromScenario(scenario.Simplified(), dpm.ADPM)
	if err != nil {
		t.Fatal(err)
	}
	evals := d.Net.EvalCount()
	stage := d.Stage()
	op := dpm.Operation{Kind: dpm.OpSynthesis, Problem: "AmpDesign",
		Assignments: []dpm.Assignment{{Prop: "Width", Value: domain.Real(2)}}}
	if err := d.Validate(op); err != nil {
		t.Fatal(err)
	}
	if d.Net.EvalCount() != evals || d.Stage() != stage {
		t.Errorf("Validate mutated the process: evals %d->%d stage %d->%d",
			evals, d.Net.EvalCount(), stage, d.Stage())
	}
	if d.Net.Property("Width").IsBound() {
		t.Errorf("Validate bound the property")
	}
}
