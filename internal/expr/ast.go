// Package expr implements the arithmetic expression language used to
// state design constraints (paper §2.1, e.g. "Pf + Ps <= PM" relates a
// receiver's power budget to its subsystem powers).
//
// The package provides:
//
//   - a lexer and parser producing an immutable AST (Parse / MustParse);
//   - point evaluation over float64 environments (Eval);
//   - conservative interval evaluation (EvalInterval), the basis of the
//     tri-state constraint status of §2.1;
//   - HC4-style backward narrowing (Narrow), the per-constraint step of
//     the DCM's constraint propagation algorithm (§2.2);
//   - symbolic differentiation (Diff) and interval monotonicity-sign
//     analysis (MonotoneSign), which supply the monotonic-constraint
//     lists the simulated designers use when choosing fix directions
//     (§3.1.1).
package expr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Node is an immutable expression tree node. The concrete types are
// *Num, *Var, *Unary, *Binary, and *Call.
type Node interface {
	// String renders the node as parseable expression text.
	String() string
	// isNode restricts implementations to this package.
	isNode()
}

// Num is a numeric literal.
type Num struct {
	Val float64
}

// Var is a reference to a named design property.
type Var struct {
	Name string
}

// Unary is a unary operation; Op is currently always '-'.
type Unary struct {
	Op byte
	X  Node
}

// Binary is a binary operation; Op is one of '+', '-', '*', '/', '^'.
type Binary struct {
	Op   byte
	X, Y Node
}

// Call is a builtin function application. Supported functions:
// sqrt, sqr, abs, exp, log, min, max.
type Call struct {
	Fn   string
	Args []Node
}

func (*Num) isNode()    {}
func (*Var) isNode()    {}
func (*Unary) isNode()  {}
func (*Binary) isNode() {}
func (*Call) isNode()   {}

// String renders the literal with full precision.
func (n *Num) String() string {
	return strconv.FormatFloat(n.Val, 'g', -1, 64)
}

func (n *Var) String() string { return n.Name }

func (n *Unary) String() string {
	// The grammar is unary-first: "-y ^ 2" parses as (-y)^2, so any
	// operator child — including '^' — must be parenthesized to survive
	// a print/parse round trip.
	s := parenthesize(n.X, precAtom)
	if strings.HasPrefix(s, "-") {
		// Avoid "--x": a negated negative literal (or nested negation)
		// must keep its own sign visually grouped.
		s = "(" + s + ")"
	}
	return "-" + s
}

func (n *Binary) String() string {
	p := binPrec(n.Op)
	// The side opposite an operator's associativity needs parentheses at
	// equal precedence: (a-b)-c prints bare but a-(b-c) keeps parens, and
	// dually a^(b^c) prints bare while (a^b)^c keeps parens.
	lp, rp := p, p+1
	if n.Op == '^' { // right-assoc
		lp, rp = p+1, p
	}
	l := parenthesize(n.X, lp)
	r := parenthesize(n.Y, rp)
	return fmt.Sprintf("%s %c %s", l, n.Op, r)
}

func (n *Call) String() string {
	args := make([]string, len(n.Args))
	for i, a := range n.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", n.Fn, strings.Join(args, ", "))
}

// operator precedence levels; higher binds tighter.
const (
	precAdd   = 1
	precMul   = 2
	precUnary = 3
	precPow   = 4
	precAtom  = 5
)

func binPrec(op byte) int {
	switch op {
	case '+', '-':
		return precAdd
	case '*', '/':
		return precMul
	case '^':
		return precPow
	}
	return precAtom
}

func nodePrec(n Node) int {
	switch t := n.(type) {
	case *Binary:
		return binPrec(t.Op)
	case *Unary:
		return precUnary
	default:
		return precAtom
	}
}

func parenthesize(n Node, minPrec int) string {
	s := n.String()
	if nodePrec(n) < minPrec {
		return "(" + s + ")"
	}
	return s
}

// Vars returns the sorted set of distinct variable names referenced by n.
func Vars(n Node) []string {
	set := map[string]bool{}
	collectVars(n, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectVars(n Node, set map[string]bool) {
	switch t := n.(type) {
	case *Num:
	case *Var:
		set[t.Name] = true
	case *IVar:
		set[t.Name] = true
	case *Unary:
		collectVars(t.X, set)
	case *Binary:
		collectVars(t.X, set)
		collectVars(t.Y, set)
	case *Call:
		for _, a := range t.Args {
			collectVars(a, set)
		}
	}
}

// ContainsVar reports whether variable name appears in n.
func ContainsVar(n Node, name string) bool {
	switch t := n.(type) {
	case *Num:
		return false
	case *Var:
		return t.Name == name
	case *IVar:
		return t.Name == name
	case *Unary:
		return ContainsVar(t.X, name)
	case *Binary:
		return ContainsVar(t.X, name) || ContainsVar(t.Y, name)
	case *Call:
		for _, a := range t.Args {
			if ContainsVar(a, name) {
				return true
			}
		}
	}
	return false
}

// CountNodes returns the number of AST nodes, a cheap complexity proxy
// used when reporting constraint-network statistics.
func CountNodes(n Node) int {
	switch t := n.(type) {
	case *Num, *Var, *IVar:
		return 1
	case *Unary:
		return 1 + CountNodes(t.X)
	case *Binary:
		return 1 + CountNodes(t.X) + CountNodes(t.Y)
	case *Call:
		c := 1
		for _, a := range t.Args {
			c += CountNodes(a)
		}
		return c
	}
	return 1
}

// Substitute returns a copy of n with every variable that has an entry
// in repl replaced by (a copy of) its replacement expression. Used to
// expand derived-property references through their defining formulas.
func Substitute(n Node, repl map[string]Node) Node {
	switch t := n.(type) {
	case *Num:
		return t
	case *Var:
		if r, ok := repl[t.Name]; ok {
			return r
		}
		return t
	case *Unary:
		return &Unary{Op: t.Op, X: Substitute(t.X, repl)}
	case *Binary:
		return &Binary{Op: t.Op, X: Substitute(t.X, repl), Y: Substitute(t.Y, repl)}
	case *Call:
		args := make([]Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = Substitute(a, repl)
		}
		return &Call{Fn: t.Fn, Args: args}
	}
	return n
}
