package expr

import (
	"repro/internal/interval"
)

// IVar is a variable reference with a dense integer id baked in by
// Compile. Evaluation and narrowing use the id against environments
// that support indexed access (IndexedIntervalEnv, IndexedBox),
// bypassing the per-access string hashing of name-keyed lookups; the
// name is kept for printing and for environments without an id path.
type IVar struct {
	Name string
	ID   int
}

func (*IVar) isNode() {}

func (n *IVar) String() string { return n.Name }

// IndexedIntervalEnv is an IntervalEnv that additionally supports
// domain lookup by compiled variable id.
type IndexedIntervalEnv interface {
	IntervalEnv
	DomainID(id int) interval.Interval
}

// IndexedBox is a Box that additionally supports domain access by
// compiled variable id.
type IndexedBox interface {
	Box
	DomainID(id int) interval.Interval
	SetDomainID(id int, iv interval.Interval)
}

// Compile returns a copy of n with every *Var replaced by an *IVar
// whose id is assigned by resolve. Variables that resolve negatively
// are left as *Var (they fall back to name lookups). The result is
// intended for EvalInterval and Shadow narrowing; symbolic passes
// (Diff, MonotoneSign) should keep using the uncompiled tree.
func Compile(n Node, resolve func(name string) (int, bool)) Node {
	switch t := n.(type) {
	case *Num:
		return t
	case *Var:
		if id, ok := resolve(t.Name); ok {
			return &IVar{Name: t.Name, ID: id}
		}
		return t
	case *IVar:
		return t
	case *Unary:
		return &Unary{Op: t.Op, X: Compile(t.X, resolve)}
	case *Binary:
		return &Binary{Op: t.Op, X: Compile(t.X, resolve), Y: Compile(t.Y, resolve)}
	case *Call:
		args := make([]Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = Compile(a, resolve)
		}
		return &Call{Fn: t.Fn, Args: args}
	}
	return n
}

// Shadow is a reusable forward-evaluation tree for one expression. A
// fresh HC4 revise normally allocates one shadow node per AST node;
// constructing the Shadow once and calling Narrow repeatedly performs
// revises with zero steady-state allocation. A Shadow is not safe for
// concurrent use.
type Shadow struct {
	root *fnode
}

// NewShadow builds the reusable shadow tree of n.
func NewShadow(n Node) *Shadow {
	return &Shadow{root: buildShadow(n)}
}

// Narrow performs one HC4 revise of the expression against box,
// requiring the expression's value to lie in want. It reports false
// when the revise proves inconsistency. Changed variables are observed
// through the box's SetDomain/SetDomainID calls; no changed list is
// built.
func (s *Shadow) Narrow(want interval.Interval, box Box) bool {
	refreshShadow(s.root, box)
	return backward(s.root, want, box, nil)
}
