package expr

// Diff returns the symbolic partial derivative ∂n/∂v, or nil when the
// derivative cannot be expressed in this language (abs at zero, min/max,
// variable exponents). A nil result means "monotonicity unknown", which
// the designers treat as no guidance (§3.1.1 footnote 1).
func Diff(n Node, v string) Node {
	switch t := n.(type) {
	case *Num:
		return &Num{Val: 0}
	case *Var:
		if t.Name == v {
			return &Num{Val: 1}
		}
		return &Num{Val: 0}
	case *Unary:
		dx := Diff(t.X, v)
		if dx == nil {
			return nil
		}
		return simplifyNeg(dx)
	case *Binary:
		return diffBinary(t, v)
	case *Call:
		return diffCall(t, v)
	}
	return nil
}

func diffBinary(t *Binary, v string) Node {
	dx := Diff(t.X, v)
	dy := Diff(t.Y, v)
	if dx == nil || dy == nil {
		return nil
	}
	switch t.Op {
	case '+':
		return simplifyAdd(dx, dy)
	case '-':
		return simplifySub(dx, dy)
	case '*':
		// (xy)' = x'y + xy'
		return simplifyAdd(simplifyMul(dx, t.Y), simplifyMul(t.X, dy))
	case '/':
		// (x/y)' = (x'y - xy') / y²
		numer := simplifySub(simplifyMul(dx, t.Y), simplifyMul(t.X, dy))
		denom := &Call{Fn: "sqr", Args: []Node{t.Y}}
		return simplifyDiv(numer, denom)
	case '^':
		k, ok := intConst(t.Y)
		if !ok {
			return nil // variable exponent: out of scope
		}
		if k == 0 {
			return &Num{Val: 0}
		}
		// (x^k)' = k·x^(k-1)·x'
		var pow Node
		switch k - 1 {
		case 0:
			pow = &Num{Val: 1}
		case 1:
			pow = t.X
		default:
			pow = &Binary{Op: '^', X: t.X, Y: &Num{Val: float64(k - 1)}}
		}
		return simplifyMul(simplifyMul(&Num{Val: float64(k)}, pow), dx)
	}
	return nil
}

func diffCall(t *Call, v string) Node {
	switch t.Fn {
	case "sqrt":
		dx := Diff(t.Args[0], v)
		if dx == nil {
			return nil
		}
		// (√x)' = x' / (2√x)
		denom := simplifyMul(&Num{Val: 2}, &Call{Fn: "sqrt", Args: []Node{t.Args[0]}})
		return simplifyDiv(dx, denom)
	case "sqr":
		dx := Diff(t.Args[0], v)
		if dx == nil {
			return nil
		}
		// (x²)' = 2x·x'
		return simplifyMul(simplifyMul(&Num{Val: 2}, t.Args[0]), dx)
	case "exp":
		dx := Diff(t.Args[0], v)
		if dx == nil {
			return nil
		}
		return simplifyMul(&Call{Fn: "exp", Args: []Node{t.Args[0]}}, dx)
	case "log":
		dx := Diff(t.Args[0], v)
		if dx == nil {
			return nil
		}
		return simplifyDiv(dx, t.Args[0])
	case "abs", "min", "max":
		// Not differentiable everywhere; if the sub-expression does not
		// involve v at all the derivative is simply zero.
		if !ContainsVar(t, v) {
			return &Num{Val: 0}
		}
		return nil
	}
	return nil
}

// --- light syntactic simplification (keeps derivative trees small) ----

func isZero(n Node) bool {
	num, ok := n.(*Num)
	return ok && num.Val == 0
}

func isOne(n Node) bool {
	num, ok := n.(*Num)
	return ok && num.Val == 1
}

func simplifyAdd(x, y Node) Node {
	if isZero(x) {
		return y
	}
	if isZero(y) {
		return x
	}
	if a, ok := x.(*Num); ok {
		if b, ok := y.(*Num); ok {
			return &Num{Val: a.Val + b.Val}
		}
	}
	return &Binary{Op: '+', X: x, Y: y}
}

func simplifySub(x, y Node) Node {
	if isZero(y) {
		return x
	}
	if isZero(x) {
		return simplifyNeg(y)
	}
	if a, ok := x.(*Num); ok {
		if b, ok := y.(*Num); ok {
			return &Num{Val: a.Val - b.Val}
		}
	}
	return &Binary{Op: '-', X: x, Y: y}
}

func simplifyMul(x, y Node) Node {
	if isZero(x) || isZero(y) {
		return &Num{Val: 0}
	}
	if isOne(x) {
		return y
	}
	if isOne(y) {
		return x
	}
	if a, ok := x.(*Num); ok {
		if b, ok := y.(*Num); ok {
			return &Num{Val: a.Val * b.Val}
		}
	}
	return &Binary{Op: '*', X: x, Y: y}
}

func simplifyDiv(x, y Node) Node {
	if isZero(x) {
		return &Num{Val: 0}
	}
	if isOne(y) {
		return x
	}
	return &Binary{Op: '/', X: x, Y: y}
}

func simplifyNeg(x Node) Node {
	if num, ok := x.(*Num); ok {
		return &Num{Val: -num.Val}
	}
	if u, ok := x.(*Unary); ok && u.Op == '-' {
		return u.X
	}
	return &Unary{Op: '-', X: x}
}

// MonotoneSign reports the sign of ∂n/∂v over the box env:
// +1 when n is non-decreasing in v everywhere on the box, -1 when
// non-increasing, 0 when unknown or mixed. It interval-evaluates the
// symbolic derivative — a standard conservative monotonicity test.
func MonotoneSign(n Node, v string, env IntervalEnv) int {
	if !ContainsVar(n, v) {
		return 0
	}
	d := Diff(n, v)
	if d == nil {
		return 0
	}
	iv := EvalInterval(d, env)
	if iv.IsEmpty() {
		return 0
	}
	if iv.Lo >= 0 {
		return +1
	}
	if iv.Hi <= 0 {
		return -1
	}
	return 0
}
