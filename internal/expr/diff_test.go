package expr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/interval"
)

func TestDiffSymbolic(t *testing.T) {
	cases := []struct {
		in, v, want string
	}{
		{"x", "x", "1"},
		{"x", "y", "0"},
		{"7", "x", "0"},
		{"x + y", "x", "1"},
		{"x - y", "y", "-1"},
		{"2 * x", "x", "2"},
		{"x * y", "x", "y"},
		{"x ^ 2", "x", "2 * x"},
		{"x ^ 3", "x", "3 * x ^ 2"},
		{"x ^ 1", "x", "1"},
		{"sqr(x)", "x", "2 * x"},
		{"-x", "x", "-1"},
		{"exp(x)", "x", "exp(x)"},
		{"log(x)", "x", "1 / x"},
	}
	for _, c := range cases {
		d := Diff(MustParse(c.in), c.v)
		if d == nil {
			t.Errorf("Diff(%q, %q) = nil", c.in, c.v)
			continue
		}
		if got := d.String(); got != c.want {
			t.Errorf("Diff(%q, %q) = %q, want %q", c.in, c.v, got, c.want)
		}
	}
}

func TestDiffUnknown(t *testing.T) {
	// min/max/abs touching the variable: derivative unknown.
	for _, in := range []string{"min(x, y)", "max(x, 1)", "abs(x)"} {
		if d := Diff(MustParse(in), "x"); d != nil {
			t.Errorf("Diff(%q, x) = %v, want nil (unknown)", in, d)
		}
	}
	// but if v does not appear inside, derivative is zero
	if d := Diff(MustParse("min(a, b) + x"), "x"); d == nil || d.String() != "1" {
		t.Errorf("Diff(min(a,b)+x, x) = %v, want 1", d)
	}
	// variable exponent: unknown
	if d := Diff(MustParse("x ^ y"), "x"); d != nil {
		t.Errorf("Diff(x^y, x) = %v, want nil", d)
	}
}

// numDeriv estimates df/dv at point via central differences.
func numDeriv(n Node, v string, env MapEnv) float64 {
	h := 1e-6 * math.Max(1, math.Abs(env[v]))
	e1 := MapEnv{}
	e2 := MapEnv{}
	for k, val := range env {
		e1[k], e2[k] = val, val
	}
	e1[v] += h
	e2[v] -= h
	f1, err1 := Eval(n, e1)
	f2, err2 := Eval(n, e2)
	if err1 != nil || err2 != nil {
		return math.NaN()
	}
	return (f1 - f2) / (2 * h)
}

func TestDiffMatchesNumeric(t *testing.T) {
	exprs := []string{
		"x * y + sqr(x)",
		"x / y",
		"sqrt(x) * y",
		"x ^ 3 - 2 * x",
		"exp(x / 10) + log(y)",
		"(x + y) * (x - y)",
	}
	env := MapEnv{"x": 2.5, "y": 4.0}
	for _, s := range exprs {
		n := MustParse(s)
		for _, v := range []string{"x", "y"} {
			d := Diff(n, v)
			if d == nil {
				t.Errorf("Diff(%q, %q) = nil", s, v)
				continue
			}
			sym, err := Eval(d, env)
			if err != nil {
				t.Errorf("Eval(Diff(%q,%q)): %v", s, v, err)
				continue
			}
			num := numDeriv(n, v, env)
			if math.Abs(sym-num) > 1e-4*math.Max(1, math.Abs(num)) {
				t.Errorf("d%q/d%q: symbolic %v vs numeric %v", s, v, sym, num)
			}
		}
	}
}

func TestMonotoneSign(t *testing.T) {
	cases := []struct {
		in, v string
		box   MapIntervalEnv
		want  int
	}{
		{"x + y", "x", MapIntervalEnv{}, +1},
		{"-2 * x", "x", MapIntervalEnv{}, -1},
		{"x * y", "x", MapIntervalEnv{"y": interval.New(1, 5)}, +1},
		{"x * y", "x", MapIntervalEnv{"y": interval.New(-5, -1)}, -1},
		{"x * y", "x", MapIntervalEnv{"y": interval.New(-1, 1)}, 0},
		{"sqr(x)", "x", MapIntervalEnv{"x": interval.New(1, 5)}, +1},
		{"sqr(x)", "x", MapIntervalEnv{"x": interval.New(-5, 5)}, 0},
		{"y", "x", MapIntervalEnv{}, 0}, // x absent
		{"min(x, y)", "x", MapIntervalEnv{}, 0},
		{"x / y", "x", MapIntervalEnv{"y": interval.New(2, 4)}, +1},
		{"x / y", "y", MapIntervalEnv{"x": interval.New(1, 2), "y": interval.New(1, 3)}, -1},
	}
	for _, c := range cases {
		got := MonotoneSign(MustParse(c.in), c.v, c.box)
		if got != c.want {
			t.Errorf("MonotoneSign(%q, %q, %v) = %d, want %d", c.in, c.v, c.box, got, c.want)
		}
	}
}

// Property: when MonotoneSign reports +1 over a box, sampled function
// values must be non-decreasing along that variable.
func TestQuickMonotoneSignSound(t *testing.T) {
	exprs := []string{
		"x * y",
		"x + sqr(y)",
		"x ^ 3 + y",
		"x / y",
		"sqrt(abs(y)) + 2 * x",
	}
	nodes := make([]Node, len(exprs))
	for i, s := range exprs {
		nodes[i] = MustParse(s)
	}
	f := func(a, b, c, d, t1, t2, t3 float64, which uint8) bool {
		A := arbIv(a, b)
		B := arbIv(c, d)
		n := nodes[int(which)%len(nodes)]
		box := MapIntervalEnv{"x": A, "y": B}
		sign := MonotoneSign(n, "x", box)
		if sign == 0 {
			return true
		}
		x1, x2 := pickIv(A, t1), pickIv(A, t2)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		y := pickIv(B, t3)
		f1, err1 := Eval(n, MapEnv{"x": x1, "y": y})
		f2, err2 := Eval(n, MapEnv{"x": x2, "y": y})
		if err1 != nil || err2 != nil || math.IsNaN(f1) || math.IsNaN(f2) ||
			math.IsInf(f1, 0) || math.IsInf(f2, 0) {
			// An infinite sample makes tol infinite and f1-tol NaN, so the
			// comparison below would be vacuously false; monotonicity is
			// only meaningful on finite values.
			return true
		}
		tol := 1e-9 * math.Max(1, math.Max(math.Abs(f1), math.Abs(f2)))
		if sign > 0 {
			return f2 >= f1-tol
		}
		return f2 <= f1+tol
	}
	if err := quick.Check(f, quickCfg(500)); err != nil {
		t.Error(err)
	}
}
