package expr

import (
	"fmt"
	"math"

	"repro/internal/interval"
)

// FloatEnv supplies point values for variables during Eval.
type FloatEnv interface {
	// Value returns the current value of the named property and whether
	// the property is bound to a single value.
	Value(name string) (float64, bool)
}

// MapEnv is a FloatEnv backed by a map.
type MapEnv map[string]float64

// Value implements FloatEnv.
func (m MapEnv) Value(name string) (float64, bool) {
	v, ok := m[name]
	return v, ok
}

// UnboundVarError reports an Eval over an environment that lacks a
// binding for a referenced variable.
type UnboundVarError struct {
	Name string
}

func (e *UnboundVarError) Error() string {
	return fmt.Sprintf("expr: variable %q is unbound", e.Name)
}

// Eval computes the point value of n under env. Evaluation is strict:
// any unbound variable yields an *UnboundVarError.
func Eval(n Node, env FloatEnv) (float64, error) {
	switch t := n.(type) {
	case *Num:
		return t.Val, nil
	case *Var:
		v, ok := env.Value(t.Name)
		if !ok {
			return 0, &UnboundVarError{Name: t.Name}
		}
		return v, nil
	case *IVar:
		v, ok := env.Value(t.Name)
		if !ok {
			return 0, &UnboundVarError{Name: t.Name}
		}
		return v, nil
	case *Unary:
		x, err := Eval(t.X, env)
		if err != nil {
			return 0, err
		}
		return -x, nil
	case *Binary:
		x, err := Eval(t.X, env)
		if err != nil {
			return 0, err
		}
		y, err := Eval(t.Y, env)
		if err != nil {
			return 0, err
		}
		switch t.Op {
		case '+':
			return x + y, nil
		case '-':
			return x - y, nil
		case '*':
			return x * y, nil
		case '/':
			return x / y, nil
		case '^':
			return math.Pow(x, y), nil
		}
		return 0, fmt.Errorf("expr: unknown binary operator %q", string(t.Op))
	case *Call:
		args := make([]float64, len(t.Args))
		for i, a := range t.Args {
			v, err := Eval(a, env)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		switch t.Fn {
		case "sqrt":
			return math.Sqrt(args[0]), nil
		case "sqr":
			return args[0] * args[0], nil
		case "abs":
			return math.Abs(args[0]), nil
		case "exp":
			return math.Exp(args[0]), nil
		case "log":
			return math.Log(args[0]), nil
		case "min":
			return math.Min(args[0], args[1]), nil
		case "max":
			return math.Max(args[0], args[1]), nil
		}
		return 0, fmt.Errorf("expr: unknown function %q", t.Fn)
	}
	return 0, fmt.Errorf("expr: unknown node type %T", n)
}

// IntervalEnv supplies the current domain of each variable during
// interval evaluation. Unknown variables should map to interval.Entire.
type IntervalEnv interface {
	Domain(name string) interval.Interval
}

// MapIntervalEnv is an IntervalEnv backed by a map; missing entries are
// treated as the entire real line.
type MapIntervalEnv map[string]interval.Interval

// Domain implements IntervalEnv.
func (m MapIntervalEnv) Domain(name string) interval.Interval {
	if iv, ok := m[name]; ok {
		return iv
	}
	return interval.Entire()
}

// EvalInterval computes a conservative interval enclosure of n's value
// over all variable assignments drawn from env. This is the natural
// interval extension; it may over-approximate when variables repeat.
func EvalInterval(n Node, env IntervalEnv) interval.Interval {
	switch t := n.(type) {
	case *Num:
		return interval.Point(t.Val)
	case *Var:
		return env.Domain(t.Name)
	case *IVar:
		if ie, ok := env.(IndexedIntervalEnv); ok {
			return ie.DomainID(t.ID)
		}
		return env.Domain(t.Name)
	case *Unary:
		return EvalInterval(t.X, env).Neg()
	case *Binary:
		x := EvalInterval(t.X, env)
		y := EvalInterval(t.Y, env)
		switch t.Op {
		case '+':
			return x.Add(y)
		case '-':
			return x.Sub(y)
		case '*':
			return x.Mul(y)
		case '/':
			return x.Div(y)
		case '^':
			return powInterval(x, t.Y, y)
		}
		return interval.Entire()
	case *Call:
		switch t.Fn {
		case "sqrt":
			return EvalInterval(t.Args[0], env).Sqrt()
		case "sqr":
			return EvalInterval(t.Args[0], env).Sqr()
		case "abs":
			return EvalInterval(t.Args[0], env).Abs()
		case "exp":
			return EvalInterval(t.Args[0], env).Exp()
		case "log":
			return EvalInterval(t.Args[0], env).Log()
		case "min":
			return EvalInterval(t.Args[0], env).Min(EvalInterval(t.Args[1], env))
		case "max":
			return EvalInterval(t.Args[0], env).Max(EvalInterval(t.Args[1], env))
		}
		return interval.Entire()
	}
	return interval.Entire()
}

// powInterval evaluates x^e. When the exponent node is an integer
// literal the tight PowInt enclosure applies; otherwise fall back to
// exp(e·log x), defined only for positive bases.
func powInterval(x interval.Interval, expNode Node, expVal interval.Interval) interval.Interval {
	if k, ok := intConst(expNode); ok {
		return x.PowInt(k)
	}
	return expVal.Mul(x.Log()).Exp()
}

// intConst reports whether n is an integer numeric literal.
func intConst(n Node) (int, bool) {
	num, ok := n.(*Num)
	if !ok {
		return 0, false
	}
	if num.Val != math.Trunc(num.Val) || math.Abs(num.Val) > 1e9 {
		return 0, false
	}
	return int(num.Val), true
}
