package expr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/interval"
)

func TestEvalBasics(t *testing.T) {
	env := MapEnv{"x": 3, "y": -2}
	cases := map[string]float64{
		"x + y":      1,
		"x - y":      5,
		"x * y":      -6,
		"x / y":      -1.5,
		"x ^ 2":      9,
		"-x":         -3,
		"sqrt(x*3)":  3,
		"sqr(y)":     4,
		"abs(y)":     2,
		"exp(0)":     1,
		"log(1)":     0,
		"min(x, y)":  -2,
		"max(x, y)":  3,
		"2 ^ x":      8,
		"x ^ y":      1.0 / 9,
		"(x+y)*x-y":  5,
		"min(x,y)+1": -1,
	}
	for in, want := range cases {
		v, err := Eval(MustParse(in), env)
		if err != nil {
			t.Errorf("Eval(%q): %v", in, err)
			continue
		}
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("Eval(%q) = %v, want %v", in, v, want)
		}
	}
}

func TestEvalUnbound(t *testing.T) {
	_, err := Eval(MustParse("x + z"), MapEnv{"x": 1})
	var ue *UnboundVarError
	if !errors.As(err, &ue) {
		t.Fatalf("want UnboundVarError, got %v", err)
	}
	if ue.Name != "z" {
		t.Errorf("unbound variable = %q, want z", ue.Name)
	}
}

func TestEvalIntervalBasics(t *testing.T) {
	env := MapIntervalEnv{
		"x": interval.New(1, 2),
		"y": interval.New(-1, 3),
	}
	cases := []struct {
		in   string
		want interval.Interval
	}{
		{"x + y", interval.New(0, 5)},
		{"x - y", interval.New(-2, 3)},
		{"x * y", interval.New(-2, 6)},
		{"-x", interval.New(-2, -1)},
		{"x ^ 2", interval.New(1, 4)},
		{"y ^ 2", interval.New(0, 9)},
		{"sqrt(x)", interval.New(1, math.Sqrt2)},
		{"abs(y)", interval.New(0, 3)},
		{"min(x, y)", interval.New(-1, 2)},
		{"max(x, y)", interval.New(1, 3)},
		{"5", interval.Point(5)},
		{"x / x", interval.New(0.5, 2)}, // dependency lost: natural extension
	}
	for _, c := range cases {
		got := EvalInterval(MustParse(c.in), env)
		if !got.ApproxEqual(c.want, 1e-12) {
			t.Errorf("EvalInterval(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestEvalIntervalUnknownVarIsEntire(t *testing.T) {
	got := EvalInterval(MustParse("q"), MapIntervalEnv{})
	if !got.IsEntire() {
		t.Errorf("unknown var domain = %v, want entire", got)
	}
}

func TestEvalIntervalNonIntExponent(t *testing.T) {
	env := MapIntervalEnv{"x": interval.New(1, 4), "k": interval.New(0.5, 0.5)}
	got := EvalInterval(MustParse("x ^ k"), env)
	// x^0.5 over [1,4] = [1,2]; the exp/log fallback must contain it.
	if !got.Contains(1) || !got.Contains(2) {
		t.Errorf("x^k enclosure %v misses [1,2]", got)
	}
}

// Property: interval evaluation contains point evaluation for any point
// drawn from the box. This is the fundamental soundness property the
// constraint engine depends on.
func TestQuickIntervalContainsPoint(t *testing.T) {
	exprs := []string{
		"x + y",
		"x - y",
		"x * y",
		"x * x - y",
		"sqr(x) + sqr(y)",
		"abs(x - y)",
		"min(x, y) * 2",
		"max(x, y) - x",
		"x ^ 3",
		"(x + y) * (x - y)",
		"sqrt(abs(x)) + y",
	}
	nodes := make([]Node, len(exprs))
	for i, s := range exprs {
		nodes[i] = MustParse(s)
	}
	f := func(a, b, c, d, t1, t2 float64, which uint8) bool {
		A := arbIv(a, b)
		B := arbIv(c, d)
		x := pickIv(A, t1)
		y := pickIv(B, t2)
		n := nodes[int(which)%len(nodes)]
		pv, err := Eval(n, MapEnv{"x": x, "y": y})
		if err != nil || math.IsNaN(pv) || math.IsInf(pv, 0) {
			return true
		}
		box := MapIntervalEnv{"x": A, "y": B}
		iv := EvalInterval(n, box)
		return containsTol(iv, pv)
	}
	if err := quick.Check(f, quickCfg(500)); err != nil {
		t.Error(err)
	}
}

// --- shared test helpers -------------------------------------------------

// quickCfg pins the property-test source: seeded generation keeps runs
// reproducible and independent of test order under -shuffle.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(1))}
}

func arbIv(a, b float64) interval.Interval {
	a = sanitizeF(a)
	b = sanitizeF(b)
	return interval.New(math.Min(a, b), math.Max(a, b))
}

func sanitizeF(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e3)
}

func pickIv(iv interval.Interval, t float64) float64 {
	t = math.Abs(math.Mod(sanitizeF(t), 1))
	return iv.Lo + t*(iv.Hi-iv.Lo)
}

func containsTol(iv interval.Interval, v float64) bool {
	if iv.Contains(v) {
		return true
	}
	eps := 1e-9 * math.Max(1, math.Abs(v))
	return interval.New(iv.Lo-eps, iv.Hi+eps).Contains(v)
}
