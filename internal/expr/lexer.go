package expr

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNumber
	tokIdent
	tokOp     // + - * / ^
	tokLParen // (
	tokRParen // )
	tokComma
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return "number"
	case tokIdent:
		return "identifier"
	case tokOp:
		return "operator"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	}
	return "unknown token"
}

type token struct {
	kind tokKind
	text string
	val  float64 // for tokNumber
	pos  int     // byte offset in input
}

// SyntaxError describes a lexical or parse failure with its position.
type SyntaxError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: %s at offset %d in %q", e.Msg, e.Pos, e.Input)
}

type lexer struct {
	input string
	pos   int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Input: l.input, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token, skipping whitespace.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) {
		r, sz := utf8.DecodeRuneInString(l.input[l.pos:])
		if !unicode.IsSpace(r) {
			break
		}
		l.pos += sz
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '+' || c == '-' || c == '*' || c == '/' || c == '^':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	case c >= '0' && c <= '9' || c == '.':
		return l.lexNumber(start)
	case isIdentStart(rune(c)):
		return l.lexIdent(start)
	default:
		return token{}, l.errf(start, "unexpected character %q", string(c))
	}
}

func (l *lexer) lexNumber(start int) (token, error) {
	i := l.pos
	seenDot, seenExp := false, false
	for i < len(l.input) {
		c := l.input[i]
		switch {
		case c >= '0' && c <= '9':
			i++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			i++
		case (c == 'e' || c == 'E') && !seenExp && i > l.pos:
			// exponent must be followed by optional sign and a digit
			j := i + 1
			if j < len(l.input) && (l.input[j] == '+' || l.input[j] == '-') {
				j++
			}
			if j < len(l.input) && l.input[j] >= '0' && l.input[j] <= '9' {
				seenExp = true
				i = j
			} else {
				goto done
			}
		default:
			goto done
		}
	}
done:
	text := l.input[l.pos:i]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errf(start, "malformed number %q", text)
	}
	l.pos = i
	return token{kind: tokNumber, text: text, val: v, pos: start}, nil
}

func (l *lexer) lexIdent(start int) (token, error) {
	i := l.pos
	for i < len(l.input) {
		r, sz := utf8.DecodeRuneInString(l.input[i:])
		if !isIdentPart(r) {
			break
		}
		i += sz
	}
	text := l.input[l.pos:i]
	l.pos = i
	return token{kind: tokIdent, text: text, pos: start}, nil
}

// Identifiers name design properties: letters, digits, '_' and '.'
// (the dot supports hierarchical names such as "LNA.gain").
func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
