package expr

import (
	"math"

	"repro/internal/interval"
)

// Box is a mutable set of variable domains narrowed by Narrow. It is
// implemented by the constraint network's property store.
type Box interface {
	Domain(name string) interval.Interval
	SetDomain(name string, iv interval.Interval)
}

// MapBox is a Box backed by a map; missing entries read as Entire.
type MapBox map[string]interval.Interval

// Domain implements Box.
func (m MapBox) Domain(name string) interval.Interval {
	if iv, ok := m[name]; ok {
		return iv
	}
	return interval.Entire()
}

// SetDomain implements Box.
func (m MapBox) SetDomain(name string, iv interval.Interval) { m[name] = iv }

// NarrowResult reports the outcome of one HC4 revise.
type NarrowResult struct {
	// Changed lists variables whose domain was strictly narrowed.
	Changed []string
	// Inconsistent is true when some domain became empty: no assignment
	// within the box can place the expression's value inside want.
	Inconsistent bool
}

// fnode is a forward-evaluated shadow of an AST node used by the HC4
// backward pass.
type fnode struct {
	n    Node
	val  interval.Interval
	kids []*fnode
}

// Narrow performs one HC4 revise: it narrows the variable domains in box
// so that the value of n can still lie within want, and reports which
// variables changed. It is conservative — it never removes a feasible
// assignment — and is the core primitive of the DCM's propagation
// algorithm.
func Narrow(n Node, want interval.Interval, box Box) NarrowResult {
	root := forward(n, box)
	res := &NarrowResult{}
	changed := map[string]bool{}
	ok := backward(root, want, box, changed)
	if !ok {
		res.Inconsistent = true
	}
	for v := range changed {
		res.Changed = append(res.Changed, v)
	}
	return *res
}

func forward(n Node, box Box) *fnode {
	f := buildShadow(n)
	refreshShadow(f, box)
	return f
}

// buildShadow allocates the shadow tree of n without evaluating it.
func buildShadow(n Node) *fnode {
	f := &fnode{n: n}
	switch t := n.(type) {
	case *Unary:
		f.kids = []*fnode{buildShadow(t.X)}
	case *Binary:
		f.kids = []*fnode{buildShadow(t.X), buildShadow(t.Y)}
	case *Call:
		f.kids = make([]*fnode, len(t.Args))
		for i, a := range t.Args {
			f.kids[i] = buildShadow(a)
		}
	}
	return f
}

// refreshShadow recomputes the forward values of an existing shadow
// tree bottom-up from box's current domains, reusing the nodes.
func refreshShadow(f *fnode, box Box) {
	for _, k := range f.kids {
		refreshShadow(k, box)
	}
	switch t := f.n.(type) {
	case *Num:
		f.val = interval.Point(t.Val)
	case *Var:
		f.val = box.Domain(t.Name)
	case *IVar:
		if ib, ok := box.(IndexedBox); ok {
			f.val = ib.DomainID(t.ID)
		} else {
			f.val = box.Domain(t.Name)
		}
	case *Unary:
		f.val = f.kids[0].val.Neg()
	case *Binary:
		x, y := f.kids[0], f.kids[1]
		switch t.Op {
		case '+':
			f.val = x.val.Add(y.val)
		case '-':
			f.val = x.val.Sub(y.val)
		case '*':
			f.val = x.val.Mul(y.val)
		case '/':
			f.val = x.val.Div(y.val)
		case '^':
			f.val = powInterval(x.val, t.Y, y.val)
		default:
			f.val = interval.Entire()
		}
	case *Call:
		switch t.Fn {
		case "sqrt":
			f.val = f.kids[0].val.Sqrt()
		case "sqr":
			f.val = f.kids[0].val.Sqr()
		case "abs":
			f.val = f.kids[0].val.Abs()
		case "exp":
			f.val = f.kids[0].val.Exp()
		case "log":
			f.val = f.kids[0].val.Log()
		case "min":
			f.val = f.kids[0].val.Min(f.kids[1].val)
		case "max":
			f.val = f.kids[0].val.Max(f.kids[1].val)
		default:
			f.val = interval.Entire()
		}
	}
}

// inflate widens an interval by a relative epsilon on each side. HC4
// projections are computed without directed rounding, so a requirement
// propagated through point-valued nodes can miss the true value by an
// ulp; inflating keeps the projection conservative instead of producing
// a spuriously empty intersection (a false "inconsistent").
func inflate(iv interval.Interval) interval.Interval {
	if iv.IsEmpty() {
		return iv
	}
	const eps = 1e-12
	lo := iv.Lo
	if !math.IsInf(lo, 0) {
		lo -= eps * math.Max(1, math.Abs(lo))
	}
	hi := iv.Hi
	if !math.IsInf(hi, 0) {
		hi += eps * math.Max(1, math.Abs(hi))
	}
	return interval.New(lo, hi)
}

// magnitudeOf returns the largest finite absolute bound among the
// intervals (at least 1), the scale against which floating-point error
// of a combined projection must be judged.
func magnitudeOf(ivs ...interval.Interval) float64 {
	s := 1.0
	for _, iv := range ivs {
		if iv.IsEmpty() {
			continue
		}
		for _, b := range [2]float64{iv.Lo, iv.Hi} {
			if a := math.Abs(b); !math.IsInf(a, 0) && a > s {
				s = a
			}
		}
	}
	return s
}

// inflateToScale widens an interval by eps relative to an explicit
// magnitude scale (for projections whose rounding error is governed by
// operand size, not result size — additive cancellation).
func inflateToScale(iv interval.Interval, scale float64) interval.Interval {
	if iv.IsEmpty() {
		return iv
	}
	const eps = 1e-12
	pad := eps * scale
	lo := iv.Lo
	if !math.IsInf(lo, 0) {
		lo -= pad
	}
	hi := iv.Hi
	if !math.IsInf(hi, 0) {
		hi += pad
	}
	return interval.New(lo, hi)
}

// backward projects the requirement node-value ∈ want down the tree,
// intersecting variable domains in box. Returns false on inconsistency.
// changed may be nil; callers can instead observe narrowings through
// the box's SetDomain/SetDomainID calls.
func backward(f *fnode, want interval.Interval, box Box, changed map[string]bool) bool {
	cur := f.val.Intersect(inflate(want))
	if cur.IsEmpty() {
		return false
	}
	switch t := f.n.(type) {
	case *Num:
		return true // cur nonempty means the literal is acceptable
	case *Var:
		old := box.Domain(t.Name)
		nv := old.Intersect(cur)
		if nv.IsEmpty() {
			return false
		}
		if !nv.Equal(old) {
			box.SetDomain(t.Name, nv)
			if changed != nil {
				changed[t.Name] = true
			}
		}
		return true
	case *IVar:
		ib, indexed := box.(IndexedBox)
		var old interval.Interval
		if indexed {
			old = ib.DomainID(t.ID)
		} else {
			old = box.Domain(t.Name)
		}
		nv := old.Intersect(cur)
		if nv.IsEmpty() {
			return false
		}
		if !nv.Equal(old) {
			if indexed {
				ib.SetDomainID(t.ID, nv)
			} else {
				box.SetDomain(t.Name, nv)
			}
			if changed != nil {
				changed[t.Name] = true
			}
		}
		return true
	case *Unary:
		return backward(f.kids[0], cur.Neg(), box, changed)
	case *Binary:
		x, y := f.kids[0], f.kids[1]
		switch t.Op {
		case '+':
			// x + y ∈ cur  ⇒  x ∈ cur - y,  y ∈ cur - x. The differences
			// cancel catastrophically when the operands dwarf the result
			// (recovering a small addend from two huge terms), so the
			// projections are inflated relative to the operand magnitudes.
			scale := magnitudeOf(cur, x.val, y.val)
			if !backward(x, inflateToScale(cur.Sub(y.val), scale), box, changed) {
				return false
			}
			return backward(y, inflateToScale(cur.Sub(x.val), scale), box, changed)
		case '-':
			// x - y ∈ cur  ⇒  x ∈ cur + y,  y ∈ x - cur
			scale := magnitudeOf(cur, x.val, y.val)
			if !backward(x, inflateToScale(cur.Add(y.val), scale), box, changed) {
				return false
			}
			return backward(y, inflateToScale(x.val.Sub(cur), scale), box, changed)
		case '*':
			// x * y ∈ cur  ⇒  x ∈ cur / y (when y avoids 0), likewise y.
			if !backward(x, mulProject(cur, y.val), box, changed) {
				return false
			}
			return backward(y, mulProject(cur, x.val), box, changed)
		case '/':
			// x / y ∈ cur  ⇒  x ∈ cur * y,  y ∈ x / cur
			if !backward(x, cur.Mul(y.val), box, changed) {
				return false
			}
			return backward(y, divProjectDenominator(x.val, cur), box, changed)
		case '^':
			if k, ok := intConst(t.Y); ok {
				return backward(x, powProject(cur, k), box, changed)
			}
			// Non-constant exponent: no safe projection; accept.
			return true
		}
		return true
	case *Call:
		switch t.Fn {
		case "sqrt":
			// sqrt(x) ∈ cur  ⇒  x ∈ (cur ∩ [0,∞))²
			return backward(f.kids[0], cur.Intersect(interval.New(0, math.Inf(1))).Sqr(), box, changed)
		case "sqr":
			return backward(f.kids[0], powProject(cur, 2), box, changed)
		case "abs":
			hi := cur.Hi
			if hi < 0 {
				return false
			}
			return backward(f.kids[0], interval.New(-hi, hi), box, changed)
		case "exp":
			return backward(f.kids[0], cur.Log(), box, changed)
		case "log":
			return backward(f.kids[0], cur.Exp(), box, changed)
		case "min":
			return backwardMinMax(f, cur, box, changed, true)
		case "max":
			return backwardMinMax(f, cur, box, changed, false)
		}
		return true
	}
	return true
}

// mulProject returns the projection interval for x given x*y ∈ cur:
// cur / y, except when y spans zero where no narrowing is safe.
func mulProject(cur, y interval.Interval) interval.Interval {
	if y.Contains(0) {
		// x may be anything if y can be 0 and cur contains 0; if cur
		// excludes 0, y≠0 is forced but the quotient is still unbounded
		// in both directions, so stay conservative.
		if cur.Contains(0) {
			return interval.Entire()
		}
		return cur.Div(y) // Div handles the zero-span hull
	}
	return cur.Div(y)
}

// divProjectDenominator returns the projection for y given x/y ∈ cur:
// y ∈ x / cur, conservative when cur spans zero.
func divProjectDenominator(x, cur interval.Interval) interval.Interval {
	if cur.Contains(0) {
		if x.Contains(0) {
			return interval.Entire()
		}
		return x.Div(cur)
	}
	return x.Div(cur)
}

// powProject returns the projection for x given xᵏ ∈ cur.
func powProject(cur interval.Interval, k int) interval.Interval {
	if k == 0 {
		// x⁰ = 1: acceptable iff cur contains 1; no narrowing of x.
		if cur.Contains(1) {
			return interval.Entire()
		}
		return interval.Empty()
	}
	if k < 0 {
		// xᵏ = 1/x^(−k): x^(−k) ∈ 1/cur.
		return powProject(cur.Inv(), -k)
	}
	if k%2 == 1 {
		return oddRoot(cur, k)
	}
	// Even power: x ∈ [-r, r] with r = (cur.Hi)^(1/k); requires cur.Hi ≥ 0.
	if cur.Hi < 0 {
		return interval.Empty()
	}
	r := math.Pow(cur.Hi, 1/float64(k))
	return interval.New(-r, r)
}

func oddRoot(cur interval.Interval, k int) interval.Interval {
	if cur.IsEmpty() {
		return interval.Empty()
	}
	return interval.New(signedRoot(cur.Lo, k), signedRoot(cur.Hi, k))
}

func signedRoot(v float64, k int) float64 {
	if math.IsInf(v, 0) {
		return v
	}
	if v < 0 {
		return -math.Pow(-v, 1/float64(k))
	}
	return math.Pow(v, 1/float64(k))
}

// backwardMinMax projects min(x,y) ∈ cur (isMin) or max(x,y) ∈ cur.
func backwardMinMax(f *fnode, cur interval.Interval, box Box, changed map[string]bool, isMin bool) bool {
	x, y := f.kids[0], f.kids[1]
	wx, wy := minMaxProject(cur, x.val, y.val, isMin)
	if !backward(x, wx, box, changed) {
		return false
	}
	return backward(y, wy, box, changed)
}

// minMaxProject computes conservative projections for both arguments.
// For min: both args ≥ cur.Lo; an arg must additionally be ≤ cur.Hi when
// the other arg cannot reach down to cur.Hi (it must be the minimizer).
func minMaxProject(cur, xv, yv interval.Interval, isMin bool) (wx, wy interval.Interval) {
	if isMin {
		wx = interval.New(cur.Lo, math.Inf(1))
		wy = interval.New(cur.Lo, math.Inf(1))
		if yv.Lo > cur.Hi {
			wx = wx.Intersect(interval.New(math.Inf(-1), cur.Hi))
		}
		if xv.Lo > cur.Hi {
			wy = wy.Intersect(interval.New(math.Inf(-1), cur.Hi))
		}
		return wx, wy
	}
	wx = interval.New(math.Inf(-1), cur.Hi)
	wy = interval.New(math.Inf(-1), cur.Hi)
	if yv.Hi < cur.Lo {
		wx = wx.Intersect(interval.New(cur.Lo, math.Inf(1)))
	}
	if xv.Hi < cur.Lo {
		wy = wy.Intersect(interval.New(cur.Lo, math.Inf(1)))
	}
	return wx, wy
}
