package expr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/interval"
)

func box(pairs ...any) MapBox {
	b := MapBox{}
	for i := 0; i < len(pairs); i += 2 {
		b[pairs[i].(string)] = pairs[i+1].(interval.Interval)
	}
	return b
}

func TestNarrowSum(t *testing.T) {
	// The paper's example constraint: Pf + Ps <= PM with PM = 200.
	// Narrowing Pf + Ps to (-inf, 200] with Ps in [150, 180] forces
	// Pf <= 50.
	b := box(
		"Pf", interval.New(0, 500),
		"Ps", interval.New(150, 180),
	)
	res := Narrow(MustParse("Pf + Ps"), interval.New(math.Inf(-1), 200), b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b["Pf"]; !got.ApproxEqual(interval.New(0, 50), 1e-9) {
		t.Errorf("Pf narrowed to %v, want [0,50]", got)
	}
	if len(res.Changed) != 1 || res.Changed[0] != "Pf" {
		t.Errorf("Changed = %v, want [Pf]", res.Changed)
	}
}

func TestNarrowInconsistent(t *testing.T) {
	b := box("x", interval.New(10, 20))
	res := Narrow(MustParse("x"), interval.New(0, 5), b)
	if !res.Inconsistent {
		t.Error("expected inconsistency: x in [10,20] cannot be in [0,5]")
	}
}

func TestNarrowProduct(t *testing.T) {
	// x * y = 12, x in [2,3] => y in [4,6]
	b := box("x", interval.New(2, 3), "y", interval.New(0, 100))
	res := Narrow(MustParse("x * y"), interval.Point(12), b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b["y"]; !got.ApproxEqual(interval.New(4, 6), 1e-9) {
		t.Errorf("y narrowed to %v, want [4,6]", got)
	}
}

func TestNarrowQuotient(t *testing.T) {
	// x / y in [2,3], x in [6,6] => y in [2,3]
	b := box("x", interval.Point(6), "y", interval.New(0.1, 100))
	res := Narrow(MustParse("x / y"), interval.New(2, 3), b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b["y"]; !got.ApproxEqual(interval.New(2, 3), 1e-9) {
		t.Errorf("y narrowed to %v, want [2,3]", got)
	}
}

func TestNarrowSquare(t *testing.T) {
	// sqr(x) <= 9 => x in [-3,3]
	b := box("x", interval.New(-10, 10))
	res := Narrow(MustParse("sqr(x)"), interval.New(math.Inf(-1), 9), b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b["x"]; !got.ApproxEqual(interval.New(-3, 3), 1e-9) {
		t.Errorf("x narrowed to %v, want [-3,3]", got)
	}
}

func TestNarrowSqrt(t *testing.T) {
	// sqrt(x) in [2,3] => x in [4,9]
	b := box("x", interval.New(0, 100))
	res := Narrow(MustParse("sqrt(x)"), interval.New(2, 3), b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b["x"]; !got.ApproxEqual(interval.New(4, 9), 1e-9) {
		t.Errorf("x narrowed to %v, want [4,9]", got)
	}
}

func TestNarrowOddPower(t *testing.T) {
	// x^3 in [8,27] => x in [2,3]
	b := box("x", interval.New(-100, 100))
	res := Narrow(MustParse("x ^ 3"), interval.New(8, 27), b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b["x"]; !got.ApproxEqual(interval.New(2, 3), 1e-9) {
		t.Errorf("x narrowed to %v, want [2,3]", got)
	}
}

func TestNarrowAbs(t *testing.T) {
	// abs(x) <= 5 => x in [-5,5]
	b := box("x", interval.New(-100, 100))
	res := Narrow(MustParse("abs(x)"), interval.New(0, 5), b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b["x"]; !got.ApproxEqual(interval.New(-5, 5), 1e-9) {
		t.Errorf("x narrowed to %v, want [-5,5]", got)
	}
	// abs(x) in [-3,-1] is impossible
	b2 := box("x", interval.New(-100, 100))
	if res := Narrow(MustParse("abs(x)"), interval.New(-3, -1), b2); !res.Inconsistent {
		t.Error("abs(x) in negative range should be inconsistent")
	}
}

func TestNarrowExpLog(t *testing.T) {
	b := box("x", interval.New(-100, 100))
	res := Narrow(MustParse("exp(x)"), interval.New(1, math.E), b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b["x"]; !got.ApproxEqual(interval.New(0, 1), 1e-9) {
		t.Errorf("x narrowed to %v, want [0,1]", got)
	}
	b2 := box("y", interval.New(0.001, 1000))
	res = Narrow(MustParse("log(y)"), interval.New(0, 1), b2)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b2["y"]; !got.ApproxEqual(interval.New(1, math.E), 1e-6) {
		t.Errorf("y narrowed to %v, want [1,e]", got)
	}
}

func TestNarrowMin(t *testing.T) {
	// min(x, y) >= 3 forces both x >= 3 and y >= 3.
	b := box("x", interval.New(0, 10), "y", interval.New(0, 10))
	res := Narrow(MustParse("min(x, y)"), interval.New(3, math.Inf(1)), b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b["x"]; !got.ApproxEqual(interval.New(3, 10), 1e-9) {
		t.Errorf("x narrowed to %v, want [3,10]", got)
	}
	if got := b["y"]; !got.ApproxEqual(interval.New(3, 10), 1e-9) {
		t.Errorf("y narrowed to %v, want [3,10]", got)
	}
}

func TestNarrowMax(t *testing.T) {
	// max(x, y) <= 4 forces both <= 4.
	b := box("x", interval.New(0, 10), "y", interval.New(0, 10))
	res := Narrow(MustParse("max(x, y)"), interval.New(math.Inf(-1), 4), b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b["x"]; !got.ApproxEqual(interval.New(0, 4), 1e-9) {
		t.Errorf("x narrowed to %v, want [0,4]", got)
	}
	if got := b["y"]; !got.ApproxEqual(interval.New(0, 4), 1e-9) {
		t.Errorf("y narrowed to %v, want [0,4]", got)
	}
}

func TestNarrowMinForcedSide(t *testing.T) {
	// min(x,y) in [5,6] with y in [8,10]: y cannot be the minimizer,
	// so x must be in [5,6].
	b := box("x", interval.New(0, 100), "y", interval.New(8, 10))
	res := Narrow(MustParse("min(x, y)"), interval.New(5, 6), b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if got := b["x"]; !got.ApproxEqual(interval.New(5, 6), 1e-9) {
		t.Errorf("x narrowed to %v, want [5,6]", got)
	}
}

func TestNarrowRepeatedVariable(t *testing.T) {
	// x + x = 10: HC4 on repeated variables narrows each occurrence
	// against the box; result must still contain the solution x = 5.
	b := box("x", interval.New(0, 100))
	res := Narrow(MustParse("x + x"), interval.Point(10), b)
	if res.Inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	if !b["x"].Contains(5) {
		t.Errorf("x narrowed to %v, must still contain 5", b["x"])
	}
}

func TestNarrowConstantConflict(t *testing.T) {
	b := box()
	res := Narrow(MustParse("3"), interval.New(4, 5), b)
	if !res.Inconsistent {
		t.Error("constant 3 required in [4,5] should be inconsistent")
	}
	res = Narrow(MustParse("3"), interval.New(0, 5), b)
	if res.Inconsistent {
		t.Error("constant 3 in [0,5] should be consistent")
	}
}

func TestNarrowNoChangeWhenAlreadyTight(t *testing.T) {
	b := box("x", interval.New(2, 3))
	res := Narrow(MustParse("x"), interval.New(0, 10), b)
	if res.Inconsistent || len(res.Changed) != 0 {
		t.Errorf("no-op narrow reported %+v", res)
	}
}

// Property: Narrow never removes a point solution. For random boxes and
// a point (x,y) inside them, if f(x,y) lies in want then after Narrow
// the box still contains (x,y).
func TestQuickNarrowSound(t *testing.T) {
	exprs := []string{
		"x + y",
		"x - y",
		"x * y",
		"sqr(x) + y",
		"abs(x) - y",
		"min(x, y)",
		"max(x, y) + 1",
		"x ^ 3 - y",
		"2 * x + 3 * y",
	}
	nodes := make([]Node, len(exprs))
	for i, s := range exprs {
		nodes[i] = MustParse(s)
	}
	f := func(a, b, c, d, t1, t2, w1, w2 float64, which uint8) bool {
		A := arbIv(a, b)
		B := arbIv(c, d)
		x := pickIv(A, t1)
		y := pickIv(B, t2)
		n := nodes[int(which)%len(nodes)]
		pv, err := Eval(n, MapEnv{"x": x, "y": y})
		if err != nil || math.IsNaN(pv) || math.IsInf(pv, 0) {
			return true
		}
		// Build a want window guaranteed to include pv.
		lo := pv - math.Abs(sanitizeF(w1)) - 1e-6
		hi := pv + math.Abs(sanitizeF(w2)) + 1e-6
		want := interval.New(lo, hi)
		bx := MapBox{"x": A, "y": B}
		res := Narrow(n, want, bx)
		if res.Inconsistent {
			return false // a witness exists, must not be inconsistent
		}
		return containsTol(bx["x"], x) && containsTol(bx["y"], y)
	}
	if err := quick.Check(f, quickCfg(500)); err != nil {
		t.Error(err)
	}
}

// Property: Narrow is contractive — domains never grow.
func TestQuickNarrowContractive(t *testing.T) {
	n := MustParse("x * y + sqr(x) - y")
	f := func(a, b, c, d, w1, w2 float64) bool {
		A := arbIv(a, b)
		B := arbIv(c, d)
		want := arbIv(w1, w2)
		bx := MapBox{"x": A, "y": B}
		res := Narrow(n, want, bx)
		if res.Inconsistent {
			return true
		}
		return A.ContainsInterval(bx["x"]) && B.ContainsInterval(bx["y"])
	}
	if err := quick.Check(f, quickCfg(500)); err != nil {
		t.Error(err)
	}
}
