package expr

import "fmt"

// builtins maps function names to their arity.
var builtins = map[string]int{
	"sqrt": 1,
	"sqr":  1,
	"abs":  1,
	"exp":  1,
	"log":  1,
	"min":  2,
	"max":  2,
}

type parser struct {
	lex  lexer
	tok  token
	err  error
	full string
}

// Parse parses an arithmetic expression into an AST.
//
// Grammar (precedence climbing):
//
//	expr   = term { ('+'|'-') term }
//	term   = factor { ('*'|'/') factor }
//	factor = unary [ '^' factor ]          // '^' is right-associative
//	unary  = '-' unary | atom
//	atom   = NUMBER | IDENT | IDENT '(' args ')' | '(' expr ')'
func Parse(input string) (Node, error) {
	p := &parser{lex: lexer{input: input}, full: input}
	p.advance()
	if p.err != nil {
		return nil, p.err
	}
	n := p.parseExpr()
	if p.err != nil {
		return nil, p.err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errAt(p.tok.pos, "unexpected %s %q", p.tok.kind, p.tok.text)
	}
	return n, nil
}

// MustParse is Parse that panics on error; for statically known inputs
// such as built-in scenario definitions.
func MustParse(input string) Node {
	n, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *parser) errAt(pos int, format string, args ...any) error {
	return &SyntaxError{Input: p.full, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() {
	if p.err != nil {
		return
	}
	t, err := p.lex.next()
	if err != nil {
		p.err = err
		return
	}
	p.tok = t
}

func (p *parser) parseExpr() Node {
	n := p.parseTerm()
	for p.err == nil && p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text[0]
		p.advance()
		rhs := p.parseTerm()
		n = &Binary{Op: op, X: n, Y: rhs}
	}
	return n
}

func (p *parser) parseTerm() Node {
	n := p.parseFactor()
	for p.err == nil && p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := p.tok.text[0]
		p.advance()
		rhs := p.parseFactor()
		n = &Binary{Op: op, X: n, Y: rhs}
	}
	return n
}

func (p *parser) parseFactor() Node {
	n := p.parseUnary()
	if p.err == nil && p.tok.kind == tokOp && p.tok.text == "^" {
		p.advance()
		rhs := p.parseFactor() // right-associative
		n = &Binary{Op: '^', X: n, Y: rhs}
	}
	return n
}

func (p *parser) parseUnary() Node {
	if p.tok.kind == tokOp && p.tok.text == "-" {
		p.advance()
		x := p.parseUnary()
		if p.err != nil {
			return nil
		}
		// Fold negation of literals so "-3" is a Num, which keeps
		// exponent-constant detection simple elsewhere.
		if num, ok := x.(*Num); ok {
			return &Num{Val: -num.Val}
		}
		return &Unary{Op: '-', X: x}
	}
	if p.tok.kind == tokOp && p.tok.text == "+" {
		p.advance()
		return p.parseUnary()
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() Node {
	if p.err != nil {
		return nil
	}
	switch p.tok.kind {
	case tokNumber:
		n := &Num{Val: p.tok.val}
		p.advance()
		return n
	case tokIdent:
		name := p.tok.text
		pos := p.tok.pos
		p.advance()
		if p.tok.kind == tokLParen {
			return p.parseCall(name, pos)
		}
		return &Var{Name: name}
	case tokLParen:
		p.advance()
		n := p.parseExpr()
		if p.err != nil {
			return nil
		}
		if p.tok.kind != tokRParen {
			p.err = p.errAt(p.tok.pos, "expected ')', got %s", p.tok.kind)
			return nil
		}
		p.advance()
		return n
	default:
		p.err = p.errAt(p.tok.pos, "expected expression, got %s", p.tok.kind)
		return nil
	}
}

func (p *parser) parseCall(name string, pos int) Node {
	arity, ok := builtins[name]
	if !ok {
		p.err = p.errAt(pos, "unknown function %q", name)
		return nil
	}
	p.advance() // consume '('
	var args []Node
	if p.tok.kind != tokRParen {
		for {
			arg := p.parseExpr()
			if p.err != nil {
				return nil
			}
			args = append(args, arg)
			if p.tok.kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if p.tok.kind != tokRParen {
		p.err = p.errAt(p.tok.pos, "expected ')' closing call to %s, got %s", name, p.tok.kind)
		return nil
	}
	p.advance()
	if len(args) != arity {
		p.err = p.errAt(pos, "%s expects %d argument(s), got %d", name, arity, len(args))
		return nil
	}
	return &Call{Fn: name, Args: args}
}
