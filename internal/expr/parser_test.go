package expr

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string // expected String() form; "" means identical to in
	}{
		{"1", ""},
		{"x", ""},
		{"1 + 2", ""},
		{"a + b * c", ""},
		{"(a + b) * c", ""},
		{"a - b - c", ""},
		{"a - (b - c)", ""},
		{"a / b / c", ""},
		{"a ^ 2", ""},
		{"a ^ 2 ^ 3", ""}, // right-assoc: a^(2^3)
		{"(a ^ 2) ^ 3", ""},
		{"-x", ""},
		{"-(a + b)", ""},
		{"sqrt(x)", ""},
		{"min(a, b)", ""},
		{"max(a + 1, b * 2)", ""},
		{"abs(-x)", ""},
		{"LNA.gain * 2", ""},
		{"Diff_pair_W + 1", ""},
		{"1.5e3 * x", "1500 * x"},
		{"2*x+3", "2 * x + 3"},
		{"-3", ""},
		{"+x", "x"},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		want := c.want
		if want == "" {
			want = c.in
		}
		if got := n.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, want)
		}
		// Re-parsing the String form must give the same String form.
		n2, err := Parse(n.String())
		if err != nil {
			t.Errorf("reparse of %q failed: %v", n.String(), err)
			continue
		}
		if n2.String() != n.String() {
			t.Errorf("round trip unstable: %q -> %q", n.String(), n2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		errPart string
	}{
		{"", "expected expression"},
		{"1 +", "expected expression"},
		{"(1", "expected ')'"},
		{"1)", "unexpected"},
		{"foo(1)", "unknown function"},
		{"sqrt()", "expects 1 argument"},
		{"sqrt(1, 2)", "expects 1 argument"},
		{"min(1)", "expects 2 argument"},
		{"1 @ 2", "unexpected character"},
		{"1 2", "unexpected"},
		{"a b", "unexpected"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.in, c.errPart)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.in, err, c.errPart)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// 2 + 3 * 4 ^ 2 = 2 + 3*16 = 50
	n := MustParse("2 + 3 * 4 ^ 2")
	v, err := Eval(n, MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if v != 50 {
		t.Errorf("2 + 3 * 4 ^ 2 = %v, want 50", v)
	}
	// unary minus binds tighter than * : -2 * 3 = -6
	n = MustParse("-2 * 3")
	v, _ = Eval(n, MapEnv{})
	if v != -6 {
		t.Errorf("-2 * 3 = %v, want -6", v)
	}
	// -2 ^ 2: our grammar parses unary first, so (-2)^2 = 4
	n = MustParse("-2 ^ 2")
	v, _ = Eval(n, MapEnv{})
	if v != 4 {
		t.Errorf("-2 ^ 2 = %v, want 4 under unary-first grammar", v)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input did not panic")
		}
	}()
	MustParse("1 +")
}

func TestVars(t *testing.T) {
	n := MustParse("a + b * a - sqrt(c) + min(d, a)")
	got := Vars(n)
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
	if !ContainsVar(n, "c") || ContainsVar(n, "z") {
		t.Error("ContainsVar misbehaves")
	}
	if len(Vars(MustParse("1 + 2"))) != 0 {
		t.Error("constant expression should have no vars")
	}
}

func TestCountNodes(t *testing.T) {
	if got := CountNodes(MustParse("1")); got != 1 {
		t.Errorf("CountNodes(1) = %d", got)
	}
	if got := CountNodes(MustParse("a + b")); got != 3 {
		t.Errorf("CountNodes(a+b) = %d", got)
	}
	if got := CountNodes(MustParse("min(a, -b)")); got != 4 {
		t.Errorf("CountNodes(min(a,-b)) = %d", got)
	}
}

func TestNumberLexing(t *testing.T) {
	cases := map[string]float64{
		"0":       0,
		"3.25":    3.25,
		".5":      0.5,
		"1e3":     1000,
		"1E-2":    0.01,
		"2.5e+1":  25,
		"1e3 + 1": 1001,
	}
	for in, want := range cases {
		n, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		v, err := Eval(n, MapEnv{})
		if err != nil {
			t.Errorf("Eval(%q): %v", in, err)
			continue
		}
		if v != want {
			t.Errorf("Eval(%q) = %v, want %v", in, v, want)
		}
	}
}

func TestIdentifierForms(t *testing.T) {
	for _, id := range []string{"x", "X9", "_u", "a.b.c", "LNA.gain", "Diff_pair_W"} {
		n, err := Parse(id)
		if err != nil {
			t.Errorf("Parse(%q): %v", id, err)
			continue
		}
		v, ok := n.(*Var)
		if !ok || v.Name != id {
			t.Errorf("Parse(%q) = %#v, want Var", id, n)
		}
	}
}

func TestSubstitute(t *testing.T) {
	n := MustParse("a + 2 * b")
	repl := map[string]Node{
		"a": MustParse("x * y"),
		"b": MustParse("sqrt(z)"),
	}
	got := Substitute(n, repl).String()
	want := "x * y + 2 * sqrt(z)"
	if got != want {
		t.Errorf("Substitute = %q, want %q", got, want)
	}
	// Variables without entries are untouched; original is unchanged.
	if n.String() != "a + 2 * b" {
		t.Error("Substitute mutated the input")
	}
	if got := Substitute(MustParse("c"), repl).String(); got != "c" {
		t.Errorf("unmapped var changed: %q", got)
	}
	// Substitution respects structure (parenthesization on print).
	got = Substitute(MustParse("a ^ 2"), map[string]Node{"a": MustParse("x + 1")}).String()
	if got != "(x + 1) ^ 2" {
		t.Errorf("structural substitute = %q", got)
	}
}
