package expr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/interval"
)

// randNode generates a random AST of bounded depth.
func randNode(rng *rand.Rand, depth int) Node {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			// Literal; keep values printable and re-parseable.
			v := math.Round(rng.Float64()*2000-1000) / 8
			return &Num{Val: v}
		}
		names := []string{"x", "y", "z", "a.b", "Diff_pair_W"}
		return &Var{Name: names[rng.Intn(len(names))]}
	}
	switch rng.Intn(8) {
	case 0:
		return &Unary{Op: '-', X: randNode(rng, depth-1)}
	case 1:
		return &Binary{Op: '+', X: randNode(rng, depth-1), Y: randNode(rng, depth-1)}
	case 2:
		return &Binary{Op: '-', X: randNode(rng, depth-1), Y: randNode(rng, depth-1)}
	case 3:
		return &Binary{Op: '*', X: randNode(rng, depth-1), Y: randNode(rng, depth-1)}
	case 4:
		return &Binary{Op: '/', X: randNode(rng, depth-1), Y: randNode(rng, depth-1)}
	case 5:
		// Integer exponent keeps ^ well-defined for all evaluators.
		return &Binary{Op: '^', X: randNode(rng, depth-1), Y: &Num{Val: float64(1 + rng.Intn(3))}}
	case 6:
		fns := []string{"sqrt", "sqr", "abs", "exp"}
		return &Call{Fn: fns[rng.Intn(len(fns))], Args: []Node{randNode(rng, depth-1)}}
	default:
		fns := []string{"min", "max"}
		return &Call{Fn: fns[rng.Intn(len(fns))], Args: []Node{
			randNode(rng, depth-1), randNode(rng, depth-1),
		}}
	}
}

// TestRandomASTPrintParseRoundTrip: for random ASTs, String must
// re-parse with identical point semantics, and one Parse∘String round
// must reach a canonical fixed point (the parser may normalize, e.g.
// folding a negated negative literal).
func TestRandomASTPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20010618)) // DAC 2001
	env := MapEnv{"x": 1.25, "y": -2.5, "z": 0.75, "a.b": 3, "Diff_pair_W": 2.5}
	for i := 0; i < 500; i++ {
		n := randNode(rng, 4)
		text1 := n.String()
		re1, err := Parse(text1)
		if err != nil {
			t.Fatalf("iteration %d: %q does not re-parse: %v", i, text1, err)
		}
		text2 := re1.String()
		re2, err := Parse(text2)
		if err != nil {
			t.Fatalf("iteration %d: normalized %q does not re-parse: %v", i, text2, err)
		}
		if re2.String() != text2 {
			t.Fatalf("iteration %d: no fixed point:\n  %q\n  %q\n  %q", i, text1, text2, re2.String())
		}
		v1, err1 := Eval(n, env)
		for j, m := range []Node{re1, re2} {
			v2, err2 := Eval(m, env)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("iteration %d/%d: eval error mismatch for %q: %v vs %v", i, j, text1, err1, err2)
			}
			if err1 == nil {
				same := v1 == v2 || (math.IsNaN(v1) && math.IsNaN(v2))
				if !same {
					t.Fatalf("iteration %d/%d: eval mismatch for %q: %v vs %v", i, j, text1, v1, v2)
				}
			}
		}
	}
}

// TestRandomASTDiffConsistency: where the symbolic derivative exists,
// it must match central differences at a random point.
func TestRandomASTDiffConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	checked := 0
	for i := 0; i < 800 && checked < 200; i++ {
		n := randNode(rng, 3)
		if !ContainsVar(n, "x") {
			continue
		}
		d := Diff(n, "x")
		if d == nil {
			continue // non-differentiable form: fine
		}
		env := MapEnv{
			"x": 0.5 + rng.Float64()*2, "y": 0.5 + rng.Float64()*2,
			"z": 0.5 + rng.Float64()*2, "a.b": 1 + rng.Float64(),
			"Diff_pair_W": 1 + rng.Float64(),
		}
		f0, err := Eval(n, env)
		if err != nil || math.IsNaN(f0) || math.IsInf(f0, 0) || math.Abs(f0) > 1e8 {
			continue
		}
		sym, err := Eval(d, env)
		if err != nil || math.IsNaN(sym) || math.IsInf(sym, 0) {
			continue
		}
		num := numDeriv(n, "x", env)
		if math.IsNaN(num) || math.IsInf(num, 0) {
			continue
		}
		tol := 1e-3 * math.Max(1, math.Abs(num))
		if math.Abs(sym-num) > tol {
			t.Fatalf("iteration %d: d(%s)/dx symbolic %v vs numeric %v", i, n, sym, num)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d derivative checks executed; generator too restrictive", checked)
	}
}

// TestRandomASTNarrowSoundness: narrowing to a window around the true
// value must never produce inconsistency or exclude the witness.
func TestRandomASTNarrowSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 600 && checked < 200; i++ {
		n := randNode(rng, 3)
		env := MapEnv{
			"x": 0.5 + rng.Float64()*2, "y": 0.5 + rng.Float64()*2,
			"z": 0.5 + rng.Float64()*2, "a.b": 1 + rng.Float64(),
			"Diff_pair_W": 1 + rng.Float64(),
		}
		v, err := Eval(n, env)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
			continue
		}
		box := MapBox{}
		for name, val := range env {
			box[name] = interval.New(val-rng.Float64(), val+rng.Float64())
		}
		// Make sure the witness is inside the box.
		ok := true
		for name, val := range env {
			if !box[name].Contains(val) {
				ok = false
			}
		}
		if !ok {
			continue
		}
		vb := EvalInterval(n, box)
		if vb.IsEmpty() {
			t.Fatalf("iteration %d: empty enclosure for %s", i, n)
		}
		want := interval.New(v-0.5, v+0.5)
		res := Narrow(n, want, box)
		if res.Inconsistent {
			t.Fatalf("iteration %d: spurious inconsistency for %s (value %v, want %v)", i, n, v, want)
		}
		for name, val := range env {
			if ContainsVar(n, name) && !containsTol(box[name], val) {
				t.Fatalf("iteration %d: narrowing %s excluded witness %s=%v (domain %v)",
					i, n, name, val, box[name])
			}
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d narrow checks executed", checked)
	}
}
