// Package faultfs is the filesystem seam under the write-ahead log: a
// small fs-style interface covering exactly the operations the WAL
// needs (append-oriented file writes, fsync, directory listing and
// sync, whole-file reads), an OS-backed implementation, and a Fault
// wrapper that injects failures — short writes, fsync errors, failed
// directory operations — at scripted points so the chaos suite can
// exercise every storage-error path without touching a real disk's
// failure modes.
//
// The interface is deliberately minimal: the WAL appends, syncs,
// truncates (torn-tail repair), lists and removes segments, and syncs
// directories for segment-creation durability. Nothing else is
// representable, so nothing else can be depended on.
package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is a writable log file handle.
type File interface {
	// Write appends len(b) bytes; a short write returns n < len(b) and
	// a non-nil error, leaving a torn tail in the file.
	Write(b []byte) (int, error)
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes (torn-tail repair).
	Truncate(size int64) error
	// Close releases the handle.
	Close() error
}

// FS is the filesystem surface the WAL writes through.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the flags the
	// WAL uses (O_CREATE|O_WRONLY|O_APPEND, O_WRONLY, O_TRUNC).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadFile returns the entire contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and parents.
	MkdirAll(dir string, perm fs.FileMode) error
	// Remove deletes name.
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making renames and segment
	// creations durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

// OpenFile opens via os.OpenFile.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile reads via os.ReadFile.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir lists file names via os.ReadDir (already sorted).
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// MkdirAll creates via os.MkdirAll.
func (OS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

// Remove deletes via os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// SyncDir opens the directory and fsyncs it.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// WriteFile writes name atomically enough for small metadata files:
// create/truncate, write, sync, close.
func WriteFile(fsys FS, name string, data []byte, perm fs.FileMode) error {
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Fault wraps an FS and injects failures through optional hooks. Each
// hook receives a 1-based global operation index of its kind, so tests
// script "the Nth write short-writes k bytes" or "the Nth sync fails"
// deterministically. A nil hook means the operation passes through.
//
// Fault is safe for concurrent use: counters, the MarkOp label, and
// hook invocations are serialized under an internal lock (the server
// shares one FS across all shards). Hooks run while the lock is held —
// they must not call back into the same Fault. Note that concurrent
// callers still interleave the global and op-relative ordinals
// nondeterministically; deterministic fault scripting additionally
// requires a scheduler that runs one disk operation at a time, which
// is what internal/sim's synchronous driver provides.
type Fault struct {
	// Inner is the wrapped filesystem; nil means OS{}.
	Inner FS

	// OnWrite, when non-nil, is consulted before every file write with
	// the write index and payload. Returning allow < len(b) makes the
	// write short: allow bytes reach the file and the returned error
	// (or ErrInjected if nil) is reported. allow >= len(b) with a nil
	// error passes the write through.
	OnWrite func(n int, name string, b []byte) (allow int, err error)
	// OnSync, when non-nil, is consulted before every file Sync; a
	// non-nil return suppresses the real sync and is returned.
	OnSync func(n int, name string) error
	// OnTruncate, when non-nil, can fail torn-tail repair.
	OnTruncate func(n int, name string) error
	// OnDirOp, when non-nil, is consulted before Remove ("remove"),
	// MkdirAll ("mkdir"), and SyncDir ("syncdir").
	OnDirOp func(op, name string) error
	// OnOpSync, when non-nil, is consulted before every sync — file
	// Sync and SyncDir alike — with the current operation label (set by
	// MarkOp) and the 1-based ordinal of this sync *within* that
	// operation. Global sync ordinals (OnSync) are brittle against
	// unrelated syncs being added upstream; op-relative ordinals let a
	// test say "the 2nd sync of a rotation" and mean it. A non-nil
	// return suppresses the real sync and is returned.
	OnOpSync func(op string, nth int, name string) error
	// DropWrite, when non-nil, is consulted before every file write
	// with the global write index and payload. Returning true reports
	// the write as fully successful while discarding the bytes — a
	// lying disk. This exists for the model-checker self-test: dropping
	// a WAL append (selected by content) while the server acks the
	// batch is precisely the ack-before-append bug the checker must be
	// able to catch.
	DropWrite func(n int, name string, b []byte) bool

	mu                    sync.Mutex
	writes, syncs, truncs int
	op                    string
	opSyncs               int
}

// MarkOp labels the operation in progress ("append", "rotate", "sync",
// "open") and resets the within-operation sync counter consulted by
// OnOpSync.
func (f *Fault) MarkOp(op string) {
	f.mu.Lock()
	f.op = op
	f.opSyncs = 0
	f.mu.Unlock()
}

// Mark calls MarkOp if fsys is fault-wrapped; otherwise it is a no-op.
// Instrumented code (the WAL) calls it unconditionally.
func Mark(fsys FS, op string) {
	if f, ok := fsys.(*Fault); ok {
		f.MarkOp(op)
	}
}

// opSync runs the OnOpSync hook for one sync (file or directory).
func (f *Fault) opSync(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opSyncLocked(name)
}

// opSyncLocked is opSync with f.mu already held.
func (f *Fault) opSyncLocked(name string) error {
	if f.OnOpSync == nil {
		return nil
	}
	f.opSyncs++
	return f.OnOpSync(f.op, f.opSyncs, name)
}

// ErrInjected is the default error reported by injected failures.
var ErrInjected = errors.New("faultfs: injected fault")

// inner returns the wrapped FS.
func (f *Fault) inner() FS {
	if f.Inner == nil {
		return OS{}
	}
	return f.Inner
}

// OpenFile wraps the inner file with the injection hooks.
func (f *Fault) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	inner, err := f.inner().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

// ReadFile passes through.
func (f *Fault) ReadFile(name string) ([]byte, error) { return f.inner().ReadFile(name) }

// ReadDir passes through, sorted for determinism.
func (f *Fault) ReadDir(dir string) ([]string, error) {
	names, err := f.inner().ReadDir(dir)
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll applies OnDirOp then passes through.
func (f *Fault) MkdirAll(dir string, perm fs.FileMode) error {
	if f.OnDirOp != nil {
		if err := f.OnDirOp("mkdir", dir); err != nil {
			return err
		}
	}
	return f.inner().MkdirAll(dir, perm)
}

// Remove applies OnDirOp then passes through.
func (f *Fault) Remove(name string) error {
	if f.OnDirOp != nil {
		if err := f.OnDirOp("remove", name); err != nil {
			return err
		}
	}
	return f.inner().Remove(name)
}

// SyncDir applies OnDirOp and OnOpSync then passes through.
func (f *Fault) SyncDir(dir string) error {
	if f.OnDirOp != nil {
		if err := f.OnDirOp("syncdir", dir); err != nil {
			return err
		}
	}
	if err := f.opSync(dir); err != nil {
		return err
	}
	return f.inner().SyncDir(dir)
}

// faultFile applies the parent Fault's hooks to one file handle.
type faultFile struct {
	fs    *Fault
	name  string
	inner File
}

func (ff *faultFile) Write(b []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	f.writes++
	n := f.writes
	if f.DropWrite != nil && f.DropWrite(n, ff.name, b) {
		f.mu.Unlock()
		return len(b), nil
	}
	if f.OnWrite != nil {
		allow, err := f.OnWrite(n, ff.name, b)
		f.mu.Unlock()
		if allow < len(b) || err != nil {
			if allow < 0 {
				allow = 0
			}
			if allow > len(b) {
				allow = len(b)
			}
			n := 0
			if allow > 0 {
				// The short prefix really lands in the file: that is what
				// makes the tail torn.
				var werr error
				n, werr = ff.inner.Write(b[:allow])
				if werr != nil {
					return n, werr
				}
			}
			if err == nil {
				err = ErrInjected
			}
			return n, err
		}
	} else {
		f.mu.Unlock()
	}
	return ff.inner.Write(b)
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	f.syncs++
	if f.OnSync != nil {
		if err := f.OnSync(f.syncs, ff.name); err != nil {
			f.mu.Unlock()
			return err
		}
	}
	if err := f.opSyncLocked(ff.name); err != nil {
		f.mu.Unlock()
		return err
	}
	f.mu.Unlock()
	return ff.inner.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	f := ff.fs
	f.mu.Lock()
	f.truncs++
	if f.OnTruncate != nil {
		if err := f.OnTruncate(f.truncs, ff.name); err != nil {
			f.mu.Unlock()
			return err
		}
	}
	f.mu.Unlock()
	return ff.inner.Truncate(size)
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
