package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestShortWriteLandsPrefix(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "f")
	fsys := &Fault{OnWrite: func(n int, _ string, b []byte) (int, error) {
		if n == 2 {
			return 3, nil
		}
		return len(b), nil
	}}
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write 1 passed through, got %v", err)
	}
	n, err := f.Write([]byte("world"))
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("short write: n=%d err=%v, want 3/ErrInjected", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The torn prefix must really be on disk — that is what recovery has
	// to cope with.
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hellowor" {
		t.Errorf("file contents %q, want %q", b, "hellowor")
	}
}

func TestSyncAndDirOpInjection(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "f")
	boom := errors.New("boom")
	fsys := &Fault{
		OnSync: func(n int, _ string) error { return boom },
		OnDirOp: func(op, _ string) error {
			if op == "remove" {
				return boom
			}
			return nil
		},
	}
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Errorf("sync: %v, want injected error", err)
	}
	if err := fsys.Remove(name); !errors.Is(err, boom) {
		t.Errorf("remove: %v, want injected error", err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Errorf("mkdir (not scripted): %v", err)
	}
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "meta")
	if err := WriteFile(OS{}, name, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := OS{}.ReadFile(name)
	if err != nil || string(b) != "x" {
		t.Fatalf("read back %q, %v", b, err)
	}
	// A scripted sync failure must surface instead of silently acking.
	fsys := &Fault{OnSync: func(int, string) error { return ErrInjected }}
	if err := WriteFile(fsys, name, []byte("y"), 0o644); !errors.Is(err, ErrInjected) {
		t.Errorf("WriteFile with failing sync: %v", err)
	}
}
