package faultfs

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS with an explicit durability model, built for
// deterministic simulation: every file carries both its volatile
// content (what the process has written) and the prefix of that content
// known durable (what an fsync has pushed to "stable storage"), and
// directory entries distinguish creations and removals whose directory
// sync has not happened yet. Crash collapses the volatile view onto the
// durable one — exactly the state a power loss would leave on disk —
// so a simulation can model "process restart" (volatile survives, as
// the page cache does) and "power cut" (only durable survives) as two
// distinct, replayable events, with zero real I/O either way.
//
// The durability rules mirror a conventional POSIX fs:
//
//   - Write extends volatile content only.
//   - File Sync makes the file's current content durable — but the file
//     itself only survives a crash if its creation was made durable by
//     a directory sync (SyncDir), as on a real fs.
//   - Remove removes the name from the volatile view; until SyncDir the
//     removal is not durable and a crash resurrects the file with its
//     durable content.
//   - Truncate cuts volatile content and caps the durable prefix.
//
// MemFS is safe for concurrent use; the simulation's single logical
// thread makes the locking trivial in practice.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

type memFile struct {
	data    []byte // volatile content
	durable int    // prefix of data known durable (≤ len(data) invariant kept on write/truncate)
	created bool   // creation made durable by SyncDir
	removed bool   // removed from the volatile view; durable content may survive a crash
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, dirs: map[string]bool{}}
}

// OpenFile opens name for writing with the flag semantics the WAL uses
// (O_CREATE, O_APPEND, O_TRUNC, O_WRONLY). Opening a missing file
// without O_CREATE fails with fs.ErrNotExist.
func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	f := m.files[name]
	if f == nil || f.removed {
		if flag&os.O_CREATE == 0 {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		f = &memFile{}
		m.files[name] = f
	}
	if flag&os.O_TRUNC != 0 {
		f.data = nil
		f.durable = 0
	}
	return &memHandle{fs: m, name: name, appendMode: flag&os.O_APPEND != 0}, nil
}

// ReadFile returns the volatile content of name.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	f := m.files[name]
	if f == nil || f.removed {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// ReadDir lists the file names directly under dir, sorted.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	if !m.dirs[dir] {
		return nil, &fs.PathError{Op: "readdir", Path: dir, Err: fs.ErrNotExist}
	}
	var names []string
	for name, f := range m.files {
		if f.removed {
			continue
		}
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll records dir and its parents.
func (m *MemFS) MkdirAll(dir string, perm fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	for d := dir; ; d = filepath.Dir(d) {
		m.dirs[d] = true
		if d == "." || d == string(filepath.Separator) || filepath.Dir(d) == d {
			break
		}
	}
	return nil
}

// Remove deletes name from the volatile view. The removal only becomes
// durable at the next SyncDir of the containing directory; until then a
// crash resurrects the file's durable content.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	f := m.files[name]
	if f == nil || f.removed {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	if !f.created {
		// Creation never reached the directory: nothing durable to keep.
		delete(m.files, name)
		return nil
	}
	f.removed = true
	return nil
}

// SyncDir makes dir's entry changes durable: pending creations under it
// are pinned and pending removals are finalized.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	if !m.dirs[dir] {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: fs.ErrNotExist}
	}
	for name, f := range m.files {
		if filepath.Dir(name) != dir {
			continue
		}
		if f.removed {
			delete(m.files, name)
			continue
		}
		f.created = true
	}
	return nil
}

// Crash collapses the filesystem to its durable view, in place: files
// whose creation was never directory-synced vanish, files removed
// without a directory sync come back, and every surviving file is cut
// to its durable prefix. This is the power-loss event; a plain process
// restart keeps the volatile view (the page cache survives).
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		if !f.created {
			delete(m.files, name)
			continue
		}
		f.removed = false
		f.data = f.data[:f.durable]
	}
}

// Clone deep-copies the filesystem — the model checker snapshots disk
// state with it.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := NewMemFS()
	for name, f := range m.files {
		cp.files[name] = &memFile{
			data:    append([]byte(nil), f.data...),
			durable: f.durable,
			created: f.created,
			removed: f.removed,
		}
	}
	for d, ok := range m.dirs {
		cp.dirs[d] = ok
	}
	return cp
}

// CopyFrom replaces this filesystem's contents with a deep copy of
// src's — restoring a Clone in place, so handles to the MemFS identity
// (a server's Options.FS) keep working across a checker backtrack.
func (m *MemFS) CopyFrom(src *MemFS) {
	snap := src.Clone()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files = snap.files
	m.dirs = snap.dirs
}

// Fingerprint returns a canonical digest of the full filesystem state —
// volatile and durable content, pending creations and removals — for
// explicit-state deduplication.
func (m *MemFS) Fingerprint() [sha256.Size]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	var num [8]byte
	for _, name := range names {
		f := m.files[name]
		fmt.Fprintf(h, "%s|%v|%v|", name, f.created, f.removed)
		binary.LittleEndian.PutUint64(num[:], uint64(f.durable))
		h.Write(num[:])
		binary.LittleEndian.PutUint64(num[:], uint64(len(f.data)))
		h.Write(num[:])
		h.Write(f.data)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// Dump renders a human-readable listing (tests and failure reports).
func (m *MemFS) Dump() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := m.files[name]
		fmt.Fprintf(&b, "%s: %d bytes (%d durable) created=%v removed=%v\n",
			name, len(f.data), f.durable, f.created, f.removed)
	}
	return b.String()
}

// memHandle is one open-file handle.
type memHandle struct {
	fs         *MemFS
	name       string
	appendMode bool
	off        int
	closed     bool
}

func (h *memHandle) file() (*memFile, error) {
	if h.closed {
		return nil, &fs.PathError{Op: "write", Path: h.name, Err: fs.ErrClosed}
	}
	f := h.fs.files[h.name]
	if f == nil {
		return nil, &fs.PathError{Op: "write", Path: h.name, Err: fs.ErrNotExist}
	}
	return f, nil
}

func (h *memHandle) Write(b []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	if h.appendMode {
		h.off = len(f.data)
	}
	if n := h.off + len(b); n > len(f.data) {
		f.data = append(f.data, make([]byte, n-len(f.data))...)
	}
	copy(f.data[h.off:], b)
	h.off += len(b)
	return len(b), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	f.durable = len(f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	if int(size) < len(f.data) {
		f.data = f.data[:size]
	}
	if f.durable > int(size) {
		f.durable = int(size)
	}
	if h.off > int(size) {
		h.off = int(size)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}
