package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"testing"
)

func writeAll(t *testing.T, fsys FS, name string, b []byte, flag int) File {
	t.Helper()
	f, err := fsys.OpenFile(name, flag, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	return f
}

func TestMemFSVolatileVsDurable(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	f := writeAll(t, m, "d/a", []byte("hello"), os.O_CREATE|os.O_WRONLY|os.O_APPEND)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// File content is durable but the creation is not: without a
	// directory sync a crash loses the whole file.
	m.Clone().Crash() // sanity: Crash on a clone leaves the original alone
	got, err := m.ReadFile("d/a")
	if err != nil || string(got) != "hello" {
		t.Fatalf("original mutated by clone crash: %q, %v", got, err)
	}
	c := m.Clone()
	c.Crash()
	if _, err := c.ReadFile("d/a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("un-dir-synced file survived crash: %v", err)
	}

	// Dir-sync the creation, append more without fsync: crash keeps only
	// the durable prefix.
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.ReadFile("d/a"); string(got) != "hello world" {
		t.Fatalf("volatile read %q", got)
	}
	c = m.Clone()
	c.Crash()
	if got, err := c.ReadFile("d/a"); err != nil || string(got) != "hello" {
		t.Fatalf("crash kept %q, %v; want durable prefix \"hello\"", got, err)
	}

	// Sync the tail; now the full content survives.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	c = m.Clone()
	c.Crash()
	if got, _ := c.ReadFile("d/a"); string(got) != "hello world" {
		t.Fatalf("crash after sync kept %q", got)
	}
}

func TestMemFSRemoveLimbo(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d", 0o755)
	f := writeAll(t, m, "d/a", []byte("x"), os.O_CREATE|os.O_WRONLY)
	f.Sync()
	f.Close()
	m.SyncDir("d")

	// Remove without a directory sync: gone from the volatile view, but
	// a crash resurrects the durable content.
	if err := m.Remove("d/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("d/a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("removed file still readable: %v", err)
	}
	c := m.Clone()
	c.Crash()
	if got, err := c.ReadFile("d/a"); err != nil || string(got) != "x" {
		t.Fatalf("unsynced removal not resurrected: %q, %v", got, err)
	}

	// After SyncDir the removal is final.
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	c = m.Clone()
	c.Crash()
	if _, err := c.ReadFile("d/a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("dir-synced removal survived crash: %v", err)
	}

	// Removing a never-dir-synced file leaves nothing behind at all.
	f = writeAll(t, m, "d/b", []byte("y"), os.O_CREATE|os.O_WRONLY)
	f.Sync()
	f.Close()
	if err := m.Remove("d/b"); err != nil {
		t.Fatal(err)
	}
	c = m.Clone()
	c.Crash()
	if _, err := c.ReadFile("d/b"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("uncreated file resurrected: %v", err)
	}
}

func TestMemFSReadDirAndFingerprint(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d", 0o755)
	for _, n := range []string{"d/c", "d/a", "d/b"} {
		f := writeAll(t, m, n, []byte(n), os.O_CREATE|os.O_WRONLY)
		f.Close()
	}
	names, err := m.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("ReadDir order %v", names)
	}

	fp1 := m.Fingerprint()
	cp := m.Clone()
	if fp2 := cp.Fingerprint(); fp1 != fp2 {
		t.Fatal("clone fingerprint differs")
	}
	f := writeAll(t, cp, "d/a", []byte("!"), os.O_WRONLY|os.O_APPEND)
	f.Close()
	if fp2 := cp.Fingerprint(); fp1 == fp2 {
		t.Fatal("fingerprint blind to content change")
	}
	// CopyFrom restores in place, preserving the MemFS identity.
	cp.CopyFrom(m)
	if fp2 := cp.Fingerprint(); fp1 != fp2 {
		t.Fatal("CopyFrom did not restore the fingerprint")
	}
}

func TestMemFSTruncateCapsDurable(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d", 0o755)
	f := writeAll(t, m, "d/a", []byte("0123456789"), os.O_CREATE|os.O_WRONLY|os.O_APPEND)
	f.Sync()
	m.SyncDir("d")
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.Crash()
	if got, _ := c.ReadFile("d/a"); string(got) != "0123" {
		t.Fatalf("durable after truncate: %q", got)
	}
}

func TestFaultOpSyncOrdinals(t *testing.T) {
	m := NewMemFS()
	var saw []string
	ff := &Fault{Inner: m, OnOpSync: func(op string, nth int, name string) error {
		saw = append(saw, op, string(rune('0'+nth)))
		return nil
	}}
	m.MkdirAll("d", 0o755)
	ff.MarkOp("rotate")
	f := writeAll(t, ff, "d/a", []byte("x"), os.O_CREATE|os.O_WRONLY)
	f.Sync()          // rotate#1
	ff.SyncDir("d")   // rotate#2
	ff.MarkOp("sync") // counter resets
	f.Sync()          // sync#1
	f.Close()
	want := []string{"rotate", "1", "rotate", "2", "sync", "1"}
	if len(saw) != len(want) {
		t.Fatalf("op-sync trail %v, want %v", saw, want)
	}
	for i := range want {
		if saw[i] != want[i] {
			t.Fatalf("op-sync trail %v, want %v", saw, want)
		}
	}
}

func TestFaultDropWrite(t *testing.T) {
	m := NewMemFS()
	ff := &Fault{Inner: m, DropWrite: func(n int, name string, b []byte) bool { return n == 2 }}
	m.MkdirAll("d", 0o755)
	f, err := ff.OpenFile("d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"one", "two", "three"} {
		if n, err := f.Write([]byte(s)); err != nil || n != len(s) {
			t.Fatalf("write %q: n=%d err=%v (drop must report success)", s, n, err)
		}
	}
	f.Close()
	if got, _ := m.ReadFile("d/a"); string(got) != "onethree" {
		t.Fatalf("file holds %q, want the dropped write silently missing", got)
	}
}
