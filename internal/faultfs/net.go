package faultfs

import (
	"errors"
	"sync"
)

// ErrPartitioned is the error every message reports while a NetFault is
// partitioned.
var ErrPartitioned = errors.New("faultfs: injected network partition")

// NetFault is the transport-side sibling of Fault: a scripted failure
// injector for message-passing links (the replication peer connection).
// It counts messages globally, so tests and the simulation can say
// "drop the Nth replication message" with the same determinism the
// filesystem hooks give "fail the Nth sync". Safe for concurrent use;
// the hook runs under the internal lock and must not call back in.
type NetFault struct {
	// OnMsg, when non-nil, is consulted before every message with its
	// 1-based global index and kind ("append", "rotate", "sync", "pos",
	// "copy", "reset", "handoff"). A non-nil return suppresses delivery
	// and is reported to the sender.
	OnMsg func(n int, kind string) error

	mu          sync.Mutex
	msgs        int
	partitioned bool
}

// Before accounts for one message about to cross the link and returns
// the injected failure, if any. A partition outranks the hook: every
// message fails with ErrPartitioned until the partition heals.
func (nf *NetFault) Before(kind string) error {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	nf.msgs++
	if nf.partitioned {
		return ErrPartitioned
	}
	if nf.OnMsg != nil {
		return nf.OnMsg(nf.msgs, kind)
	}
	return nil
}

// SetPartitioned cuts (true) or heals (false) the link.
func (nf *NetFault) SetPartitioned(v bool) {
	nf.mu.Lock()
	nf.partitioned = v
	nf.mu.Unlock()
}

// Partitioned reports whether the link is currently cut.
func (nf *NetFault) Partitioned() bool {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	return nf.partitioned
}

// Messages returns the number of messages accounted so far.
func (nf *NetFault) Messages() int {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	return nf.msgs
}
