// Package figures regenerates every figure of the paper's evaluation
// section (§3): the per-operation profiles of Fig. 7, the process
// statistics snapshot of Fig. 8, the conventional-vs-ADPM comparison of
// Fig. 9 (with the in-text spin and variability ratios), and the
// specification-tightness sweep of Fig. 10. Each generator returns a
// structured result plus a text rendering (tables and ASCII charts
// standing in for the paper's Gnuplot displays).
package figures

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/dpm"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/teamsim"
)

// Options control experiment scale.
type Options struct {
	// Runs per configuration (the paper used "over 60"); 0 means 60.
	Runs int
	// Seed is the base seed; runs use Seed, Seed+1, ….
	Seed int64
	// MaxOps caps each run; 0 means 3000.
	MaxOps int
	// Parallelism bounds worker goroutines; 0 means GOMAXPROCS.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		o.Runs = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxOps <= 0 {
		o.MaxOps = 3000
	}
	return o
}

// ---------------------------------------------------------------------
// Fig. 7 — per-operation profiles
// ---------------------------------------------------------------------

// ProfileResult holds Fig. 7's two per-operation series for one mode.
type ProfileResult struct {
	Mode dpm.Mode
	// NewViolations[i] is the number of violations found upon executed
	// operation i (Fig. 7a).
	NewViolations []int
	// Evals[i] is the number of constraint evaluations due to operation
	// i (Fig. 7b).
	Evals []int64
	// Operations is the number of executed operations.
	Operations int
	// FirstViolationOp and LastViolationOp are the indices of the first
	// and last operation that found a violation (-1 when none).
	FirstViolationOp, LastViolationOp int
	// TotalViolations is the total number of violations found.
	TotalViolations int
	// TotalEvals is the area under the Fig. 7b curve (N_T).
	TotalEvals int64
}

// Fig7Result compares the two modes' profiles on one scenario and seed.
type Fig7Result struct {
	Scenario     string
	Seed         int64
	Conventional ProfileResult
	ADPM         ProfileResult
}

// Fig7 generates the Fig. 7 profile for the named scenario at one seed.
// The paper uses "a simplified design case"; the receiver profile is
// also informative because ADPM still encounters a few violations there.
func Fig7(scenarioName string, seed int64, maxOps int) (*Fig7Result, error) {
	scn, err := scenario.ByName(scenarioName)
	if err != nil {
		return nil, err
	}
	if maxOps <= 0 {
		maxOps = 3000
	}
	out := &Fig7Result{Scenario: scenarioName, Seed: seed}
	for _, mode := range []dpm.Mode{dpm.Conventional, dpm.ADPM} {
		r, err := teamsim.Run(teamsim.Config{Scenario: scn, Mode: mode, Seed: seed, MaxOps: maxOps})
		if err != nil {
			return nil, err
		}
		p := ProfileResult{
			Mode:             mode,
			NewViolations:    r.NewViolationsPerOp,
			Evals:            r.EvalsPerOp,
			Operations:       r.Operations,
			FirstViolationOp: -1,
			LastViolationOp:  -1,
			TotalEvals:       r.Evaluations,
		}
		for i, v := range r.NewViolationsPerOp {
			if v > 0 {
				if p.FirstViolationOp < 0 {
					p.FirstViolationOp = i
				}
				p.LastViolationOp = i
				p.TotalViolations += v
			}
		}
		if mode == dpm.Conventional {
			out.Conventional = p
		} else {
			out.ADPM = p
		}
	}
	return out, nil
}

// Render formats the Fig. 7 charts and summary lines.
func (f *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — per-operation profile (%s, seed %d)\n\n", f.Scenario, f.Seed)
	b.WriteString(stats.AsciiChart(
		"(a) violations found upon each executed operation",
		72, 12,
		stats.FromInts("conventional (solid in paper)", f.Conventional.NewViolations),
		stats.FromInts("ADPM (dotted in paper)", f.ADPM.NewViolations),
	))
	b.WriteString("\n")
	b.WriteString(stats.AsciiChart(
		"(b) constraint evaluations due to each executed operation",
		72, 12,
		stats.FromInt64s("conventional", f.Conventional.Evals),
		stats.FromInt64s("ADPM", f.ADPM.Evals),
	))
	b.WriteString("\n")
	for _, p := range []ProfileResult{f.Conventional, f.ADPM} {
		fmt.Fprintf(&b, "%-12s ops=%-5d violations(total=%d first-op=%d last-op=%d) total-evals=%d\n",
			p.Mode, p.Operations, p.TotalViolations, p.FirstViolationOp, p.LastViolationOp, p.TotalEvals)
	}
	b.WriteString("\npaper's shape: ADPM finds fewer violations, they start later and\n" +
		"stop earlier, and the design completes in fewer operations, at the\n" +
		"price of more constraint evaluations per executed operation.\n")
	return b.String()
}

// ---------------------------------------------------------------------
// Fig. 8 — design process statistics window
// ---------------------------------------------------------------------

// Fig8Result is the statistics snapshot TeamSim displays during a run.
type Fig8Result struct {
	Scenario string
	Mode     dpm.Mode
	Seed     int64
	// Per-operation series (cumulative where the window shows
	// cumulative values).
	OpenViolations []int
	CumEvals       []int64
	CumSpins       []int
	NumConstraints int
	NumProperties  int
	Final          *teamsim.Result
}

// Fig8 captures the statistics for one receiver run (the paper's window
// snapshot was taken from a receiver simulation).
func Fig8(mode dpm.Mode, seed int64, maxOps int) (*Fig8Result, error) {
	scn := scenario.Receiver()
	if maxOps <= 0 {
		maxOps = 3000
	}
	r, err := teamsim.Run(teamsim.Config{Scenario: scn, Mode: mode, Seed: seed, MaxOps: maxOps})
	if err != nil {
		return nil, err
	}
	net, err := scn.BuildNetwork()
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{
		Scenario:       "receiver",
		Mode:           mode,
		Seed:           seed,
		OpenViolations: r.OpenViolationsPerOp,
		NumConstraints: net.NumConstraints(),
		NumProperties:  net.NumProperties(),
		Final:          r,
	}
	var cumEvals int64
	cumSpins := 0
	for i, e := range r.EvalsPerOp {
		cumEvals += e
		out.CumEvals = append(out.CumEvals, cumEvals)
		if r.SpinPerOp[i] {
			cumSpins++
		}
		out.CumSpins = append(out.CumSpins, cumSpins)
	}
	return out, nil
}

// Render formats the Fig. 8 statistics window.
func (f *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — design process statistics window (%s, %s, seed %d)\n\n",
		f.Scenario, f.Mode, f.Seed)
	b.WriteString(stats.AsciiChart(
		"open violations and cumulative spins per operation",
		72, 10,
		stats.FromInts("open violations", f.OpenViolations),
		stats.FromInts("cumulative spins", f.CumSpins),
	))
	b.WriteString("\n")
	b.WriteString(stats.AsciiChart(
		"cumulative constraint evaluations",
		72, 10,
		stats.FromInt64s("evaluations", f.CumEvals),
	))
	fmt.Fprintf(&b, "\nSTATISTICS  constraints=%d  properties=%d  operations=%d\n",
		f.NumConstraints, f.NumProperties, f.Final.Operations)
	fmt.Fprintf(&b, "            evaluations=%d  spins=%d  completed=%v\n",
		f.Final.Evaluations, f.Final.Spins, f.Final.Completed)
	return b.String()
}

// ---------------------------------------------------------------------
// Fig. 9 — conventional vs ADPM over both design cases
// ---------------------------------------------------------------------

// Fig9Result aggregates the paper's §3.2 headline comparison.
type Fig9Result struct {
	Cases []*teamsim.Comparison
}

// Fig9 runs the sensor and receiver cases in both modes.
func Fig9(opts Options) (*Fig9Result, error) {
	opts = opts.withDefaults()
	out := &Fig9Result{}
	for _, name := range []string{"sensor", "receiver"} {
		scn, err := scenario.ByName(name)
		if err != nil {
			return nil, err
		}
		cmp, err := teamsim.Compare(name, teamsim.Config{
			Scenario: scn, Seed: opts.Seed, MaxOps: opts.MaxOps,
		}, opts.Runs, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		out.Cases = append(out.Cases, cmp)
	}
	return out, nil
}

// Render formats the Fig. 9 tables and in-text ratios.
func (f *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 9(a) — design operations to complete each case\n\n")
	fmt.Fprintf(&b, "%-10s %-13s %10s %10s %10s %12s\n",
		"case", "mode", "ops mean", "ops std", "spins", "completed")
	for _, c := range f.Cases {
		for _, row := range []struct {
			mode string
			m    *teamsim.MultiResult
		}{
			{"conventional", c.Conventional},
			{"ADPM", c.ADPM},
		} {
			fmt.Fprintf(&b, "%-10s %-13s %10.1f %10.1f %10.2f %9d/%d\n",
				c.Case, row.mode, row.m.Ops.Mean, row.m.Ops.Std, row.m.Spins.Mean,
				row.m.Completed, len(row.m.Results))
		}
	}
	b.WriteString("\nFig. 9(b) — constraint evaluations (CAD resource consumption)\n\n")
	fmt.Fprintf(&b, "%-10s %-13s %14s %14s\n", "case", "mode", "total evals", "evals per op")
	for _, c := range f.Cases {
		fmt.Fprintf(&b, "%-10s %-13s %14.0f %14.1f\n", c.Case, "conventional",
			c.Conventional.Evals.Mean, c.Conventional.EvalsPerOp.Mean)
		fmt.Fprintf(&b, "%-10s %-13s %14.0f %14.1f\n", c.Case, "ADPM",
			c.ADPM.Evals.Mean, c.ADPM.EvalsPerOp.Mean)
	}
	b.WriteString("\nderived ratios vs the paper's claims:\n")
	for _, c := range f.Cases {
		ci := c.OpsRatioCI(0.95)
		tstat, _ := c.OpsWelchT()
		fmt.Fprintf(&b, "  %-10s conv/ADPM ops %.2fx [95%% CI %.1f-%.1f, Welch t=%.1f] (paper: >= 2x)  "+
			"std ratio %.1fx (paper: >= 3x)\n",
			c.Case, c.OpsRatio(), ci.Lo, ci.Hi, tstat, c.StdRatio())
		sci := c.SpinRatioCI(0.95)
		fmt.Fprintf(&b, "  %-10s ADPM/conv spins %.0f%% [95%% CI %.0f-%.0f%%] (paper: ~7%%)  "+
			"eval penalty total %.1fx per-op %.1fx (per-op > total)\n",
			c.Case, 100*c.SpinRatio(), 100*sci.Lo, 100*sci.Hi, c.EvalPenaltyTotal(), c.EvalPenaltyPerOp())
	}
	if len(f.Cases) == 2 {
		s, r := f.Cases[0], f.Cases[1]
		fmt.Fprintf(&b, "  harder case (receiver): ops reduction %.1fx vs sensor %.1fx (paper: larger), "+
			"eval penalty %.1fx vs sensor %.1fx (paper: smaller)\n",
			r.OpsRatio(), s.OpsRatio(), r.EvalPenaltyTotal(), s.EvalPenaltyTotal())
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Fig. 10 — robustness vs specification tightness
// ---------------------------------------------------------------------

// SweepPoint is one tightness level of the Fig. 10 sweep.
type SweepPoint struct {
	MinGain      float64
	Conventional stats.Summary
	ADPM         stats.Summary
	ConvDone     int
	ADPMDone     int
	Runs         int
}

// Fig10Result is the gain-requirement sweep over the receiver case.
type Fig10Result struct {
	Points []SweepPoint
}

// Fig10 sweeps the receiver's gain requirement (the paper's
// "variation of design operations with specification tightness").
func Fig10(opts Options) (*Fig10Result, error) {
	opts = opts.withDefaults()
	out := &Fig10Result{}
	for _, g := range scenario.GainSweep() {
		scn := scenario.ReceiverWithGain(g)
		pt := SweepPoint{MinGain: g, Runs: opts.Runs}
		for _, mode := range []dpm.Mode{dpm.Conventional, dpm.ADPM} {
			m, err := teamsim.RunMany(teamsim.Config{
				Scenario: scn, Mode: mode, Seed: opts.Seed, MaxOps: opts.MaxOps,
			}, opts.Runs, opts.Parallelism)
			if err != nil {
				return nil, err
			}
			if mode == dpm.Conventional {
				pt.Conventional = m.Ops
				pt.ConvDone = m.Completed
			} else {
				pt.ADPM = m.Ops
				pt.ADPMDone = m.Completed
			}
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Render formats the Fig. 10 table and chart.
func (f *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10 — design operations vs gain-requirement tightness (receiver)\n\n")
	fmt.Fprintf(&b, "%8s %14s %12s %12s %14s %12s %12s\n",
		"MinGain", "conv ops mean", "conv std", "conv done", "ADPM ops mean", "ADPM std", "ADPM done")
	convSeries := stats.Series{Name: "conventional"}
	adpmSeries := stats.Series{Name: "ADPM"}
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%8.0f %14.1f %12.1f %9d/%d %14.1f %12.1f %9d/%d\n",
			p.MinGain, p.Conventional.Mean, p.Conventional.Std, p.ConvDone, p.Runs,
			p.ADPM.Mean, p.ADPM.Std, p.ADPMDone, p.Runs)
		convSeries.X = append(convSeries.X, p.MinGain)
		convSeries.Y = append(convSeries.Y, p.Conventional.Mean)
		adpmSeries.X = append(adpmSeries.X, p.MinGain)
		adpmSeries.Y = append(adpmSeries.Y, p.ADPM.Mean)
	}
	b.WriteString("\n")
	b.WriteString(stats.AsciiChart("mean operations vs MinGain", 72, 12, convSeries, adpmSeries))
	b.WriteString("\npaper's shape: operations grow with tightness for both approaches,\n" +
		"with much larger variation under the conventional approach (ADPM is\n" +
		"more robust to specification tightness).\n")
	return b.String()
}

// VariationRange returns max(mean)-min(mean) of operations across the
// sweep for each mode — the paper's robustness measure.
func (f *Fig10Result) VariationRange() (conv, adpm float64) {
	if len(f.Points) == 0 {
		return 0, 0
	}
	cMin, cMax := f.Points[0].Conventional.Mean, f.Points[0].Conventional.Mean
	aMin, aMax := f.Points[0].ADPM.Mean, f.Points[0].ADPM.Mean
	for _, p := range f.Points[1:] {
		cMin = minF(cMin, p.Conventional.Mean)
		cMax = maxF(cMax, p.Conventional.Mean)
		aMin = minF(aMin, p.ADPM.Mean)
		aMax = maxF(aMax, p.ADPM.Mean)
	}
	return cMax - cMin, aMax - aMin
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// CSV export
// ---------------------------------------------------------------------

// WriteCSV writes the Fig. 9 rows as CSV for external plotting.
func (f *Fig9Result) WriteCSV(w io.Writer) error {
	header := []string{
		"case", "mode", "ops_mean", "ops_std", "spins_mean",
		"evals_mean", "evals_per_op_mean", "completed", "runs",
	}
	var rows [][]string
	for _, c := range f.Cases {
		for _, row := range []struct {
			mode string
			m    *teamsim.MultiResult
		}{{"conventional", c.Conventional}, {"adpm", c.ADPM}} {
			rows = append(rows, []string{
				c.Case, row.mode,
				fmt.Sprintf("%.2f", row.m.Ops.Mean),
				fmt.Sprintf("%.2f", row.m.Ops.Std),
				fmt.Sprintf("%.2f", row.m.Spins.Mean),
				fmt.Sprintf("%.1f", row.m.Evals.Mean),
				fmt.Sprintf("%.2f", row.m.EvalsPerOp.Mean),
				fmt.Sprintf("%d", row.m.Completed),
				fmt.Sprintf("%d", len(row.m.Results)),
			})
		}
	}
	return stats.WriteCSV(w, header, rows)
}

// WriteCSV writes the Fig. 10 sweep as CSV for external plotting.
func (f *Fig10Result) WriteCSV(w io.Writer) error {
	header := []string{
		"min_gain", "conv_ops_mean", "conv_ops_std", "conv_completed",
		"adpm_ops_mean", "adpm_ops_std", "adpm_completed", "runs",
	}
	var rows [][]string
	for _, p := range f.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%g", p.MinGain),
			fmt.Sprintf("%.2f", p.Conventional.Mean),
			fmt.Sprintf("%.2f", p.Conventional.Std),
			fmt.Sprintf("%d", p.ConvDone),
			fmt.Sprintf("%.2f", p.ADPM.Mean),
			fmt.Sprintf("%.2f", p.ADPM.Std),
			fmt.Sprintf("%d", p.ADPMDone),
			fmt.Sprintf("%d", p.Runs),
		})
	}
	return stats.WriteCSV(w, header, rows)
}

// WriteCSV writes the Fig. 7 per-operation series as CSV.
func (f *Fig7Result) WriteCSV(w io.Writer) error {
	header := []string{"mode", "op", "new_violations", "evaluations"}
	var rows [][]string
	for _, p := range []ProfileResult{f.Conventional, f.ADPM} {
		for i := range p.NewViolations {
			rows = append(rows, []string{
				p.Mode.String(),
				fmt.Sprintf("%d", i),
				fmt.Sprintf("%d", p.NewViolations[i]),
				fmt.Sprintf("%d", p.Evals[i]),
			})
		}
	}
	return stats.WriteCSV(w, header, rows)
}
