package figures

import (
	"strings"
	"testing"

	"repro/internal/dpm"
)

// small keeps figure tests quick; shape assertions use these reduced
// run counts and are correspondingly loose.
var small = Options{Runs: 6, Seed: 1, MaxOps: 3000}

func TestFig7ShapeOnReceiver(t *testing.T) {
	f, err := Fig7("receiver", 1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	c, a := f.Conventional, f.ADPM
	if a.Operations >= c.Operations {
		t.Errorf("ADPM ops %d not below conventional %d", a.Operations, c.Operations)
	}
	if a.TotalViolations >= c.TotalViolations {
		t.Errorf("ADPM violations %d not below conventional %d", a.TotalViolations, c.TotalViolations)
	}
	// Violations stop earlier relative to run length.
	if a.LastViolationOp >= 0 && c.LastViolationOp >= 0 {
		aRel := float64(a.LastViolationOp) / float64(a.Operations)
		cRel := float64(c.LastViolationOp) / float64(c.Operations)
		if aRel >= cRel {
			t.Errorf("ADPM last violation at %.0f%% of run, conventional %.0f%%", 100*aRel, 100*cRel)
		}
	}
	// Per-op evaluation cost higher under ADPM.
	if float64(a.TotalEvals)/float64(a.Operations) <= float64(c.TotalEvals)/float64(c.Operations) {
		t.Error("ADPM evals/op not above conventional")
	}
	out := f.Render()
	for _, want := range []string{"Fig. 7", "violations found", "constraint evaluations", "conventional", "ADPM"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig7UnknownScenario(t *testing.T) {
	if _, err := Fig7("bogus", 1, 0); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestFig8SeriesConsistent(t *testing.T) {
	f, err := Fig8(dpm.ADPM, 1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	n := f.Final.Operations
	if len(f.OpenViolations) != n || len(f.CumEvals) != n || len(f.CumSpins) != n {
		t.Fatalf("series lengths %d/%d/%d vs %d ops",
			len(f.OpenViolations), len(f.CumEvals), len(f.CumSpins), n)
	}
	// Cumulative series are monotone.
	for i := 1; i < n; i++ {
		if f.CumEvals[i] < f.CumEvals[i-1] {
			t.Fatal("cumulative evals not monotone")
		}
		if f.CumSpins[i] < f.CumSpins[i-1] {
			t.Fatal("cumulative spins not monotone")
		}
	}
	if f.CumEvals[n-1] != f.Final.Evaluations {
		t.Errorf("cumulative evals end %d != total %d", f.CumEvals[n-1], f.Final.Evaluations)
	}
	if f.CumSpins[n-1] != f.Final.Spins {
		t.Errorf("cumulative spins end %d != total %d", f.CumSpins[n-1], f.Final.Spins)
	}
	if f.NumConstraints != 30 || f.NumProperties != 35 {
		t.Errorf("network size %d/%d, want 30/35", f.NumConstraints, f.NumProperties)
	}
	if !strings.Contains(f.Render(), "STATISTICS") {
		t.Error("render missing statistics banner")
	}
}

func TestFig9HeadlineShapes(t *testing.T) {
	f, err := Fig9(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cases) != 2 {
		t.Fatalf("cases = %d", len(f.Cases))
	}
	for _, c := range f.Cases {
		if c.OpsRatio() < 2 {
			t.Errorf("%s: ops ratio %.2f < 2", c.Case, c.OpsRatio())
		}
		if c.EvalPenaltyTotal() <= 1 {
			t.Errorf("%s: ADPM total evals not above conventional (%.2f)", c.Case, c.EvalPenaltyTotal())
		}
		if c.EvalPenaltyPerOp() <= c.EvalPenaltyTotal() {
			t.Errorf("%s: per-op penalty %.1f not above total %.1f",
				c.Case, c.EvalPenaltyPerOp(), c.EvalPenaltyTotal())
		}
	}
	out := f.Render()
	for _, want := range []string{"Fig. 9(a)", "Fig. 9(b)", "sensor", "receiver", "derived ratios"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig10SweepShape(t *testing.T) {
	f, err := Fig10(Options{Runs: 4, Seed: 1, MaxOps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) < 5 {
		t.Fatalf("sweep points = %d", len(f.Points))
	}
	conv, adpm := f.VariationRange()
	if conv <= adpm {
		t.Errorf("conventional variation %.1f not above ADPM %.1f", conv, adpm)
	}
	// Tightest point needs more conventional ops than the loosest.
	first, last := f.Points[0], f.Points[len(f.Points)-1]
	if last.Conventional.Mean <= first.Conventional.Mean {
		t.Errorf("conventional ops should grow with tightness: %.1f -> %.1f",
			first.Conventional.Mean, last.Conventional.Mean)
	}
	if !strings.Contains(f.Render(), "MinGain") {
		t.Error("render missing sweep table")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Runs != 60 || o.Seed != 1 || o.MaxOps != 3000 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestVariationRangeEmpty(t *testing.T) {
	f := &Fig10Result{}
	if c, a := f.VariationRange(); c != 0 || a != 0 {
		t.Error("empty sweep should report zero variation")
	}
}

func TestCSVExports(t *testing.T) {
	f7, err := Fig7("simplified", 1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := f7.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "mode,op,new_violations,evaluations") {
		t.Errorf("fig7 csv header wrong: %q", strings.SplitN(b.String(), "\n", 2)[0])
	}

	f9, err := Fig9(Options{Runs: 3, Seed: 1, MaxOps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := f9.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != 5 { // header + 4 rows
		t.Errorf("fig9 csv rows = %d", lines)
	}

	f10 := &Fig10Result{Points: []SweepPoint{{MinGain: 48, Runs: 1}}}
	b.Reset()
	if err := f10.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "48") {
		t.Error("fig10 csv missing data")
	}
}
