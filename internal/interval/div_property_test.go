package interval

import (
	"math"
	"math/rand"
	"testing"
)

// sampleIn draws a value from iv, biased toward the endpoints (where
// containment bugs live). Unbounded endpoints are clamped.
func sampleIn(rng *rand.Rand, iv Interval) float64 {
	lo, hi := iv.Lo, iv.Hi
	if math.IsInf(lo, -1) {
		lo = -1e12
	}
	if math.IsInf(hi, 1) {
		hi = 1e12
	}
	switch rng.Intn(4) {
	case 0:
		return lo
	case 1:
		return hi
	default:
		return lo + rng.Float64()*(hi-lo)
	}
}

// randInterval draws a random bounded interval; with kind it can pin an
// endpoint to zero (the semi-open divisor cases under test).
func randInterval(rng *rand.Rand, kind int) Interval {
	span := math.Pow(10, float64(rng.Intn(7)-3)) // widths from 1e-3 to 1e3
	a := (rng.Float64()*2 - 1) * span
	b := a + rng.Float64()*span
	switch kind {
	case 1: // [0, hi]
		return New(0, math.Abs(b)+rng.Float64()*span)
	case 2: // [lo, 0]
		return New(-math.Abs(b)-rng.Float64()*span, 0)
	default:
		return New(a, b)
	}
}

// TestDivContainmentProperty checks the defining property of interval
// division — x ∈ iv, y ∈ o, y ≠ 0 ⇒ x/y ∈ Div(iv, o) — with heavy
// sampling of the semi-open divisor cases (o.Lo == 0 / o.Hi == 0) whose
// bounds previously double-rounded through Mul(1/o.Hi).
func TestDivContainmentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20000; trial++ {
		iv := randInterval(rng, rng.Intn(3))
		o := randInterval(rng, trial%3) // 2/3 of divisors have a zero endpoint
		q := iv.Div(o)
		for k := 0; k < 8; k++ {
			x := sampleIn(rng, iv)
			y := sampleIn(rng, o)
			if y == 0 {
				continue
			}
			got := x / y
			if math.IsNaN(got) {
				continue
			}
			if !q.Contains(got) {
				t.Fatalf("containment violated: %v / %v = %v (x=%g y=%g x/y=%g)",
					iv, o, q, x, y, got)
			}
		}
	}
}

// TestDivSemiOpenDirectBounds pins the semi-open cases to directly
// computed endpoint quotients (no Mul round-trip).
func TestDivSemiOpenDirectBounds(t *testing.T) {
	cases := []struct {
		name   string
		iv, o  Interval
		wantLo float64
		wantHi float64
	}{
		{"pos/[0,hi]", New(1, 2), New(0, 4), 0.25, math.Inf(1)},
		{"neg/[0,hi]", New(-2, -1), New(0, 4), math.Inf(-1), -0.25},
		{"pos/[lo,0]", New(1, 2), New(-4, 0), math.Inf(-1), -0.25},
		{"neg/[lo,0]", New(-2, -1), New(-4, 0), 0.25, math.Inf(1)},
		{"span/[0,hi]", New(-1, 1), New(0, 4), math.Inf(-1), math.Inf(1)},
		{"zerolo/[0,hi]", New(0, 2), New(0, 4), 0, math.Inf(1)},
		{"pos/[0,inf]", New(1, 2), New(0, math.Inf(1)), 0, math.Inf(1)},
	}
	for _, c := range cases {
		got := c.iv.Div(c.o)
		if got.Lo != c.wantLo || got.Hi != c.wantHi {
			t.Errorf("%s: %v / %v = %v, want [%g, %g]", c.name, c.iv, c.o, got, c.wantLo, c.wantHi)
		}
	}
	// The old Mul-based path produced a lower bound above the true
	// infimum when 1/o.Hi rounded up and the product rounded up again.
	// With direct quotients the endpoint division itself is in bounds.
	iv, o := New(1, 10), New(0, 3)
	q := iv.Div(o)
	if want := 1.0 / 3.0; !q.Contains(want) {
		t.Errorf("%v / %v = %v misses endpoint quotient %g", iv, o, q, want)
	}
}

// TestDivDownUp checks the directed-rounding helpers against the real
// quotient: divDown(a,b) ≤ a/b ≤ divUp(a,b), with equality exactly when
// the float division is exact.
func TestDivDownUp(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50000; trial++ {
		a := (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(12)-6))
		b := (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(12)-6))
		if b == 0 {
			continue
		}
		q := a / b
		dn, up := divDown(a, b), divUp(a, b)
		if dn > q || up < q {
			t.Fatalf("directed bounds disordered: a=%g b=%g q=%g dn=%g up=%g", a, b, q, dn, up)
		}
		// The directed pair brackets the real quotient: q*b must not
		// overshoot a in the direction that would put a/b outside.
		if res := -math.FMA(dn, b, -a); b > 0 && res < 0 && dn == q {
			t.Fatalf("divDown kept a rounded-up quotient: a=%g b=%g", a, b)
		}
		if res := -math.FMA(up, b, -a); b > 0 && res > 0 && up == q {
			t.Fatalf("divUp kept a rounded-down quotient: a=%g b=%g", a, b)
		}
		if up != q && dn != q {
			t.Fatalf("both bounds nudged for one quotient: a=%g b=%g", a, b)
		}
	}
	// Exact quotients stay exact in both directions.
	if divDown(1, 4) != 0.25 || divUp(1, 4) != 0.25 {
		t.Errorf("exact quotient 1/4 was nudged: dn=%g up=%g", divDown(1, 4), divUp(1, 4))
	}
}
