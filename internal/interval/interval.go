// Package interval implements closed-interval arithmetic over float64.
//
// Intervals are the numeric substrate of the constraint propagation
// engine: every design property's feasible subspace is represented as an
// interval, and constraint expressions are evaluated over intervals to
// decide whether a constraint is satisfied, violated, or merely
// consistent (paper §2.1).
//
// The arithmetic is outward-conservative in the set sense: for every
// operation op and inputs x ∈ A, y ∈ B, the true result x op y is
// contained in Op(A, B). Infinities are permitted as bounds; the empty
// interval is canonicalized so that all empty intervals compare equal.
package interval

import (
	"fmt"
	"math"
)

// Interval is a closed interval [Lo, Hi]. An interval with Lo > Hi is
// empty; use Empty to construct one and IsEmpty to test. Bounds may be
// ±Inf. NaN bounds are normalized to the empty interval.
type Interval struct {
	Lo, Hi float64
}

// Empty returns the canonical empty interval.
func Empty() Interval { return Interval{Lo: math.Inf(1), Hi: math.Inf(-1)} }

// Entire returns the interval covering the whole real line.
func Entire() Interval { return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)} }

// New returns the interval [lo, hi]. If lo > hi or either bound is NaN,
// it returns the empty interval.
func New(lo, hi float64) Interval {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return Empty()
	}
	return Interval{Lo: lo, Hi: hi}
}

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval { return New(v, v) }

// IsEmpty reports whether iv contains no values.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi || math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) }

// IsEntire reports whether iv is the whole real line.
func (iv Interval) IsEntire() bool {
	return math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1)
}

// IsPoint reports whether iv contains exactly one value.
func (iv Interval) IsPoint() bool { return !iv.IsEmpty() && iv.Lo == iv.Hi }

// IsBounded reports whether both endpoints are finite.
func (iv Interval) IsBounded() bool {
	return !iv.IsEmpty() && !math.IsInf(iv.Lo, 0) && !math.IsInf(iv.Hi, 0)
}

// Width returns Hi-Lo, 0 for empty intervals and +Inf for unbounded ones.
func (iv Interval) Width() float64 {
	if iv.IsEmpty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Mid returns the midpoint of the interval. For half-unbounded intervals
// it returns the finite endpoint; for the entire line it returns 0; for
// empty intervals it returns NaN.
func (iv Interval) Mid() float64 {
	switch {
	case iv.IsEmpty():
		return math.NaN()
	case iv.IsEntire():
		return 0
	case math.IsInf(iv.Lo, -1):
		return iv.Hi
	case math.IsInf(iv.Hi, 1):
		return iv.Lo
	default:
		return iv.Lo + (iv.Hi-iv.Lo)/2
	}
}

// Contains reports whether v lies in iv.
func (iv Interval) Contains(v float64) bool {
	return !iv.IsEmpty() && !math.IsNaN(v) && iv.Lo <= v && v <= iv.Hi
}

// ContainsInterval reports whether every value of o lies in iv.
func (iv Interval) ContainsInterval(o Interval) bool {
	if o.IsEmpty() {
		return true
	}
	return !iv.IsEmpty() && iv.Lo <= o.Lo && o.Hi <= iv.Hi
}

// Intersect returns the intersection of iv and o.
func (iv Interval) Intersect(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Empty()
	}
	return New(math.Max(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi))
}

// Intersects reports whether iv and o share at least one value.
func (iv Interval) Intersects(o Interval) bool { return !iv.Intersect(o).IsEmpty() }

// Hull returns the smallest interval containing both iv and o.
func (iv Interval) Hull(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return New(math.Min(iv.Lo, o.Lo), math.Max(iv.Hi, o.Hi))
}

// Equal reports exact equality (all empty intervals are equal).
func (iv Interval) Equal(o Interval) bool {
	if iv.IsEmpty() && o.IsEmpty() {
		return true
	}
	return iv.Lo == o.Lo && iv.Hi == o.Hi
}

// ApproxEqual reports equality of both bounds within eps.
func (iv Interval) ApproxEqual(o Interval, eps float64) bool {
	if iv.IsEmpty() && o.IsEmpty() {
		return true
	}
	if iv.IsEmpty() != o.IsEmpty() {
		return false
	}
	return closeEnough(iv.Lo, o.Lo, eps) && closeEnough(iv.Hi, o.Hi, eps)
}

func closeEnough(a, b, eps float64) bool {
	if a == b { // covers equal infinities
		return true
	}
	return math.Abs(a-b) <= eps
}

// Clamp returns v moved to the nearest value inside iv. It returns NaN
// for empty intervals.
func (iv Interval) Clamp(v float64) float64 {
	if iv.IsEmpty() {
		return math.NaN()
	}
	if v < iv.Lo {
		return iv.Lo
	}
	if v > iv.Hi {
		return iv.Hi
	}
	return v
}

// String formats the interval as [lo, hi], ∅ for empty.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "∅"
	}
	if iv.IsPoint() {
		return fmt.Sprintf("[%g]", iv.Lo)
	}
	return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi)
}

// Neg returns {-x : x ∈ iv}.
func (iv Interval) Neg() Interval {
	if iv.IsEmpty() {
		return Empty()
	}
	return Interval{Lo: -iv.Hi, Hi: -iv.Lo}
}

// Add returns the interval sum {x+y : x ∈ iv, y ∈ o}.
func (iv Interval) Add(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Empty()
	}
	return New(addLo(iv.Lo, o.Lo), addHi(iv.Hi, o.Hi))
}

// Sub returns {x-y : x ∈ iv, y ∈ o}.
func (iv Interval) Sub(o Interval) Interval { return iv.Add(o.Neg()) }

// addLo/addHi compute sums resolving Inf + (-Inf) conservatively toward
// the respective bound direction (that indeterminate form only arises
// from unbounded operands, where the conservative answer is unbounded).
func addLo(a, b float64) float64 {
	s := a + b
	if math.IsNaN(s) {
		return math.Inf(-1)
	}
	return s
}

func addHi(a, b float64) float64 {
	s := a + b
	if math.IsNaN(s) {
		return math.Inf(1)
	}
	return s
}

// Mul returns {x*y : x ∈ iv, y ∈ o}.
func (iv Interval) Mul(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Empty()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range [4]float64{
		mulBound(iv.Lo, o.Lo), mulBound(iv.Lo, o.Hi),
		mulBound(iv.Hi, o.Lo), mulBound(iv.Hi, o.Hi),
	} {
		lo = math.Min(lo, p)
		hi = math.Max(hi, p)
	}
	return New(lo, hi)
}

// mulBound multiplies endpoint values treating 0 * ±Inf as 0 (the
// correct set-theoretic result for closed interval endpoints).
func mulBound(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a * b
}

// Div returns a superset of {x/y : x ∈ iv, y ∈ o, y ≠ 0}. When o spans
// zero strictly the result is the hull of the two unbounded pieces,
// i.e. Entire unless iv is empty.
func (iv Interval) Div(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Empty()
	}
	if o.Lo == 0 && o.Hi == 0 {
		return Empty() // division by exactly zero: no valid y
	}
	if o.Contains(0) {
		if iv.Lo == 0 && iv.Hi == 0 {
			return Point(0)
		}
		if o.Lo == 0 {
			return iv.divPosHalfLine(o.Hi)
		}
		if o.Hi == 0 {
			return iv.divNegHalfLine(o.Lo)
		}
		// o strictly spans zero: hull of both branches is the whole line.
		return Entire()
	}
	// o does not contain zero: endpoint quotients bound the result, and
	// computing them directly (instead of via Inv) avoids double rounding.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, q := range [4]float64{
		divBound(iv.Lo, o.Lo), divBound(iv.Lo, o.Hi),
		divBound(iv.Hi, o.Lo), divBound(iv.Hi, o.Hi),
	} {
		lo = math.Min(lo, q)
		hi = math.Max(hi, q)
	}
	return New(lo, hi)
}

// divPosHalfLine returns a superset of {x/y : x ∈ iv, 0 < y ≤ hi}.
// The quotients are computed directly from the endpoints with outward
// rounding — the previous formulation, iv.Mul([1/hi, +Inf]), rounded
// twice (once for 1/hi, once for the product) and could produce a lower
// bound strictly above the true infimum x/hi.
func (iv Interval) divPosHalfLine(hi float64) Interval {
	switch {
	case iv.Lo >= 0:
		// x ≥ 0: infimum at the smallest x over the largest y; as y→0⁺
		// the quotient grows without bound.
		return Interval{Lo: divDown(iv.Lo, hi), Hi: math.Inf(1)}
	case iv.Hi <= 0:
		// x ≤ 0: supremum at the largest x (closest to 0) over the
		// largest y; as y→0⁺ the quotient falls without bound.
		return Interval{Lo: math.Inf(-1), Hi: divUp(iv.Hi, hi)}
	default:
		// iv spans zero strictly: both unbounded directions occur.
		return Entire()
	}
}

// divNegHalfLine returns a superset of {x/y : x ∈ iv, lo ≤ y < 0}.
func (iv Interval) divNegHalfLine(lo float64) Interval {
	switch {
	case iv.Lo >= 0:
		// x ≥ 0 over y < 0: quotients are ≤ 0, supremum at x=iv.Lo,
		// y=lo (largest magnitudes of y, smallest x).
		return Interval{Lo: math.Inf(-1), Hi: divUp(iv.Lo, lo)}
	case iv.Hi <= 0:
		// x ≤ 0 over y < 0: quotients are ≥ 0, infimum at x=iv.Hi, y=lo.
		return Interval{Lo: divDown(iv.Hi, lo), Hi: math.Inf(1)}
	default:
		return Entire()
	}
}

// divDown returns a/b rounded toward -Inf: a lower bound on the real
// quotient. The FMA residual a - q·b is computed exactly, so the nudge
// fires only when round-to-nearest actually rounded past the real
// value; exact quotients stay exact.
func divDown(a, b float64) float64 {
	q := divBound(a, b)
	if q == 0 || math.IsInf(q, 0) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return q
	}
	res := -math.FMA(q, b, -a) // a - q*b
	if res == 0 || (res > 0) == (b > 0) {
		return q // exact, or the real quotient lies above q
	}
	return math.Nextafter(q, math.Inf(-1))
}

// divUp returns a/b rounded toward +Inf: an upper bound on the real
// quotient.
func divUp(a, b float64) float64 {
	q := divBound(a, b)
	if q == 0 || math.IsInf(q, 0) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return q
	}
	res := -math.FMA(q, b, -a) // a - q*b
	if res == 0 || (res > 0) != (b > 0) {
		return q // exact, or the real quotient lies below q
	}
	return math.Nextafter(q, math.Inf(1))
}

// divBound divides endpoint values treating 0/±Inf indeterminacies in
// the set sense (0 divided by anything nonzero is 0; finite/Inf is 0).
func divBound(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	if math.IsInf(b, 0) {
		if math.IsInf(a, 0) {
			// Inf/Inf endpoint: sign-preserving unbounded bound.
			if (a > 0) == (b > 0) {
				return math.Inf(1)
			}
			return math.Inf(-1)
		}
		return 0
	}
	return a / b
}

// Inv returns a superset of {1/y : y ∈ iv, y ≠ 0} for intervals not
// containing zero in their interior. For intervals spanning zero it
// returns Entire.
func (iv Interval) Inv() Interval {
	if iv.IsEmpty() {
		return Empty()
	}
	if iv.Lo == 0 && iv.Hi == 0 {
		return Empty()
	}
	if iv.Contains(0) {
		if iv.Lo == 0 {
			return New(1/iv.Hi, math.Inf(1))
		}
		if iv.Hi == 0 {
			return New(math.Inf(-1), 1/iv.Lo)
		}
		return Entire()
	}
	return New(invBound(iv.Hi), invBound(iv.Lo))
}

func invBound(v float64) float64 {
	if math.IsInf(v, 0) {
		return 0
	}
	return 1 / v
}

// Sqr returns {x² : x ∈ iv}.
func (iv Interval) Sqr() Interval {
	if iv.IsEmpty() {
		return Empty()
	}
	a, b := iv.Lo*iv.Lo, iv.Hi*iv.Hi
	if iv.Contains(0) {
		return New(0, math.Max(a, b))
	}
	return New(math.Min(a, b), math.Max(a, b))
}

// PowInt returns {xⁿ : x ∈ iv} for integer n. Negative n composes with
// Inv. n == 0 yields [1,1] (by convention 0⁰ = 1 here).
func (iv Interval) PowInt(n int) Interval {
	if iv.IsEmpty() {
		return Empty()
	}
	if n == 0 {
		return Point(1)
	}
	if n < 0 {
		return iv.PowInt(-n).Inv()
	}
	if n%2 == 0 {
		// Even power: like Sqr composed.
		a, b := powBound(iv.Lo, n), powBound(iv.Hi, n)
		if iv.Contains(0) {
			return New(0, math.Max(a, b))
		}
		return New(math.Min(a, b), math.Max(a, b))
	}
	// Odd power is monotone increasing.
	return New(powBound(iv.Lo, n), powBound(iv.Hi, n))
}

func powBound(v float64, n int) float64 {
	r := math.Pow(v, float64(n))
	return r
}

// Sqrt returns {√x : x ∈ iv, x ≥ 0}; empty if iv has no non-negative part.
func (iv Interval) Sqrt() Interval {
	nn := iv.Intersect(New(0, math.Inf(1)))
	if nn.IsEmpty() {
		return Empty()
	}
	return New(math.Sqrt(nn.Lo), math.Sqrt(nn.Hi))
}

// Abs returns {|x| : x ∈ iv}.
func (iv Interval) Abs() Interval {
	if iv.IsEmpty() {
		return Empty()
	}
	if iv.Lo >= 0 {
		return iv
	}
	if iv.Hi <= 0 {
		return iv.Neg()
	}
	return New(0, math.Max(-iv.Lo, iv.Hi))
}

// Min returns {min(x,y) : x ∈ iv, y ∈ o}.
func (iv Interval) Min(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Empty()
	}
	return New(math.Min(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi))
}

// Max returns {max(x,y) : x ∈ iv, y ∈ o}.
func (iv Interval) Max(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Empty()
	}
	return New(math.Max(iv.Lo, o.Lo), math.Max(iv.Hi, o.Hi))
}

// Exp returns {eˣ : x ∈ iv}.
func (iv Interval) Exp() Interval {
	if iv.IsEmpty() {
		return Empty()
	}
	return New(math.Exp(iv.Lo), math.Exp(iv.Hi))
}

// Log returns {ln x : x ∈ iv, x > 0}; empty if iv has no positive part.
func (iv Interval) Log() Interval {
	pos := iv.Intersect(New(0, math.Inf(1)))
	if pos.IsEmpty() || pos.Hi == 0 {
		return Empty()
	}
	lo := math.Inf(-1)
	if pos.Lo > 0 {
		lo = math.Log(pos.Lo)
	}
	return New(lo, math.Log(pos.Hi))
}

// Sample returns n values spread across the interval (endpoints
// included when n ≥ 2). Unbounded endpoints are clamped to ±clampAt.
// It is used by tests and by designers probing a feasible window.
func (iv Interval) Sample(n int, clampAt float64) []float64 {
	if iv.IsEmpty() || n <= 0 {
		return nil
	}
	lo, hi := iv.Lo, iv.Hi
	if math.IsInf(lo, -1) {
		lo = -clampAt
	}
	if math.IsInf(hi, 1) {
		hi = clampAt
	}
	if n == 1 || lo == hi {
		return []float64{lo + (hi-lo)/2}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
