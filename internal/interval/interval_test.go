package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewNormalizesInvalid(t *testing.T) {
	cases := []struct {
		lo, hi float64
	}{
		{1, 0},
		{math.NaN(), 1},
		{1, math.NaN()},
		{math.NaN(), math.NaN()},
	}
	for _, c := range cases {
		if iv := New(c.lo, c.hi); !iv.IsEmpty() {
			t.Errorf("New(%v, %v) = %v, want empty", c.lo, c.hi, iv)
		}
	}
}

func TestBasicPredicates(t *testing.T) {
	iv := New(1, 3)
	if iv.IsEmpty() {
		t.Fatal("[1,3] reported empty")
	}
	if !iv.Contains(1) || !iv.Contains(3) || !iv.Contains(2) {
		t.Error("[1,3] should contain endpoints and midpoint")
	}
	if iv.Contains(0.999) || iv.Contains(3.001) {
		t.Error("[1,3] contains values outside bounds")
	}
	if iv.Contains(math.NaN()) {
		t.Error("interval should not contain NaN")
	}
	if !Point(5).IsPoint() {
		t.Error("Point(5) not a point")
	}
	if Point(5).Width() != 0 {
		t.Error("point width should be 0")
	}
	if New(1, 3).Width() != 2 {
		t.Error("width of [1,3] should be 2")
	}
	if !Entire().IsEntire() {
		t.Error("Entire not entire")
	}
	if Entire().IsBounded() || !New(0, 1).IsBounded() {
		t.Error("IsBounded misclassifies")
	}
}

func TestMid(t *testing.T) {
	if m := New(2, 4).Mid(); m != 3 {
		t.Errorf("Mid [2,4] = %v", m)
	}
	if m := Entire().Mid(); m != 0 {
		t.Errorf("Mid entire = %v", m)
	}
	if m := New(math.Inf(-1), 7).Mid(); m != 7 {
		t.Errorf("Mid (-inf,7] = %v", m)
	}
	if m := New(7, math.Inf(1)).Mid(); m != 7 {
		t.Errorf("Mid [7,inf) = %v", m)
	}
	if !math.IsNaN(Empty().Mid()) {
		t.Error("Mid of empty should be NaN")
	}
}

func TestIntersectHull(t *testing.T) {
	a, b := New(0, 5), New(3, 8)
	if got := a.Intersect(b); !got.Equal(New(3, 5)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Hull(b); !got.Equal(New(0, 8)) {
		t.Errorf("Hull = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("overlapping intervals reported disjoint")
	}
	if New(0, 1).Intersects(New(2, 3)) {
		t.Error("disjoint intervals reported overlapping")
	}
	// touching endpoints intersect in a point
	if got := New(0, 2).Intersect(New(2, 4)); !got.Equal(Point(2)) {
		t.Errorf("touching Intersect = %v", got)
	}
	if got := Empty().Hull(New(1, 2)); !got.Equal(New(1, 2)) {
		t.Errorf("Hull with empty = %v", got)
	}
	if got := New(1, 2).Intersect(Empty()); !got.IsEmpty() {
		t.Errorf("Intersect with empty = %v", got)
	}
}

func TestContainsInterval(t *testing.T) {
	if !New(0, 10).ContainsInterval(New(2, 3)) {
		t.Error("[0,10] should contain [2,3]")
	}
	if New(0, 10).ContainsInterval(New(2, 30)) {
		t.Error("[0,10] should not contain [2,30]")
	}
	if !New(0, 1).ContainsInterval(Empty()) {
		t.Error("anything contains empty")
	}
	if Empty().ContainsInterval(New(0, 1)) {
		t.Error("empty contains nothing nonempty")
	}
}

func TestArithmeticExact(t *testing.T) {
	cases := []struct {
		name string
		got  Interval
		want Interval
	}{
		{"add", New(1, 2).Add(New(10, 20)), New(11, 22)},
		{"sub", New(1, 2).Sub(New(10, 20)), New(-19, -8)},
		{"neg", New(-3, 5).Neg(), New(-5, 3)},
		{"mul++", New(2, 3).Mul(New(4, 5)), New(8, 15)},
		{"mul+-", New(2, 3).Mul(New(-5, -4)), New(-15, -8)},
		{"mul0", New(-1, 2).Mul(New(-3, 4)), New(-6, 8)},
		{"div", New(8, 16).Div(New(2, 4)), New(2, 8)},
		{"divneg", New(8, 16).Div(New(-4, -2)), New(-8, -2)},
		{"sqr", New(-2, 3).Sqr(), New(0, 9)},
		{"sqrneg", New(-3, -2).Sqr(), New(4, 9)},
		{"pow3", New(-2, 3).PowInt(3), New(-8, 27)},
		{"pow2", New(-2, 3).PowInt(2), New(0, 9)},
		{"pow0", New(-2, 3).PowInt(0), Point(1)},
		{"sqrt", New(4, 9).Sqrt(), New(2, 3)},
		{"sqrtclip", New(-4, 9).Sqrt(), New(0, 3)},
		{"abs", New(-4, 3).Abs(), New(0, 4)},
		{"absneg", New(-4, -3).Abs(), New(3, 4)},
		{"min", New(1, 5).Min(New(3, 7)), New(1, 5)},
		{"max", New(1, 5).Max(New(3, 7)), New(3, 7)},
	}
	for _, c := range cases {
		if !c.got.ApproxEqual(c.want, 1e-12) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestDivByZeroSpan(t *testing.T) {
	if got := New(1, 2).Div(New(-1, 1)); !got.IsEntire() {
		t.Errorf("div by zero-spanning interval = %v, want entire", got)
	}
	if got := New(1, 2).Div(Point(0)); !got.IsEmpty() {
		t.Errorf("div by {0} = %v, want empty", got)
	}
	if got := New(1, 2).Div(New(0, 4)); got.Hi != math.Inf(1) || got.Lo != 0.25 {
		t.Errorf("div by [0,4] = %v, want [0.25, +inf)", got)
	}
	if got := Point(0).Div(New(-1, 1)); !got.Equal(Point(0)) {
		t.Errorf("0 / spanning = %v, want [0]", got)
	}
}

func TestInv(t *testing.T) {
	if got := New(2, 4).Inv(); !got.ApproxEqual(New(0.25, 0.5), 1e-15) {
		t.Errorf("Inv [2,4] = %v", got)
	}
	if got := New(-4, -2).Inv(); !got.ApproxEqual(New(-0.5, -0.25), 1e-15) {
		t.Errorf("Inv [-4,-2] = %v", got)
	}
	if got := New(-1, 1).Inv(); !got.IsEntire() {
		t.Errorf("Inv spanning zero = %v", got)
	}
	if got := Point(0).Inv(); !got.IsEmpty() {
		t.Errorf("Inv {0} = %v", got)
	}
	if got := New(0, 2).Inv(); got.Lo != 0.5 || !math.IsInf(got.Hi, 1) {
		t.Errorf("Inv [0,2] = %v", got)
	}
}

func TestExpLog(t *testing.T) {
	if got := New(0, 1).Exp(); !got.ApproxEqual(New(1, math.E), 1e-12) {
		t.Errorf("Exp [0,1] = %v", got)
	}
	if got := New(1, math.E).Log(); !got.ApproxEqual(New(0, 1), 1e-12) {
		t.Errorf("Log = %v", got)
	}
	if got := New(-5, -1).Log(); !got.IsEmpty() {
		t.Errorf("Log negative = %v, want empty", got)
	}
	if got := New(0, 1).Log(); !math.IsInf(got.Lo, -1) || got.Hi != 0 {
		t.Errorf("Log [0,1] = %v", got)
	}
}

func TestEmptyPropagates(t *testing.T) {
	e, v := Empty(), New(1, 2)
	ops := []Interval{
		e.Add(v), v.Add(e), e.Mul(v), v.Mul(e), e.Div(v), v.Div(e),
		e.Sub(v), e.Neg(), e.Sqr(), e.Sqrt(), e.Abs(), e.Exp(), e.Log(),
		e.Min(v), v.Max(e), e.PowInt(3),
	}
	for i, r := range ops {
		if !r.IsEmpty() {
			t.Errorf("op %d on empty produced %v", i, r)
		}
	}
}

func TestClamp(t *testing.T) {
	iv := New(1, 3)
	if iv.Clamp(0) != 1 || iv.Clamp(5) != 3 || iv.Clamp(2) != 2 {
		t.Error("Clamp misbehaves")
	}
	if !math.IsNaN(Empty().Clamp(1)) {
		t.Error("Clamp on empty should be NaN")
	}
}

func TestSample(t *testing.T) {
	s := New(0, 10).Sample(11, 1e6)
	if len(s) != 11 || s[0] != 0 || s[10] != 10 || s[5] != 5 {
		t.Errorf("Sample = %v", s)
	}
	if s := New(0, 10).Sample(1, 1e6); len(s) != 1 || s[0] != 5 {
		t.Errorf("Sample n=1 = %v", s)
	}
	if s := Empty().Sample(3, 1e6); s != nil {
		t.Errorf("Sample empty = %v", s)
	}
	s = Entire().Sample(3, 100)
	if s[0] != -100 || s[2] != 100 {
		t.Errorf("Sample entire clamped = %v", s)
	}
}

func TestString(t *testing.T) {
	if got := New(1, 2).String(); got != "[1, 2]" {
		t.Errorf("String = %q", got)
	}
	if got := Point(3).String(); got != "[3]" {
		t.Errorf("point String = %q", got)
	}
	if got := Empty().String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
}

// --- property-based tests ----------------------------------------------

// arb builds a bounded interval from two arbitrary floats.
func arb(a, b float64) Interval {
	a = sanitize(a)
	b = sanitize(b)
	return New(math.Min(a, b), math.Max(a, b))
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	// keep magnitudes small enough that products stay finite
	return math.Mod(v, 1e6)
}

func pick(iv Interval, t float64) float64 {
	t = math.Abs(math.Mod(sanitize(t), 1))
	return iv.Lo + t*(iv.Hi-iv.Lo)
}

// containsTol is Contains with a relative tolerance: without directed
// rounding an endpoint result can miss the computed bound by an ulp.
func containsTol(iv Interval, v float64) bool {
	if iv.Contains(v) {
		return true
	}
	eps := 1e-9 * math.Max(1, math.Abs(v))
	return New(iv.Lo-eps, iv.Hi+eps).Contains(v)
}

func TestQuickAddContainment(t *testing.T) {
	f := func(a, b, c, d, t1, t2 float64) bool {
		A, B := arb(a, b), arb(c, d)
		x, y := pick(A, t1), pick(B, t2)
		return containsTol(A.Add(B), x+y)
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func TestQuickMulContainment(t *testing.T) {
	f := func(a, b, c, d, t1, t2 float64) bool {
		A, B := arb(a, b), arb(c, d)
		x, y := pick(A, t1), pick(B, t2)
		return containsTol(A.Mul(B), x*y)
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func TestQuickSubContainment(t *testing.T) {
	f := func(a, b, c, d, t1, t2 float64) bool {
		A, B := arb(a, b), arb(c, d)
		x, y := pick(A, t1), pick(B, t2)
		return containsTol(A.Sub(B), x-y)
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func TestQuickDivContainment(t *testing.T) {
	f := func(a, b, c, d, t1, t2 float64) bool {
		A, B := arb(a, b), arb(c, d)
		x, y := pick(A, t1), pick(B, t2)
		if y == 0 {
			return true
		}
		q := x / y
		if math.IsInf(q, 0) || math.IsNaN(q) {
			return true
		}
		return containsTol(A.Div(B), q)
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func TestQuickSqrContainment(t *testing.T) {
	f := func(a, b, t1 float64) bool {
		A := arb(a, b)
		x := pick(A, t1)
		return containsTol(A.Sqr(), x*x)
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectIsSubset(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		A, B := arb(a, b), arb(c, d)
		I := A.Intersect(B)
		return A.ContainsInterval(I) && B.ContainsInterval(I)
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func TestQuickHullContainsBoth(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		A, B := arb(a, b), arb(c, d)
		H := A.Hull(B)
		return H.ContainsInterval(A) && H.ContainsInterval(B)
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func TestQuickHullCommutes(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		A, B := arb(a, b), arb(c, d)
		return A.Hull(B).Equal(B.Hull(A)) && A.Intersect(B).Equal(B.Intersect(A))
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func TestQuickNegInvolution(t *testing.T) {
	f := func(a, b float64) bool {
		A := arb(a, b)
		return A.Neg().Neg().Equal(A)
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func TestQuickAbsNonNegative(t *testing.T) {
	f := func(a, b float64) bool {
		A := arb(a, b)
		r := A.Abs()
		return r.IsEmpty() || r.Lo >= 0
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func TestQuickWidthNonNegative(t *testing.T) {
	f := func(a, b float64) bool {
		return arb(a, b).Width() >= 0
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

func TestDivBoundInfinities(t *testing.T) {
	// Inf numerator with finite denominator keeps the sign.
	if got := New(1, math.Inf(1)).Div(New(2, 4)); !math.IsInf(got.Hi, 1) || got.Lo != 0.25 {
		t.Errorf("[1,inf)/[2,4] = %v", got)
	}
	// Finite over unbounded denominator shrinks toward zero.
	got := New(4, 8).Div(New(2, math.Inf(1)))
	if got.Lo != 0 || got.Hi != 4 {
		t.Errorf("[4,8]/[2,inf) = %v", got)
	}
	// Unbounded over unbounded: stays unbounded, sign-consistent.
	got = New(1, math.Inf(1)).Div(New(1, math.Inf(1)))
	if !math.IsInf(got.Hi, 1) || got.Lo != 0 {
		t.Errorf("[1,inf)/[1,inf) = %v", got)
	}
}

func TestApproxEqualMixedEmpty(t *testing.T) {
	if Empty().ApproxEqual(New(0, 1), 1) {
		t.Error("empty vs non-empty should differ")
	}
	if !New(math.Inf(-1), 0).ApproxEqual(New(math.Inf(-1), 0), 1e-9) {
		t.Error("equal unbounded intervals should match")
	}
}

func TestWidthUnbounded(t *testing.T) {
	if w := Entire().Width(); !math.IsInf(w, 1) {
		t.Errorf("entire width = %v", w)
	}
}

func TestPowIntNegative(t *testing.T) {
	got := New(2, 4).PowInt(-2)
	if !got.ApproxEqual(New(1.0/16, 1.0/4), 1e-12) {
		t.Errorf("[2,4]^-2 = %v", got)
	}
	got = New(2, 4).PowInt(-1)
	if !got.ApproxEqual(New(0.25, 0.5), 1e-12) {
		t.Errorf("[2,4]^-1 = %v", got)
	}
}

// quickCfg pins the property-test source: seeded generation keeps runs
// reproducible and independent of test order under -shuffle. A zero
// maxCount keeps testing/quick's default.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(1))}
}
