package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// FailoverTarget fans one logical target over several adpmd base URLs —
// a leader and its warm standbys. Requests go to the current base; a
// transport error advances the rotation (compare-and-swap, so racing
// workers move it exactly once per failure) and returns the error for
// the caller's retry layer to re-issue against the next base. Status
// failures do not rotate: a not-yet-promoted follower answers 503, and
// the right move is to retry in place until its promotion lands — which
// the retry layer's 503 handling does.
type FailoverTarget struct {
	// Bases are the server roots in preference order, e.g.
	// ["http://127.0.0.1:8080", "http://127.0.0.1:8081"].
	Bases []string
	// Client is shared by all bases; nil means each request uses the
	// HTTPTarget default (30s timeout).
	Client *http.Client

	cur       atomic.Int64
	rotations atomic.Uint64
}

func (t *FailoverTarget) target(i int64) *HTTPTarget {
	return &HTTPTarget{Base: t.Bases[int(i%int64(len(t.Bases)))], Client: t.Client}
}

// Do issues the request against the current base, rotating on transport
// error.
func (t *FailoverTarget) Do(method, path string, body []byte) (*Response, error) {
	i := t.cur.Load()
	resp, err := t.target(i).Do(method, path, body)
	if err != nil && t.cur.CompareAndSwap(i, i+1) {
		t.rotations.Add(1)
	}
	return resp, err
}

// Stream opens the SSE feed against the current base.
func (t *FailoverTarget) Stream(path string) (io.ReadCloser, int, error) {
	return t.target(t.cur.Load()).Stream(path)
}

// Rotations reports how many times a transport error advanced the
// rotation — the run's observed failover count.
func (t *FailoverTarget) Rotations() uint64 { return t.rotations.Load() }

// WaitReady polls every base round-robin until any one answers
// GET /readyz with 200, and parks the rotation on it. In a two-node
// pair only the leader is ready (the follower reports 503 until
// promoted), so this also selects the right starting base.
func (t *FailoverTarget) WaitReady(timeout time.Duration) error {
	if len(t.Bases) == 0 {
		return fmt.Errorf("loadgen: failover target has no bases")
	}
	deadline := time.Now().Add(timeout)
	var last error
	for {
		for i := range t.Bases {
			resp, err := t.target(int64(i)).Do(http.MethodGet, "/readyz", nil)
			if err == nil && resp.Status == http.StatusOK {
				t.cur.Store(int64(i))
				return nil
			}
			if err != nil {
				last = err
			} else {
				last = fmt.Errorf("%s: readyz status %d", t.Bases[i], resp.Status)
			}
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("loadgen: no base ready after %v: %v", timeout, last)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
