// Package loadgen is the deterministic load-generation and
// capacity-testing subsystem for the ADPM server (cmd/adpmload): it
// derives realistic designer workloads from seeded TeamSim runs,
// replays them against a live adpmd or an in-process server.Handler in
// open-loop (fixed arrival rate) or closed-loop (N concurrent clients)
// mode, records per-endpoint latency in log-bucketed HDR-style
// histograms (stats.LogHist), and cross-checks every acknowledged
// batch against a single-threaded engine oracle — making the load tool
// a correctness instrument as well as a capacity one (the CSM-model
// verification idea: concurrent executions validated against a
// sequential specification).
//
// Determinism contract: a Workload is a pure function of its fields.
// BuildPrograms(w) twice yields identical programs — identical request
// bodies, idempotency keys, and injected retries — so two hermetic
// runs with the same seed issue identical request sequences and reach
// identical oracle-checked final session states. Wall-clock latency is
// the only nondeterministic output.
package loadgen

import (
	"fmt"
	"math/rand"

	"repro/internal/dpm"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/teamsim"
)

// Workload defaults.
const (
	DefaultBatchSize     = 8
	DefaultStateEvery    = 4
	DefaultHistoryPool   = 4
	DefaultOpsPerSession = 48
)

// Workload parameterizes a deterministic client-program set.
type Workload struct {
	// Scenario is a built-in scenario name (simplified, receiver,
	// sensor).
	Scenario string
	// Mode is the transition mode: "ADPM" (default) or "conventional".
	Mode string
	// Seed drives every stochastic choice: the history pool, each
	// client's history picks, retry injection, and delete decisions.
	Seed int64
	// Clients is the number of client programs to derive.
	Clients int
	// SessionsPerClient is how many sessions each client program runs
	// in sequence; 0 means 1.
	SessionsPerClient int
	// BatchSize is the number of operations per POST /ops batch; 0
	// means DefaultBatchSize.
	BatchSize int
	// StateEvery inserts a GET /state after every N-th batch; 0 means
	// DefaultStateEvery, negative disables intermediate reads. A final
	// state read always closes the session (the oracle compares it).
	StateEvery int
	// RetryFrac is the probability (0..1) that a keyed batch is
	// immediately re-sent with the same key and body — exercising the
	// idempotent-replay path under load.
	RetryFrac float64
	// DeleteFrac is the probability (0..1) that a session ends with
	// DELETE after its final state read.
	DeleteFrac float64
	// HistoryPool is how many distinct TeamSim histories the programs
	// draw from; 0 means DefaultHistoryPool.
	HistoryPool int
	// OpsPerSession caps the operations drawn from a history per
	// session (also the TeamSim op budget when generating the pool); 0
	// means DefaultOpsPerSession.
	OpsPerSession int
	// Subscribers attaches this many live SSE notification readers to
	// every created session, measuring publish→deliver latency per
	// frame (the "deliver" pseudo-endpoint). Subscribers only read, so
	// the deterministic request sequences are unchanged; 0 disables.
	Subscribers int
}

func (w Workload) withDefaults() Workload {
	if w.Mode == "" {
		w.Mode = "ADPM"
	}
	if w.Clients <= 0 {
		w.Clients = 1
	}
	if w.SessionsPerClient <= 0 {
		w.SessionsPerClient = 1
	}
	if w.BatchSize <= 0 {
		w.BatchSize = DefaultBatchSize
	}
	if w.StateEvery == 0 {
		w.StateEvery = DefaultStateEvery
	}
	if w.HistoryPool <= 0 {
		w.HistoryPool = DefaultHistoryPool
	}
	if w.OpsPerSession <= 0 {
		w.OpsPerSession = DefaultOpsPerSession
	}
	return w
}

// StepKind classifies one program step.
type StepKind int

// Program step kinds, mapping 1:1 onto the adpmd API.
const (
	StepCreate StepKind = iota
	StepOps
	StepState
	StepDelete
)

// String names the step kind (also the latency-endpoint label).
func (k StepKind) String() string {
	switch k {
	case StepCreate:
		return "create"
	case StepOps:
		return "ops"
	case StepState:
		return "state"
	case StepDelete:
		return "delete"
	}
	return fmt.Sprintf("StepKind(%d)", int(k))
}

// Step is one HTTP request of a client program.
type Step struct {
	Kind StepKind
	// Ops is the batch in wire form (StepOps); EngineOps is its
	// engine-level twin, carried so the oracle replays acked batches
	// without a decode round-trip.
	Ops       []server.WireOp
	EngineOps []dpm.Operation
	// Key is the batch's idempotency key (StepOps).
	Key string
	// Retry marks an injected duplicate of the previous keyed batch:
	// the expected outcome is a cached ack with Idempotent-Replay.
	Retry bool
}

// Program is one client's scripted session: a create, a sequence of op
// batches with interleaved state reads and injected retries, a final
// state read, and an optional delete.
type Program struct {
	// Client/Ordinal locate the program: client index and session
	// ordinal within that client.
	Client  int
	Ordinal int
	// Scenario/Mode/MaxOps echo the create request.
	Scenario string
	Mode     string
	MaxOps   int
	Steps    []Step
}

// Requests returns the number of HTTP requests the program issues.
func (p *Program) Requests() int { return len(p.Steps) }

// BuildPrograms derives the full deterministic program set of a
// workload. The history pool is generated first (one seeded TeamSim
// run per entry — the paper's designer teams are the load model, so
// request streams carry realistic operation mixes, not synthetic
// no-ops); each client then scripts its sessions with a client-local
// RNG, so programs are independent of build order and bit-identical
// across calls.
func BuildPrograms(w Workload) ([]Program, error) {
	w = w.withDefaults()
	scn, err := scenario.ByName(w.Scenario)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %v", err)
	}
	mode, err := parseMode(w.Mode)
	if err != nil {
		return nil, err
	}
	pool := make([][]dpm.Operation, w.HistoryPool)
	for i := range pool {
		res, err := teamsim.Run(teamsim.Config{
			Scenario: scn,
			Mode:     mode,
			Seed:     w.Seed + int64(i)*1_000_003,
			MaxOps:   w.OpsPerSession,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: history pool run %d: %v", i, err)
		}
		var ops []dpm.Operation
		for _, tr := range res.Process.History() {
			ops = append(ops, tr.Op)
		}
		pool[i] = ops
	}

	var progs []Program
	for c := 0; c < w.Clients; c++ {
		rng := rand.New(rand.NewSource(w.Seed ^ (int64(c+1) * 0x9E3779B9)))
		for s := 0; s < w.SessionsPerClient; s++ {
			ops := pool[rng.Intn(len(pool))]
			prog := Program{
				Client:   c,
				Ordinal:  s,
				Scenario: w.Scenario,
				Mode:     w.Mode,
				MaxOps:   maxInt(len(ops), 1),
			}
			prog.Steps = append(prog.Steps, Step{Kind: StepCreate})
			batch := 0
			for start := 0; start < len(ops); start += w.BatchSize {
				end := minInt(start+w.BatchSize, len(ops))
				chunk := ops[start:end]
				wire := make([]server.WireOp, len(chunk))
				for i, op := range chunk {
					wire[i] = server.WireFromOperation(op)
				}
				step := Step{
					Kind:      StepOps,
					Ops:       wire,
					EngineOps: chunk,
					Key:       fmt.Sprintf("c%d-s%d-b%d", c, s, batch),
				}
				prog.Steps = append(prog.Steps, step)
				if rng.Float64() < w.RetryFrac {
					dup := step
					dup.Retry = true
					prog.Steps = append(prog.Steps, dup)
				}
				batch++
				if w.StateEvery > 0 && batch%w.StateEvery == 0 {
					prog.Steps = append(prog.Steps, Step{Kind: StepState})
				}
			}
			prog.Steps = append(prog.Steps, Step{Kind: StepState})
			if rng.Float64() < w.DeleteFrac {
				prog.Steps = append(prog.Steps, Step{Kind: StepDelete})
			}
			progs = append(progs, prog)
		}
	}
	return progs, nil
}

// parseMode resolves a workload mode name.
func parseMode(s string) (dpm.Mode, error) {
	switch s {
	case "", "ADPM", "adpm":
		return dpm.ADPM, nil
	case "conventional":
		return dpm.Conventional, nil
	}
	return dpm.ADPM, fmt.Errorf("loadgen: unknown mode %q", s)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
