package loadgen

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/trace"
)

func testWorkload() Workload {
	return Workload{
		Scenario:          "simplified",
		Mode:              "ADPM",
		Seed:              7,
		Clients:           4,
		SessionsPerClient: 2,
		BatchSize:         5,
		StateEvery:        2,
		RetryFrac:         0.3,
		DeleteFrac:        0.25,
		HistoryPool:       3,
		OpsPerSession:     24,
	}
}

// runHermetic executes one full closed-loop fixed-work pass of the
// workload against a fresh in-process server.
func runHermetic(t *testing.T, w Workload, clients int, rec *trace.Recorder) *RunResult {
	t.Helper()
	progs, err := BuildPrograms(w)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Open(server.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	r := &Runner{
		Target:   &HandlerTarget{Handler: srv.Handler()},
		Programs: progs,
		Seed:     w.Seed,
		Tracer:   rec,
	}
	res, err := r.Run([]Phase{{Name: "steady", Clients: clients}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBuildProgramsDeterministic(t *testing.T) {
	w := testWorkload()
	a, err := BuildPrograms(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPrograms(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BuildPrograms is not deterministic for identical workloads")
	}
	if len(a) != w.Clients*w.SessionsPerClient {
		t.Fatalf("got %d programs, want %d", len(a), w.Clients*w.SessionsPerClient)
	}
	retries := 0
	for _, p := range a {
		if p.Steps[0].Kind != StepCreate {
			t.Fatalf("program does not start with create")
		}
		if last := p.Steps[len(p.Steps)-1]; last.Kind != StepState && last.Kind != StepDelete {
			t.Fatalf("program ends with %v, want state or delete", last.Kind)
		}
		for _, s := range p.Steps {
			if s.Retry {
				retries++
				if s.Key == "" {
					t.Fatal("injected retry without idempotency key")
				}
			}
		}
	}
	if retries == 0 {
		t.Fatal("RetryFrac 0.3 injected no retries")
	}
	// A different seed must change the program set.
	w2 := w
	w2.Seed = 8
	c, err := BuildPrograms(w2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical programs")
	}
}

// finalStates keys each session's served final state by (client,
// ordinal) with the server-assigned id normalized away, so two runs
// are comparable even though shard placement differs.
func finalStates(t *testing.T, res *RunResult) map[[2]int]string {
	t.Helper()
	out := map[[2]int]string{}
	for _, st := range res.Sessions {
		if st.CreateFailed {
			t.Fatalf("session create failed for client %d ordinal %d", st.Program.Client, st.Program.Ordinal)
		}
		var state server.StateResponse
		if err := json.Unmarshal(st.FinalState, &state); err != nil {
			t.Fatalf("final state does not parse: %v", err)
		}
		state.ID = ""
		b, err := json.Marshal(&state)
		if err != nil {
			t.Fatal(err)
		}
		out[[2]int{st.Program.Client, st.Program.Ordinal}] = string(b)
	}
	return out
}

// TestHermeticDeterminism is the tentpole acceptance check: two
// in-process same-seed runs issue identical request sequences and
// reach identical oracle-checked final session states.
func TestHermeticDeterminism(t *testing.T) {
	w := testWorkload()
	res1 := runHermetic(t, w, 4, nil)
	res2 := runHermetic(t, w, 4, nil)

	for _, res := range []*RunResult{res1, res2} {
		oracle, err := CheckOracle(res)
		if err != nil {
			t.Fatal(err)
		}
		if !oracle.OK() {
			t.Fatalf("oracle mismatches: %v", oracle.Mismatches)
		}
		if oracle.Checked != len(res.Sessions) || oracle.Skipped != 0 {
			t.Fatalf("oracle checked %d/%d sessions, skipped %d",
				oracle.Checked, len(res.Sessions), oracle.Skipped)
		}
	}

	s1, s2 := finalStates(t, res1), finalStates(t, res2)
	if len(s1) != len(s2) {
		t.Fatalf("run session counts differ: %d vs %d", len(s1), len(s2))
	}
	for key, state := range s1 {
		if other, ok := s2[key]; !ok {
			t.Fatalf("session %v missing from second run", key)
		} else if state != other {
			t.Fatalf("session %v final state diverged across same-seed runs:\n%s\nvs\n%s", key, state, other)
		}
	}
}

// TestRetryInjectionReplay forces a duplicate send of every keyed
// batch and checks the duplicates all come back as idempotent replays,
// invisible to the oracle.
func TestRetryInjectionReplay(t *testing.T) {
	w := testWorkload()
	w.Clients = 2
	w.SessionsPerClient = 1
	w.RetryFrac = 1.0
	w.DeleteFrac = 0
	res := runHermetic(t, w, 2, nil)

	batches := 0
	for _, st := range res.Sessions {
		batches += len(st.Acked)
	}
	if batches == 0 {
		t.Fatal("no batches acked")
	}
	if res.Replays != uint64(batches) {
		t.Fatalf("replays %d, want one per acked batch (%d)", res.Replays, batches)
	}
	oracle, err := CheckOracle(res)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.OK() {
		t.Fatalf("oracle mismatches under retry injection: %v", oracle.Mismatches)
	}
}

// TestOpenLoopSmoke drives a short open-loop phase and checks the
// arrivals complete and stay oracle-clean.
func TestOpenLoopSmoke(t *testing.T) {
	w := testWorkload()
	w.Clients = 2
	w.SessionsPerClient = 1
	w.RetryFrac = 0
	progs, err := BuildPrograms(w)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Open(server.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	r := &Runner{Target: &HandlerTarget{Handler: srv.Handler()}, Programs: progs, Seed: w.Seed}
	res, err := r.Run([]Phase{{Name: "open", Rate: 50, Duration: 200 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || len(res.Sessions) == 0 {
		t.Fatal("open-loop phase issued no work")
	}
	if res.Phases[0].Mode != "open" {
		t.Fatalf("phase mode %q, want open", res.Phases[0].Mode)
	}
	oracle, err := CheckOracle(res)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.OK() {
		t.Fatalf("oracle mismatches: %v", oracle.Mismatches)
	}
}

// TestRampPhasesAndTrace runs a two-phase ramp with a tracer attached
// and checks each phase emits one load-phase event that validates.
func TestRampPhasesAndTrace(t *testing.T) {
	w := testWorkload()
	w.Clients = 2
	w.SessionsPerClient = 1
	rec := trace.New(trace.Options{})
	progs, err := BuildPrograms(w)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Open(server.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	r := &Runner{Target: &HandlerTarget{Handler: srv.Handler()}, Programs: progs, Seed: w.Seed, Tracer: rec}
	res, err := r.Run([]Phase{
		{Name: "warmup", Clients: 1},
		{Name: "steady", Clients: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(res.Phases))
	}
	var phases int
	var phaseReqs uint64
	for _, e := range rec.Events() {
		if e.Kind == trace.KindLoadPhase {
			phases++
			phaseReqs += uint64(e.Operations)
			if e.Name == "" {
				t.Fatal("load-phase event without a name")
			}
		}
	}
	if phases != 2 {
		t.Fatalf("got %d load-phase events, want 2", phases)
	}
	if phaseReqs != res.Requests {
		t.Fatalf("phase events count %d requests, run counted %d", phaseReqs, res.Requests)
	}
	if got := res.Phases[0].Requests + res.Phases[1].Requests; got != res.Requests {
		t.Fatalf("phase stats sum %d, run counted %d", got, res.Requests)
	}
}

func TestBuildReport(t *testing.T) {
	w := testWorkload()
	res := runHermetic(t, w, 4, nil)
	oracle, err := CheckOracle(res)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(w, res, oracle)
	if rep.Requests != res.Requests {
		t.Fatalf("report requests %d, run %d", rep.Requests, res.Requests)
	}
	var sum uint64
	for _, ep := range rep.Endpoints {
		sum += ep.Requests
		if ep.P50Ms > ep.MaxMs {
			t.Fatalf("%s: p50 %.3f above max %.3f", ep.Endpoint, ep.P50Ms, ep.MaxMs)
		}
		if ep.P99Ms > ep.P999Ms || ep.P50Ms > ep.P99Ms {
			t.Fatalf("%s: quantiles not monotone", ep.Endpoint)
		}
	}
	if sum != rep.Total.Requests || sum != rep.Requests {
		t.Fatalf("endpoint requests sum %d, total %d, run %d", sum, rep.Total.Requests, rep.Requests)
	}
	if rep.Total.Statuses["201"] == 0 || rep.Total.Statuses["200"] == 0 {
		t.Fatalf("expected 200s and 201s in taxonomy, got %v", rep.Total.Statuses)
	}
	// JSON round-trip (the BENCH_load.json writer path).
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Requests != rep.Requests || back.Total.P99Ms != rep.Total.P99Ms {
		t.Fatal("report did not survive a JSON round-trip")
	}
	if rep.Human() == "" {
		t.Fatal("empty human report")
	}
}

func TestParseSLO(t *testing.T) {
	slo, err := ParseSLO("p50=5ms, p99=200ms,p99.9=1s,errs=1%,throughput=10")
	if err != nil {
		t.Fatal(err)
	}
	if len(slo.checks) != 5 {
		t.Fatalf("got %d checks, want 5", len(slo.checks))
	}
	for _, bad := range []string{
		"", "p99", "p99=", "p99=fast", "p98=5ms", "errs=150%", "errs=x",
		"throughput=0", "throughput=-1", "p99=0s",
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Fatalf("ParseSLO(%q) accepted", bad)
		}
	}
}

func TestSLOEval(t *testing.T) {
	rep := &Report{
		Requests:      1000,
		ErrorRate:     0.005,
		ThroughputRPS: 120,
	}
	rep.Total = EndpointReport{P50Ms: 1, P90Ms: 3, P99Ms: 8, P999Ms: 20, MaxMs: 40, MeanMs: 2}
	slo, err := ParseSLO("p99=10ms,errs=1%,throughput=100")
	if err != nil {
		t.Fatal(err)
	}
	results, ok := slo.Eval(rep)
	if !ok || len(results) != 3 {
		t.Fatalf("expected clean pass, got ok=%v results=%v", ok, results)
	}
	strict, err := ParseSLO("p99=5ms,errs=0.1%,throughput=200,max=10ms")
	if err != nil {
		t.Fatal(err)
	}
	results, ok = strict.Eval(rep)
	if ok {
		t.Fatal("strict SLO passed a report that violates every term")
	}
	for _, r := range results {
		if r.OK {
			t.Fatalf("term %s unexpectedly passed", r.Name)
		}
	}
}
