package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/constraint"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/teamsim"
)

// OracleResult summarizes the sequential cross-check of a load run.
type OracleResult struct {
	// Sessions is the number of executed program instances.
	Sessions int `json:"sessions"`
	// Checked counts sessions fully cross-checked against the oracle.
	Checked int `json:"checked"`
	// Skipped counts sessions with nothing to check: create rejected
	// under backpressure, or no successful final state read.
	Skipped int `json:"skipped"`
	// Mismatches describes every divergence found; empty means the
	// concurrent server behaved exactly like the sequential model.
	Mismatches []string `json:"mismatches,omitempty"`
}

// OK reports whether the check ran clean.
func (o *OracleResult) OK() bool { return len(o.Mismatches) == 0 }

// CheckOracle validates a load run against a deterministic sequential
// oracle. The invariant: a hosted session's state is exactly its acked
// (200, non-replayed) batches applied in order — whatever 429s, retries,
// or concurrent interleavings happened on the wire. For each session the
// oracle replays the acked engine ops into a fresh single-threaded
// teamsim.Session and compares server.SnapshotSession byte-for-byte
// (after JSON normalization) against the state the server actually
// served. This is the CSM verification move: concurrent executions
// judged against a sequential specification.
func CheckOracle(res *RunResult) (*OracleResult, error) {
	out := &OracleResult{Sessions: len(res.Sessions)}
	for _, st := range res.Sessions {
		if st.CreateFailed || len(st.FinalState) == 0 {
			out.Skipped++
			continue
		}
		if err := checkSession(st); err != nil {
			out.Mismatches = append(out.Mismatches,
				fmt.Sprintf("session %s (client %d, ordinal %d): %v",
					st.ID, st.Program.Client, st.Program.Ordinal, err))
		} else {
			out.Checked++
		}
	}
	return out, nil
}

func checkSession(st *SessionTrace) error {
	scn, err := scenario.ByName(st.Scenario)
	if err != nil {
		return err
	}
	mode, err := parseMode(st.Program.Mode)
	if err != nil {
		return err
	}
	sess, err := teamsim.NewSession(scn, mode, st.MaxOps, constraint.PropagateOptions{})
	if err != nil {
		return err
	}
	for bi, batch := range st.Acked {
		for oi, op := range batch {
			if _, err := sess.Apply(op); err != nil {
				return fmt.Errorf("oracle replay diverged: acked batch %d op %d rejected: %v", bi, oi, err)
			}
		}
	}
	want, err := json.Marshal(server.SnapshotSession(st.ID, st.Scenario, sess))
	if err != nil {
		return err
	}
	// Normalize the served body (it carries the encoder's trailing
	// newline) through the same struct before comparing bytes.
	var served server.StateResponse
	if err := json.Unmarshal(st.FinalState, &served); err != nil {
		return fmt.Errorf("served state does not parse: %v", err)
	}
	got, err := json.Marshal(&served)
	if err != nil {
		return err
	}
	if !bytes.Equal(want, got) {
		return fmt.Errorf("state divergence after %d acked batches:\n  oracle: %s\n  served: %s",
			len(st.Acked), want, got)
	}
	return nil
}
