package loadgen

import (
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/server"
)

// redirectTarget wraps a real in-process target, answering the first
// ops POST with a synthetic 307 (the answer a tombstoned pair gives
// after its session migrated away); every other request passes through.
// It records LearnRedirect calls like a routing-table target would.
type redirectTarget struct {
	inner Target

	mu         sync.Mutex
	redirected bool
	learned    []string // "path -> location"
}

func (rt *redirectTarget) Do(method, path string, body []byte) (*Response, error) {
	rt.mu.Lock()
	fire := method == http.MethodPost && strings.HasSuffix(path, "/ops") && !rt.redirected
	if fire {
		rt.redirected = true
	}
	rt.mu.Unlock()
	if fire {
		h := http.Header{}
		h.Set("Location", "http://pair-b.example"+path)
		return &Response{Status: http.StatusTemporaryRedirect, Header: h}, nil
	}
	return rt.inner.Do(method, path, body)
}

func (rt *redirectTarget) LearnRedirect(path, location string) {
	rt.mu.Lock()
	rt.learned = append(rt.learned, path+" -> "+location)
	rt.mu.Unlock()
}

// TestRunnerFollows307OutsideTaxonomy pins the redirect contract of the
// runner: a 307 is routing, not an outcome. The hop is re-issued
// immediately (the run still succeeds end to end), counted in
// Redirects, reported to the target's RedirectLearner, and excluded
// from both the status taxonomy and the retry budget.
func TestRunnerFollows307OutsideTaxonomy(t *testing.T) {
	w := testWorkload()
	w.Clients, w.SessionsPerClient = 1, 1
	w.RetryFrac, w.DeleteFrac = 0, 0
	progs, err := BuildPrograms(w)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Open(server.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()

	rt := &redirectTarget{inner: &HandlerTarget{Handler: srv.Handler()}}
	r := &Runner{Target: rt, Programs: progs[:1], Seed: w.Seed}
	res, err := r.Run([]Phase{{Name: "steady", Clients: 1}})
	if err != nil {
		t.Fatal(err)
	}

	if res.Redirects != 1 {
		t.Errorf("Redirects = %d, want 1", res.Redirects)
	}
	if res.Retries != 0 {
		t.Errorf("Retries = %d — the 307 hop consumed a retry attempt", res.Retries)
	}
	if len(rt.learned) != 1 {
		t.Fatalf("LearnRedirect called %d times, want 1: %v", len(rt.learned), rt.learned)
	}
	if !strings.Contains(rt.learned[0], "http://pair-b.example/sessions/") {
		t.Errorf("learner saw %q, want the Location header", rt.learned[0])
	}

	// The taxonomy records only final landings: every ops request must
	// have ended 200, with no 307 entry anywhere.
	ops := res.endpoints[StepOps.String()]
	if ops == nil {
		t.Fatal("no ops endpoint in the result")
	}
	if n := ops.statuses[http.StatusTemporaryRedirect]; n != 0 {
		t.Errorf("%d 307s entered the status taxonomy", n)
	}
	for code, n := range ops.statuses {
		if code != http.StatusOK {
			t.Errorf("ops taxonomy has %d requests at status %d, want only 200s", n, code)
		}
	}
}
