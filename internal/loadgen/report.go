package loadgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// EndpointReport is one endpoint's (or the aggregate "total" row's)
// latency and status summary. Latencies are milliseconds from the
// log-bucketed histogram (≤ ~3.1% relative quantile error).
type EndpointReport struct {
	Endpoint      string            `json:"endpoint"`
	Requests      uint64            `json:"requests"`
	Errors        uint64            `json:"errors"`
	Statuses      map[string]uint64 `json:"statuses"`
	ThroughputRPS float64           `json:"throughput_rps"`
	MeanMs        float64           `json:"mean_ms"`
	P50Ms         float64           `json:"p50_ms"`
	P90Ms         float64           `json:"p90_ms"`
	P99Ms         float64           `json:"p99_ms"`
	P999Ms        float64           `json:"p99_9_ms"`
	MaxMs         float64           `json:"max_ms"`
}

// Report is the BENCH_load.json schema: workload configuration, phase
// summaries, aggregate and per-endpoint latency/throughput/status
// taxonomies, idempotent-replay count, oracle verdict, and (in -check
// mode) the SLO results.
type Report struct {
	Tool           string           `json:"tool"`
	Workload       Workload         `json:"workload"`
	Phases         []PhaseStats     `json:"phases"`
	WallSeconds    float64          `json:"wall_seconds"`
	Requests       uint64           `json:"requests"`
	Errors         uint64           `json:"errors"`
	ErrorRate      float64          `json:"error_rate"`
	ThroughputRPS  float64          `json:"throughput_rps"`
	Replays        uint64           `json:"idempotent_replays"`
	Retries        uint64           `json:"retries,omitempty"`
	Redirects      uint64           `json:"redirects,omitempty"`
	BackoffSeconds float64          `json:"backoff_seconds,omitempty"`
	Deliveries     uint64           `json:"deliveries,omitempty"`
	Total          EndpointReport   `json:"total"`
	Endpoints      []EndpointReport `json:"endpoints"`
	Oracle         *OracleResult    `json:"oracle,omitempty"`
	SLO            []SLOResult      `json:"slo,omitempty"`
}

// isError classifies a status for the error-rate taxonomy: transport
// failures (0) and every 4xx/5xx. Idempotent replays are 200s and never
// count.
func isError(status int) bool { return status == 0 || status >= 400 }

func endpointReport(label string, agg *endpointAgg, wallSec float64) EndpointReport {
	ep := EndpointReport{
		Endpoint: label,
		Requests: agg.hist.Count(),
		Statuses: map[string]uint64{},
		MeanMs:   agg.hist.Mean() / 1e6,
		P50Ms:    float64(agg.hist.Quantile(0.50)) / 1e6,
		P90Ms:    float64(agg.hist.Quantile(0.90)) / 1e6,
		P99Ms:    float64(agg.hist.Quantile(0.99)) / 1e6,
		P999Ms:   float64(agg.hist.Quantile(0.999)) / 1e6,
		MaxMs:    float64(agg.hist.Max()) / 1e6,
	}
	for code, n := range agg.statuses {
		ep.Statuses[strconv.Itoa(code)] = n
		if isError(code) {
			ep.Errors += n
		}
	}
	if wallSec > 0 {
		ep.ThroughputRPS = float64(ep.Requests) / wallSec
	}
	return ep
}

// BuildReport assembles the report from a run (and optional oracle
// verdict).
func BuildReport(w Workload, res *RunResult, oracle *OracleResult) *Report {
	rep := &Report{
		Tool:           "adpmload",
		Workload:       w.withDefaults(),
		Phases:         res.Phases,
		WallSeconds:    res.Wall.Seconds(),
		Requests:       res.Requests,
		Replays:        res.Replays,
		Retries:        res.Retries,
		Redirects:      res.Redirects,
		BackoffSeconds: res.Backoff.Seconds(),
		Deliveries:     res.Deliveries,
		Oracle:         oracle,
	}
	total := &endpointAgg{statuses: map[int]uint64{}}
	for _, label := range res.Endpoints() {
		agg := res.endpoints[label]
		rep.Endpoints = append(rep.Endpoints, endpointReport(label, agg, rep.WallSeconds))
		if label == labelDeliver {
			// Deliver samples are notification frames, not requests: they
			// get their own row (and deliver_* SLO terms) but must not
			// skew the aggregate request-latency row.
			continue
		}
		total.hist.Merge(&agg.hist)
		for code, n := range agg.statuses {
			total.statuses[code] += n
		}
	}
	rep.Total = endpointReport("total", total, rep.WallSeconds)
	rep.Errors = rep.Total.Errors
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	}
	rep.ThroughputRPS = rep.Total.ThroughputRPS
	return rep
}

// Human renders the report as the terminal summary.
func (rep *Report) Human() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adpmload: scenario=%s mode=%s seed=%d\n",
		rep.Workload.Scenario, rep.Workload.Mode, rep.Workload.Seed)
	for _, ph := range rep.Phases {
		fmt.Fprintf(&b, "  phase %-12s %-6s clients=%-4d reqs=%-7d %.2fs\n",
			ph.Name, ph.Mode, ph.Clients, ph.Requests, ph.Duration.Seconds())
	}
	fmt.Fprintf(&b, "  %-9s %9s %8s %9s %9s %9s %9s %9s %9s\n",
		"endpoint", "reqs", "errs", "rps", "p50ms", "p90ms", "p99ms", "p99.9ms", "maxms")
	rows := append([]EndpointReport{}, rep.Endpoints...)
	rows = append(rows, rep.Total)
	for _, ep := range rows {
		fmt.Fprintf(&b, "  %-9s %9d %8d %9.1f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
			ep.Endpoint, ep.Requests, ep.Errors, ep.ThroughputRPS,
			ep.P50Ms, ep.P90Ms, ep.P99Ms, ep.P999Ms, ep.MaxMs)
	}
	if rep.Replays > 0 {
		fmt.Fprintf(&b, "  idempotent replays: %d\n", rep.Replays)
	}
	if rep.Retries > 0 {
		fmt.Fprintf(&b, "  reactive retries: %d (%.2fs backing off)\n", rep.Retries, rep.BackoffSeconds)
	}
	if rep.Redirects > 0 {
		fmt.Fprintf(&b, "  migration redirects followed: %d\n", rep.Redirects)
	}
	if rep.Deliveries > 0 {
		fmt.Fprintf(&b, "  notifications delivered: %d\n", rep.Deliveries)
	}
	statuses := make([]string, 0, len(rep.Total.Statuses))
	for code := range rep.Total.Statuses {
		statuses = append(statuses, code)
	}
	sort.Strings(statuses)
	b.WriteString("  statuses:")
	for _, code := range statuses {
		fmt.Fprintf(&b, " %s=%d", code, rep.Total.Statuses[code])
	}
	b.WriteString("\n")
	if rep.Oracle != nil {
		fmt.Fprintf(&b, "  oracle: %d sessions, %d checked, %d skipped, %d mismatches\n",
			rep.Oracle.Sessions, rep.Oracle.Checked, rep.Oracle.Skipped, len(rep.Oracle.Mismatches))
	}
	for _, r := range rep.SLO {
		verdict := "ok"
		if !r.OK {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(&b, "  slo %-12s limit=%-10s actual=%-10s %s\n", r.Name, r.Limit, r.Actual, verdict)
	}
	return b.String()
}
