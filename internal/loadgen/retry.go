package loadgen

import (
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Reactive retries. Injected retries (Step.Retry) are part of the
// deterministic program text; reactive retries are the opposite — a
// runtime response to transient failure (a dropped connection, a 429
// shed, a 503 from a follower that has not finished promoting). The
// retry layer re-issues a failed request up to Max times, sleeping a
// server-directed Retry-After when one is present and a jittered capped
// exponential backoff otherwise. Only the final attempt lands in the
// latency/status taxonomy — the report describes outcomes, with the
// retry effort accounted separately (Retries, BackoffSeconds) so a run
// that survived a failover is distinguishable from one that never
// needed to.

// RetryPolicy bounds the reactive-retry loop.
type RetryPolicy struct {
	// Max is the number of re-attempts per request; 0 disables reactive
	// retries entirely (the default, preserving the strict determinism
	// contract for hermetic runs).
	Max int
	// Base is the first backoff step; doubled per attempt. 0 means 25ms.
	Base time.Duration
	// Cap bounds the exponential growth (not a Retry-After, which is
	// server-directed and honored as given). 0 means 1s.
	Cap time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Base <= 0 {
		p.Base = 25 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = time.Second
	}
	return p
}

// retryable classifies a final status as worth re-attempting: transport
// failures (0), timeouts (408), load shedding (429), and unavailability
// (503 — what a not-yet-promoted follower answers). Everything else is
// a definitive outcome.
func retryable(status int) bool {
	switch status {
	case 0, http.StatusRequestTimeout, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// retryAfter parses a Retry-After header: delta-seconds or an HTTP
// date. Returns false when absent or unparseable.
func retryAfter(h http.Header) (time.Duration, bool) {
	if h == nil {
		return 0, false
	}
	v := strings.TrimSpace(h.Get("Retry-After"))
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// backoff computes the wait before re-attempt number attempt (0-based).
// A parseable Retry-After wins verbatim — the server knows its own
// recovery schedule better than any client curve. Otherwise the wait is
// Base·2^attempt capped at Cap, jittered uniformly over its upper half
// so synchronized workers spread out without ever collapsing below half
// the schedule.
func (p RetryPolicy) backoff(attempt int, h http.Header, rng *rand.Rand) time.Duration {
	if d, ok := retryAfter(h); ok {
		return d
	}
	d := p.Base << uint(attempt)
	if d <= 0 || d > p.Cap {
		d = p.Cap
	}
	half := d / 2
	if rng != nil && half > 0 {
		return half + time.Duration(rng.Int63n(int64(half)+1))
	}
	return d
}
