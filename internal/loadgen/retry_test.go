package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

func TestRetryAfterParse(t *testing.T) {
	if _, ok := retryAfter(nil); ok {
		t.Fatal("nil header parsed")
	}
	h := http.Header{}
	if _, ok := retryAfter(h); ok {
		t.Fatal("absent header parsed")
	}
	h.Set("Retry-After", "3")
	if d, ok := retryAfter(h); !ok || d != 3*time.Second {
		t.Fatalf("delta-seconds: got %v %v", d, ok)
	}
	h.Set("Retry-After", "soon")
	if _, ok := retryAfter(h); ok {
		t.Fatal("garbage value parsed")
	}
	h.Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
	if d, ok := retryAfter(h); !ok || d <= 0 || d > 2*time.Second {
		t.Fatalf("http-date: got %v %v", d, ok)
	}
	h.Set("Retry-After", time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat))
	if d, ok := retryAfter(h); !ok || d != 0 {
		t.Fatalf("past http-date should clamp to 0, got %v %v", d, ok)
	}
	h.Set("Retry-After", "-5")
	if _, ok := retryAfter(h); ok {
		t.Fatal("negative seconds parsed")
	}
}

func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{Max: 5, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 8; attempt++ {
		want := p.Base << uint(attempt)
		if want <= 0 || want > p.Cap {
			want = p.Cap
		}
		for i := 0; i < 50; i++ {
			d := p.backoff(attempt, nil, rng)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	// A server-directed Retry-After overrides the curve, uncapped.
	h := http.Header{}
	h.Set("Retry-After", "2")
	if d := p.backoff(0, h, rng); d != 2*time.Second {
		t.Fatalf("Retry-After not honored: %v", d)
	}
}

// flakyTarget rejects the first failN requests per (method, path) with
// a scripted status (and optional Retry-After), then delegates.
type flakyTarget struct {
	inner      Target
	mu         sync.Mutex
	seen       map[string]int
	failN      int
	status     int
	retryAfter string
	rejected   int
}

func (f *flakyTarget) Do(method, path string, body []byte) (*Response, error) {
	f.mu.Lock()
	key := method + " " + path
	f.seen[key]++
	reject := f.seen[key] <= f.failN
	if reject {
		f.rejected++
	}
	f.mu.Unlock()
	if reject {
		hdr := http.Header{}
		if f.retryAfter != "" {
			hdr.Set("Retry-After", f.retryAfter)
		}
		if f.status == 0 {
			return nil, errors.New("flaky: connection reset")
		}
		return &Response{Status: f.status, Header: hdr}, nil
	}
	return f.inner.Do(method, path, body)
}

// TestReactiveRetryRecovers drives a workload through a target that
// 503s (Retry-After: 0) the first attempt of every request: with the
// retry layer on, the run must complete with a clean taxonomy (final
// attempts only — no 503s or transport errors recorded), a clean
// oracle, and the retry effort counted.
func TestReactiveRetryRecovers(t *testing.T) {
	w := testWorkload()
	w.Clients = 2
	w.SessionsPerClient = 1
	w.RetryFrac = 0
	progs, err := BuildPrograms(w)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Open(server.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	flaky := &flakyTarget{
		inner: &HandlerTarget{Handler: srv.Handler()},
		seen:  map[string]int{}, failN: 1,
		status: http.StatusServiceUnavailable, retryAfter: "0",
	}
	r := &Runner{
		Target: flaky, Programs: progs, Seed: w.Seed,
		Retry: RetryPolicy{Max: 3, Base: time.Millisecond, Cap: 4 * time.Millisecond},
	}
	res, err := r.Run([]Phase{{Name: "steady", Clients: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatal("flaky target triggered no reactive retries")
	}
	if int(res.Retries) != flaky.rejected {
		t.Fatalf("retries %d, target rejected %d", res.Retries, flaky.rejected)
	}
	for label, agg := range res.endpoints {
		for _, code := range []int{0, http.StatusServiceUnavailable} {
			if n := agg.statuses[code]; n != 0 {
				t.Fatalf("%s: %d final status-%d outcomes; retried attempts must stay out of the taxonomy", label, n, code)
			}
		}
	}
	oracle, err := CheckOracle(res)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.OK() {
		t.Fatalf("oracle mismatches under reactive retries: %v", oracle.Mismatches)
	}
	rep := BuildReport(w, res, oracle)
	if rep.Retries != res.Retries || rep.Errors != 0 {
		t.Fatalf("report retries=%d errors=%d, want retries=%d errors=0", rep.Retries, rep.Errors, res.Retries)
	}
}

// dropAckTarget forwards requests but "loses" the response of the first
// POST to each ops path — the server applies and acks, the client sees
// a transport error. The reactive retry then gets an Idempotent-Replay
// ack, which execProgram must count as the batch's real acknowledgment
// or the oracle diverges from the server state.
type dropAckTarget struct {
	inner   Target
	mu      sync.Mutex
	dropped map[string]bool
	drops   int
}

func (d *dropAckTarget) Do(method, path string, body []byte) (*Response, error) {
	resp, err := d.inner.Do(method, path, body)
	if method == http.MethodPost && err == nil && resp.Status == http.StatusOK {
		d.mu.Lock()
		key := path + "#" + string(body)
		first := !d.dropped[key]
		if first {
			d.dropped[key] = true
			d.drops++
		}
		d.mu.Unlock()
		if first && resp.Header.Get("Idempotent-Replay") != "true" {
			return nil, errors.New("dropack: response lost")
		}
	}
	return resp, err
}

func TestRetryAckedButLostInTransit(t *testing.T) {
	w := testWorkload()
	w.Clients = 2
	w.SessionsPerClient = 1
	w.RetryFrac = 0
	w.DeleteFrac = 0
	progs, err := BuildPrograms(w)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Open(server.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	drop := &dropAckTarget{inner: &HandlerTarget{Handler: srv.Handler()}, dropped: map[string]bool{}}
	r := &Runner{
		Target: drop, Programs: progs, Seed: w.Seed,
		Retry: RetryPolicy{Max: 2, Base: time.Millisecond, Cap: 2 * time.Millisecond},
	}
	res, err := r.Run([]Phase{{Name: "steady", Clients: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if drop.drops == 0 || res.Retries == 0 {
		t.Fatalf("no acks dropped (%d) or no retries (%d)", drop.drops, res.Retries)
	}
	if res.Replays == 0 {
		t.Fatal("dropped acks produced no idempotent replays")
	}
	// The decisive check: every server-applied batch is in the traces,
	// so the sequential oracle agrees with the served final states.
	oracle, err := CheckOracle(res)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.OK() {
		t.Fatalf("oracle mismatches — replay acks after lost responses miscounted: %v", oracle.Mismatches)
	}
	if oracle.Checked == 0 {
		t.Fatal("oracle checked nothing")
	}
}

// TestFailoverTargetRotates points a FailoverTarget at a dead base and
// a live one: the first request errors and rotates, the second lands.
func TestFailoverTargetRotates(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		fmt.Fprint(rw, "ok")
	}))
	defer live.Close()
	ft := &FailoverTarget{Bases: []string{"http://127.0.0.1:1", live.URL}}
	if _, err := ft.Do(http.MethodGet, "/readyz", nil); err == nil {
		t.Fatal("dead base answered")
	}
	if ft.Rotations() != 1 {
		t.Fatalf("rotations %d, want 1", ft.Rotations())
	}
	resp, err := ft.Do(http.MethodGet, "/readyz", nil)
	if err != nil || resp.Status != http.StatusOK {
		t.Fatalf("rotated request failed: %v %v", resp, err)
	}
	if ft.Rotations() != 1 {
		t.Fatalf("successful request advanced the rotation: %d", ft.Rotations())
	}
}

// TestFailoverWaitReadyAnyBase: WaitReady succeeds when any base is
// ready and parks the rotation on it, skipping dead and 503 bases.
func TestFailoverWaitReadyAnyBase(t *testing.T) {
	notReady := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		rw.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer notReady.Close()
	ready := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		rw.WriteHeader(http.StatusOK)
	}))
	defer ready.Close()
	ft := &FailoverTarget{Bases: []string{"http://127.0.0.1:1", notReady.URL, ready.URL}}
	if err := ft.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := ft.cur.Load(); got != 2 {
		t.Fatalf("rotation parked on base %d, want 2 (the ready one)", got)
	}
	none := &FailoverTarget{Bases: []string{"http://127.0.0.1:1", notReady.URL}}
	if err := none.WaitReady(300 * time.Millisecond); err == nil {
		t.Fatal("WaitReady succeeded with no ready base")
	}
}
