package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
)

// RouterTarget is client-side cluster routing: instead of sending every
// request through adpmproxy, the load generator holds the routing table
// itself, mints session ids, and dials the owning pair's leader
// directly — the "smart client" mode. It resolves leaders by /readyz
// probe (following promotions after a transport error) and learns
// migration overrides from 307 redirects via the RedirectLearner hook,
// so a mid-run cross-pair migration costs redirect hops, not errors.
type RouterTarget struct {
	// Client performs routed requests; nil means a 30s-timeout default.
	// Injectable so tests can route fake base URLs onto in-process
	// handlers through a custom RoundTripper.
	Client *http.Client
	// MintTag distinguishes this generator's session ids ("lg" when
	// empty). Two generators sharing a cluster need distinct tags.
	MintTag string

	router *cluster.Router
	minter *cluster.Minter

	mu   sync.Mutex
	view *cluster.View

	initOnce sync.Once
}

// NewRouterTarget compiles the table into a routing target.
func NewRouterTarget(t *cluster.Table, client *http.Client, mintTag string) (*RouterTarget, error) {
	view, err := cluster.NewView(t)
	if err != nil {
		return nil, err
	}
	rt := &RouterTarget{Client: client, MintTag: mintTag, view: view}
	rt.init()
	return rt, nil
}

func (rt *RouterTarget) init() {
	rt.initOnce.Do(func() {
		if rt.Client == nil {
			rt.Client = &http.Client{Timeout: 30 * time.Second}
		}
		// Never auto-follow: 307s must surface to the runner so the
		// learn-then-retry path (and the redirect taxonomy) stays honest.
		noFollow := *rt.Client
		noFollow.CheckRedirect = func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		}
		rt.Client = &noFollow
		tag := rt.MintTag
		if tag == "" {
			tag = "lg"
		}
		rt.minter = cluster.NewMinter(tag)
		rt.router = cluster.NewRouter(rt.Client)
	})
}

// currentView returns the table view under the lock.
func (rt *RouterTarget) currentView() *cluster.View {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.view
}

// resolve maps a session id to the owning pair's current leader base.
func (rt *RouterTarget) resolve(id string) (string, *cluster.Pair, error) {
	pair := rt.currentView().Owner(id)
	if pair == nil {
		return "", nil, fmt.Errorf("loadgen: no pair owns session %q", id)
	}
	base, err := rt.router.Leader(pair)
	if err != nil {
		rt.router.Invalidate(pair.Name)
		return "", pair, err
	}
	return base, pair, nil
}

// sessionID extracts the id from a /sessions/{id}[/...] path.
func sessionID(path string) string {
	rest, ok := strings.CutPrefix(path, "/sessions/")
	if !ok {
		return ""
	}
	id, _, _ := strings.Cut(rest, "/")
	return id
}

// Do implements Target: mint-and-route creates, route everything else
// by the id in the path. One transport error re-probes the pair and
// retries once — the kill-and-promote failover path.
func (rt *RouterTarget) Do(method, path string, body []byte) (*Response, error) {
	rt.init()
	id := sessionID(path)
	if method == http.MethodPost && path == "/sessions" {
		// Placement hashes the id, so the id must exist before the
		// request is routable: mint one and inject it into the body.
		var req map[string]json.RawMessage
		if len(bytes.TrimSpace(body)) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("loadgen: create body: %w", err)
			}
		}
		if req == nil {
			req = map[string]json.RawMessage{}
		}
		if raw, ok := req["id"]; ok {
			_ = json.Unmarshal(raw, &id)
		}
		if id == "" {
			id = rt.minter.Mint()
			idRaw, _ := json.Marshal(id)
			req["id"] = idRaw
			body, _ = json.Marshal(req)
		}
	}
	if id == "" {
		return nil, fmt.Errorf("loadgen: path %q has no session id to route by", path)
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		base, pair, err := rt.resolve(id)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := rt.doOnce(base+path, method, body)
		if err != nil {
			// Leader likely died: invalidate and re-probe (the standby
			// answers "ready" once promoted).
			rt.router.Invalidate(pair.Name)
			lastErr = err
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// doOnce performs one HTTP exchange.
func (rt *RouterTarget) doOnce(u, method string, body []byte) (*Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, u, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &Response{Status: resp.StatusCode, Body: b, Header: resp.Header}, nil
}

// LearnRedirect implements RedirectLearner: a 307's Location names the
// base the session moved to; mapping it back through the table pins
// the session to its new pair under a bumped epoch, so the runner's
// re-issued request routes correctly.
func (rt *RouterTarget) LearnRedirect(path, location string) {
	id := sessionID(path)
	if id == "" || location == "" {
		return
	}
	u, err := url.Parse(location)
	if err != nil {
		return
	}
	base := u.Scheme + "://" + u.Host
	rt.mu.Lock()
	defer rt.mu.Unlock()
	pair := rt.view.Table.PairForBase(base)
	if pair == nil || rt.view.Table.Overrides[id] == pair.Name {
		return
	}
	t := rt.view.Table.Clone()
	if t.Overrides == nil {
		t.Overrides = map[string]string{}
	}
	t.Overrides[id] = pair.Name
	t.Epoch++
	if v, err := cluster.NewView(t); err == nil {
		rt.view = v
	}
}

// Stream implements StreamTarget: SSE subscriptions route exactly like
// requests, so a reader lands on the pair that owns the session.
func (rt *RouterTarget) Stream(path string) (io.ReadCloser, int, error) {
	rt.init()
	id := sessionID(path)
	if id == "" {
		return nil, 0, fmt.Errorf("loadgen: path %q has no session id to route by", path)
	}
	base, _, err := rt.resolve(id)
	if err != nil {
		return nil, 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		cancel()
		return nil, 0, err
	}
	// A dedicated timeout-free client keeps a healthy long-lived stream
	// alive; Close cancels the request context instead.
	stream := &http.Client{Transport: rt.Client.Transport}
	resp, err := stream.Do(req)
	if err != nil {
		cancel()
		return nil, 0, err
	}
	return &cancelCloser{ReadCloser: resp.Body, cancel: cancel}, resp.StatusCode, nil
}

// Epoch reports the target's current table epoch (tests assert the
// learn-on-307 path bumps it).
func (rt *RouterTarget) Epoch() uint64 {
	return rt.currentView().Table.Epoch
}

// WaitReady polls every pair until each resolves a ready leader.
func (rt *RouterTarget) WaitReady(timeout time.Duration) error {
	rt.init()
	deadline := time.Now().Add(timeout)
	for {
		view := rt.currentView()
		var lastErr error
		ok := true
		for i := range view.Table.Pairs {
			pair := &view.Table.Pairs[i]
			if _, err := rt.router.Leader(pair); err != nil {
				rt.router.Invalidate(pair.Name)
				lastErr = err
				ok = false
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: cluster not ready after %v: %v", timeout, lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
