package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dpm"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Phase is one segment of a load run. Phases execute in sequence, so a
// ramp is just a list of phases with increasing Clients or Rate.
type Phase struct {
	// Name labels the phase in the report and the trace stream.
	Name string
	// Clients is the closed-loop worker count; used when Rate == 0.
	Clients int
	// Rate, when > 0, switches the phase to open-loop: program arrivals
	// are scheduled at Rate per second regardless of completions, each
	// running on its own goroutine (the standard open-loop model that
	// exposes coordinated omission).
	Rate float64
	// Duration bounds the phase. In closed-loop mode a zero Duration
	// means one full pass over the program set — fixed work, which is
	// what the hermetic determinism tests need. Open-loop phases
	// require a positive Duration.
	Duration time.Duration
}

// SessionTrace records what one executed program actually did: the
// acked batches (in order), the last served state snapshot, and the
// session's resolved identity — everything the oracle needs.
type SessionTrace struct {
	// ID is the server-assigned session id ("" if create failed).
	ID string
	// Program is the script this session executed.
	Program *Program
	// Scenario and MaxOps are what the server resolved at create time.
	Scenario string
	MaxOps   int
	// Acked holds the engine-level batches acknowledged with 200 and
	// not flagged Idempotent-Replay, in send order. The server's
	// session state is exactly these batches applied in order.
	Acked [][]dpm.Operation
	// FinalState is the body of the last successful GET /state.
	FinalState []byte
	// Deleted marks a session retired by its program.
	Deleted bool
	// CreateFailed marks a program whose create was rejected (e.g.
	// 429 under overload); no further steps were attempted.
	CreateFailed bool
}

// endpointAgg accumulates one endpoint's latency histogram and status
// taxonomy.
type endpointAgg struct {
	hist     stats.LogHist
	statuses map[int]uint64
}

// PhaseStats summarizes one executed phase.
type PhaseStats struct {
	Name     string        `json:"name"`
	Mode     string        `json:"mode"` // "closed" or "open"
	Clients  int           `json:"clients,omitempty"`
	Rate     float64       `json:"rate,omitempty"`
	Requests uint64        `json:"requests"`
	Duration time.Duration `json:"duration_ns"`
}

// RunResult is the raw outcome of a load run: merged per-endpoint
// metrics plus one SessionTrace per executed program instance.
type RunResult struct {
	Wall       time.Duration
	Requests   uint64
	Replays    uint64
	Deliveries uint64
	// Retries counts reactive re-attempts (not the injected duplicate
	// steps, which are Replays); Backoff is the total time spent
	// sleeping between attempts, across all workers.
	Retries uint64
	Backoff time.Duration
	// Redirects counts 307 hops followed after a session migrated
	// across pairs. A redirect is routing, not an outcome: the hop is
	// excluded from the latency/status taxonomy, which records only the
	// request's final landing.
	Redirects uint64
	Phases    []PhaseStats
	Sessions  []*SessionTrace
	endpoints map[string]*endpointAgg
}

// Endpoints lists the endpoint labels seen, in a stable order. The
// subscriber labels trail the request endpoints: "subscribe" (stream
// opens) and "deliver" (per-notification publish→deliver latency).
func (r *RunResult) Endpoints() []string {
	var out []string
	for _, k := range []StepKind{StepCreate, StepOps, StepState, StepDelete} {
		if _, ok := r.endpoints[k.String()]; ok {
			out = append(out, k.String())
		}
	}
	for _, label := range []string{labelSubscribe, labelDeliver} {
		if _, ok := r.endpoints[label]; ok {
			out = append(out, label)
		}
	}
	return out
}

// workerState is one goroutine's private metrics, merged into the
// collector when the goroutine finishes — per-request locking would
// serialize the very contention the tool exists to create.
type workerState struct {
	endpoints  map[string]*endpointAgg
	requests   uint64
	replays    uint64
	deliveries uint64
	retries    uint64
	backoff    time.Duration
	redirects  uint64
	sessions   []*SessionTrace
	// rng drives reactive-retry jitter; seeded per worker so backoff
	// schedules are independent. Nil when the worker never retries.
	rng *rand.Rand
}

func newWorkerState() *workerState {
	return &workerState{endpoints: map[string]*endpointAgg{}}
}

func (w *workerState) record(label string, status int, d time.Duration) {
	w.agg(label).statuses[status]++
	w.observe(label, d)
	w.requests++
}

// observe records a latency sample without counting a request — the
// "deliver" label measures notification frames, not HTTP round trips.
func (w *workerState) observe(label string, d time.Duration) {
	w.agg(label).hist.Observe(d.Nanoseconds())
}

func (w *workerState) agg(label string) *endpointAgg {
	agg := w.endpoints[label]
	if agg == nil {
		agg = &endpointAgg{statuses: map[int]uint64{}}
		w.endpoints[label] = agg
	}
	return agg
}

// fold absorbs another worker's private state (a finished subscriber's)
// without locking; the caller owns both.
func (w *workerState) fold(o *workerState) {
	for label, agg := range o.endpoints {
		dst := w.agg(label)
		dst.hist.Merge(&agg.hist)
		for code, n := range agg.statuses {
			dst.statuses[code] += n
		}
	}
	w.requests += o.requests
	w.replays += o.replays
	w.deliveries += o.deliveries
	w.retries += o.retries
	w.backoff += o.backoff
	w.redirects += o.redirects
	w.sessions = append(w.sessions, o.sessions...)
}

// Runner executes programs against a target across phases.
type Runner struct {
	Target   Target
	Programs []Program
	// Seed is echoed into trace events and has no effect on execution.
	Seed int64
	// Tracer, when non-nil, receives one load-phase event per phase.
	Tracer *trace.Recorder
	// Subscribers attaches this many live SSE readers to every created
	// session (publish→deliver latency under the "deliver" label). The
	// Target must implement StreamTarget; readers issue only GETs, so
	// the request sequences — the determinism contract — are unchanged.
	Subscribers int
	// Retry, when Retry.Max > 0, re-attempts transiently failed
	// requests (transport error, 408, 429, 503) with Retry-After /
	// jittered-exponential backoff. Off by default: reactive retries
	// depend on server behavior, so hermetic determinism runs leave
	// them disabled.
	Retry RetryPolicy
}

// maxRedirectHops bounds how many 307s one request follows: one stale
// routing view plus one concurrent migration is the deepest legitimate
// chain; a longer one is a routing loop and the final 307 is reported
// as the request's outcome.
const maxRedirectHops = 3

// subscriberDrainGrace is how long execProgram keeps a session's
// subscribers attached after its last step, letting the final batch's
// notifications deliver before the streams close. Latency samples are
// per frame, so the cut-off only bounds sample count, never skews the
// measured latencies.
const subscriberDrainGrace = 50 * time.Millisecond

// Run executes the phases in order and returns merged results.
func (r *Runner) Run(phases []Phase) (*RunResult, error) {
	if len(r.Programs) == 0 {
		return nil, fmt.Errorf("loadgen: no programs to run")
	}
	if len(phases) == 0 {
		phases = []Phase{{Name: "run", Clients: 1}}
	}
	res := &RunResult{endpoints: map[string]*endpointAgg{}}
	start := time.Now()
	for i := range phases {
		ph := &phases[i]
		if ph.Name == "" {
			ph.Name = fmt.Sprintf("phase-%d", i)
		}
		var st PhaseStats
		var err error
		if ph.Rate > 0 {
			st, err = r.runOpen(ph, res)
		} else {
			st, err = r.runClosed(ph, res)
		}
		if err != nil {
			return nil, err
		}
		res.Phases = append(res.Phases, st)
		if r.Tracer.Enabled() {
			r.Tracer.Emit(trace.Event{
				Kind:       trace.KindLoadPhase,
				Name:       st.Name,
				Workers:    st.Clients,
				Operations: int(st.Requests),
				Seed:       r.Seed,
				DurNanos:   st.Duration.Nanoseconds(),
			})
		}
	}
	res.Wall = time.Since(start)
	return res, nil
}

// merge folds a finished worker's private state into the run result.
func (res *RunResult) merge(mu *sync.Mutex, w *workerState) {
	mu.Lock()
	defer mu.Unlock()
	for label, agg := range w.endpoints {
		dst := res.endpoints[label]
		if dst == nil {
			dst = &endpointAgg{statuses: map[int]uint64{}}
			res.endpoints[label] = dst
		}
		dst.hist.Merge(&agg.hist)
		for code, n := range agg.statuses {
			dst.statuses[code] += n
		}
	}
	res.Requests += w.requests
	res.Replays += w.replays
	res.Deliveries += w.deliveries
	res.Retries += w.retries
	res.Backoff += w.backoff
	res.Redirects += w.redirects
	res.Sessions = append(res.Sessions, w.sessions...)
}

// runClosed runs a closed-loop phase: Clients workers pull programs
// from a shared cursor. Duration == 0 is one fixed pass over the set;
// Duration > 0 cycles the set until the deadline.
func (r *Runner) runClosed(ph *Phase, res *RunResult) (PhaseStats, error) {
	clients := ph.Clients
	if clients <= 0 {
		clients = 1
	}
	var mu sync.Mutex
	var cursor atomic.Int64
	var deadline time.Time
	if ph.Duration > 0 {
		deadline = time.Now().Add(ph.Duration)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for wkr := 0; wkr < clients; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := newWorkerState()
			ws.rng = rand.New(rand.NewSource(r.Seed ^ (int64(wkr+1) * 0x9E3779B9)))
			for {
				i := int(cursor.Add(1) - 1)
				if deadline.IsZero() {
					if i >= len(r.Programs) {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				r.execProgram(&r.Programs[i%len(r.Programs)], ws)
			}
			res.merge(&mu, ws)
		}()
	}
	wg.Wait()
	dur := time.Since(start)
	mu.Lock()
	reqs := res.Requests
	for i := range res.Phases {
		reqs -= res.Phases[i].Requests
	}
	mu.Unlock()
	return PhaseStats{Name: ph.Name, Mode: "closed", Clients: clients,
		Requests: reqs, Duration: dur}, nil
}

// runOpen runs an open-loop phase: arrival k is scheduled at
// start + k/Rate (absolute schedule, so a slow server cannot push
// arrivals back — the point of open-loop testing) and runs its program
// on a fresh goroutine.
func (r *Runner) runOpen(ph *Phase, res *RunResult) (PhaseStats, error) {
	if ph.Duration <= 0 {
		return PhaseStats{}, fmt.Errorf("loadgen: open-loop phase %q needs a positive duration", ph.Name)
	}
	interval := time.Duration(float64(time.Second) / ph.Rate)
	if interval <= 0 {
		return PhaseStats{}, fmt.Errorf("loadgen: rate %v too high", ph.Rate)
	}
	var mu sync.Mutex
	start := time.Now()
	deadline := start.Add(ph.Duration)
	var wg sync.WaitGroup
	launched := 0
	for n := 0; ; n++ {
		at := start.Add(time.Duration(n) * interval)
		if at.After(deadline) {
			break
		}
		time.Sleep(time.Until(at))
		prog := &r.Programs[n%len(r.Programs)]
		wg.Add(1)
		launched++
		go func() {
			defer wg.Done()
			ws := newWorkerState()
			ws.rng = rand.New(rand.NewSource(r.Seed ^ (int64(n+1) * 0x9E3779B9)))
			r.execProgram(prog, ws)
			res.merge(&mu, ws)
		}()
	}
	wg.Wait()
	dur := time.Since(start)
	mu.Lock()
	reqs := res.Requests
	for i := range res.Phases {
		reqs -= res.Phases[i].Requests
	}
	mu.Unlock()
	return PhaseStats{Name: ph.Name, Mode: "open", Clients: launched,
		Rate: ph.Rate, Requests: reqs, Duration: dur}, nil
}

// execProgram plays one program against the target, recording every
// request into ws and the session outcome into ws.sessions.
func (r *Runner) execProgram(prog *Program, ws *workerState) {
	st := &SessionTrace{Program: prog}
	ws.sessions = append(ws.sessions, st)

	pol := r.Retry.withDefaults()
	// do issues one request, re-attempting transient failures up to
	// pol.Max times. Only the final attempt lands in the taxonomy (the
	// report describes outcomes; retry effort is counted separately),
	// and the second return says whether any re-attempt happened — the
	// StepOps path needs it to classify an Idempotent-Replay ack
	// correctly.
	do := func(label, method, path string, body []byte) (*Response, bool) {
		hops := 0
		for attempt := 0; ; attempt++ {
			t0 := time.Now()
			resp, err := r.Target.Do(method, path, body)
			d := time.Since(t0)
			status := 0
			if err == nil {
				status = resp.Status
			}
			if status == http.StatusTemporaryRedirect && hops < maxRedirectHops {
				// The session migrated to another pair. Teach the target
				// (so routing-table mode re-resolves the owner) and re-issue
				// the same request: idempotency keys make the replay safe.
				// A hop is routing, not an outcome — it neither enters the
				// taxonomy nor consumes a retry attempt.
				hops++
				ws.redirects++
				if rl, ok := r.Target.(RedirectLearner); ok {
					rl.LearnRedirect(path, resp.Header.Get("Location"))
				}
				attempt--
				continue
			}
			if attempt < pol.Max && retryable(status) {
				var hdr http.Header
				if resp != nil {
					hdr = resp.Header
				}
				wait := pol.backoff(attempt, hdr, ws.rng)
				ws.retries++
				ws.backoff += wait
				time.Sleep(wait)
				continue
			}
			if err != nil {
				// Transport failure: recorded as status 0 in the taxonomy.
				ws.record(label, 0, d)
				return nil, attempt > 0
			}
			ws.record(label, status, d)
			return resp, attempt > 0
		}
	}

	createBody, _ := json.Marshal(server.CreateRequest{
		Scenario: prog.Scenario, Mode: prog.Mode, MaxOps: prog.MaxOps,
	})
	resp, _ := do("create", http.MethodPost, "/sessions", createBody)
	if resp == nil || resp.Status != http.StatusCreated {
		st.CreateFailed = true
		return
	}
	var created server.CreateResponse
	if err := json.Unmarshal(resp.Body, &created); err != nil || created.ID == "" {
		st.CreateFailed = true
		return
	}
	st.ID = created.ID
	st.Scenario = created.Scenario
	st.MaxOps = created.MaxOps

	if r.Subscribers > 0 {
		if stream, ok := r.Target.(StreamTarget); ok {
			var subs []*subscriberRun
			for k := 0; k < r.Subscribers; k++ {
				subs = append(subs, startSubscriber(stream, created.ID))
			}
			defer func() {
				time.Sleep(subscriberDrainGrace)
				for _, sub := range subs {
					sub.stop(ws)
				}
			}()
		}
	}

	opsPath := "/sessions/" + created.ID + "/ops"
	statePath := "/sessions/" + created.ID + "/state"
	for i := 1; i < len(prog.Steps); i++ {
		step := &prog.Steps[i]
		switch step.Kind {
		case StepOps:
			body, _ := json.Marshal(server.OpsRequest{Ops: step.Ops, Key: step.Key})
			resp, retried := do("ops", http.MethodPost, opsPath, body)
			if resp == nil || resp.Status != http.StatusOK {
				continue
			}
			if resp.Header.Get("Idempotent-Replay") == "true" {
				ws.replays++
				if !step.Retry && retried {
					// A reactive retry whose first attempt was acked
					// server-side but lost in transit: the replay ack is
					// this batch's real (first) acknowledgment, so the
					// oracle must count it.
					st.Acked = append(st.Acked, step.EngineOps)
				}
				continue
			}
			st.Acked = append(st.Acked, step.EngineOps)
		case StepState:
			if resp, _ := do("state", http.MethodGet, statePath, nil); resp != nil && resp.Status == http.StatusOK {
				st.FinalState = resp.Body
			}
		case StepDelete:
			if resp, _ := do("delete", http.MethodDelete, "/sessions/"+created.ID, nil); resp != nil && resp.Status == http.StatusOK {
				st.Deleted = true
			}
		}
	}
}
