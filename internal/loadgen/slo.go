package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// sloKind classifies what an SLO term measures.
type sloKind int

const (
	sloLatency    sloKind = iota // aggregate quantile/max/mean ≤ limit
	sloErrs                      // error rate ≤ limit (fraction)
	sloThroughput                // aggregate rps ≥ limit
	sloDeliver                   // publish→deliver quantile/max/mean ≤ limit
)

type sloCheck struct {
	name  string
	kind  sloKind
	limit float64 // ns (latency), fraction (errs), rps (throughput)
}

// SLO is a parsed service-level-objective gate.
type SLO struct {
	checks []sloCheck
}

// SLOResult is one evaluated SLO term.
type SLOResult struct {
	Name   string `json:"name"`
	Limit  string `json:"limit"`
	Actual string `json:"actual"`
	OK     bool   `json:"ok"`
}

// ParseSLO parses a gate spec like
//
//	p99=200ms,p99.9=1s,errs=1%,throughput=50,deliver_p99=100ms
//
// Latency terms (p50, p90, p99, p99.9, max, mean) take Go durations
// and bound the aggregate ("total") latency from above. errs takes a
// percentage ("1%") or fraction ("0.01") and bounds the error rate.
// throughput takes a number and bounds aggregate requests/second from
// below. deliver_-prefixed latency terms (deliver_p50 … deliver_mean)
// bound the subscriber publish→deliver latency instead of request
// latency; they require a run with subscribers (no "deliver" samples
// fails the term rather than passing vacuously).
func ParseSLO(s string) (*SLO, error) {
	slo := &SLO{}
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		name, val, ok := strings.Cut(term, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: SLO term %q is not name=value", term)
		}
		name = strings.TrimSpace(name)
		val = strings.TrimSpace(val)
		switch name {
		case "p50", "p90", "p99", "p99.9", "max", "mean",
			"deliver_p50", "deliver_p90", "deliver_p99", "deliver_p99.9", "deliver_max", "deliver_mean":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("loadgen: SLO %s: %v", name, err)
			}
			if d <= 0 {
				return nil, fmt.Errorf("loadgen: SLO %s: limit must be positive", name)
			}
			kind := sloLatency
			if strings.HasPrefix(name, "deliver_") {
				kind = sloDeliver
			}
			slo.checks = append(slo.checks, sloCheck{name: name, kind: kind, limit: float64(d.Nanoseconds())})
		case "errs":
			frac, err := parseFraction(val)
			if err != nil {
				return nil, fmt.Errorf("loadgen: SLO errs: %v", err)
			}
			slo.checks = append(slo.checks, sloCheck{name: name, kind: sloErrs, limit: frac})
		case "throughput":
			rps, err := strconv.ParseFloat(val, 64)
			if err != nil || rps <= 0 {
				return nil, fmt.Errorf("loadgen: SLO throughput: %q is not a positive number", val)
			}
			slo.checks = append(slo.checks, sloCheck{name: name, kind: sloThroughput, limit: rps})
		default:
			return nil, fmt.Errorf("loadgen: unknown SLO term %q (want p50/p90/p99/p99.9/max/mean/errs/throughput or a deliver_-prefixed latency)", name)
		}
	}
	if len(slo.checks) == 0 {
		return nil, fmt.Errorf("loadgen: empty SLO spec")
	}
	return slo, nil
}

// parseFraction accepts "1%" or "0.01"; both must land in [0, 1].
func parseFraction(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	f, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a number", s)
	}
	if pct {
		f /= 100
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("%q is out of [0,1]", s)
	}
	return f, nil
}

// latencyMs pulls the latency statistic an SLO term bounds from an
// endpoint row.
func latencyMs(ep *EndpointReport, name string) float64 {
	switch name {
	case "p50":
		return ep.P50Ms
	case "p90":
		return ep.P90Ms
	case "p99":
		return ep.P99Ms
	case "p99.9":
		return ep.P999Ms
	case "max":
		return ep.MaxMs
	case "mean":
		return ep.MeanMs
	}
	return 0
}

// endpointRow finds a per-endpoint report row by label.
func endpointRow(rep *Report, label string) *EndpointReport {
	for i := range rep.Endpoints {
		if rep.Endpoints[i].Endpoint == label {
			return &rep.Endpoints[i]
		}
	}
	return nil
}

// Eval checks the report against the gate; ok is true when every term
// holds.
func (s *SLO) Eval(rep *Report) (results []SLOResult, ok bool) {
	ok = true
	for _, c := range s.checks {
		r := SLOResult{Name: c.name}
		switch c.kind {
		case sloLatency:
			actual := latencyMs(&rep.Total, c.name)
			r.Limit = time.Duration(c.limit).String()
			r.Actual = fmt.Sprintf("%.3fms", actual)
			r.OK = actual <= c.limit/1e6
		case sloDeliver:
			r.Limit = time.Duration(c.limit).String()
			ep := endpointRow(rep, labelDeliver)
			if ep == nil || ep.Requests == 0 {
				// No delivered frames at all: a deliver gate on a run
				// without subscribers is a misconfiguration, not a pass.
				r.Actual = "no deliveries"
				r.OK = false
				break
			}
			actual := latencyMs(ep, strings.TrimPrefix(c.name, "deliver_"))
			r.Actual = fmt.Sprintf("%.3fms", actual)
			r.OK = actual <= c.limit/1e6
		case sloErrs:
			r.Limit = fmt.Sprintf("%.2f%%", c.limit*100)
			r.Actual = fmt.Sprintf("%.2f%%", rep.ErrorRate*100)
			r.OK = rep.ErrorRate <= c.limit
		case sloThroughput:
			r.Limit = fmt.Sprintf("%.1frps", c.limit)
			r.Actual = fmt.Sprintf("%.1frps", rep.ThroughputRPS)
			r.OK = rep.ThroughputRPS >= c.limit
		}
		if !r.OK {
			ok = false
		}
		results = append(results, r)
	}
	return results, ok
}
