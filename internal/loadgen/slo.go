package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// sloKind classifies what an SLO term measures.
type sloKind int

const (
	sloLatency    sloKind = iota // aggregate quantile/max/mean ≤ limit
	sloErrs                      // error rate ≤ limit (fraction)
	sloThroughput                // aggregate rps ≥ limit
)

type sloCheck struct {
	name  string
	kind  sloKind
	limit float64 // ns (latency), fraction (errs), rps (throughput)
}

// SLO is a parsed service-level-objective gate.
type SLO struct {
	checks []sloCheck
}

// SLOResult is one evaluated SLO term.
type SLOResult struct {
	Name   string `json:"name"`
	Limit  string `json:"limit"`
	Actual string `json:"actual"`
	OK     bool   `json:"ok"`
}

// ParseSLO parses a gate spec like
//
//	p99=200ms,p99.9=1s,errs=1%,throughput=50
//
// Latency terms (p50, p90, p99, p99.9, max, mean) take Go durations
// and bound the aggregate ("total") latency from above. errs takes a
// percentage ("1%") or fraction ("0.01") and bounds the error rate.
// throughput takes a number and bounds aggregate requests/second from
// below.
func ParseSLO(s string) (*SLO, error) {
	slo := &SLO{}
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		name, val, ok := strings.Cut(term, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: SLO term %q is not name=value", term)
		}
		name = strings.TrimSpace(name)
		val = strings.TrimSpace(val)
		switch name {
		case "p50", "p90", "p99", "p99.9", "max", "mean":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("loadgen: SLO %s: %v", name, err)
			}
			if d <= 0 {
				return nil, fmt.Errorf("loadgen: SLO %s: limit must be positive", name)
			}
			slo.checks = append(slo.checks, sloCheck{name: name, kind: sloLatency, limit: float64(d.Nanoseconds())})
		case "errs":
			frac, err := parseFraction(val)
			if err != nil {
				return nil, fmt.Errorf("loadgen: SLO errs: %v", err)
			}
			slo.checks = append(slo.checks, sloCheck{name: name, kind: sloErrs, limit: frac})
		case "throughput":
			rps, err := strconv.ParseFloat(val, 64)
			if err != nil || rps <= 0 {
				return nil, fmt.Errorf("loadgen: SLO throughput: %q is not a positive number", val)
			}
			slo.checks = append(slo.checks, sloCheck{name: name, kind: sloThroughput, limit: rps})
		default:
			return nil, fmt.Errorf("loadgen: unknown SLO term %q (want p50/p90/p99/p99.9/max/mean/errs/throughput)", name)
		}
	}
	if len(slo.checks) == 0 {
		return nil, fmt.Errorf("loadgen: empty SLO spec")
	}
	return slo, nil
}

// parseFraction accepts "1%" or "0.01"; both must land in [0, 1].
func parseFraction(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	f, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a number", s)
	}
	if pct {
		f /= 100
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("%q is out of [0,1]", s)
	}
	return f, nil
}

// latencyMs pulls the aggregate latency statistic an SLO term bounds.
func latencyMs(rep *Report, name string) float64 {
	switch name {
	case "p50":
		return rep.Total.P50Ms
	case "p90":
		return rep.Total.P90Ms
	case "p99":
		return rep.Total.P99Ms
	case "p99.9":
		return rep.Total.P999Ms
	case "max":
		return rep.Total.MaxMs
	case "mean":
		return rep.Total.MeanMs
	}
	return 0
}

// Eval checks the report against the gate; ok is true when every term
// holds.
func (s *SLO) Eval(rep *Report) (results []SLOResult, ok bool) {
	ok = true
	for _, c := range s.checks {
		r := SLOResult{Name: c.name}
		switch c.kind {
		case sloLatency:
			actual := latencyMs(rep, c.name)
			r.Limit = time.Duration(c.limit).String()
			r.Actual = fmt.Sprintf("%.3fms", actual)
			r.OK = actual <= c.limit/1e6
		case sloErrs:
			r.Limit = fmt.Sprintf("%.2f%%", c.limit*100)
			r.Actual = fmt.Sprintf("%.2f%%", rep.ErrorRate*100)
			r.OK = rep.ErrorRate <= c.limit
		case sloThroughput:
			r.Limit = fmt.Sprintf("%.1frps", c.limit)
			r.Actual = fmt.Sprintf("%.1frps", rep.ThroughputRPS)
			r.OK = rep.ThroughputRPS >= c.limit
		}
		if !r.OK {
			ok = false
		}
		results = append(results, r)
	}
	return results, ok
}
