package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/server"
)

// Subscriber clients. Alongside its scripted requests, each session can
// carry -subscribers live SSE readers on GET /sessions/{id}/events.
// Every live frame embeds the server's publish timestamp (pub_ns,
// stamped inside the shard loop), so a reader measures true
// publish→deliver latency per notification — the fan-out path's
// equivalent of request latency. Samples land in the "deliver"
// pseudo-endpoint histogram (frames, not requests: they are excluded
// from the aggregate "total" row and the request count); stream opens
// are recorded as the "subscribe" endpoint. Backlog frames carry no
// pub_ns and are skipped. The clock is the server's on one side and the
// client's on the other, so cross-machine runs need synchronized clocks;
// hermetic and localhost runs measure a single clock.

// Endpoint labels for the subscriber path.
const (
	labelSubscribe = "subscribe"
	labelDeliver   = "deliver"
)

// StreamTarget is implemented by targets that can open a long-lived
// streaming GET (the SSE feed). Stream returns after response headers:
// the body reads frames as the server flushes them, and Close both
// stops reading and tears the request down.
type StreamTarget interface {
	Stream(path string) (body io.ReadCloser, status int, err error)
}

// cancelCloser couples a response body with its request context cancel
// so Close reliably unblocks a reader mid-stream.
type cancelCloser struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelCloser) Close() error {
	c.cancel()
	return c.ReadCloser.Close()
}

// Stream opens a live SSE request. The default Client's timeout would
// kill a healthy long-lived stream, so streaming uses a dedicated
// timeout-free client; Close cancels the request context instead.
func (t *HTTPTarget) Stream(path string) (io.ReadCloser, int, error) {
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(t.Base, "/")+path, nil)
	if err != nil {
		cancel()
		return nil, 0, err
	}
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		cancel()
		return nil, 0, err
	}
	return &cancelCloser{ReadCloser: resp.Body, cancel: cancel}, resp.StatusCode, nil
}

// streamRecorder is the streaming counterpart of memRecorder: an
// http.ResponseWriter whose writes land in a pipe the client reads
// concurrently, with a real http.Flusher so the SSE handler streams
// instead of buffering. status is published once on the first
// WriteHeader/Write.
type streamRecorder struct {
	hdr    http.Header
	pw     *io.PipeWriter
	status chan int
	sent   bool
}

func (s *streamRecorder) Header() http.Header { return s.hdr }

func (s *streamRecorder) WriteHeader(code int) {
	if !s.sent {
		s.sent = true
		s.status <- code
	}
}

func (s *streamRecorder) Write(b []byte) (int, error) {
	s.WriteHeader(http.StatusOK)
	return s.pw.Write(b)
}

// Flush is a no-op: pipe writes are visible to the reader immediately.
func (s *streamRecorder) Flush() {}

// Stream serves the request on its own goroutine, handing back the read
// half of a pipe once the handler commits a status. Closing the body
// cancels the request context, which ends the SSE handler's loop.
func (t *HandlerTarget) Stream(path string) (io.ReadCloser, int, error) {
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://adpmload.local"+path, nil)
	if err != nil {
		cancel()
		return nil, 0, err
	}
	pr, pw := io.Pipe()
	rec := &streamRecorder{hdr: http.Header{}, pw: pw, status: make(chan int, 1)}
	go func() {
		t.Handler.ServeHTTP(rec, req)
		rec.WriteHeader(http.StatusOK) // handler wrote nothing at all
		pw.Close()
	}()
	return &cancelCloser{ReadCloser: pr, cancel: cancel}, <-rec.status, nil
}

// subscriberRun is one live reader attached to a session.
type subscriberRun struct {
	body io.ReadCloser
	ws   *workerState
	done chan struct{}
}

// startSubscriber opens the session's event stream and consumes it
// until the stream ends (session retired, server stopping subscribers)
// or stop() closes it. The open itself is recorded under "subscribe";
// each live frame's publish→deliver latency under "deliver".
func startSubscriber(target StreamTarget, sessionID string) *subscriberRun {
	sr := &subscriberRun{ws: newWorkerState(), done: make(chan struct{})}
	t0 := time.Now()
	body, status, err := target.Stream("/sessions/" + sessionID + "/events")
	if err != nil {
		sr.ws.record(labelSubscribe, 0, time.Since(t0))
		close(sr.done)
		return sr
	}
	sr.ws.record(labelSubscribe, status, time.Since(t0))
	if status != http.StatusOK {
		body.Close()
		close(sr.done)
		return sr
	}
	sr.body = body
	go func() {
		defer close(sr.done)
		sc := bufio.NewScanner(body)
		for sc.Scan() {
			line := sc.Bytes()
			if !bytes.HasPrefix(line, []byte("data: ")) {
				continue // id:/event: lines, heartbeats, blank separators
			}
			var payload server.EventPayload
			if json.Unmarshal(line[len("data: "):], &payload) != nil {
				continue
			}
			if payload.PubNanos == 0 {
				continue // backlog replay: no publish instant to measure from
			}
			sr.ws.deliveries++
			sr.ws.observe(labelDeliver, time.Duration(time.Now().UnixNano()-payload.PubNanos))
		}
	}()
	return sr
}

// stop tears the stream down and folds the reader's metrics into ws.
func (sr *subscriberRun) stop(ws *workerState) {
	if sr.body != nil {
		sr.body.Close()
	}
	<-sr.done
	ws.fold(sr.ws)
}
