package loadgen

import (
	"strings"
	"testing"

	"repro/internal/server"
)

// runWithSubscribers executes a small fixed-work pass with live SSE
// readers attached to every session.
func runWithSubscribers(t *testing.T, subs int) (*RunResult, *Report) {
	t.Helper()
	w := Workload{
		Scenario:          "simplified",
		Mode:              "ADPM",
		Seed:              19,
		Clients:           2,
		SessionsPerClient: 1,
		BatchSize:         4,
		StateEvery:        2,
		HistoryPool:       2,
		OpsPerSession:     16,
		Subscribers:       subs,
	}
	progs, err := BuildPrograms(w)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Open(server.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	r := &Runner{
		Target:      &HandlerTarget{Handler: srv.Handler()},
		Programs:    progs,
		Seed:        w.Seed,
		Subscribers: w.Subscribers,
	}
	res, err := r.Run([]Phase{{Name: "steady", Clients: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return res, BuildReport(w, res, nil)
}

func TestSubscribersMeasureDeliverLatency(t *testing.T) {
	res, rep := runWithSubscribers(t, 2)
	if res.Deliveries == 0 {
		t.Fatal("subscribers delivered no notifications")
	}
	labels := strings.Join(res.Endpoints(), ",")
	if !strings.Contains(labels, labelSubscribe) || !strings.Contains(labels, labelDeliver) {
		t.Fatalf("endpoints %q missing subscriber labels", labels)
	}

	deliver := endpointRow(rep, labelDeliver)
	if deliver == nil || deliver.Requests != res.Deliveries {
		t.Fatalf("deliver row %+v, want %d frames", deliver, res.Deliveries)
	}
	if deliver.P50Ms < 0 || deliver.MaxMs < deliver.P50Ms {
		t.Fatalf("deliver latencies implausible: p50=%f max=%f", deliver.P50Ms, deliver.MaxMs)
	}
	sub := endpointRow(rep, labelSubscribe)
	// Every session opened Subscribers streams, all 200.
	wantStreams := uint64(len(res.Sessions) * 2)
	if sub == nil || sub.Requests != wantStreams || sub.Errors != 0 {
		t.Fatalf("subscribe row %+v, want %d clean opens", sub, wantStreams)
	}

	// The deliver frames must not leak into the aggregate request row.
	var reqTotal uint64
	for _, ep := range rep.Endpoints {
		if ep.Endpoint != labelDeliver {
			reqTotal += ep.Requests
		}
	}
	if rep.Total.Requests != reqTotal {
		t.Fatalf("total row holds %d samples, want %d (deliver excluded)", rep.Total.Requests, reqTotal)
	}

	// A deliver SLO term evaluates against the deliver row. The max
	// bound is generous: hermetic delivery is micro-to-milliseconds.
	slo, err := ParseSLO("deliver_p50=10s,deliver_max=30s")
	if err != nil {
		t.Fatal(err)
	}
	results, ok := slo.Eval(rep)
	if !ok {
		t.Fatalf("deliver SLO failed on a healthy run: %+v", results)
	}
}

func TestDeliverSLOFailsWithoutSubscribers(t *testing.T) {
	_, rep := runWithSubscribers(t, 0)
	if rep.Deliveries != 0 {
		t.Fatalf("run without subscribers reports %d deliveries", rep.Deliveries)
	}
	slo, err := ParseSLO("deliver_p99=1s")
	if err != nil {
		t.Fatal(err)
	}
	results, ok := slo.Eval(rep)
	if ok {
		t.Fatal("deliver gate passed vacuously with no subscribers")
	}
	if len(results) != 1 || results[0].Actual != "no deliveries" {
		t.Fatalf("results = %+v, want a single 'no deliveries' failure", results)
	}
}

func TestParseSLORejectsUnknownDeliverTerm(t *testing.T) {
	if _, err := ParseSLO("deliver_p42=1s"); err == nil {
		t.Fatal("bogus deliver quantile accepted")
	}
}
