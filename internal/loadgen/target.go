package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Response is the slice of an HTTP response the load generator needs.
type Response struct {
	Status int
	Body   []byte
	Header http.Header
}

// Target abstracts where requests land: an in-process http.Handler for
// hermetic runs or a live adpmd over TCP. Implementations must be safe
// for concurrent use.
type Target interface {
	Do(method, path string, body []byte) (*Response, error)
}

// RedirectLearner is the optional routing extension of a Target: when
// a request answers 307 (session migrated across pairs), the runner
// calls LearnRedirect with the request path and the Location header
// before re-issuing the request, so a routing-table target can flip
// the session's owner instead of bouncing off the tombstone again.
type RedirectLearner interface {
	LearnRedirect(path, location string)
}

// HandlerTarget drives an http.Handler directly — no sockets, no
// network jitter — so hermetic load tests measure only the server
// stack and stay runnable anywhere.
type HandlerTarget struct {
	Handler http.Handler
}

// memRecorder is a minimal in-memory http.ResponseWriter; unlike
// httptest.ResponseRecorder it keeps net/http/httptest out of the
// shipped binary.
type memRecorder struct {
	status int
	hdr    http.Header
	buf    bytes.Buffer
}

func (m *memRecorder) Header() http.Header { return m.hdr }

func (m *memRecorder) WriteHeader(code int) {
	if m.status == 0 {
		m.status = code
	}
}

func (m *memRecorder) Write(b []byte) (int, error) {
	if m.status == 0 {
		m.status = http.StatusOK
	}
	return m.buf.Write(b)
}

// Do serves one request synchronously on the calling goroutine.
func (t *HandlerTarget) Do(method, path string, body []byte) (*Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, "http://adpmload.local"+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := &memRecorder{hdr: http.Header{}}
	t.Handler.ServeHTTP(rec, req)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	return &Response{Status: rec.status, Body: rec.buf.Bytes(), Header: rec.hdr}, nil
}

// HTTPTarget drives a live adpmd over the network.
type HTTPTarget struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// Client defaults to a dedicated client with a 30s timeout.
	Client *http.Client
}

func (t *HTTPTarget) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// Do issues one request and reads the full response body.
func (t *HTTPTarget) Do(method, path string, body []byte) (*Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, strings.TrimRight(t.Base, "/")+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &Response{Status: resp.StatusCode, Body: b, Header: resp.Header}, nil
}

// WaitReady polls GET /readyz until the target answers 200 or the
// timeout elapses — the handshake cmd/adpmload uses before opening
// fire on a freshly booted adpmd.
func (t *HTTPTarget) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		resp, err := t.Do(http.MethodGet, "/readyz", nil)
		if err == nil && resp.Status == http.StatusOK {
			return nil
		}
		if err != nil {
			last = err
		} else {
			last = fmt.Errorf("readyz status %d", resp.Status)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("loadgen: target not ready after %v: %v", timeout, last)
}
