package notify

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Hub is the live fan-out side of the Notification Manager: where Bus
// queues events for the simulated designers that drain them between
// operations, the Hub delivers them to external subscribers (SSE
// streams) through per-subscriber bounded queues.
//
// The contract that matters for the serving path: Publish never blocks
// and does bounded work. A stalled subscriber cannot back-pressure the
// publisher — its queue fills and the configured DropPolicy decides
// which event to lose (counted, never silent). Publish is called from
// the session owner's goroutine (a server shard loop); subscribers
// drain from their own goroutines, so the enqueue/dequeue handoff is
// the only synchronization between them.
type Hub struct {
	mu     sync.Mutex
	subs   map[uint64]*Sub
	nextID uint64
	closed bool
	// stats, when non-nil, receives the hub's delivery accounting; a
	// host shares one HubStats across many hubs to aggregate cheaply.
	stats *HubStats
	// tracer, when non-nil, receives one notify-drop event per lost
	// event. Set it from the publishing goroutine's recorder.
	tracer *trace.Recorder
}

// HubStats aggregates delivery accounting across one or more hubs. All
// fields are atomics so any goroutine may read them while shards
// publish.
type HubStats struct {
	// Subscribers is the number of currently attached subscribers.
	Subscribers atomic.Int64
	// Published counts events offered to the hub (before filtering).
	Published atomic.Uint64
	// Delivered counts events enqueued to some subscriber's queue.
	Delivered atomic.Uint64
	// Dropped counts events lost to a full queue under DropOldest (the
	// displaced oldest event) — or under Coalesce when no coalescible
	// older event existed.
	Dropped atomic.Uint64
	// Coalesced counts events displaced by a newer event about the same
	// subject under Coalesce.
	Coalesced atomic.Uint64
}

// DropPolicy decides which event a full subscriber queue loses.
type DropPolicy int

const (
	// DropOldest discards the oldest queued event to admit the new one:
	// a stalled consumer keeps the freshest window of events.
	DropOldest DropPolicy = iota
	// Coalesce first tries to displace an older queued event with the
	// same kind and subject (the newer event supersedes it — e.g. two
	// SubspaceReduced on one property); only when no such event exists
	// does it fall back to dropping the oldest.
	Coalesce
)

// String names the policy as it appears in the events-endpoint query.
func (p DropPolicy) String() string {
	if p == Coalesce {
		return "coalesce"
	}
	return "drop-oldest"
}

// SeqEvent is one event with its session-log sequence id (1-based
// index into the session's event log — the SSE event id, so a client
// resumes with Last-Event-ID).
type SeqEvent struct {
	ID int
	Event
	// PubNanos is the publisher's wall clock (unix nanoseconds) at
	// Publish time, 0 for backlog events re-delivered on resume.
	// Subscriber clients derive publish→deliver latency from it.
	PubNanos int64
}

// Sub is one subscriber's bounded queue. Drain with Next from a single
// consumer goroutine; Wake signals new events, Done signals closure.
type Sub struct {
	hub    *Hub
	id     uint64
	filter Filter
	policy DropPolicy

	mu      sync.Mutex
	buf     []SeqEvent // ring
	head    int
	n       int
	dropped uint64
	closed  bool

	wake chan struct{} // cap 1: "queue became non-empty"
	done chan struct{} // closed exactly once on Close
}

// NewHub returns an empty hub reporting into stats (nil for none).
func NewHub(stats *HubStats) *Hub {
	return &Hub{subs: map[uint64]*Sub{}, stats: stats}
}

// SetTracer attaches a trace recorder for drop events; nil detaches.
func (h *Hub) SetTracer(tr *trace.Recorder) { h.tracer = tr }

// Subscribe attaches a subscriber with a relevance filter (nil receives
// everything), a queue capacity (clamped to at least 1), and a drop
// policy. Returns nil if the hub is already closed.
func (h *Hub) Subscribe(f Filter, policy DropPolicy, queueCap int) *Sub {
	if queueCap < 1 {
		queueCap = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.nextID++
	s := &Sub{
		hub:    h,
		id:     h.nextID,
		filter: f,
		policy: policy,
		buf:    make([]SeqEvent, queueCap),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	h.subs[s.id] = s
	if h.stats != nil {
		h.stats.Subscribers.Add(1)
	}
	return s
}

// Publish offers one event (with its session-log id and publish
// timestamp) to every subscriber whose filter accepts it. Never blocks;
// a full queue loses one event per the subscriber's policy. Returns the
// number of queues the event entered.
func (h *Hub) Publish(ev SeqEvent) int {
	h.mu.Lock()
	subs := h.snapshotLocked()
	h.mu.Unlock()
	if h.stats != nil {
		h.stats.Published.Add(1)
	}
	n := 0
	for _, s := range subs {
		if s.offer(ev) {
			n++
		}
	}
	return n
}

// Close detaches and wakes every subscriber; the hub accepts no new
// ones. Queued events remain drainable after closure, so a consumer
// sees everything enqueued before the close, then end-of-stream.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := h.snapshotLocked()
	h.subs = map[uint64]*Sub{}
	h.mu.Unlock()
	for _, s := range subs {
		s.markClosed()
	}
	if h.stats != nil {
		h.stats.Subscribers.Add(int64(-len(subs)))
	}
}

// snapshotLocked copies the subscriber set in ascending subscription
// order. Map iteration order would do for correctness, but delivery —
// and therefore which subscriber's full queue drops which event — must
// not depend on it: the deterministic simulation replays byte for byte
// only if fan-out order is a function of state, not of map hashing.
func (h *Hub) snapshotLocked() []*Sub {
	subs := make([]*Sub, 0, len(h.subs))
	for _, s := range h.subs {
		subs = append(subs, s)
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })
	return subs
}

// offer enqueues ev if the filter accepts it, applying the drop policy
// on overflow. Reports whether the event entered the queue.
func (s *Sub) offer(ev SeqEvent) bool {
	if s.filter != nil && !s.filter(ev.Event) {
		return false
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if s.n == len(s.buf) {
		s.evictLocked(ev)
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	s.mu.Unlock()
	if s.hub.stats != nil {
		s.hub.stats.Delivered.Add(1)
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return true
}

// evictLocked makes room for one event in a full queue: under Coalesce
// it first displaces an older event with the same kind and subject as
// the incoming one; otherwise (and under DropOldest) the oldest event
// goes. The loss is counted on the sub, the hub stats, and the trace.
func (s *Sub) evictLocked(incoming SeqEvent) {
	coalesced := false
	if s.policy == Coalesce {
		for i := 0; i < s.n; i++ {
			at := (s.head + i) % len(s.buf)
			old := s.buf[at].Event
			if old.Kind == incoming.Kind && old.subject() == incoming.subject() {
				// Shift the younger tail left over the displaced slot.
				for j := i; j < s.n-1; j++ {
					s.buf[(s.head+j)%len(s.buf)] = s.buf[(s.head+j+1)%len(s.buf)]
				}
				s.n--
				coalesced = true
				break
			}
		}
	}
	var lost SeqEvent
	if coalesced {
		lost = incoming // trace the subject; the superseded event died
	} else {
		lost = s.buf[s.head]
		s.head = (s.head + 1) % len(s.buf)
		s.n--
	}
	s.dropped++
	if st := s.hub.stats; st != nil {
		if coalesced {
			st.Coalesced.Add(1)
		} else {
			st.Dropped.Add(1)
		}
	}
	if tr := s.hub.tracer; tr.Enabled() {
		tr.Emit(trace.Event{
			Kind:  trace.KindNotifyDrop,
			Stage: lost.Stage,
			Event: lost.Kind.String(),
			Name:  lost.subject(),
		})
	}
}

// markClosed closes the done channel and flags the sub; queued events
// stay drainable.
func (s *Sub) markClosed() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.done)
	}
}

// Close detaches the subscriber from its hub (idempotent).
func (s *Sub) Close() {
	s.hub.mu.Lock()
	_, attached := s.hub.subs[s.id]
	delete(s.hub.subs, s.id)
	h := s.hub
	s.hub.mu.Unlock()
	if attached && h.stats != nil {
		h.stats.Subscribers.Add(-1)
	}
	s.markClosed()
}

// Feed enqueues events directly into this subscriber's queue — the
// backlog seeding path for a Last-Event-ID resume. The filter and drop
// policy apply exactly as on a live publish; the returned count is how
// many events entered the queue.
func (s *Sub) Feed(evs ...SeqEvent) int {
	n := 0
	for _, ev := range evs {
		if s.offer(ev) {
			n++
		}
	}
	return n
}

// Wake returns the channel signaled when the queue becomes non-empty.
func (s *Sub) Wake() <-chan struct{} { return s.wake }

// Done returns the channel closed when the subscriber is detached (hub
// closed, session retired, or Close called).
func (s *Sub) Done() <-chan struct{} { return s.done }

// Next drains up to max queued events (all of them when max <= 0).
func (s *Sub) Next(max int) []SeqEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.n
	if max > 0 && n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]SeqEvent, n)
	for i := 0; i < n; i++ {
		out[i] = s.buf[(s.head+i)%len(s.buf)]
	}
	s.head = (s.head + n) % len(s.buf)
	s.n -= n
	return out
}

// Pending returns the number of queued events.
func (s *Sub) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Dropped returns how many events this subscriber has lost to its
// bounded queue (dropped or coalesced).
func (s *Sub) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
