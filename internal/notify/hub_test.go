package notify

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

func seq(id int, kind EventKind, prop string) SeqEvent {
	return SeqEvent{ID: id, Event: Event{Kind: kind, Stage: id, Property: prop}, PubNanos: int64(id)}
}

func drainIDs(s *Sub) []int {
	evs := s.Next(0)
	ids := make([]int, len(evs))
	for i, e := range evs {
		ids[i] = e.ID
	}
	return ids
}

func TestHubDeliversInOrder(t *testing.T) {
	h := NewHub(nil)
	s := h.Subscribe(nil, DropOldest, 8)
	for i := 1; i <= 5; i++ {
		if n := h.Publish(seq(i, SubspaceReduced, "W")); n != 1 {
			t.Fatalf("publish %d entered %d queues, want 1", i, n)
		}
	}
	ids := drainIDs(s)
	for i, id := range ids {
		if id != i+1 {
			t.Fatalf("ids %v not in publish order", ids)
		}
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped %d, want 0", s.Dropped())
	}
}

func TestHubFilter(t *testing.T) {
	h := NewHub(nil)
	only := func(e Event) bool { return e.Property == "W" }
	s := h.Subscribe(only, DropOldest, 8)
	h.Publish(seq(1, SubspaceReduced, "W"))
	if n := h.Publish(seq(2, SubspaceReduced, "L")); n != 0 {
		t.Fatalf("filtered event entered %d queues, want 0", n)
	}
	h.Publish(seq(3, SubspaceReduced, "W"))
	if got := drainIDs(s); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("filtered delivery got %v, want [1 3]", got)
	}
}

func TestHubDropOldest(t *testing.T) {
	st := &HubStats{}
	h := NewHub(st)
	s := h.Subscribe(nil, DropOldest, 3)
	for i := 1; i <= 5; i++ {
		h.Publish(seq(i, SubspaceReduced, "W"))
	}
	if got := drainIDs(s); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("drop-oldest kept %v, want [3 4 5]", got)
	}
	if s.Dropped() != 2 {
		t.Fatalf("sub dropped %d, want 2", s.Dropped())
	}
	if st.Dropped.Load() != 2 || st.Coalesced.Load() != 0 {
		t.Fatalf("stats dropped=%d coalesced=%d, want 2/0", st.Dropped.Load(), st.Coalesced.Load())
	}
	if st.Delivered.Load() != 5 || st.Published.Load() != 5 {
		t.Fatalf("stats delivered=%d published=%d, want 5/5", st.Delivered.Load(), st.Published.Load())
	}
}

func TestHubCoalesceSameSubject(t *testing.T) {
	st := &HubStats{}
	h := NewHub(st)
	s := h.Subscribe(nil, Coalesce, 3)
	h.Publish(seq(1, SubspaceReduced, "W"))
	h.Publish(seq(2, SubspaceReduced, "L"))
	h.Publish(seq(3, SubspaceReduced, "R"))
	// Queue full; a newer event about W should displace the older W
	// event, keeping L and R.
	h.Publish(seq(4, SubspaceReduced, "W"))
	if got := drainIDs(s); len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("coalesce kept %v, want [2 3 4]", got)
	}
	if st.Coalesced.Load() != 1 || st.Dropped.Load() != 0 {
		t.Fatalf("stats coalesced=%d dropped=%d, want 1/0", st.Coalesced.Load(), st.Dropped.Load())
	}
}

func TestHubCoalesceDistinctSubjectsFallsBackToOldest(t *testing.T) {
	h := NewHub(nil)
	s := h.Subscribe(nil, Coalesce, 2)
	h.Publish(seq(1, SubspaceReduced, "A"))
	h.Publish(seq(2, SubspaceReduced, "B"))
	// No queued event shares kind+subject with C: oldest (A) goes.
	h.Publish(seq(3, SubspaceReduced, "C"))
	if got := drainIDs(s); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("fallback kept %v, want [2 3]", got)
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped %d, want 1", s.Dropped())
	}
}

func TestHubCoalesceKindMatters(t *testing.T) {
	h := NewHub(nil)
	s := h.Subscribe(nil, Coalesce, 2)
	h.Publish(seq(1, SubspaceReduced, "W"))
	h.Publish(seq(2, SubspaceEmptied, "W"))
	// Same subject, different kind: must NOT coalesce the emptied event
	// away; oldest (the reduced) is dropped instead... but the reduced
	// shares kind with the incoming, so it coalesces.
	h.Publish(seq(3, SubspaceReduced, "W"))
	if got := drainIDs(s); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("kept %v, want [2 3] (emptied survives)", got)
	}
}

func TestHubDropTraced(t *testing.T) {
	rec := trace.New(trace.Options{RingSize: 64})
	defer rec.Close()
	h := NewHub(nil)
	h.SetTracer(rec)
	h.Subscribe(nil, DropOldest, 1)
	h.Publish(seq(1, SubspaceReduced, "W"))
	h.Publish(seq(2, ViolationDetected, "W"))
	c := rec.Counters()
	if c.NotifyDrops != 1 {
		t.Fatalf("trace NotifyDrops = %d, want 1", c.NotifyDrops)
	}
	evs := rec.Events()
	var found bool
	for _, e := range evs {
		if e.Kind == trace.KindNotifyDrop {
			found = true
			if e.Event != "subspace-reduced" || e.Name != "W" {
				t.Fatalf("drop event fields %q/%q, want subspace-reduced/W", e.Event, e.Name)
			}
		}
	}
	if !found {
		t.Fatalf("no notify-drop event in ring")
	}
}

func TestHubWakeAndDone(t *testing.T) {
	h := NewHub(nil)
	s := h.Subscribe(nil, DropOldest, 4)
	select {
	case <-s.Wake():
		t.Fatalf("wake before any publish")
	default:
	}
	h.Publish(seq(1, SubspaceReduced, "W"))
	select {
	case <-s.Wake():
	case <-time.After(time.Second):
		t.Fatalf("no wake after publish")
	}
	h.Close()
	select {
	case <-s.Done():
	case <-time.After(time.Second):
		t.Fatalf("done not closed by hub close")
	}
	// Events queued before close stay drainable.
	if got := drainIDs(s); len(got) != 1 || got[0] != 1 {
		t.Fatalf("post-close drain got %v, want [1]", got)
	}
	if h.Subscribe(nil, DropOldest, 4) != nil {
		t.Fatalf("subscribe after close returned a sub")
	}
}

func TestHubSubCloseDetaches(t *testing.T) {
	st := &HubStats{}
	h := NewHub(st)
	s := h.Subscribe(nil, DropOldest, 4)
	if st.Subscribers.Load() != 1 {
		t.Fatalf("subscribers %d, want 1", st.Subscribers.Load())
	}
	s.Close()
	s.Close() // idempotent
	if st.Subscribers.Load() != 0 {
		t.Fatalf("subscribers %d after close, want 0", st.Subscribers.Load())
	}
	if n := h.Publish(seq(1, SubspaceReduced, "W")); n != 0 {
		t.Fatalf("publish after sub close entered %d queues", n)
	}
	select {
	case <-s.Done():
	default:
		t.Fatalf("done not closed by sub close")
	}
}

// TestHubPublisherNeverBlocks floods a hub whose only subscriber never
// drains; every publish must complete promptly (bounded work), with the
// overflow counted.
func TestHubPublisherNeverBlocks(t *testing.T) {
	st := &HubStats{}
	h := NewHub(st)
	s := h.Subscribe(nil, DropOldest, 4)
	const n = 50000
	start := time.Now()
	for i := 1; i <= n; i++ {
		h.Publish(seq(i, SubspaceReduced, "W"))
	}
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("publishing %d events into a stalled sub took %v", n, elapsed)
	}
	if got := s.Pending(); got != 4 {
		t.Fatalf("pending %d, want 4", got)
	}
	if want := uint64(n - 4); s.Dropped() != want {
		t.Fatalf("dropped %d, want %d", s.Dropped(), want)
	}
	if st.Dropped.Load()+uint64(s.Pending()) != uint64(n) {
		t.Fatalf("accounting: dropped %d + pending %d != published %d",
			st.Dropped.Load(), s.Pending(), n)
	}
}

// TestHubConcurrentPublishDrain races one publisher against one
// consumer and checks the invariants that survive drops: drained IDs
// strictly increase (order, no duplicates) and delivered+dropped
// accounts for every publish.
func TestHubConcurrentPublishDrain(t *testing.T) {
	st := &HubStats{}
	h := NewHub(st)
	s := h.Subscribe(nil, DropOldest, 16)
	const n = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			h.Publish(seq(i, SubspaceReduced, "W"))
		}
		h.Close()
	}()
	last := 0
	got := 0
	for {
		evs := s.Next(0)
		for _, e := range evs {
			if e.ID <= last {
				t.Errorf("id %d after %d: out of order or duplicate", e.ID, last)
			}
			last = e.ID
			got++
		}
		if len(evs) == 0 {
			select {
			case <-s.Wake():
			case <-s.Done():
				// Final drain after close.
				for _, e := range s.Next(0) {
					if e.ID <= last {
						t.Errorf("id %d after %d post-close", e.ID, last)
					}
					last = e.ID
					got++
				}
				wg.Wait()
				if uint64(got)+s.Dropped() != n {
					t.Fatalf("received %d + dropped %d != published %d", got, s.Dropped(), n)
				}
				return
			}
		}
	}
}

func TestDropPolicyString(t *testing.T) {
	if DropOldest.String() != "drop-oldest" || Coalesce.String() != "coalesce" {
		t.Fatalf("policy names %q/%q", DropOldest.String(), Coalesce.String())
	}
	if !strings.Contains(DropOldest.String(), "oldest") {
		t.Fatalf("unexpected name %q", DropOldest)
	}
}

func TestBusFilterAccessor(t *testing.T) {
	b := NewBus()
	b.Subscribe("alice", func(e Event) bool { return e.Property == "W" })
	f, ok := b.Filter("alice")
	if !ok || f == nil {
		t.Fatalf("Filter(alice) = %v, %v", f, ok)
	}
	if !f(Event{Kind: SubspaceReduced, Property: "W"}) || f(Event{Kind: SubspaceReduced, Property: "L"}) {
		t.Fatalf("returned filter does not match subscription")
	}
	if _, ok := b.Filter("nobody"); ok {
		t.Fatalf("Filter(nobody) reported subscribed")
	}
}
