// Package notify implements the Notification Manager of paper §2.2: it
// turns design transitions into constraint-related events — violations
// appearing and resolving, feasible-subspace reductions, problem status
// changes — and delivers to each designer the subset relevant to them,
// "alerting designers of key information that might otherwise go
// unnoticed".
package notify

import (
	"fmt"

	"repro/internal/trace"
)

// EventKind classifies notification events.
type EventKind int

// Event kinds.
const (
	// ViolationDetected fires when a constraint becomes Violated.
	ViolationDetected EventKind = iota
	// ViolationResolved fires when a previously violated constraint is
	// no longer violated.
	ViolationResolved
	// SubspaceReduced fires when a property's feasible subspace shrank.
	SubspaceReduced
	// SubspaceEmptied fires when a property's feasible subspace became
	// empty (every value found infeasible).
	SubspaceEmptied
	// ProblemStatusChanged fires when a problem's status changed.
	ProblemStatusChanged
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case ViolationDetected:
		return "violation-detected"
	case ViolationResolved:
		return "violation-resolved"
	case SubspaceReduced:
		return "subspace-reduced"
	case SubspaceEmptied:
		return "subspace-emptied"
	case ProblemStatusChanged:
		return "problem-status-changed"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one notification.
type Event struct {
	Kind EventKind
	// Stage is the history index of the transition that produced it.
	Stage int
	// Constraint names the constraint for violation events.
	Constraint string
	// Property names the property for subspace events.
	Property string
	// Problem names the problem for status events.
	Problem string
	// Detail carries a human-readable elaboration.
	Detail string
}

// String formats the event for logs.
func (e Event) String() string {
	subject := e.Constraint
	if subject == "" {
		subject = e.Property
	}
	if subject == "" {
		subject = e.Problem
	}
	if e.Detail != "" {
		return fmt.Sprintf("[stage %d] %s %s: %s", e.Stage, e.Kind, subject, e.Detail)
	}
	return fmt.Sprintf("[stage %d] %s %s", e.Stage, e.Kind, subject)
}

// Filter decides whether an event is relevant to a subscriber.
type Filter func(Event) bool

// Bus is a synchronous notification bus with per-subscriber queues.
// The deterministic simulation engine publishes after each transition
// and designers drain their queue when choosing the next operation; the
// concurrent engine forwards drained batches over channels.
type Bus struct {
	subs  map[string]Filter
	queue map[string][]Event
	order []string
	// tracer, when non-nil, receives one notify event per publish.
	tracer *trace.Recorder
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: map[string]Filter{}, queue: map[string][]Event{}}
}

// Subscribe registers a subscriber with a relevance filter. A nil
// filter receives everything. Re-subscribing replaces the filter and
// clears any queued events.
func (b *Bus) Subscribe(id string, f Filter) {
	if _, ok := b.subs[id]; !ok {
		b.order = append(b.order, id)
	}
	b.subs[id] = f
	b.queue[id] = nil
}

// Subscribers returns subscriber ids in subscription order.
func (b *Bus) Subscribers() []string {
	return append([]string(nil), b.order...)
}

// Filter returns the subscriber's relevance filter and whether the id
// is subscribed. The live fan-out layer uses it to attach an external
// subscriber (an SSE stream) with the same owner/relevance selection as
// the simulated designer it follows.
func (b *Bus) Filter(id string) (Filter, bool) {
	f, ok := b.subs[id]
	return f, ok
}

// SetTracer attaches a trace recorder to the bus; nil detaches.
func (b *Bus) SetTracer(tr *trace.Recorder) { b.tracer = tr }

// subject returns the event's subject name for trace records.
func (e Event) subject() string {
	switch {
	case e.Constraint != "":
		return e.Constraint
	case e.Property != "":
		return e.Property
	default:
		return e.Problem
	}
}

// Publish enqueues the event for every subscriber whose filter accepts
// it and returns the number of deliveries.
func (b *Bus) Publish(e Event) int {
	n := 0
	for _, id := range b.order {
		f := b.subs[id]
		if f == nil || f(e) {
			b.queue[id] = append(b.queue[id], e)
			n++
		}
	}
	if b.tracer.Enabled() {
		b.tracer.Emit(trace.Event{
			Kind:       trace.KindNotify,
			Stage:      e.Stage,
			Event:      e.Kind.String(),
			Name:       e.subject(),
			Deliveries: n,
		})
	}
	return n
}

// PublishAll publishes a batch of events.
func (b *Bus) PublishAll(events []Event) {
	for _, e := range events {
		b.Publish(e)
	}
}

// Drain returns and clears the subscriber's queued events.
func (b *Bus) Drain(id string) []Event {
	evs := b.queue[id]
	b.queue[id] = nil
	return evs
}

// Pending returns the number of undelivered events for a subscriber.
func (b *Bus) Pending(id string) int { return len(b.queue[id]) }

// PropertyFilter returns a filter accepting events about any of the
// given properties or constraints — the NM's relevance selection for a
// designer concerned with a property set.
func PropertyFilter(props map[string]bool, constraints map[string]bool) Filter {
	return func(e Event) bool {
		switch e.Kind {
		case ViolationDetected, ViolationResolved:
			return constraints[e.Constraint]
		case SubspaceReduced, SubspaceEmptied:
			return props[e.Property]
		default:
			return true
		}
	}
}

// DiffEvents derives notification events from the before/after state of
// one transition: newly violated constraints, resolved ones, and
// narrowed or emptied feasible subspaces.
func DiffEvents(stage int, beforeViolated, afterViolated []string, narrowed, emptied []string) []Event {
	var out []Event
	before := map[string]bool{}
	for _, v := range beforeViolated {
		before[v] = true
	}
	after := map[string]bool{}
	for _, v := range afterViolated {
		after[v] = true
	}
	for _, v := range afterViolated {
		if !before[v] {
			out = append(out, Event{Kind: ViolationDetected, Stage: stage, Constraint: v})
		}
	}
	for _, v := range beforeViolated {
		if !after[v] {
			out = append(out, Event{Kind: ViolationResolved, Stage: stage, Constraint: v})
		}
	}
	emptiedSet := map[string]bool{}
	for _, p := range emptied {
		emptiedSet[p] = true
		out = append(out, Event{Kind: SubspaceEmptied, Stage: stage, Property: p})
	}
	for _, p := range narrowed {
		if !emptiedSet[p] {
			out = append(out, Event{Kind: SubspaceReduced, Stage: stage, Property: p})
		}
	}
	return out
}
