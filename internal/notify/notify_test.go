package notify

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestBusPublishDrain(t *testing.T) {
	b := NewBus()
	b.Subscribe("alice", nil)
	b.Subscribe("bob", func(e Event) bool { return e.Constraint == "Split" })

	if got := b.Subscribers(); len(got) != 2 || got[0] != "alice" {
		t.Fatalf("Subscribers = %v", got)
	}

	n := b.Publish(Event{Kind: ViolationDetected, Constraint: "Split"})
	if n != 2 {
		t.Errorf("deliveries = %d, want 2", n)
	}
	n = b.Publish(Event{Kind: ViolationDetected, Constraint: "Other"})
	if n != 1 {
		t.Errorf("deliveries = %d, want 1 (bob filtered)", n)
	}
	if b.Pending("alice") != 2 || b.Pending("bob") != 1 {
		t.Errorf("pending: alice=%d bob=%d", b.Pending("alice"), b.Pending("bob"))
	}
	evs := b.Drain("alice")
	if len(evs) != 2 {
		t.Fatalf("alice drained %d", len(evs))
	}
	if b.Pending("alice") != 0 {
		t.Error("drain did not clear queue")
	}
	if got := b.Drain("alice"); got != nil {
		t.Errorf("second drain = %v", got)
	}
	// Unknown subscriber: empty drain, zero pending.
	if b.Drain("carol") != nil || b.Pending("carol") != 0 {
		t.Error("unknown subscriber misbehaves")
	}
}

func TestResubscribeClearsQueue(t *testing.T) {
	b := NewBus()
	b.Subscribe("a", nil)
	b.Publish(Event{Kind: ViolationDetected, Constraint: "c"})
	b.Subscribe("a", nil)
	if b.Pending("a") != 0 {
		t.Error("resubscribe kept stale events")
	}
	if len(b.Subscribers()) != 1 {
		t.Error("resubscribe duplicated id")
	}
}

func TestPropertyFilter(t *testing.T) {
	f := PropertyFilter(
		map[string]bool{"Pa": true},
		map[string]bool{"Split": true},
	)
	cases := []struct {
		e    Event
		want bool
	}{
		{Event{Kind: ViolationDetected, Constraint: "Split"}, true},
		{Event{Kind: ViolationDetected, Constraint: "Other"}, false},
		{Event{Kind: ViolationResolved, Constraint: "Split"}, true},
		{Event{Kind: SubspaceReduced, Property: "Pa"}, true},
		{Event{Kind: SubspaceReduced, Property: "Pb"}, false},
		{Event{Kind: SubspaceEmptied, Property: "Pa"}, true},
		{Event{Kind: ProblemStatusChanged, Problem: "X"}, true},
	}
	for i, c := range cases {
		if got := f(c.e); got != c.want {
			t.Errorf("case %d (%v): %v, want %v", i, c.e, got, c.want)
		}
	}
}

func TestDiffEvents(t *testing.T) {
	evs := DiffEvents(7,
		[]string{"A", "B"}, // before
		[]string{"B", "C"}, // after: A resolved, C detected
		[]string{"p", "q"}, // narrowed
		[]string{"q"},      // q also emptied
	)
	kinds := map[EventKind]int{}
	for _, e := range evs {
		kinds[e.Kind]++
		if e.Stage != 7 {
			t.Errorf("stage = %d", e.Stage)
		}
	}
	if kinds[ViolationDetected] != 1 || kinds[ViolationResolved] != 1 {
		t.Errorf("violation events = %v", kinds)
	}
	if kinds[SubspaceEmptied] != 1 {
		t.Errorf("emptied events = %d", kinds[SubspaceEmptied])
	}
	// q is emptied, so only p gets a plain reduced event.
	if kinds[SubspaceReduced] != 1 {
		t.Errorf("reduced events = %d", kinds[SubspaceReduced])
	}
	for _, e := range evs {
		if e.Kind == SubspaceReduced && e.Property != "p" {
			t.Errorf("reduced property = %s", e.Property)
		}
	}
}

func TestDiffEventsEmpty(t *testing.T) {
	if evs := DiffEvents(0, nil, nil, nil, nil); len(evs) != 0 {
		t.Errorf("no-change diff produced %v", evs)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: ViolationDetected, Stage: 3, Constraint: "Split", Detail: "margin 12"}
	s := e.String()
	for _, part := range []string{"stage 3", "violation-detected", "Split", "margin 12"} {
		if !strings.Contains(s, part) {
			t.Errorf("event string %q missing %q", s, part)
		}
	}
	p := Event{Kind: SubspaceReduced, Stage: 1, Property: "Pa"}
	if !strings.Contains(p.String(), "Pa") {
		t.Errorf("property event string %q", p.String())
	}
	pr := Event{Kind: ProblemStatusChanged, Stage: 1, Problem: "Top"}
	if !strings.Contains(pr.String(), "Top") {
		t.Errorf("problem event string %q", pr.String())
	}
}

func TestKindStrings(t *testing.T) {
	names := map[EventKind]string{
		ViolationDetected:    "violation-detected",
		ViolationResolved:    "violation-resolved",
		SubspaceReduced:      "subspace-reduced",
		SubspaceEmptied:      "subspace-emptied",
		ProblemStatusChanged: "problem-status-changed",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(EventKind(42).String(), "42") {
		t.Error("unknown kind should embed number")
	}
}

// TestPublishOrdering pins the bus's ordering contract: each subscriber
// drains events in exact publish order, regardless of how many other
// subscribers interleave.
func TestPublishOrdering(t *testing.T) {
	b := NewBus()
	b.Subscribe("a", nil)
	b.Subscribe("b", nil)
	published := []Event{
		{Kind: ViolationDetected, Stage: 1, Constraint: "C1"},
		{Kind: SubspaceReduced, Stage: 1, Property: "P1"},
		{Kind: ViolationResolved, Stage: 2, Constraint: "C1"},
		{Kind: SubspaceEmptied, Stage: 3, Property: "P2"},
	}
	for _, e := range published {
		b.Publish(e)
	}
	for _, id := range []string{"a", "b"} {
		got := b.Drain(id)
		if len(got) != len(published) {
			t.Fatalf("%s drained %d events, want %d", id, len(got), len(published))
		}
		for i := range got {
			if got[i] != published[i] {
				t.Errorf("%s event %d = %+v, want %+v", id, i, got[i], published[i])
			}
		}
	}
}

// TestNoDuplicateDelivery checks that one publish delivers at most one
// copy per subscriber: the filter is consulted once per subscriber, not
// once per matching criterion.
func TestNoDuplicateDelivery(t *testing.T) {
	b := NewBus()
	calls := 0
	b.Subscribe("a", func(e Event) bool { calls++; return true })
	e := Event{Kind: ViolationDetected, Constraint: "Split", Property: "Pa"}
	if n := b.Publish(e); n != 1 {
		t.Errorf("deliveries = %d, want 1", n)
	}
	if calls != 1 {
		t.Errorf("filter consulted %d times for one publish, want 1", calls)
	}
	if got := b.Drain("a"); len(got) != 1 {
		t.Errorf("queued %d copies, want 1", len(got))
	}
}

// TestBusTraceDeliveries checks the notify instrumentation: one trace
// event per publish, with Deliveries matching the bus's return value.
func TestBusTraceDeliveries(t *testing.T) {
	rec := trace.New(trace.Options{})
	b := NewBus()
	b.SetTracer(rec)
	b.Subscribe("a", nil)
	b.Subscribe("b", func(e Event) bool { return e.Constraint == "Split" })
	b.Publish(Event{Kind: ViolationDetected, Stage: 2, Constraint: "Split"}) // 2 deliveries
	b.Publish(Event{Kind: SubspaceReduced, Stage: 2, Property: "Pa"})        // 1 delivery
	c := rec.Counters()
	if c.NotifyEvents != 2 {
		t.Errorf("NotifyEvents = %d, want 2", c.NotifyEvents)
	}
	if c.Deliveries != 3 {
		t.Errorf("Deliveries = %d, want 3", c.Deliveries)
	}
	evs := rec.Events()
	if len(evs) != 2 || evs[0].Name != "Split" || evs[1].Name != "Pa" {
		t.Errorf("trace events = %+v", evs)
	}
	if evs[0].Event != "violation-detected" || evs[0].Deliveries != 2 {
		t.Errorf("first notify trace event = %+v", evs[0])
	}
}

func TestPublishAll(t *testing.T) {
	b := NewBus()
	b.Subscribe("a", nil)
	b.PublishAll([]Event{
		{Kind: ViolationDetected, Constraint: "x"},
		{Kind: SubspaceReduced, Property: "y"},
	})
	if b.Pending("a") != 2 {
		t.Errorf("pending = %d", b.Pending("a"))
	}
}
