package replica

// The replication chaos matrix, sibling of internal/server's chaos
// suite: follower crashes mid-catch-up, torn and bit-flipped stream
// frames, torn follower tails on disk, and a seeded random storm of
// appends, rotations, partitions, message drops, and follower
// restarts. The invariant throughout is the package contract — the
// follower never applies a corrupt frame, resumes from its last
// durable offset, and converges to a byte-identical mirror once the
// link heals.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/wal"
)

// foldDir folds every segment of a shard directory into a fresh
// session map — the byte-level oracle for what a directory means.
func foldDir(t *testing.T, fsys faultfs.FS, dir string) map[string]*wal.SessionImage {
	t.Helper()
	sessions := map[string]*wal.SessionImage{}
	segs, err := wal.ListSegments(fsys, dir)
	if err != nil {
		t.Fatalf("ListSegments(%s): %v", dir, err)
	}
	for _, idx := range segs {
		data, err := fsys.ReadFile(wal.SegmentPath(dir, idx))
		if err != nil {
			t.Fatalf("read seg %d: %v", idx, err)
		}
		for len(data) > 0 {
			frame, ferr := nextFrame(data)
			if frame == nil {
				t.Fatalf("segment %d unclean: %v", idx, ferr)
			}
			rec, derr := decodeFrame(frame)
			if derr != nil {
				t.Fatalf("segment %d: %v", idx, derr)
			}
			if err := wal.Fold(sessions, rec); err != nil {
				t.Fatalf("fold: %v", err)
			}
			data = data[len(frame):]
		}
	}
	return sessions
}

func TestChaosFollowerCrashMidCatchUp(t *testing.T) {
	p := newPair(t, false)
	if err := p.createRec("s0-1"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := p.opsRec("s0-1", "k0", 0); err != nil {
		t.Fatalf("ops: %v", err)
	}
	// Build an 8-record backlog behind a partition.
	p.net.SetPartitioned(true)
	for i := 1; i <= 8; i++ {
		if err := p.opsRec("s0-1", fmt.Sprintf("k%d", i), i); err != nil {
			t.Fatalf("ops %d: %v", i, err)
		}
	}
	p.net.SetPartitioned(false)
	// The link dies again after four more messages — mid-catch-up, with
	// three frames applied and fsynced on the follower.
	base := p.net.Messages()
	p.net.OnMsg = func(n int, kind string) error {
		if n > base+4 {
			return errors.New("injected link death")
		}
		return nil
	}
	if err := p.rep.CatchUp(0); err == nil {
		t.Fatalf("catch-up should have died mid-stream")
	}
	partial, err := p.fol.Pos(0)
	if err != nil {
		t.Fatalf("pos: %v", err)
	}
	// Crash the follower process: volatile state is gone, but every
	// applied frame was fsynced, so the restart recovers all of them.
	p.fsF.Crash()
	fol, err := NewFollower(FollowerOptions{Dir: folDir, FS: p.fsF, Shards: 1})
	if err != nil {
		t.Fatalf("NewFollower after crash: %v", err)
	}
	p.fol = fol
	p.rep.SetPeer(&FaultPeer{Inner: fol, Net: p.net})
	p.rep.Invalidate()
	restarted, err := fol.Pos(0)
	if err != nil {
		t.Fatalf("pos after restart: %v", err)
	}
	if restarted != partial {
		t.Fatalf("restart lost durable progress: had %v, recovered %v", partial, restarted)
	}
	// Heal and record the second catch-up's message kinds: it must
	// resume streaming from the durable offset, never reset/re-mirror.
	var kinds []string
	p.net.OnMsg = func(n int, kind string) error {
		kinds = append(kinds, kind)
		return nil
	}
	if err := p.rep.CatchUp(0); err != nil {
		t.Fatalf("catch-up after restart: %v", err)
	}
	for _, k := range kinds {
		if k == "reset" || k == "copy" {
			t.Fatalf("catch-up re-mirrored instead of resuming from durable offset: %v", kinds)
		}
	}
	requireMirror(t, p.fsL, p.fsF, 0)
	p.requireOracle()
}

func TestChaosTornStreamFrames(t *testing.T) {
	p := newPair(t, true)
	if err := p.createRec("s0-1"); err != nil {
		t.Fatalf("create: %v", err)
	}
	pos, err := p.fol.Pos(0)
	if err != nil {
		t.Fatalf("pos: %v", err)
	}
	frame := wal.EncodeFrame([]byte(`{"type":"ops","session":"s0-1","ops":[]}`))
	cases := map[string][]byte{
		"truncated frame":  frame[:len(frame)-3],
		"truncated header": frame[:5],
		"payload bit flip": func() []byte {
			b := append([]byte(nil), frame...)
			b[len(b)-2] ^= 0x40
			return b
		}(),
		"header length corrupt": func() []byte {
			b := append([]byte(nil), frame...)
			b[0] ^= 0x01
			return b
		}(),
		"trailing garbage": append(append([]byte(nil), frame...), 0xFF),
	}
	for name, bad := range cases {
		if _, err := p.fol.Append(0, pos.Seg, pos.Off, bad); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("%s: want ErrCorruptFrame, got %v", name, err)
		}
		if got, _ := p.fol.Pos(0); got != pos {
			t.Fatalf("%s: position moved to %v", name, got)
		}
	}
	// The on-disk mirror is untouched: still exactly the leader's bytes.
	requireMirror(t, p.fsL, p.fsF, 0)
	// And the healthy frame still applies at the same position — the
	// corrupt attempts consumed nothing.
	if _, err := p.fol.Append(0, pos.Seg, pos.Off, frame); err != nil {
		t.Fatalf("clean append after corrupt attempts: %v", err)
	}
}

func TestChaosCopySegmentRejectsCorruption(t *testing.T) {
	fsF := faultfs.NewMemFS()
	fol, err := NewFollower(FollowerOptions{Dir: folDir, FS: fsF, Shards: 1})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	f1 := wal.EncodeFrame([]byte(`{"type":"create","session":"s0-1","mode":"ADPM","max_ops":10}`))
	f2 := wal.EncodeFrame([]byte(`{"type":"ops","session":"s0-1","ops":[]}`))
	seg := append(append([]byte(nil), f1...), f2...)
	bad := append([]byte(nil), seg...)
	bad[len(f1)+9] ^= 0x10 // flip a bit inside the second frame
	if _, err := fol.CopySegment(0, 1, bad); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupt copy: want ErrCorruptFrame, got %v", err)
	}
	segs, _ := wal.ListSegments(fsF, ShardDir(folDir, 0))
	if len(segs) != 0 {
		t.Fatalf("corrupt copy installed a segment: %v", segs)
	}
	if pos, _ := fol.Pos(0); pos != (Pos{}) {
		t.Fatalf("corrupt copy moved position: %v", pos)
	}
	// The intact segment installs fine afterwards.
	if _, err := fol.CopySegment(0, 1, seg); err != nil {
		t.Fatalf("clean copy: %v", err)
	}
}

func TestChaosFollowerTornTailRepaired(t *testing.T) {
	p := newPair(t, true)
	if err := p.createRec("s0-1"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := p.opsRec("s0-1", "k0", 0); err != nil {
		t.Fatalf("ops: %v", err)
	}
	// Rebuild the follower's disk as a torn mirror: the first frame plus
	// half of the second — the signature of a crash mid-append.
	data, err := p.fsL.ReadFile(wal.SegmentPath(ShardDir(leaderDir, 0), 1))
	if err != nil {
		t.Fatalf("read leader seg: %v", err)
	}
	first, err := nextFrame(data)
	if err != nil || first == nil {
		t.Fatalf("leader seg unclean: %v", err)
	}
	torn := data[:len(first)+(len(data)-len(first))/2]
	fsT := faultfs.NewMemFS()
	if err := fsT.MkdirAll(ShardDir(folDir, 0), 0o755); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := faultfs.WriteFile(fsT, wal.SegmentPath(ShardDir(folDir, 0), 1), torn, 0o644); err != nil {
		t.Fatalf("write torn seg: %v", err)
	}
	fol, err := NewFollower(FollowerOptions{Dir: folDir, FS: fsT, Shards: 1})
	if err != nil {
		t.Fatalf("NewFollower on torn dir: %v", err)
	}
	pos, err := fol.Pos(0)
	if err != nil {
		t.Fatalf("pos: %v", err)
	}
	if pos.Off != int64(len(first)) {
		t.Fatalf("torn tail not truncated: off=%d, want %d", pos.Off, len(first))
	}
	if got, _ := fsT.ReadFile(wal.SegmentPath(ShardDir(folDir, 0), 1)); !bytes.Equal(got, first) {
		t.Fatalf("torn bytes still on disk (%d bytes, want %d)", len(got), len(first))
	}
	// The leader catches this follower up by streaming the missing tail
	// from the verified prefix.
	p.fsF = fsT
	p.fol = fol
	p.rep.SetPeer(&FaultPeer{Inner: fol, Net: p.net})
	p.rep.Invalidate()
	if err := p.rep.CatchUp(0); err != nil {
		t.Fatalf("catch-up: %v", err)
	}
	requireMirror(t, p.fsL, fsT, 0)
	p.requireOracle()
}

// TestChaosMatrix is the randomized storm: appends, rotations,
// partitions, single-message drops, and follower crash/restarts in
// both ack modes, across seeds. After the storm the link heals and one
// catch-up must converge the follower to a byte-identical mirror whose
// folded sessions match the leader's own log.
func TestChaosMatrix(t *testing.T) {
	for _, quorum := range []bool{false, true} {
		for seed := int64(0); seed < 10; seed++ {
			name := fmt.Sprintf("quorum=%v/seed=%d", quorum, seed)
			t.Run(name, func(t *testing.T) {
				r := rand.New(rand.NewSource(seed))
				p := newPair(t, quorum)
				if err := p.createRec("s0-1"); err != nil {
					t.Fatalf("create: %v", err)
				}
				model := foldDir(t, p.fsL, ShardDir(leaderDir, 0))
				nextKey := 0
				drop := 0
				p.net.OnMsg = func(n int, kind string) error {
					if drop > 0 {
						drop--
						return errors.New("injected drop")
					}
					return nil
				}
				for step := 0; step < 60; step++ {
					switch c := r.Intn(10); {
					case c < 5: // append one ops batch
						rec := &wal.Record{Type: wal.TypeOps, Session: "s0-1",
							Key: fmt.Sprintf("k%d", nextKey),
							Ops: []byte(fmt.Sprintf(`[{"op":"set","n":%d}]`, nextKey))}
						nextKey++
						n, err := p.log.Append(rec)
						if err != nil && !quorum {
							t.Fatalf("step %d: async append failed: %v", step, err)
						}
						if n > 0 {
							// The record landed in the local log even when the
							// quorum ship failed (logged-but-unacked).
							if ferr := wal.Fold(model, rec); ferr != nil {
								t.Fatalf("model fold: %v", ferr)
							}
						}
					case c < 6: // rotate onto a snapshot of the model
						snap := &wal.Record{Type: wal.TypeSnapshot}
						for _, im := range model {
							snap.Sessions = append(snap.Sessions, *im.Clone())
						}
						if err := p.log.Rotate(snap); err != nil {
							t.Fatalf("step %d: rotate: %v", step, err)
						}
					case c < 8: // toggle the partition
						p.net.SetPartitioned(!p.net.Partitioned())
					case c < 9: // drop the next message
						drop++
					default: // crash and restart the follower
						p.fsF.Crash()
						fol, err := NewFollower(FollowerOptions{Dir: folDir, FS: p.fsF, Shards: 1})
						if err != nil {
							t.Fatalf("step %d: follower restart: %v", step, err)
						}
						p.fol = fol
						p.rep.SetPeer(&FaultPeer{Inner: fol, Net: p.net})
						p.rep.Invalidate()
					}
				}
				// Heal everything; one catch-up must converge.
				p.net.SetPartitioned(false)
				drop = 0
				if err := p.rep.CatchUpAll(); err != nil {
					t.Fatalf("final catch-up: %v", err)
				}
				requireMirror(t, p.fsL, p.fsF, 0)
				leaderFold := foldDir(t, p.fsL, ShardDir(leaderDir, 0))
				got := p.fol.Sessions(0)
				if len(got) != len(leaderFold) {
					t.Fatalf("follower folded %d sessions, leader log %d", len(got), len(leaderFold))
				}
				for id, want := range leaderFold {
					im := got[id]
					if im == nil || len(im.Ops) != len(want.Ops) {
						t.Fatalf("session %s: follower %v, want %d batches", id, im, len(want.Ops))
					}
				}
			})
		}
	}
}
