package replica

import "repro/internal/faultfs"

// FaultPeer wraps a Peer with a faultfs.NetFault, so the simulation
// and the chaos suite can partition the link or drop the Nth
// replication message deterministically — the transport-side analogue
// of wrapping the filesystem in a faultfs.Fault. Inner is swappable:
// the single-threaded simulation replaces it when it "restarts" the
// follower process.
type FaultPeer struct {
	Inner Peer
	Net   *faultfs.NetFault
}

// before accounts one message and returns any injected failure.
func (p *FaultPeer) before(kind string) error {
	if p.Net == nil {
		return nil
	}
	return p.Net.Before(kind)
}

// Pos implements Peer.
func (p *FaultPeer) Pos(shard int) (Pos, error) {
	if err := p.before("pos"); err != nil {
		return Pos{}, err
	}
	return p.Inner.Pos(shard)
}

// Append implements Peer.
func (p *FaultPeer) Append(shard, seg int, off int64, frame []byte) (Pos, error) {
	if err := p.before("append"); err != nil {
		return Pos{}, err
	}
	return p.Inner.Append(shard, seg, off, frame)
}

// Rotate implements Peer.
func (p *FaultPeer) Rotate(shard, seg int, frame []byte) (Pos, error) {
	if err := p.before("rotate"); err != nil {
		return Pos{}, err
	}
	return p.Inner.Rotate(shard, seg, frame)
}

// CopySegment implements Peer.
func (p *FaultPeer) CopySegment(shard, seg int, data []byte) (Pos, error) {
	if err := p.before("copy"); err != nil {
		return Pos{}, err
	}
	return p.Inner.CopySegment(shard, seg, data)
}

// Reset implements Peer.
func (p *FaultPeer) Reset(shard int) (Pos, error) {
	if err := p.before("reset"); err != nil {
		return Pos{}, err
	}
	return p.Inner.Reset(shard)
}

// Handoff implements Peer.
func (p *FaultPeer) Handoff() error {
	if err := p.before("handoff"); err != nil {
		return err
	}
	return p.Inner.Handoff()
}
