package replica

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/faultfs"
	"repro/internal/wal"
)

// FollowerOptions parameterize NewFollower.
type FollowerOptions struct {
	// Dir is the follower's data directory; shard WALs mirror into
	// Dir/shard-<i>/ in the exact layout server.Open expects.
	Dir string
	// FS is the follower's filesystem; nil means the real one.
	FS faultfs.FS
	// Shards is the shard count (must match the leader's).
	Shards int
}

// fshard is one shard's replica state: the mirrored segment position
// plus the continuously folded session images (the "parked" set a
// promotion would recover).
type fshard struct {
	dir      string
	seg      int   // current segment index; 0 before any data
	off      int64 // applied bytes of the current segment
	crc      uint32
	f        faultfs.File // append handle for the current segment
	sessions map[string]*wal.SessionImage
	records  int64
	broken   error
}

// Follower mirrors a leader's shard WALs byte for byte and folds every
// record as it arrives — continuous recovery. It implements Peer for
// in-process replication; Serve exposes the same verbs over TCP.
// Safe for concurrent use.
type Follower struct {
	opts FollowerOptions

	mu       sync.Mutex
	promoted bool
	handoff  bool
	shards   []*fshard
}

// NewFollower opens (or creates) the follower's mirror directories and
// recovers each shard's position: segments are scanned with the same
// framing rules wal.Open trusts, a torn tail on the newest segment is
// truncated away, and the surviving records fold into session images.
// A shard with real corruption (a bad frame before the newest tail) is
// marked broken rather than failing construction — the leader repairs
// it with a Reset + full copy on first contact.
func NewFollower(opts FollowerOptions) (*Follower, error) {
	if opts.FS == nil {
		opts.FS = faultfs.OS{}
	}
	if opts.Shards <= 0 {
		return nil, fmt.Errorf("replica: FollowerOptions.Shards is required")
	}
	f := &Follower{opts: opts}
	for i := 0; i < opts.Shards; i++ {
		sh := &fshard{dir: ShardDir(opts.Dir, i), sessions: map[string]*wal.SessionImage{}}
		if err := f.recoverShard(sh); err != nil {
			sh.broken = fmt.Errorf("%w: %v", ErrShardBroken, err)
		}
		f.shards = append(f.shards, sh)
	}
	return f, nil
}

// recoverShard rebuilds one shard's replica state from disk.
func (f *Follower) recoverShard(sh *fshard) error {
	fsys := f.opts.FS
	if err := fsys.MkdirAll(sh.dir, 0o755); err != nil {
		return err
	}
	segs, err := wal.ListSegments(fsys, sh.dir)
	if err != nil {
		return err
	}
	for i, idx := range segs {
		name := wal.SegmentPath(sh.dir, idx)
		data, err := fsys.ReadFile(name)
		if err != nil {
			return err
		}
		final := i == len(segs)-1
		good, recs, err := f.foldSegment(sh, data)
		if err != nil && !final {
			return fmt.Errorf("segment %s: %v", name, err)
		}
		sh.records += int64(recs)
		if final {
			if torn := int64(len(data)) - good; torn > 0 {
				// The expected signature of a crash mid-append: truncate the
				// torn tail away, exactly like wal.Open.
				h, terr := fsys.OpenFile(name, os.O_WRONLY, 0o644)
				if terr != nil {
					return terr
				}
				if terr := h.Truncate(good); terr != nil {
					h.Close()
					return terr
				}
				if terr := h.Sync(); terr != nil {
					h.Close()
					return terr
				}
				if terr := h.Close(); terr != nil {
					return terr
				}
			}
			sh.seg, sh.off, sh.crc = idx, good, wal.Checksum(data[:good])
		}
	}
	if sh.seg != 0 {
		// Fsync the inherited tail: recovery is a durability checkpoint
		// here for the same reason it is in wal.Open.
		h, err := fsys.OpenFile(wal.SegmentPath(sh.dir, sh.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		if err := h.Sync(); err != nil {
			h.Close()
			return err
		}
		sh.f = h
	}
	return nil
}

// foldSegment folds the intact frame prefix of one segment into the
// shard's sessions, returning the prefix length and record count. A
// non-nil error means the bytes do not end cleanly.
func (f *Follower) foldSegment(sh *fshard, data []byte) (int64, int, error) {
	off := int64(0)
	recs := 0
	for {
		frame, err := nextFrame(data[off:])
		if frame == nil {
			return off, recs, err
		}
		rec, derr := decodeFrame(frame)
		if derr != nil {
			return off, recs, derr
		}
		if ferr := wal.Fold(sh.sessions, rec); ferr != nil {
			return off, recs, ferr
		}
		off += int64(len(frame))
		recs++
	}
}

// nextFrame returns the first complete, CRC-valid frame of data, nil
// with a nil error at a clean end, or nil with an error at a torn or
// corrupt boundary.
func nextFrame(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, nil
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("torn frame header")
	}
	n := int64(binary.LittleEndian.Uint32(data))
	if n > wal.MaxRecordBytes {
		return nil, fmt.Errorf("frame length %d exceeds limit", n)
	}
	if int64(len(data))-8 < n {
		return nil, fmt.Errorf("torn frame")
	}
	frame := data[:8+n]
	if wal.Checksum(frame[8:]) != binary.LittleEndian.Uint32(data[4:]) {
		return nil, fmt.Errorf("CRC mismatch")
	}
	return frame, nil
}

// decodeFrame validates and decodes one complete frame's record.
func decodeFrame(frame []byte) (*wal.Record, error) {
	var rec wal.Record
	if err := json.Unmarshal(frame[8:], &rec); err != nil {
		return nil, fmt.Errorf("undecodable record: %v", err)
	}
	return &rec, nil
}

// checkFrame validates a shipped frame's structure and CRC without
// touching disk: exactly one frame, intact. The follower never writes
// a frame this rejects.
func checkFrame(frame []byte) (*wal.Record, error) {
	got, err := nextFrame(frame)
	if err != nil || got == nil || len(got) != len(frame) {
		return nil, fmt.Errorf("%w: %v", ErrCorruptFrame, err)
	}
	return decodeFrame(frame)
}

// shard resolves a shard index under the lock.
func (f *Follower) shard(i int) (*fshard, error) {
	if f.promoted {
		return nil, ErrPromoted
	}
	if i < 0 || i >= len(f.shards) {
		return nil, fmt.Errorf("replica: shard %d out of range", i)
	}
	sh := f.shards[i]
	if sh.broken != nil {
		return nil, sh.broken
	}
	return sh, nil
}

// Pos implements Peer.
func (f *Follower) Pos(shard int) (Pos, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh, err := f.shard(shard)
	if err != nil {
		return Pos{}, err
	}
	return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc}, nil
}

// Append implements Peer: verify, persist (with per-frame fsync — the
// follower is always as durable as what it acked), then fold.
func (f *Follower) Append(shard, seg int, off int64, frame []byte) (Pos, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh, err := f.shard(shard)
	if err != nil {
		return Pos{}, err
	}
	rec, err := checkFrame(frame)
	if err != nil {
		return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc}, err
	}
	if seg != sh.seg || off != sh.off {
		return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc},
			fmt.Errorf("%w: append at seg=%d off=%d, follower at seg=%d off=%d", ErrOutOfSync, seg, off, sh.seg, sh.off)
	}
	if err := f.writeFrame(sh, frame); err != nil {
		return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc}, err
	}
	if err := wal.Fold(sh.sessions, rec); err != nil {
		// The leader folded this exact sequence, so a fold failure means
		// replica state diverged from its own log: fail stop until Reset.
		sh.broken = fmt.Errorf("%w: fold: %v", ErrShardBroken, err)
		return Pos{}, sh.broken
	}
	sh.records++
	return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc}, nil
}

// writeFrame appends frame to the shard's current segment, repairing a
// torn tail by truncation if the write fails short.
func (f *Follower) writeFrame(sh *fshard, frame []byte) error {
	if sh.f == nil {
		h, err := f.opts.FS.OpenFile(wal.SegmentPath(sh.dir, sh.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		sh.f = h
	}
	if _, err := sh.f.Write(frame); err != nil {
		if terr := sh.f.Truncate(sh.off); terr != nil {
			sh.broken = fmt.Errorf("%w: write failed (%v) and truncate repair failed (%v)", ErrShardBroken, err, terr)
			return sh.broken
		}
		if serr := sh.f.Sync(); serr != nil {
			sh.broken = fmt.Errorf("%w: write failed (%v) and repair sync failed (%v)", ErrShardBroken, err, serr)
			return sh.broken
		}
		return err
	}
	if err := sh.f.Sync(); err != nil {
		sh.broken = fmt.Errorf("%w: fsync failed: %v", ErrShardBroken, err)
		return sh.broken
	}
	sh.off += int64(len(frame))
	sh.crc = wal.ChecksumUpdate(sh.crc, frame)
	return nil
}

// Rotate implements Peer, mirroring wal.Rotate: the new segment is
// created and made durable (data sync, then directory sync) before the
// old ones are removed.
func (f *Follower) Rotate(shard, seg int, frame []byte) (Pos, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh, err := f.shard(shard)
	if err != nil {
		return Pos{}, err
	}
	rec, err := checkFrame(frame)
	if err != nil {
		return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc}, err
	}
	if seg != sh.seg+1 {
		return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc},
			fmt.Errorf("%w: rotate to seg=%d, follower at seg=%d", ErrOutOfSync, seg, sh.seg)
	}
	if err := f.installSegment(sh, seg, frame, rec); err != nil {
		return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc}, err
	}
	f.removeOlder(sh, seg)
	return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc}, nil
}

// installSegment writes data as segment seg, makes it durable, swaps
// the append handle to it, and folds rec (the already-validated decode
// of data's records — for a rotation that is just the snapshot head).
func (f *Follower) installSegment(sh *fshard, seg int, data []byte, rec *wal.Record) error {
	fsys := f.opts.FS
	name := wal.SegmentPath(sh.dir, seg)
	h, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	abort := func(stage string, err error) error {
		h.Close()
		if rerr := fsys.Remove(name); rerr != nil {
			sh.broken = fmt.Errorf("%w: install %s failed (%v) and cleanup failed (%v)", ErrShardBroken, stage, err, rerr)
			return sh.broken
		}
		return err
	}
	if _, err := h.Write(data); err != nil {
		return abort("write", err)
	}
	if err := h.Sync(); err != nil {
		return abort("sync", err)
	}
	if err := fsys.SyncDir(sh.dir); err != nil {
		return abort("syncdir", err)
	}
	if sh.f != nil {
		sh.f.Close()
	}
	sh.f = h
	sh.seg, sh.off, sh.crc = seg, int64(len(data)), wal.Checksum(data)
	if err := wal.Fold(sh.sessions, rec); err != nil {
		sh.broken = fmt.Errorf("%w: fold: %v", ErrShardBroken, err)
		return sh.broken
	}
	sh.records++
	return nil
}

// removeOlder removes segments below keep; failures cost disk space
// only (recovery folds ascending), matching the leader's contract.
func (f *Follower) removeOlder(sh *fshard, keep int) {
	fsys := f.opts.FS
	segs, err := wal.ListSegments(fsys, sh.dir)
	if err != nil {
		return
	}
	removed := false
	for _, idx := range segs {
		if idx < keep {
			if fsys.Remove(wal.SegmentPath(sh.dir, idx)) == nil {
				removed = true
			}
		}
	}
	if removed {
		fsys.SyncDir(sh.dir)
	}
}

// CopySegment implements Peer: install one whole leader segment
// verbatim (catch-up, ascending order after a Reset). Every frame is
// validated and folded; a corrupt stream installs nothing.
func (f *Follower) CopySegment(shard, seg int, data []byte) (Pos, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh, err := f.shard(shard)
	if err != nil {
		return Pos{}, err
	}
	if seg <= sh.seg {
		return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc},
			fmt.Errorf("%w: copy of seg=%d, follower already at seg=%d", ErrOutOfSync, seg, sh.seg)
	}
	// Validate and decode the whole segment before any byte lands.
	var recs []*wal.Record
	for off := int64(0); off < int64(len(data)); {
		frame, ferr := nextFrame(data[off:])
		if frame == nil {
			return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc}, fmt.Errorf("%w: %v", ErrCorruptFrame, ferr)
		}
		rec, derr := decodeFrame(frame)
		if derr != nil {
			return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc}, fmt.Errorf("%w: %v", ErrCorruptFrame, derr)
		}
		recs = append(recs, rec)
		off += int64(len(frame))
	}
	fsys := f.opts.FS
	name := wal.SegmentPath(sh.dir, seg)
	h, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc}, err
	}
	abort := func(stage string, err error) (Pos, error) {
		h.Close()
		if rerr := fsys.Remove(name); rerr != nil {
			sh.broken = fmt.Errorf("%w: copy %s failed (%v) and cleanup failed (%v)", ErrShardBroken, stage, err, rerr)
			return Pos{}, sh.broken
		}
		return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc}, err
	}
	if _, err := h.Write(data); err != nil {
		return abort("write", err)
	}
	if err := h.Sync(); err != nil {
		return abort("sync", err)
	}
	if err := fsys.SyncDir(sh.dir); err != nil {
		return abort("syncdir", err)
	}
	if sh.f != nil {
		sh.f.Close()
	}
	sh.f = h
	sh.seg, sh.off, sh.crc = seg, int64(len(data)), wal.Checksum(data)
	for _, rec := range recs {
		if err := wal.Fold(sh.sessions, rec); err != nil {
			sh.broken = fmt.Errorf("%w: fold: %v", ErrShardBroken, err)
			return Pos{}, sh.broken
		}
		sh.records++
	}
	return Pos{Seg: sh.seg, Off: sh.off, CRC: sh.crc}, nil
}

// Reset implements Peer: discard the shard's replica state entirely.
// Reset also repairs a broken shard — whatever went wrong locally, a
// full re-mirror from the leader supersedes it.
func (f *Follower) Reset(shard int) (Pos, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return Pos{}, ErrPromoted
	}
	if shard < 0 || shard >= len(f.shards) {
		return Pos{}, fmt.Errorf("replica: shard %d out of range", shard)
	}
	sh := f.shards[shard]
	if sh.f != nil {
		sh.f.Close()
		sh.f = nil
	}
	fsys := f.opts.FS
	segs, err := wal.ListSegments(fsys, sh.dir)
	if err != nil {
		return Pos{}, fmt.Errorf("%w: %v", ErrShardBroken, err)
	}
	for _, idx := range segs {
		if err := fsys.Remove(wal.SegmentPath(sh.dir, idx)); err != nil {
			sh.broken = fmt.Errorf("%w: reset remove: %v", ErrShardBroken, err)
			return Pos{}, sh.broken
		}
	}
	if err := fsys.SyncDir(sh.dir); err != nil {
		sh.broken = fmt.Errorf("%w: reset syncdir: %v", ErrShardBroken, err)
		return Pos{}, sh.broken
	}
	sh.seg, sh.off, sh.crc = 0, 0, 0
	sh.sessions = map[string]*wal.SessionImage{}
	sh.records = 0
	sh.broken = nil
	return Pos{}, nil
}

// Handoff implements Peer: the leader has drained and caught this
// follower fully up. HandoffReceived turns true; the host decides
// whether to promote on it.
func (f *Follower) Handoff() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return ErrPromoted
	}
	f.handoff = true
	return nil
}

// HandoffReceived reports whether the leader has handed off.
func (f *Follower) HandoffReceived() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.handoff
}

// Promote seals the follower for serving: every shard's tail is
// fsynced and its handle closed, and all further replication traffic
// is refused with ErrPromoted. The caller then opens the directory
// with server.Open, which re-scans it (truncate-repairing any torn
// record a crashed follower left) and serves the recovered sessions.
func (f *Follower) Promote() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return nil
	}
	var first error
	for _, sh := range f.shards {
		if sh.f == nil {
			continue
		}
		if err := sh.f.Sync(); err != nil && first == nil {
			first = fmt.Errorf("replica: sealing shard tail: %w", err)
		}
		if err := sh.f.Close(); err != nil && first == nil {
			first = err
		}
		sh.f = nil
	}
	if first != nil {
		return first
	}
	f.promoted = true
	return nil
}

// Promoted reports whether Promote has completed.
func (f *Follower) Promoted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}

// ShardStatus is one shard's replica position for readiness reporting.
type ShardStatus struct {
	Shard    int    `json:"shard"`
	Seg      int    `json:"seg"`
	Off      int64  `json:"off"`
	Records  int64  `json:"records"`
	Sessions int    `json:"sessions"`
	Broken   bool   `json:"broken,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Status snapshots every shard's replica position.
func (f *Follower) Status() []ShardStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ShardStatus, len(f.shards))
	for i, sh := range f.shards {
		out[i] = ShardStatus{
			Shard:    i,
			Seg:      sh.seg,
			Off:      sh.off,
			Records:  sh.records,
			Sessions: len(sh.sessions),
		}
		if sh.broken != nil {
			out[i].Broken = true
			out[i].Error = sh.broken.Error()
		}
	}
	return out
}

// Sessions returns a deep copy of one shard's folded session images —
// the test-side oracle for "the follower holds exactly the leader's
// durable sessions".
func (f *Follower) Sessions(shard int) map[string]*wal.SessionImage {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[string]*wal.SessionImage{}
	if shard < 0 || shard >= len(f.shards) {
		return out
	}
	for id, img := range f.shards[shard].sessions {
		out[id] = img.Clone()
	}
	return out
}

// Dir returns the follower's data directory.
func (f *Follower) Dir() string { return f.opts.Dir }

// ShardCount returns the follower's shard count.
func (f *Follower) ShardCount() int { return len(f.shards) }
