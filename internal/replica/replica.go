// Package replica implements leader→follower replication of the
// per-shard write-ahead logs: a warm standby that stays one continuous
// recovery behind the leader and can be promoted in its place.
//
// The design leans entirely on properties the WAL already has. Segment
// files are a byte-faithful replication stream — every accepted
// transition is one CRC-framed record, rotation snapshots make older
// segments disposable — so the follower mirrors the leader's segment
// bytes exactly and folds each record into parked session images as it
// lands, exactly like server.Open does at recovery. Promotion is then
// nothing special: seal the tail, truncate-repair any torn record, and
// open the directory for traffic; deterministic replay guarantees the
// promoted node's sessions are byte-identical to the leader's.
//
// The leader ships through wal.Options.Ship (every local append,
// rotation, and group commit in commit order). Two ack modes:
//
//   - quorum: an append ship must reach the follower (which fsyncs
//     every frame) before the client's batch is acknowledged. A ship
//     failure fails the append like a storage error — the record stays
//     in the leader's log, the client is told to retry, and recovery
//     semantics are unchanged. Zero acked-op loss across failover.
//   - async: ship failures are absorbed; the shard is marked out of
//     sync and a lag gauge (records/bytes behind) grows until a later
//     ship or group commit heals it by catch-up. Failing over while
//     lagged loses an acked suffix — prefix-closed, never reordered,
//     the same contract as fsync=interval under power loss.
//
// Catch-up needs no cursor state on the leader: the follower reports
// (segment, offset, prefix CRC), the leader compares that against its
// own segment bytes, and either streams the missing tail or — on any
// divergence — resets the follower and copies the segments whole. A
// rejoining ex-leader is just a follower whose divergent suffix gets
// reset away.
package replica

import (
	"errors"
	"fmt"
	"path/filepath"
)

// Pos is a follower shard's replication position: the segment it is
// appending to, how many bytes of it have been applied, and the CRC of
// that prefix. The CRC lets the leader detect divergence in O(1)
// message bytes instead of comparing segment contents remotely.
type Pos struct {
	Seg int    `json:"seg"`
	Off int64  `json:"off"`
	CRC uint32 `json:"crc"`
}

func (p Pos) String() string { return fmt.Sprintf("seg=%d off=%d crc=%08x", p.Seg, p.Off, p.CRC) }

// Peer is the follower as seen from the leader: the replication
// protocol's verbs. In-process callers hold a *Follower directly; over
// the network, Client speaks the same verbs through a length+CRC-framed
// connection. Every mutating verb returns the follower's resulting
// position so the leader can verify progress without a second round
// trip.
type Peer interface {
	// Pos reports the shard's current replication position.
	Pos(shard int) (Pos, error)
	// Append applies one framed record at (seg, off); the follower
	// verifies the frame CRC and positional continuity, fsyncs, and
	// folds the record. ErrOutOfSync means the position didn't match
	// and the leader should catch up.
	Append(shard, seg int, off int64, frame []byte) (Pos, error)
	// Rotate begins segment seg with the given snapshot head frame and
	// removes the follower's older segments, mirroring wal.Rotate.
	Rotate(shard, seg int, frame []byte) (Pos, error)
	// CopySegment installs one whole segment verbatim (catch-up after
	// Reset, ascending segment order).
	CopySegment(shard, seg int, data []byte) (Pos, error)
	// Reset discards the shard's replica state entirely; the leader
	// follows with CopySegment calls.
	Reset(shard int) (Pos, error)
	// Handoff tells the follower the leader has drained and fully
	// caught it up: it is now safe (and expected) to promote.
	Handoff() error
}

// Typed protocol errors. The transport carries them by name so
// errors.Is works across the wire.
var (
	// ErrOutOfSync reports an append or rotation that does not continue
	// the follower's current position; the leader heals by catch-up.
	ErrOutOfSync = errors.New("replica: position mismatch")
	// ErrCorruptFrame reports a frame whose CRC or structure is invalid.
	// The follower never applies or persists such a frame.
	ErrCorruptFrame = errors.New("replica: corrupt frame")
	// ErrPromoted reports a follower that has been promoted and no
	// longer accepts replication traffic.
	ErrPromoted = errors.New("replica: follower promoted")
	// ErrShardBroken reports a follower shard whose local state hit a
	// storage error; a Reset (full re-mirror) repairs it.
	ErrShardBroken = errors.New("replica: follower shard broken")
)

// ShardDir returns shard i's WAL directory under a data dir — the same
// layout internal/server uses, so a promoted follower's directory is
// directly servable.
func ShardDir(dataDir string, i int) string {
	return filepath.Join(dataDir, fmt.Sprintf("shard-%d", i))
}
