package replica

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/wal"
)

// pair is a leader log wired through a Replicator to an in-process
// Follower, both on MemFS, with a NetFault on the link.
type pair struct {
	t      *testing.T
	fsL    *faultfs.MemFS
	fsF    *faultfs.MemFS
	fol    *Follower
	rep    *Replicator
	net    *faultfs.NetFault
	log    *wal.Log
	policy wal.SyncPolicy
	oracle map[string]*wal.SessionImage
}

const (
	leaderDir = "lead"
	folDir    = "fol"
)

func newPair(t *testing.T, quorum bool) *pair {
	t.Helper()
	p := &pair{
		t:      t,
		fsL:    faultfs.NewMemFS(),
		fsF:    faultfs.NewMemFS(),
		net:    &faultfs.NetFault{},
		oracle: map[string]*wal.SessionImage{},
	}
	fol, err := NewFollower(FollowerOptions{Dir: folDir, FS: p.fsF, Shards: 1})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	p.fol = fol
	rep, err := NewReplicator(ReplicatorOptions{
		Peer:    &FaultPeer{Inner: fol, Net: p.net},
		FS:      p.fsL,
		DataDir: leaderDir,
		Shards:  1,
		Quorum:  quorum,
	})
	if err != nil {
		t.Fatalf("NewReplicator: %v", err)
	}
	p.rep = rep
	p.openLog()
	return p
}

// openLog (re)opens the leader WAL with the ship hook attached.
func (p *pair) openLog() {
	p.t.Helper()
	lg, _, err := wal.Open(wal.Options{
		Dir:    ShardDir(leaderDir, 0),
		FS:     p.fsL,
		Policy: p.policy,
		Ship:   func(ev wal.ShipEvent) error { return p.rep.Ship(0, ev) },
	})
	if err != nil {
		p.t.Fatalf("wal.Open: %v", err)
	}
	p.log = lg
}

// createRec logs a session create, tracking the fold oracle.
func (p *pair) createRec(id string) error {
	rec := &wal.Record{Type: wal.TypeCreate, Session: id, Scenario: "house", Mode: "ADPM", MaxOps: 100}
	_, err := p.log.Append(rec)
	if err == nil {
		if ferr := wal.Fold(p.oracle, rec); ferr != nil {
			p.t.Fatalf("oracle fold: %v", ferr)
		}
	}
	return err
}

// opsRec logs an ops batch for id, tracking the fold oracle.
func (p *pair) opsRec(id, key string, i int) error {
	rec := &wal.Record{Type: wal.TypeOps, Session: id, Key: key,
		Ops: []byte(fmt.Sprintf(`[{"op":"set","n":%d}]`, i))}
	_, err := p.log.Append(rec)
	if err == nil {
		if ferr := wal.Fold(p.oracle, rec); ferr != nil {
			p.t.Fatalf("oracle fold: %v", ferr)
		}
	}
	return err
}

// snapshotRec builds the rotation snapshot from the oracle.
func (p *pair) snapshotRec() *wal.Record {
	rec := &wal.Record{Type: wal.TypeSnapshot}
	for _, im := range p.oracle {
		rec.Sessions = append(rec.Sessions, *im.Clone())
	}
	return rec
}

// requireMirror asserts the follower's shard directory holds exactly
// the leader's segment files, byte for byte.
func requireMirror(t *testing.T, fsL, fsF faultfs.FS, shard int) {
	t.Helper()
	ld, fd := ShardDir(leaderDir, shard), ShardDir(folDir, shard)
	lsegs, err := wal.ListSegments(fsL, ld)
	if err != nil {
		t.Fatalf("leader ListSegments: %v", err)
	}
	fsegs, err := wal.ListSegments(fsF, fd)
	if err != nil {
		t.Fatalf("follower ListSegments: %v", err)
	}
	if len(lsegs) != len(fsegs) {
		t.Fatalf("segment sets differ: leader %v follower %v", lsegs, fsegs)
	}
	for i := range lsegs {
		if lsegs[i] != fsegs[i] {
			t.Fatalf("segment sets differ: leader %v follower %v", lsegs, fsegs)
		}
		lb, err := fsL.ReadFile(wal.SegmentPath(ld, lsegs[i]))
		if err != nil {
			t.Fatalf("leader read seg %d: %v", lsegs[i], err)
		}
		fb, err := fsF.ReadFile(wal.SegmentPath(fd, fsegs[i]))
		if err != nil {
			t.Fatalf("follower read seg %d: %v", fsegs[i], err)
		}
		if !bytes.Equal(lb, fb) {
			t.Fatalf("segment %d differs: leader %d bytes, follower %d bytes", lsegs[i], len(lb), len(fb))
		}
	}
}

// requireOracle asserts the follower's folded sessions match the fold
// oracle (ids and accepted-batch counts).
func (p *pair) requireOracle() {
	p.t.Helper()
	got := p.fol.Sessions(0)
	if len(got) != len(p.oracle) {
		p.t.Fatalf("follower has %d sessions, oracle %d", len(got), len(p.oracle))
	}
	for id, want := range p.oracle {
		im := got[id]
		if im == nil {
			p.t.Fatalf("follower missing session %s", id)
		}
		if len(im.Ops) != len(want.Ops) {
			p.t.Fatalf("session %s: follower has %d batches, oracle %d", id, len(im.Ops), len(want.Ops))
		}
	}
}

func TestShipMirrorsByteIdentical(t *testing.T) {
	p := newPair(t, true)
	if err := p.createRec("s0-1"); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := p.opsRec("s0-1", fmt.Sprintf("k%d", i), i); err != nil {
			t.Fatalf("ops %d: %v", i, err)
		}
	}
	requireMirror(t, p.fsL, p.fsF, 0)
	p.requireOracle()
	st := p.rep.ShardStatus(0)
	if !st.InSync || st.LagRecords != 0 {
		t.Fatalf("expected in-sync zero lag, got %+v", st)
	}
}

func TestRotateShipsAndPrunes(t *testing.T) {
	p := newPair(t, true)
	if err := p.createRec("s0-1"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := p.opsRec("s0-1", "k0", 0); err != nil {
		t.Fatalf("ops: %v", err)
	}
	if err := p.log.Rotate(p.snapshotRec()); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if err := p.opsRec("s0-1", "k1", 1); err != nil {
		t.Fatalf("ops after rotate: %v", err)
	}
	requireMirror(t, p.fsL, p.fsF, 0)
	p.requireOracle()
	segs, _ := wal.ListSegments(p.fsF, ShardDir(folDir, 0))
	if len(segs) != 1 || segs[0] != 2 {
		t.Fatalf("follower should hold only rotated segment 2, got %v", segs)
	}
}

func TestAsyncAbsorbsAndCatchesUp(t *testing.T) {
	p := newPair(t, false)
	if err := p.createRec("s0-1"); err != nil {
		t.Fatalf("create: %v", err)
	}
	p.net.SetPartitioned(true)
	for i := 0; i < 3; i++ {
		if err := p.opsRec("s0-1", fmt.Sprintf("k%d", i), i); err != nil {
			t.Fatalf("async append must absorb ship failure, got %v", err)
		}
	}
	st := p.rep.ShardStatus(0)
	if st.InSync || st.LagRecords != 3 {
		t.Fatalf("expected out-of-sync lag=3, got %+v", st)
	}
	p.net.SetPartitioned(false)
	if err := p.rep.CatchUp(0); err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	requireMirror(t, p.fsL, p.fsF, 0)
	p.requireOracle()
	st = p.rep.ShardStatus(0)
	if !st.InSync || st.LagRecords != 0 || st.LagBytes != 0 {
		t.Fatalf("expected in-sync zero lag after catch-up, got %+v", st)
	}
}

func TestGroupCommitHealsAsyncLag(t *testing.T) {
	p := newPair(t, false)
	// Reopen the leader under group commit: ShipSync only fires when a
	// Sync actually flushes dirty appends.
	if err := p.log.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	p.policy = wal.SyncInterval
	p.rep.Invalidate()
	p.openLog()
	if err := p.createRec("s0-1"); err != nil {
		t.Fatalf("create: %v", err)
	}
	p.net.SetPartitioned(true)
	if err := p.opsRec("s0-1", "k0", 0); err != nil {
		t.Fatalf("append: %v", err)
	}
	p.net.SetPartitioned(false)
	// A group commit (ShipSync) is a free catch-up opportunity.
	if err := p.log.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if st := p.rep.ShardStatus(0); !st.InSync {
		t.Fatalf("group commit should have healed lag, got %+v", st)
	}
	requireMirror(t, p.fsL, p.fsF, 0)
}

func TestQuorumShipFailureFailsAppendButStaysLogged(t *testing.T) {
	p := newPair(t, true)
	if err := p.createRec("s0-1"); err != nil {
		t.Fatalf("create: %v", err)
	}
	p.net.SetPartitioned(true)
	err := p.opsRec("s0-1", "k0", 0)
	if err == nil {
		t.Fatalf("quorum append must fail while partitioned")
	}
	// The record is in the leader's local log even though the client
	// would never see an ack — the in-doubt contract.
	_, off := p.log.Position()
	data, rerr := p.fsL.ReadFile(wal.SegmentPath(ShardDir(leaderDir, 0), 1))
	if rerr != nil {
		t.Fatalf("read leader segment: %v", rerr)
	}
	if int64(len(data)) != off {
		t.Fatalf("leader segment %d bytes, position says %d", len(data), off)
	}
	recs := 0
	for rem := data; len(rem) > 0; {
		frame, ferr := nextFrame(rem)
		if frame == nil {
			t.Fatalf("leader log unclean: %v", ferr)
		}
		rem = rem[len(frame):]
		recs++
	}
	if recs != 2 {
		t.Fatalf("leader log should hold create+ops, got %d records", recs)
	}
	// Heal: the next append repairs by catch-up and the in-doubt record
	// ships along with it.
	p.net.SetPartitioned(false)
	if err := p.opsRec("s0-1", "k1", 1); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	requireMirror(t, p.fsL, p.fsF, 0)
	if st := p.rep.ShardStatus(0); !st.InSync {
		t.Fatalf("expected in-sync after heal, got %+v", st)
	}
}

func TestQuorumRepairsTransientDropSynchronously(t *testing.T) {
	p := newPair(t, true)
	if err := p.createRec("s0-1"); err != nil {
		t.Fatalf("create: %v", err)
	}
	dropped := false
	p.net.OnMsg = func(n int, kind string) error {
		if kind == "append" && !dropped {
			dropped = true
			return errors.New("injected drop")
		}
		return nil
	}
	// The dropped ship is repaired by the synchronous catch-up inside
	// Ship, so the client append still succeeds.
	if err := p.opsRec("s0-1", "k0", 0); err != nil {
		t.Fatalf("append should survive one dropped message, got %v", err)
	}
	if !dropped {
		t.Fatalf("hook never fired")
	}
	requireMirror(t, p.fsL, p.fsF, 0)
}

func TestHandoffPromoteRecover(t *testing.T) {
	p := newPair(t, true)
	if err := p.createRec("s0-1"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := p.opsRec("s0-1", "k0", 0); err != nil {
		t.Fatalf("ops: %v", err)
	}
	if err := p.log.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := p.rep.Handoff(); err != nil {
		t.Fatalf("Handoff: %v", err)
	}
	if !p.fol.HandoffReceived() {
		t.Fatalf("handoff flag not set")
	}
	if err := p.fol.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if _, err := p.fol.Append(0, 1, 0, nil); !errors.Is(err, ErrPromoted) {
		t.Fatalf("post-promote append: want ErrPromoted, got %v", err)
	}
	// The promoted directory recovers with wal.Open exactly like a
	// restarted leader would.
	_, info, err := wal.Open(wal.Options{Dir: ShardDir(folDir, 0), FS: p.fsF})
	if err != nil {
		t.Fatalf("open promoted dir: %v", err)
	}
	if len(info.Sessions) != 1 || info.Sessions["s0-1"] == nil {
		t.Fatalf("promoted recovery sessions = %v", info.Sessions)
	}
	if got := len(info.Sessions["s0-1"].Ops); got != 1 {
		t.Fatalf("promoted session has %d batches, want 1", got)
	}
}

func TestRejoinDivergentSuffixResets(t *testing.T) {
	p := newPair(t, true)
	if err := p.createRec("s0-1"); err != nil {
		t.Fatalf("create: %v", err)
	}
	requireMirror(t, p.fsL, p.fsF, 0)
	// Simulate an ex-leader rejoining: the follower has an extra acked
	// suffix the new leader never saw.
	pos, err := p.fol.Pos(0)
	if err != nil {
		t.Fatalf("pos: %v", err)
	}
	extra := wal.EncodeFrame([]byte(`{"type":"ops","session":"s0-1","ops":[]}`))
	if _, err := p.fol.Append(0, pos.Seg, pos.Off, extra); err != nil {
		t.Fatalf("divergent append: %v", err)
	}
	p.rep.Invalidate()
	if err := p.rep.CatchUp(0); err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	// The divergent suffix reset away; follower mirrors the leader.
	requireMirror(t, p.fsL, p.fsF, 0)
	p.requireOracle()
}

func TestFollowerRestartResumesFromDurable(t *testing.T) {
	p := newPair(t, true)
	if err := p.createRec("s0-1"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := p.opsRec("s0-1", "k0", 0); err != nil {
		t.Fatalf("ops: %v", err)
	}
	// Crash the follower (volatile state gone — but every frame was
	// fsynced) and restart it on the same disk.
	p.fsF.Crash()
	fol, err := NewFollower(FollowerOptions{Dir: folDir, FS: p.fsF, Shards: 1})
	if err != nil {
		t.Fatalf("NewFollower after crash: %v", err)
	}
	p.fol = fol
	p.rep.SetPeer(&FaultPeer{Inner: fol, Net: p.net})
	p.rep.Invalidate()
	if err := p.opsRec("s0-1", "k1", 1); err != nil {
		t.Fatalf("append after follower restart: %v", err)
	}
	requireMirror(t, p.fsL, p.fsF, 0)
	p.requireOracle()
}

func TestTransportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fol, err := NewFollower(FollowerOptions{Dir: filepath.Join(dir, "fol"), Shards: 2})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go Serve(ln, fol)
	c := Dial(ln.Addr().String())
	defer c.Close()

	pos, err := c.Pos(0)
	if err != nil || pos != (Pos{}) {
		t.Fatalf("pos: %v %v", pos, err)
	}
	frame := wal.EncodeFrame([]byte(`{"type":"create","session":"s0-1","mode":"ADPM","max_ops":10}`))
	// First contact is out of sync (follower at seg 0, leader at seg 1):
	// the typed error must survive the wire.
	if _, err := c.Append(0, 1, 0, frame); !errors.Is(err, ErrOutOfSync) {
		t.Fatalf("append at seg 1: want ErrOutOfSync, got %v", err)
	}
	if _, err := c.CopySegment(0, 1, frame); err != nil {
		t.Fatalf("copy: %v", err)
	}
	ops := wal.EncodeFrame([]byte(`{"type":"ops","session":"s0-1","ops":[]}`))
	got, err := c.Append(0, 1, int64(len(frame)), ops)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	want := Pos{Seg: 1, Off: int64(len(frame) + len(ops)),
		CRC: wal.ChecksumUpdate(wal.Checksum(frame), ops)}
	if got != want {
		t.Fatalf("append pos = %v, want %v", got, want)
	}
	// Corrupt frame: flip one payload bit; the follower must reject it
	// with the typed error and keep its position.
	bad := append([]byte(nil), ops...)
	bad[len(bad)-1] ^= 0x01
	if _, err := c.Append(0, 1, want.Off, bad); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupt append: want ErrCorruptFrame, got %v", err)
	}
	if pos, _ := c.Pos(0); pos != want {
		t.Fatalf("position moved after corrupt frame: %v", pos)
	}
	if err := c.Handoff(); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if !fol.HandoffReceived() {
		t.Fatalf("handoff flag not set over the wire")
	}
	if sess := fol.Sessions(0); len(sess) != 1 || len(sess["s0-1"].Ops) != 1 {
		t.Fatalf("follower sessions after wire traffic: %v", sess)
	}
}
