package replica

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/faultfs"
	"repro/internal/wal"
)

// ReplicatorOptions parameterize NewReplicator.
type ReplicatorOptions struct {
	// Peer is the follower link (a *Follower in process, a *Client over
	// TCP, or a FaultPeer wrapping either).
	Peer Peer
	// FS and DataDir locate the leader's own segment files for
	// catch-up reads; they must match the server's.
	FS      faultfs.FS
	DataDir string
	// Shards is the shard count.
	Shards int
	// Quorum makes append ships part of the durability contract: a
	// ship that cannot reach the follower fails the append, so the
	// client's batch is never acknowledged leader-only. False is async
	// mode — ship failures are absorbed and the lag gauge grows.
	Quorum bool
}

// Status is one shard's replication state as seen from the leader.
type Status struct {
	Role       string `json:"role"`
	Quorum     bool   `json:"quorum"`
	InSync     bool   `json:"in_sync"`
	LagRecords int64  `json:"lag_records"`
	LagBytes   int64  `json:"lag_bytes"`
}

// rshard is one shard's leader-side replication state.
type rshard struct {
	mu         sync.Mutex
	inSync     bool
	lagRecords int64
	lagBytes   int64
}

// Replicator is the leader side of replication: it forwards the WAL's
// ship events to the follower, tracks per-shard sync state and lag,
// and heals divergence by catch-up — comparing the follower's
// (segment, offset, CRC) position against the leader's own segment
// bytes and streaming the difference (or re-mirroring wholesale).
// It plugs into server.Options.Repl.
type Replicator struct {
	opts   ReplicatorOptions
	peerMu sync.RWMutex
	peer   Peer
	shards []*rshard
}

// NewReplicator builds a replicator. Every shard starts out of sync;
// the first ship (or an explicit CatchUpAll) brings the follower up.
func NewReplicator(opts ReplicatorOptions) (*Replicator, error) {
	if opts.Peer == nil {
		return nil, fmt.Errorf("replica: ReplicatorOptions.Peer is required")
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS{}
	}
	if opts.Shards <= 0 {
		return nil, fmt.Errorf("replica: ReplicatorOptions.Shards is required")
	}
	r := &Replicator{opts: opts, peer: opts.Peer}
	for i := 0; i < opts.Shards; i++ {
		r.shards = append(r.shards, &rshard{})
	}
	return r, nil
}

// Peer returns the current follower link.
func (r *Replicator) Peer() Peer {
	r.peerMu.RLock()
	defer r.peerMu.RUnlock()
	return r.peer
}

// SetPeer swaps the follower link (a restarted follower process). The
// caller should follow with Invalidate so every shard re-verifies its
// position against the new peer.
func (r *Replicator) SetPeer(p Peer) {
	r.peerMu.Lock()
	r.peer = p
	r.peerMu.Unlock()
}

// Invalidate marks every shard out of sync; the next ship per shard
// runs a catch-up.
func (r *Replicator) Invalidate() {
	for _, rs := range r.shards {
		rs.mu.Lock()
		rs.inSync = false
		rs.mu.Unlock()
	}
}

// Ship implements the server's Shipper hook: one WAL mutation, in the
// shard's commit order. Quorum append failures propagate (the server
// maps them to ErrStorage and refuses the ack); everything else is
// absorbed into the lag gauge and healed by a later catch-up.
func (r *Replicator) Ship(shard int, ev wal.ShipEvent) error {
	if shard < 0 || shard >= len(r.shards) {
		return fmt.Errorf("replica: ship for unknown shard %d", shard)
	}
	rs := r.shards[shard]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	switch ev.Kind {
	case wal.ShipAppend:
		if !rs.inSync {
			// The frame is already in the leader's local segment, so a
			// successful catch-up ships it along with everything else
			// the follower was missing.
			if err := r.catchUpLocked(shard, rs); err != nil {
				rs.lagRecords++
				rs.lagBytes += int64(len(ev.Frame))
				if r.opts.Quorum {
					return err
				}
				return nil
			}
			return nil
		}
		if _, err := r.Peer().Append(shard, ev.Seg, ev.Off, ev.Frame); err != nil {
			rs.inSync = false
			rs.lagRecords++
			rs.lagBytes += int64(len(ev.Frame))
			if r.opts.Quorum {
				// One immediate repair attempt: a transient error (or a
				// follower that restarted between ships) should not fail
				// client traffic when a catch-up fixes it synchronously.
				if cerr := r.catchUpLocked(shard, rs); cerr != nil {
					return err
				}
				return nil
			}
			return nil
		}
	case wal.ShipRotate:
		if !rs.inSync {
			r.absorbCatchUp(shard, rs, 1, int64(len(ev.Frame)))
			return nil
		}
		if _, err := r.Peer().Rotate(shard, ev.Seg, ev.Frame); err != nil {
			// Rotation already happened locally and its snapshot carries
			// only state the follower either has or will re-mirror; absorb.
			rs.inSync = false
			rs.lagRecords++
			rs.lagBytes += int64(len(ev.Frame))
		}
	case wal.ShipSync:
		// Group commits are free opportunities to heal an out-of-sync
		// shard without waiting for the next append.
		if !rs.inSync {
			r.absorbCatchUp(shard, rs, 0, 0)
		}
	}
	return nil
}

// absorbCatchUp attempts a catch-up and absorbs failure into the lag
// gauge.
func (r *Replicator) absorbCatchUp(shard int, rs *rshard, recs, bytes int64) {
	if err := r.catchUpLocked(shard, rs); err != nil {
		rs.lagRecords += recs
		rs.lagBytes += bytes
	}
}

// CatchUp brings one shard's follower up to the leader's current
// segment bytes.
func (r *Replicator) CatchUp(shard int) error {
	if shard < 0 || shard >= len(r.shards) {
		return fmt.Errorf("replica: unknown shard %d", shard)
	}
	rs := r.shards[shard]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return r.catchUpLocked(shard, rs)
}

// CatchUpAll catches every shard up (boot, and before handoff).
func (r *Replicator) CatchUpAll() error {
	for i := range r.shards {
		if err := r.CatchUp(i); err != nil {
			return fmt.Errorf("replica: shard %d catch-up: %w", i, err)
		}
	}
	return nil
}

// Handoff finishes a rolling restart: with the server drained (WALs
// flushed and closed), catch every shard fully up, then tell the
// follower it owns the data now.
func (r *Replicator) Handoff() error {
	if err := r.CatchUpAll(); err != nil {
		return err
	}
	return r.Peer().Handoff()
}

// catchUpLocked reconciles the follower with the leader's segment
// files. rs.mu must be held. On success the shard is in sync and its
// lag gauge resets.
func (r *Replicator) catchUpLocked(shard int, rs *rshard) error {
	peer := r.Peer()
	pos, err := peer.Pos(shard)
	forceReset := false
	if err != nil {
		if !errors.Is(err, ErrShardBroken) {
			return err
		}
		// A broken follower shard is repaired by a full re-mirror.
		forceReset = true
	}
	dir := ShardDir(r.opts.DataDir, shard)
	segs, err := wal.ListSegments(r.opts.FS, dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		if forceReset || pos.Seg != 0 {
			if _, err := peer.Reset(shard); err != nil {
				return err
			}
		}
		rs.inSync = true
		rs.lagRecords, rs.lagBytes = 0, 0
		return nil
	}
	newest := segs[len(segs)-1]
	data, err := r.opts.FS.ReadFile(wal.SegmentPath(dir, newest))
	if err != nil {
		return err
	}
	if !forceReset && pos.Seg == newest && pos.Off <= int64(len(data)) &&
		wal.Checksum(data[:pos.Off]) == pos.CRC {
		// The follower holds a verified prefix of our newest segment:
		// stream the missing tail frame by frame.
		off := pos.Off
		for off < int64(len(data)) {
			frame, ferr := nextFrame(data[off:])
			if frame == nil {
				return fmt.Errorf("replica: leader segment %d unclean at offset %d: %v", newest, off, ferr)
			}
			if _, err := peer.Append(shard, newest, off, frame); err != nil {
				return err
			}
			off += int64(len(frame))
		}
	} else {
		// Divergence (a promoted-and-rejoined ex-leader's extra suffix,
		// a torn follower, an unknown segment): reset and re-mirror.
		if _, err := peer.Reset(shard); err != nil {
			return err
		}
		for _, sg := range segs {
			d, err := r.opts.FS.ReadFile(wal.SegmentPath(dir, sg))
			if err != nil {
				return err
			}
			if _, err := peer.CopySegment(shard, sg, d); err != nil {
				return err
			}
		}
	}
	rs.inSync = true
	rs.lagRecords, rs.lagBytes = 0, 0
	return nil
}

// ShardStatus reports one shard's replication state for /readyz.
func (r *Replicator) ShardStatus(shard int) Status {
	st := Status{Role: "leader", Quorum: r.opts.Quorum}
	if shard < 0 || shard >= len(r.shards) {
		return st
	}
	rs := r.shards[shard]
	rs.mu.Lock()
	st.InSync = rs.inSync
	st.LagRecords = rs.lagRecords
	st.LagBytes = rs.lagBytes
	rs.mu.Unlock()
	return st
}
