package replica

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/wal"
)

// The wire protocol is deliberately the WAL's own idiom: every message
// is one length+CRC32C frame ([len uint32 LE][crc uint32 LE][JSON]),
// so a torn or bit-flipped message is detected by the same checksum
// discipline that guards the log itself, and the connection fails
// closed instead of applying garbage.

// wireReq is one request frame.
type wireReq struct {
	Op    string `json:"op"` // pos|append|rotate|copy|reset|handoff|adopt
	Shard int    `json:"shard"`
	Seg   int    `json:"seg,omitempty"`
	Off   int64  `json:"off,omitempty"`
	Data  []byte `json:"data,omitempty"`
}

// Adopter is the optional session-migration extension of a served
// peer: "adopt" frames carry one wal.SessionImage (the exported
// history of a parked session) and install it durably on the receiving
// pair. internal/cluster ships migrations through the same framed,
// CRC-checked transport WAL replication uses; peers that do not
// implement Adopter reject the verb.
type Adopter interface {
	Adopt(img *wal.SessionImage) error
}

// wireResp is one response frame. ErrKind carries the protocol's typed
// errors by name so errors.Is works across the wire.
type wireResp struct {
	Pos     Pos    `json:"pos"`
	Err     string `json:"err,omitempty"`
	ErrKind string `json:"err_kind,omitempty"`
}

// errKind names a typed error for the wire.
func errKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrOutOfSync):
		return "out_of_sync"
	case errors.Is(err, ErrCorruptFrame):
		return "corrupt"
	case errors.Is(err, ErrPromoted):
		return "promoted"
	case errors.Is(err, ErrShardBroken):
		return "broken"
	}
	return "other"
}

// kindErr rebuilds the typed error on the client side.
func kindErr(kind, msg string) error {
	switch kind {
	case "":
		return nil
	case "out_of_sync":
		return fmt.Errorf("%w: %s", ErrOutOfSync, msg)
	case "corrupt":
		return fmt.Errorf("%w: %s", ErrCorruptFrame, msg)
	case "promoted":
		return fmt.Errorf("%w: %s", ErrPromoted, msg)
	case "broken":
		return fmt.Errorf("%w: %s", ErrShardBroken, msg)
	}
	return fmt.Errorf("replica: peer error: %s", msg)
}

// writeMsg frames and writes one message.
func writeMsg(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(wal.EncodeFrame(payload))
	return err
}

// readMsg reads and verifies one framed message.
func readMsg(r io.Reader, v any) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if int64(n) > wal.MaxRecordBytes {
		return fmt.Errorf("replica: message of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	if wal.Checksum(buf) != binary.LittleEndian.Uint32(hdr[4:]) {
		return fmt.Errorf("replica: message CRC mismatch")
	}
	return json.Unmarshal(buf, v)
}

// Serve accepts replication connections and dispatches their requests
// to peer (normally a *Follower). It returns when the listener closes.
func Serve(ln net.Listener, peer Peer) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, peer)
	}
}

// serveConn handles one leader connection until it drops.
func serveConn(conn net.Conn, peer Peer) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		var req wireReq
		if err := readMsg(br, &req); err != nil {
			return
		}
		var pos Pos
		var err error
		switch req.Op {
		case "pos":
			pos, err = peer.Pos(req.Shard)
		case "append":
			pos, err = peer.Append(req.Shard, req.Seg, req.Off, req.Data)
		case "rotate":
			pos, err = peer.Rotate(req.Shard, req.Seg, req.Data)
		case "copy":
			pos, err = peer.CopySegment(req.Shard, req.Seg, req.Data)
		case "reset":
			pos, err = peer.Reset(req.Shard)
		case "handoff":
			err = peer.Handoff()
		case "adopt":
			a, ok := peer.(Adopter)
			if !ok {
				err = fmt.Errorf("replica: peer does not accept session adoption")
				break
			}
			var img wal.SessionImage
			if err = json.Unmarshal(req.Data, &img); err != nil {
				err = fmt.Errorf("replica: undecodable adopt image: %w", err)
				break
			}
			err = a.Adopt(&img)
		default:
			err = fmt.Errorf("replica: unknown op %q", req.Op)
		}
		resp := wireResp{Pos: pos}
		if err != nil {
			resp.Err = err.Error()
			resp.ErrKind = errKind(err)
		}
		if err := writeMsg(bw, &resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Client speaks the replication protocol to a remote follower. It
// implements Peer. Connections are dialed lazily and redialed after
// any transport error, so a follower restart heals on the next call.
// Safe for concurrent use (requests are serialized).
type Client struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

// Dial creates a client for the follower at addr. The TCP connection
// is established on first use.
func Dial(addr string) *Client { return &Client{addr: addr} }

// do performs one request/response exchange.
func (c *Client) do(req *wireReq) (*wireResp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			return nil, err
		}
		c.conn = conn
		c.br = bufio.NewReader(conn)
	}
	fail := func(err error) (*wireResp, error) {
		c.conn.Close()
		c.conn, c.br = nil, nil
		return nil, err
	}
	if err := writeMsg(c.conn, req); err != nil {
		return fail(err)
	}
	var resp wireResp
	if err := readMsg(c.br, &resp); err != nil {
		return fail(err)
	}
	return &resp, nil
}

// call performs one exchange and maps the typed error back.
func (c *Client) call(req *wireReq) (Pos, error) {
	resp, err := c.do(req)
	if err != nil {
		return Pos{}, err
	}
	return resp.Pos, kindErr(resp.ErrKind, resp.Err)
}

// Pos implements Peer.
func (c *Client) Pos(shard int) (Pos, error) {
	return c.call(&wireReq{Op: "pos", Shard: shard})
}

// Append implements Peer.
func (c *Client) Append(shard, seg int, off int64, frame []byte) (Pos, error) {
	return c.call(&wireReq{Op: "append", Shard: shard, Seg: seg, Off: off, Data: frame})
}

// Rotate implements Peer.
func (c *Client) Rotate(shard, seg int, frame []byte) (Pos, error) {
	return c.call(&wireReq{Op: "rotate", Shard: shard, Seg: seg, Data: frame})
}

// CopySegment implements Peer.
func (c *Client) CopySegment(shard, seg int, data []byte) (Pos, error) {
	return c.call(&wireReq{Op: "copy", Shard: shard, Seg: seg, Data: data})
}

// Reset implements Peer.
func (c *Client) Reset(shard int) (Pos, error) {
	return c.call(&wireReq{Op: "reset", Shard: shard})
}

// Handoff implements Peer.
func (c *Client) Handoff() error {
	_, err := c.call(&wireReq{Op: "handoff"})
	return err
}

// Adopt implements Adopter: it ships one session image to the remote
// peer, which installs it durably before acknowledging.
func (c *Client) Adopt(img *wal.SessionImage) error {
	data, err := json.Marshal(img)
	if err != nil {
		return fmt.Errorf("replica: encoding adopt image: %w", err)
	}
	_, err = c.call(&wireReq{Op: "adopt", Data: data})
	return err
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn, c.br = nil, nil
		return err
	}
	return nil
}
