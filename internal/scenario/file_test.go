package scenario_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dddl"
	"repro/internal/dpm"
	"repro/internal/solver"
	"repro/internal/teamsim"
)

// TestRegulatorScenarioFile exercises the user-facing DDDL file
// workflow on the shipped LDO regulator scenario: parse, validate,
// prove satisfiable, and complete a TeamSim run in both modes.
func TestRegulatorScenarioFile(t *testing.T) {
	path := filepath.Join("..", "..", "scenarios", "regulator.dddl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	scn, err := dddl.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if scn.Name != "regulator" {
		t.Errorf("name = %q", scn.Name)
	}
	net, err := scn.BuildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if net.NumProperties() < 15 || net.NumConstraints() < 12 {
		t.Errorf("network %d/%d smaller than expected", net.NumProperties(), net.NumConstraints())
	}

	res, err := solver.SolveScenario(scn, solver.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatalf("regulator specs unsatisfiable (nodes=%d exhausted=%v)", res.Nodes, res.Exhausted)
	}

	for _, mode := range []dpm.Mode{dpm.Conventional, dpm.ADPM} {
		completed := 0
		for seed := int64(1); seed <= 5; seed++ {
			r, err := teamsim.Run(teamsim.Config{Scenario: scn, Mode: mode, Seed: seed, MaxOps: 3000})
			if err != nil {
				t.Fatal(err)
			}
			if r.Completed {
				completed++
			}
		}
		if completed < 4 {
			t.Errorf("mode %v: only %d/5 seeds completed", mode, completed)
		}
	}
}
