package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/dddl"
)

// Random generates a pseudo-random collaborative design scenario that
// is satisfiable by construction: a witness point is drawn first and
// every requirement level is set with slack around the witness's
// performance values. The generator produces the same structural
// ingredients as the built-in cases — per-designer objects with design
// variables, derived performance properties, local constraints, and
// cross-subsystem system-level specs — which makes it a pipeline-level
// fuzzer: any generated scenario must validate, be solvable, and be
// completable by TeamSim in both modes.
//
// The generated source is runtime data, not a static definition, so
// Random returns parse failures as errors instead of panicking; any
// error indicates a generator bug.
func Random(seed int64, designers int) (*dddl.Scenario, error) {
	if designers < 1 {
		designers = 1
	}
	if designers > 8 {
		designers = 8
	}
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	fmt.Fprintf(&b, "scenario random_%d\n", seed)

	type varInfo struct {
		name    string
		lo, hi  float64
		witness float64
	}
	type designerInfo struct {
		id      string
		vars    []varInfo
		derived string  // performance property name
		perf    float64 // witness performance value
	}

	var team []designerInfo
	witness := map[string]float64{}

	for di := 0; di < designers; di++ {
		d := designerInfo{id: fmt.Sprintf("d%d", di)}
		nVars := 2 + rng.Intn(2)
		for vi := 0; vi < nVars; vi++ {
			lo := math.Round(rng.Float64()*10*100) / 100
			width := 1 + rng.Float64()*99
			hi := math.Round((lo+width)*100) / 100
			v := varInfo{
				name: fmt.Sprintf("x%d_%d", di, vi),
				lo:   lo,
				hi:   hi,
			}
			// Witness strictly inside the range.
			v.witness = lo + (0.2+0.6*rng.Float64())*(hi-lo)
			witness[v.name] = v.witness
			d.vars = append(d.vars, v)
		}
		team = append(team, d)
	}

	// Objects with variables and one derived performance property per
	// designer: perf = Σ c_i·x_i (+ optional sqrt term), c_i > 0.
	for di := range team {
		d := &team[di]
		fmt.Fprintf(&b, "\nobject O%d owner %s {\n", di, d.id)
		for _, v := range d.vars {
			fmt.Fprintf(&b, "    property %s real [%g, %g]\n", v.name, v.lo, v.hi)
		}
		var terms []string
		perf := 0.0
		for vi, v := range d.vars {
			c := math.Round((0.5+rng.Float64()*4)*100) / 100
			if vi == 0 && rng.Intn(2) == 0 {
				terms = append(terms, fmt.Sprintf("%g * sqrt(%s)", c, v.name))
				perf += c * math.Sqrt(v.witness)
			} else {
				terms = append(terms, fmt.Sprintf("%g * %s", c, v.name))
				perf += c * v.witness
			}
		}
		d.derived = fmt.Sprintf("perf%d", di)
		d.perf = perf
		hi := perf*4 + 100
		fmt.Fprintf(&b, "    derived %s real [0, %g] = %s\n", d.derived, math.Ceil(hi), strings.Join(terms, " + "))
		b.WriteString("}\n")
	}

	// System-level totals across all designers.
	total := 0.0
	var perfNames []string
	for _, d := range team {
		perfNames = append(perfNames, d.derived)
		total += d.perf
	}
	sysHi := total*4 + 100
	fmt.Fprintf(&b, "\nobject Sys {\n")
	fmt.Fprintf(&b, "    property SysBudget real [0, %g]\n", math.Ceil(sysHi*2))
	fmt.Fprintf(&b, "    derived SysTotal real [0, %g] = %s\n", math.Ceil(sysHi), strings.Join(perfNames, " + "))
	b.WriteString("}\n\n")

	// Local constraints: each designer's performance has a floor with
	// slack below the witness value; one variable gets a cap with slack
	// above the witness.
	for di, d := range team {
		floor := d.perf * (0.4 + 0.3*rng.Float64())
		fmt.Fprintf(&b, "constraint Floor%d: %s >= %g\n", di, d.derived, math.Floor(floor*100)/100)
		v := d.vars[rng.Intn(len(d.vars))]
		cap := v.witness + (0.2+0.5*rng.Float64())*(v.hi-v.witness)
		fmt.Fprintf(&b, "constraint Cap%d: %s <= %g\n", di, v.name, math.Ceil(cap*100)/100)
	}
	// Cross-subsystem budget: the system total must stay under a budget
	// with comfortable slack above the witness total.
	fmt.Fprintf(&b, "constraint Budget: SysTotal <= SysBudget\n\n")

	// Problem hierarchy.
	fmt.Fprintf(&b, "problem Top owner lead {\n    inputs { SysBudget }\n    constraints { Budget }\n}\n")
	var children []string
	for di, d := range team {
		var outs []string
		for _, v := range d.vars {
			outs = append(outs, v.name)
		}
		fmt.Fprintf(&b, "problem P%d owner %s {\n    outputs { %s }\n    constraints { Floor%d, Cap%d }\n}\n",
			di, d.id, strings.Join(outs, ", "), di, di)
		children = append(children, fmt.Sprintf("P%d", di))
	}
	fmt.Fprintf(&b, "decompose Top -> %s\n", strings.Join(children, ", "))

	budget := total * (1.15 + 0.5*rng.Float64())
	fmt.Fprintf(&b, "require SysBudget = %g\n", math.Ceil(budget*100)/100)

	scn, err := dddl.ParseString(b.String())
	if err != nil {
		return nil, fmt.Errorf("scenario: generated source for seed %d is invalid: %w", seed, err)
	}
	return scn, nil
}

// MustRandom is Random panicking on error, for tests and examples.
func MustRandom(seed int64, designers int) *dddl.Scenario {
	scn, err := Random(seed, designers)
	if err != nil {
		panic(err)
	}
	return scn
}

// RandomWitness returns the witness point the generator built the
// scenario around (design variables only), for test verification.
func RandomWitness(seed int64, designers int) map[string]float64 {
	// Re-derive by replaying the generator's random stream.
	if designers < 1 {
		designers = 1
	}
	if designers > 8 {
		designers = 8
	}
	rng := rand.New(rand.NewSource(seed))
	witness := map[string]float64{}
	for di := 0; di < designers; di++ {
		nVars := 2 + rng.Intn(2)
		for vi := 0; vi < nVars; vi++ {
			lo := math.Round(rng.Float64()*10*100) / 100
			width := 1 + rng.Float64()*99
			hi := math.Round((lo+width)*100) / 100
			witness[fmt.Sprintf("x%d_%d", di, vi)] = lo + (0.2+0.6*rng.Float64())*(hi-lo)
		}
	}
	return witness
}
