package scenario

import (
	"testing"

	"repro/internal/dpm"
)

func TestRandomScenarioValidatesAndSizes(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		scn, err := Random(seed, 1+int(seed%4))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := scn.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		net, err := scn.BuildNetwork()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if net.NumProperties() < 4 || net.NumConstraints() < 3 {
			t.Errorf("seed %d: degenerate network %d/%d", seed,
				net.NumProperties(), net.NumConstraints())
		}
	}
}

func TestRandomScenarioWitnessSatisfies(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		n := 1 + int(seed%4)
		scn, err := Random(seed, n)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		witness := RandomWitness(seed, n)
		d, err := dpm.FromScenario(scn, dpm.Conventional)
		if err != nil {
			t.Fatal(err)
		}
		for _, prob := range d.Problems() {
			for _, out := range prob.Outputs {
				v, ok := witness[out]
				if !ok {
					t.Fatalf("seed %d: witness missing %s", seed, out)
				}
				if _, err := d.Apply(dpm.Operation{
					Kind: dpm.OpSynthesis, Problem: prob.Name, Designer: "t",
					Assignments: []dpm.Assignment{{Prop: out, Value: realVal(v)}},
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, c := range d.Net.Constraints() {
			holds, known := c.HoldsAt(d.Net)
			if !known {
				t.Errorf("seed %d: %s not evaluable at witness", seed, c.Name)
				continue
			}
			if !holds {
				t.Errorf("seed %d: witness violates %s", seed, c.Name)
			}
		}
	}
}

func TestRandomScenarioClampsDesignerCount(t *testing.T) {
	if scn := MustRandom(1, 0); len(scn.Owners()) != 2 { // lead + d0
		t.Errorf("owners = %v", scn.Owners())
	}
	if scn := MustRandom(1, 100); len(scn.Owners()) != 9 { // lead + 8
		t.Errorf("owners = %v", scn.Owners())
	}
}

func TestRandomScenarioDeterministic(t *testing.T) {
	a := MustRandom(42, 3).Format()
	b := MustRandom(42, 3).Format()
	if a != b {
		t.Error("generator not deterministic for fixed seed")
	}
	c := MustRandom(43, 3).Format()
	if a == c {
		t.Error("different seeds produced identical scenarios")
	}
}
