package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/dddl"
	"repro/internal/domain"
	"repro/internal/dpm"
)

// Scale generates large constraint-network families for the 10⁴–10⁶
// property regime the paper's 26/35-property cases cannot exercise.
// Like Random, every family is satisfiable by construction: a witness
// point is drawn first and every constraint is placed with slack around
// it (equalities are witness-exact), so the generated scenario must
// validate, build, and keep the witness inside every propagated window
// — which is what the soundness tests check. Generation is fully
// deterministic in (family, n, seed): two calls produce byte-identical
// DDDL (compare Scenario.Format()) and identical op scripts.
//
// The families stress different graph shapes:
//
//   - grid: an approximately √n×√n 4-neighbour mesh of inequality
//     constraints — one giant region with large diameter, the
//     worst case for incremental skipping and the showcase for the
//     parallel round engine.
//   - layers: a layered DAG of witness-exact derived equalities
//     (each node a convex combination of two previous-layer nodes) —
//     deep narrowing cascades, the MaxVisits stress.
//   - hub: hub-and-spoke groups — β-heavy hubs (the paper's β_i
//     metric), one small region per group.
//   - sparse: independent blocks with random binary/ternary
//     inequalities at controlled density — many small regions, the
//     showcase for incremental re-propagation.
//
// ScaleNames lists the family names; ByName accepts "family:n[:sSEED]"
// so the CLIs can run traced/pprof sessions on generated networks.
type ScaleNet struct {
	// Scenario is the generated DDDL document (validates, builds).
	Scenario *dddl.Scenario
	// Ops is the deterministic op script: witness-value syntheses with
	// periodic verifications, all passing dpm.Validate against the
	// built scenario.
	Ops []dpm.Operation
	// Witness maps every property (including derived ones) to the
	// witness point the network was built around.
	Witness map[string]float64
}

// ScaleFamilies lists the generated network families.
func ScaleFamilies() []string { return []string{"grid", "layers", "hub", "sparse"} }

// scaleProp is one generated property before AST assembly.
type scaleProp struct {
	name    string
	lo, hi  float64
	witness float64
	formula string // non-empty marks a derived property
}

// Scale generates one network family instance. n is clamped to [4,
// 1<<20] properties; the returned scenario has exactly the clamped n.
func Scale(family string, n int, seed int64) (*ScaleNet, error) {
	if n < 4 {
		n = 4
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("scenario: scale size %d exceeds the 2^20 property cap", n)
	}
	famIdx := -1
	for i, f := range ScaleFamilies() {
		if f == family {
			famIdx = i
		}
	}
	if famIdx < 0 {
		return nil, fmt.Errorf("scenario: unknown scale family %q (want one of %s)",
			family, strings.Join(ScaleFamilies(), ", "))
	}
	rng := rand.New(rand.NewSource(seed*31 + int64(n)*7919 + int64(famIdx)))

	props := make([]scaleProp, n)
	newBase := func(i int) {
		lo := math.Round(rng.Float64()*10*100) / 100
		width := 1 + rng.Float64()*99
		hi := math.Round((lo+width)*100) / 100
		props[i] = scaleProp{
			name:    fmt.Sprintf("p%06d", i),
			lo:      lo,
			hi:      hi,
			witness: lo + (0.2+0.6*rng.Float64())*(hi-lo),
		}
	}

	// Designers own contiguous property blocks.
	designers := n / 256
	if designers < 2 {
		designers = 2
	}
	if designers > 16 {
		designers = 16
	}
	ownerOf := func(pid int) int { return pid * designers / n }

	var cons []*dddl.ConstraintDecl
	probCons := make([][]string, designers)
	addCon := func(firstArg int, src string) {
		name := fmt.Sprintf("c%06d", len(cons))
		cons = append(cons, &dddl.ConstraintDecl{Name: name, Src: src})
		d := ownerOf(firstArg)
		probCons[d] = append(probCons[d], name)
	}
	// binaryLE/binaryGE place a two-variable inequality with slack
	// around the witness: satisfiable, but tight enough to narrow.
	binaryLE := func(u, v int) {
		a := math.Round((0.5+rng.Float64()*1.5)*100) / 100
		b := math.Round((0.5+rng.Float64()*1.5)*100) / 100
		s := (0.1 + 0.4*rng.Float64()) * (a*(props[u].hi-props[u].witness) + b*(props[v].hi-props[v].witness))
		c := math.Ceil((a*props[u].witness+b*props[v].witness+s)*100) / 100
		addCon(u, fmt.Sprintf("%g * %s + %g * %s <= %g", a, props[u].name, b, props[v].name, c))
	}
	binaryGE := func(u, v int) {
		a := math.Round((0.5+rng.Float64()*1.5)*100) / 100
		b := math.Round((0.5+rng.Float64()*1.5)*100) / 100
		s := (0.1 + 0.4*rng.Float64()) * (a*(props[u].witness-props[u].lo) + b*(props[v].witness-props[v].lo))
		c := math.Floor((a*props[u].witness+b*props[v].witness-s)*100) / 100
		addCon(u, fmt.Sprintf("%g * %s + %g * %s >= %g", a, props[u].name, b, props[v].name, c))
	}

	var reqs []*dddl.Requirement
	require := func(pid int) {
		reqs = append(reqs, &dddl.Requirement{
			Property: props[pid].name,
			Value:    domain.Real(props[pid].witness),
		})
	}
	// designPids collects the properties a synthesis op may bind
	// (non-derived, non-required).
	var designPids []int

	switch family {
	case "grid":
		g := int(math.Ceil(math.Sqrt(float64(n))))
		for i := 0; i < n; i++ {
			newBase(i)
		}
		for r := 0; r*g < n; r++ {
			for c := 0; c < g && r*g+c < n; c++ {
				i := r*g + c
				if c+1 < g && i+1 < n {
					if rng.Intn(5) == 0 {
						binaryGE(i, i+1)
					} else {
						binaryLE(i, i+1)
					}
				}
				if i+g < n {
					if rng.Intn(5) == 0 {
						binaryGE(i, i+g)
					} else {
						binaryLE(i, i+g)
					}
				}
			}
		}
		reqd := make(map[int]bool)
		for i := 0; i < n; i += g + 1 {
			require(i)
			reqd[i] = true
		}
		for i := 0; i < n; i++ {
			if !reqd[i] {
				designPids = append(designPids, i)
			}
		}

	case "layers":
		w := int(math.Ceil(math.Sqrt(float64(n))))
		for i := 0; i < w && i < n; i++ {
			newBase(i)
			if i%2 == 1 {
				designPids = append(designPids, i)
			} else {
				require(i)
			}
		}
		for i := w; i < n; i++ {
			l := i / w
			u := (l-1)*w + rng.Intn(w)
			v := (l-1)*w + rng.Intn(w)
			a := 0.3 + 0.4*rng.Float64()
			b := 1 - a
			c0 := math.Round(rng.Float64()*5*100) / 100
			// Witness and bounds computed in the same float evaluation
			// order the parsed formula uses, so the derived equality is
			// witness-exact to the last bit.
			props[i] = scaleProp{
				name:    fmt.Sprintf("p%06d", i),
				lo:      a*props[u].lo + b*props[v].lo + c0 - 1,
				hi:      a*props[u].hi + b*props[v].hi + c0 + 1,
				witness: a*props[u].witness + b*props[v].witness + c0,
				formula: fmt.Sprintf("%g * %s + %g * %s + %g", a, props[u].name, b, props[v].name, c0),
			}
			if i%8 == 7 {
				cap := math.Ceil((props[i].witness+0.3*(props[i].hi-props[i].witness))*100) / 100
				addCon(i, fmt.Sprintf("%s <= %g", props[i].name, cap))
			}
		}

	case "hub":
		spokes := 32
		if n < 66 {
			spokes = 8
		}
		group := spokes + 1
		for i := 0; i < n; i++ {
			newBase(i)
		}
		for h := 0; h*group < n; h++ {
			hub := h * group
			end := min(hub+group, n)
			for s := hub + 1; s < end; s++ {
				a := math.Round((0.2+rng.Float64()*1.3)*100) / 100
				if rng.Intn(4) == 0 {
					ss := (0.1 + 0.4*rng.Float64()) * ((props[s].hi - props[s].witness) + a*(props[hub].hi-props[hub].witness))
					c := math.Ceil((props[s].witness+a*props[hub].witness+ss)*100) / 100
					addCon(s, fmt.Sprintf("%s + %g * %s <= %g", props[s].name, a, props[hub].name, c))
				} else {
					ss := (0.1 + 0.4*rng.Float64()) * (props[s].hi - props[s].witness)
					c := math.Ceil((props[s].witness-a*props[hub].witness+ss)*100) / 100
					addCon(s, fmt.Sprintf("%s - %g * %s <= %g", props[s].name, a, props[hub].name, c))
				}
			}
			if h%2 == 0 {
				require(hub)
			} else {
				designPids = append(designPids, hub)
			}
			for s := hub + 1; s < end; s++ {
				designPids = append(designPids, s)
			}
		}

	case "sparse":
		const block = 64
		for i := 0; i < n; i++ {
			newBase(i)
		}
		for b0 := 0; b0 < n; b0 += block {
			size := min(block, n-b0)
			edges := size + size/5 // density ≈ 1.2 constraints per property
			if size < 3 {
				edges = size - 1
			}
			for e := 0; e < edges; e++ {
				u := b0 + rng.Intn(size)
				v := b0 + rng.Intn(size)
				if v == u {
					v = b0 + (u-b0+1)%size
				}
				switch rng.Intn(5) {
				case 0:
					binaryGE(u, v)
				case 1:
					x := b0 + rng.Intn(size)
					if x == u || x == v {
						x = b0 + (max(u, v)-b0+1)%size
					}
					a := math.Round((0.5+rng.Float64())*100) / 100
					b := math.Round((0.5+rng.Float64())*100) / 100
					c := math.Round((0.5+rng.Float64())*100) / 100
					s := (0.1 + 0.4*rng.Float64()) * (a*(props[u].hi-props[u].witness) + b*(props[v].hi-props[v].witness) + c*(props[x].hi-props[x].witness))
					d := math.Ceil((a*props[u].witness+b*props[v].witness+c*props[x].witness+s)*100) / 100
					addCon(u, fmt.Sprintf("%g * %s + %g * %s + %g * %s <= %g",
						a, props[u].name, b, props[v].name, c, props[x].name, d))
				default:
					binaryLE(u, v)
				}
			}
			if (b0/block)%2 == 0 {
				require(b0)
				for i := b0 + 1; i < b0+size; i++ {
					designPids = append(designPids, i)
				}
			} else {
				for i := b0; i < b0+size; i++ {
					designPids = append(designPids, i)
				}
			}
		}
	}

	// Assemble the AST: objects and problems per designer, a Top problem
	// decomposed into them, constraints attached to the problem of their
	// first argument's owner.
	scn := &dddl.Scenario{
		Name:         fmt.Sprintf("%s_%d_s%d", family, n, seed),
		Constraints:  cons,
		Requirements: reqs,
	}
	for d := 0; d < designers; d++ {
		scn.Objects = append(scn.Objects, &dddl.ObjectDecl{
			Name:  fmt.Sprintf("B%02d", d),
			Owner: fmt.Sprintf("d%02d", d),
		})
	}
	witness := make(map[string]float64, n)
	for i := range props {
		p := &props[i]
		witness[p.name] = p.witness
		scn.Properties = append(scn.Properties, &dddl.PropertyDecl{
			Name:    p.name,
			Object:  fmt.Sprintf("B%02d", ownerOf(i)),
			Owner:   fmt.Sprintf("d%02d", ownerOf(i)),
			Domain:  domain.NewInterval(p.lo, p.hi),
			Formula: p.formula,
		})
	}
	scn.Problems = append(scn.Problems, &dddl.ProblemDecl{Name: "Top", Owner: "lead"})
	var children []string
	outs := make([][]string, designers)
	for i := range props {
		outs[ownerOf(i)] = append(outs[ownerOf(i)], props[i].name)
	}
	for d := 0; d < designers; d++ {
		name := fmt.Sprintf("P%02d", d)
		scn.Problems = append(scn.Problems, &dddl.ProblemDecl{
			Name:        name,
			Owner:       fmt.Sprintf("d%02d", d),
			Outputs:     outs[d],
			Constraints: probCons[d],
		})
		children = append(children, name)
	}
	scn.Decompositions = append(scn.Decompositions, &dddl.Decomposition{Parent: "Top", Children: children})

	// Deterministic op script: witness-value syntheses over design
	// properties with periodic whole-problem verifications.
	var ops []dpm.Operation
	k := min(64, len(designPids))
	for i := 0; i < k; i++ {
		pid := designPids[rng.Intn(len(designPids))]
		d := ownerOf(pid)
		prob := fmt.Sprintf("P%02d", d)
		who := fmt.Sprintf("d%02d", d)
		ops = append(ops, dpm.Operation{
			Kind:     dpm.OpSynthesis,
			Problem:  prob,
			Designer: who,
			Assignments: []dpm.Assignment{
				{Prop: props[pid].name, Value: domain.Real(props[pid].witness)},
			},
		})
		if i%8 == 7 {
			ops = append(ops, dpm.Operation{Kind: dpm.OpVerification, Problem: prob, Designer: who})
		}
	}

	return &ScaleNet{Scenario: scn, Ops: ops, Witness: witness}, nil
}

// MustScale is Scale panicking on error, for tests and benchmarks.
func MustScale(family string, n int, seed int64) *ScaleNet {
	sn, err := Scale(family, n, seed)
	if err != nil {
		panic(err)
	}
	return sn
}

// scaleByName parses a generated-scenario name of the form
// "family:n[:sSEED]" (e.g. "grid:10000", "sparse:4096:s7"). The second
// return is false when the name does not look like a scale name at all
// (so ByName can fall through to its unknown-name error).
func scaleByName(name string) (*dddl.Scenario, bool, error) {
	parts := strings.Split(name, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, false, nil
	}
	fam := parts[0]
	ok := false
	for _, f := range ScaleFamilies() {
		if f == fam {
			ok = true
		}
	}
	if !ok {
		return nil, false, nil
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, true, fmt.Errorf("scenario: bad scale size in %q: %v", name, err)
	}
	seed := int64(1)
	if len(parts) == 3 {
		if !strings.HasPrefix(parts[2], "s") {
			return nil, true, fmt.Errorf("scenario: bad scale seed in %q (want :sSEED)", name)
		}
		seed, err = strconv.ParseInt(parts[2][1:], 10, 64)
		if err != nil {
			return nil, true, fmt.Errorf("scenario: bad scale seed in %q: %v", name, err)
		}
	}
	sn, err := Scale(fam, n, seed)
	if err != nil {
		return nil, true, err
	}
	return sn.Scenario, true, nil
}
