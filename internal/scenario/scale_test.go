package scenario

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/constraint"
	"repro/internal/dddl"
	"repro/internal/dpm"
)

// scaleBudget returns a revise budget large enough that no generated
// fixpoint is capped.
func scaleBudget(net *constraint.Network) constraint.PropagateOptions {
	return constraint.PropagateOptions{MaxRevisions: 40*net.NumConstraints() + 1000}
}

// TestScaleDeterminism: same (family, n, seed) ⇒ byte-identical DDDL
// and identical op script and witness, across independent generator
// runs.
func TestScaleDeterminism(t *testing.T) {
	for _, fam := range ScaleFamilies() {
		a := MustScale(fam, 500, 3)
		b := MustScale(fam, 500, 3)
		if a.Scenario.Format() != b.Scenario.Format() {
			t.Errorf("%s: two generations differ in DDDL text", fam)
		}
		if !reflect.DeepEqual(a.Ops, b.Ops) {
			t.Errorf("%s: two generations differ in op script", fam)
		}
		if !reflect.DeepEqual(a.Witness, b.Witness) {
			t.Errorf("%s: two generations differ in witness", fam)
		}
		c := MustScale(fam, 500, 4)
		if a.Scenario.Format() == c.Scenario.Format() {
			t.Errorf("%s: different seeds produced identical DDDL", fam)
		}
	}
}

// TestScaleValidity: every family validates, builds a network of
// exactly the requested size, and its op script passes dpm.Validate in
// both modes.
func TestScaleValidity(t *testing.T) {
	for _, fam := range ScaleFamilies() {
		sn := MustScale(fam, 1000, 1)
		if err := sn.Scenario.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", fam, err)
		}
		net, err := sn.Scenario.BuildNetwork()
		if err != nil {
			t.Fatalf("%s: BuildNetwork: %v", fam, err)
		}
		if net.NumProperties() != 1000 {
			t.Errorf("%s: properties = %d, want 1000", fam, net.NumProperties())
		}
		if net.NumConstraints() == 0 {
			t.Errorf("%s: no constraints generated", fam)
		}
		if len(sn.Ops) == 0 {
			t.Errorf("%s: empty op script", fam)
		}
		for _, mode := range []dpm.Mode{dpm.Conventional, dpm.ADPM} {
			d, err := dpm.FromScenario(sn.Scenario, mode)
			if err != nil {
				t.Fatalf("%s: FromScenario: %v", fam, err)
			}
			for i, op := range sn.Ops {
				if err := d.Validate(op); err != nil {
					t.Fatalf("%s: op %d (%s) invalid: %v", fam, i, op, err)
				}
			}
		}
	}
}

// TestScaleWitnessFeasible: the witness point survives propagation in
// every family — no violations, no emptied subspaces, and every
// unbound property's window contains its witness value. This is the
// satisfiable-by-construction guarantee.
func TestScaleWitnessFeasible(t *testing.T) {
	for _, fam := range ScaleFamilies() {
		sn := MustScale(fam, 1000, 1)
		net, err := sn.Scenario.BuildNetwork()
		if err != nil {
			t.Fatalf("%s: BuildNetwork: %v", fam, err)
		}
		net.ResetFeasible()
		res := net.Propagate(scaleBudget(net))
		if res.Capped {
			t.Fatalf("%s: propagation capped at %d revisions", fam, res.Revisions)
		}
		if len(res.Violated) > 0 {
			t.Fatalf("%s: witness-built network has violations: %v", fam, res.Violated[:min(5, len(res.Violated))])
		}
		if len(res.Emptied) > 0 {
			t.Fatalf("%s: emptied properties: %v", fam, res.Emptied[:min(5, len(res.Emptied))])
		}
		const eps = 1e-6
		for _, p := range net.Properties() {
			w := sn.Witness[p.Name]
			iv := net.Domain(p.Name)
			if w < iv.Lo-eps || w > iv.Hi+eps {
				t.Fatalf("%s: witness %s=%g outside window [%g, %g]", fam, p.Name, w, iv.Lo, iv.Hi)
			}
		}
	}
}

// TestScaleMetamorphic: declaration-order invariance over one generated
// 10³-property network per family. Permuting the property declaration
// order must not change revise counts, evaluation counts, or windows
// (worklist seeding follows constraint order, which is unchanged); and
// canonical clones of differently-ordered declarations must propagate
// identically (CanonicalClone forgets declaration order).
func TestScaleMetamorphic(t *testing.T) {
	for _, fam := range ScaleFamilies() {
		sn := MustScale(fam, 1000, 2)
		base, err := sn.Scenario.BuildNetwork()
		if err != nil {
			t.Fatalf("%s: BuildNetwork: %v", fam, err)
		}
		opts := scaleBudget(base)
		base.ResetFeasible()
		resBase := base.Propagate(opts)

		// Permute the declaration order of non-derived properties.
		// (Derived declarations stay in place: BuildNetwork emits their
		// .def equality constraints in declaration order, so moving them
		// changes the constraint order — a different, legitimate
		// schedule. The canonical-clone relation below covers full
		// reordering.) Worklist seeding follows constraint order, which
		// this permutation leaves unchanged.
		perm := &dddl.Scenario{
			Name:           sn.Scenario.Name,
			Objects:        sn.Scenario.Objects,
			Properties:     append([]*dddl.PropertyDecl(nil), sn.Scenario.Properties...),
			Constraints:    sn.Scenario.Constraints,
			Problems:       sn.Scenario.Problems,
			Decompositions: sn.Scenario.Decompositions,
			Requirements:   sn.Scenario.Requirements,
		}
		var baseSlots []int
		for i, pd := range perm.Properties {
			if !pd.IsDerived() {
				baseSlots = append(baseSlots, i)
			}
		}
		rng := rand.New(rand.NewSource(99))
		rng.Shuffle(len(baseSlots), func(i, j int) {
			pi, pj := baseSlots[i], baseSlots[j]
			perm.Properties[pi], perm.Properties[pj] = perm.Properties[pj], perm.Properties[pi]
		})
		pnet, err := perm.BuildNetwork()
		if err != nil {
			t.Fatalf("%s: permuted BuildNetwork: %v", fam, err)
		}
		pnet.ResetFeasible()
		resPerm := pnet.Propagate(opts)

		if resBase.Revisions != resPerm.Revisions || resBase.Evaluations != resPerm.Evaluations {
			t.Errorf("%s: property-order permutation changed metrics: revisions %d vs %d, evals %d vs %d",
				fam, resBase.Revisions, resPerm.Revisions, resBase.Evaluations, resPerm.Evaluations)
		}
		assertSameWindows(t, fam+"/prop-perm", base, pnet)

		// Canonical clones forget declaration order entirely.
		cb, cp := base.CanonicalClone(), pnet.CanonicalClone()
		cb.ResetFeasible()
		cp.ResetFeasible()
		rb := cb.Propagate(opts)
		rp := cp.Propagate(opts)
		if rb.Revisions != rp.Revisions || rb.Evaluations != rp.Evaluations {
			t.Errorf("%s: canonical clones diverge: revisions %d vs %d", fam, rb.Revisions, rp.Revisions)
		}
		assertSameWindows(t, fam+"/canonical", cb, cp)
	}
}

// assertSameWindows fails unless every property window is bit-identical
// between the two networks.
func assertSameWindows(t *testing.T, label string, a, b *constraint.Network) {
	t.Helper()
	bad := 0
	for _, p := range a.Properties() {
		wa, wb := a.Domain(p.Name), b.Domain(p.Name)
		if wa != wb {
			bad++
			if bad <= 3 {
				t.Errorf("%s: window %s differs: [%g, %g] vs [%g, %g]", label, p.Name, wa.Lo, wa.Hi, wb.Lo, wb.Hi)
			}
		}
	}
	if bad > 3 {
		t.Errorf("%s: %d windows differ in total", label, bad)
	}
}

// TestScaleByName wires the families into the scenario registry used by
// cmd/repro and cmd/teamsim.
func TestScaleByName(t *testing.T) {
	for _, spec := range []string{"grid:100", "layers:200:s5", "hub:150", "sparse:256:s2"} {
		scn, err := ByName(spec)
		if err != nil {
			t.Fatalf("ByName(%q): %v", spec, err)
		}
		if _, err := scn.BuildNetwork(); err != nil {
			t.Fatalf("ByName(%q).BuildNetwork: %v", spec, err)
		}
	}
	for _, spec := range []string{"grid:notanumber", "grid:10:x5", "grid:10:5:9"} {
		if _, err := ByName(spec); err == nil {
			t.Errorf("ByName(%q) unexpectedly succeeded", spec)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName(nosuch) unexpectedly succeeded")
	}
	// Region structure sanity: sparse/hub are many-region, grid is one.
	gridNet, _ := mustBuild(t, "grid:400")
	if r := gridNet.RegionCount(); r != 1 {
		t.Errorf("grid:400 regions = %d, want 1", r)
	}
	sparseNet, _ := mustBuild(t, "sparse:400")
	if r := sparseNet.RegionCount(); r < 4 {
		t.Errorf("sparse:400 regions = %d, want >= 4", r)
	}
	hubNet, _ := mustBuild(t, "hub:400")
	if r := hubNet.RegionCount(); r < 4 {
		t.Errorf("hub:400 regions = %d, want >= 4", r)
	}
}

func mustBuild(t *testing.T, spec string) (*constraint.Network, *dddl.Scenario) {
	t.Helper()
	scn, err := ByName(spec)
	if err != nil {
		t.Fatalf("ByName(%q): %v", spec, err)
	}
	net, err := scn.BuildNetwork()
	if err != nil {
		t.Fatalf("BuildNetwork(%q): %v", spec, err)
	}
	return net, scn
}

// "grid:1000" style specs must produce the same network as direct Scale
// calls — the registry is a view, not a second generator.
func TestScaleByNameMatchesScale(t *testing.T) {
	scn, err := ByName("hub:300:s9")
	if err != nil {
		t.Fatal(err)
	}
	direct := MustScale("hub", 300, 9)
	if scn.Format() != direct.Scenario.Format() {
		t.Error("ByName(hub:300:s9) differs from Scale(hub, 300, 9)")
	}
	if got, want := scn.Name, fmt.Sprintf("hub_%d_s%d", 300, 9); got != want {
		t.Errorf("scenario name = %q, want %q", got, want)
	}
}
