// Package scenario provides the built-in problem scenarios used in the
// paper's evaluation (§3.2), written in DDDL:
//
//   - Sensor: the MEMS-based pressure sensing system — a capacitive
//     pressure sensor and a mixed-signal interface circuit designed
//     concurrently, with top-level constraints on sensing resolution,
//     estimated yield, and achievable pressure range. The network
//     reaches 26 properties and 21 constraints, most of them linear and
//     monotone, matching the paper's description.
//
//   - Receiver: the MEMS-based wireless receiver front-end — mixed-
//     signal circuitry (LNA, mixer, deserializer) and a MEMS channel-
//     selection filter designed concurrently, with constraints on
//     channel bandwidth, system gain, input impedance, frequency
//     selection precision, and power consumption. The network reaches
//     35 properties and 30 constraints, most of them nonlinear — the
//     "harder" case.
//
//   - Simplified: the small case used for the per-operation profiles of
//     Fig. 7.
//
// The quantitative physics behind the formulas is synthetic (the
// original cases used proprietary CAD models), but the structure —
// which team owns which variables, which requirements couple which
// subsystems, where the design trade-offs lie — follows the paper's
// description; DESIGN.md documents the substitution.
package scenario

import (
	"fmt"

	"repro/internal/dddl"
)

// SensorSource is the DDDL text of the pressure sensing system case.
const SensorSource = `
scenario sensor

# ---- top-level requirements (set by the project, owned by no
# ---- designing subsystem; fixing them is not a design move) ----
object Specs {
    property MinRes    real [0, 500]     # counts per kPa
    property MaxPower  real [0, 400]     # mW
    property MinYield  real [0, 100]     # %
    property MinRange  real [0, 1000]    # kPa
    property MaxArea   real [0, 5000]    # 1000 um^2
    property MaxNoise  real [0, 10]      # mV rms
    property MaxStress real [0, 200]     # MPa
    property VSupply   real [0, 12]      # V
}

# ---- capacitive pressure sensor (device engineer) ----
object Sensor owner device {
    property Diaphragm_R real [100, 500]   # um
    property Diaphragm_t real [1, 10]      # um
    property Cavity_gap  real [0.5, 5]     # um
    property Seal_T      real [300, 500]   # K

    derived Sensitivity   real [-100, 100]  = 0.05 * Diaphragm_R - 2 * Diaphragm_t - Cavity_gap
    derived PressureRange real [-100, 1000] = 60 * Diaphragm_t - 0.04 * Diaphragm_R + 40 * Cavity_gap
    derived Sensor_area   real [0, 5000]    = 8 * Diaphragm_R
    derived Yield         real [0, 130]     = 104 - 0.05 * Diaphragm_R - 2 * Cavity_gap + 0.01 * Seal_T
    derived Stress        real [-200, 200]  = 0.2 * Diaphragm_R - 18 * Diaphragm_t
}

# ---- mixed-signal interface circuit (circuit designer) ----
object Interface owner circuit {
    property Amp_gain real [1, 100]
    property ADC_bits real [6, 16]
    property Clock_f  real [0.1, 50]    # MHz
    property Ibias    real [0.1, 10]    # mA

    derived Resolution      real [-300, 600] = 2 * Amp_gain + 3 * ADC_bits + 1.5 * Sensitivity
    derived Interface_power real [0, 200]    = 0.3 * Amp_gain + 0.8 * Clock_f + 2 * Ibias + 0.4 * VSupply
    derived ADC_power       real [0, 200]    = 0.15 * ADC_bits * Clock_f
    derived Noise_s         real [0, 10]     = 6 - 0.4 * Ibias
}

object SystemLevel {
    derived System_power real [0, 400] = Interface_power + ADC_power
}

# ---- requirement constraints ----
constraint ResSpec:    Resolution >= MinRes
constraint PowerSpec:  System_power <= MaxPower
constraint YieldSpec:  Yield >= MinYield
constraint RangeSpec:  PressureRange >= MinRange
constraint AreaSpec:   Sensor_area <= MaxArea
constraint NoiseSpec:  Noise_s <= MaxNoise
constraint StressSpec: Stress <= MaxStress
constraint SealLimit:  Seal_T <= 480
constraint ClockMin:   Clock_f >= 1
constraint BitsMin:    ADC_bits >= 8
constraint GapMin:     Cavity_gap >= 1

# ---- problem hierarchy ----
problem Top owner leader {
    inputs { MinRes, MaxPower, MinYield, MinRange }
    constraints { ResSpec, PowerSpec }
}
problem SensorDesign owner device {
    inputs { MinRange, MaxArea, MaxStress, MinYield }
    outputs { Diaphragm_R, Diaphragm_t, Cavity_gap, Seal_T }
    constraints { YieldSpec, RangeSpec, AreaSpec, StressSpec, SealLimit, GapMin }
}
problem InterfaceDesign owner circuit {
    inputs { MaxNoise, VSupply }
    outputs { Amp_gain, ADC_bits, Clock_f, Ibias }
    constraints { NoiseSpec, ClockMin, BitsMin }
}
decompose Top -> SensorDesign, InterfaceDesign

require MinRes = 120
require MaxPower = 60
require MinYield = 80
require MinRange = 150
require MaxArea = 4000
require MaxNoise = 4
require MaxStress = 20
require VSupply = 5
`

// receiverTemplate is the DDDL text of the wireless receiver front-end
// case; the gain requirement is a parameter for the Fig. 10 sweep.
const receiverTemplate = `
scenario receiver

# ---- top-level requirements ----
object Specs {
    property MaxPower   real [0, 600]    # mW
    property MinGain    real [0, 400]
    property MinZin     real [0, 200]    # ohm
    property MaxZin     real [0, 200]    # ohm
    property CenterFreq real [10, 200]   # MHz
    property FreqTol    real [0, 20]     # MHz
    property MinBW      real [0, 2]      # MHz
    property MaxBW      real [0, 2]      # MHz
    property MaxArea    real [0, 10000]  # um^2
    property MaxNoise   real [0, 40]     # nV/sqrt(Hz)
}

# ---- LNA + mixer + deserializer (analog circuit designer) ----
object LNA_Mixer owner circuit {
    property Diff_pair_W real [0.5, 10]   # um
    property Freq_ind    real [0.05, 2]   # uH
    property Bias_I      real [0.5, 20]   # mA
    property Mixer_gm    real [0.5, 10]   # mS
    property Deser_rate  real [1, 16]     # Gb/s

    derived LNA_gain      real [0, 4000]  = 30 * Diff_pair_W * Freq_ind * sqrt(Bias_I)
    derived LNA_Zin       real [0, 1000]  = 110 * Freq_ind * sqrt(Diff_pair_W)
    derived LNA_power     real [0, 500]   = 8 * Bias_I + 0.5 * sqr(Diff_pair_W)
    derived LNA_noise     real [0, 100]   = 25 / sqrt(Bias_I * Diff_pair_W)
    derived Mixer_gain    real [0, 300]   = 1.5 * Mixer_gm * sqrt(Bias_I)
    derived Mixer_power   real [0, 500]   = 0.75 * sqr(Mixer_gm) + 6 * Mixer_gm
    derived Deser_power   real [0, 100]   = 0.22 * sqr(Deser_rate) + 0.07 * Deser_rate
    derived Circuit_power real [0, 1100]  = LNA_power + Mixer_power + Deser_power
}

# ---- MEMS channel-selection filter (device engineer) ----
object MEMS_Filter owner device {
    property Beam_len   real [5, 30]     # um
    property Beam_width real [0.5, 5]    # um
    property Gap        real [0.1, 2]    # um
    property Drive_V    real [1, 50]     # V

    derived Filter_freq real [0, 2000]  = 3200 * Beam_width / sqr(Beam_len)
    derived Filter_Q    real [0, 40000] = 60 * Beam_len / (Gap * sqrt(Drive_V))
    derived Filter_BW   real [0, 100]   = Filter_freq / Filter_Q
    derived Filter_loss real [0, 300]   = 60 * Gap / (Beam_width * sqrt(Drive_V))
    derived Filter_area real [0, 10000] = 30 * Beam_len * Beam_width
    derived Drive_power real [0, 200]   = 0.08 * sqr(Drive_V)
}

object SystemLevel {
    derived System_gain  real [-300, 4100] = LNA_gain + Mixer_gain - Filter_loss
    derived System_power real [0, 1400]    = Circuit_power + Drive_power
}

# ---- requirement constraints ----
constraint GainSpec:     System_gain >= MinGain
constraint PowerSpec:    System_power <= MaxPower
constraint ZinLo:        LNA_Zin >= MinZin
constraint ZinHi:        LNA_Zin <= MaxZin
constraint FreqLo:       Filter_freq >= CenterFreq - FreqTol
constraint FreqHi:       Filter_freq <= CenterFreq + FreqTol
constraint BWLo:         Filter_BW >= MinBW
constraint BWHi:         Filter_BW <= MaxBW
constraint AreaSpec:     Filter_area <= MaxArea
constraint NoiseSpec:    LNA_noise <= MaxNoise
constraint LossSpec:     Filter_loss <= 6
constraint BiasHeadroom: Bias_I * Freq_ind <= 5
constraint DriveSafety:  Drive_V <= 45 * sqrt(Gap)
constraint DeserMin:     Deser_rate >= 4

# ---- problem hierarchy ----
problem Top owner leader {
    inputs { MinGain, MaxPower }
    constraints { GainSpec, PowerSpec }
}
problem AnalogFE owner circuit {
    inputs { MinZin, MaxZin, MaxNoise }
    outputs { Diff_pair_W, Freq_ind, Bias_I, Mixer_gm, Deser_rate }
    constraints { ZinLo, ZinHi, NoiseSpec, BiasHeadroom, DeserMin }
}
problem FilterDesign owner device {
    inputs { CenterFreq, FreqTol, MinBW, MaxBW, MaxArea }
    outputs { Beam_len, Beam_width, Gap, Drive_V }
    constraints { FreqLo, FreqHi, BWLo, BWHi, AreaSpec, LossSpec, DriveSafety }
}
decompose Top -> AnalogFE, FilterDesign

require MaxPower = 200
require MinGain = %g
require MinZin = 25
require MaxZin = 75
require CenterFreq = 70
require FreqTol = 2
require MinBW = 0.15
require MaxBW = 0.5
require MaxArea = 2000
require MaxNoise = 8
`

// SimplifiedSource is the small case used for the Fig. 7 profiles.
const SimplifiedSource = `
scenario simplified

object Specs {
    property MaxPower real [0, 400]
    property MinGain  real [0, 400]
}
object Amp owner circuit {
    property Width real [0.5, 10]
    property Ind   real [0.05, 2]
    property Bias  real [0.5, 20]

    derived Amp_gain  real [0, 4000] = 30 * Width * Ind * sqrt(Bias)
    derived Amp_power real [0, 500]  = 9 * Bias + 2 * Width
}
object Filter owner device {
    property Beam_len real [5, 30]

    derived Filter_loss real [0, 100] = 200 / Beam_len
}
object SystemLevel {
    derived System_gain real [-200, 4000] = Amp_gain - Filter_loss
}

constraint GainSpec:  System_gain >= MinGain
constraint PowerSpec: Amp_power <= MaxPower
constraint LossCap:   Filter_loss <= 18

problem Top owner leader {
    inputs { MinGain, MaxPower }
    constraints { GainSpec }
}
problem AmpDesign owner circuit {
    inputs { MaxPower }
    outputs { Width, Ind, Bias }
    constraints { PowerSpec }
}
problem FilterPart owner device {
    outputs { Beam_len }
    constraints { LossCap }
}
decompose Top -> AmpDesign, FilterPart

require MaxPower = 100
require MinGain = 30
`

// DefaultReceiverGain is the baseline gain requirement of the receiver
// case (the §2.4 walkthrough's "global gain requirement" of 48).
const DefaultReceiverGain = 48.0

// Sensor returns the pressure sensing system scenario.
func Sensor() *dddl.Scenario { return dddl.MustParseString(SensorSource) }

// Receiver returns the wireless receiver front-end scenario with the
// default gain requirement.
func Receiver() *dddl.Scenario { return ReceiverWithGain(DefaultReceiverGain) }

// ReceiverSource returns the receiver DDDL text at a given gain spec.
func ReceiverSource(minGain float64) string {
	return fmt.Sprintf(receiverTemplate, minGain)
}

// ReceiverWithGain returns the receiver scenario with the gain
// requirement set to minGain — the Fig. 10 tightness sweep parameter.
func ReceiverWithGain(minGain float64) *dddl.Scenario {
	return dddl.MustParseString(ReceiverSource(minGain))
}

// Simplified returns the small Fig. 7 scenario.
func Simplified() *dddl.Scenario { return dddl.MustParseString(SimplifiedSource) }

// GainSweep returns the gain-requirement levels used for the Fig. 10
// robustness sweep, from the paper's baseline 48 up to a tight 168.
func GainSweep() []float64 { return []float64{48, 72, 96, 120, 144, 168} }

// ByName returns a built-in scenario by name ("sensor", "receiver",
// "simplified") or a generated scale-family instance by spec
// ("family:n[:sSEED]" with family one of grid, layers, hub, sparse —
// e.g. "grid:10000" or "sparse:4096:s7"; see Scale).
func ByName(name string) (*dddl.Scenario, error) {
	switch name {
	case "sensor":
		return Sensor(), nil
	case "receiver":
		return Receiver(), nil
	case "simplified":
		return Simplified(), nil
	}
	if scn, isScale, err := scaleByName(name); isScale {
		return scn, err
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (want sensor, receiver, simplified, or a scale spec like grid:10000)", name)
}

// Names lists the built-in scenario names.
func Names() []string { return []string{"sensor", "receiver", "simplified"} }
