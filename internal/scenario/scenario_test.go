package scenario

import (
	"testing"

	"repro/internal/dddl"
	"repro/internal/domain"
	"repro/internal/dpm"
	"repro/internal/expr"
)

func realVal(v float64) domain.Value { return domain.Real(v) }

// TestNetworkSizesMatchPaper pins the §3.2 network sizes: the sensor
// case reaches 26 properties / 21 constraints, the receiver case 35
// properties / 30 constraints.
func TestNetworkSizesMatchPaper(t *testing.T) {
	cases := []struct {
		name        string
		scn         *dddl.Scenario
		props, cons int
	}{
		{"sensor", Sensor(), 26, 21},
		{"receiver", Receiver(), 35, 30},
		{"simplified", Simplified(), 10, 7},
	}
	for _, c := range cases {
		net, err := c.scn.BuildNetwork()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if net.NumProperties() != c.props {
			t.Errorf("%s: %d properties, want %d", c.name, net.NumProperties(), c.props)
		}
		if net.NumConstraints() != c.cons {
			t.Errorf("%s: %d constraints, want %d", c.name, net.NumConstraints(), c.cons)
		}
	}
}

// witnesses are hand-computed satisfying assignments for each case;
// they prove the scenarios are solvable.
var witnesses = map[string]map[string]float64{
	"sensor": {
		"Diaphragm_R": 400, "Diaphragm_t": 4, "Cavity_gap": 2, "Seal_T": 450,
		"Amp_gain": 40, "ADC_bits": 12, "Clock_f": 10, "Ibias": 5.5,
	},
	"receiver": {
		"Diff_pair_W": 4, "Freq_ind": 0.25, "Bias_I": 9, "Mixer_gm": 4, "Deser_rate": 6,
		"Beam_len": 9.5, "Beam_width": 2, "Gap": 0.5, "Drive_V": 16,
	},
	"simplified": {
		"Width": 4, "Ind": 0.3, "Bias": 9, "Beam_len": 12,
	},
}

func TestWitnessesSatisfyAllConstraints(t *testing.T) {
	for name, witness := range witnesses {
		scn, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := dpm.FromScenario(scn, dpm.Conventional)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Bind the witness through problem-owned synthesis operations.
		for _, prob := range d.Problems() {
			for _, out := range prob.Outputs {
				v, ok := witness[out]
				if !ok {
					t.Fatalf("%s: witness missing output %s", name, out)
				}
				if _, err := d.Apply(dpm.Operation{
					Kind: dpm.OpSynthesis, Problem: prob.Name, Designer: "test",
					Assignments: []dpm.Assignment{{Prop: out, Value: realVal(v)}},
				}); err != nil {
					t.Fatalf("%s: bind %s: %v", name, out, err)
				}
			}
		}
		// Every property must now be bound (deriveds auto-computed).
		for _, p := range d.Net.Properties() {
			if !p.IsBound() {
				t.Errorf("%s: property %s unbound after witness", name, p.Name)
			}
		}
		// Point-verify everything.
		for _, c := range d.Net.Constraints() {
			holds, known := c.HoldsAt(d.Net)
			if !known {
				t.Errorf("%s: constraint %s not evaluable", name, c.Name)
				continue
			}
			if !holds {
				t.Errorf("%s: witness violates %s (%s)", name, c.Name, c)
			}
		}
	}
}

// TestWitnessCompletesProcess drives verification ops until Done in
// conventional mode, proving the termination condition is reachable.
func TestWitnessCompletesProcess(t *testing.T) {
	for name, witness := range witnesses {
		scn, _ := ByName(name)
		d, err := dpm.FromScenario(scn, dpm.Conventional)
		if err != nil {
			t.Fatal(err)
		}
		for _, prob := range d.Problems() {
			for _, out := range prob.Outputs {
				if _, err := d.Apply(dpm.Operation{
					Kind: dpm.OpSynthesis, Problem: prob.Name, Designer: "test",
					Assignments: []dpm.Assignment{{Prop: out, Value: realVal(witness[out])}},
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Verify leaves first, then the top-level problems.
		for pass := 0; pass < 3; pass++ {
			for _, prob := range d.Problems() {
				if len(prob.Constraints) == 0 {
					continue
				}
				if _, err := d.Apply(dpm.Operation{
					Kind: dpm.OpVerification, Problem: prob.Name, Designer: "test",
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !d.Done() {
			var open []string
			for _, p := range d.Problems() {
				if p.Status() != dpm.Solved {
					open = append(open, p.Name+"="+p.Status().String())
				}
			}
			t.Errorf("%s: not done; problems %v violations %v", name, open, d.Net.Violations())
		}
	}
}

// TestADPMWitnessCompletes drives the same witness in ADPM mode where
// propagation alone should settle all statuses.
func TestADPMWitnessCompletes(t *testing.T) {
	for name, witness := range witnesses {
		scn, _ := ByName(name)
		d, err := dpm.FromScenario(scn, dpm.ADPM)
		if err != nil {
			t.Fatal(err)
		}
		for _, prob := range d.Problems() {
			for _, out := range prob.Outputs {
				if _, err := d.Apply(dpm.Operation{
					Kind: dpm.OpSynthesis, Problem: prob.Name, Designer: "test",
					Assignments: []dpm.Assignment{{Prop: out, Value: realVal(witness[out])}},
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !d.Done() {
			t.Errorf("%s (ADPM): not done; violations %v", name, d.Net.Violations())
		}
	}
}

func TestReceiverGainSweepParameter(t *testing.T) {
	for _, g := range GainSweep() {
		scn := ReceiverWithGain(g)
		found := false
		for _, r := range scn.Requirements {
			if r.Property == "MinGain" {
				found = true
				if r.Value.Num() != g {
					t.Errorf("MinGain = %v, want %v", r.Value.Num(), g)
				}
			}
		}
		if !found {
			t.Fatal("MinGain requirement missing")
		}
	}
	if len(GainSweep()) < 5 {
		t.Error("sweep needs several tightness levels")
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%s): %v", n, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestReceiverMostlyNonlinear checks the paper's linearity description:
// most receiver constraints are nonlinear, most sensor constraints are
// linear. A constraint counts as nonlinear when any second derivative
// of its difference expression is structurally nonzero — approximated
// here by checking for nonlinear operators in its text form.
func TestLinearityCharacter(t *testing.T) {
	countNonlinear := func(scn *dddl.Scenario) (nonlinear, total int) {
		net, err := scn.BuildNetwork()
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range net.Constraints() {
			total++
			if exprNonlinear(c.Lhs) || exprNonlinear(c.Rhs) {
				nonlinear++
			}
		}
		return
	}
	nlSensor, totSensor := countNonlinear(Sensor())
	nlRecv, totRecv := countNonlinear(Receiver())
	if nlSensor*2 >= totSensor {
		t.Errorf("sensor should be mostly linear: %d/%d nonlinear", nlSensor, totSensor)
	}
	if nlRecv*2 < totRecv {
		t.Errorf("receiver should be mostly nonlinear: %d/%d nonlinear", nlRecv, totRecv)
	}
}

// exprNonlinear reports whether the expression contains a nonlinear
// form: sqrt/sqr/exp/log/abs/min/max calls, powers, division by a
// variable, or a product of two variable-bearing factors.
func exprNonlinear(n expr.Node) bool {
	switch t := n.(type) {
	case *expr.Num, *expr.Var:
		return false
	case *expr.Unary:
		return exprNonlinear(t.X)
	case *expr.Binary:
		switch t.Op {
		case '^':
			return true
		case '/':
			if len(expr.Vars(t.Y)) > 0 {
				return true
			}
		case '*':
			if len(expr.Vars(t.X)) > 0 && len(expr.Vars(t.Y)) > 0 {
				return true
			}
		}
		return exprNonlinear(t.X) || exprNonlinear(t.Y)
	case *expr.Call:
		return true
	}
	return false
}

func TestCrossSubsystemConstraintsExist(t *testing.T) {
	for _, name := range Names() {
		scn, _ := ByName(name)
		d, err := dpm.FromScenario(scn, dpm.Conventional)
		if err != nil {
			t.Fatal(err)
		}
		cross := 0
		for _, c := range d.Net.Constraints() {
			if d.IsCrossSubsystem(c) {
				cross++
			}
		}
		if cross == 0 {
			t.Errorf("%s: no cross-subsystem constraints — spins could never occur", name)
		}
	}
}

// TestBuiltinScenariosRoundTripThroughFormat serializes each built-in
// scenario back to DDDL and reparses it.
func TestBuiltinScenariosRoundTripThroughFormat(t *testing.T) {
	for _, name := range Names() {
		scn, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		text := scn.Format()
		again, err := dddl.ParseString(text)
		if err != nil {
			t.Fatalf("%s: formatted text does not parse: %v", name, err)
		}
		if !scn.Equal(again) {
			t.Errorf("%s: round trip changed the scenario", name)
		}
		netA, err := scn.BuildNetwork()
		if err != nil {
			t.Fatal(err)
		}
		netB, err := again.BuildNetwork()
		if err != nil {
			t.Fatal(err)
		}
		if netA.NumProperties() != netB.NumProperties() || netA.NumConstraints() != netB.NumConstraints() {
			t.Errorf("%s: round-tripped network differs in size", name)
		}
	}
}
