package server

import (
	"testing"

	"repro/internal/dpm"
	"repro/internal/wal"
)

// BenchmarkApply measures the per-batch cost of the accepted-op path:
// purely in-memory, and durable under each fsync policy. The deltas
// against "memory" are the WAL overhead recorded in BENCH_server.json —
// framing+CRC for never, group commit for interval, one fsync per ack
// for always.
func BenchmarkApply(b *testing.B) {
	cases := []struct {
		name string
		opts func(b *testing.B) Options
	}{
		{"memory", func(b *testing.B) Options {
			return Options{Shards: 1, MaxOps: 1 << 30}
		}},
		{"wal-never", func(b *testing.B) Options {
			return Options{Shards: 1, MaxOps: 1 << 30, DataDir: b.TempDir(), Fsync: wal.SyncNever}
		}},
		{"wal-interval", func(b *testing.B) Options {
			return Options{Shards: 1, MaxOps: 1 << 30, DataDir: b.TempDir(), Fsync: wal.SyncInterval}
		}},
		{"wal-always", func(b *testing.B) Options {
			return Options{Shards: 1, MaxOps: 1 << 30, DataDir: b.TempDir(), Fsync: wal.SyncAlways}
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			s, err := Open(tc.opts(b))
			if err != nil {
				b.Fatal(err)
			}
			defer s.Drain()
			c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			ops := []dpm.Operation{{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "bench"}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Apply(c.ID, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkState measures the hot read path: "cached" reads an
// unchanged session (every read after the first serves the
// generation-keyed bytes — zero serialization), "uncached" interleaves
// a mutation before each read so every read re-walks and re-serializes
// the full design state. The ratio is the snapshot cache's win,
// recorded in BENCH_server.json.
func BenchmarkState(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		s, err := Open(Options{Shards: 1, MaxOps: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Drain()
		c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.StateBytes(c.ID); err != nil { // fill the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.StateBytes(c.ID); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := s.Stats().Shards[0]
		if st.StateMisses != 1 {
			b.Fatalf("cached run took %d misses, want 1", st.StateMisses)
		}
	})
	b.Run("uncached", func(b *testing.B) {
		s, err := Open(Options{Shards: 1, MaxOps: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Drain()
		c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		ops := []dpm.Operation{{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "bench"}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Apply(c.ID, ops); err != nil { // bump generation
				b.Fatal(err)
			}
			if _, err := s.StateBytes(c.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
}
