package server

import (
	"testing"

	"repro/internal/dpm"
	"repro/internal/wal"
)

// BenchmarkApply measures the per-batch cost of the accepted-op path:
// purely in-memory, and durable under each fsync policy. The deltas
// against "memory" are the WAL overhead recorded in BENCH_server.json —
// framing+CRC for never, group commit for interval, one fsync per ack
// for always.
func BenchmarkApply(b *testing.B) {
	cases := []struct {
		name string
		opts func(b *testing.B) Options
	}{
		{"memory", func(b *testing.B) Options {
			return Options{Shards: 1, MaxOps: 1 << 30}
		}},
		{"wal-never", func(b *testing.B) Options {
			return Options{Shards: 1, MaxOps: 1 << 30, DataDir: b.TempDir(), Fsync: wal.SyncNever}
		}},
		{"wal-interval", func(b *testing.B) Options {
			return Options{Shards: 1, MaxOps: 1 << 30, DataDir: b.TempDir(), Fsync: wal.SyncInterval}
		}},
		{"wal-always", func(b *testing.B) Options {
			return Options{Shards: 1, MaxOps: 1 << 30, DataDir: b.TempDir(), Fsync: wal.SyncAlways}
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			s, err := Open(tc.opts(b))
			if err != nil {
				b.Fatal(err)
			}
			defer s.Drain()
			c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			ops := []dpm.Operation{{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "bench"}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Apply(c.ID, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
