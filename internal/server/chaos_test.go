package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dpm"
	"repro/internal/faultfs"
	"repro/internal/wal"
)

// chaosScript drives one durable single-shard server through a fixed
// sequence of accepted mutations — each appending exactly one WAL
// record — and captures, after every record, the expected serialized
// state of every session alive at that point. Element i of the returned
// snapshots corresponds to a log holding exactly i+1 records.
type chaosStep struct {
	// states maps live session id → canonical GET /state JSON after
	// this record.
	states map[string][]byte
}

func runChaosScript(t *testing.T, dir string) []chaosStep {
	t.Helper()
	s, err := Open(Options{Shards: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()

	var steps []chaosStep
	snap := func(ids ...string) {
		st := map[string][]byte{}
		for _, id := range ids {
			st[id] = stateJSON(t, s, id)
		}
		steps = append(steps, chaosStep{states: st})
	}

	a, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 60})
	if err != nil {
		t.Fatal(err)
	}
	snap(a.ID)
	applyKeyed(t, s, a.ID, "k1", []dpm.Operation{synth("AmpDesign", "Width", 3)})
	snap(a.ID)
	b, err := s.CreateSession(CreateSpec{Name: "receiver", Mode: dpm.ADPM, MaxOps: 40})
	if err != nil {
		t.Fatal(err)
	}
	snap(a.ID, b.ID)
	applyKeyed(t, s, b.ID, "k2", []dpm.Operation{synth("AnalogFE", "Diff_pair_W", 3)})
	snap(a.ID, b.ID)
	applyKeyed(t, s, a.ID, "", []dpm.Operation{
		synth("AmpDesign", "Bias", 4),
		{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "test"},
	})
	snap(a.ID, b.ID)
	if _, err := s.Delete(b.ID); err != nil {
		t.Fatal(err)
	}
	snap(a.ID)
	applyKeyed(t, s, a.ID, "k3", []dpm.Operation{
		{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "test"},
	})
	snap(a.ID)
	return steps
}

// cloneDataDirTruncated copies a single-shard data dir, cutting the
// shard's only WAL segment to cut bytes — a simulated crash image.
func cloneDataDirTruncated(t *testing.T, srcDir string, seg []byte, cut int) string {
	t.Helper()
	dst := t.TempDir()
	meta, err := os.ReadFile(filepath.Join(srcDir, "META.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, "META.json"), meta, 0o644); err != nil {
		t.Fatal(err)
	}
	shardD := filepath.Join(dst, "shard-0")
	if err := os.MkdirAll(shardD, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(shardD, "wal-00000001.seg"), seg[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestCrashMatrixEveryRecordBoundary is the acceptance gate for crash
// recovery: for a crash image cut at EVERY record boundary (and at torn
// offsets inside every record), a fresh server must recover exactly the
// prefix of accepted records — each session's state byte-identical to
// the snapshot taken when that record was acknowledged — and a replayed
// idempotency-keyed batch must be a no-op ack.
func TestCrashMatrixEveryRecordBoundary(t *testing.T) {
	srcDir := t.TempDir()
	steps := runChaosScript(t, srcDir)

	seg, err := os.ReadFile(filepath.Join(srcDir, "shard-0", "wal-00000001.seg"))
	if err != nil {
		t.Fatal(err)
	}
	frames, clean := wal.ScanFrames(seg)
	if !clean {
		t.Fatal("script left a torn log without a crash")
	}
	if len(frames) != len(steps) {
		t.Fatalf("%d records for %d scripted steps — the 1:1 record/step assumption broke", len(frames), len(steps))
	}

	// Record boundaries: after k records the expected state is steps[k-1]
	// (k=0: an empty server).
	boundary := make([]int, len(frames)+1)
	for i, fl := range frames {
		boundary[i+1] = boundary[i] + fl
	}

	check := func(t *testing.T, cut, records int) {
		dir := cloneDataDirTruncated(t, srcDir, seg, cut)
		s, err := Open(Options{Shards: 1, DataDir: dir})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		defer s.Drain()
		var want map[string][]byte
		if records == 0 {
			want = map[string][]byte{}
		} else {
			want = steps[records-1].states
		}
		if got := int(s.Stats().Shards[0].Parked); got != len(want) {
			t.Fatalf("cut %d (%d records): recovered %d sessions, want %d", cut, records, got, len(want))
		}
		for id, w := range want {
			if got := stateJSON(t, s, id); !bytes.Equal(got, w) {
				t.Errorf("cut %d (%d records): state of %s differs\n want: %s\n got:  %s", cut, records, id, w, got)
			}
		}
		// Exactly-once: the first step's keyed batch replays as a cached
		// ack whenever that record survived the crash.
		if records >= 2 {
			if _, ok := want["s0-0"]; ok {
				_, replayed, err := s.ApplyKeyed("s0-0", "k1", []dpm.Operation{synth("AmpDesign", "Width", 3)})
				if err != nil || !replayed {
					t.Errorf("cut %d: retried keyed batch after crash: replayed=%v err=%v", cut, replayed, err)
				}
				if got := stateJSON(t, s, "s0-0"); !bytes.Equal(got, want["s0-0"]) {
					t.Errorf("cut %d: keyed retry after crash mutated state", cut)
				}
			}
		}
	}

	for k := 0; k <= len(frames); k++ {
		k := k
		t.Run(fmt.Sprintf("boundary-%d", k), func(t *testing.T) { check(t, boundary[k], k) })
	}
	// Torn mid-record tails: +1 byte, mid-frame, one short of complete.
	for k := 0; k < len(frames); k++ {
		k := k
		offs := []int{1, frames[k] / 2, frames[k] - 1}
		for _, d := range offs {
			d := d
			if d <= 0 || d >= frames[k] {
				continue
			}
			t.Run(fmt.Sprintf("torn-%d+%d", k, d), func(t *testing.T) { check(t, boundary[k]+d, k) })
		}
	}
}

// TestCrashTornTailBitFlip: a flipped byte inside the final record's
// payload fails its CRC; recovery must drop exactly that record and
// keep the intact prefix.
func TestCrashTornTailBitFlip(t *testing.T) {
	srcDir := t.TempDir()
	steps := runChaosScript(t, srcDir)
	seg, err := os.ReadFile(filepath.Join(srcDir, "shard-0", "wal-00000001.seg"))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), seg...)
	corrupt[len(seg)-3] ^= 0xFF
	dir := cloneDataDirTruncated(t, srcDir, corrupt, len(corrupt))
	s, err := Open(Options{Shards: 1, DataDir: dir})
	if err != nil {
		t.Fatalf("open with corrupt final record: %v", err)
	}
	defer s.Drain()
	want := steps[len(steps)-2].states
	for id, w := range want {
		if got := stateJSON(t, s, id); !bytes.Equal(got, w) {
			t.Errorf("after dropping corrupt final record, state of %s differs", id)
		}
	}
}

// TestChaosCrashAfterRotation: crash images taken after a rotation
// (snapshot-headed segment) must recover identically too.
func TestChaosCrashAfterRotation(t *testing.T) {
	srcDir := t.TempDir()
	s, err := Open(Options{Shards: 1, DataDir: srcDir, SegmentBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		applyKeyed(t, s, c.ID, fmt.Sprintf("k%d", i), []dpm.Operation{
			{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "test"},
		})
	}
	if s.Stats().Shards[0].Rotations == 0 {
		t.Fatal("no rotation with 600-byte segments")
	}
	want := stateJSON(t, s, c.ID)
	s.Drain()

	// Crash image = the data dir exactly as the dead process left it.
	s2, err := Open(Options{Shards: 1, DataDir: srcDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if got := stateJSON(t, s2, c.ID); !bytes.Equal(got, want) {
		t.Errorf("post-rotation crash recovery differs:\n want: %s\n got:  %s", want, got)
	}
	// And the newest keyed batch still replays as a no-op.
	_, replayed, err := s2.ApplyKeyed(c.ID, "k11", []dpm.Operation{
		{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "test"},
	})
	if err != nil || !replayed {
		t.Errorf("keyed replay after rotation+crash: replayed=%v err=%v", replayed, err)
	}
}

// TestChaosShortWriteDuringApply: an injected short write on an ops
// append must reject the batch (ErrStorage-free path: truncate repair
// succeeds), leave state untouched, keep serving, and leave a log that
// recovers cleanly.
func TestChaosShortWriteDuringApply(t *testing.T) {
	dir := t.TempDir()
	var arm atomic.Bool
	fsys := &faultfs.Fault{OnWrite: func(n int, name string, b []byte) (int, error) {
		if arm.Load() && strings.HasSuffix(name, ".seg") {
			arm.Store(false)
			return len(b) / 3, nil
		}
		return len(b), nil
	}}
	s, err := Open(Options{Shards: 1, DataDir: dir, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 50})
	if err != nil {
		t.Fatal(err)
	}
	applyKeyed(t, s, c.ID, "", []dpm.Operation{synth("AmpDesign", "Width", 3)})
	want := stateJSON(t, s, c.ID)

	arm.Store(true)
	_, _, err = s.ApplyKeyed(c.ID, "torn", []dpm.Operation{synth("AmpDesign", "Bias", 4)})
	if err == nil {
		t.Fatal("short-written append was acknowledged")
	}
	if got := stateJSON(t, s, c.ID); !bytes.Equal(got, want) {
		t.Error("rejected (torn) batch mutated state")
	}
	if s.Stats().Shards[0].WALBroken {
		t.Error("repairable short write marked the WAL broken")
	}
	// The shard keeps accepting work after the repair...
	applyKeyed(t, s, c.ID, "", []dpm.Operation{synth("AmpDesign", "Bias", 5)})
	final := stateJSON(t, s, c.ID)
	s.Drain()
	// ...and the repaired log recovers without torn bytes.
	s2, err := Open(Options{Shards: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if got := stateJSON(t, s2, c.ID); !bytes.Equal(got, final) {
		t.Errorf("recovery after repaired short write differs:\n want: %s\n got:  %s", final, got)
	}
}

// TestChaosFsyncFailureAtEverySync arms an fsync failure at each sync
// index in turn. A batch whose fsync failed is rejected (fail-stop),
// but its record may already be on disk — the classic in-doubt write.
// The resolution is the idempotency key: after recovery the client
// retries every keyed batch, each applies exactly once (cached ack if
// the record survived, fresh apply if not), and the final state must
// equal an oracle server that simply applied everything once.
func TestChaosFsyncFailureAtEverySync(t *testing.T) {
	const batches = 3
	batch := func(i int) []dpm.Operation {
		return []dpm.Operation{synth("AmpDesign", "Width", float64(i+2))}
	}
	// Oracle: the state when create + every batch applied exactly once.
	oracle := newTestServer(t, Options{Shards: 1})
	oc := mustCreate(t, oracle, "simplified", 50)
	for i := 0; i < batches; i++ {
		applyKeyed(t, oracle, oc.ID, "", batch(i))
	}
	oracleState := stateJSON(t, oracle, oc.ID)
	canon := func(b []byte, id string) []byte {
		return bytes.ReplaceAll(b, []byte(`"id":"`+id+`"`), []byte(`"id":"X"`))
	}

	for failAt := 1; failAt <= 6; failAt++ {
		failAt := failAt
		t.Run(fmt.Sprintf("sync-%d", failAt), func(t *testing.T) {
			dir := t.TempDir()
			var segSyncs atomic.Int32
			fsys := &faultfs.Fault{OnSync: func(n int, name string) error {
				if strings.HasSuffix(name, ".seg") && int(segSyncs.Add(1)) == failAt {
					return faultfs.ErrInjected
				}
				return nil
			}}
			s, err := Open(Options{Shards: 1, DataDir: dir, FS: fsys})
			if err != nil {
				t.Fatal(err)
			}
			c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 50})
			if err != nil {
				// The create's own fsync failed: the client saw a 503 and
				// owns the retry; nothing more to assert here.
				s.Drain()
				return
			}
			for i := 0; i < batches; i++ {
				s.ApplyKeyed(c.ID, fmt.Sprintf("k%d", i), batch(i))
			}
			s.Drain()

			// Recovery on the same (healthy) dir, then the client's retry
			// loop: every keyed batch re-sent.
			s2, err := Open(Options{Shards: 1, DataDir: dir})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer s2.Drain()
			for i := 0; i < batches; i++ {
				if _, _, err := s2.ApplyKeyed(c.ID, fmt.Sprintf("k%d", i), batch(i)); err != nil {
					t.Fatalf("retrying batch %d after recovery: %v", i, err)
				}
			}
			got := stateJSON(t, s2, c.ID)
			if !bytes.Equal(canon(got, c.ID), canon(oracleState, oc.ID)) {
				t.Errorf("after recovery + keyed retries state is not exactly-once:\n want: %s\n got:  %s",
					oracleState, got)
			}
		})
	}
}

// TestChaosRotationTailFsyncFailure fails the rotation tail — the
// directory sync that makes old-segment removal durable (the 3rd sync
// of every rotation, addressed by op-relative ordinal). The rotation
// proper has already succeeded by then (snapshot segment written,
// synced, and linked), so the server must swallow the error and keep
// serving with a healthy WAL. The sting is in the power cut that
// follows: the un-durable removals resurrect the old segments, and
// recovery must fold the stale bytes under the newer snapshot instead
// of replaying them over it.
func TestChaosRotationTailFsyncFailure(t *testing.T) {
	mem := faultfs.NewMemFS()
	var tailFails atomic.Int64
	fsys := &faultfs.Fault{Inner: mem, OnOpSync: func(op string, nth int, name string) error {
		if op == "rotate" && nth == 3 {
			tailFails.Add(1)
			return faultfs.ErrInjected
		}
		return nil
	}}
	s, err := Open(Options{Shards: 1, DataDir: "data", FS: fsys, SegmentBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		applyKeyed(t, s, c.ID, fmt.Sprintf("k%d", i), []dpm.Operation{
			{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "test"},
		})
	}
	if tailFails.Load() == 0 {
		t.Fatal("600-byte segments never drove a rotation into its tail sync")
	}
	if s.Stats().Shards[0].WALBroken {
		t.Fatal("rotation-tail fsync failure broke the WAL; it is retryable, not fatal")
	}
	// The shard keeps accepting work after the swallowed failure.
	applyKeyed(t, s, c.ID, "after-tail", []dpm.Operation{synth("AmpDesign", "Width", 3)})
	want := stateJSON(t, s, c.ID)
	s.Kill()

	// Power cut: everything not fsynced is gone — including the segment
	// removals, which come back from the dead.
	mem.Crash()
	s2, err := Open(Options{Shards: 1, DataDir: "data", FS: mem})
	if err != nil {
		t.Fatalf("recovery with resurrected segments: %v", err)
	}
	defer s2.Drain()
	if got := stateJSON(t, s2, c.ID); !bytes.Equal(got, want) {
		t.Errorf("recovery over resurrected pre-rotation segments lost acked state:\n want: %s\n got:  %s", want, got)
	}
	// Idempotency survives too: the newest keyed batch replays from cache.
	_, replayed, err := s2.ApplyKeyed(c.ID, "k11", []dpm.Operation{
		{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "test"},
	})
	if err != nil || !replayed {
		t.Errorf("keyed replay after tail failure + powercut: replayed=%v err=%v", replayed, err)
	}
}
