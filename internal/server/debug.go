package server

import (
	"expvar"
	"sync"
	"sync/atomic"
)

var (
	debugServer atomic.Pointer[Server]
	debugOnce   sync.Once
)

// PublishDebug exposes this server's live gauges as the expvar variable
// "adpmd" (visible on /debug/vars alongside the trace package's
// recorder export). expvar forbids re-publishing a name, so the
// variable is registered once per process and always reflects the most
// recently published server.
func (s *Server) PublishDebug() {
	debugServer.Store(s)
	debugOnce.Do(func() {
		expvar.Publish("adpmd", expvar.Func(func() interface{} {
			if srv := debugServer.Load(); srv != nil {
				return srv.Stats()
			}
			return nil
		}))
	})
}
