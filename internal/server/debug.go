package server

import (
	"expvar"
	"sync"
	"sync/atomic"
)

var (
	debugServer atomic.Pointer[Server]
	debugOnce   sync.Once
)

// PublishDebug exposes this server's live gauges as the expvar variable
// "adpmd" and its per-endpoint latency histograms as "adpmd_latency"
// (visible on /debug/vars alongside the trace package's recorder
// export). expvar forbids re-publishing a name, so the variables are
// registered once per process and always reflect the most recently
// published server.
func (s *Server) PublishDebug() {
	debugServer.Store(s)
	debugOnce.Do(func() {
		expvar.Publish("adpmd", expvar.Func(func() interface{} {
			if srv := debugServer.Load(); srv != nil {
				return srv.Stats()
			}
			return nil
		}))
		expvar.Publish("adpmd_latency", expvar.Func(func() interface{} {
			if srv := debugServer.Load(); srv != nil {
				return srv.Latency()
			}
			return nil
		}))
	})
}
