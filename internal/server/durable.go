package server

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/dddl"
	"repro/internal/dpm"
	"repro/internal/faultfs"
	"repro/internal/scenario"
	"repro/internal/teamsim"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Durability model. With Options.DataDir set, every shard owns a
// write-ahead log (internal/wal) of its accepted state transitions:
// session creates, validated operation batches, deletes, and rotation
// snapshots. The ordering invariant is log-before-ack: an Apply batch
// is framed, written, and (under SyncAlways) fsynced before the first
// δ runs, so any batch a client saw acknowledged is on disk. Because δ
// is deterministic bit for bit, a session's durable form is just its
// generating history (wal.SessionImage), and recovery is replay: a
// restarted server folds the log into images and lazily rebuilds each
// session on its next touch, reaching byte-identical state.
//
// Idle eviction becomes persist-then-evict: instead of retiring the
// session (PR 3 semantics, still used without a DataDir), the shard
// parks its image and drops the expensive live engine; the next touch
// restores it transparently by the same replay path recovery uses.

// ErrStorage reports a durable-storage failure: the WAL could not log
// the request, so it was not applied and must not be acknowledged.
// Surfaced as HTTP 503.
var ErrStorage = errors.New("server: durable storage failure")

// metaName is the data-dir metadata file recording the shard count a
// data dir was formatted with; session ids are sharded by that count,
// so reopening with a different one would misroute every recovered id.
const metaName = "META.json"

type metaFile struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// checkMeta validates or initializes the data dir's metadata.
func checkMeta(fsys faultfs.FS, dir string, shards int) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	path := filepath.Join(dir, metaName)
	if b, err := fsys.ReadFile(path); err == nil {
		var m metaFile
		if err := json.Unmarshal(b, &m); err != nil {
			return fmt.Errorf("%w: corrupt %s: %v", ErrStorage, path, err)
		}
		if m.Shards != shards {
			return fmt.Errorf("%w: data dir %s was formatted with %d shards, server configured with %d",
				ErrStorage, dir, m.Shards, shards)
		}
		return nil
	}
	b, _ := json.Marshal(metaFile{Version: 1, Shards: shards})
	if err := faultfs.WriteFile(fsys, path, b, 0o644); err != nil {
		return fmt.Errorf("%w: writing %s: %v", ErrStorage, path, err)
	}
	return fsys.SyncDir(dir)
}

// shardDir returns shard i's WAL directory under the data dir.
func shardDir(dataDir string, i int) string {
	return filepath.Join(dataDir, fmt.Sprintf("shard-%d", i))
}

// parkedSession is an evicted-but-durable session: its image (create
// parameters + accepted batch history) without the live engine. A
// touch restores it by deterministic replay.
type parkedSession struct {
	img      *wal.SessionImage
	scenario string
	sum      SessionSummary
	// tracedBatches is how many batches of the image already emitted
	// operation events into the current shard recorder's stream; the
	// restore replay keeps the tracer detached for exactly that prefix
	// so the shard trace still reconciles (each op traced once).
	tracedBatches int
	lastUsed      time.Time
}

// seqFromID extracts the global sequence number from "s<shard>-<seq>".
func seqFromID(id string) (uint64, bool) {
	_, rest, ok := strings.Cut(id, "-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// parseModeString resolves a persisted mode name.
func parseModeString(s string) (dpm.Mode, error) {
	switch s {
	case "", "ADPM", "adpm":
		return dpm.ADPM, nil
	case "conventional":
		return dpm.Conventional, nil
	}
	return dpm.ADPM, fmt.Errorf("unknown mode %q", s)
}

// resolveImageScenario reparses an image's scenario exactly as it was
// first resolved: by built-in name, or from the original DDDL source.
func resolveImageScenario(img *wal.SessionImage) (*dddl.Scenario, error) {
	if img.Scenario != "" {
		return scenario.ByName(img.Scenario)
	}
	if img.Source != "" {
		return dddl.ParseString(img.Source)
	}
	return nil, fmt.Errorf("image %s has neither scenario name nor source", img.ID)
}

// encodeOpsWire renders an operation batch in its wire form for the
// WAL. Values that JSON cannot carry (NaN, infinities) are rejected —
// the wire layer never produces them, so this guards only programmatic
// callers of a durable server.
func encodeOpsWire(ops []dpm.Operation) (json.RawMessage, error) {
	ws := make([]WireOp, len(ops))
	for i := range ops {
		for _, a := range ops[i].Assignments {
			if !a.Value.IsString() {
				if v := a.Value.Num(); math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("%w: assignment to %q: %v is not durable (JSON cannot encode it)",
						ErrInvalid, a.Prop, v)
				}
			}
		}
		ws[i] = WireFromOperation(ops[i])
	}
	raw, err := json.Marshal(ws)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return raw, nil
}

// decodeOpsWire is the replay-side inverse of encodeOpsWire.
func decodeOpsWire(raw json.RawMessage) ([]dpm.Operation, error) {
	var ws []WireOp
	if err := json.Unmarshal(raw, &ws); err != nil {
		return nil, err
	}
	ops := make([]dpm.Operation, len(ws))
	for i, w := range ws {
		op, err := w.toOperation()
		if err != nil {
			return nil, err
		}
		ops[i] = op
	}
	return ops, nil
}

// openShardWAL opens shard i's log, folds its records into parked
// sessions, and returns the highest sequence number mentioned anywhere
// in the log (with ok reporting whether any was). The high-water scans
// every id the log ever saw, not just survivors: a deleted session's
// records are gone from the fold but its id must never be re-issued,
// or idempotency keys and Last-Event-ID positions scoped to the old
// incarnation would apply to the new one. Called from Open before the
// shard loop starts, so it may touch loop state directly.
func (sh *shard) openShardWAL(dataDir string, policy wal.SyncPolicy, segBytes int64, fsys faultfs.FS) (uint64, bool, error) {
	var ship func(wal.ShipEvent) error
	if repl := sh.opts.Repl; repl != nil {
		idx := sh.idx
		ship = func(ev wal.ShipEvent) error { return repl.Ship(idx, ev) }
	}
	lg, info, err := wal.Open(wal.Options{
		Dir:          shardDir(dataDir, sh.idx),
		FS:           fsys,
		Policy:       policy,
		SegmentBytes: segBytes,
		Ship:         ship,
	})
	if err != nil {
		return 0, false, fmt.Errorf("%w: shard %d: %v", ErrStorage, sh.idx, err)
	}
	sh.wal = lg
	sh.segBase = lg.SegmentSize()
	var maxSeq uint64
	haveSeq := false
	for id := range info.AllSessions {
		if seq, ok := seqFromID(id); ok {
			haveSeq = true
			if seq > maxSeq {
				maxSeq = seq
			}
		}
	}
	// Snapshot-recorded high-water: compaction deletes the segments that
	// mentioned dead ids, so AllSessions alone forgets a deleted
	// session once a rotation subsumes its records. The snapshot's
	// NextSeq is the counter value itself (next id to issue).
	if info.NextSeq > 0 {
		haveSeq = true
		if info.NextSeq-1 > maxSeq {
			maxSeq = info.NextSeq - 1
		}
	}
	now := sh.now()
	for id, img := range info.Sessions {
		if img.Moved != "" {
			// A forwarding tombstone, not a session: the id migrated away
			// and misroutes keep answering 307 after recovery.
			sh.moved[id] = img.Moved
			continue
		}
		scn, rerr := resolveImageScenario(img)
		label := ""
		if rerr == nil {
			label = scn.Name
		}
		sh.parked[id] = &parkedSession{
			img:      img,
			scenario: label,
			sum:      SessionSummary{ID: id, Scenario: label, Mode: img.Mode, Evicted: true},
			lastUsed: now,
		}
	}
	sh.nParked.Store(int64(len(sh.parked)))
	sh.nMoved.Store(int64(len(sh.moved)))
	if sh.rec.Enabled() {
		sh.rec.Emit(trace.Event{
			Kind:      trace.KindRecover,
			Sessions:  len(info.Sessions),
			Records:   info.Records,
			Bytes:     info.Bytes,
			TornBytes: info.TornBytes,
		})
	}
	return maxSeq, haveSeq, nil
}

// appendWAL logs one record, updating the gauges and trace; a nil
// shard log is a no-op. The returned error is ErrStorage-wrapped and
// means the request must be rejected un-applied.
func (sh *shard) appendWAL(rec *wal.Record) error {
	if sh.wal == nil {
		return nil
	}
	n, err := sh.wal.Append(rec)
	if err != nil {
		if sh.wal.Broken() != nil {
			sh.walBroken.Store(true)
		}
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	sh.walAppends.Add(1)
	sh.walBytes.Add(uint64(n))
	if sh.rec.Enabled() {
		sh.rec.Emit(trace.Event{Kind: trace.KindWALAppend, Name: rec.Type, Bytes: int64(n)})
	}
	return nil
}

// maybeRotate starts a new segment headed by a full-state snapshot once
// the current one is past the configured size AND has doubled past the
// snapshot that heads it — without the doubling condition, a snapshot
// bigger than the segment limit would re-trigger rotation on every
// append, rewriting the full state each time. Rotation failures are
// retried on a later append unless the log broke.
func (sh *shard) maybeRotate() {
	if sh.wal == nil || sh.wal.Broken() != nil {
		return
	}
	if size := sh.wal.SegmentSize(); size < sh.wal.SegmentLimit() || size < 2*sh.segBase {
		return
	}
	snap := &wal.Record{Type: wal.TypeSnapshot, NextSeq: sh.seqNow()}
	ids := make([]string, 0, len(sh.sessions)+len(sh.parked)+len(sh.migrating)+len(sh.moved))
	for id := range sh.sessions {
		ids = append(ids, id)
	}
	for id := range sh.parked {
		ids = append(ids, id)
	}
	// Mid-migration images and moved tombstones must survive compaction
	// too: losing a frozen image would turn an aborted migration into
	// data loss, and losing a tombstone would turn a misroute into a
	// resurrection.
	for id := range sh.migrating {
		ids = append(ids, id)
	}
	for id := range sh.moved {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		var img *wal.SessionImage
		switch {
		case sh.sessions[id] != nil:
			img = sh.sessions[id].img
		case sh.parked[id] != nil:
			img = sh.parked[id].img
		case sh.migrating[id] != nil:
			img = sh.migrating[id].img
		default:
			snap.Sessions = append(snap.Sessions, wal.SessionImage{ID: id, Moved: sh.moved[id]})
			continue
		}
		snap.Sessions = append(snap.Sessions, *img.Clone())
	}
	if err := sh.wal.Rotate(snap); err != nil {
		if sh.wal.Broken() != nil {
			sh.walBroken.Store(true)
		}
		return
	}
	sh.segBase = sh.wal.SegmentSize()
	sh.rotations.Add(1)
}

// lookup resolves a session id on the loop goroutine: a live session
// is touched and returned; a parked one is transparently restored
// first. Loop goroutine only.
func (sh *shard) lookup(id string) (*hostedSession, error) {
	if hs := sh.sessions[id]; hs != nil {
		hs.lastUsed = sh.now()
		return hs, nil
	}
	p := sh.parked[id]
	if p == nil {
		if sh.migrating[id] != nil {
			return nil, fmt.Errorf("%w: session %q", ErrMigrating, id)
		}
		if loc := sh.moved[id]; loc != "" {
			return nil, &MovedError{ID: id, Location: loc}
		}
		return nil, ErrUnknownSession
	}
	hs, err := sh.buildFromImage(p.img, p.tracedBatches)
	if err != nil {
		return nil, fmt.Errorf("%w: restoring %s: %v", ErrStorage, id, err)
	}
	delete(sh.parked, id)
	sh.nParked.Store(int64(len(sh.parked)))
	hs.lastUsed = sh.now()
	sh.sessions[id] = hs
	sh.nSessions.Store(int64(len(sh.sessions)))
	sh.restored.Add(1)
	if sh.rec.Enabled() {
		sh.rec.Emit(trace.Event{
			Kind:     trace.KindRestore,
			Name:     id,
			Scenario: hs.scenario,
			Records:  len(hs.img.Ops),
		})
	}
	return hs, nil
}

// buildFromImage rebuilds a live session from its durable image by
// deterministic replay. The first tracedBatches batches replay with the
// tracer detached (their operation events are already in the shard's
// stream); the rest — all of them after a process restart — emit
// normally so the stream still reconciles at drain. Loop goroutine
// only.
func (sh *shard) buildFromImage(img *wal.SessionImage, tracedBatches int) (*hostedSession, error) {
	scn, err := resolveImageScenario(img)
	if err != nil {
		return nil, err
	}
	mode, err := parseModeString(img.Mode)
	if err != nil {
		return nil, err
	}
	sess, err := teamsim.NewSession(scn, mode, img.MaxOps, sh.opts.PropOpts)
	if err != nil {
		return nil, err
	}
	hs := &hostedSession{
		id:       img.ID,
		scenario: scn.Name,
		sess:     sess,
		img:      img,
		idem:     newIdemCache(sh.opts.IdemCap),
	}
	// The event hook rides the replay: every replayed batch regenerates
	// the session's notification log positions exactly as the live run
	// produced them (no hub exists yet, so nothing is re-delivered).
	sh.attachEvents(hs)
	attached := false
	for i, entry := range img.Ops {
		if i >= tracedBatches && !attached {
			sess.SetTracer(sh.rec)
			attached = true
		}
		ops, err := decodeOpsWire(entry.Ops)
		if err != nil {
			return nil, fmt.Errorf("batch %d: %v", i, err)
		}
		if err := validateBatch(hs, ops); err != nil {
			return nil, fmt.Errorf("batch %d no longer validates (log/engine divergence): %v", i, err)
		}
		resp, err := applyBatch(hs, ops)
		if err != nil {
			return nil, fmt.Errorf("batch %d: %v", i, err)
		}
		if entry.Key != "" {
			// The WAL stores exactly the wire-canonical bytes the live
			// path hashed, so the conflict check survives park/restore and
			// crash recovery unchanged; rebuilding through the same add
			// path means the LRU bound (and order) survives too.
			hs.idem.add(entry.Key, sha256.Sum256(entry.Ops), resp)
		}
	}
	if !attached {
		sess.SetTracer(sh.rec)
	}
	return hs, nil
}

// park drops a session's live engine but keeps its durable image and
// summary: persist-then-evict. Live subscribers are detached — their
// streams end, and a reconnect with Last-Event-ID restores the session
// and resumes from the regenerated event log. Loop goroutine only.
func (sh *shard) park(hs *hostedSession) {
	if hs.hub != nil {
		hs.hub.Close()
		hs.hub = nil
	}
	sum := SessionSummary{
		ID:            hs.id,
		Scenario:      hs.scenario,
		Mode:          hs.sess.Res.Mode.String(),
		Evicted:       true,
		Completed:     hs.sess.D.Done(),
		Operations:    hs.sess.Res.Operations,
		Evaluations:   hs.sess.Res.Evaluations,
		Spins:         hs.sess.Res.Spins,
		Notifications: hs.sess.Res.Notifications,
	}
	sh.parked[hs.id] = &parkedSession{
		img:           hs.img,
		scenario:      hs.scenario,
		sum:           sum,
		tracedBatches: len(hs.img.Ops),
		lastUsed:      hs.lastUsed,
	}
	delete(sh.sessions, hs.id)
	sh.nSessions.Store(int64(len(sh.sessions)))
	sh.nParked.Store(int64(len(sh.parked)))
	sh.evicted.Add(1)
	if sh.rec.Enabled() {
		sh.rec.Emit(trace.Event{
			Kind:          trace.KindEvict,
			Name:          sum.ID,
			Scenario:      sum.Scenario,
			Operations:    sum.Operations,
			Evaluations:   sum.Evaluations,
			Spins:         sum.Spins,
			Notifications: sum.Notifications,
		})
	}
}

// validateBatch enforces the pre-δ checks shared by the live apply path
// and replay: non-empty batch, whole batch within the remaining budget,
// every operation accepted by dpm.Validate.
func validateBatch(hs *hostedSession, ops []dpm.Operation) error {
	if len(ops) == 0 {
		return fmt.Errorf("%w: empty op batch", ErrInvalid)
	}
	if rem := hs.sess.Remaining(); rem < len(ops) {
		return fmt.Errorf("%w: batch of %d ops, %d remaining", ErrBudget, len(ops), rem)
	}
	for i := range ops {
		if verr := hs.sess.D.Validate(ops[i]); verr != nil {
			return fmt.Errorf("%w: op %d: %v", ErrInvalid, i, verr)
		}
	}
	return nil
}

// applyBatch executes a validated batch and builds its acknowledgement.
// An apply error here means dpm.Validate's error set has a hole — the
// caller surfaces it loudly instead of acking a half-applied batch.
func applyBatch(hs *hostedSession, ops []dpm.Operation) (*ApplyResponse, error) {
	resp := &ApplyResponse{ID: hs.id}
	for i := range ops {
		tr, err := hs.sess.Apply(ops[i])
		if err != nil {
			return nil, fmt.Errorf("server: state diverged: validated op %d failed: %v", i, err)
		}
		resp.Transitions = append(resp.Transitions, transitionState(tr))
	}
	resp.Stage = hs.sess.D.Stage()
	resp.Applied = len(ops)
	resp.Remaining = hs.sess.Remaining()
	resp.Done = hs.sess.D.Done()
	resp.Violations = hs.sess.D.Net.Violations()
	// Every accepted batch bumps the generation, live or replayed:
	// the serialized-state cache keyed by it can never serve stale
	// bytes. Rejected batches leave it untouched, so a rejection keeps
	// the cache (and the state) byte-identical.
	hs.gen++
	return resp, nil
}
